package ask

// Golden equality for the conservative parallel DES (DESIGN.md "Parallel
// DES"): a sharded cluster must produce byte-identical results, counters and
// virtual-time measurements to the serial build, for every shard count. These
// tests are the determinism contract's enforcement point — they compare
// complete TaskResult values (aggregation output, elapsed virtual time,
// receiver and switch counters) across shard counts, and they run under
// `make race`.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/tenancy"
	"repro/internal/workload"
	"repro/internal/workload/scenario"
)

// runMultiRackWorkload builds a 4-rack cluster with the given shard count and
// runs one cross-rack aggregation; hosts and streams are identical across
// calls so any divergence is the scheduler's.
func runMultiRackWorkload(t *testing.T, shards int) (*TaskResult, int64) {
	t.Helper()
	opts := MultiRackOptions{Racks: 4, HostsPerRack: 2, Seed: 7, Shards: shards}
	mc, err := NewMultiRackCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	receiver := opts.HostAt(0, 0)
	senders := []core.HostID{
		opts.HostAt(0, 1), opts.HostAt(1, 0), opts.HostAt(2, 1), opts.HostAt(3, 0),
	}
	streams := make(map[core.HostID]core.Stream)
	for i, s := range senders {
		streams[s] = workload.Uniform(768, 6000, int64(20+i)).Stream()
	}
	res, err := mc.Aggregate(core.TaskSpec{
		ID: 1, Receiver: receiver, Senders: senders, Op: core.OpSum,
	}, streams)
	if err != nil {
		t.Fatal(err)
	}
	return res, int64(mc.Sim.Now())
}

// TestMultiRackShardedByteIdentical pins the parallel scheduler to the
// serial golden: shard counts 2 and 4 must reproduce the serial run's
// TaskResult and final clock exactly.
func TestMultiRackShardedByteIdentical(t *testing.T) {
	golden, goldenNow := runMultiRackWorkload(t, 0)
	for _, shards := range []int{2, 4} {
		got, gotNow := runMultiRackWorkload(t, shards)
		if !got.Result.Equal(golden.Result) {
			t.Fatalf("shards=%d: aggregation diverged from serial: %s",
				shards, got.Result.Diff(golden.Result, 8))
		}
		if !reflect.DeepEqual(got, golden) {
			t.Errorf("shards=%d: TaskResult diverged from serial:\n got: %+v\nwant: %+v",
				shards, got, golden)
		}
		if gotNow != goldenNow {
			t.Errorf("shards=%d: final clock %d != serial %d", shards, gotNow, goldenNow)
		}
	}
}

// TestMultiRackShardsOneIsSerialSeam verifies the serial fallback seam:
// Shards values of 0 and 1 (and over-asking a single-rack topology) must not
// construct a shard group at all — the exact pre-shard code path runs.
func TestMultiRackShardsOneIsSerialSeam(t *testing.T) {
	for _, tc := range []struct {
		racks, shards int
	}{{4, 0}, {4, 1}, {1, 8}} {
		mc, err := NewMultiRackCluster(MultiRackOptions{
			Racks: tc.racks, HostsPerRack: 2, Seed: 3, Shards: tc.shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		if mc.Net.Group() != nil {
			t.Errorf("racks=%d shards=%d: expected serial build, got shard group",
				tc.racks, tc.shards)
		}
		if mc.Sim.ShardLane() != -1 || mc.Sim.Group() != nil {
			t.Errorf("racks=%d shards=%d: root sim is grouped", tc.racks, tc.shards)
		}
	}
}

// TestMultiRackShardedParallelWindows asserts the sharded run actually
// exercises the parallel scheduler (guards against a silently-serial build
// making the golden test vacuous).
func TestMultiRackShardedParallelWindows(t *testing.T) {
	opts := MultiRackOptions{Racks: 4, HostsPerRack: 2, Seed: 7, Shards: 4}
	mc, err := NewMultiRackCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	receiver := opts.HostAt(0, 0)
	senders := []core.HostID{opts.HostAt(1, 0), opts.HostAt(2, 0), opts.HostAt(3, 0)}
	streams := make(map[core.HostID]core.Stream)
	for i, s := range senders {
		streams[s] = workload.Uniform(512, 4000, int64(40+i)).Stream()
	}
	if _, err := mc.Aggregate(core.TaskSpec{
		ID: 1, Receiver: receiver, Senders: senders, Op: core.OpSum,
	}, streams); err != nil {
		t.Fatal(err)
	}
	st := mc.Net.Group().Stats()
	if st.Windows == 0 || st.Injects == 0 {
		t.Fatalf("sharded run scheduled no windows/injects: %+v", st)
	}
	if st.ParallelWindows+st.InlineWindows == 0 {
		t.Fatalf("no shard-resident windows ran (all serial): %+v", st)
	}
}

// runFatTreeWorkload builds a 2×4 fat-tree with the given shard count and
// runs one cross-leaf aggregation with a sender on every leaf.
func runFatTreeWorkload(t *testing.T, shards int) (*TaskResult, int64) {
	t.Helper()
	opts := FatTreeOptions{Spines: 2, Leaves: 4, HostsPerLeaf: 2, Seed: 11, Shards: shards}
	fc, err := NewFatTreeCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	receiver := opts.HostAt(0, 0)
	senders := []core.HostID{
		opts.HostAt(0, 1), opts.HostAt(1, 0), opts.HostAt(2, 0), opts.HostAt(3, 1),
	}
	streams := make(map[core.HostID]core.Stream)
	for i, s := range senders {
		streams[s] = workload.Uniform(768, 6000, int64(60+i)).Stream()
	}
	res, err := fc.Aggregate(core.TaskSpec{
		ID: 1, Receiver: receiver, Senders: senders, Op: core.OpSum,
	}, streams)
	if err != nil {
		t.Fatal(err)
	}
	return res, int64(fc.Sim.Now())
}

// TestFatTreeShardedByteIdentical pins the sharded fat-tree to its serial
// golden on a fault-free run: every leaf aggregates, the spine re-aggregates
// cross-leaf residue, and the TaskResult must not move by a byte.
func TestFatTreeShardedByteIdentical(t *testing.T) {
	golden, goldenNow := runFatTreeWorkload(t, 0)
	for _, shards := range []int{2, 4} {
		got, gotNow := runFatTreeWorkload(t, shards)
		if !got.Result.Equal(golden.Result) {
			t.Fatalf("shards=%d: aggregation diverged from serial: %s",
				shards, got.Result.Diff(golden.Result, 8))
		}
		if !reflect.DeepEqual(got, golden) {
			t.Errorf("shards=%d: TaskResult diverged from serial:\n got: %+v\nwant: %+v",
				shards, got, golden)
		}
		if gotNow != goldenNow {
			t.Errorf("shards=%d: final clock %d != serial %d", shards, gotNow, goldenNow)
		}
	}
}

// TestFatTreeShardedSerialSeam verifies the fat-tree's serial fallback:
// shards <= 1 or a single-leaf topology never constructs a group.
func TestFatTreeShardedSerialSeam(t *testing.T) {
	for _, tc := range []struct {
		leaves, shards int
	}{{4, 0}, {4, 1}, {1, 8}} {
		fc, err := NewFatTreeCluster(FatTreeOptions{
			Spines: 2, Leaves: tc.leaves, HostsPerLeaf: 2, Seed: 3, Shards: tc.shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		if fc.Net.Group() != nil {
			t.Errorf("leaves=%d shards=%d: expected serial build, got shard group",
				tc.leaves, tc.shards)
		}
	}
}

// TestFatTreeShardedTenantTimedReplay extends the golden lock to the
// multi-tenant timed-replay path: two corpus scenarios, one per tenant,
// replayed concurrently through a 2-tenant fat-tree must produce identical
// per-tenant results, virtual completion times and fabric counters at every
// shard count. This crosses shards both ways (receivers on leaf 0, senders
// on leaves 1 and 2) while admission control exercises the shared tenancy
// state from root context.
func TestFatTreeShardedTenantTimedReplay(t *testing.T) {
	const senders = 2
	names := map[core.TenantID]string{1: "flash-crowd", 2: "mixed-diurnal-growth"}
	parts := make(map[core.TenantID][][]core.TimedKV)
	for tn, name := range names {
		s, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s = s.WithTuples(2000)
		parts[tn] = workload.SplitTimedRoundRobin(core.CollectTimed(s.TimedStream()), senders)
	}

	run := func(shards int) map[core.TenantID]*TaskResult {
		opts := FatTreeOptions{
			Spines: 2, Leaves: 3, HostsPerLeaf: 2, Seed: 23, Shards: shards,
			Tenants: []tenancy.TenantSpec{{ID: 1, Weight: 1}, {ID: 2, Weight: 1}},
		}
		fc, err := NewFatTreeCluster(opts)
		if err != nil {
			t.Fatal(err)
		}
		pending := make(map[core.TenantID]*FatTreePendingTask)
		for i, tn := range []core.TenantID{1, 2} {
			spec := core.TaskSpec{
				ID: core.MakeTaskID(tn, 1), Receiver: opts.HostAt(0, i), Op: core.OpSum,
			}
			streams := make(map[core.HostID]core.TimedStream, senders)
			for j, part := range parts[tn] {
				h := opts.HostAt(1+j, i)
				spec.Senders = append(spec.Senders, h)
				streams[h] = core.SliceTimedStream(part)
			}
			pt, err := fc.StartTaskTimed(spec, streams)
			if err != nil {
				t.Fatal(err)
			}
			pending[tn] = pt
		}
		fc.Sim.Run(0)
		out := make(map[core.TenantID]*TaskResult)
		for tn, pt := range pending {
			res, err := pt.Get()
			if err != nil {
				t.Fatalf("shards=%d tenant %d: %v", shards, tn, err)
			}
			out[tn] = res
		}
		return out
	}

	golden := run(0)
	for _, shards := range []int{2, 3} {
		got := run(shards)
		for tn := range names {
			g, r := golden[tn], got[tn]
			if !r.Result.Equal(g.Result) {
				t.Fatalf("shards=%d tenant %d: result diverged: %s",
					shards, tn, r.Result.Diff(g.Result, 8))
			}
			if !reflect.DeepEqual(r, g) {
				t.Errorf("shards=%d tenant %d: TaskResult diverged:\n got: %+v\nwant: %+v",
					shards, tn, r, g)
			}
		}
	}
}

// TestFatTreeShardedSpineOutageDeterministic exercises the one path where
// the sharded fabric diverges from the serial event order — failover
// recovery's fabric-wide control rendezvous (fabricController.control) —
// and pins the weaker contract that applies there: conservation is still
// exact (the outage run's result equals the ground truth, checked inside
// ftOutageRun), recovery still completes, and two identically-seeded runs
// at the same shard count are byte-identical.
func TestFatTreeShardedSpineOutageDeterministic(t *testing.T) {
	opts := ftFailoverOptions(43)
	opts.Shards = 3
	scale := ftGoldenScale(t, opts)
	spec, _, _ := ftFailoverWorkload(opts)
	spine := netsim.SpineAddr(int(uint32(spec.ID)) % opts.Spines)
	a := ftOutageRun(t, opts, spine, scale*2/5, scale*3/5)
	b := ftOutageRun(t, opts, spine, scale*2/5, scale*3/5)
	if a.res.Elapsed != b.res.Elapsed {
		t.Fatalf("elapsed diverged across identical sharded runs: %v vs %v", a.res.Elapsed, b.res.Elapsed)
	}
	if !a.res.Result.Equal(b.res.Result) {
		t.Fatalf("results diverged across identical sharded runs: %s", a.res.Result.Diff(b.res.Result, 5))
	}
	if a.replays != b.replays {
		t.Fatalf("replay counts diverged across identical sharded runs: %d vs %d", a.replays, b.replays)
	}
	if a.replays == 0 {
		t.Fatal("no replays sent: the sharded outage did not exercise recovery")
	}
}
