package ask

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/workload"
)

func mrOptions(seed int64) MultiRackOptions {
	return MultiRackOptions{Racks: 3, HostsPerRack: 3, Seed: seed}
}

func TestMultiRackExactAcrossRacks(t *testing.T) {
	opts := mrOptions(1)
	mc, err := NewMultiRackCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Receiver in rack 0; senders spread over all three racks.
	receiver := opts.HostAt(0, 0)
	senders := []core.HostID{opts.HostAt(0, 1), opts.HostAt(1, 0), opts.HostAt(2, 2)}
	streams := make(map[core.HostID]core.Stream)
	want := make(core.Result)
	for i, s := range senders {
		w := workload.Uniform(1024, 8000, int64(10+i))
		streams[s] = w.Stream()
		want.Merge(w.Reference(core.OpSum), core.OpSum)
	}
	res, err := mc.Aggregate(core.TaskSpec{
		ID: 1, Receiver: receiver, Senders: senders, Op: core.OpSum,
	}, streams)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(want) {
		t.Fatalf("multi-rack aggregation wrong: %s", res.Result.Diff(want, 8))
	}
	// §7 split: only the rack-local sender's tuples were eligible for INA
	// at the receiver's TOR (8000 of 24000); remote tuples took the host
	// path.
	if res.Switch.TuplesIn > 8100 || res.Switch.TuplesIn < 7000 {
		t.Fatalf("receiver TOR saw %d tuples; want ≈8000 (local sender only)", res.Switch.TuplesIn)
	}
	if res.Recv.ResidueTuples < 15000 {
		t.Fatalf("host aggregated %d residue tuples; remote traffic should be ≈16000", res.Recv.ResidueTuples)
	}
}

func TestMultiRackRemoteTORsHoldNoTaskState(t *testing.T) {
	opts := mrOptions(2)
	mc, err := NewMultiRackCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	receiver := opts.HostAt(0, 0)
	senders := []core.HostID{opts.HostAt(1, 0)}
	w := workload.Uniform(512, 4000, 5)
	res, err := mc.Aggregate(core.TaskSpec{ID: 1, Receiver: receiver, Senders: senders, Op: core.OpSum},
		map[core.HostID]core.Stream{senders[0]: w.Stream()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(w.Reference(core.OpSum)) {
		t.Fatal("wrong result")
	}
	// The remote sender's TOR never allocated a region for the task and
	// aggregated nothing; it only maintained its own rack's flow state.
	remote := mc.TORs[1].TaskStatsOf(1)
	if remote.TuplesAggregated != 0 {
		t.Fatalf("remote TOR aggregated %d tuples", remote.TuplesAggregated)
	}
	if mc.TORs[1].RegionOf(1) != nil {
		t.Fatal("remote TOR holds a region for the task")
	}
	// All aggregation happened at the receiver host.
	if res.Recv.ResidueTuples != 4000 {
		t.Fatalf("residue = %d, want all 4000", res.Recv.ResidueTuples)
	}
}

func TestMultiRackLocalSendersGetINA(t *testing.T) {
	opts := mrOptions(3)
	mc, err := NewMultiRackCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	receiver := opts.HostAt(1, 0)
	local := opts.HostAt(1, 1)
	w := workload.Uniform(512, 6000, 7)
	res, err := mc.Aggregate(core.TaskSpec{ID: 1, Receiver: receiver, Senders: []core.HostID{local}, Op: core.OpSum},
		map[core.HostID]core.Stream{local: w.Stream()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(w.Reference(core.OpSum)) {
		t.Fatal("wrong result")
	}
	if ratio := res.Switch.AggregatedTupleRatio(); ratio < 0.95 {
		t.Fatalf("rack-local INA absorbed only %.1f%%", 100*ratio)
	}
}

func TestMultiRackExactUnderLoss(t *testing.T) {
	opts := mrOptions(4)
	opts.HostLink = netsim.DefaultLinkConfig()
	opts.HostLink.Fault.LossProb = 0.03
	opts.CoreLink = netsim.DefaultLinkConfig()
	opts.CoreLink.Fault.LossProb = 0.03
	opts.CoreLink.Fault.ReorderProb = 0.05
	opts.CoreLink.Fault.ReorderDelay = 40 * time.Microsecond
	mc, err := NewMultiRackCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	receiver := opts.HostAt(0, 0)
	senders := []core.HostID{opts.HostAt(0, 1), opts.HostAt(1, 1), opts.HostAt(2, 0)}
	streams := make(map[core.HostID]core.Stream)
	want := make(core.Result)
	for i, s := range senders {
		w := workload.Zipf(800, 5000, 1.1, workload.Shuffled, int64(20+i))
		streams[s] = w.Stream()
		want.Merge(w.Reference(core.OpSum), core.OpSum)
	}
	res, err := mc.Aggregate(core.TaskSpec{ID: 1, Receiver: receiver, Senders: senders, Op: core.OpSum}, streams)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(want) {
		t.Fatalf("multi-rack lossy aggregation wrong: %s", res.Result.Diff(want, 8))
	}
}

func TestMultiRackValidation(t *testing.T) {
	if _, err := NewMultiRackCluster(MultiRackOptions{}); err == nil {
		t.Fatal("zero options accepted")
	}
	mc, err := NewMultiRackCluster(mrOptions(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Aggregate(core.TaskSpec{ID: 1, Receiver: 99, Senders: []core.HostID{0}}, nil); err == nil {
		t.Fatal("unknown receiver accepted")
	}
	if _, err := mc.Aggregate(core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{77}},
		map[core.HostID]core.Stream{77: core.SliceStream(nil)}); err == nil {
		t.Fatal("unknown sender accepted")
	}
	if _, err := mc.Aggregate(core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}}, nil); err == nil {
		t.Fatal("missing stream accepted")
	}
}
