package ask

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// Multi-tenancy (§7): tasks from different tenants encode the tenant in the
// task ID's high bits; the daemon isolates tasks on the host and the switch
// controller isolates their memory regions.

// tenantTask builds a task ID with the tenant in the high byte.
func tenantTask(tenant, task uint32) core.TaskID {
	return core.TaskID(tenant<<24 | task)
}

func TestMultiTenantIsolation(t *testing.T) {
	cl, err := NewCluster(Options{Hosts: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	// Two tenants run tasks with the same low task number and overlapping
	// key spaces at the same time.
	mk := func(seed int64) []core.KV {
		kvs := make([]core.KV, 0, 3000)
		for i := 0; i < 3000; i++ {
			kvs = append(kvs, core.KV{Key: fmt.Sprintf("k%d", (seed*7+int64(i))%200), Val: seed})
		}
		return kvs
	}
	dataA, dataB := mk(1), mk(100)
	ptA, err := cl.StartTask(core.TaskSpec{
		ID: tenantTask(1, 42), Receiver: 0, Senders: []core.HostID{1, 2},
	}, map[core.HostID]core.Stream{1: core.SliceStream(dataA), 2: core.SliceStream(dataA)})
	if err != nil {
		t.Fatal(err)
	}
	ptB, err := cl.StartTask(core.TaskSpec{
		ID: tenantTask(2, 42), Receiver: 1, Senders: []core.HostID{0, 2},
	}, map[core.HostID]core.Stream{0: core.SliceStream(dataB), 2: core.SliceStream(dataB)})
	if err != nil {
		t.Fatal(err)
	}
	cl.Sim.Run(0)
	resA, err := ptA.Get()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := ptB.Get()
	if err != nil {
		t.Fatal(err)
	}
	wantA := core.Reference(core.OpSum, dataA, dataA)
	wantB := core.Reference(core.OpSum, dataB, dataB)
	if !resA.Result.Equal(wantA) {
		t.Fatalf("tenant 1 polluted: %s", resA.Result.Diff(wantA, 5))
	}
	if !resB.Result.Equal(wantB) {
		t.Fatalf("tenant 2 polluted: %s", resB.Result.Diff(wantB, 5))
	}
}

func TestTenantRegionExhaustionIsContained(t *testing.T) {
	// A tenant hogging regions fails cleanly; other tenants keep working.
	cl, err := NewCluster(Options{Hosts: 2, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cl.Config()
	hog := core.TaskSpec{
		ID: tenantTask(1, 1), Receiver: 0, Senders: []core.HostID{1},
		Rows: cfg.AARows, // everything
	}
	data := []core.KV{{Key: "x", Val: 1}}
	res, err := cl.Aggregate(hog, map[core.HostID]core.Stream{1: core.SliceStream(data)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Result["x"] != 1 {
		t.Fatal("hog task wrong")
	}
	// The hog completed (regions are freed at teardown), so the next tenant
	// allocates again.
	res2, err := cl.Aggregate(core.TaskSpec{
		ID: tenantTask(2, 1), Receiver: 0, Senders: []core.HostID{1}, Rows: cfg.AARows,
	}, map[core.HostID]core.Stream{1: core.SliceStream(data)})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Result["x"] != 1 {
		t.Fatal("second tenant wrong")
	}
}

func TestConcurrentOverAllocationFails(t *testing.T) {
	// Two concurrent tasks both demanding the whole AA depth: the second
	// submission must surface a clean allocation error, not corrupt state.
	cl, err := NewCluster(Options{Hosts: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cl.Config()
	data := []core.KV{{Key: "x", Val: 1}}
	pt1, err := cl.StartTask(core.TaskSpec{
		ID: 1, Receiver: 0, Senders: []core.HostID{1}, Rows: cfg.AARows,
	}, map[core.HostID]core.Stream{1: core.SliceStream(data)})
	if err != nil {
		t.Fatal(err)
	}
	pt2, err := cl.StartTask(core.TaskSpec{
		ID: 2, Receiver: 0, Senders: []core.HostID{1}, Rows: cfg.AARows,
	}, map[core.HostID]core.Stream{1: core.SliceStream(data)})
	if err != nil {
		t.Fatal(err) // StartTask itself is fine; the alloc error surfaces at Get
	}
	cl.Sim.Run(0)
	if _, err := pt1.Get(); err != nil {
		t.Fatalf("first task failed: %v", err)
	}
	if _, err := pt2.Get(); err == nil {
		t.Fatal("second whole-switch allocation should fail")
	}
}
