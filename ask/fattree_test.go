package ask

import (
	"errors"
	"fmt"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/tenancy"
	"repro/internal/workload"
)

func ftOptions(seed int64) FatTreeOptions {
	return FatTreeOptions{Spines: 2, Leaves: 3, HostsPerLeaf: 3, Seed: seed}
}

func TestFatTreeExactAcrossLeaves(t *testing.T) {
	opts := ftOptions(1)
	fc, err := NewFatTreeCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	receiver := opts.HostAt(0, 0)
	senders := []core.HostID{opts.HostAt(0, 1), opts.HostAt(1, 0), opts.HostAt(2, 2)}
	streams := make(map[core.HostID]core.Stream)
	want := make(core.Result)
	for i, s := range senders {
		w := workload.Uniform(1024, 8000, int64(10+i))
		streams[s] = w.Stream()
		want.Merge(w.Reference(core.OpSum), core.OpSum)
	}
	res, err := fc.Aggregate(core.TaskSpec{
		ID: 1, Receiver: receiver, Senders: senders, Op: core.OpSum,
	}, streams)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(want) {
		t.Fatalf("fat-tree aggregation wrong: %s", res.Result.Diff(want, 8))
	}
	// Unlike the multi-rack forwarding core, every sender's leaf aggregates:
	// the fabric as a whole should absorb the bulk of all 24000 tuples.
	if res.Switch.TuplesAggregated < 20000 {
		t.Fatalf("fabric absorbed only %d of 24000 tuples", res.Switch.TuplesAggregated)
	}
}

func TestFatTreeSpineReaggregatesCrossLeafResidue(t *testing.T) {
	opts := ftOptions(2)
	fc, err := NewFatTreeCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	receiver := opts.HostAt(0, 0)
	senders := []core.HostID{opts.HostAt(1, 0), opts.HostAt(2, 0)}
	streams := make(map[core.HostID]core.Stream)
	for i, s := range senders {
		// Many distinct keys against a tiny region: the sender leaves
		// conflict heavily and push residue across the fabric.
		streams[s] = workload.Uniform(4096, 20000, int64(20+i)).Stream()
	}
	spec := core.TaskSpec{ID: 5, Receiver: receiver, Senders: senders, Op: core.OpSum, Rows: 64}
	res, err := fc.Aggregate(spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	spine := fc.Spines[fc.Net.SpineFor(spec.ID)].TaskStatsOf(spec.ID)
	if spine.TuplesAggregated == 0 {
		t.Fatal("spine absorbed nothing; hierarchical re-aggregation is not happening")
	}
	// Each tuple is absorbed at exactly one tier (or the host): leaf + spine
	// + host residue must account for every sent tuple exactly once.
	var leafAgg int64
	for _, sw := range fc.Leaves {
		leafAgg += sw.TaskStatsOf(spec.ID).TuplesAggregated
	}
	total := leafAgg + spine.TuplesAggregated + res.Recv.ResidueTuples
	if total != 40000 {
		t.Fatalf("conservation violated: leaf %d + spine %d + host %d = %d, want 40000",
			leafAgg, spine.TuplesAggregated, res.Recv.ResidueTuples, total)
	}
}

func TestFatTreeSingleLeafTaskNeedsNoSpineRegion(t *testing.T) {
	opts := ftOptions(3)
	fc, err := NewFatTreeCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	receiver := opts.HostAt(1, 0)
	sender := opts.HostAt(1, 1)
	w := workload.Uniform(512, 6000, 7)
	res, err := fc.Aggregate(core.TaskSpec{ID: 2, Receiver: receiver, Senders: []core.HostID{sender}, Op: core.OpSum},
		map[core.HostID]core.Stream{sender: w.Stream()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(w.Reference(core.OpSum)) {
		t.Fatal("wrong result")
	}
	for sp, sw := range fc.Spines {
		if sw.RegionOf(2) != nil {
			t.Fatalf("spine %d holds a region for a single-leaf task", sp)
		}
	}
}

func fatTreeTenantOpts(seed int64, weights ...int) FatTreeOptions {
	opts := FatTreeOptions{Spines: 2, Leaves: 2, HostsPerLeaf: 4, Seed: seed}
	for i, w := range weights {
		opts.Tenants = append(opts.Tenants, tenancy.TenantSpec{ID: core.TenantID(i + 1), Weight: w})
	}
	return opts
}

// runTenantTasks runs one cross-leaf task per tenant concurrently and
// returns each tenant's result alongside its host-computed reference.
func runTenantTasks(t *testing.T, fc *FatTreeCluster, opts FatTreeOptions) map[core.TenantID]*TaskResult {
	t.Helper()
	pending := make(map[core.TenantID]*FatTreePendingTask)
	for i, ts := range opts.Tenants {
		receiver := opts.HostAt(0, i%opts.HostsPerLeaf)
		senders := []core.HostID{opts.HostAt(1, i%opts.HostsPerLeaf)}
		w := workload.Uniform(512, 5000, int64(40+i))
		pt, err := fc.StartTask(core.TaskSpec{
			ID: core.MakeTaskID(ts.ID, uint32(100+i)), Receiver: receiver, Senders: senders, Op: core.OpSum,
		}, map[core.HostID]core.Stream{senders[0]: w.Stream()})
		if err != nil {
			t.Fatal(err)
		}
		pending[ts.ID] = pt
	}
	fc.Sim.Run(0)
	out := make(map[core.TenantID]*TaskResult)
	for i, ts := range opts.Tenants {
		res, err := pending[ts.ID].Get()
		if err != nil {
			t.Fatalf("tenant %d: %v", ts.ID, err)
		}
		want := workload.Uniform(512, 5000, int64(40+i)).Reference(core.OpSum)
		if !res.Result.Equal(want) {
			t.Fatalf("tenant %d result wrong: %s", ts.ID, res.Result.Diff(want, 8))
		}
		out[ts.ID] = res
	}
	return out
}

func TestFatTreeTenantsConcurrentExact(t *testing.T) {
	opts := fatTreeTenantOpts(11, 1, 2, 1, 4)
	fc, err := NewFatTreeCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	results := runTenantTasks(t, fc, opts)
	for tn, res := range results {
		if res.Switch.TuplesAggregated == 0 {
			t.Fatalf("tenant %d got no in-network aggregation", tn)
		}
	}
	if got := fc.Tenancy.Snapshot(); len(got) != 4 {
		t.Fatalf("snapshot has %d tenants", len(got))
	}
	for _, u := range fc.Tenancy.Snapshot() {
		if u.InUse != 0 {
			t.Fatalf("tenant %d still holds %d rows after teardown", u.Tenant, u.InUse)
		}
	}
}

// fingerprintResults flattens per-tenant outcomes into a canonical string so
// two runs can be compared byte for byte.
func fingerprintResults(results map[core.TenantID]*TaskResult) string {
	tns := make([]core.TenantID, 0, len(results))
	for tn := range results {
		tns = append(tns, tn)
	}
	sort.Slice(tns, func(i, j int) bool { return tns[i] < tns[j] })
	s := ""
	for _, tn := range tns {
		r := results[tn]
		keys := make([]string, 0, len(r.Result))
		for k := range r.Result {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		s += fmt.Sprintf("tenant=%d elapsed=%d recv=%+v switch=%+v nkeys=%d\n",
			tn, r.Elapsed, r.Recv, r.Switch, len(keys))
		for _, k := range keys {
			s += fmt.Sprintf("%q=%d;", k, r.Result[k])
		}
		s += "\n"
	}
	return s
}

func TestFatTreeFourTenantRunIsByteIdentical(t *testing.T) {
	run := func() string {
		opts := fatTreeTenantOpts(17, 1, 1, 2, 4)
		fc, err := NewFatTreeCluster(opts)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprintResults(runTenantTasks(t, fc, opts))
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identically-seeded 4-tenant runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

func TestFatTreeOverQuotaRejectsTyped(t *testing.T) {
	opts := fatTreeTenantOpts(5, 1, 7)
	fc, err := NewFatTreeCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	quota := fc.Tenancy.Quota(1)
	receiver := opts.HostAt(0, 0)
	sender := opts.HostAt(1, 0)
	w := workload.Uniform(64, 100, 3)
	_, err = fc.Aggregate(core.TaskSpec{
		ID: core.MakeTaskID(1, 1), Receiver: receiver, Senders: []core.HostID{sender},
		Op: core.OpSum, Rows: quota*2 + 2,
	}, map[core.HostID]core.Stream{sender: w.Stream()})
	var ov *tenancy.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("want tenancy.OverloadError, got %v", err)
	}
	if ov.Tenant != 1 || ov.Quota != quota {
		t.Fatalf("overload names tenant %d quota %d, want 1/%d", ov.Tenant, ov.Quota, quota)
	}
	// The rejection left nothing allocated: the same task fits in quota.
	res, err := fc.Aggregate(core.TaskSpec{
		ID: core.MakeTaskID(1, 2), Receiver: receiver, Senders: []core.HostID{sender},
		Op: core.OpSum, Rows: quota &^ 1,
	}, map[core.HostID]core.Stream{sender: w.Stream()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(w.Reference(core.OpSum)) {
		t.Fatal("post-rejection task computed a wrong result")
	}
}

func TestFatTreeHotTenantBorrowsAtAdmission(t *testing.T) {
	opts := fatTreeTenantOpts(9, 1, 1)
	fc, err := NewFatTreeCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	quota := fc.Tenancy.Quota(1)
	spec := func(seq uint32, rows int) core.TaskSpec {
		return core.TaskSpec{
			ID: core.MakeTaskID(1, seq), Receiver: opts.HostAt(0, 0),
			Senders: []core.HostID{opts.HostAt(1, 0)}, Op: core.OpSum, Rows: rows,
		}
	}
	// Fill the tenant's quota, then ask for more while cold: typed rejection.
	if _, err := fc.allocRegion(0, spec(1, quota&^1)); err != nil {
		t.Fatal(err)
	}
	_, err = fc.allocRegion(0, spec(2, 10))
	var ov *tenancy.OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("cold over-quota alloc: want OverloadError, got %v", err)
	}
	// A hot tenant (shadow conflict ratio past the threshold) borrows the
	// idle rows instead. The stubbed probe stands in for the telemetry-fed
	// conflict ratio the cluster wires up by default.
	fc.Tenancy.SetHotness(func(core.TenantID) float64 { return 1.0 })
	if _, err := fc.allocRegion(0, spec(2, 10)); err != nil {
		t.Fatalf("hot over-quota alloc failed: %v", err)
	}
	if got := fc.Tenancy.Borrowed(1); got != 10 {
		t.Fatalf("Borrowed = %d, want 10", got)
	}
	// Releasing the borrower's regions returns the rows.
	if err := fc.freeRegion(core.MakeTaskID(1, 2)); err != nil {
		t.Fatal(err)
	}
	if got := fc.Tenancy.Borrowed(1); got != 0 {
		t.Fatalf("Borrowed after free = %d, want 0", got)
	}
}
