// Package ask is the public API of the ASK reproduction: a switch–host
// co-designed in-network aggregation service for key-value streams
// (He et al., "A Generic Service to Provide In-Network Aggregation for
// Key-Value Streams", ASPLOS 2023).
//
// A Cluster wires together the simulated substrate — a virtual-time kernel,
// a single-switch 100 Gbps network, a PISA-constrained ASK switch program,
// and one host daemon per server — behind a small surface:
//
//	cl, _ := ask.NewCluster(ask.Options{Hosts: 4})
//	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1, 2, 3}}
//	res, _ := cl.Aggregate(spec, map[core.HostID]core.Stream{
//	    1: core.SliceStream(streamA),
//	    2: core.SliceStream(streamB),
//	    3: core.SliceStream(streamC),
//	})
//
// Aggregate runs the full protocol of the paper: task setup over the control
// channel, multi-key vectorized switch aggregation, sliding-window
// reliability, shadow-copy hot-key prioritization, FIN-driven teardown, and
// the switch-state fetch/merge — returning the exact aggregation of all
// streams. Everything executes on deterministic virtual time, so results
// and performance measurements are reproducible for a given Seed.
package ask

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/hostd"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/switchd"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Options configures a cluster.
type Options struct {
	// Hosts is the number of servers (host IDs 0..Hosts-1).
	Hosts int
	// Config is the ASK deployment configuration (zero value: the paper's
	// defaults via core.DefaultConfig).
	Config core.Config
	// Link configures every host's link (zero value: 100 Gbps, 1 µs).
	Link netsim.LinkConfig
	// Cores is the per-host core count (zero: the paper's 56).
	Cores int
	// Seed drives all randomness (fault injection); runs with equal seeds
	// are identical.
	Seed int64
	// Switch sizes the switch state tables (zero value: defaults).
	Switch switchd.Options
	// Telemetry enables the cluster-wide observability stack: a shared
	// metrics registry across switch, daemons, transport windows and
	// network, a sim-clock trace ring, and a gauge sampler that runs while
	// tasks are active. Zero value: disabled (components fall back to
	// private registries so Stats accessors still work).
	Telemetry telemetry.Config
	// Shards exists for flag symmetry with the multi-rack and fat-tree
	// deployments (-shards on asksim/askbench): a single-rack cluster has
	// exactly one switch and therefore no partition boundary, so every value
	// runs the serial scheduler (netsim.EffectiveShards clamps to serial
	// when there is at most one block to cut).
	Shards int
}

// Cluster is a simulated rack running the ASK service.
type Cluster struct {
	Sim    *sim.Simulation
	Net    *netsim.Network
	Switch *switchd.Switch
	// Tel is the cluster observability set (nil unless Options.Telemetry
	// is enabled): registry, tracer, and sampler.
	Tel     *telemetry.Set
	opts    Options
	daemons map[core.HostID]*hostd.Daemon
	cpus    map[core.HostID]*cpumodel.Host
	// activeTasks gates the telemetry sampler: it runs only while tasks
	// are in flight so Sim.Run(0) still quiesces.
	activeTasks int
}

// controllerAdapter narrows switchd.Switch to the hostd.Controller surface.
type controllerAdapter struct{ sw *switchd.Switch }

func (c controllerAdapter) RegisterFlow(fk core.FlowKey) (uint32, error) {
	if _, err := c.sw.RegisterFlow(fk); err != nil {
		return 0, err
	}
	// The control plane is synchronous in the simulation, so the epoch read
	// here is exactly the incarnation the registration landed on.
	return c.sw.Epoch(), nil
}

func (c controllerAdapter) RegisterFlowAt(fk core.FlowKey, start uint32) (uint32, error) {
	if _, err := c.sw.RegisterFlowAt(fk, start); err != nil {
		return 0, err
	}
	return c.sw.Epoch(), nil
}

func (c controllerAdapter) AllocRegion(spec core.TaskSpec) (hostd.AllocInfo, error) {
	_, err := c.sw.AllocRegion(spec.ID, spec.Receiver, spec.Op, spec.Rows)
	return hostd.AllocInfo{}, err
}

func (c controllerAdapter) FreeRegion(task core.TaskID) error { return c.sw.FreeRegion(task) }

// NewCluster builds a rack: one ASK switch and Hosts servers, each running
// a host daemon with Config.DataChannels persistent channels. It returns
// an error only for invalid options (non-positive Hosts, a Config the
// switch or daemons reject).
func NewCluster(opts Options) (*Cluster, error) {
	if opts.Hosts <= 0 {
		return nil, fmt.Errorf("ask: Hosts must be positive")
	}
	if opts.Config.NumAAs == 0 {
		opts.Config = core.DefaultConfig()
	}
	if opts.Link.BandwidthBps == 0 {
		opts.Link = netsim.DefaultLinkConfig()
	}
	if opts.Cores == 0 {
		opts.Cores = cpumodel.DefaultCores
	}
	if opts.Switch.MaxFlows == 0 {
		opts.Switch = switchd.DefaultOptions()
	}
	s := sim.New(opts.Seed)
	tel := telemetry.NewSet(s, opts.Telemetry)
	sink := tel.Sink()
	n := netsim.New(s, opts.Link)
	n.Instrument(sink)
	// Hand links the byte codec so the corruption fault path can deliver
	// real damaged bytes (never SkipVerify here — the on-wire encoding is
	// always checksummed; verification policy lives at the receivers).
	n.SetCodec(wire.NewCodec(opts.Config.KPartBytes))
	swOpts := opts.Switch
	swOpts.Telemetry = sink
	sw, err := switchd.New(s, n, opts.Config, swOpts)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		Sim:     s,
		Net:     n,
		Switch:  sw,
		Tel:     tel,
		opts:    opts,
		daemons: make(map[core.HostID]*hostd.Daemon),
		cpus:    make(map[core.HostID]*cpumodel.Host),
	}
	for h := 0; h < opts.Hosts; h++ {
		id := core.HostID(h)
		cpu := cpumodel.NewHost(s, opts.Cores)
		d, err := hostd.New(s, n, cpu, opts.Config, id, controllerAdapter{sw}, sink)
		if err != nil {
			return nil, err
		}
		cl.daemons[id] = d
		cl.cpus[id] = cpu
	}
	return cl, nil
}

// taskStarted/taskFinished bracket the telemetry sampler around the span of
// in-flight tasks: the sampler self-reschedules on the sim clock, so leaving
// it running on an idle cluster would keep Sim.Run(0) from quiescing.
func (c *Cluster) taskStarted() {
	c.activeTasks++
	if c.activeTasks == 1 && c.Tel != nil && c.Tel.Sampler != nil {
		c.Tel.Sampler.Start()
	}
}

func (c *Cluster) taskFinished() {
	c.activeTasks--
	if c.activeTasks == 0 && c.Tel != nil && c.Tel.Sampler != nil {
		c.Tel.Sampler.Stop()
	}
}

// TheSwitch is the fabric address of the rack's only switch for the
// addressed fault-injection surface (chaos.Fabric): rack deployments have a
// single switch, and it answers to address 0. Fat-tree switches use the
// netsim.LeafAddr/SpineAddr range instead.
const TheSwitch core.HostID = 0

// Simulation returns the deterministic virtual-time kernel (the
// chaos.Fabric surface).
func (c *Cluster) Simulation() *sim.Simulation { return c.Sim }

// TelemetrySet returns the cluster observability set, nil when telemetry is
// disabled (the chaos.Fabric surface).
func (c *Cluster) TelemetrySet() *telemetry.Set { return c.Tel }

// CrashSwitch crashes the rack's switch: every frame black-holes until
// RebootSwitch. The only valid address is TheSwitch (0) — any other addr
// returns an error, since the rack has exactly one switch.
func (c *Cluster) CrashSwitch(addr core.HostID) error {
	if addr != TheSwitch {
		return fmt.Errorf("ask: rack has no switch at fabric address %#x", addr)
	}
	c.Switch.Crash()
	return nil
}

// RebootSwitch reboots the rack's switch as a fresh incarnation (state
// wiped, epoch advanced). Like CrashSwitch it returns an error for any
// address other than TheSwitch.
func (c *Cluster) RebootSwitch(addr core.HostID) error {
	if addr != TheSwitch {
		return fmt.Errorf("ask: rack has no switch at fabric address %#x", addr)
	}
	c.Switch.Reboot()
	return nil
}

// HostUplink returns a host's uplink to the switch (fault injection, stats).
func (c *Cluster) HostUplink(h core.HostID) *netsim.Link { return c.Net.Uplink(h) }

// HostDownlink returns a host's downlink from the switch.
func (c *Cluster) HostDownlink(h core.HostID) *netsim.Link { return c.Net.Downlink(h) }

// Daemon returns the host daemon of a server.
func (c *Cluster) Daemon(h core.HostID) *hostd.Daemon { return c.daemons[h] }

// CPU returns the CPU model of a server.
func (c *Cluster) CPU(h core.HostID) *cpumodel.Host { return c.cpus[h] }

// Config returns the deployment configuration.
func (c *Cluster) Config() core.Config { return c.opts.Config }

// TaskResult is the outcome of one aggregation task.
type TaskResult struct {
	Result core.Result
	// Elapsed is the virtual time from submission to completion.
	Elapsed sim.Time
	// Recv holds the receiver-side counters.
	Recv hostd.RecvTaskStats
	// Switch holds the switch-side counters for the task.
	Switch switchd.TaskStats
	// Degraded is the longest time any participating daemon spent in
	// degraded (host-only) mode while the task ran; zero on a fault-free
	// run or when Config.Failover is off.
	Degraded time.Duration
}

// RevokeRegion mimics the controller reclaiming a task's aggregator rows
// mid-flight (e.g. to make room for a higher-priority tenant): the switch
// stops aggregating for the task immediately, and after one control-RPC
// latency the receiver daemon learns of the revocation, drains the absorbed
// state, and continues host-only. Requires Config.Failover: it returns an
// error when failover is disabled or the receiver daemon is unknown.
func (c *Cluster) RevokeRegion(task core.TaskID, receiver core.HostID) error {
	if !c.opts.Config.Failover {
		return fmt.Errorf("ask: RevokeRegion requires Config.Failover")
	}
	d, ok := c.daemons[receiver]
	if !ok {
		return fmt.Errorf("ask: receiver host %d not in cluster", receiver)
	}
	if err := c.Switch.RevokeRegion(task); err != nil {
		return err
	}
	c.Sim.After(cpumodel.ControlRPCLatency, func() { d.OnRegionRevoked(task) })
	return nil
}

// Aggregate runs one complete aggregation task to completion: the receiver
// submits the task, each sender streams its tuples, and the merged result
// is returned once every FIN is in and switch state is fetched. It blocks
// until the virtual cluster quiesces. Setup errors are returned as from
// StartTask, task-execution errors as from Get.
func (c *Cluster) Aggregate(spec core.TaskSpec, streams map[core.HostID]core.Stream) (*TaskResult, error) {
	res, err := c.StartTask(spec, streams)
	if err != nil {
		return nil, err
	}
	c.Sim.Run(0)
	return res.Get()
}

// AggregateTimed runs one aggregation task whose sender streams carry
// arrival timestamps: each daemon consumes its stream on the sim clock —
// tuples enter the packetizer at their arrival offsets, partial packets
// flush on lulls — so the task experiences the trace's temporal shape
// (bursts, diurnal cycles, idle gaps) instead of back-to-back pressure.
// Its error behaviour matches Aggregate.
func (c *Cluster) AggregateTimed(spec core.TaskSpec, streams map[core.HostID]core.TimedStream) (*TaskResult, error) {
	res, err := c.StartTaskTimed(spec, streams)
	if err != nil {
		return nil, err
	}
	c.Sim.Run(0)
	return res.Get()
}

// PendingTask is a task started with StartTask whose result becomes
// available after the simulation runs.
type PendingTask struct {
	c      *Cluster
	spec   core.TaskSpec
	start  sim.Time
	handle *hostd.RecvHandle
	result *TaskResult
	err    error
}

// StartTask submits a task and its sender streams without running the
// simulation, so several tasks can run concurrently; call Sim.Run(0) (or
// Aggregate another task) and then Get. It returns an error when the spec
// names hosts outside the cluster or a sender has no stream; errors from
// the task's execution surface later, from Get.
func (c *Cluster) StartTask(spec core.TaskSpec, streams map[core.HostID]core.Stream) (*PendingTask, error) {
	has := func(h core.HostID) bool { _, ok := streams[h]; return ok }
	submit := func(d *hostd.Daemon, h core.HostID) { d.SubmitSend(spec.ID, streams[h]) }
	return c.startTask(spec, has, submit)
}

// StartTaskTimed is StartTask for timed sender streams (see
// AggregateTimed); its error behaviour matches StartTask.
func (c *Cluster) StartTaskTimed(spec core.TaskSpec, streams map[core.HostID]core.TimedStream) (*PendingTask, error) {
	has := func(h core.HostID) bool { _, ok := streams[h]; return ok }
	submit := func(d *hostd.Daemon, h core.HostID) { d.SubmitSendTimed(spec.ID, streams[h]) }
	return c.startTask(spec, has, submit)
}

func (c *Cluster) startTask(spec core.TaskSpec, hasStream func(core.HostID) bool, submit func(*hostd.Daemon, core.HostID)) (*PendingTask, error) {
	if len(spec.Senders) == 0 {
		return nil, fmt.Errorf("ask: task %d has no senders", spec.ID)
	}
	for _, s := range spec.Senders {
		if _, ok := c.daemons[s]; !ok {
			return nil, fmt.Errorf("ask: sender host %d not in cluster", s)
		}
		if !hasStream(s) {
			return nil, fmt.Errorf("ask: no stream for sender host %d", s)
		}
	}
	if _, ok := c.daemons[spec.Receiver]; !ok {
		return nil, fmt.Errorf("ask: receiver host %d not in cluster", spec.Receiver)
	}
	pt := &PendingTask{c: c, spec: spec, start: c.Sim.Now()}
	c.taskStarted()
	c.Sim.Spawn(fmt.Sprintf("driver-task%d", spec.ID), func(p *sim.Proc) {
		defer c.taskFinished()
		h, err := c.daemons[spec.Receiver].Submit(p, spec)
		if err != nil {
			pt.err = err
			return
		}
		pt.handle = h
		// Deterministic sender start order.
		senders := append([]core.HostID(nil), spec.Senders...)
		sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
		for _, s := range senders {
			submit(c.daemons[s], s)
		}
		result := h.Wait(p)
		var degraded time.Duration
		for _, hid := range append([]core.HostID{spec.Receiver}, senders...) {
			if dt := c.daemons[hid].FailoverStats().DegradedTime; dt > degraded {
				degraded = dt
			}
		}
		// A region revocation degrades only the task, not the daemon.
		if dt := h.Stats().Degraded; dt > degraded {
			degraded = dt
		}
		pt.result = &TaskResult{
			Result:   result,
			Elapsed:  p.Now() - pt.start,
			Recv:     h.Stats(),
			Switch:   *c.Switch.TaskStatsOf(spec.ID),
			Degraded: degraded,
		}
	})
	return pt, nil
}

// Get returns the task outcome; it errors if the task has not completed.
func (pt *PendingTask) Get() (*TaskResult, error) {
	if pt.err != nil {
		return nil, pt.err
	}
	if pt.result == nil {
		return nil, fmt.Errorf("ask: task %d did not complete (run the simulation to quiescence)", pt.spec.ID)
	}
	return pt.result, nil
}
