package ask

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/workload"
)

func ftFailoverOptions(seed int64) FatTreeOptions {
	c := core.DefaultConfig()
	c.ShadowCopy = false // fat-tree failover precondition
	c.Failover = true
	c.MaxRetries = 0 // outage windows must be bridged, not aborted
	return FatTreeOptions{Spines: 2, Leaves: 3, HostsPerLeaf: 2, Config: c, Seed: seed}
}

// ftFailoverWorkload is a cross-leaf task (receiver on leaf 0, one sender
// each on leaves 1 and 2) whose residue exercises every tier.
func ftFailoverWorkload(opts FatTreeOptions) (core.TaskSpec, map[core.HostID]core.Stream, core.Result) {
	spec := core.TaskSpec{ID: 1, Receiver: opts.HostAt(0, 0), Op: core.OpSum}
	streams := make(map[core.HostID]core.Stream)
	want := make(core.Result)
	for l := 1; l < opts.Leaves; l++ {
		h := opts.HostAt(l, 0)
		spec.Senders = append(spec.Senders, h)
		w := workload.Uniform(512, 20000, int64(30+l))
		streams[h] = w.Stream()
		want.Merge(w.Reference(core.OpSum), core.OpSum)
	}
	return spec, streams, want
}

// ftGoldenScale measures the fault-free task duration for the failover
// workload, so outages can be scheduled mid-stream at any workload size.
// (Task setup costs two control RPCs, so the stream itself occupies roughly
// the middle of the elapsed interval; callers place outages at 40–60%.)
func ftGoldenScale(t *testing.T, opts FatTreeOptions) time.Duration {
	t.Helper()
	fc, err := NewFatTreeCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	spec, streams, want := ftFailoverWorkload(opts)
	res, err := fc.Aggregate(spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(want) {
		t.Fatalf("golden run violates conservation: %s", res.Result.Diff(want, 5))
	}
	return time.Duration(res.Elapsed)
}

// ftOutageRun replays the failover workload with one switch outage window
// [crash, reboot) against the switch at addr, and returns the outcome.
type ftOutageOutcome struct {
	res     *TaskResult
	epoch   uint32
	replays int64
}

func ftOutageRun(t *testing.T, opts FatTreeOptions, addr core.HostID, crash, reboot time.Duration) ftOutageOutcome {
	t.Helper()
	fc, err := NewFatTreeCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	spec, streams, want := ftFailoverWorkload(opts)
	fc.Sim.At(sim.Time(0).Add(crash), func() {
		if err := fc.CrashSwitch(addr); err != nil {
			t.Errorf("CrashSwitch(%#x): %v", uint16(addr), err)
		}
	})
	fc.Sim.At(sim.Time(0).Add(reboot), func() {
		if err := fc.RebootSwitch(addr); err != nil {
			t.Errorf("RebootSwitch(%#x): %v", uint16(addr), err)
		}
	})
	pt, err := fc.StartTask(spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	fc.Sim.Run(0)
	res, err := pt.Get()
	if err != nil {
		t.Fatalf("task did not complete across the outage: %v", err)
	}
	// Zero tuples lost, none double-counted: the result is exactly the
	// host-computed ground truth.
	if !res.Result.Equal(want) {
		t.Fatalf("conservation violated across outage of %#x: %s", uint16(addr), res.Result.Diff(want, 5))
	}
	out := ftOutageOutcome{res: res, epoch: fc.FabricEpoch()}
	hosts := append([]core.HostID{spec.Receiver}, spec.Senders...)
	for _, h := range hosts {
		d := fc.Daemon(h)
		out.replays += d.FailoverStats().ReplaysSent
		if d.Degraded() {
			t.Errorf("host %d still degraded after the fabric healed", h)
		}
		if he := d.Epoch(); he > fc.FabricEpoch() {
			t.Errorf("host %d epoch %d ahead of fabric epoch %d", h, he, fc.FabricEpoch())
		}
	}
	return out
}

// TestFatTreeSpineOutageConservation crashes the task's elected spine
// mid-stream and heals it: the fabric re-elects the alternate spine, flows
// re-register under the new incarnations, and the final result is exact —
// no tuple lost with the spine's SRAM, none double-counted by replay.
func TestFatTreeSpineOutageConservation(t *testing.T) {
	opts := ftFailoverOptions(41)
	scale := ftGoldenScale(t, opts)
	spec, _, _ := ftFailoverWorkload(opts)
	spine := netsim.SpineAddr(int(uint32(spec.ID)) % opts.Spines)
	out := ftOutageRun(t, opts, spine, scale*2/5, scale*3/5)
	// A crash and a reboot each advance the fabric epoch once.
	if out.epoch != 3 {
		t.Fatalf("fabric epoch %d after one outage, want 3", out.epoch)
	}
	if out.replays == 0 {
		t.Fatal("no replays sent: the outage did not exercise recovery")
	}
	if out.res.Degraded == 0 {
		t.Fatal("no degraded interval recorded: the outage was not observed")
	}
}

// TestFatTreeSpineOutageDeterministic replays the spine-outage scenario
// twice from scratch: identical builds must produce byte-identical outcomes
// (same virtual elapsed time, same result map, same replay count).
func TestFatTreeSpineOutageDeterministic(t *testing.T) {
	opts := ftFailoverOptions(43)
	scale := ftGoldenScale(t, opts)
	spec, _, _ := ftFailoverWorkload(opts)
	spine := netsim.SpineAddr(int(uint32(spec.ID)) % opts.Spines)
	a := ftOutageRun(t, opts, spine, scale*2/5, scale*3/5)
	b := ftOutageRun(t, opts, spine, scale*2/5, scale*3/5)
	if a.res.Elapsed != b.res.Elapsed {
		t.Fatalf("elapsed diverged across identical runs: %v vs %v", a.res.Elapsed, b.res.Elapsed)
	}
	if !a.res.Result.Equal(b.res.Result) {
		t.Fatalf("results diverged across identical runs: %s", a.res.Result.Diff(b.res.Result, 5))
	}
	if a.replays != b.replays {
		t.Fatalf("replay counts diverged across identical runs: %d vs %d", a.replays, b.replays)
	}
}

// TestFatTreeLeafOutageConservation crashes a sender's leaf mid-stream: its
// hosts are cut off entirely (host-delivery and uplink both dead), degrade
// via probe timeouts, and recover — replaying history, restoring the
// cross-leaf residue — at the heal-time epoch bump. Conservation is exact.
func TestFatTreeLeafOutageConservation(t *testing.T) {
	opts := ftFailoverOptions(47)
	scale := ftGoldenScale(t, opts)
	out := ftOutageRun(t, opts, netsim.LeafAddr(1), scale*2/5, scale*3/5)
	if out.epoch != 3 {
		t.Fatalf("fabric epoch %d after one outage, want 3", out.epoch)
	}
	if out.replays == 0 {
		t.Fatal("no replays sent: the leaf outage did not exercise recovery")
	}
}

// TestFatTreeSingleSpineLeafOnlyFallback runs a one-spine fabric and kills
// that spine mid-stream: with no live spine the task degrades to leaf-only
// absorption plus host merge until the heal, and the result stays exact.
func TestFatTreeSingleSpineLeafOnlyFallback(t *testing.T) {
	opts := ftFailoverOptions(53)
	opts.Spines = 1
	scale := ftGoldenScale(t, opts)
	out := ftOutageRun(t, opts, netsim.SpineAddr(0), scale*2/5, scale*3/5)
	if out.epoch != 3 {
		t.Fatalf("fabric epoch %d after one outage, want 3", out.epoch)
	}
}

// TestFatTreeCrashSwitchErrors pins the chaos-facing error contract: bad
// addresses are rejected, fault injection without failover is rejected, and
// the fat-tree refuses single-point region revocation.
func TestFatTreeCrashSwitchErrors(t *testing.T) {
	opts := ftFailoverOptions(59)
	fc, err := NewFatTreeCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := fc.CrashSwitch(core.HostID(0x1234)); err == nil {
		t.Fatal("CrashSwitch accepted an address naming no switch")
	}
	if err := fc.RevokeRegion(1, opts.HostAt(0, 0)); err == nil {
		t.Fatal("RevokeRegion should be unsupported on the fat-tree")
	}

	plain, err := NewFatTreeCluster(FatTreeOptions{Spines: 2, Leaves: 2, HostsPerLeaf: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.CrashSwitch(netsim.LeafAddr(0)); err == nil {
		t.Fatal("CrashSwitch accepted a fabric built without Config.Failover")
	}
}

// TestFatTreeAllocRegionDegraded pins the typed degradation signal: with
// every aggregation point of a task down, region allocation fails with a
// *DegradedError (matched via errors.As, never by concrete type).
func TestFatTreeAllocRegionDegraded(t *testing.T) {
	opts := ftFailoverOptions(61)
	fc, err := NewFatTreeCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	// The task's points are sender leaves 1,2 plus the elected spine; take
	// them all down (receiver leaf 0 stays up so this is an allocation
	// failure, not an unreachable controller).
	for l := 1; l < opts.Leaves; l++ {
		if err := fc.CrashSwitch(netsim.LeafAddr(l)); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < opts.Spines; s++ {
		if err := fc.CrashSwitch(netsim.SpineAddr(s)); err != nil {
			t.Fatal(err)
		}
	}
	spec, _, _ := ftFailoverWorkload(opts)
	_, err = fc.allocRegion(0, spec)
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("allocRegion with every point down returned %v, want a *DegradedError", err)
	}
	if deg.Op != "alloc-region" || deg.Attempts == 0 {
		t.Fatalf("degraded error lost its context: %+v", deg)
	}
}
