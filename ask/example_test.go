package ask_test

import (
	"fmt"
	"sort"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/netsim"
)

// The smallest complete use of the service: three senders, one receiver,
// exact word counts out.
func ExampleCluster_aggregate() {
	cluster, err := ask.NewCluster(ask.Options{Hosts: 4, Seed: 42})
	if err != nil {
		panic(err)
	}
	res, err := cluster.Aggregate(core.TaskSpec{
		ID: 1, Receiver: 0, Senders: []core.HostID{1, 2, 3}, Op: core.OpSum,
	}, map[core.HostID]core.Stream{
		1: core.SliceStream([]core.KV{{Key: "go", Val: 3}, {Key: "gopher", Val: 1}}),
		2: core.SliceStream([]core.KV{{Key: "go", Val: 4}}),
		3: core.SliceStream([]core.KV{{Key: "gopher", Val: 7}}),
	})
	if err != nil {
		panic(err)
	}
	keys := make([]string, 0, len(res.Result))
	for k := range res.Result {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%s=%d\n", k, res.Result[k])
	}
	// Output:
	// go=7
	// gopher=8
}

// Aggregation stays exact on an unreliable network: the reliability
// machinery (§3.3) deduplicates every retransmission at the switch and the
// host.
func ExampleOptions_faultInjection() {
	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = 0.05
	link.Fault.DupProb = 0.02
	link.Fault.ReorderProb = 0.05
	link.Fault.ReorderDelay = 20 * time.Microsecond

	cluster, err := ask.NewCluster(ask.Options{Hosts: 2, Seed: 7, Link: link})
	if err != nil {
		panic(err)
	}
	var kvs []core.KV
	for i := 0; i < 10000; i++ {
		kvs = append(kvs, core.KV{Key: fmt.Sprintf("k%d", i%100), Val: 1})
	}
	res, err := cluster.Aggregate(core.TaskSpec{
		ID: 1, Receiver: 0, Senders: []core.HostID{1},
	}, map[core.HostID]core.Stream{1: core.SliceStream(kvs)})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Result["k0"] == 100, len(res.Result))
	// Output:
	// true 100
}
