package ask

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/hostd"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/switchd"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// MultiRackOptions configures the §7 multi-rack deployment: several racks,
// each with its own ASK switch on the TOR, joined by a forwarding core.
type MultiRackOptions struct {
	Racks        int
	HostsPerRack int
	Config       core.Config
	// HostLink configures host↔TOR links, CoreLink the TOR↔core links.
	HostLink netsim.LinkConfig
	CoreLink netsim.LinkConfig
	Cores    int
	Seed     int64
	// Switch sizes each TOR's state tables; MaxFlows bounds only that
	// rack's channels (the state-explosion containment of §7).
	Switch switchd.Options
	// Shards, when > 1, partitions the fabric into that many parallel event
	// lanes of contiguous racks (DESIGN.md "Parallel DES"): each rack's TOR,
	// hosts and local links run on a lane goroutine, synchronized at
	// conservative lookahead windows over the TOR↔core cuts. Results are
	// byte-identical to the serial build. Values <= 1, or more shards than
	// racks worth of parallelism, clamp toward serial (netsim.EffectiveShards);
	// Shards <= 1 takes the exact serial code path.
	Shards int
}

// MultiRackCluster is a two-tier deployment. Aggregation tasks get
// in-network aggregation from the receiver's TOR for rack-local senders;
// cross-rack traffic bypasses the receiver's TOR and is aggregated at the
// receiver host (§7), so no TOR ever holds state for another rack's
// channels.
type MultiRackCluster struct {
	Sim  *sim.Simulation
	Net  *netsim.TwoTier
	TORs []*switchd.Switch

	opts    MultiRackOptions
	daemons map[core.HostID]*hostd.Daemon
	cpus    map[core.HostID]*cpumodel.Host
}

// HostAt returns the host ID of slot i in rack r.
func (o MultiRackOptions) HostAt(r, i int) core.HostID {
	return core.HostID(r*o.HostsPerRack + i)
}

// NewMultiRackCluster builds the deployment. Host IDs are assigned
// rack-major: rack r holds IDs [r·HostsPerRack, (r+1)·HostsPerRack). It
// returns an error only for invalid options (non-positive Racks or
// HostsPerRack, or a Config the switches or daemons reject).
func NewMultiRackCluster(opts MultiRackOptions) (*MultiRackCluster, error) {
	if opts.Racks <= 0 || opts.HostsPerRack <= 0 {
		return nil, fmt.Errorf("ask: need positive Racks and HostsPerRack")
	}
	if opts.Config.NumAAs == 0 {
		opts.Config = core.DefaultConfig()
	}
	if opts.HostLink.BandwidthBps == 0 {
		opts.HostLink = netsim.DefaultLinkConfig()
	}
	if opts.CoreLink.BandwidthBps == 0 {
		opts.CoreLink = netsim.DefaultLinkConfig()
	}
	if opts.Cores == 0 {
		opts.Cores = cpumodel.DefaultCores
	}
	if opts.Switch.MaxFlows == 0 {
		opts.Switch = switchd.DefaultOptions()
	}
	s := sim.New(opts.Seed)
	tt, _ := netsim.NewTwoTierSharded(s, opts.Racks, opts.Shards, opts.HostLink, opts.CoreLink)
	tt.SetCodec(wire.NewCodec(opts.Config.KPartBytes))
	mc := &MultiRackCluster{
		Sim:     s,
		Net:     tt,
		opts:    opts,
		daemons: make(map[core.HostID]*hostd.Daemon),
		cpus:    make(map[core.HostID]*cpumodel.Host),
	}
	for r := 0; r < opts.Racks; r++ {
		// RackSim is the rack's shard lane for a sharded build and the
		// fabric-wide simulation otherwise; every piece of rack-local state
		// (TOR program, host CPUs, daemons) schedules only there.
		sw, err := switchd.New(tt.RackSim(r), tt.TOR(r), opts.Config, opts.Switch)
		if err != nil {
			return nil, fmt.Errorf("ask: rack %d TOR: %w", r, err)
		}
		mc.TORs = append(mc.TORs, sw)
	}
	for r := 0; r < opts.Racks; r++ {
		for i := 0; i < opts.HostsPerRack; i++ {
			id := opts.HostAt(r, i)
			cpu := cpumodel.NewHost(tt.RackSim(r), opts.Cores)
			// Each daemon's control plane is its own rack's TOR: channels
			// register there, and a receiver allocates its task region
			// there — never on a remote TOR. That same locality is what
			// makes the sharded build race-free without rendezvous: no
			// control call ever crosses a lane.
			// Zero telemetry sink: multi-rack daemons keep private
			// registries (per-host/per-task label sets would collide on
			// a shared registry across TORs).
			d, err := hostd.New(tt.RackSim(r), rackFabric{tt, r}, cpu, opts.Config, id, controllerAdapter{mc.TORs[r]}, telemetry.Sink{})
			if err != nil {
				return nil, err
			}
			mc.daemons[id] = d
			mc.cpus[id] = cpu
		}
	}
	return mc, nil
}

// rackFabric narrows the two-tier fabric to one rack's host attach point.
type rackFabric struct {
	tt   *netsim.TwoTier
	rack int
}

func (rf rackFabric) AttachHost(id core.HostID, h netsim.HostHandler) {
	rf.tt.AttachHostRack(rf.rack, id, h)
}
func (rf rackFabric) HostSend(f *netsim.Frame)           { rf.tt.HostSend(f) }
func (rf rackFabric) Uplink(id core.HostID) *netsim.Link { return rf.tt.Uplink(id) }

// Daemon returns a host's daemon.
func (mc *MultiRackCluster) Daemon(h core.HostID) *hostd.Daemon { return mc.daemons[h] }

// CPU returns a host's CPU model.
func (mc *MultiRackCluster) CPU(h core.HostID) *cpumodel.Host { return mc.cpus[h] }

// ReceiverTOR returns the switch that serves a task at the given receiver.
func (mc *MultiRackCluster) ReceiverTOR(receiver core.HostID) *switchd.Switch {
	return mc.TORs[mc.Net.RackOf(receiver)]
}

// Aggregate runs one task to completion, exactly as Cluster.Aggregate but
// on the two-tier fabric: rack-local senders are aggregated at the
// receiver's TOR, remote senders at the receiver host. It returns an
// error when the spec names hosts outside the cluster or a sender has no
// stream, and propagates task-execution errors unchanged.
func (mc *MultiRackCluster) Aggregate(spec core.TaskSpec, streams map[core.HostID]core.Stream) (*TaskResult, error) {
	recv, ok := mc.daemons[spec.Receiver]
	if !ok {
		return nil, fmt.Errorf("ask: receiver host %d not in cluster", spec.Receiver)
	}
	for _, s := range spec.Senders {
		if _, ok := mc.daemons[s]; !ok {
			return nil, fmt.Errorf("ask: sender host %d not in cluster", s)
		}
		if _, ok := streams[s]; !ok {
			return nil, fmt.Errorf("ask: no stream for sender host %d", s)
		}
	}
	var result *TaskResult
	var err error
	start := mc.Sim.Now()
	mc.Sim.Spawn(fmt.Sprintf("mr-driver-task%d", spec.ID), func(p *sim.Proc) {
		h, e := recv.Submit(p, spec)
		if e != nil {
			err = e
			return
		}
		senders := append([]core.HostID(nil), spec.Senders...)
		sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
		for _, s := range senders {
			mc.daemons[s].SubmitSend(spec.ID, streams[s])
		}
		res := h.Wait(p)
		result = &TaskResult{
			Result:  res,
			Elapsed: p.Now() - start,
			Recv:    h.Stats(),
			Switch:  *mc.ReceiverTOR(spec.Receiver).TaskStatsOf(spec.ID),
		}
	})
	mc.Sim.Run(0)
	if err != nil {
		return nil, err
	}
	if result == nil {
		return nil, fmt.Errorf("ask: task %d did not complete", spec.ID)
	}
	return result, nil
}
