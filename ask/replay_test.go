package ask

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tenancy"
	"repro/internal/workload"
	"repro/internal/workload/scenario"
)

// replayTuples keeps the full-corpus round trips fast: record/replay
// equivalence is a structural property, not a scale one.
const replayTuples = 3_000

// runTimed replays timed per-sender streams through a fresh cluster and
// verifies the result exactly.
func runTimed(t *testing.T, seed int64, parts [][]core.TimedKV) *TaskResult {
	t.Helper()
	cl, err := NewCluster(Options{Hosts: len(parts) + 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	spec := core.TaskSpec{ID: 1, Receiver: 0, Op: core.OpSum}
	streams := make(map[core.HostID]core.TimedStream, len(parts))
	want := make(core.Result)
	for i, part := range parts {
		h := core.HostID(i + 1)
		spec.Senders = append(spec.Senders, h)
		streams[h] = core.SliceTimedStream(part)
		for _, tkv := range part {
			want.MergeKV(tkv.KV, core.OpSum)
		}
	}
	res, err := cl.AggregateTimed(spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(want) {
		t.Fatalf("aggregation incorrect: %s", res.Result.Diff(want, 8))
	}
	return res
}

// TestScenarioCorpusReplayMatchesDirect is the record/replay golden lock:
// for every corpus scenario, running the generator's timed stream directly
// and replaying the recorded v2 trace must be indistinguishable — same
// aggregate, same tuple counts, same virtual-time completion — because the
// trace captures everything the generator feeds the cluster.
func TestScenarioCorpusReplayMatchesDirect(t *testing.T) {
	const senders = 2
	for _, s := range scenario.All() {
		s := s.WithTuples(replayTuples)
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			// Direct: generate → split → timed aggregation.
			direct := runTimed(t, s.Seed,
				workload.SplitTimedRoundRobin(core.CollectTimed(s.TimedStream()), senders))

			// Recorded: generate → encode → decode → split → replay.
			var buf bytes.Buffer
			if _, err := workload.WriteTimedTrace(&buf, s.Header(), s.TimedStream()); err != nil {
				t.Fatal(err)
			}
			hdr, tkvs, err := workload.ReadTrace(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if hdr.Scenario != s.Name {
				t.Fatalf("trace header names %q", hdr.Scenario)
			}
			replay := runTimed(t, s.Seed, workload.SplitTimedRoundRobin(tkvs, senders))

			if !replay.Result.Equal(direct.Result) {
				t.Fatalf("replay result diverged: %s", replay.Result.Diff(direct.Result, 8))
			}
			if replay.Elapsed != direct.Elapsed {
				t.Fatalf("replay elapsed %v, direct %v", replay.Elapsed, direct.Elapsed)
			}
			if replay.Switch.TuplesIn != direct.Switch.TuplesIn {
				t.Fatalf("replay switch saw %d tuples, direct %d",
					replay.Switch.TuplesIn, direct.Switch.TuplesIn)
			}

			// Pacing proof: the task cannot complete before the last tuple
			// has even arrived, so elapsed covers the trace's span.
			last := tkvs[len(tkvs)-1].At
			if time.Duration(direct.Elapsed) < last {
				t.Fatalf("elapsed %v < last arrival %v: pacing did not take effect",
					time.Duration(direct.Elapsed), last)
			}
		})
	}
}

// TestScenarioCorpusFatTreeTenantRoundTrip extends the record/replay lock to
// the multi-tenant fabric: two corpus scenarios, one per tenant, run
// concurrently through a 2-tenant fat-tree — once straight from the
// generators, once from the encoded-then-decoded v2 traces. The partitioned,
// admission-controlled fabric must be indistinguishable between the two:
// same per-tenant aggregates, same virtual completion times, same per-task
// switch counters.
func TestScenarioCorpusFatTreeTenantRoundTrip(t *testing.T) {
	const senders = 2
	scenarios := map[core.TenantID]string{1: "flash-crowd", 2: "mixed-diurnal-growth"}

	// load returns a tenant's per-sender streams twice: straight from the
	// generator, and through a trace encode/decode round trip.
	load := func(name string) (direct, replay [][]core.TimedKV) {
		s, err := scenario.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		s = s.WithTuples(replayTuples)
		direct = workload.SplitTimedRoundRobin(core.CollectTimed(s.TimedStream()), senders)
		var buf bytes.Buffer
		if _, err := workload.WriteTimedTrace(&buf, s.Header(), s.TimedStream()); err != nil {
			t.Fatal(err)
		}
		hdr, tkvs, err := workload.ReadTrace(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.Scenario != name {
			t.Fatalf("trace header names %q, want %q", hdr.Scenario, name)
		}
		return direct, workload.SplitTimedRoundRobin(tkvs, senders)
	}

	run := func(parts map[core.TenantID][][]core.TimedKV) map[core.TenantID]*TaskResult {
		opts := FatTreeOptions{
			Spines: 2, Leaves: 3, HostsPerLeaf: 2, Seed: 23,
			Tenants: []tenancy.TenantSpec{{ID: 1, Weight: 1}, {ID: 2, Weight: 1}},
		}
		fc, err := NewFatTreeCluster(opts)
		if err != nil {
			t.Fatal(err)
		}
		pending := make(map[core.TenantID]*FatTreePendingTask)
		wants := make(map[core.TenantID]core.Result)
		for i, tn := range []core.TenantID{1, 2} {
			spec := core.TaskSpec{
				ID: core.MakeTaskID(tn, 1), Receiver: opts.HostAt(0, i), Op: core.OpSum,
			}
			streams := make(map[core.HostID]core.TimedStream, senders)
			want := make(core.Result)
			for j, part := range parts[tn] {
				h := opts.HostAt(1+j, i) // tenants side by side on the sender leaves
				spec.Senders = append(spec.Senders, h)
				streams[h] = core.SliceTimedStream(part)
				for _, tkv := range part {
					want.MergeKV(tkv.KV, core.OpSum)
				}
			}
			pt, err := fc.StartTaskTimed(spec, streams)
			if err != nil {
				t.Fatal(err)
			}
			pending[tn], wants[tn] = pt, want
		}
		fc.Sim.Run(0)
		out := make(map[core.TenantID]*TaskResult)
		for tn, pt := range pending {
			res, err := pt.Get()
			if err != nil {
				t.Fatalf("tenant %d: %v", tn, err)
			}
			if !res.Result.Equal(wants[tn]) {
				t.Fatalf("tenant %d aggregation wrong: %s", tn, res.Result.Diff(wants[tn], 8))
			}
			out[tn] = res
		}
		return out
	}

	directParts := make(map[core.TenantID][][]core.TimedKV)
	replayParts := make(map[core.TenantID][][]core.TimedKV)
	for tn, name := range scenarios {
		directParts[tn], replayParts[tn] = load(name)
	}
	direct := run(directParts)
	replay := run(replayParts)
	for tn := range scenarios {
		d, r := direct[tn], replay[tn]
		if !r.Result.Equal(d.Result) {
			t.Fatalf("tenant %d: replay result diverged: %s", tn, r.Result.Diff(d.Result, 8))
		}
		if r.Elapsed != d.Elapsed {
			t.Fatalf("tenant %d: replay elapsed %v, direct %v", tn, r.Elapsed, d.Elapsed)
		}
		if r.Switch != d.Switch {
			t.Fatalf("tenant %d: fabric counters diverged:\nreplay %+v\ndirect %+v", tn, r.Switch, d.Switch)
		}
	}
}

// TestScenarioCorpusTimedDeterminism locks seed → simulation determinism
// end to end: two full timed runs of the same scenario agree on every
// counter, and the sim clock (not the wall clock) carried the arrivals.
func TestScenarioCorpusTimedDeterminism(t *testing.T) {
	s, err := scenario.ByName("mixed-diurnal-growth")
	if err != nil {
		t.Fatal(err)
	}
	s = s.WithTuples(replayTuples)
	parts := workload.SplitTimedRoundRobin(core.CollectTimed(s.TimedStream()), 3)
	a := runTimed(t, s.Seed, parts)
	b := runTimed(t, s.Seed, parts)
	if a.Elapsed != b.Elapsed || a.Switch != b.Switch || a.Recv != b.Recv {
		t.Fatalf("two identical timed runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Elapsed == sim.Time(0) {
		t.Fatal("no virtual time elapsed")
	}
}

// TestTimedMatchesUntimedResult checks the timed path changes *when*
// tuples move, never *what* they aggregate to: the same records replayed
// with and without timestamps produce the same result.
func TestTimedMatchesUntimedResult(t *testing.T) {
	s, err := scenario.ByName("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	s = s.WithTuples(replayTuples)
	tkvs := core.CollectTimed(s.TimedStream())
	parts := workload.SplitTimedRoundRobin(tkvs, 2)
	timed := runTimed(t, s.Seed, parts)

	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1, 2}, Op: core.OpSum}
	data := map[core.HostID][]core.KV{}
	for i, part := range parts {
		kvs := make([]core.KV, len(part))
		for j, tkv := range part {
			kvs[j] = tkv.KV
		}
		data[core.HostID(i+1)] = kvs
	}
	untimed := run(t, Options{Hosts: 3, Seed: s.Seed}, spec, data)
	if !timed.Result.Equal(untimed.Result) {
		t.Fatalf("timed and untimed runs disagree: %s", timed.Result.Diff(untimed.Result, 8))
	}
}
