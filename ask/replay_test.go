package ask

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/internal/workload/scenario"
)

// replayTuples keeps the full-corpus round trips fast: record/replay
// equivalence is a structural property, not a scale one.
const replayTuples = 3_000

// runTimed replays timed per-sender streams through a fresh cluster and
// verifies the result exactly.
func runTimed(t *testing.T, seed int64, parts [][]core.TimedKV) *TaskResult {
	t.Helper()
	cl, err := NewCluster(Options{Hosts: len(parts) + 1, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	spec := core.TaskSpec{ID: 1, Receiver: 0, Op: core.OpSum}
	streams := make(map[core.HostID]core.TimedStream, len(parts))
	want := make(core.Result)
	for i, part := range parts {
		h := core.HostID(i + 1)
		spec.Senders = append(spec.Senders, h)
		streams[h] = core.SliceTimedStream(part)
		for _, tkv := range part {
			want.MergeKV(tkv.KV, core.OpSum)
		}
	}
	res, err := cl.AggregateTimed(spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Result.Equal(want) {
		t.Fatalf("aggregation incorrect: %s", res.Result.Diff(want, 8))
	}
	return res
}

// TestScenarioCorpusReplayMatchesDirect is the record/replay golden lock:
// for every corpus scenario, running the generator's timed stream directly
// and replaying the recorded v2 trace must be indistinguishable — same
// aggregate, same tuple counts, same virtual-time completion — because the
// trace captures everything the generator feeds the cluster.
func TestScenarioCorpusReplayMatchesDirect(t *testing.T) {
	const senders = 2
	for _, s := range scenario.All() {
		s := s.WithTuples(replayTuples)
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			// Direct: generate → split → timed aggregation.
			direct := runTimed(t, s.Seed,
				workload.SplitTimedRoundRobin(core.CollectTimed(s.TimedStream()), senders))

			// Recorded: generate → encode → decode → split → replay.
			var buf bytes.Buffer
			if _, err := workload.WriteTimedTrace(&buf, s.Header(), s.TimedStream()); err != nil {
				t.Fatal(err)
			}
			hdr, tkvs, err := workload.ReadTrace(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if hdr.Scenario != s.Name {
				t.Fatalf("trace header names %q", hdr.Scenario)
			}
			replay := runTimed(t, s.Seed, workload.SplitTimedRoundRobin(tkvs, senders))

			if !replay.Result.Equal(direct.Result) {
				t.Fatalf("replay result diverged: %s", replay.Result.Diff(direct.Result, 8))
			}
			if replay.Elapsed != direct.Elapsed {
				t.Fatalf("replay elapsed %v, direct %v", replay.Elapsed, direct.Elapsed)
			}
			if replay.Switch.TuplesIn != direct.Switch.TuplesIn {
				t.Fatalf("replay switch saw %d tuples, direct %d",
					replay.Switch.TuplesIn, direct.Switch.TuplesIn)
			}

			// Pacing proof: the task cannot complete before the last tuple
			// has even arrived, so elapsed covers the trace's span.
			last := tkvs[len(tkvs)-1].At
			if time.Duration(direct.Elapsed) < last {
				t.Fatalf("elapsed %v < last arrival %v: pacing did not take effect",
					time.Duration(direct.Elapsed), last)
			}
		})
	}
}

// TestScenarioCorpusTimedDeterminism locks seed → simulation determinism
// end to end: two full timed runs of the same scenario agree on every
// counter, and the sim clock (not the wall clock) carried the arrivals.
func TestScenarioCorpusTimedDeterminism(t *testing.T) {
	s, err := scenario.ByName("mixed-diurnal-growth")
	if err != nil {
		t.Fatal(err)
	}
	s = s.WithTuples(replayTuples)
	parts := workload.SplitTimedRoundRobin(core.CollectTimed(s.TimedStream()), 3)
	a := runTimed(t, s.Seed, parts)
	b := runTimed(t, s.Seed, parts)
	if a.Elapsed != b.Elapsed || a.Switch != b.Switch || a.Recv != b.Recv {
		t.Fatalf("two identical timed runs diverged:\n%+v\n%+v", a, b)
	}
	if a.Elapsed == sim.Time(0) {
		t.Fatal("no virtual time elapsed")
	}
}

// TestTimedMatchesUntimedResult checks the timed path changes *when*
// tuples move, never *what* they aggregate to: the same records replayed
// with and without timestamps produce the same result.
func TestTimedMatchesUntimedResult(t *testing.T) {
	s, err := scenario.ByName("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	s = s.WithTuples(replayTuples)
	tkvs := core.CollectTimed(s.TimedStream())
	parts := workload.SplitTimedRoundRobin(tkvs, 2)
	timed := runTimed(t, s.Seed, parts)

	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1, 2}, Op: core.OpSum}
	data := map[core.HostID][]core.KV{}
	for i, part := range parts {
		kvs := make([]core.KV, len(part))
		for j, tkv := range part {
			kvs[j] = tkv.KV
		}
		data[core.HostID(i+1)] = kvs
	}
	untimed := run(t, Options{Hosts: 3, Seed: s.Seed}, spec, data)
	if !timed.Result.Equal(untimed.Result) {
		t.Fatalf("timed and untimed runs disagree: %s", timed.Result.Diff(untimed.Result, 8))
	}
}
