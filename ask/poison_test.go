package ask

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// TestPoolPoisonSoak runs full aggregations with use-after-release poisoning
// enabled on the packet free list. Any spot in switchd/hostd/netsim that
// releases a packet while another reference is still live would read the
// sentinel values and corrupt the result (or trip a decode error), so an
// exact result here is an end-to-end proof of the ownership discipline
// described in wire/pool.go.
//
// The fault mix deliberately exercises every release path: loss and
// blackholed duplicates (release at the link), reordering (delivery from the
// kernel's timer path), duplication (multi-copy delivery where clone elision
// must NOT kick in), and enough traffic to force swaps, fetches, and
// long-key spills.
func TestPoolPoisonSoak(t *testing.T) {
	wire.SetPoolPoison(true)
	defer wire.SetPoolPoison(false)

	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = 0.03
	link.Fault.DupProb = 0.03
	link.Fault.ReorderProb = 0.05
	link.Fault.ReorderDelay = 30 * time.Microsecond

	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1, 2, 3}}
	data := map[core.HostID][]core.KV{
		1: genStream(101, 6000, 300),
		2: genStream(102, 6000, 300),
		3: genStream(103, 6000, 300),
	}
	res := run(t, Options{Hosts: 4, Seed: 11, Link: link}, spec, data)
	checkExact(t, res, core.OpSum, data)
	if res.Switch.TuplesAggregated == 0 {
		t.Fatal("switch aggregated nothing under poison soak")
	}
}

// TestPoolPoisonDeterminism proves pooling cannot perturb results: the same
// seed must produce an identical aggregate and identical virtual elapsed
// time with poisoning on and off (poison only rewrites dead storage).
func TestPoolPoisonDeterminism(t *testing.T) {
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1, 2}}
	data := map[core.HostID][]core.KV{
		1: genStream(104, 4000, 200),
		2: genStream(105, 4000, 200),
	}
	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = 0.02
	link.Fault.DupProb = 0.02

	runOnce := func(poison bool) *TaskResult {
		wire.SetPoolPoison(poison)
		defer wire.SetPoolPoison(false)
		return run(t, Options{Hosts: 3, Seed: 21, Link: link}, spec, data)
	}
	a := runOnce(false)
	b := runOnce(true)
	if !a.Result.Equal(b.Result) {
		t.Fatalf("poison mode changed the aggregate: %s", a.Result.Diff(b.Result, 8))
	}
	if a.Elapsed != b.Elapsed {
		t.Fatalf("poison mode changed virtual time: %v vs %v", a.Elapsed, b.Elapsed)
	}
}
