package ask

import (
	"testing"

	"repro/internal/core"
	"repro/internal/switchd"
	"repro/internal/window"
	"repro/internal/workload"
)

// congestedRun drives eight transport-only senders (no switch absorption)
// into one receiver: the receiver's downlink is 8× oversubscribed, its
// queueing delay (8 senders × W packets of wire time ≈ 220 µs) exceeds the
// 100 µs retransmission timeout, and without congestion control the fixed
// windows melt down into retransmission storms.
func congestedRun(t *testing.T, cc bool) (retransmits, sent int64, result core.Result, want core.Result) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Window = 1024
	cfg.CongestionControl = cc
	cfg.MediumGroups = 0
	cfg.MediumSegs = 0
	cfg.ShadowCopy = false
	cfg.SwapThreshold = 0
	// W=1024 needs a smaller flow table to fit pkt_state in one PISA
	// stage (the SRAM budget is enforced): 9 hosts × 5 channels < 64.
	swOpts := switchd.DefaultOptions()
	swOpts.MaxFlows = 64
	cl, err := NewCluster(Options{Hosts: 9, Config: cfg, Seed: 3, Switch: swOpts})
	if err != nil {
		t.Fatal(err)
	}
	spec := core.TaskSpec{ID: 1, Receiver: 0, Op: core.OpSum, Rows: -1} // transport-only
	streams := make(map[core.HostID]core.Stream)
	want = make(core.Result)
	for i := 1; i <= 8; i++ {
		h := core.HostID(i)
		spec.Senders = append(spec.Senders, h)
		w := workload.Uniform(2048, 60_000, int64(i))
		streams[h] = w.Stream()
		want.Merge(w.Reference(core.OpSum), core.OpSum)
	}
	res, err := cl.Aggregate(spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	var stats window.SenderStats
	for i := 1; i <= 8; i++ {
		for _, s := range cl.Daemon(core.HostID(i)).ChannelStats() {
			stats.Retransmits += s.Retransmits
			stats.Sent += s.Sent
		}
	}
	return stats.Retransmits, stats.Sent, res.Result, want
}

func TestCongestionControlTamesIncast(t *testing.T) {
	offR, offS, offRes, want := congestedRun(t, false)
	if !offRes.Equal(want) {
		t.Fatalf("without CC: wrong result: %s", offRes.Diff(want, 5))
	}
	onR, onS, onRes, want2 := congestedRun(t, true)
	if !onRes.Equal(want2) {
		t.Fatalf("with CC: wrong result: %s", onRes.Diff(want2, 5))
	}
	offRatio := float64(offR) / float64(offS)
	onRatio := float64(onR) / float64(onS)
	t.Logf("retransmit ratio: off=%.3f (%d/%d) on=%.3f (%d/%d)", offRatio, offR, offS, onRatio, onR, onS)
	// Correctness holds either way; congestion control must cut the
	// spurious-retransmission ratio substantially under incast.
	if onRatio > offRatio/2 {
		t.Fatalf("CC did not tame incast: %.3f vs %.3f", onRatio, offRatio)
	}
}
