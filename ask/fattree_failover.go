package ask

// Hierarchical failover for the fat-tree fabric (README "Failure model").
//
// The rack's epoch protocol generalizes to the spine/leaf fabric through one
// rule: the fabric shares a single epoch. Every switch outage event — a
// crash AND the later reboot — advances FatTreeCluster's fabricEpoch, and
// the controller synchronously (a) pushes the new epoch into every live
// switch (switchd.SetEpoch) and (b) frees every task's regions fabric-wide.
// Hosts observe the new incarnation through whatever stamped packet reaches
// them first (leaf-terminated probe replies, ACKs) and run the unchanged
// hostd recovery: re-register flows at their current window position, replay
// retained history as host-only bypass traffic, re-allocate regions.
//
// Freeing ALL regions at every bump — rather than keeping survivors on
// switches that did not crash — is what makes exactly-one-absorption hold
// across tiers. A surviving region would keep absorbing old-epoch packets
// still in flight after the bump while the sender replays the same records
// (double count), and conversely a region kept across the bump could absorb
// new-epoch traffic whose history records then carry absorbEpoch equal to
// the live registration, which replay skips (lost tuples). With the bump
// acting as a fabric-wide barrier, every tuple is either already claimed at
// the receiver (the claimBits ledger keeps replays from re-counting it) or
// recovered by replay; absorbed-but-unfetched state anywhere on the tree is
// discarded and replayed exactly once.
//
// Spine outages re-elect: netsim.SpineFor walks the task-hashed candidate
// order (h, h+1, ...) and returns the first live spine, so routing and
// region placement move together. Spines run sequence-tagged seen state, so
// the re-elected spine tolerates the mid-stream sequence jump. With no live
// spine the task degrades to leaf-only absorption plus host merge. Leaf
// outages cut that leaf's hosts off entirely; they degrade via probe
// timeouts and recover — replaying their history, restoring cross-leaf
// residue — at the heal-time bump.

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/switchd"
	"repro/internal/telemetry"
)

// DegradedError is the typed degradation signal returned by fabric
// control-plane operations (region allocation, flow re-registration) while
// the switches they need are down; match with errors.As. See
// core.DegradedError for the fields.
type DegradedError = core.DegradedError

// FabricEpoch returns the fabric-wide incarnation number (starts at 1; each
// switch crash and each reboot advances it by one).
func (fc *FatTreeCluster) FabricEpoch() uint32 { return fc.fabricEpoch }

// SwitchDown reports whether the switch at fabric address addr is crashed.
// It panics, like every fabric-address lookup, when addr names no switch.
func (fc *FatTreeCluster) SwitchDown(addr core.HostID) bool { return fc.switchAt(addr).Down() }

// lookupSwitch is switchAt with an error instead of a panic, for the
// chaos-facing surface where a bad address is a script bug to report.
func (fc *FatTreeCluster) lookupSwitch(addr core.HostID) (*switchd.Switch, error) {
	if sp, ok := netsim.SpineIndex(addr, len(fc.Spines)); ok {
		return fc.Spines[sp], nil
	}
	if l, ok := netsim.LeafIndex(addr, len(fc.Leaves)); ok {
		return fc.Leaves[l], nil
	}
	return nil, fmt.Errorf("ask: no switch at fabric address %#x", addr)
}

// setNetDown mirrors a switch's crash state into the fabric's routing.
func (fc *FatTreeCluster) setNetDown(addr core.HostID, down bool) {
	if sp, ok := netsim.SpineIndex(addr, len(fc.Spines)); ok {
		fc.Net.SetSpineDown(sp, down)
		return
	}
	if l, ok := netsim.LeafIndex(addr, len(fc.Leaves)); ok {
		fc.Net.SetLeafDown(l, down)
	}
}

// liveSpine returns the task's spine after re-election: the first live
// candidate in task-hashed order, matching netsim's frame routing. ok is
// false when every spine is down.
func (fc *FatTreeCluster) liveSpine(t core.TaskID) (int, bool) {
	s := fc.Net.SpineFor(t)
	if fc.Net.SpineIsDown(s) {
		return 0, false
	}
	return s, true
}

// CrashSwitch takes the switch at fabric address addr down: the switch
// black-holes every frame (and, for a leaf, so does its host-delivery
// path), and the fabric epoch advances so live switches and hosts converge
// on the new incarnation. Crashing an already-crashed switch is a no-op.
// It returns an error when addr names no switch in this fabric or the
// deployment was built without Config.Failover (a crash would deadlock
// in-flight tasks).
func (fc *FatTreeCluster) CrashSwitch(addr core.HostID) error {
	if !fc.opts.Config.Failover {
		return fmt.Errorf("ask: CrashSwitch requires Config.Failover")
	}
	sw, err := fc.lookupSwitch(addr)
	if err != nil {
		return err
	}
	if sw.Down() {
		return nil
	}
	sw.Crash()
	fc.setNetDown(addr, true)
	fc.bumpFabricEpoch()
	return nil
}

// RebootSwitch brings the switch at fabric address addr back up as a fresh
// incarnation (its state wiped, exactly like the rack's reboot) and
// advances the fabric epoch again, which triggers the fabric-wide recovery
// that re-registers flows and re-allocates regions on the healed topology.
// It returns an error under the same conditions as CrashSwitch.
func (fc *FatTreeCluster) RebootSwitch(addr core.HostID) error {
	if !fc.opts.Config.Failover {
		return fmt.Errorf("ask: RebootSwitch requires Config.Failover")
	}
	sw, err := fc.lookupSwitch(addr)
	if err != nil {
		return err
	}
	sw.Reboot()
	fc.setNetDown(addr, false)
	fc.bumpFabricEpoch()
	return nil
}

// bumpFabricEpoch advances the fabric-wide incarnation: every live switch
// is stamped with the new epoch and every task's regions are discarded
// fabric-wide (see the package comment above for why freeing at the bump —
// not re-using surviving regions — is what keeps exactly-one-absorption).
// Tenancy rows return to their quotas; receivers re-admit on re-attach.
func (fc *FatTreeCluster) bumpFabricEpoch() {
	fc.fabricEpoch++
	for _, sw := range fc.Leaves {
		if !sw.Down() {
			sw.SetEpoch(fc.fabricEpoch)
		}
	}
	for _, sw := range fc.Spines {
		if !sw.Down() {
			sw.SetEpoch(fc.fabricEpoch)
		}
	}
	// Sorted task order: map iteration order must not leak into the event
	// sequence (simdeterminism).
	ids := make([]core.TaskID, 0, len(fc.allocs))
	for id := range fc.allocs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := fc.allocs[id]
		delete(fc.allocs, id)
		for _, addr := range a.points {
			if sw := fc.switchAt(addr); !sw.Down() {
				_ = sw.FreeRegion(id)
			}
		}
		if fc.Tenancy != nil {
			fc.Tenancy.Release(a.tenant, a.rows)
			live := fc.tenantTasks[a.tenant][:0]
			for _, t := range fc.tenantTasks[a.tenant] {
				if t != id {
					live = append(live, t)
				}
			}
			fc.tenantTasks[a.tenant] = live
		}
	}
	if fc.Tel != nil {
		fc.Tel.Registry.Counter("fabric.epoch_bumps").Inc()
		fc.Tel.Tracer.EmitNote(telemetry.CompChaos, "fabric_epoch",
			int64(fc.fabricEpoch), fmt.Sprintf("epoch %d, %d regions discarded", fc.fabricEpoch, len(ids)))
	}
}

// Simulation returns the deterministic virtual-time kernel (the
// chaos.Fabric surface).
func (fc *FatTreeCluster) Simulation() *sim.Simulation { return fc.Sim }

// TelemetrySet returns the cluster observability set, nil when telemetry is
// disabled (the chaos.Fabric surface).
func (fc *FatTreeCluster) TelemetrySet() *telemetry.Set { return fc.Tel }

// HostUplink returns a host's uplink to its leaf (fault injection, stats).
func (fc *FatTreeCluster) HostUplink(h core.HostID) *netsim.Link { return fc.Net.Uplink(h) }

// HostDownlink returns a host's downlink from its leaf.
func (fc *FatTreeCluster) HostDownlink(h core.HostID) *netsim.Link { return fc.Net.Downlink(h) }

// RevokeRegion always returns an error on the fat-tree: a task's absorbed
// state is spread over several aggregation points and the single-point
// revocation drain cannot reclaim it exactly-once. Rack clusters support
// it; fabric capacity pressure is modeled by admission control instead.
func (fc *FatTreeCluster) RevokeRegion(task core.TaskID, receiver core.HostID) error {
	return fmt.Errorf("ask: RevokeRegion is not supported on the fat-tree (task %d spans multiple aggregation points)", task)
}
