package ask

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// TestAggregationExactUnderRandomConditions is the system-level property
// test: for arbitrary (seeded) combinations of fault rates, topology, task
// shape, workload skew, region size, and swap aggressiveness, the service
// must return the exact aggregation. This is Eq. 2 as an invariant.
func TestAggregationExactUnderRandomConditions(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized end-to-end sweep")
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := core.DefaultConfig()
		cfg.DataChannels = 1 + rng.Intn(4)
		cfg.Window = 1 << (5 + rng.Intn(4)) // 32..256
		cfg.ShadowCopy = rng.Intn(2) == 0
		if cfg.ShadowCopy {
			cfg.SwapThreshold = 16 << rng.Intn(5)
		} else {
			cfg.SwapThreshold = 0
		}
		link := netsim.DefaultLinkConfig()
		link.Fault.LossProb = float64(rng.Intn(8)) / 100
		link.Fault.DupProb = float64(rng.Intn(5)) / 100
		link.Fault.ReorderProb = float64(rng.Intn(10)) / 100
		link.Fault.ReorderDelay = time.Duration(1+rng.Intn(80)) * time.Microsecond

		hosts := 2 + rng.Intn(3)
		senders := 1 + rng.Intn(hosts-1)
		cl, err := NewCluster(Options{Hosts: hosts, Config: cfg, Link: link, Seed: seed})
		if err != nil {
			t.Logf("seed %d: cluster: %v", seed, err)
			return false
		}
		spec := core.TaskSpec{
			ID:       core.TaskID(1 + rng.Intn(1000)),
			Receiver: 0,
			Op:       core.OpSum,
			Rows:     []int{0, 2, 64, 1024}[rng.Intn(4)],
		}
		streams := make(map[core.HostID]core.Stream)
		want := make(core.Result)
		for i := 1; i <= senders; i++ {
			h := core.HostID(i)
			spec.Senders = append(spec.Senders, h)
			w := workload.Spec{
				Name:     "prop",
				Distinct: 1 + rng.Intn(3000),
				Tuples:   int64(500 + rng.Intn(4000)),
				Skew:     []float64{0, 1.05, 1.3}[rng.Intn(3)],
				Order:    workload.Order(rng.Intn(3)),
				KeyLens:  workload.NaturalLanguage(rng.Intn(3)),
				Seed:     seed + int64(i),
			}
			streams[h] = w.Stream()
			want.Merge(w.Reference(core.OpSum), core.OpSum)
		}
		res, err := cl.Aggregate(spec, streams)
		if err != nil {
			t.Logf("seed %d: aggregate: %v", seed, err)
			return false
		}
		if !res.Result.Equal(want) {
			t.Logf("seed %d: MISMATCH: %s", seed, res.Result.Diff(want, 8))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
	// A regression seed that once exposed a fault-handling bug.
	if !prop(2355223179251328692) {
		t.Fatal("regression seed failed")
	}
}
