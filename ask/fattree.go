package ask

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/hostd"
	"repro/internal/keyspace"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/switchd"
	"repro/internal/telemetry"
	"repro/internal/tenancy"
	"repro/internal/wire"
)

// FatTreeOptions configures the spine/leaf deployment: L leaves of hosts and
// S spines, every switch running the ASK program, optionally shared by
// several tenants under weighted AA allocation.
type FatTreeOptions struct {
	Spines       int
	Leaves       int
	HostsPerLeaf int
	Config       core.Config
	// HostLink configures host↔leaf links, FabricLink the leaf↔spine links.
	HostLink   netsim.LinkConfig
	FabricLink netsim.LinkConfig
	Cores      int
	Seed       int64
	// Switch sizes every switch's state tables. Spines run the same
	// hardware profile as leaves: a spine sees every host's flows, so
	// MaxFlows must cover the whole fabric, not one leaf's worth.
	Switch switchd.Options
	// Tenants, when non-empty, partitions the keyspace and each switch's AA
	// rows between the listed tenants proportionally to weight. Task IDs must
	// then carry a listed tenant (core.MakeTaskID); admission control rejects
	// a tenant's over-quota regions with tenancy.OverloadError.
	Tenants []tenancy.TenantSpec
	// Telemetry, when enabled, builds a cluster-level telemetry.Set carrying
	// the tenancy allocator's per-tenant gauges (quota/in-use/borrowed rows,
	// admission outcomes, labeled `tenant`). Switches and daemons keep their
	// private registries either way — their unlabeled instrument names would
	// collide across the fabric.
	Telemetry telemetry.Config
	// Shards, when > 1, partitions the fabric into that many parallel event
	// lanes of contiguous leaves (spines spread round-robin); the leaf↔spine
	// mesh becomes conservative mailbox cuts (DESIGN.md "Parallel DES").
	// Fault-free runs are byte-identical to the serial build; runs with
	// failover chaos are deterministic per (Seed, Shards) — the fabric-wide
	// control rendezvous the recovery path needs reorders same-window events
	// relative to serial. Values <= 1, or topologies with a single leaf,
	// take the exact serial code path (netsim.EffectiveShards).
	Shards int
}

// FatTreeCluster is a spine/leaf deployment with hierarchical
// re-aggregation: a task's tuples are absorbed first at the sender's leaf,
// its cross-leaf residue gets a second chance at the task's spine, and the
// receiver merges the remaining residue plus the entries fetched from every
// aggregation point. Each tuple is absorbed at exactly one switch, so the
// partial aggregates compose without double counting.
type FatTreeCluster struct {
	Sim    *sim.Simulation
	Net    *netsim.FatTree
	Leaves []*switchd.Switch
	Spines []*switchd.Switch
	// Tenancy is the admission/partition manager; nil without Tenants.
	Tenancy *tenancy.Manager
	// Tel is the cluster observability set (nil unless Options.Telemetry
	// is enabled); it carries the per-tenant allocation gauges.
	Tel *telemetry.Set

	opts    FatTreeOptions
	daemons map[core.HostID]*hostd.Daemon
	cpus    map[core.HostID]*cpumodel.Host
	allocs  map[core.TaskID]fatAlloc
	// fabricEpoch is the fabric-wide incarnation number (starts at 1). Every
	// switch outage event — crash AND reboot — bumps it and pushes it into
	// all live switches (see bumpFabricEpoch), so the whole fabric presents
	// hosts with one coherent epoch sequence.
	fabricEpoch uint32
	// tenantTasks lists each tenant's live tasks in admission order, for the
	// telemetry-driven hotness callback (slice, not map: iterated).
	tenantTasks map[core.TenantID][]core.TaskID
}

// fatAlloc records where a task's regions live, for teardown and release.
type fatAlloc struct {
	points []core.HostID
	rows   int
	tenant core.TenantID
}

// HostAt returns the host ID of slot i on leaf l.
func (o FatTreeOptions) HostAt(l, i int) core.HostID {
	return core.HostID(l*o.HostsPerLeaf + i)
}

// NewFatTreeCluster builds the deployment. Host IDs are assigned leaf-major:
// leaf l holds IDs [l·HostsPerLeaf, (l+1)·HostsPerLeaf). It returns an
// error only for invalid options (non-positive topology dimensions, or a
// tenant configuration the keyspace cannot be partitioned for).
func NewFatTreeCluster(opts FatTreeOptions) (*FatTreeCluster, error) {
	if opts.Spines <= 0 || opts.Leaves <= 0 || opts.HostsPerLeaf <= 0 {
		return nil, fmt.Errorf("ask: need positive Spines, Leaves and HostsPerLeaf")
	}
	if opts.Config.NumAAs == 0 {
		opts.Config = core.DefaultConfig()
	}
	if opts.Config.Failover && opts.Config.ShadowCopy {
		// Same restriction the rack soak runs under: failover replay cannot
		// attribute swap fetches, so hierarchical failover requires shadow
		// copies off.
		return nil, fmt.Errorf("ask: fat-tree failover requires Config.ShadowCopy off (replay cannot attribute swap fetches)")
	}
	if opts.HostLink.BandwidthBps == 0 {
		opts.HostLink = netsim.DefaultLinkConfig()
	}
	if opts.FabricLink.BandwidthBps == 0 {
		opts.FabricLink = netsim.DefaultLinkConfig()
	}
	if opts.Cores == 0 {
		opts.Cores = cpumodel.DefaultCores
	}
	if opts.Switch.MaxFlows == 0 {
		opts.Switch = switchd.DefaultOptions()
	}
	s := sim.New(opts.Seed)
	ft, _ := netsim.NewFatTreeSharded(s, opts.Spines, opts.Leaves, opts.Shards, opts.HostLink, opts.FabricLink)
	ft.SetCodec(wire.NewCodec(opts.Config.KPartBytes))
	fc := &FatTreeCluster{
		Sim:         s,
		Net:         ft,
		opts:        opts,
		daemons:     make(map[core.HostID]*hostd.Daemon),
		cpus:        make(map[core.HostID]*cpumodel.Host),
		allocs:      make(map[core.TaskID]fatAlloc),
		tenantTasks: make(map[core.TenantID][]core.TaskID),
		fabricEpoch: 1,
	}
	if len(opts.Tenants) > 0 {
		mgr, err := tenancy.NewManager(opts.Tenants, opts.Config)
		if err != nil {
			return nil, err
		}
		mgr.SetHotness(fc.tenantHotness)
		fc.Tenancy = mgr
	}
	fc.Tel = telemetry.NewSet(s, opts.Telemetry)
	if fc.Tenancy != nil && fc.Tel != nil {
		fc.Tenancy.Instrument(fc.Tel.Registry)
	}
	for l := 0; l < opts.Leaves; l++ {
		// Zero telemetry sink: like the multi-rack deployment, every switch
		// keeps a private registry (shared label sets would collide).
		lo := opts.Switch
		lo.Addr = netsim.LeafAddr(l)
		// LeafSim/SpineSim are the switch's shard lane on a sharded build,
		// the fabric-wide simulation otherwise; each switch program schedules
		// only on its own lane.
		sw, err := switchd.New(ft.LeafSim(l), ft.Leaf(l), opts.Config, lo)
		if err != nil {
			return nil, fmt.Errorf("ask: leaf %d: %w", l, err)
		}
		fc.Leaves = append(fc.Leaves, sw)
	}
	for sp := 0; sp < opts.Spines; sp++ {
		so := opts.Switch
		so.Addr = netsim.SpineAddr(sp)
		// Spines aggregate the leaves' conflict residuals, whose sequence
		// numbers skip: the compact parity seen would alias, so spines run
		// the sequence-tagged variant (see switchd.Options).
		so.SeqTaggedSeen = true
		sw, err := switchd.New(ft.SpineSim(sp), ft.Spine(sp), opts.Config, so)
		if err != nil {
			return nil, fmt.Errorf("ask: spine %d: %w", sp, err)
		}
		fc.Spines = append(fc.Spines, sw)
	}
	for l := 0; l < opts.Leaves; l++ {
		for i := 0; i < opts.HostsPerLeaf; i++ {
			id := opts.HostAt(l, i)
			cpu := cpumodel.NewHost(ft.LeafSim(l), opts.Cores)
			d, err := hostd.New(ft.LeafSim(l), leafFabric{ft, l}, cpu, opts.Config, id, fabricController{fc, l}, telemetry.Sink{})
			if err != nil {
				return nil, err
			}
			fc.daemons[id] = d
			fc.cpus[id] = cpu
			if err := fc.assignTenantChannels(d); err != nil {
				return nil, err
			}
		}
	}
	return fc, nil
}

// assignTenantChannels dedicates a contiguous data-channel band to each
// tenant, sized by weight with the same cumulative cut as the keyspace
// partitions, so one tenant's backlog never queues behind another's.
// Tenants whose cut rounds to zero channels keep the legacy global hash.
func (fc *FatTreeCluster) assignTenantChannels(d *hostd.Daemon) error {
	if fc.Tenancy == nil {
		return nil
	}
	total := fc.opts.Config.DataChannels
	sum := 0
	for _, t := range fc.opts.Tenants {
		sum += t.Weight
	}
	cum := 0
	for _, t := range fc.opts.Tenants {
		lo := total * cum / sum
		cum += t.Weight
		hi := total * cum / sum
		if hi > lo {
			if err := d.SetTenantChannels(t.ID, lo, hi-lo); err != nil {
				return err
			}
		}
	}
	return nil
}

// tenantHotness is the borrowing policy's telemetry probe: the fraction of a
// tenant's switch-bound tuples that hit an aggregator conflict (a hot
// working set keeps losing the row race, which is exactly the pressure the
// §3.4 shadow machinery measures), taken across the tenant's live regions.
func (fc *FatTreeCluster) tenantHotness(tn core.TenantID) float64 {
	var in, conflicted int64
	for _, task := range fc.tenantTasks[tn] {
		for _, addr := range fc.allocs[task].points {
			st := fc.switchAt(addr).TaskStatsOf(task)
			in += st.TuplesIn
			conflicted += st.TuplesConflicted
		}
	}
	if in == 0 {
		return 0
	}
	return float64(conflicted) / float64(in)
}

// switchAt resolves a fabric address to its switch.
func (fc *FatTreeCluster) switchAt(addr core.HostID) *switchd.Switch {
	if sp, ok := netsim.SpineIndex(addr, len(fc.Spines)); ok {
		return fc.Spines[sp]
	}
	if l, ok := netsim.LeafIndex(addr, len(fc.Leaves)); ok {
		return fc.Leaves[l]
	}
	panic(fmt.Sprintf("ask: no switch at fabric address %#x", addr))
}

// leafFabric narrows the fat-tree to one leaf's host attach point.
type leafFabric struct {
	ft   *netsim.FatTree
	leaf int
}

func (lf leafFabric) AttachHost(id core.HostID, h netsim.HostHandler) {
	lf.ft.AttachHostLeaf(lf.leaf, id, h)
}
func (lf leafFabric) HostSend(f *netsim.Frame)           { lf.ft.HostSend(f) }
func (lf leafFabric) Uplink(id core.HostID) *netsim.Link { return lf.ft.Uplink(id) }

// fabricController is one host's control plane on the fat-tree: flows
// register at the host's own leaf and at every spine (any of which may
// carry the flow's fabric-crossing packets), and task regions are placed at
// every aggregation point on the task's tree.
//
// Unlike the multi-rack controller (whose calls never leave the caller's
// rack), every method here touches switches and cluster maps owned by other
// shard lanes, so on a sharded fabric each method first enters the group's
// control rendezvous: the calling lane suspends its window and the operation
// executes while no other lane runs. Fault-free runs never take this path
// during a parallel window (registration and allocation are driven by root
// procs, which force serial windows); only failover recovery does, which is
// why chaos runs are deterministic-per-shard-count rather than byte-identical.
type fabricController struct {
	fc   *FatTreeCluster
	leaf int
}

// control enters the fabric-wide control rendezvous when the calling leaf's
// lane is inside a parallel window (a no-op on serial builds and in serial
// windows). Call as `defer c.control()()`.
func (c fabricController) control() func() {
	if g := c.fc.Net.Group(); g != nil {
		return g.EnterControlFrom(c.fc.Net.LeafSim(c.leaf))
	}
	return func() {}
}

func (c fabricController) RegisterFlow(fk core.FlowKey) (uint32, error) {
	defer c.control()()
	if _, err := c.fc.Leaves[c.leaf].RegisterFlow(fk); err != nil {
		return 0, err
	}
	for sp, sw := range c.fc.Spines {
		if sw.Down() {
			// A crashed spine has no control plane; its reboot wipes flow
			// state, and the heal-time epoch bump re-registers everything.
			continue
		}
		if _, err := sw.RegisterFlow(fk); err != nil {
			return 0, fmt.Errorf("ask: registering flow at spine %d: %w", sp, err)
		}
	}
	return c.fc.fabricEpoch, nil
}

func (c fabricController) RegisterFlowAt(fk core.FlowKey, start uint32) (uint32, error) {
	defer c.control()()
	if c.fc.Leaves[c.leaf].Down() {
		// The host's own attach point is gone: the flow cannot register at
		// its first hop, so recovery proceeds host-only (the daemon replays
		// unregistered) until the heal-time epoch bump re-triggers it.
		return 0, &core.DegradedError{Op: "register-flow", Addr: netsim.LeafAddr(c.leaf), Attempts: 1}
	}
	if _, err := c.fc.Leaves[c.leaf].RegisterFlowAt(fk, start); err != nil {
		return 0, err
	}
	for sp, sw := range c.fc.Spines {
		if sw.Down() {
			continue
		}
		if _, err := sw.RegisterFlowAt(fk, start); err != nil {
			return 0, fmt.Errorf("ask: registering flow at spine %d: %w", sp, err)
		}
	}
	return c.fc.fabricEpoch, nil
}

func (c fabricController) AllocRegion(spec core.TaskSpec) (hostd.AllocInfo, error) {
	defer c.control()()
	return c.fc.allocRegion(c.leaf, spec)
}

func (c fabricController) FreeRegion(task core.TaskID) error {
	defer c.control()()
	return c.fc.freeRegion(task)
}

// allocRegion admits the task against its tenant's quota and places one
// region per aggregation point: each distinct sender leaf (ascending), plus
// the task's spine when any sender sits on a different leaf than the
// receiver. The returned AllocInfo carries the tenant's keyspace partition
// and the fetch points in allocation order.
//
// Crashed switches are skipped rather than failing the allocation — this is
// the re-attach path during a fabric outage, and partial in-network
// coverage still beats none: a dead sender leaf carries no traffic anyway,
// and with no live spine (or a spine allocation failure) the task degrades
// to leaf-only absorption with the cross-leaf residue merged at the host.
// Only when EVERY aggregation point is down does the call fail, with a
// *core.DegradedError the receiver retries under a bounded backoff budget.
func (fc *FatTreeCluster) allocRegion(recvLeaf int, spec core.TaskSpec) (hostd.AllocInfo, error) {
	var part keyspace.Partition
	tenant := spec.ID.Tenant()
	rows := spec.Rows
	if rows == 0 {
		// Pin the default size here rather than letting each switch pick its
		// own (switchd's default depends on that switch's free rows, which
		// differ across the tree): a quarter of the tenant's quota, or of the
		// pool without tenancy, even so shadow copies split it.
		if fc.Tenancy != nil && tenant != 0 {
			rows = fc.Tenancy.Quota(tenant) / 4
		} else {
			rows = fc.opts.Config.AARows / 4
		}
		rows &^= 1
		if rows < 2 {
			rows = 2
		}
	}
	if fc.Tenancy != nil {
		if tenant == 0 {
			return hostd.AllocInfo{}, fmt.Errorf("ask: task %d has no tenant on a tenant-partitioned fabric (use core.MakeTaskID)", spec.ID)
		}
		p, err := fc.Tenancy.Partition(tenant)
		if err != nil {
			return hostd.AllocInfo{}, err
		}
		part = p
		// Admission control: the quota models one switch's rows — a task
		// occupies the same row count at every switch on its tree, and
		// partitions are identical across switches.
		if err := fc.Tenancy.Admit(tenant, rows); err != nil {
			return hostd.AllocInfo{}, err
		}
	}
	leafSet := make(map[int]bool)
	for _, s := range spec.Senders {
		leafSet[fc.Net.LeafOf(s)] = true
	}
	senderLeaves := make([]int, 0, len(leafSet))
	for l := range leafSet {
		senderLeaves = append(senderLeaves, l)
	}
	sort.Ints(senderLeaves)
	cross := false
	skipped := 0
	points := make([]core.HostID, 0, len(senderLeaves)+1)
	for _, l := range senderLeaves {
		if l != recvLeaf {
			cross = true
		}
		if fc.Leaves[l].Down() {
			skipped++
			continue
		}
		points = append(points, netsim.LeafAddr(l))
	}
	release := func() {
		if fc.Tenancy != nil {
			fc.Tenancy.Release(tenant, rows)
		}
	}
	var done []core.HostID
	unwind := func() {
		for _, a := range done {
			// Unwind is best-effort; the switches just allocated cannot
			// refuse to free.
			_ = fc.switchAt(a).FreeRegion(spec.ID)
		}
		release()
	}
	for _, addr := range points {
		if _, err := fc.switchAt(addr).AllocRegionPartition(spec.ID, spec.Receiver, spec.Op, rows, part); err != nil {
			unwind()
			return hostd.AllocInfo{}, err
		}
		done = append(done, addr)
	}
	if cross {
		if sp, ok := fc.liveSpine(spec.ID); !ok {
			// Every spine is down: leaf-only + host merge until the fabric
			// heals (cross-leaf residue streams to the receiver unabsorbed).
			skipped++
		} else if _, err := fc.Spines[sp].AllocRegionPartition(spec.ID, spec.Receiver, spec.Op, rows, part); err != nil {
			// The re-elected spine has no capacity for this task: same
			// leaf-only degradation, but keep the leaf regions we placed.
			skipped++
		} else {
			points = append(points, netsim.SpineAddr(sp))
		}
	}
	if len(points) == 0 {
		release()
		return hostd.AllocInfo{}, &core.DegradedError{Op: "alloc-region", Attempts: skipped}
	}
	fc.allocs[spec.ID] = fatAlloc{points: points, rows: rows, tenant: tenant}
	if fc.Tenancy != nil {
		fc.tenantTasks[tenant] = append(fc.tenantTasks[tenant], spec.ID)
	}
	return hostd.AllocInfo{Partition: part, FetchFrom: points}, nil
}

// freeRegion releases a task's regions at every aggregation point and
// returns its rows to the tenant quota.
func (fc *FatTreeCluster) freeRegion(task core.TaskID) error {
	a, ok := fc.allocs[task]
	if !ok {
		return fmt.Errorf("ask: task %d has no allocation", task)
	}
	delete(fc.allocs, task)
	for _, addr := range a.points {
		if err := fc.switchAt(addr).FreeRegion(task); err != nil {
			return err
		}
	}
	if fc.Tenancy != nil {
		fc.Tenancy.Release(a.tenant, a.rows)
		live := fc.tenantTasks[a.tenant][:0]
		for _, t := range fc.tenantTasks[a.tenant] {
			if t != task {
				live = append(live, t)
			}
		}
		fc.tenantTasks[a.tenant] = live
	}
	return nil
}

// Daemon returns a host's daemon.
func (fc *FatTreeCluster) Daemon(h core.HostID) *hostd.Daemon { return fc.daemons[h] }

// CPU returns a host's CPU model.
func (fc *FatTreeCluster) CPU(h core.HostID) *cpumodel.Host { return fc.cpus[h] }

// Config returns the deployment configuration.
func (fc *FatTreeCluster) Config() core.Config { return fc.opts.Config }

// TaskSwitchStats sums the switch-side counters of a task over every
// aggregation point on its tree (or, after teardown, over all switches).
func (fc *FatTreeCluster) TaskSwitchStats(task core.TaskID) switchd.TaskStats {
	var sum switchd.TaskStats
	add := func(sw *switchd.Switch) {
		st := sw.TaskStatsOf(task)
		sum.TuplesIn += st.TuplesIn
		sum.TuplesAggregated += st.TuplesAggregated
		sum.TuplesConflicted += st.TuplesConflicted
		sum.DataPackets += st.DataPackets
		sum.AckedPackets += st.AckedPackets
		sum.ForwardedPackets += st.ForwardedPackets
	}
	for _, sw := range fc.Leaves {
		add(sw)
	}
	for _, sw := range fc.Spines {
		add(sw)
	}
	return sum
}

// StartTask submits a task and its sender streams without running the
// simulation, so several tasks (e.g. one per tenant) can run concurrently;
// call Sim.Run(0) and then Get. Setup failures — hosts outside the
// cluster, senders without streams, and on tenant-partitioned fabrics
// admission rejections (match with errors.As against
// *tenancy.OverloadError) — are returned here; errors from the task's
// execution surface later, from Get.
func (fc *FatTreeCluster) StartTask(spec core.TaskSpec, streams map[core.HostID]core.Stream) (*FatTreePendingTask, error) {
	has := func(h core.HostID) bool { _, ok := streams[h]; return ok }
	submit := func(d *hostd.Daemon, h core.HostID) { d.SubmitSend(spec.ID, streams[h]) }
	return fc.startTask(spec, has, submit)
}

// StartTaskTimed is StartTask for timed sender streams: tuples enter each
// sending daemon at their recorded arrival offsets on the sim clock (see
// Cluster.AggregateTimed). Its error behaviour matches StartTask.
func (fc *FatTreeCluster) StartTaskTimed(spec core.TaskSpec, streams map[core.HostID]core.TimedStream) (*FatTreePendingTask, error) {
	has := func(h core.HostID) bool { _, ok := streams[h]; return ok }
	submit := func(d *hostd.Daemon, h core.HostID) { d.SubmitSendTimed(spec.ID, streams[h]) }
	return fc.startTask(spec, has, submit)
}

func (fc *FatTreeCluster) startTask(spec core.TaskSpec, hasStream func(core.HostID) bool, submit func(*hostd.Daemon, core.HostID)) (*FatTreePendingTask, error) {
	recv, ok := fc.daemons[spec.Receiver]
	if !ok {
		return nil, fmt.Errorf("ask: receiver host %d not in cluster", spec.Receiver)
	}
	if len(spec.Senders) == 0 {
		return nil, fmt.Errorf("ask: task %d has no senders", spec.ID)
	}
	for _, s := range spec.Senders {
		if _, ok := fc.daemons[s]; !ok {
			return nil, fmt.Errorf("ask: sender host %d not in cluster", s)
		}
		if !hasStream(s) {
			return nil, fmt.Errorf("ask: no stream for sender host %d", s)
		}
	}
	pt := &FatTreePendingTask{fc: fc, spec: spec, start: fc.Sim.Now()}
	fc.Sim.Spawn(fmt.Sprintf("ft-driver-task%d", spec.ID), func(p *sim.Proc) {
		h, err := recv.Submit(p, spec)
		if err != nil {
			pt.err = err
			return
		}
		senders := append([]core.HostID(nil), spec.Senders...)
		sort.Slice(senders, func(i, j int) bool { return senders[i] < senders[j] })
		for _, s := range senders {
			submit(fc.daemons[s], s)
		}
		res := h.Wait(p)
		var degraded time.Duration
		for _, hid := range append([]core.HostID{spec.Receiver}, senders...) {
			if dt := fc.daemons[hid].FailoverStats().DegradedTime; dt > degraded {
				degraded = dt
			}
		}
		if dt := h.Stats().Degraded; dt > degraded {
			degraded = dt
		}
		pt.result = &TaskResult{
			Result:   res,
			Elapsed:  p.Now() - pt.start,
			Recv:     h.Stats(),
			Switch:   fc.TaskSwitchStats(spec.ID),
			Degraded: degraded,
		}
	})
	return pt, nil
}

// FatTreePendingTask is a task started on the fat-tree whose result becomes
// available after the simulation runs.
type FatTreePendingTask struct {
	fc     *FatTreeCluster
	spec   core.TaskSpec
	start  sim.Time
	result *TaskResult
	err    error
}

// Get returns the task outcome; it errors if the task has not completed.
func (pt *FatTreePendingTask) Get() (*TaskResult, error) {
	if pt.err != nil {
		return nil, pt.err
	}
	if pt.result == nil {
		return nil, fmt.Errorf("ask: task %d did not complete (run the simulation to quiescence)", pt.spec.ID)
	}
	return pt.result, nil
}

// Aggregate runs one task to completion on the fat-tree. Setup and
// admission errors (including *tenancy.OverloadError, an errors.As
// target) are returned as from StartTask, task-execution errors as from
// Get.
func (fc *FatTreeCluster) Aggregate(spec core.TaskSpec, streams map[core.HostID]core.Stream) (*TaskResult, error) {
	pt, err := fc.StartTask(spec, streams)
	if err != nil {
		return nil, err
	}
	fc.Sim.Run(0)
	return pt.Get()
}
