package ask

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
)

// genStream builds a deterministic random stream: keys drawn from a pool of
// mixed lengths (short, medium, long), small values.
func genStream(seed int64, n, distinct int) []core.KV {
	rng := rand.New(rand.NewSource(seed))
	pool := make([]string, distinct)
	for i := range pool {
		switch i % 3 {
		case 0:
			pool[i] = fmt.Sprintf("k%d", i) // short-ish
		case 1:
			pool[i] = fmt.Sprintf("med_%04d", i) // 8 bytes: medium
		default:
			pool[i] = fmt.Sprintf("longkey_number_%06d", i) // long
		}
	}
	kvs := make([]core.KV, n)
	for i := range kvs {
		kvs[i] = core.KV{Key: pool[rng.Intn(distinct)], Val: int64(rng.Intn(100) + 1)}
	}
	return kvs
}

func run(t *testing.T, opts Options, spec core.TaskSpec, perSender map[core.HostID][]core.KV) *TaskResult {
	t.Helper()
	cl, err := NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	streams := make(map[core.HostID]core.Stream, len(perSender))
	for h, kvs := range perSender {
		streams[h] = core.SliceStream(kvs)
	}
	res, err := cl.Aggregate(spec, streams)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func checkExact(t *testing.T, res *TaskResult, op core.Op, perSender map[core.HostID][]core.KV) {
	t.Helper()
	var all [][]core.KV
	for _, kvs := range perSender {
		all = append(all, kvs)
	}
	want := core.Reference(op, all...)
	if !res.Result.Equal(want) {
		t.Fatalf("aggregation incorrect: %s", res.Result.Diff(want, 8))
	}
}

func TestSingleSenderExact(t *testing.T) {
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}}
	data := map[core.HostID][]core.KV{1: genStream(1, 20000, 500)}
	res := run(t, Options{Hosts: 2, Seed: 1}, spec, data)
	checkExact(t, res, core.OpSum, data)
	if res.Switch.TuplesAggregated == 0 {
		t.Fatal("switch aggregated nothing")
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestMultiSenderExact(t *testing.T) {
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1, 2, 3}}
	data := map[core.HostID][]core.KV{
		1: genStream(1, 8000, 300),
		2: genStream(2, 8000, 300),
		3: genStream(3, 8000, 300),
	}
	res := run(t, Options{Hosts: 4, Seed: 2}, spec, data)
	checkExact(t, res, core.OpSum, data)
}

func TestColocatedSenderReceiver(t *testing.T) {
	// Receiver host 0 is also a sender (mappers colocated with reducers,
	// §5.5).
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{0, 1}}
	data := map[core.HostID][]core.KV{
		0: genStream(4, 5000, 200),
		1: genStream(5, 5000, 200),
	}
	res := run(t, Options{Hosts: 2, Seed: 3}, spec, data)
	checkExact(t, res, core.OpSum, data)
}

func TestExactUnderLoss(t *testing.T) {
	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = 0.05
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1, 2}}
	data := map[core.HostID][]core.KV{
		1: genStream(6, 6000, 250),
		2: genStream(7, 6000, 250),
	}
	res := run(t, Options{Hosts: 3, Seed: 4, Link: link}, spec, data)
	checkExact(t, res, core.OpSum, data)
}

func TestExactUnderLossDupReorder(t *testing.T) {
	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = 0.03
	link.Fault.DupProb = 0.03
	link.Fault.ReorderProb = 0.05
	link.Fault.ReorderDelay = 30 * time.Microsecond
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1, 2}}
	data := map[core.HostID][]core.KV{
		1: genStream(8, 5000, 200),
		2: genStream(9, 5000, 200),
	}
	res := run(t, Options{Hosts: 3, Seed: 5, Link: link}, spec, data)
	checkExact(t, res, core.OpSum, data)
}

func TestExactUnderHeavyLossManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed fault sweep")
	}
	for seed := int64(0); seed < 5; seed++ {
		link := netsim.DefaultLinkConfig()
		link.Fault.LossProb = 0.15
		link.Fault.DupProb = 0.05
		link.Fault.ReorderProb = 0.1
		link.Fault.ReorderDelay = 50 * time.Microsecond
		spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}}
		data := map[core.HostID][]core.KV{1: genStream(100+seed, 3000, 150)}
		res := run(t, Options{Hosts: 2, Seed: seed, Link: link}, spec, data)
		checkExact(t, res, core.OpSum, data)
	}
}

func TestShadowCopyDisabledStillExact(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ShadowCopy = false
	cfg.SwapThreshold = 0
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}}
	data := map[core.HostID][]core.KV{1: genStream(10, 10000, 400)}
	res := run(t, Options{Hosts: 2, Seed: 6, Config: cfg}, spec, data)
	checkExact(t, res, core.OpSum, data)
}

func TestSwapsHappenAndStayExact(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SwapThreshold = 8 // aggressive swapping
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}, Rows: 64}
	// Many distinct keys + tiny region: constant conflicts → many swaps.
	data := map[core.HostID][]core.KV{1: genStream(11, 20000, 5000)}
	res := run(t, Options{Hosts: 2, Seed: 7, Config: cfg}, spec, data)
	checkExact(t, res, core.OpSum, data)
	if res.Recv.Swaps == 0 {
		t.Fatal("no swaps occurred despite aggressive threshold")
	}
}

func TestSwapsUnderLossStayExact(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.SwapThreshold = 8
	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = 0.05
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1, 2}, Rows: 64}
	data := map[core.HostID][]core.KV{
		1: genStream(12, 8000, 3000),
		2: genStream(13, 8000, 3000),
	}
	res := run(t, Options{Hosts: 3, Seed: 8, Config: cfg, Link: link}, spec, data)
	checkExact(t, res, core.OpSum, data)
	if res.Recv.Swaps == 0 {
		t.Fatal("expected swaps")
	}
}

func TestTinyRegionExact(t *testing.T) {
	// 2 rows total (1 per copy): nearly everything conflicts and falls back
	// to the host; the result must still be exact.
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}, Rows: 2}
	data := map[core.HostID][]core.KV{1: genStream(14, 5000, 1000)}
	res := run(t, Options{Hosts: 2, Seed: 9}, spec, data)
	checkExact(t, res, core.OpSum, data)
	if res.Recv.ResidueTuples == 0 {
		t.Fatal("expected host-side residue with a tiny region")
	}
}

func TestTransportOnlyTask(t *testing.T) {
	// Rows < 0: the SparkSHM mode — ASK transport without INA.
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}, Rows: -1}
	data := map[core.HostID][]core.KV{1: genStream(15, 5000, 200)}
	res := run(t, Options{Hosts: 2, Seed: 10}, spec, data)
	checkExact(t, res, core.OpSum, data)
	if res.Switch.TuplesAggregated != 0 {
		t.Fatal("transport-only task used switch aggregators")
	}
	if res.Recv.SwitchEntries != 0 {
		t.Fatal("transport-only task fetched switch state")
	}
}

func TestAllOperators(t *testing.T) {
	for _, op := range []core.Op{core.OpSum, core.OpMax, core.OpMin, core.OpCount} {
		spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1, 2}, Op: op}
		data := map[core.HostID][]core.KV{
			1: genStream(20, 4000, 150),
			2: genStream(21, 4000, 150),
		}
		res := run(t, Options{Hosts: 3, Seed: 11}, spec, data)
		checkExact(t, res, op, data)
	}
}

func TestSequentialTasksReuseChannels(t *testing.T) {
	// Persistent channels serve several tasks in sequence; reliability
	// state carries across tasks.
	cl, err := NewCluster(Options{Hosts: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		spec := core.TaskSpec{ID: core.TaskID(i), Receiver: 0, Senders: []core.HostID{1, 2}}
		data := map[core.HostID][]core.KV{
			1: genStream(int64(30+i), 3000, 100),
			2: genStream(int64(40+i), 3000, 100),
		}
		streams := map[core.HostID]core.Stream{
			1: core.SliceStream(data[1]),
			2: core.SliceStream(data[2]),
		}
		res, err := cl.Aggregate(spec, streams)
		if err != nil {
			t.Fatal(err)
		}
		checkExact(t, res, core.OpSum, data)
	}
}

func TestConcurrentTasksSharedChannels(t *testing.T) {
	// Two tasks with different receivers running at once, multiplexing the
	// same daemons and switch.
	cl, err := NewCluster(Options{Hosts: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	dataA := map[core.HostID][]core.KV{2: genStream(50, 4000, 150), 3: genStream(51, 4000, 150)}
	dataB := map[core.HostID][]core.KV{2: genStream(52, 4000, 150), 3: genStream(53, 4000, 150)}
	ptA, err := cl.StartTask(core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{2, 3}},
		map[core.HostID]core.Stream{2: core.SliceStream(dataA[2]), 3: core.SliceStream(dataA[3])})
	if err != nil {
		t.Fatal(err)
	}
	ptB, err := cl.StartTask(core.TaskSpec{ID: 2, Receiver: 1, Senders: []core.HostID{2, 3}},
		map[core.HostID]core.Stream{2: core.SliceStream(dataB[2]), 3: core.SliceStream(dataB[3])})
	if err != nil {
		t.Fatal(err)
	}
	cl.Sim.Run(0)
	resA, err := ptA.Get()
	if err != nil {
		t.Fatal(err)
	}
	resB, err := ptB.Get()
	if err != nil {
		t.Fatal(err)
	}
	checkExact(t, resA, core.OpSum, dataA)
	checkExact(t, resB, core.OpSum, dataB)
}

func TestDeterministicRuns(t *testing.T) {
	make_ := func() *TaskResult {
		link := netsim.DefaultLinkConfig()
		link.Fault.LossProb = 0.02
		spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}}
		data := map[core.HostID][]core.KV{1: genStream(60, 4000, 200)}
		return run(t, Options{Hosts: 2, Seed: 42, Link: link}, spec, data)
	}
	a, b := make_(), make_()
	if a.Elapsed != b.Elapsed {
		t.Fatalf("non-deterministic elapsed: %v vs %v", a.Elapsed, b.Elapsed)
	}
	if !a.Result.Equal(b.Result) {
		t.Fatal("non-deterministic result")
	}
}

func TestLargeValuesBypassSwitch(t *testing.T) {
	// Values outside the 32-bit vPart must flow via the long-key path and
	// still aggregate exactly.
	kvs := []core.KV{
		{Key: "big", Val: 1 << 40},
		{Key: "big", Val: 1 << 40},
		{Key: "small", Val: 3},
	}
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}}
	data := map[core.HostID][]core.KV{1: kvs}
	res := run(t, Options{Hosts: 2, Seed: 14}, spec, data)
	checkExact(t, res, core.OpSum, data)
}

func TestEmptyStream(t *testing.T) {
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}}
	data := map[core.HostID][]core.KV{1: nil}
	res := run(t, Options{Hosts: 2, Seed: 15}, spec, data)
	if len(res.Result) != 0 {
		t.Fatalf("empty stream produced %v", res.Result)
	}
}

func TestInvalidSubmissions(t *testing.T) {
	cl, err := NewCluster(Options{Hosts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.StartTask(core.TaskSpec{ID: 1, Receiver: 0}, nil); err == nil {
		t.Error("no senders accepted")
	}
	if _, err := cl.StartTask(core.TaskSpec{ID: 1, Receiver: 9, Senders: []core.HostID{1}},
		map[core.HostID]core.Stream{1: core.SliceStream(nil)}); err == nil {
		t.Error("unknown receiver accepted")
	}
	if _, err := cl.StartTask(core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}},
		map[core.HostID]core.Stream{}); err == nil {
		t.Error("missing stream accepted")
	}
	if _, err := NewCluster(Options{Hosts: 0}); err == nil {
		t.Error("zero hosts accepted")
	}
}

func TestSwitchAbsorbsMostTraffic(t *testing.T) {
	// With ample switch memory and few distinct keys, the switch should
	// absorb nearly all tuples (the Table 1 regime).
	spec := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1}}
	data := map[core.HostID][]core.KV{1: genStream(70, 20000, 64)}
	res := run(t, Options{Hosts: 2, Seed: 16}, spec, data)
	checkExact(t, res, core.OpSum, data)
	// A third of keys are long (bypass); of switch-eligible tuples, nearly
	// all must aggregate.
	if ratio := res.Switch.AggregatedTupleRatio(); ratio < 0.95 {
		t.Fatalf("switch aggregated only %.1f%% of eligible tuples", 100*ratio)
	}
}

func TestTaskChurnLeavesNoLeaks(t *testing.T) {
	// A long-lived service runs many tasks with varying shapes, operators,
	// and faults over the same cluster; afterwards every switch resource
	// must be back in the free pool and the channels still functional.
	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = 0.01
	cl, err := NewCluster(Options{Hosts: 4, Seed: 77, Link: link})
	if err != nil {
		t.Fatal(err)
	}
	freeBefore := cl.Switch.FreeRows()
	rng := rand.New(rand.NewSource(77))
	ops := []core.Op{core.OpSum, core.OpMax, core.OpMin, core.OpCount}
	for i := 1; i <= 20; i++ {
		senders := []core.HostID{1, 2, 3}[:1+rng.Intn(3)]
		spec := core.TaskSpec{
			ID:       core.TaskID(i),
			Receiver: 0,
			Senders:  senders,
			Op:       ops[rng.Intn(len(ops))],
			Rows:     []int{0, 2, 128, -1}[rng.Intn(4)],
		}
		data := make(map[core.HostID][]core.KV)
		streams := make(map[core.HostID]core.Stream)
		for _, s := range senders {
			data[s] = genStream(int64(1000*i)+int64(s), 1000+rng.Intn(2000), 100+rng.Intn(400))
			streams[s] = core.SliceStream(data[s])
		}
		res, err := cl.Aggregate(spec, streams)
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		checkExact(t, res, spec.Op, data)
	}
	if got := cl.Switch.FreeRows(); got != freeBefore {
		t.Fatalf("aggregator rows leaked: %d free, started with %d", got, freeBefore)
	}
}
