package ask

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/streaming"
	"repro/internal/workload"
)

func TestStreamingWindowsExact(t *testing.T) {
	cl, err := NewCluster(Options{Hosts: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	// Unbounded sources (large enough for every window) with skewed keys.
	src1 := workload.Zipf(512, 1<<20, 1.2, workload.Shuffled, 1)
	src2 := workload.Zipf(512, 1<<20, 1.2, workload.Shuffled, 2)
	// Independent reference copies, windowed identically.
	ref1, ref2 := src1.Stream(), src2.Stream()

	const windowTuples = 4000
	const windows = 4
	results, err := streaming.Run(cl.Streaming(), streaming.Config{
		Receiver:     0,
		Sources:      []core.HostID{1, 2},
		WindowTuples: windowTuples,
		Windows:      windows,
		Op:           core.OpSum,
		BaseTask:     100,
	}, map[core.HostID]core.Stream{1: src1.Stream(), 2: src2.Stream()})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != windows {
		t.Fatalf("got %d windows", len(results))
	}
	for w, res := range results {
		want := make(core.Result)
		for i := 0; i < windowTuples; i++ {
			kv, _ := ref1()
			want.MergeKV(kv, core.OpSum)
			kv, _ = ref2()
			want.MergeKV(kv, core.OpSum)
		}
		if !res.Result.Equal(want) {
			t.Fatalf("window %d wrong: %s", w, res.Result.Diff(want, 8))
		}
		if res.Index != w || res.Elapsed <= 0 {
			t.Fatalf("window %d metadata: %+v", w, res)
		}
	}
}

func TestStreamingUnderLoss(t *testing.T) {
	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = 0.03
	link.Fault.ReorderProb = 0.05
	link.Fault.ReorderDelay = 25 * time.Microsecond
	cl, err := NewCluster(Options{Hosts: 2, Seed: 32, Link: link})
	if err != nil {
		t.Fatal(err)
	}
	src := workload.Uniform(256, 1<<20, 3)
	ref := src.Stream()
	results, err := streaming.Run(cl.Streaming(), streaming.Config{
		Receiver: 0, Sources: []core.HostID{1},
		WindowTuples: 2500, Windows: 3, Op: core.OpSum, BaseTask: 1,
	}, map[core.HostID]core.Stream{1: src.Stream()})
	if err != nil {
		t.Fatal(err)
	}
	for w, res := range results {
		want := make(core.Result)
		for i := 0; i < 2500; i++ {
			kv, _ := ref()
			want.MergeKV(kv, core.OpSum)
		}
		if !res.Result.Equal(want) {
			t.Fatalf("lossy window %d wrong: %s", w, res.Result.Diff(want, 5))
		}
	}
}

func TestStreamingShortSource(t *testing.T) {
	// A source shorter than Windows × WindowTuples yields empty tail
	// windows rather than failing.
	cl, err := NewCluster(Options{Hosts: 2, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	kvs := []core.KV{{Key: "a", Val: 1}, {Key: "b", Val: 2}, {Key: "a", Val: 3}}
	results, err := streaming.Run(cl.Streaming(), streaming.Config{
		Receiver: 0, Sources: []core.HostID{1},
		WindowTuples: 2, Windows: 3, Op: core.OpSum, BaseTask: 1,
	}, map[core.HostID]core.Stream{1: core.SliceStream(kvs)})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Result.Equal(core.Result{"a": 1, "b": 2}) {
		t.Fatalf("window 0 = %v", results[0].Result)
	}
	if !results[1].Result.Equal(core.Result{"a": 3}) {
		t.Fatalf("window 1 = %v", results[1].Result)
	}
	if len(results[2].Result) != 0 {
		t.Fatalf("window 2 = %v, want empty", results[2].Result)
	}
}

func TestStreamingValidation(t *testing.T) {
	cl, err := NewCluster(Options{Hosts: 2, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	bad := []streaming.Config{
		{Receiver: 0, Sources: []core.HostID{1}, WindowTuples: 0, Windows: 1},
		{Receiver: 0, Sources: []core.HostID{1}, WindowTuples: 1, Windows: 0},
		{Receiver: 0, Sources: nil, WindowTuples: 1, Windows: 1},
		{Receiver: 0, Sources: []core.HostID{1}, WindowTuples: 1, Windows: 1}, // no stream
	}
	for i, cfg := range bad {
		if _, err := streaming.Run(cl.Streaming(), cfg, nil); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
