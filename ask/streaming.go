package ask

import (
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/streaming"
)

// Streaming adapts the cluster to the windowed-stream API of
// internal/streaming: unbounded per-source streams are aggregated in
// tumbling windows, one ASK task per window, pipelined over the persistent
// channels.
func (c *Cluster) Streaming() streaming.Service { return clusterStream{c} }

type clusterStream struct{ c *Cluster }

func (cs clusterStream) Start(spec core.TaskSpec, streams map[core.HostID]core.Stream) (streaming.Pending, error) {
	pt, err := cs.c.StartTask(spec, streams)
	if err != nil {
		return nil, err
	}
	return pendingAdapter{pt}, nil
}

func (cs clusterStream) Run() { cs.c.Sim.Run(0) }

type pendingAdapter struct{ pt *PendingTask }

func (pa pendingAdapter) Result() (core.Result, sim.Time, error) {
	res, err := pa.pt.Get()
	if err != nil {
		return nil, 0, err
	}
	return res.Result, res.Elapsed, nil
}
