// GroupBy: the database aggregation pattern from the paper's introduction
// (SUM() in databases, TPC-H-style) — a distributed
//
//	SELECT region, SUM(revenue) FROM sales GROUP BY region
//
// over table partitions stored on three hosts, executed as one ASK
// aggregation task: partitions stream (region, revenue) tuples, the switch
// sums them in flight, and the coordinator reads the grouped result.
//
//	go run ./examples/groupby
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"repro/ask"
	"repro/internal/core"
)

var regions = []string{
	"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDEAST",
	"APAC", "EMEA", "LATAM", "NORDIC", "OCEANIA",
}

// salesPartition generates one host's shard of the sales table.
func salesPartition(seed int64, rows int) []core.KV {
	rng := rand.New(rand.NewSource(seed))
	kvs := make([]core.KV, rows)
	for i := range kvs {
		kvs[i] = core.KV{
			Key: regions[rng.Intn(len(regions))],
			Val: int64(rng.Intn(9_999) + 1), // revenue in cents
		}
	}
	return kvs
}

func main() {
	cluster, err := ask.NewCluster(ask.Options{Hosts: 4, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}

	const rowsPerPartition = 200_000
	parts := map[core.HostID][]core.KV{
		1: salesPartition(1, rowsPerPartition),
		2: salesPartition(2, rowsPerPartition),
		3: salesPartition(3, rowsPerPartition),
	}
	streams := make(map[core.HostID]core.Stream)
	want := make(core.Result)
	for h, kvs := range parts {
		streams[h] = core.SliceStream(kvs)
		want.Merge(core.Reference(core.OpSum, kvs), core.OpSum)
	}

	res, err := cluster.Aggregate(core.TaskSpec{
		ID: 1, Receiver: 0, Senders: []core.HostID{1, 2, 3}, Op: core.OpSum,
	}, streams)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("SELECT region, SUM(revenue) FROM sales GROUP BY region;")
	fmt.Println()
	keys := make([]string, 0, len(res.Result))
	for k := range res.Result {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		marker := ""
		if res.Result[k] != want[k] {
			marker = "  << WRONG"
		}
		fmt.Printf("  %-8s %14.2f%s\n", k, float64(res.Result[k])/100, marker)
	}
	fmt.Printf("\n%d rows scanned across 3 partitions in %v; the switch summed %.1f%%\n",
		3*rowsPerPartition, time.Duration(res.Elapsed).Round(time.Microsecond),
		100*res.Switch.AggregatedTupleRatio())
	fmt.Println("of the tuples in-network — the coordinator saw 10 groups, not 600k rows.")
}
