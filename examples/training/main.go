// Training: ASK's backward compatibility with value-stream aggregation
// (§5.6) — a BytePS-style parameter-server round whose gradient push is
// aggregated in-network, compared with a plain parameter server.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"

	"repro/internal/training"
)

func main() {
	model, err := training.ModelByName("VGG16")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("training %s (%.1f M parameters, %.0f MB gradients) on 8 workers\n\n",
		model.Name, float64(model.Params)/1e6, float64(model.GradBytes())/1e6)

	opts := training.Options{Workers: 8, GradScale: 128, Seed: 1}
	var hostPS float64
	for _, sys := range []training.System{training.SysHostPS, training.SysSwitchML, training.SysATP, training.SysASK} {
		rep, err := training.Train(model, sys, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %7.1f images/s   (compute %v + push %v + pull %v per iteration)\n",
			sys, rep.ImagesPerSec, rep.Compute.Round(0), rep.Push.Round(0), rep.Pull.Round(0))
		if sys == training.SysHostPS {
			hostPS = rep.ImagesPerSec
		}
		if sys == training.SysASK {
			fmt.Printf("\nASK trains %.2f× faster than the host-only parameter server:\n", rep.ImagesPerSec/hostPS)
			fmt.Println("the switch sums gradients in flight, so the PS link carries one")
			fmt.Println("aggregated stream instead of eight.")
		}
	}
}
