// Streaming: the asynchronous-aggregation scenario that motivates ASK
// (§2.1.3) — an unbounded real-time key-value stream aggregated in tumbling
// windows over a lossy network, via the windowed-streaming library built on
// the service. Keys are unordered and unforeseeable; every window's result
// is verified exact despite 2% packet loss and reordering.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/streaming"
	"repro/internal/workload"
)

func main() {
	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = 0.02
	link.Fault.ReorderProb = 0.05
	link.Fault.ReorderDelay = 50 * time.Microsecond

	cluster, err := ask.NewCluster(ask.Options{Hosts: 3, Link: link, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("tumbling-window aggregation of a skewed event stream")
	fmt.Println("(2% loss + reordering on every link; exactness checked per window)")
	fmt.Println()

	const windows = 5
	const eventsPerWindow = 50_000
	// Two unbounded event sources; reference copies window them identically.
	src1 := workload.Zipf(4096, 1<<30, 1.1, workload.Shuffled, 1000)
	src2 := workload.Zipf(4096, 1<<30, 1.1, workload.Shuffled, 2000)
	ref1, ref2 := src1.Stream(), src2.Stream()

	results, err := streaming.Run(cluster.Streaming(), streaming.Config{
		Receiver:     0,
		Sources:      []core.HostID{1, 2},
		WindowTuples: eventsPerWindow,
		Windows:      windows,
		Op:           core.OpSum,
		BaseTask:     1,
		// All windows run concurrently and share the switch's 32768
		// aggregator rows; size each window's region accordingly.
		Rows: 4096,
	}, map[core.HostID]core.Stream{1: src1.Stream(), 2: src2.Stream()})
	if err != nil {
		log.Fatal(err)
	}

	for _, res := range results {
		want := make(core.Result)
		for i := 0; i < eventsPerWindow; i++ {
			kv, _ := ref1()
			want.MergeKV(kv, core.OpSum)
			kv, _ = ref2()
			want.MergeKV(kv, core.OpSum)
		}
		status := "EXACT"
		if !res.Result.Equal(want) {
			status = "WRONG: " + res.Result.Diff(want, 3)
		}
		fmt.Printf("window %d: %6d events  %4d keys  %9v  [%s]\n",
			res.Index, 2*eventsPerWindow, len(res.Result),
			time.Duration(res.Elapsed).Round(time.Microsecond), status)
	}
	fmt.Println("\nevery window exact: the sliding window + compact seen + PktState")
	fmt.Println("machinery deduplicates retransmissions at both the switch and host.")
}
