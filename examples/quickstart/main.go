// Quickstart: the smallest complete ASK program.
//
// Three senders stream word counts toward one receiver through a simulated
// rack (one programmable switch, 100 Gbps links). The switch aggregates
// tuples in flight; the receiver gets the exact total per word.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/ask"
	"repro/internal/core"
)

func main() {
	// A rack with four servers: host 0 is the receiver, 1..3 send.
	cluster, err := ask.NewCluster(ask.Options{Hosts: 4, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// Each sender's key-value stream. Keys may be any NUL-free bytes; the
	// daemon routes short keys (≤4 B) and medium keys (≤8 B) through switch
	// aggregators and longer ones through the host bypass automatically.
	streams := map[core.HostID]core.Stream{
		1: core.SliceStream([]core.KV{
			{Key: "go", Val: 3}, {Key: "gopher", Val: 1}, {Key: "switch", Val: 2},
		}),
		2: core.SliceStream([]core.KV{
			{Key: "go", Val: 4}, {Key: "pipeline", Val: 5},
		}),
		3: core.SliceStream([]core.KV{
			{Key: "gopher", Val: 7}, {Key: "switch", Val: 1}, {Key: "go", Val: 1},
		}),
	}

	spec := core.TaskSpec{
		ID:       1,
		Receiver: 0,
		Senders:  []core.HostID{1, 2, 3},
		Op:       core.OpSum,
	}
	res, err := cluster.Aggregate(spec, streams)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("aggregated result:")
	keys := make([]string, 0, len(res.Result))
	for k := range res.Result {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-8s = %d\n", k, res.Result[k])
	}
	fmt.Printf("\ncompleted in %v of virtual time\n", time.Duration(res.Elapsed))
	fmt.Printf("switch aggregated %d of %d eligible tuples in-network\n",
		res.Switch.TuplesAggregated, res.Switch.TuplesIn)
}
