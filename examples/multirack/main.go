// Multi-rack: the §7 deployment — one ASK switch per top-of-rack, a
// forwarding core between racks. Rack-local senders get in-network
// aggregation at the receiver's TOR; cross-rack traffic bypasses it and is
// aggregated at the receiver host, so no TOR ever holds another rack's
// channel state.
//
//	go run ./examples/multirack
package main

import (
	"fmt"
	"log"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	opts := ask.MultiRackOptions{Racks: 3, HostsPerRack: 4, Seed: 11}
	mc, err := ask.NewMultiRackCluster(opts)
	if err != nil {
		log.Fatal(err)
	}

	receiver := opts.HostAt(0, 0)
	senders := []core.HostID{
		opts.HostAt(0, 1), opts.HostAt(0, 2), // rack-local: INA at TOR 0
		opts.HostAt(1, 0), opts.HostAt(2, 3), // remote: host aggregation
	}
	const perSender = 100_000
	streams := make(map[core.HostID]core.Stream)
	want := make(core.Result)
	for i, s := range senders {
		w := workload.Uniform(4096, perSender, int64(i))
		streams[s] = w.Stream()
		want.Merge(w.Reference(core.OpSum), core.OpSum)
	}

	res, err := mc.Aggregate(core.TaskSpec{
		ID: 1, Receiver: receiver, Senders: senders, Op: core.OpSum,
	}, streams)
	if err != nil {
		log.Fatal(err)
	}
	status := "EXACT"
	if !res.Result.Equal(want) {
		status = "WRONG"
	}
	total := int64(len(senders) * perSender)
	fmt.Printf("aggregated %d tuples from %d senders across 3 racks in %v [%s]\n",
		total, len(senders), time.Duration(res.Elapsed).Round(time.Microsecond), status)
	fmt.Printf("  receiver TOR absorbed:  %d tuples (%.1f%% of total — the two rack-local senders)\n",
		res.Switch.TuplesAggregated, 100*float64(res.Switch.TuplesAggregated)/float64(total))
	fmt.Printf("  receiver host residue:  %d tuples (cross-rack bypass, §7)\n", res.Recv.ResidueTuples)
	for r := 0; r < opts.Racks; r++ {
		ts := mc.TORs[r].TaskStatsOf(1)
		fmt.Printf("  TOR %d aggregated %d tuples of this task\n", r, ts.TuplesAggregated)
	}
	fmt.Println("\nonly the receiver's TOR ever held task state (freed at teardown);")
	fmt.Println("remote TORs stayed stateless, which bounds switch memory in large networks.")
}
