// WordCount: the paper's flagship big-data workload (§5.5) on the mini
// MapReduce engine, comparing the ASK shuffle against vanilla Spark-style
// pre-aggregation on the same synthetic corpus.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"

	"repro/internal/mapreduce"
	"repro/internal/workload"
)

func main() {
	base := mapreduce.Config{
		Machines:           3,
		MappersPerMachine:  4,
		ReducersPerMachine: 4,
		TuplesPerMapper:    100_000,
		Seed:               7,
		Workload: func(machine, mapper int) workload.Spec {
			// Each mapper reads a shard of a yelp-like corpus.
			return workload.Dataset("yelp", 100_000, int64(100*machine+mapper))
		},
	}

	fmt.Println("WordCount over 12 mappers × 100k tuples of a yelp-like corpus")
	fmt.Println()
	var sparkJCT float64
	for _, tr := range []mapreduce.Transport{mapreduce.Vanilla, mapreduce.ASK} {
		cfg := base
		cfg.Transport = tr
		rep, err := mapreduce.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s JCT %-12v mapper TCT %-12v reducer TCT %-12v (%d distinct words)\n",
			tr, rep.JCT.Round(0), rep.MeanMapperTCT().Round(0), rep.MeanReducerTCT().Round(0), len(rep.Result))
		if tr == mapreduce.Vanilla {
			sparkJCT = rep.JCT.Seconds()
		} else {
			fmt.Printf("\nASK reduced the job completion time by %.1f%% — its mappers skip\n",
				100*(1-rep.JCT.Seconds()/sparkJCT))
			fmt.Println("pre-aggregation entirely and the switch absorbs the shuffle.")
		}
	}
}
