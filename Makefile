# Development targets. CI (.github/workflows/ci.yml) runs `make ci`.

GO ?= go

.PHONY: all vet build test race bench telemetry-lint ci

all: ci

vet:
	$(GO) vet ./...

# Asserts every registered metric is component.snake_case and documented
# in DESIGN.md's Observability section.
telemetry-lint:
	$(GO) run ./cmd/telemetrylint .

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

ci: vet build telemetry-lint test race
