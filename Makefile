# Development targets. CI (.github/workflows/ci.yml) runs `make ci`.

GO ?= go

.PHONY: all vet build test test-shuffle race bench bench-smoke bench-smoke-shards bench-json lint lint-json selfcheck telemetry-lint soak scenarios ci

all: ci

vet:
	$(GO) vet ./...

# Static-analysis suite (cmd/askcheck): PISA access legality, sim-clock
# determinism, lock-across-wait, and metric-name hygiene. See DESIGN.md's
# "Static verification" section.
lint:
	$(GO) run ./cmd/askcheck ./...

# Same diagnostics as `lint`, emitted as NDJSON (one JSON object per line:
# file/line/col/analyzer/message) for CI annotation tooling to stream-parse.
lint-json:
	$(GO) run ./cmd/askcheck -json ./...

# The analysis engine and driver pass their own analyzers: askcheck checks
# askcheck. Guards against the embarrassing failure mode of a lint suite
# that cannot survive its own rules.
selfcheck:
	$(GO) run ./cmd/askcheck ./internal/analysis/... ./cmd/askcheck

# Historical alias: the metric-name checks formerly lived in the standalone
# cmd/telemetrylint binary, now folded into askcheck's telemetrynames
# analyzer.
telemetry-lint:
	$(GO) run ./cmd/askcheck -run telemetrynames ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Shuffled test order catches inter-test state dependencies.
test-shuffle:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

# One iteration of the headline macro-benchmarks: catches harness rot (a
# benchmark that no longer compiles or errors out) without paying full
# measurement time. CI runs this.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkFig3$$|BenchmarkTable1$$|BenchmarkMultiRack$$|BenchmarkTenancy$$' -benchtime=1x .

# Parallel-scheduler smoke (DESIGN.md "Parallel DES"): a short MultiRack
# run at -shards 4 under the race detector — the sharded goldens assert
# byte-identical results while -race watches the lane goroutines — plus
# one iteration of the shard-sweep benchmarks. CI runs this.
bench-smoke-shards:
	$(GO) test -race -count=1 -run 'TestMultiRackSharded' ./ask
	$(GO) test -run='^$$' -bench='BenchmarkMultiRackShards|BenchmarkFatTreeShards' -benchtime=1x .

# Perf-trajectory artifact (see DESIGN.md "Performance engineering"): run
# the headline macro-benchmarks and serialize wall ns/op, allocs/op, and
# simulated throughput to JSON. Compare two checkouts by saving each
# phase's raw output and feeding both to benchjson (seed=… after=…), or
# point benchstat at the raw files directly.
BENCH_JSON ?= BENCH_current.json
BENCH_PAT  ?= BenchmarkFig3$$|BenchmarkFig7$$|BenchmarkMultiRack$$|BenchmarkScenarios$$|BenchmarkScaling$$|BenchmarkMultiRackShards|BenchmarkFatTreeShards
bench-json:
	$(GO) test -run='^$$' -bench='$(BENCH_PAT)' -benchmem . | tee bench_raw.txt
	$(GO) run ./cmd/benchjson -o $(BENCH_JSON) current=bench_raw.txt
	@rm -f bench_raw.txt
	@echo "wrote $(BENCH_JSON)"

# Bounded chaos soak (README "Failure model"): 12 fixed seeds of randomized
# fault schedules — switch outages, black-holes, loss/corruption bursts,
# host stalls — each run end-to-end against the analytic ground truth with
# a continuous per-link corruption baseline, then a fat-tree smoke pass
# (spine/leaf outages over the multi-tenant fabric, EXPERIMENTS.md "Fabric
# soak"). Deterministic and fast (a few seconds); a failure prints a
# shrunken schedule and a reproducer line carrying the topology flags.
soak:
	$(GO) run ./cmd/asksim -soak -soak.seed=1 -soak.runs=12 -soak.corrupt=1e-3
	$(GO) run ./cmd/asksim -soak -topology fattree -soak.seed=1 -soak.runs=6 -soak.corrupt=1e-3
	$(GO) run ./cmd/asksim -soak -topology fattree -soak.seed=1 -soak.runs=1 -soak.corrupt=1e-3 -soak.shards=4

# Scenario-corpus round trip (README "Workloads & traces"): every committed
# scenario regenerated from its seed (byte-identical), encoded to the v2
# timed trace format, decoded back, and replayed through the full stack on
# the sim clock against a direct run. CI runs this.
scenarios:
	$(GO) test -count=1 -run 'TestCorpusDeterminism|TestTraceRoundTripCorpus' ./internal/workload/scenario
	$(GO) test -count=1 -run 'TestScenarioCorpus' ./ask

ci: vet build lint selfcheck test test-shuffle race soak scenarios bench-smoke-shards
