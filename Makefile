# Development targets. CI (.github/workflows/ci.yml) runs `make ci`.

GO ?= go

.PHONY: all vet build test test-shuffle race bench lint telemetry-lint ci

all: ci

vet:
	$(GO) vet ./...

# Static-analysis suite (cmd/askcheck): PISA access legality, sim-clock
# determinism, lock-across-wait, and metric-name hygiene. See DESIGN.md's
# "Static verification" section.
lint:
	$(GO) run ./cmd/askcheck ./...

# Historical alias: the metric-name checks formerly lived in the standalone
# cmd/telemetrylint binary, now folded into askcheck's telemetrynames
# analyzer.
telemetry-lint:
	$(GO) run ./cmd/askcheck -run telemetrynames ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Shuffled test order catches inter-test state dependencies.
test-shuffle:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

ci: vet build lint test test-shuffle race
