// Package aggregate provides the host-side aggregation kernels: the
// streaming hash-map aggregator used by receivers, and the sort-merge
// pre-aggregation used by the PreAggr baseline and Spark-style mappers
// (§5.1 footnote 7: senders sort tuples by key and merge neighbours).
package aggregate

import (
	"sort"

	"repro/internal/core"
)

// Map aggregates a stream with a hash map (the receiver-side kernel).
func Map(op core.Op, s core.Stream) core.Result {
	r := make(core.Result)
	for {
		kv, ok := s()
		if !ok {
			return r
		}
		r.MergeKV(kv, op)
	}
}

// SortMerge aggregates by sorting tuples by key and merging equal-key
// neighbours (the PreAggr kernel). It mutates kvs.
func SortMerge(op core.Op, kvs []core.KV) core.Result {
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].Key < kvs[j].Key })
	r := make(core.Result, 64)
	i := 0
	for i < len(kvs) {
		j := i
		acc := op.Apply(op.Identity(), kvs[i].Val)
		for j+1 < len(kvs) && kvs[j+1].Key == kvs[i].Key {
			j++
			acc = op.Apply(acc, kvs[j].Val)
		}
		r[kvs[i].Key] = acc
		i = j + 1
	}
	return r
}

// Shard splits a stream round-robin into n sub-slices (mapper partitioning
// for the parallel host baselines).
func Shard(s core.Stream, n int) [][]core.KV {
	shards := make([][]core.KV, n)
	i := 0
	for {
		kv, ok := s()
		if !ok {
			return shards
		}
		shards[i%n] = append(shards[i%n], kv)
		i++
	}
}

// ResultBytes estimates the wire size of shipping a result as (key, value)
// records: per entry 2 bytes of length, the key, and an 8-byte value.
func ResultBytes(r core.Result) int {
	n := 0
	for k := range r {
		n += 2 + len(k) + 8
	}
	return n
}
