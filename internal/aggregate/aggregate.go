// Package aggregate provides the host-side aggregation kernels: the
// streaming hash-map aggregator used by receivers, and the sort-merge
// pre-aggregation used by the PreAggr baseline and Spark-style mappers
// (§5.1 footnote 7: senders sort tuples by key and merge neighbours).
package aggregate

import (
	"repro/internal/core"
)

// Map aggregates a stream with a hash map (the receiver-side kernel).
func Map(op core.Op, s core.Stream) core.Result {
	r := make(core.Result)
	for {
		kv, ok := s()
		if !ok {
			return r
		}
		r.MergeKV(kv, op)
	}
}

// SortMerge aggregates a tuple slice into one value per key (the PreAggr
// mapper kernel, §5.1 footnote 7: senders sort their shard by key and merge
// equal-key neighbours).
//
// The modeled system sorts; the simulator does not have to. The baseline's
// cost in virtual time is charged by the calibrated CPU model
// (HostAggregateCost per tuple in baselines.RunPreAggr), so the Go-level
// kernel only has to produce the identical per-key reduction, and every Op
// is commutative and associative, making hash grouping and sort-merge
// indistinguishable in output. Grouping through the map is O(n) instead of
// O(n log n) string comparisons, which removes the sort from the Fig. 7
// benchmark's wall-clock entirely without changing a single simulated
// number. SortMerge no longer mutates kvs.
func SortMerge(op core.Op, kvs []core.KV) core.Result {
	r := make(core.Result, 64)
	for _, kv := range kvs {
		r.MergeKV(kv, op)
	}
	return r
}

// Shard splits a stream round-robin into n sub-slices (mapper partitioning
// for the parallel host baselines).
func Shard(s core.Stream, n int) [][]core.KV {
	shards := make([][]core.KV, n)
	i := 0
	for {
		kv, ok := s()
		if !ok {
			return shards
		}
		shards[i%n] = append(shards[i%n], kv)
		i++
	}
}

// ResultBytes estimates the wire size of shipping a result as (key, value)
// records: per entry 2 bytes of length, the key, and an 8-byte value.
func ResultBytes(r core.Result) int {
	n := 0
	for k := range r {
		n += 2 + len(k) + 8
	}
	return n
}
