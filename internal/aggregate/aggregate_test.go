package aggregate

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func randKVs(seed int64, n, distinct int) []core.KV {
	rng := rand.New(rand.NewSource(seed))
	kvs := make([]core.KV, n)
	for i := range kvs {
		kvs[i] = core.KV{Key: fmt.Sprintf("k%d", rng.Intn(distinct)), Val: int64(rng.Intn(200) - 100)}
	}
	return kvs
}

func TestMapMatchesReference(t *testing.T) {
	kvs := randKVs(1, 5000, 100)
	got := Map(core.OpSum, core.SliceStream(kvs))
	want := core.Reference(core.OpSum, kvs)
	if !got.Equal(want) {
		t.Fatalf("Map diverges: %s", got.Diff(want, 5))
	}
}

func TestSortMergeMatchesMap(t *testing.T) {
	for _, op := range []core.Op{core.OpSum, core.OpMax, core.OpMin, core.OpCount} {
		kvs := randKVs(2, 3000, 80)
		viaMap := Map(op, core.SliceStream(kvs))
		viaSort := SortMerge(op, append([]core.KV(nil), kvs...))
		if !viaSort.Equal(viaMap) {
			t.Fatalf("op %v: sort-merge diverges: %s", op, viaSort.Diff(viaMap, 5))
		}
	}
}

func TestSortMergeQuick(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw%500) + 1
		kvs := randKVs(seed, n, 20)
		return SortMerge(core.OpSum, append([]core.KV(nil), kvs...)).
			Equal(core.Reference(core.OpSum, kvs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestShardPreservesTuples(t *testing.T) {
	kvs := randKVs(3, 1000, 50)
	shards := Shard(core.SliceStream(kvs), 7)
	var all []core.KV
	for _, s := range shards {
		all = append(all, s...)
	}
	if len(all) != len(kvs) {
		t.Fatalf("sharding lost tuples: %d vs %d", len(all), len(kvs))
	}
	if !core.Reference(core.OpSum, all).Equal(core.Reference(core.OpSum, kvs)) {
		t.Fatal("shard content diverges")
	}
	// Balanced within 1.
	for _, s := range shards {
		if len(s) < len(kvs)/7 || len(s) > len(kvs)/7+1 {
			t.Fatalf("unbalanced shard: %d", len(s))
		}
	}
}

func TestResultBytes(t *testing.T) {
	r := core.Result{"ab": 1, "cdef": 2}
	// (2+2+8) + (2+4+8) = 26.
	if got := ResultBytes(r); got != 26 {
		t.Fatalf("ResultBytes = %d, want 26", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if got := Map(core.OpSum, core.SliceStream(nil)); len(got) != 0 {
		t.Fatal("Map of empty stream non-empty")
	}
	if got := SortMerge(core.OpSum, nil); len(got) != 0 {
		t.Fatal("SortMerge of empty slice non-empty")
	}
}
