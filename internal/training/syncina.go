package training

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

// syncina simulates one synchronous in-network-aggregated gradient push:
// M workers stream the same sequence of gradient chunks; the switch holds a
// slot pool, sums contributions per chunk, and when all M have arrived it
// forwards one aggregated packet to the parameter server and acknowledges
// the workers, freeing the slot (§2.1.3 synchronous aggregation). A worker
// may have at most `slots` chunks outstanding, which is the synchronization
// the mechanism relies on.
//
// The value-stream payload itself is synthetic (the timing depends only on
// the byte geometry), but the aggregation counting is real: the run fails
// loudly if any chunk completes with the wrong contribution count.

// pushConfig parameterizes one push.
type pushConfig struct {
	workers int
	chunks  int // gradient length in packets per worker
	geom    geometry
	cores   int
	link    netsim.LinkConfig
	seed    int64
}

// psHostID is the parameter server's address; workers are 1..M.
const psHostID core.HostID = 0

// syncSwitch is the synchronous-INA switch program.
type syncSwitch struct {
	net     *netsim.Network
	workers int
	slots   int
	// count[c] tracks contributions of in-flight chunk c.
	count     map[uint32]int
	completed int
	wireBytes int
	onDone    func(chunk uint32)
}

func (sw *syncSwitch) HandleIngress(f *netsim.Frame) {
	if f.Pkt.Type != wire.TypeData {
		sw.net.SwitchSend(f)
		return
	}
	c := f.Pkt.Seq
	sw.count[c]++
	if sw.count[c] > sw.workers {
		panic(fmt.Sprintf("training: chunk %d aggregated %d times with %d workers", c, sw.count[c], sw.workers))
	}
	if sw.count[c] < sw.workers {
		return // absorbed into the slot
	}
	// Complete: one aggregated packet to the PS, ACKs to every worker.
	delete(sw.count, c)
	sw.completed++
	out := &wire.Packet{Type: wire.TypeData, Seq: c}
	sw.net.SwitchSend(&netsim.Frame{Src: f.Src, Dst: psHostID, Pkt: out, WireBytes: f.WireBytes, GoodBytes: f.GoodBytes})
	for w := 1; w <= sw.workers; w++ {
		ack := &wire.Packet{Type: wire.TypeAck, AckFor: wire.TypeData, Seq: c}
		sw.net.SwitchSend(&netsim.Frame{Src: psHostID, Dst: core.HostID(w), Pkt: ack, WireBytes: wire.PerPacketOverhead})
	}
	sw.onDone(c)
}

// pushWorker is one training worker's NIC-side state.
type pushWorker struct {
	host   core.HostID
	acked  uint32 // chunks completed (in order)
	ackSig *sim.Signal
}

func (w *pushWorker) HandleFrame(f *netsim.Frame) {
	if f.Pkt.Type != wire.TypeAck {
		return
	}
	// Synchronous aggregation completes chunks in order on fault-free
	// links; the window logic below depends on it.
	if f.Pkt.Seq+1 > w.acked {
		w.acked = f.Pkt.Seq + 1
	}
	w.ackSig.Fire()
}

// psSink counts aggregated traffic at the parameter server.
type psSink struct{ packets int }

func (p *psSink) HandleFrame(f *netsim.Frame) {
	if f.Pkt.Type == wire.TypeData {
		p.packets++
	}
}

// runPush simulates one gradient push and returns its duration.
func runPush(cfg pushConfig) (time.Duration, error) {
	s := sim.New(cfg.seed)
	n := netsim.New(s, cfg.link)
	sw := &syncSwitch{net: n, workers: cfg.workers, slots: cfg.geom.slots, count: make(map[uint32]int), onDone: func(uint32) {}}
	n.AttachSwitch(sw)
	ps := &psSink{}
	n.AttachHost(psHostID, ps)

	pktWire := cfg.geom.vals*4 + wire.PerPacketOverhead + cfg.geom.extra
	workers := make([]*pushWorker, cfg.workers)
	for wi := 1; wi <= cfg.workers; wi++ {
		w := &pushWorker{host: core.HostID(wi), ackSig: sim.NewSignal(s)}
		workers[wi-1] = w
		n.AttachHost(w.host, w)
		cpu := cpumodel.NewHost(s, cfg.cores)
		// Four NIC threads per worker share the packet-IO load (§4: the
		// daemon thread pool); each packet costs PacketIOCost on one.
		const nicThreads = 4
		up := n.Uplink(w.host)
		for t := 0; t < nicThreads; t++ {
			t := t
			thread := cpu.NewThread()
			s.Spawn(fmt.Sprintf("push-w%d-t%d", wi, t), func(p *sim.Proc) {
				for c := t; c < cfg.chunks; c += nicThreads {
					// Synchronous window: chunk c needs slot c mod slots,
					// free once chunk c-slots completed.
					for c >= cfg.geom.slots && w.acked < uint32(c-cfg.geom.slots+1) {
						p.Wait(w.ackSig)
					}
					thread.Run(p, cpumodel.PacketIOCost)
					if up.Backlog() > 50*time.Microsecond {
						p.SleepUntil(up.NextFree().Add(-25 * time.Microsecond))
					}
					pkt := &wire.Packet{Type: wire.TypeData, Seq: uint32(c)}
					n.HostSend(&netsim.Frame{
						Src: w.host, Dst: psHostID, Pkt: pkt,
						WireBytes: pktWire,
						GoodBytes: cfg.geom.vals * 4,
					})
				}
			})
		}
	}
	end := s.Run(0)
	if sw.completed != cfg.chunks {
		return 0, fmt.Errorf("training: %d of %d chunks completed", sw.completed, cfg.chunks)
	}
	if ps.packets != cfg.chunks {
		return 0, fmt.Errorf("training: PS received %d aggregated packets, want %d", ps.packets, cfg.chunks)
	}
	return time.Duration(end), nil
}

// bcastSwitch replicates parameter packets from the PS to every worker
// (the pull phase of the PS round under INA systems).
type bcastSwitch struct {
	net     *netsim.Network
	workers int
}

func (b *bcastSwitch) HandleIngress(f *netsim.Frame) {
	for w := 1; w <= b.workers; w++ {
		g := &netsim.Frame{Src: f.Src, Dst: core.HostID(w), Pkt: f.Pkt.Clone(), WireBytes: f.WireBytes, GoodBytes: f.GoodBytes}
		b.net.SwitchSend(g)
	}
}

// bcastSink counts received bytes at a worker.
type bcastSink struct{ bytes int64 }

func (b *bcastSink) HandleFrame(f *netsim.Frame) { b.bytes += int64(f.GoodBytes) }

// runMulticastPull simulates the PS broadcasting `bytes` of updated
// parameters to all workers via switch replication, returning its duration.
func runMulticastPull(workers int, bytes int64, cores int, link netsim.LinkConfig, seed int64) (time.Duration, error) {
	s := sim.New(seed)
	n := netsim.New(s, link)
	n.AttachSwitch(&bcastSwitch{net: n, workers: workers})
	sinks := make([]*bcastSink, workers)
	for w := 1; w <= workers; w++ {
		sinks[w-1] = &bcastSink{}
		n.AttachHost(core.HostID(w), sinks[w-1])
	}
	n.AttachHost(psHostID, &psSink{})
	cpu := cpumodel.NewHost(s, cores)
	thread := cpu.NewThread()
	const payload = wire.MTU - wire.HeaderBytes
	s.Spawn("ps-pull", func(p *sim.Proc) {
		up := n.Uplink(psHostID)
		for sent := int64(0); sent < bytes; sent += payload {
			thread.Run(p, cpumodel.PacketIOCost)
			if up.Backlog() > 50*time.Microsecond {
				p.SleepUntil(up.NextFree().Add(-25 * time.Microsecond))
			}
			n.HostSend(&netsim.Frame{
				Src: psHostID, Dst: core.HostID(1), // replicated by the switch
				Pkt:       &wire.Packet{Type: wire.TypeData},
				WireBytes: payload + wire.PerPacketOverhead,
				GoodBytes: payload,
			})
		}
	})
	end := s.Run(0)
	for w, sink := range sinks {
		if sink.bytes < bytes {
			return 0, fmt.Errorf("training: worker %d pulled %d of %d bytes", w+1, sink.bytes, bytes)
		}
	}
	return time.Duration(end), nil
}
