package training

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/cpumodel"
	"repro/internal/netsim"
)

// Report is one training-throughput measurement.
type Report struct {
	Model   string
	System  string
	Workers int
	// ImagesPerSec is the aggregate training throughput.
	ImagesPerSec float64
	// Breakdown of one iteration.
	Compute time.Duration
	Push    time.Duration
	Pull    time.Duration
}

// Options tunes a training run.
type Options struct {
	Workers int
	Cores   int
	Link    netsim.LinkConfig
	// GradScale divides the simulated gradient length; the measured
	// communication time is multiplied back. Push/pull times are linear in
	// volume once the pipeline is full, so scaling preserves them while
	// keeping the packet-level simulation tractable (documented in
	// EXPERIMENTS.md). 1 simulates every packet.
	GradScale int64
	Seed      int64
}

func (o *Options) defaults() {
	if o.Workers == 0 {
		o.Workers = 8
	}
	if o.Cores == 0 {
		o.Cores = cpumodel.DefaultCores
	}
	if o.Link.BandwidthBps == 0 {
		o.Link = netsim.DefaultLinkConfig()
	}
	if o.GradScale == 0 {
		o.GradScale = 64
	}
}

// Train measures steady-state training throughput of one model under one
// aggregation system: iteration time = local compute + gradient push +
// parameter pull (BytePS-style synchronous PS round, no overlap), with the
// push and pull phases simulated packet-by-packet.
func Train(m Model, sys System, opts Options) (Report, error) {
	opts.defaults()
	rep := Report{Model: m.Name, System: sys.String(), Workers: opts.Workers, Compute: m.Compute}
	simBytes := m.GradBytes() / opts.GradScale
	if simBytes < 1 {
		simBytes = 1
	}

	var push, pull time.Duration
	var err error
	switch sys {
	case SysHostPS:
		// Push: M workers ship their gradients to the PS (its link is the
		// bottleneck). Pull: the PS unicasts updated parameters to each
		// worker — the same volume through the same link.
		r := baselines.RunNoAggr(baselines.NoAggrConfig{
			Senders:           opts.Workers,
			ChannelsPerSender: 4,
			BytesPerSender:    simBytes,
			Cores:             opts.Cores,
			Link:              opts.Link,
			Seed:              opts.Seed,
		})
		push = r.Elapsed
		pull = r.Elapsed
	default:
		g := sys.geometry()
		chunks := int((simBytes + int64(g.vals*4) - 1) / int64(g.vals*4))
		push, err = runPush(pushConfig{
			workers: opts.Workers,
			chunks:  chunks,
			geom:    g,
			cores:   opts.Cores,
			link:    opts.Link,
			seed:    opts.Seed,
		})
		if err != nil {
			return rep, err
		}
		// INA systems pull via switch replication: the PS sends once.
		pull, err = runMulticastPull(opts.Workers, simBytes, opts.Cores, opts.Link, opts.Seed)
		if err != nil {
			return rep, err
		}
	}
	rep.Push = push * time.Duration(opts.GradScale)
	rep.Pull = pull * time.Duration(opts.GradScale)
	iter := m.Compute + rep.Push + rep.Pull
	rep.ImagesPerSec = float64(opts.Workers*m.Batch) / iter.Seconds()
	return rep, nil
}
