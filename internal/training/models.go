// Package training reproduces the distributed-training experiment (§5.6):
// a BytePS-style parameter-server loop whose gradient push traverses the
// switch, comparing ASK's value-stream mode against SwitchML-like and
// ATP-like synchronous in-network aggregation and a host-only parameter
// server.
//
// Gradients are pushed as quantized 4-byte integers (as SwitchML and ATP
// do). The systems differ in packet geometry — how many gradient values
// one packet carries and what per-packet overhead it pays — which is what
// drives the throughput differences the paper reports ("SwitchML's small
// packet size cannot fully utilize the network bandwidth"):
//
//   - SwitchML-like: 32 values per packet (conservative per-packet
//     processing on the switch);
//   - ATP-like: 64 values per packet;
//   - ASK value-stream mode: 128 values per packet — the §4/§5.7 chained
//     pipelines configuration, where the sender-assisted addressing of
//     §3.2.2 with F(index)=index lets the plugin carry one base index per
//     packet instead of a key per slot.
package training

import (
	"fmt"
	"time"
)

// Model describes one DNN for the image-classification workload.
type Model struct {
	Name string
	// Params is the parameter (= gradient element) count.
	Params int64
	// Compute is the forward+backward time for one local batch on the
	// paper's RTX 2080 Ti, calibrated to public single-GPU throughputs.
	Compute time.Duration
	// Batch is the per-worker batch size.
	Batch int
}

// GradBytes is the pushed gradient volume (4-byte quantized values).
func (m Model) GradBytes() int64 { return 4 * m.Params }

// Models returns the paper's model zoo (§5.1: ResNet50/101/152 and
// VGG11/16/19 on ImageNet). Parameter counts are the published ImageNet
// model sizes; compute times correspond to ≈200/125/90 images/s/GPU for the
// ResNets and ≈170/120/105 for the VGGs at batch 32 on a 2080 Ti.
func Models() []Model {
	return []Model{
		{Name: "ResNet50", Params: 25_557_032, Compute: 160 * time.Millisecond, Batch: 32},
		{Name: "ResNet101", Params: 44_549_160, Compute: 256 * time.Millisecond, Batch: 32},
		{Name: "ResNet152", Params: 60_192_808, Compute: 356 * time.Millisecond, Batch: 32},
		{Name: "VGG11", Params: 132_863_336, Compute: 188 * time.Millisecond, Batch: 32},
		{Name: "VGG16", Params: 138_357_544, Compute: 267 * time.Millisecond, Batch: 32},
		{Name: "VGG19", Params: 143_667_240, Compute: 305 * time.Millisecond, Batch: 32},
	}
}

// ModelByName looks up a zoo model.
func ModelByName(name string) (Model, error) {
	for _, m := range Models() {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("training: unknown model %q", name)
}

// System selects the gradient-aggregation mechanism.
type System uint8

const (
	// SysASK is ASK's backward-compatible value-stream mode (§5.6).
	SysASK System = iota
	// SysATP is an ATP-like synchronous INA with dynamic slot allocation.
	SysATP
	// SysSwitchML is a SwitchML-like synchronous INA with a static slot
	// pool and small packets.
	SysSwitchML
	// SysHostPS is the no-INA baseline: a plain parameter server.
	SysHostPS
)

func (s System) String() string {
	switch s {
	case SysASK:
		return "ASK"
	case SysATP:
		return "ATP"
	case SysSwitchML:
		return "SwitchML"
	case SysHostPS:
		return "HostPS"
	default:
		return "invalid"
	}
}

// geometry is a system's packet format for gradient pushes.
type geometry struct {
	// vals is the number of 4-byte gradient values per packet.
	vals int
	// extra is header overhead beyond the common 78 bytes (tensor id,
	// offset, bitmap, etc.).
	extra int
	// slots is the switch aggregator pool available to the job.
	slots int
}

func (s System) geometry() geometry {
	switch s {
	case SysASK:
		return geometry{vals: 128, extra: 8, slots: 4096}
	case SysATP:
		return geometry{vals: 64, extra: 12, slots: 4096}
	case SysSwitchML:
		return geometry{vals: 32, extra: 4, slots: 2048}
	default:
		return geometry{vals: 256, extra: 8, slots: 0} // HostPS: plain MTU-ish framing
	}
}
