package training

import (
	"fmt"

	"repro/internal/core"
)

// Value-stream adapter (§2.1.3, §5.6): value streams are a special case of
// key-value streams where the element index is the key, so a gradient
// tensor can be pushed through ASK's generic asynchronous path unchanged.
// Indices are encoded as 4 NUL-free bytes so they classify as short keys
// and ride the switch aggregators; every worker uses the same encoding, so
// the sender-assisted addressing (§3.2.2) lines the same index up on the
// same aggregator across workers.

// MaxTensorLen is the largest addressable tensor: four base-255 digits.
const MaxTensorLen = 255 * 255 * 255 * 255

// IndexKey encodes a tensor element index as a 4-byte NUL-free short key
// (base-255, offset by one). idx must be below MaxTensorLen (4.2 G
// elements — larger tensors are chunked by the plugin).
func IndexKey(idx uint32) string {
	if idx >= MaxTensorLen {
		panic(fmt.Sprintf("training: tensor index %d exceeds MaxTensorLen", idx))
	}
	var b [4]byte
	for i := 3; i >= 0; i-- {
		b[i] = byte(idx%255) + 1
		idx /= 255
	}
	return string(b[:])
}

// ParseIndexKey reverses IndexKey.
func ParseIndexKey(key string) (uint32, error) {
	if len(key) != 4 {
		return 0, fmt.Errorf("training: index key %q is not 4 bytes", key)
	}
	var idx uint32
	for i := 0; i < 4; i++ {
		d := key[i]
		if d == 0 {
			return 0, fmt.Errorf("training: index key %q has a NUL digit", key)
		}
		idx = idx*255 + uint32(d-1)
	}
	return idx, nil
}

// TensorStream yields the (index, value) tuples of a gradient tensor.
func TensorStream(tensor []int64) core.Stream {
	i := 0
	return func() (core.KV, bool) {
		if i >= len(tensor) {
			return core.KV{}, false
		}
		kv := core.KV{Key: IndexKey(uint32(i)), Val: tensor[i]}
		i++
		return kv, true
	}
}

// DecodeTensor reconstructs an aggregated tensor of length n from an ASK
// result. Missing indices decode to zero (a zero gradient never leaves the
// identity at the aggregator).
func DecodeTensor(res core.Result, n int) ([]int64, error) {
	out := make([]int64, n)
	for k, v := range res {
		idx, err := ParseIndexKey(k)
		if err != nil {
			return nil, err
		}
		if int(idx) >= n {
			return nil, fmt.Errorf("training: index %d out of tensor bounds %d", idx, n)
		}
		out[idx] = v
	}
	return out, nil
}
