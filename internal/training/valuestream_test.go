package training

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/netsim"
)

func TestIndexKeyRoundtrip(t *testing.T) {
	f := func(raw uint32) bool {
		idx := raw % MaxTensorLen
		k := IndexKey(idx)
		if len(k) != 4 {
			return false
		}
		for i := 0; i < 4; i++ {
			if k[i] == 0 {
				return false
			}
		}
		got, err := ParseIndexKey(k)
		return err == nil && got == idx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexKeyInjective(t *testing.T) {
	seen := make(map[string]uint32)
	for i := uint32(0); i < 100000; i++ {
		k := IndexKey(i)
		if prev, dup := seen[k]; dup {
			t.Fatalf("indices %d and %d collide on %q", prev, i, k)
		}
		seen[k] = i
	}
}

func TestIndexKeyBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	IndexKey(MaxTensorLen)
}

func TestParseIndexKeyErrors(t *testing.T) {
	if _, err := ParseIndexKey("abc"); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := ParseIndexKey("a\x00bc"); err == nil {
		t.Fatal("NUL key accepted")
	}
}

func TestValueStreamThroughASK(t *testing.T) {
	// §5.6 backward compatibility: gradient tensors from three workers,
	// pushed through the generic asynchronous KV path, must sum
	// elementwise — even over a lossy network.
	const n = 4096
	rng := rand.New(rand.NewSource(9))
	tensors := make([][]int64, 3)
	want := make([]int64, n)
	for w := range tensors {
		tensors[w] = make([]int64, n)
		for i := range tensors[w] {
			tensors[w][i] = int64(rng.Intn(2001) - 1000)
			want[i] += tensors[w][i]
		}
	}

	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = 0.01
	cl, err := ask.NewCluster(ask.Options{Hosts: 4, Link: link, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Aggregate(core.TaskSpec{
		ID: 1, Receiver: 0, Senders: []core.HostID{1, 2, 3}, Op: core.OpSum,
	}, map[core.HostID]core.Stream{
		1: TensorStream(tensors[0]),
		2: TensorStream(tensors[1]),
		3: TensorStream(tensors[2]),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTensor(res.Result, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("element %d = %d, want %d", i, got[i], want[i])
		}
	}
	// Value streams are switch-friendly: nearly all tuples absorbed.
	if ratio := res.Switch.AggregatedTupleRatio(); ratio < 0.9 {
		t.Fatalf("switch absorbed only %.1f%% of the value stream", 100*ratio)
	}
}

func TestDecodeTensorBounds(t *testing.T) {
	res := core.Result{IndexKey(10): 5}
	if _, err := DecodeTensor(res, 5); err == nil {
		t.Fatal("out-of-bounds index accepted")
	}
	if _, err := DecodeTensor(core.Result{"bad": 1}, 5); err == nil {
		t.Fatal("foreign key accepted")
	}
	got, err := DecodeTensor(res, 11)
	if err != nil || got[10] != 5 {
		t.Fatalf("decode: %v %v", got, err)
	}
}
