package training

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestModelZoo(t *testing.T) {
	ms := Models()
	if len(ms) != 6 {
		t.Fatalf("zoo has %d models", len(ms))
	}
	for _, m := range ms {
		if m.Params <= 0 || m.Compute <= 0 || m.Batch <= 0 {
			t.Fatalf("bad model %+v", m)
		}
	}
	if _, err := ModelByName("ResNet50"); err != nil {
		t.Fatal(err)
	}
	if _, err := ModelByName("AlexNet"); err == nil {
		t.Fatal("unknown model accepted")
	}
	// VGGs carry far more parameters than ResNets (comm-heavier).
	r50, _ := ModelByName("ResNet50")
	v16, _ := ModelByName("VGG16")
	if v16.Params < 5*r50.Params {
		t.Fatal("VGG16/ResNet50 parameter ratio off")
	}
}

func TestPushAggregatesExactlyOnce(t *testing.T) {
	// runPush fails internally if any chunk is double-counted or lost.
	d, err := runPush(pushConfig{
		workers: 4,
		chunks:  2000,
		geom:    SysSwitchML.geometry(),
		cores:   8,
		link:    netsim.DefaultLinkConfig(),
		seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("no push time")
	}
}

func TestPushScalesWithWorkersGently(t *testing.T) {
	// INA: push time is nearly independent of worker count (each worker
	// pushes on its own link; the switch absorbs the fan-in).
	g := SysASK.geometry()
	d2, err := runPush(pushConfig{workers: 2, chunks: 3000, geom: g, cores: 8, link: netsim.DefaultLinkConfig(), seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	d8, err := runPush(pushConfig{workers: 8, chunks: 3000, geom: g, cores: 8, link: netsim.DefaultLinkConfig(), seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(d8) / float64(d2); ratio > 1.5 {
		t.Fatalf("push time grew %.2f× from 2→8 workers; INA fan-in broken", ratio)
	}
}

func TestMulticastPull(t *testing.T) {
	d, err := runMulticastPull(8, 10<<20, 8, netsim.DefaultLinkConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// 10 MB at ~95 Gbps goodput ≈ 0.88 ms; switch replication means worker
	// count does not multiply it.
	if d <= 0 || d > 5*time.Millisecond {
		t.Fatalf("pull time %v", d)
	}
	d2, err := runMulticastPull(2, 10<<20, 8, netsim.DefaultLinkConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(d) / float64(d2); ratio > 1.2 {
		t.Fatalf("multicast pull scaled with workers (%.2f×)", ratio)
	}
}

func TestTrainThroughputOrdering(t *testing.T) {
	m, _ := ModelByName("VGG16") // comm-heavy: differences visible
	opts := Options{Workers: 8, GradScale: 512, Seed: 1}
	var imgs = map[System]float64{}
	for _, sys := range []System{SysASK, SysATP, SysSwitchML, SysHostPS} {
		rep, err := Train(m, sys, opts)
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		if rep.ImagesPerSec <= 0 {
			t.Fatalf("%v: no throughput", sys)
		}
		imgs[sys] = rep.ImagesPerSec
	}
	// Fig. 12 shape: the INA systems are similar and all beat the host PS;
	// SwitchML trails ASK/ATP slightly on comm-heavy models.
	if imgs[SysHostPS] >= imgs[SysSwitchML] {
		t.Fatalf("HostPS %.0f ≥ SwitchML %.0f", imgs[SysHostPS], imgs[SysSwitchML])
	}
	if imgs[SysSwitchML] > imgs[SysASK] {
		t.Fatalf("SwitchML %.0f above ASK %.0f", imgs[SysSwitchML], imgs[SysASK])
	}
	// "Similar performance": ASK within 25% of ATP.
	if r := imgs[SysASK] / imgs[SysATP]; r < 0.75 || r > 1.35 {
		t.Fatalf("ASK/ATP ratio %.2f not 'similar'", r)
	}
}

func TestTrainComputeBoundResNet(t *testing.T) {
	// ResNet50 at 100 Gbps is compute-dominated: INA choice changes little.
	m, _ := ModelByName("ResNet50")
	opts := Options{Workers: 8, GradScale: 512, Seed: 1}
	a, err := Train(m, SysASK, opts)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Train(m, SysSwitchML, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r := a.ImagesPerSec / s.ImagesPerSec; r > 1.5 {
		t.Fatalf("ResNet50 ASK/SwitchML gap %.2f too large for a compute-bound model", r)
	}
	if a.Compute != m.Compute {
		t.Fatal("compute time not reported")
	}
}

func TestSystemStrings(t *testing.T) {
	for _, s := range []System{SysASK, SysATP, SysSwitchML, SysHostPS, System(42)} {
		if s.String() == "" {
			t.Fatal("empty system name")
		}
	}
}
