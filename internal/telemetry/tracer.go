package telemetry

import (
	"strings"
	"sync"

	"repro/internal/sim"
)

// Component identifies the layer emitting a trace event; components are
// bits so a Tracer mask can enable any subset.
type Component uint8

const (
	CompSim Component = 1 << iota
	CompPisa
	CompSwitchd
	CompHostd
	CompWindow
	CompNetsim
	CompChaos

	// CompAll enables every component.
	CompAll Component = 0xff
)

var compNames = []struct {
	c Component
	s string
}{
	{CompSim, "sim"},
	{CompPisa, "pisa"},
	{CompSwitchd, "switchd"},
	{CompHostd, "hostd"},
	{CompWindow, "window"},
	{CompNetsim, "netsim"},
	{CompChaos, "chaos"},
}

// String renders a component set as "switchd" or "hostd|window".
func (c Component) String() string {
	var parts []string
	for _, cn := range compNames {
		if c&cn.c != 0 {
			parts = append(parts, cn.s)
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "|")
}

// MarshalText lets events JSON-encode with readable component names.
func (c Component) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// Event is one structured trace record. A and B are event-specific
// numeric arguments (documented per Kind in DESIGN.md); Note is optional
// free text for events that need it (e.g. chaos injection descriptions).
type Event struct {
	At   sim.Time  `json:"at_ns"`
	Comp Component `json:"comp"`
	Kind string    `json:"kind"`
	Task int64     `json:"task,omitempty"`
	A    int64     `json:"a,omitempty"`
	B    int64     `json:"b,omitempty"`
	Note string    `json:"note,omitempty"`
}

// Tracer keeps the most recent events in a fixed ring. Emitting an event
// whose component is masked off is a two-instruction no-op; a nil Tracer
// ignores everything. Emit is safe for concurrent use so -race tests can
// hammer components from multiple goroutines.
type Tracer struct {
	clock func() sim.Time
	mask  Component

	mu      sync.Mutex
	ring    []Event
	next    int   // next write position
	wrapped bool  // ring has been overwritten at least once
	dropped int64 // events overwritten
}

// NewTracer builds a tracer holding the last capacity events from the
// components in mask, timestamped via clock (usually Simulation.Now).
func NewTracer(clock func() sim.Time, capacity int, mask Component) *Tracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Tracer{clock: clock, mask: mask, ring: make([]Event, capacity)}
}

// Enabled reports whether events from comp are recorded.
func (t *Tracer) Enabled(comp Component) bool { return t != nil && t.mask&comp != 0 }

// Emit records an event with numeric arguments.
func (t *Tracer) Emit(comp Component, kind string, task, a, b int64) {
	t.emit(Event{Comp: comp, Kind: kind, Task: task, A: a, B: b})
}

// EmitNote records an event carrying free text.
func (t *Tracer) EmitNote(comp Component, kind string, task int64, note string) {
	t.emit(Event{Comp: comp, Kind: kind, Task: task, Note: note})
}

func (t *Tracer) emit(e Event) {
	if t == nil || t.mask&e.Comp == 0 {
		return
	}
	e.At = t.clock()
	t.mu.Lock()
	if t.wrapped {
		t.dropped++
	}
	t.ring[t.next] = e
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.wrapped = true
	}
	t.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.wrapped {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dropped returns how many events were overwritten after the ring filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
