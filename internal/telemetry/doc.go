// Package telemetry is the observability substrate of the ASK reproduction:
// a dependency-free metrics registry, a sim-clock event tracer, and a
// periodic gauge sampler, with Prometheus-text and JSON exporters.
//
// The paper (He et al., ASPLOS 2023) evaluates ASK almost entirely through
// switch and host counters — aggregation throughput and effectiveness
// (Table 1), goodput, retransmissions, and hot-key swap behaviour
// (Figs. 8–13). This package gives those numbers one home instead of four
// ad-hoc Stats structs:
//
//   - Registry hands out typed Counter, Gauge, and log-linear Histogram
//     instruments under hierarchical dotted names with labels, e.g.
//     switchd.tuples_aggregated{task="1"}. Hot paths touch a single
//     atomic; a nil instrument (telemetry fully disabled) is a no-op
//     whose calls the inliner erases, so experiment throughput is
//     unaffected.
//   - Tracer keeps a bounded ring of structured events (packet-drop
//     reasons, compact-seen replay decisions, shadow-copy swaps, epoch
//     changes, failover enter/exit, window stall/resume) stamped with the
//     virtual clock, filtered by a per-component enable mask.
//   - Sampler snapshots every gauge on a fixed virtual-time period into
//     time series, so experiments can plot aggregator occupancy or window
//     fill over time deterministically: two runs with equal seeds produce
//     byte-identical series.
//   - WritePrometheus and Snapshot/WriteJSON export the registry; Report
//     renders a human table via internal/stats.
//
// Components receive a Sink{Reg, Tr}. A zero Sink is valid everywhere and
// disables that component's telemetry.
package telemetry
