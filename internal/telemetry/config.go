package telemetry

import (
	"time"

	"repro/internal/sim"
)

// Config selects what a deployment records.
type Config struct {
	// Enabled turns on the registry, tracer, and sampler. When false the
	// cluster hands components a zero Sink and every instrument is nil —
	// recording calls are no-ops the inliner removes.
	Enabled bool
	// TraceCapacity bounds the event ring (default 4096).
	TraceCapacity int
	// TraceMask selects which components may emit events (default CompAll).
	TraceMask Component
	// SampleInterval is the gauge sampling period on the virtual clock
	// (default DefaultSampleInterval). Sampling runs only while tasks are
	// in flight.
	SampleInterval time.Duration
}

// Sink is the handle a component records through: a registry for
// instruments and a tracer for events. The zero Sink is valid and
// disables both.
type Sink struct {
	Reg *Registry
	Tr  *Tracer
}

// Enabled reports whether the sink records metrics.
func (sk Sink) Enabled() bool { return sk.Reg != nil }

// Set bundles the live telemetry of one cluster.
type Set struct {
	Registry *Registry
	Tracer   *Tracer
	Sampler  *Sampler
}

// NewSet builds the telemetry for one cluster. Returns nil when cfg is
// disabled; a nil *Set is safe to use everywhere (Sink() returns a zero
// sink).
func NewSet(s *sim.Simulation, cfg Config) *Set {
	if !cfg.Enabled {
		return nil
	}
	if cfg.TraceCapacity <= 0 {
		cfg.TraceCapacity = 4096
	}
	if cfg.TraceMask == 0 {
		cfg.TraceMask = CompAll
	}
	reg := NewRegistry()
	return &Set{
		Registry: reg,
		Tracer:   NewTracer(s.Now, cfg.TraceCapacity, cfg.TraceMask),
		Sampler:  NewSampler(s, reg, cfg.SampleInterval),
	}
}

// Sink returns the component-facing handle (zero Sink for nil sets).
func (ts *Set) Sink() Sink {
	if ts == nil {
		return Sink{}
	}
	return Sink{Reg: ts.Registry, Tr: ts.Tracer}
}
