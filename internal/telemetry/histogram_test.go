package telemetry

import (
	"math"
	"math/rand"
	"testing"
)

// TestHistogramExactRange: values 0..15 land in their own bucket with an
// exact edge (the two linear octaves before log-linear bucketing starts).
func TestHistogramExactRange(t *testing.T) {
	for v := int64(0); v < 16; v++ {
		if idx := bucketIndex(v); idx != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, idx, v)
		}
		if e := bucketUpperEdge(int(v)); e != v {
			t.Fatalf("bucketUpperEdge(%d) = %d, want %d", v, e, v)
		}
	}
}

// TestHistogramBucketBoundaries: every value lies within (prevEdge, edge],
// and the log-linear relative error stays within one sub-bucket (1/8).
func TestHistogramBucketBoundaries(t *testing.T) {
	check := func(v int64) {
		t.Helper()
		idx := bucketIndex(v)
		edge := bucketUpperEdge(idx)
		if v > edge {
			t.Fatalf("value %d above its bucket edge %d (bucket %d)", v, edge, idx)
		}
		if idx > 0 {
			if prev := bucketUpperEdge(idx - 1); v <= prev {
				t.Fatalf("value %d not above previous edge %d (bucket %d)", v, prev, idx)
			}
		}
		if v >= 16 {
			if relErr := float64(edge-v) / float64(v); relErr > 1.0/8 {
				t.Fatalf("value %d: edge %d rel err %.3f > 12.5%%", v, edge, relErr)
			}
		}
	}
	// Octave boundaries and their neighbours.
	for exp := uint(4); exp < 63; exp++ {
		p := int64(1) << exp
		for _, v := range []int64{p - 1, p, p + 1} {
			if v > 0 {
				check(v)
			}
		}
	}
	check(math.MaxInt64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		check(rng.Int63())
	}
}

func TestHistogramZeroNegativeAndMax(t *testing.T) {
	h := newHistogram()
	h.Record(0)
	h.Record(-5) // clamps to bucket 0
	h.Record(math.MaxInt64)
	if got := h.Count(); got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	s := h.Snapshot()
	if len(s.Buckets) != 2 {
		t.Fatalf("populated buckets = %d, want 2 (zero + top)", len(s.Buckets))
	}
	if s.Buckets[0].UpperEdge != 0 || s.Buckets[0].Count != 2 {
		t.Fatalf("zero bucket = %+v", s.Buckets[0])
	}
	if s.Buckets[1].UpperEdge != math.MaxInt64 {
		t.Fatalf("top edge = %d, want MaxInt64", s.Buckets[1].UpperEdge)
	}
	if bucketIndex(math.MaxInt64) != numBuckets-1 {
		t.Fatalf("MaxInt64 bucket = %d, want %d", bucketIndex(math.MaxInt64), numBuckets-1)
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	h := newHistogram()
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	if m := h.Mean(); m != 50.5 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
	// p50 of 1..100 is rank 50; its bucket edge must cover >= 50 and stay
	// within the 12.5% relative-error bound.
	p50 := h.Quantile(0.5)
	if p50 < 50 || float64(p50) > 50*1.125+1 {
		t.Fatalf("p50 = %d, want within [50, ~56]", p50)
	}
	if p100 := h.Quantile(1); p100 < 100 || float64(p100) > 100*1.125+1 {
		t.Fatalf("p100 = %d", p100)
	}
	if p0 := h.Quantile(0); p0 < 1 || p0 > 1 {
		t.Fatalf("p0 = %d, want 1 (rank clamps to 1)", p0)
	}
	var nilH *Histogram
	if nilH.Quantile(0.5) != 0 || nilH.Mean() != 0 {
		t.Fatal("nil histogram must read zero")
	}
}
