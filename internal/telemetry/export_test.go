package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite exporter golden files")

// goldenSet builds a small fixed telemetry set covering every instrument
// kind, so the exporter goldens exercise counters, gauges, gauge funcs,
// histograms (with labels), sampled series, and trace events.
func goldenSet() *Set {
	s := sim.New(1)
	set := NewSet(s, Config{Enabled: true, TraceCapacity: 8, SampleInterval: 100 * time.Microsecond})
	r := set.Registry
	r.Counter("switchd.tuples_in", L("task", "1")).Add(1000)
	r.Counter("switchd.tuples_in", L("task", "2")).Add(500)
	r.Counter("hostd.pkts_sent", L("host", "0")).Add(64)
	r.Gauge("switchd.aa_occupancy").Set(37)
	r.GaugeFunc("pisa.passes", func() int64 { return 2 })
	h := r.Histogram("window.rtt_ns", L("flow", "h1/ch0"))
	for _, v := range []int64{0, 1, 5, 16, 17, 100, 1000, 1_000_000} {
		h.Record(v)
	}
	set.Tracer.Emit(CompSwitchd, "shadow_swap", 1, 3, 0)
	set.Tracer.EmitNote(CompChaos, "inject", 0, "switch crash")
	s.Spawn("tick", func(p *sim.Proc) { p.Sleep(250 * time.Microsecond) })
	set.Sampler.Start()
	s.At(sim.Time(0).Add(250*time.Microsecond), set.Sampler.Stop)
	s.Run(0)
	return set
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -update` to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenSet().Registry); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Structural sanity independent of the golden bytes.
	for _, want := range []string{
		"# TYPE ask_switchd_tuples_in counter",
		"# TYPE ask_switchd_aa_occupancy gauge",
		"# TYPE ask_window_rtt_ns histogram",
		`ask_window_rtt_ns_bucket{flow="h1/ch0",le="+Inf"} 8`,
		`ask_window_rtt_ns_count{flow="h1/ch0"} 8`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	checkGolden(t, "prometheus.golden", buf.Bytes())
}

func TestJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSet().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// Must round-trip as JSON.
	var snap map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	for _, key := range []string{"counters", "gauges", "histograms", "series", "events"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("snapshot missing %q section", key)
		}
	}
	checkGolden(t, "snapshot.golden.json", buf.Bytes())
}

// TestWritePrometheusNil: a nil registry exports nothing, without error.
func TestWritePrometheusNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry: err=%v len=%d", err, buf.Len())
	}
}
