package telemetry

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key="value" dimension of an instrument.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

var (
	// Metric names are component.snake_case with at least two segments, so
	// every instrument is attributable to a layer (switchd.swaps, not swaps).
	nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)
	keyRE  = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)
)

// ValidName reports whether name matches the component.snake_case
// convention enforced by Registry (and by cmd/telemetrylint).
func ValidName(name string) bool { return nameRE.MatchString(name) }

// fullName renders name{k1="v1",k2="v2"} with label keys sorted, the
// canonical identity of an instrument.
func fullName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func checkName(name string, labels []Label) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: metric name %q is not component.snake_case", name))
	}
	for _, l := range labels {
		if !keyRE.MatchString(l.Key) {
			panic(fmt.Sprintf("telemetry: label key %q on %q is not snake_case", l.Key, name))
		}
	}
}

// Counter is a monotonically increasing integer. A nil Counter is a
// no-op; all methods are safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds d (d must be >= 0 for the exported value to stay monotonic;
// this is not enforced on the hot path).
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer value. A nil Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds d (may be negative).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry owns every instrument of one deployment. Instrument lookup is
// mutex-guarded and idempotent — the same (name, labels) always returns
// the same instrument — while instrument updates are lock-free atomics.
// A nil *Registry returns nil instruments, turning all downstream
// recording into no-ops.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	gaugeFuncs map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		gaugeFuncs: make(map[string]func() int64),
	}
}

// Counter returns the counter registered under name+labels, creating it
// on first use. Panics if the name violates the component.snake_case
// convention or collides with another instrument kind.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	checkName(name, labels)
	key := fullName(name, labels)
	r.mu.RLock()
	c := r.counters[key]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[key]; c != nil {
		return c
	}
	r.checkKindLocked(key, "counter")
	c = &Counter{}
	r.counters[key] = c
	return c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	checkName(name, labels)
	key := fullName(name, labels)
	r.mu.RLock()
	g := r.gauges[key]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[key]; g != nil {
		return g
	}
	r.checkKindLocked(key, "gauge")
	g = &Gauge{}
	r.gauges[key] = g
	return g
}

// Histogram returns the log-linear histogram registered under
// name+labels, creating it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	checkName(name, labels)
	key := fullName(name, labels)
	r.mu.RLock()
	h := r.hists[key]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[key]; h != nil {
		return h
	}
	r.checkKindLocked(key, "histogram")
	h = newHistogram()
	r.hists[key] = h
	return h
}

// GaugeFunc registers a callback gauge: fn is polled at sample and export
// time, so instrumenting an existing counter (e.g. pisa pipeline passes)
// costs nothing on the hot path. fn runs on the simulation goroutine.
// Re-registering the same name replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	checkName(name, labels)
	key := fullName(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.gaugeFuncs[key]; !dup {
		r.checkKindLocked(key, "gaugefunc")
	}
	r.gaugeFuncs[key] = fn
}

func (r *Registry) checkKindLocked(key, kind string) {
	if _, ok := r.counters[key]; ok && kind != "counter" {
		panic(fmt.Sprintf("telemetry: %q already registered as a counter", key))
	}
	if _, ok := r.gauges[key]; ok && kind != "gauge" {
		panic(fmt.Sprintf("telemetry: %q already registered as a gauge", key))
	}
	if _, ok := r.hists[key]; ok && kind != "histogram" {
		panic(fmt.Sprintf("telemetry: %q already registered as a histogram", key))
	}
	if _, ok := r.gaugeFuncs[key]; ok && kind != "gaugefunc" {
		panic(fmt.Sprintf("telemetry: %q already registered as a gauge func", key))
	}
}

// Names returns every registered full instrument name, sorted.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.gaugeFuncs))
	for k := range r.counters {
		names = append(names, k)
	}
	for k := range r.gauges {
		names = append(names, k)
	}
	for k := range r.hists {
		names = append(names, k)
	}
	for k := range r.gaugeFuncs {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// CounterValues returns the current value of every counter, keyed by full
// name.
func (r *Registry) CounterValues() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]int64, len(r.counters))
	for k, c := range r.counters {
		out[k] = c.Value()
	}
	return out
}

// GaugeValues returns the current value of every gauge and gauge func,
// keyed by full name. Callback gauges are polled; call only from the
// simulation goroutine.
func (r *Registry) GaugeValues() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	fns := make(map[string]func() int64, len(r.gaugeFuncs))
	for k, fn := range r.gaugeFuncs {
		fns[k] = fn
	}
	out := make(map[string]int64, len(r.gauges)+len(fns))
	for k, g := range r.gauges {
		out[k] = g.Value()
	}
	r.mu.RUnlock()
	for k, fn := range fns {
		out[k] = fn()
	}
	return out
}

// histSnapshots returns a snapshot of every histogram, keyed by full name.
func (r *Registry) histSnapshots() map[string]HistSnapshot {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]HistSnapshot, len(r.hists))
	for k, h := range r.hists {
		out[k] = h.Snapshot()
	}
	return out
}

// matches reports whether full name key belongs to base metric name
// (exact match, or base followed by a label block).
func matches(key, base string) bool {
	return key == base || (strings.HasPrefix(key, base) && key[len(base)] == '{')
}

// Total sums every counter whose base name is base across all label
// combinations — e.g. Total("hostd.replays_sent") over all hosts.
func (r *Registry) Total(base string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var t int64
	for k, c := range r.counters {
		if matches(k, base) {
			t += c.Value()
		}
	}
	return t
}

// Max returns the maximum value of every counter or gauge whose base name
// is base across all label combinations — e.g. the worst per-host
// degraded time.
func (r *Registry) Max(base string) int64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	var m int64
	for k, c := range r.counters {
		if matches(k, base) && c.Value() > m {
			m = c.Value()
		}
	}
	for k, g := range r.gauges {
		if matches(k, base) && g.Value() > m {
			m = g.Value()
		}
	}
	return m
}
