package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Exporters. The registry's dotted names become Prometheus families by
// replacing '.' with '_' and prefixing "ask_"; label blocks pass through
// unchanged since the registry already renders them in exposition syntax
// (sorted keys, %q-escaped values).

// promName converts "switchd.tuples_in" to "ask_switchd_tuples_in".
func promName(base string) string { return "ask_" + strings.ReplaceAll(base, ".", "_") }

// splitKey splits a full instrument name into base name and label block
// ("" when unlabeled; otherwise including braces).
func splitKey(key string) (base, labels string) {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i], key[i:]
	}
	return key, ""
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format: counters, gauges (callback gauges polled now), and histograms
// with cumulative le buckets. Output is sorted and deterministic.
func WritePrometheus(w io.Writer, r *Registry) error {
	if r == nil {
		return nil
	}
	// row carries an explicit sort key so histogram buckets keep numeric
	// le order (with +Inf last, then _sum/_count) instead of lexical order.
	type row struct {
		sortKey string
		line    string
	}
	type family struct {
		kind string
		rows []row
	}
	fams := make(map[string]*family)
	add := func(base, kind, sortKey, line string) {
		f := fams[base]
		if f == nil {
			f = &family{kind: kind}
			fams[base] = f
		}
		f.rows = append(f.rows, row{sortKey, line})
	}
	for key, v := range r.CounterValues() {
		base, labels := splitKey(key)
		line := fmt.Sprintf("%s%s %d", promName(base), labels, v)
		add(base, "counter", line, line)
	}
	for key, v := range r.GaugeValues() {
		base, labels := splitKey(key)
		line := fmt.Sprintf("%s%s %d", promName(base), labels, v)
		add(base, "gauge", line, line)
	}
	hists := r.histSnapshots()
	histKeys := make([]string, 0, len(hists))
	for key := range hists {
		histKeys = append(histKeys, key)
	}
	sort.Strings(histKeys)
	for _, key := range histKeys {
		s := hists[key]
		base, labels := splitKey(key)
		pn := promName(base)
		inner := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
		var cum int64
		for i, b := range s.Buckets {
			cum += b.Count
			lb := fmt.Sprintf(`le="%d"`, b.UpperEdge)
			if inner != "" {
				lb = inner + "," + lb
			}
			add(base, "histogram", fmt.Sprintf("%s|%06d", labels, i),
				fmt.Sprintf("%s_bucket{%s} %d", pn, lb, cum))
		}
		lb := `le="+Inf"`
		if inner != "" {
			lb = inner + "," + lb
		}
		add(base, "histogram", labels+"|~0inf",
			fmt.Sprintf("%s_bucket{%s} %d", pn, lb, s.Count))
		add(base, "histogram", labels+"|~1sum",
			fmt.Sprintf("%s_sum%s %d", pn, labels, s.Sum))
		add(base, "histogram", labels+"|~2count",
			fmt.Sprintf("%s_count%s %d", pn, labels, s.Count))
	}
	bases := make([]string, 0, len(fams))
	for b := range fams {
		bases = append(bases, b)
	}
	sort.Strings(bases)
	for _, base := range bases {
		f := fams[base]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", promName(base), f.kind); err != nil {
			return err
		}
		sort.Slice(f.rows, func(i, j int) bool { return f.rows[i].sortKey < f.rows[j].sortKey })
		for _, row := range f.rows {
			if _, err := fmt.Fprintln(w, row.line); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot is the JSON export shape: every instrument, the sampled
// series, and the retained trace events.
type Snapshot struct {
	Counters      map[string]int64        `json:"counters,omitempty"`
	Gauges        map[string]int64        `json:"gauges,omitempty"`
	Histograms    map[string]HistSnapshot `json:"histograms,omitempty"`
	Series        map[string][]Point      `json:"series,omitempty"`
	Events        []Event                 `json:"events,omitempty"`
	DroppedEvents int64                   `json:"dropped_events,omitempty"`
}

// TakeSnapshot captures the full state of a telemetry set. Nil-safe.
func (ts *Set) TakeSnapshot() Snapshot {
	if ts == nil {
		return Snapshot{}
	}
	return Snapshot{
		Counters:      ts.Registry.CounterValues(),
		Gauges:        ts.Registry.GaugeValues(),
		Histograms:    ts.Registry.histSnapshots(),
		Series:        ts.Sampler.AllSeries(),
		Events:        ts.Tracer.Events(),
		DroppedEvents: ts.Tracer.Dropped(),
	}
}

// WriteJSON writes an indented, key-sorted JSON snapshot.
func (ts *Set) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(ts.TakeSnapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}
