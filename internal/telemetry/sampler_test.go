package telemetry

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

// runSampled is one deterministic workload: a proc steps a gauge on the
// virtual clock while the sampler ticks, the sampler is stopped at a fixed
// instant, and the run must quiesce (Run returns ⇒ no pending timers).
func runSampled(seed int64) map[string][]Point {
	s := sim.New(seed)
	reg := NewRegistry()
	g := reg.Gauge("test.level")
	reg.GaugeFunc("test.doubled", func() int64 { return 2 * g.Value() })
	sp := NewSampler(s, reg, 70*time.Microsecond)
	s.Spawn("load", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			g.Set(int64(i * i))
			p.Sleep(100 * time.Microsecond)
		}
	})
	sp.Start()
	s.At(sim.Time(0).Add(1500*time.Microsecond), sp.Stop)
	s.Run(0)
	return sp.AllSeries()
}

// TestSamplerDeterministic: two identical seeded runs produce byte-identical
// series (the property the paper's occupancy-over-time figures rely on).
func TestSamplerDeterministic(t *testing.T) {
	a := runSampled(7)
	b := runSampled(7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seeded runs produced different series")
	}
	lv := a[`test.level`]
	if len(lv) == 0 {
		t.Fatal("no samples for test.level")
	}
	// Stop at 1.5ms adds a final snapshot; the series must cover the stop
	// instant and be strictly time-ordered.
	if last := lv[len(lv)-1].At; last != sim.Time(0).Add(1500*time.Microsecond) {
		t.Fatalf("final sample at %v, want the Stop instant", last)
	}
	for i := 1; i < len(lv); i++ {
		if lv[i].At <= lv[i-1].At {
			t.Fatalf("series not strictly ordered at %d: %v <= %v", i, lv[i].At, lv[i-1].At)
		}
	}
	// The callback gauge samples in lockstep with the stored gauge.
	dv := a[`test.doubled`]
	if len(dv) != len(lv) {
		t.Fatalf("gauge func series length %d != gauge series length %d", len(dv), len(lv))
	}
	for i := range lv {
		if dv[i].V != 2*lv[i].V {
			t.Fatalf("sample %d: doubled=%d level=%d", i, dv[i].V, lv[i].V)
		}
	}
}

// TestSamplerStopQuiesces: Run(0) returning after Stop proves the pending
// tick was cancelled — the property ask.Cluster depends on.
func TestSamplerStopQuiesces(t *testing.T) {
	s := sim.New(1)
	reg := NewRegistry()
	reg.Gauge("test.level").Set(1)
	sp := NewSampler(s, reg, 50*time.Microsecond)
	sp.Start()
	if !sp.Running() {
		t.Fatal("sampler should run after Start")
	}
	s.At(sim.Time(0).Add(200*time.Microsecond), sp.Stop)
	end := s.Run(0)
	if sp.Running() {
		t.Fatal("sampler should stop after Stop")
	}
	if end != sim.Time(0).Add(200*time.Microsecond) {
		t.Fatalf("simulation quiesced at %v, want the Stop instant", end)
	}
	// Restarting resumes sampling on the same series.
	sp.Start()
	s.At(sim.Time(0).Add(400*time.Microsecond), sp.Stop)
	s.Run(0)
	pts := sp.Series("test.level")
	if len(pts) < 2 {
		t.Fatalf("series too short after restart: %d", len(pts))
	}
}

func TestSamplerNil(t *testing.T) {
	var sp *Sampler
	sp.Start()
	sp.Stop()
	if sp.Running() || sp.Series("a.b") != nil || sp.AllSeries() != nil {
		t.Fatal("nil sampler must be inert")
	}
}
