package telemetry

import (
	"sort"
	"time"

	"repro/internal/sim"
)

// Point is one sampled value of a gauge at a virtual instant.
type Point struct {
	At sim.Time `json:"at_ns"`
	V  int64    `json:"v"`
}

// Sampler periodically snapshots every gauge (and gauge func) of a
// registry into per-gauge time series on the virtual clock. Because the
// clock is deterministic, two runs with equal seeds produce identical
// series — the substrate for the paper's occupancy-over-time figures.
//
// The sampler self-reschedules with sim.After, so it must be stopped when
// the workload completes or Simulation.Run(0) would never quiesce;
// ask.Cluster starts it with the first task and stops it with the last.
type Sampler struct {
	s        *sim.Simulation
	reg      *Registry
	interval time.Duration
	max      int

	running bool
	timer   sim.Timer
	series  map[string][]Point
}

// DefaultSampleInterval is the default gauge sampling period (virtual).
const DefaultSampleInterval = 100 * time.Microsecond

// defaultMaxSamples bounds a runaway series; at the default interval this
// covers 10 virtual seconds, far beyond any experiment in the repo.
const defaultMaxSamples = 100_000

// NewSampler builds a sampler over reg ticking every interval
// (DefaultSampleInterval if <= 0).
func NewSampler(s *sim.Simulation, reg *Registry, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	return &Sampler{s: s, reg: reg, interval: interval, max: defaultMaxSamples, series: make(map[string][]Point)}
}

// Start begins sampling: one snapshot now, then one per interval.
// Starting a running sampler is a no-op, so overlapping tasks share one
// cadence. A nil Sampler ignores Start.
func (sp *Sampler) Start() {
	if sp == nil || sp.running {
		return
	}
	sp.running = true
	sp.tick()
}

// Stop cancels the pending tick and takes one final snapshot, so series
// always cover the full task interval. A nil Sampler ignores Stop.
func (sp *Sampler) Stop() {
	if sp == nil || !sp.running {
		return
	}
	sp.timer.Stop()
	sp.running = false
	sp.sample()
}

// Running reports whether the sampler is active.
func (sp *Sampler) Running() bool { return sp != nil && sp.running }

func (sp *Sampler) tick() {
	sp.sample()
	if sp.count() >= sp.max {
		sp.running = false
		return
	}
	sp.timer = sp.s.After(sp.interval, sp.tick)
}

func (sp *Sampler) sample() {
	now := sp.s.Now()
	vals := sp.reg.GaugeValues()
	names := make([]string, 0, len(vals))
	for k := range vals {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		pts := sp.series[k]
		// Collapse same-instant duplicates (Stop immediately after a tick).
		if n := len(pts); n > 0 && pts[n-1].At == now {
			pts[n-1].V = vals[k]
		} else {
			pts = append(pts, Point{At: now, V: vals[k]})
		}
		sp.series[k] = pts
	}
}

func (sp *Sampler) count() int {
	n := 0
	for _, pts := range sp.series {
		if len(pts) > n {
			n = len(pts)
		}
	}
	return n
}

// Series returns the sampled time series of one gauge (nil if never
// sampled).
func (sp *Sampler) Series(name string, labels ...Label) []Point {
	if sp == nil {
		return nil
	}
	return sp.series[fullName(name, labels)]
}

// AllSeries returns every sampled series keyed by full gauge name.
func (sp *Sampler) AllSeries() map[string][]Point {
	if sp == nil {
		return nil
	}
	return sp.series
}
