package telemetry

import (
	"testing"

	"repro/internal/sim"
)

func fixedClock() sim.Time { return 42 }

// TestTracerWraparound fills the ring past capacity and checks the retained
// window is the most recent events in oldest-first order.
func TestTracerWraparound(t *testing.T) {
	const cap = 8
	tr := NewTracer(fixedClock, cap, CompAll)
	for i := 0; i < 2*cap+3; i++ {
		tr.Emit(CompSwitchd, "e", int64(i), 0, 0)
	}
	evs := tr.Events()
	if len(evs) != cap {
		t.Fatalf("retained %d events, want %d", len(evs), cap)
	}
	// The last 2*cap+3 emits kept events (cap+3)..(2*cap+2).
	for i, e := range evs {
		want := int64(cap + 3 + i)
		if e.Task != want {
			t.Fatalf("event %d: task %d, want %d (not oldest-first after wrap)", i, e.Task, want)
		}
	}
	if got := tr.Dropped(); got != cap+3 {
		t.Fatalf("dropped = %d, want %d", got, cap+3)
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(fixedClock, 16, CompAll)
	tr.Emit(CompHostd, "a", 1, 2, 3)
	tr.EmitNote(CompChaos, "inject", 0, "link down")
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Kind != "a" || evs[0].A != 2 || evs[0].B != 3 || evs[0].At != 42 {
		t.Fatalf("event 0 = %+v", evs[0])
	}
	if evs[1].Note != "link down" || evs[1].Comp != CompChaos {
		t.Fatalf("event 1 = %+v", evs[1])
	}
	if tr.Dropped() != 0 {
		t.Fatal("no drops expected before wrap")
	}
}

func TestTracerMask(t *testing.T) {
	tr := NewTracer(fixedClock, 8, CompSwitchd|CompWindow)
	tr.Emit(CompHostd, "masked", 0, 0, 0)
	tr.Emit(CompSwitchd, "kept", 0, 0, 0)
	tr.Emit(CompNetsim, "masked", 0, 0, 0)
	tr.Emit(CompWindow, "kept", 0, 0, 0)
	evs := tr.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2 (mask filters)", len(evs))
	}
	for _, e := range evs {
		if e.Kind != "kept" {
			t.Fatalf("masked event leaked: %+v", e)
		}
	}
	if !tr.Enabled(CompSwitchd) || tr.Enabled(CompHostd) {
		t.Fatal("Enabled mask check wrong")
	}
}

func TestTracerNil(t *testing.T) {
	var tr *Tracer
	tr.Emit(CompAll, "x", 0, 0, 0)
	tr.EmitNote(CompAll, "x", 0, "n")
	if tr.Events() != nil || tr.Dropped() != 0 || tr.Enabled(CompAll) {
		t.Fatal("nil tracer must be inert")
	}
}

func TestComponentString(t *testing.T) {
	if got := (CompHostd | CompWindow).String(); got != "hostd|window" {
		t.Fatalf("String = %q", got)
	}
	if got := Component(0).String(); got != "none" {
		t.Fatalf("zero String = %q", got)
	}
	b, err := CompChaos.MarshalText()
	if err != nil || string(b) != "chaos" {
		t.Fatalf("MarshalText = %q, %v", b, err)
	}
}
