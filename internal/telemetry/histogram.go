package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram is a log-linear (HDR-style) histogram of non-negative int64
// observations: each power-of-two octave is split into 2^subBits linear
// sub-buckets, giving a bounded relative error of 1/2^subBits ≈ 12.5%
// with a fixed 488-bucket footprint covering 0..MaxInt64. Recording is a
// single atomic add; a nil Histogram is a no-op.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

const (
	subBits    = 3
	subBuckets = 1 << subBits // 8 linear sub-buckets per octave
	// Values 0..subBuckets*2-1 are exact (buckets 0..15); beyond that,
	// value v lands in octave exp = floor(log2 v) - subBits, sub-bucket
	// v>>exp. MaxInt64 (exp 59) tops out at bucket 59*8+15 = 487.
	numBuckets = 488
)

func newHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a value to its bucket. Negative values clamp to 0.
func bucketIndex(v int64) int {
	if v < subBuckets*2 {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 - subBits
	return exp*subBuckets + int(v>>uint(exp))
}

// bucketUpperEdge returns the largest value contained in bucket i.
func bucketUpperEdge(i int) int64 {
	if i < subBuckets*2 {
		return int64(i)
	}
	exp := uint(i/subBuckets - 1)
	sub := int64(i%subBuckets + subBuckets)
	hi := (sub+1)<<exp - 1
	if hi < 0 { // overflow at the top octave
		return math.MaxInt64
	}
	return hi
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 for nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistBucket is one populated histogram bucket: Count observations with
// values <= UpperEdge (and greater than the previous bucket's edge).
type HistBucket struct {
	UpperEdge int64 `json:"le"`
	Count     int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram: only populated
// buckets, in increasing edge order.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the populated buckets. Concurrent Records may tear
// between count and buckets; on the single simulation goroutine it is
// exact.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := 0; i < numBuckets; i++ {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets = append(s.Buckets, HistBucket{UpperEdge: bucketUpperEdge(i), Count: n})
		}
	}
	return s
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) of the
// recorded values: the upper edge of the bucket containing that rank.
// Returns 0 when empty.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return bucketUpperEdge(i)
		}
	}
	return bucketUpperEdge(numBuckets - 1)
}

// Mean returns the mean observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}
