package telemetry

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestRegistryIdempotentLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("switchd.tuples_in", L("task", "1"))
	b := r.Counter("switchd.tuples_in", L("task", "1"))
	if a != b {
		t.Fatal("same name+labels returned different counters")
	}
	// Label order must not matter for instrument identity.
	c := r.Gauge("hostd.queue_depth", L("host", "0"), L("chan", "1"))
	d := r.Gauge("hostd.queue_depth", L("chan", "1"), L("host", "0"))
	if c != d {
		t.Fatal("label order changed gauge identity")
	}
	if got := fullName("hostd.queue_depth", []Label{L("host", "0"), L("chan", "1")}); got != `hostd.queue_depth{chan="1",host="0"}` {
		t.Fatalf("fullName = %q", got)
	}
}

func TestRegistryNilNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x.y")
	g := r.Gauge("x.y")
	h := r.Histogram("x.y")
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Record(42)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	r.GaugeFunc("x.y", func() int64 { return 1 })
	if r.Names() != nil || r.Total("x.y") != 0 || r.Max("x.y") != 0 {
		t.Fatal("nil registry accessors must be empty")
	}
}

func TestRegistryNameValidation(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"nosegment", "Upper.case", "switchd.", "a.b-c", ".leading", "a..b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: expected panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad label key: expected panic")
			}
		}()
		r.Counter("a.b", L("Bad-Key", "v"))
	}()
	if !ValidName("switchd.tuples_in") || ValidName("tuples") {
		t.Fatal("ValidName convention check wrong")
	}
}

func TestRegistryKindCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.b")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a gauge over a counter must panic")
		}
	}()
	r.Gauge("a.b")
}

func TestRegistryTotalAndMax(t *testing.T) {
	r := NewRegistry()
	r.Counter("hostd.replays_sent", L("host", "0")).Add(3)
	r.Counter("hostd.replays_sent", L("host", "1")).Add(7)
	r.Counter("hostd.replays_sent_total_other").Add(100) // different base name
	if got := r.Total("hostd.replays_sent"); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := r.Max("hostd.replays_sent"); got != 7 {
		t.Fatalf("Max = %d, want 7", got)
	}
	r.Gauge("hostd.degraded_ns", L("host", "2")).Set(50)
	if got := r.Max("hostd.degraded_ns"); got != 50 {
		t.Fatalf("gauge Max = %d, want 50", got)
	}
}

// TestRegistryConcurrent hammers instrument creation and updates from many
// goroutines; run under -race to verify the lock discipline.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("stress.hits").Inc()
				r.Gauge("stress.level").Set(int64(i))
				r.Histogram("stress.lat_ns").Record(int64(i))
				_ = r.Total("stress.hits")
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("stress.hits").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("stress.lat_ns").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.hits")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterIncDisabled measures the telemetry-off hot path: nil
// instruments from a nil registry.
func BenchmarkCounterIncDisabled(b *testing.B) {
	var r *Registry
	c := r.Counter("bench.hits")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramRecord(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench.lat_ns")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkTracerEmitMaskedOff(b *testing.B) {
	tr := NewTracer(func() sim.Time { return 0 }, 16, CompSwitchd)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(CompHostd, "masked", 1, 2, 3)
	}
}
