package telemetry

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/stats"
)

// Report renders the registry as a human table (built on internal/stats,
// like the experiment outputs): one row per counter and gauge, plus
// count/mean/p50/p99/max rows per histogram.
func Report(r *Registry) *stats.Table {
	t := &stats.Table{
		Title:  "Telemetry",
		Note:   "counters and gauges are instantaneous; histogram quantiles are bucket upper bounds",
		Header: []string{"metric", "kind", "value"},
	}
	if r == nil {
		return t
	}
	for _, kv := range sortedInt64(r.CounterValues()) {
		t.AddRow(kv.k, "counter", kv.v)
	}
	for _, kv := range sortedInt64(r.GaugeValues()) {
		t.AddRow(kv.k, "gauge", kv.v)
	}
	hists := r.histSnapshots()
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	r.mu.RLock()
	hs := make(map[string]*Histogram, len(r.hists))
	for k, h := range r.hists {
		hs[k] = h
	}
	r.mu.RUnlock()
	for _, k := range keys {
		s := hists[k]
		h := hs[k]
		mean := "0"
		if s.Count > 0 {
			mean = fmt.Sprintf("%.1f", float64(s.Sum)/float64(s.Count))
		}
		t.AddRow(k, "histogram",
			fmt.Sprintf("n=%d mean=%s p50=%d p99=%d max=%d",
				s.Count, mean, h.Quantile(0.50), h.Quantile(0.99), h.Quantile(1)))
	}
	return t
}

// DurationRow formats a nanosecond counter as a duration for reports.
func DurationRow(ns int64) string { return time.Duration(ns).Round(time.Microsecond).String() }

type int64kv struct {
	k string
	v int64
}

func sortedInt64(m map[string]int64) []int64kv {
	out := make([]int64kv, 0, len(m))
	for k, v := range m {
		out = append(out, int64kv{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}
