package wire

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestUnmarshalNeverPanics feeds the codec adversarial buffers: random
// bytes, truncated valid packets, and bit-flipped valid packets. Unmarshal
// must return an error or a packet, never panic — the decoder guards every
// length before reading.
func TestUnmarshalNeverPanics(t *testing.T) {
	c := Codec{KPartBytes: 4}
	check := func(buf []byte) (recovered any) {
		defer func() { recovered = recover() }()
		_, _ = c.Unmarshal(buf)
		return nil
	}

	// Pure random buffers.
	f := func(raw []byte) bool { return check(raw) == nil }
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}

	// Truncations and bit flips of valid packets of every type.
	rng := rand.New(rand.NewSource(3))
	valids := [][]byte{}
	for _, p := range []*Packet{
		{Type: TypeData, Slots: make([]Slot, 8), Bitmap: 0xff},
		{Type: TypeLongKey, Long: []LongKV{{Key: "some-longish-key", Val: 1}}},
		{Type: TypeAck, AckFor: TypeData},
		{Type: TypeFin},
		{Type: TypeSwap},
		{Type: TypeFetch, FetchCopy: 1, FetchClear: true},
		{Type: TypeFetchReply, FetchEntries: []FetchEntry{{AA: 1, Row: 2, KPart: 3, Val: 4}}},
	} {
		buf, err := c.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		valids = append(valids, buf)
	}
	for _, buf := range valids {
		for cut := 0; cut <= len(buf); cut++ {
			if r := check(buf[:cut]); r != nil {
				t.Fatalf("panic on truncation to %d bytes: %v", cut, r)
			}
		}
		for trial := 0; trial < 200; trial++ {
			mut := append([]byte(nil), buf...)
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			if r := check(mut); r != nil {
				t.Fatalf("panic on bit-flipped packet: %v", r)
			}
		}
	}
}

// FuzzDecode feeds the checksum-verifying decoder arbitrary buffers —
// including, via the seed corpus, one flipped-byte variant of a valid
// encoding of every packet type. Decode must return a typed error or a
// packet, never panic; and any input that is a damaged variant of a valid
// encoding (trailer no longer matches) must be rejected with ErrChecksum.
func FuzzDecode(f *testing.F) {
	c := Codec{KPartBytes: 4}
	for _, p := range samplePackets() {
		buf, err := c.Encode(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf) // intact encoding
		mut := append([]byte(nil), buf...)
		mut[EthIPBytes+uint8(p.Type)%ASKHeaderBytes] ^= 0x20 // one flipped byte per Type
		f.Add(mut)
		f.Add(buf[:len(buf)-1]) // truncated trailer
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Decode panicked on %d bytes: %v", len(raw), r)
			}
		}()
		p, err := c.Decode(raw)
		if err != nil {
			// All rejections must be typed: truncation, checksum, or a
			// structural Unmarshal error (only reachable when the damage
			// happens to preserve the CRC, i.e. effectively never for
			// <=3-bit flips).
			return
		}
		// Accepted input: it must re-encode to a buffer whose checksum
		// verifies (self-consistency), unless the packet is unencodable as
		// presented (e.g. >MTU slot counts are still structurally valid).
		if p == nil {
			t.Fatal("nil packet with nil error")
		}
	})
}

// TestFuzzDecodeSeedsRejectFlips pins the satellite requirement directly:
// for every packet type, a single flipped byte in the ASK-owned region is
// rejected with the typed ErrChecksum, never a panic.
func TestFuzzDecodeSeedsRejectFlips(t *testing.T) {
	c := Codec{KPartBytes: 4}
	rng := rand.New(rand.NewSource(17))
	for _, p := range samplePackets() {
		buf, err := c.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 64; trial++ {
			mut := append([]byte(nil), buf...)
			i := EthIPBytes + rng.Intn(len(mut)-EthIPBytes)
			mut[i] ^= byte(1 << rng.Intn(8))
			if _, err := c.Decode(mut); !errors.Is(err, ErrChecksum) {
				t.Fatalf("%s: flipped byte %d: err = %v, want ErrChecksum", p.Type, i, err)
			}
		}
	}
}

// TestMarshalUnmarshalFuzzRoundtrip: any packet the codec accepts for
// marshalling must survive a roundtrip bit-exactly.
func TestMarshalUnmarshalFuzzRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := Codec{KPartBytes: 4}
	for trial := 0; trial < 500; trial++ {
		p := randomDataPacket(rng, 1+rng.Intn(64), 4)
		buf, err := c.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		q, err := c.Unmarshal(buf)
		if err != nil {
			t.Fatal(err)
		}
		buf2, err := c.Marshal(q)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(buf2) {
			t.Fatal("re-marshal differs")
		}
	}
}
