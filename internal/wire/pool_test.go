package wire

import (
	"math/rand"
	"reflect"
	"testing"
)

// randPacket builds a data packet with n slots filled from rng.
func randPacket(rng *rand.Rand, n int) *Packet {
	p := &Packet{
		Type:   TypeData,
		Task:   3,
		Seq:    rng.Uint32(),
		Bitmap: Bitmap(rng.Uint64()),
		Slots:  make([]Slot, n),
	}
	for i := range p.Slots {
		p.Slots[i] = Slot{KPart: rng.Uint64() | 1<<63, Val: int64(rng.Int31())}
	}
	return p
}

func TestNewPacketIsZeroed(t *testing.T) {
	SetPoolPoison(true)
	defer SetPoolPoison(false)
	// Dirty a packet, release it, and draw again until the pool hands the
	// poisoned storage back: the new packet must be fully zeroed.
	for i := 0; i < 100; i++ {
		p := NewPacket()
		if p.Type != 0 || p.Seq != 0 || p.Bitmap != 0 || p.Slots != nil ||
			p.Long != nil || p.FetchEntries != nil || p.Ctrl != nil {
			t.Fatalf("NewPacket returned dirty packet: %+v", p)
		}
		p.Type = PoisonType - 1
		p.Seq = 12345
		p.Slots = []Slot{{KPart: 7, Val: 7}}
		p.pooledSlots = true
		p.Release()
	}
}

func TestClonePooledDeepCopies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		p := randPacket(rng, 1+rng.Intn(32))
		p.Long = []LongKV{{Key: "averylongkey", Val: 42}}
		p.FetchEntries = []FetchEntry{{AA: 1, Row: 2, KPart: 3, Val: 4}}
		q := p.ClonePooled()
		if !reflect.DeepEqual(p.Slots, q.Slots) || p.Bitmap != q.Bitmap || p.Seq != q.Seq {
			t.Fatalf("clone differs from original")
		}
		if !reflect.DeepEqual(p.Long, q.Long) || !reflect.DeepEqual(p.FetchEntries, q.FetchEntries) {
			t.Fatalf("clone cold fields differ from original")
		}
		// Mutating the clone must not touch the original (no aliasing).
		q.Slots[0].KPart ^= 0xFF
		q.Long[0].Val++
		q.FetchEntries[0].Val++
		if p.Slots[0].KPart == q.Slots[0].KPart || p.Long[0].Val == q.Long[0].Val ||
			p.FetchEntries[0].Val == q.FetchEntries[0].Val {
			t.Fatalf("clone aliases original storage")
		}
		q.Release()
	}
}

// TestReleaseReuseNeverAliasesLive is the property test for the free list:
// across randomized acquire/clone/release churn, a released-then-reused
// packet must never share its Slots backing array with any packet still
// live. Poison mode doubles the check — live packets must never read
// sentinel values.
func TestReleaseReuseNeverAliasesLive(t *testing.T) {
	SetPoolPoison(true)
	defer SetPoolPoison(false)
	rng := rand.New(rand.NewSource(42))

	type held struct {
		pkt  *Packet
		want []Slot // snapshot at acquire time; pkt is never mutated while held
	}
	var live []held

	check := func() {
		seen := make(map[*Slot]int) // &Slots[0] → index in live
		for i, h := range live {
			if len(h.pkt.Slots) == 0 {
				continue
			}
			first := &h.pkt.Slots[0]
			if j, dup := seen[first]; dup {
				t.Fatalf("live packets %d and %d share a Slots array", i, j)
			}
			seen[first] = i
			if !reflect.DeepEqual(h.pkt.Slots, h.want) {
				t.Fatalf("live packet mutated after a release elsewhere:\n got %+v\nwant %+v",
					h.pkt.Slots, h.want)
			}
			if h.pkt.Type == PoisonType || h.pkt.Slots[0].KPart == PoisonKPart {
				t.Fatalf("live packet reads poison: %+v", h.pkt)
			}
		}
	}

	for round := 0; round < 5000; round++ {
		switch op := rng.Intn(10); {
		case op < 4: // acquire a fresh pooled clone of a random packet
			src := randPacket(rng, 1+rng.Intn(24))
			q := src.ClonePooled()
			live = append(live, held{pkt: q, want: append([]Slot(nil), q.Slots...)})
		case op < 6: // clone an existing live packet (switch multicast path)
			if len(live) > 0 {
				h := live[rng.Intn(len(live))]
				q := h.pkt.ClonePooled()
				live = append(live, held{pkt: q, want: append([]Slot(nil), q.Slots...)})
			}
		case op < 9: // release a random live packet
			if len(live) > 0 {
				i := rng.Intn(len(live))
				live[i].pkt.Release()
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		default: // slot-less control packet round trip (ACK path)
			a := NewPacket()
			a.Type = TypeAck
			a.Release()
		}
		check()
	}
	for _, h := range live {
		h.pkt.Release()
	}
}

func TestReleasePoisonStampsStorage(t *testing.T) {
	SetPoolPoison(true)
	defer SetPoolPoison(false)
	p := NewPacket()
	p.Slots = make([]Slot, 8)
	p.pooledSlots = true
	for i := range p.Slots {
		p.Slots[i] = Slot{KPart: uint64(i) << 40, Val: int64(i)}
	}
	stale := p.Slots // simulated use-after-release reference
	p.Release()
	for i, s := range stale {
		if s.KPart != PoisonKPart || s.Val != PoisonVal {
			t.Fatalf("slot %d not poisoned after release: %+v", i, s)
		}
	}
}

func TestReleaseLeavesCallerSlotsAlone(t *testing.T) {
	SetPoolPoison(true)
	defer SetPoolPoison(false)
	// A packet whose Slots array the caller installed (pooledSlots=false)
	// must not have that array poisoned or recycled: the caller (window
	// retransmission buffer, test fixture) still owns it.
	mine := []Slot{{KPart: 1 << 50, Val: 9}}
	p := NewPacket()
	p.Slots = mine
	p.Release()
	if mine[0].KPart != 1<<50 || mine[0].Val != 9 {
		t.Fatalf("Release poisoned caller-owned slots: %+v", mine[0])
	}
}

func TestReleaseNilNoop(t *testing.T) {
	var p *Packet
	p.Release() // must not panic
}

func TestClonePooledPreservesScratchCapacity(t *testing.T) {
	// Releasing a pooled clone should retain its slot capacity for the next
	// clone drawn from the same pool entry (steady-state zero-alloc claim).
	rng := rand.New(rand.NewSource(7))
	src := randPacket(rng, 16)
	q := src.ClonePooled()
	first := &q.Slots[0]
	q.Release()
	// Drain singles until the pool hands the same struct back (sync.Pool
	// gives no ordering guarantee; bounded attempts keep the test honest
	// without flaking).
	for i := 0; i < 64; i++ {
		r := src.ClonePooled()
		if &r.Slots[0] == first {
			return // storage was recycled — the fast path works
		}
		defer r.Release()
	}
	t.Skip("pool never returned the recycled storage (valid but unobservable here)")
}
