package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// End-to-end integrity (§3.3 failure model).
//
// The reliability protocol assumes packets are delivered intact or lost.
// Real networks also deliver *damaged* packets: NIC/switch memory errors and
// on-the-wire bit flips that slip past (or happen after) the Ethernet FCS.
// The 4-byte CRC budgeted in L1Overhead models that link-layer FCS, but it is
// hop-by-hop and recomputed by every forwarding element — it cannot protect
// the ASK header and payload end to end, and a corrupted in-switch rewrite
// would be re-covered by a freshly computed FCS on egress.
//
// Encode therefore appends an end-to-end CRC32C (Castagnoli) trailer computed
// over the ASK header + payload — the bytes ASK itself owns — and Decode
// verifies it before any field is interpreted. The opaque Ethernet+IP padding
// (EthIPBytes) is excluded: those bytes are rewritten per hop in a real
// deployment, and corruption there is the L1/L3 checksums' problem, not ours.
// CRC32C has Hamming distance >= 4 at these packet sizes, so any burst of up
// to 3 flipped bits is always detected; receivers treat a mismatch exactly
// like a loss and rely on §3.3 retransmission for recovery.

// ChecksumBytes is the size of the end-to-end CRC32C trailer Encode appends
// after the packet buffer. It is accounted as the 4-byte CRC already included
// in L1Overhead, so WireBytes/PerPacketOverhead are unchanged.
const ChecksumBytes = 4

// ErrChecksum is returned (wrapped) by Decode when the CRC32C trailer does
// not match the packet contents. Receivers must treat it as a packet loss.
var ErrChecksum = errors.New("wire: checksum mismatch")

// ErrTruncated is returned (wrapped) by Decode when the buffer is too short
// to contain a header and checksum trailer.
var ErrTruncated = errors.New("wire: truncated packet")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Checksum computes the end-to-end CRC32C over an encoded packet buffer
// (headers + payload, no trailer). Only the ASK-owned bytes — everything
// after the opaque Ethernet+IP padding — are covered.
func Checksum(buf []byte) uint32 {
	if len(buf) < EthIPBytes {
		return crc32.Checksum(buf, castagnoli)
	}
	return crc32.Checksum(buf[EthIPBytes:], castagnoli)
}

// Encode marshals p and appends the CRC32C trailer: the result is
// p.BufferBytes(KPartBytes) + ChecksumBytes bytes in a single allocation.
// This is the byte-for-byte representation a corrupting network delivers to
// receivers.
func (c Codec) Encode(p *Packet) ([]byte, error) {
	return c.AppendEncode(make([]byte, 0, p.BufferBytes(c.KPartBytes)+ChecksumBytes), p)
}

// AppendEncode appends the encoding of p plus its CRC32C trailer to dst and
// returns the extended slice. The per-link corruption path reuses a scratch
// buffer through this, so damaging a frame allocates nothing in steady
// state.
func (c Codec) AppendEncode(dst []byte, p *Packet) ([]byte, error) {
	start := len(dst)
	buf, err := c.AppendMarshal(dst, p)
	if err != nil {
		return nil, err
	}
	sum := Checksum(buf[start:])
	var trailer [ChecksumBytes]byte
	binary.BigEndian.PutUint32(trailer[:], sum)
	return append(buf, trailer[:]...), nil
}

// Decode verifies the CRC32C trailer of an Encode-produced buffer and
// unmarshals the packet. A trailer mismatch returns an error satisfying
// errors.Is(err, ErrChecksum); a buffer too short to carry a header plus
// trailer returns one satisfying errors.Is(err, ErrTruncated). Decode never
// panics on arbitrary input.
//
// When SkipVerify is set (test hook, Config.DisableChecksumVerify), the
// trailer is ignored and the damaged bytes flow straight into Unmarshal —
// this models a deployment that shipped without integrity checking and is
// what the chaos soak harness uses to prove it can catch such a build.
func (c Codec) Decode(buf []byte) (*Packet, error) {
	if len(buf) < HeaderBytes+ChecksumBytes {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrTruncated, len(buf), HeaderBytes+ChecksumBytes)
	}
	body := buf[:len(buf)-ChecksumBytes]
	if !c.SkipVerify {
		want := binary.BigEndian.Uint32(buf[len(buf)-ChecksumBytes:])
		if got := Checksum(body); got != want {
			return nil, fmt.Errorf("%w: stored %08x computed %08x", ErrChecksum, want, got)
		}
	}
	return c.Unmarshal(body)
}
