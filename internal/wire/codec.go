package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// Codec marshals packets to and from the byte layout documented in wire.go.
// The simulation's fast path passes *Packet values directly, but the codec is
// the authoritative definition of the format: tests round-trip packets
// through it and assert that the encoded length matches BufferBytes, which
// keeps the analytical size accounting honest. TypeCtrl payloads are opaque
// simulation objects and cannot be marshalled.
//
// Construct codecs with NewCodec: KPartBytes validation happens once there
// instead of on every Marshal call (the corruption fault path encodes every
// damaged frame, so per-call validation was measurable). A zero or
// out-of-range width is a configuration bug, not a runtime condition.
type Codec struct {
	// KPartBytes is the per-slot key-part width (Config.KPartBytes).
	KPartBytes int
	// SkipVerify disables CRC32C verification in Decode. It exists solely as
	// a fault-injection hook (Config.DisableChecksumVerify) so the chaos soak
	// harness can prove it detects an integrity-broken build; production
	// paths never set it.
	SkipVerify bool
}

// NewCodec returns a Codec for the given key-part width, validating it once
// at construction. Widths outside 1..8 are a programming error and panic.
func NewCodec(kPartBytes int) Codec {
	if kPartBytes <= 0 || kPartBytes > 8 {
		panic(fmt.Sprintf("wire: invalid KPartBytes %d", kPartBytes))
	}
	return Codec{KPartBytes: kPartBytes}
}

// WithSkipVerify returns a copy of the codec with the Decode verification
// hook set (see SkipVerify).
func (c Codec) WithSkipVerify(skip bool) Codec {
	c.SkipVerify = skip
	return c
}

// grow extends dst by n zeroed bytes and returns the extended slice plus the
// grown region. The zeroing matters when dst's capacity is being reused:
// several layouts leave reserved bytes untouched and rely on them reading 0.
func grow(dst []byte, n int) (all, region []byte) {
	if total := len(dst) + n; cap(dst) >= total {
		all = dst[:total]
	} else {
		all = append(dst, make([]byte, n)...)
	}
	region = all[len(dst):]
	for i := range region {
		region[i] = 0
	}
	return all, region
}

// Marshal encodes p into a fresh buffer of exactly p.BufferBytes(KPartBytes)
// bytes (headers + payload, no L1 framing). It is AppendMarshal with a
// capacity-exact fresh buffer.
func (c Codec) Marshal(p *Packet) ([]byte, error) {
	return c.AppendMarshal(make([]byte, 0, p.BufferBytes(c.KPartBytes)), p)
}

// AppendMarshal appends the encoding of p to dst and returns the extended
// slice. Hot callers (the per-link corruption scratch buffer, Encode) reuse
// dst's capacity across packets, so steady-state marshalling allocates
// nothing. The appended region is exactly p.BufferBytes(KPartBytes) bytes.
func (c Codec) AppendMarshal(dst []byte, p *Packet) ([]byte, error) {
	if p.Type == TypeCtrl {
		return nil, fmt.Errorf("wire: TypeCtrl payloads are not marshallable")
	}
	k := c.KPartBytes
	out, buf := grow(dst, p.BufferBytes(k))
	// Ethernet+IP headers are opaque padding in this model.
	h := buf[EthIPBytes:]
	h[0] = byte(p.Type)
	h[1] = byte(p.Flow.Channel)
	binary.BigEndian.PutUint16(h[2:], uint16(p.Flow.Host))
	binary.BigEndian.PutUint32(h[4:], uint32(p.Task))
	binary.BigEndian.PutUint32(h[8:], p.Seq)
	binary.BigEndian.PutUint64(h[12:], uint64(p.Bitmap))
	if p.Type != TypeData && p.Type != TypeReplay {
		// Only data-bearing packets use the bitmap field; everything else
		// repurposes it: offset 12 carries the acknowledged packet type
		// (TypeAck), offsets 13-16 the switch epoch.
		h[12] = 0
		if p.Type == TypeAck {
			h[12] = byte(p.AckFor)
		}
		binary.BigEndian.PutUint32(h[13:], p.Epoch)
		h[17], h[18], h[19] = 0, 0, 0
		if p.Type == TypeFin {
			// The FIN generation (the sender's epoch when the FIN was cut)
			// rides the spare bytes so FIN stays header-only.
			binary.BigEndian.PutUint16(h[17:], uint16(p.OrigSeq))
		}
	}
	body := buf[HeaderBytes:]
	switch p.Type {
	case TypeData, TypeReplay:
		off := 0
		if p.Type == TypeReplay {
			binary.BigEndian.PutUint32(body[0:], p.OrigSeq)
			off = 4
		}
		// Width-specialized slot loops: the generic putUintN byte loop costs
		// ~2N data-dependent iterations per slot; the common widths compile
		// to single bounds-checked stores.
		switch k {
		case 4:
			for _, s := range p.Slots {
				binary.BigEndian.PutUint32(body[off:], uint32(s.KPart>>32))
				binary.BigEndian.PutUint32(body[off+4:], uint32(s.Val))
				off += 8
			}
		case 8:
			for _, s := range p.Slots {
				binary.BigEndian.PutUint64(body[off:], s.KPart)
				binary.BigEndian.PutUint64(body[off+8:], uint64(s.Val))
				off += 16
			}
		case 2:
			for _, s := range p.Slots {
				binary.BigEndian.PutUint16(body[off:], uint16(s.KPart>>48))
				binary.BigEndian.PutUint16(body[off+2:], uint16(s.Val))
				off += 4
			}
		default:
			for _, s := range p.Slots {
				putUintN(body[off:], s.KPart>>uint(8*(8-k)), k)
				off += k
				putUintN(body[off:], uint64(s.Val)&mask(k), k)
				off += k
			}
		}
	case TypeLongKey:
		off := 0
		for _, kv := range p.Long {
			if len(kv.Key) > 0xffff {
				return nil, fmt.Errorf("wire: long key of %d bytes exceeds length field", len(kv.Key))
			}
			binary.BigEndian.PutUint16(body[off:], uint16(len(kv.Key)))
			off += 2
			copy(body[off:], kv.Key)
			off += len(kv.Key)
			binary.BigEndian.PutUint64(body[off:], uint64(kv.Val))
			off += 8
		}
	case TypeFetch:
		binary.BigEndian.PutUint32(body[0:], uint32(p.FetchCopy))
		if p.FetchClear {
			body[4] = 1
		}
	case TypeFetchReply:
		binary.BigEndian.PutUint16(body[0:], p.FetchChunk)
		binary.BigEndian.PutUint16(body[2:], p.FetchChunks)
		off := 4
		for _, e := range p.FetchEntries {
			body[off] = byte(e.AA)
			binary.BigEndian.PutUint32(body[off+1:], uint32(e.Row))
			binary.BigEndian.PutUint64(body[off+5:], e.KPart)
			binary.BigEndian.PutUint64(body[off+13:], uint64(e.Val))
			off += fetchEntryWireBytes
		}
	}
	return out, nil
}

// Unmarshal decodes a buffer produced by Marshal. Payload containers are
// preallocated capacity-exact (the entry counts are implied by the buffer
// length), so decoding performs at most one allocation per container.
func (c Codec) Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < HeaderBytes {
		return nil, fmt.Errorf("wire: buffer of %d bytes shorter than header", len(buf))
	}
	h := buf[EthIPBytes:]
	p := &Packet{
		Type:   Type(h[0]),
		Flow:   core.FlowKey{Host: core.HostID(binary.BigEndian.Uint16(h[2:])), Channel: core.ChannelID(h[1])},
		Task:   core.TaskID(binary.BigEndian.Uint32(h[4:])),
		Seq:    binary.BigEndian.Uint32(h[8:]),
		Bitmap: Bitmap(binary.BigEndian.Uint64(h[12:])),
	}
	if p.Type != TypeData && p.Type != TypeReplay {
		if p.Type == TypeAck {
			p.AckFor = Type(h[12])
		}
		p.Epoch = binary.BigEndian.Uint32(h[13:])
		p.Bitmap = 0
		if p.Type == TypeFin {
			p.OrigSeq = uint32(binary.BigEndian.Uint16(h[17:]))
		}
	}
	body := buf[HeaderBytes:]
	switch p.Type {
	case TypeData, TypeReplay:
		off := 0
		if p.Type == TypeReplay {
			if len(body) < 4 {
				return nil, fmt.Errorf("wire: truncated replay payload")
			}
			p.OrigSeq = binary.BigEndian.Uint32(body[0:])
			off = 4
		}
		k := c.KPartBytes
		slotBytes := 2 * k
		if (len(body)-off)%slotBytes != 0 {
			return nil, fmt.Errorf("wire: data payload of %d bytes not a multiple of slot size %d", len(body)-off, slotBytes)
		}
		n := (len(body) - off) / slotBytes
		p.Slots = make([]Slot, n)
		switch k {
		case 4:
			for i := 0; i < n; i++ {
				p.Slots[i].KPart = uint64(binary.BigEndian.Uint32(body[off:])) << 32
				p.Slots[i].Val = int64(int32(binary.BigEndian.Uint32(body[off+4:])))
				off += 8
			}
		case 8:
			for i := 0; i < n; i++ {
				p.Slots[i].KPart = binary.BigEndian.Uint64(body[off:])
				p.Slots[i].Val = int64(binary.BigEndian.Uint64(body[off+8:]))
				off += 16
			}
		case 2:
			for i := 0; i < n; i++ {
				p.Slots[i].KPart = uint64(binary.BigEndian.Uint16(body[off:])) << 48
				p.Slots[i].Val = int64(int16(binary.BigEndian.Uint16(body[off+2:])))
				off += 4
			}
		default:
			for i := 0; i < n; i++ {
				p.Slots[i].KPart = getUintN(body[off:], k) << uint(8*(8-k))
				off += k
				p.Slots[i].Val = signExtend(getUintN(body[off:], k), k)
				off += k
			}
		}
	case TypeLongKey:
		// Counting pre-pass so the container is allocated capacity-exact;
		// the per-tuple work below is dominated by the key string copy.
		count := 0
		for off := 0; off < len(body); {
			if off+2 > len(body) {
				return nil, fmt.Errorf("wire: truncated long-key length at %d", off)
			}
			kl := int(binary.BigEndian.Uint16(body[off:]))
			off += 2
			if off+kl+8 > len(body) {
				return nil, fmt.Errorf("wire: truncated long-key tuple at %d", off)
			}
			off += kl + 8
			count++
		}
		if count > 0 {
			p.Long = make([]LongKV, 0, count)
		}
		for off := 0; off < len(body); {
			kl := int(binary.BigEndian.Uint16(body[off:]))
			off += 2
			key := string(body[off : off+kl])
			off += kl
			val := int64(binary.BigEndian.Uint64(body[off:]))
			off += 8
			p.Long = append(p.Long, LongKV{Key: key, Val: val})
		}
	case TypeFetch:
		if len(body) < 12 {
			return nil, fmt.Errorf("wire: truncated fetch payload")
		}
		p.FetchCopy = int(binary.BigEndian.Uint32(body[0:]))
		p.FetchClear = body[4] == 1
	case TypeFetchReply:
		if len(body) < 4 || (len(body)-4)%fetchEntryWireBytes != 0 {
			return nil, fmt.Errorf("wire: fetch-reply payload of %d bytes malformed", len(body))
		}
		p.FetchChunk = binary.BigEndian.Uint16(body[0:])
		p.FetchChunks = binary.BigEndian.Uint16(body[2:])
		if n := (len(body) - 4) / fetchEntryWireBytes; n > 0 {
			p.FetchEntries = make([]FetchEntry, 0, n)
		}
		for off := 4; off < len(body); off += fetchEntryWireBytes {
			p.FetchEntries = append(p.FetchEntries, FetchEntry{
				AA:    int(body[off]),
				Row:   int(binary.BigEndian.Uint32(body[off+1:])),
				KPart: binary.BigEndian.Uint64(body[off+5:]),
				Val:   int64(binary.BigEndian.Uint64(body[off+13:])),
			})
		}
	case TypeAck, TypeFin, TypeSwap, TypeProbe, TypeProbeReply:
		// Header-only.
	default:
		return nil, fmt.Errorf("wire: unknown packet type %d", h[0])
	}
	return p, nil
}

func mask(n int) uint64 {
	if n >= 8 {
		return ^uint64(0)
	}
	return (1 << uint(8*n)) - 1
}

// signExtend interprets the low n bytes of v as a signed two's-complement
// integer.
func signExtend(v uint64, n int) int64 {
	shift := uint(64 - 8*n)
	return int64(v<<shift) >> shift
}

func putUintN(b []byte, v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

func getUintN(b []byte, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
