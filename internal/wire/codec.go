package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
)

// Codec marshals packets to and from the byte layout documented in wire.go.
// The simulation's fast path passes *Packet values directly, but the codec is
// the authoritative definition of the format: tests round-trip packets
// through it and assert that the encoded length matches BufferBytes, which
// keeps the analytical size accounting honest. TypeCtrl payloads are opaque
// simulation objects and cannot be marshalled.
type Codec struct {
	// KPartBytes is the per-slot key-part width (Config.KPartBytes).
	KPartBytes int
	// SkipVerify disables CRC32C verification in Decode. It exists solely as
	// a fault-injection hook (Config.DisableChecksumVerify) so the chaos soak
	// harness can prove it detects an integrity-broken build; production
	// paths never set it.
	SkipVerify bool
}

// Marshal encodes p into a fresh buffer of exactly p.BufferBytes(KPartBytes)
// bytes (headers + payload, no L1 framing).
func (c Codec) Marshal(p *Packet) ([]byte, error) {
	if c.KPartBytes <= 0 || c.KPartBytes > 8 {
		return nil, fmt.Errorf("wire: invalid KPartBytes %d", c.KPartBytes)
	}
	if p.Type == TypeCtrl {
		return nil, fmt.Errorf("wire: TypeCtrl payloads are not marshallable")
	}
	buf := make([]byte, p.BufferBytes(c.KPartBytes))
	// Ethernet+IP headers are opaque padding in this model.
	h := buf[EthIPBytes:]
	h[0] = byte(p.Type)
	h[1] = byte(p.Flow.Channel)
	binary.BigEndian.PutUint16(h[2:], uint16(p.Flow.Host))
	binary.BigEndian.PutUint32(h[4:], uint32(p.Task))
	binary.BigEndian.PutUint32(h[8:], p.Seq)
	binary.BigEndian.PutUint64(h[12:], uint64(p.Bitmap))
	if p.Type != TypeData && p.Type != TypeReplay {
		// Only data-bearing packets use the bitmap field; everything else
		// repurposes it: offset 12 carries the acknowledged packet type
		// (TypeAck), offsets 13-16 the switch epoch.
		h[12] = 0
		if p.Type == TypeAck {
			h[12] = byte(p.AckFor)
		}
		binary.BigEndian.PutUint32(h[13:], p.Epoch)
		h[17], h[18], h[19] = 0, 0, 0
		if p.Type == TypeFin {
			// The FIN generation (the sender's epoch when the FIN was cut)
			// rides the spare bytes so FIN stays header-only.
			binary.BigEndian.PutUint16(h[17:], uint16(p.OrigSeq))
		}
	}
	body := buf[HeaderBytes:]
	switch p.Type {
	case TypeData, TypeReplay:
		off := 0
		if p.Type == TypeReplay {
			binary.BigEndian.PutUint32(body[0:], p.OrigSeq)
			off = 4
		}
		for _, s := range p.Slots {
			putUintN(body[off:], s.KPart>>uint(8*(8-c.KPartBytes)), c.KPartBytes)
			off += c.KPartBytes
			putUintN(body[off:], uint64(s.Val)&mask(c.KPartBytes), c.KPartBytes)
			off += c.KPartBytes
		}
	case TypeLongKey:
		off := 0
		for _, kv := range p.Long {
			if len(kv.Key) > 0xffff {
				return nil, fmt.Errorf("wire: long key of %d bytes exceeds length field", len(kv.Key))
			}
			binary.BigEndian.PutUint16(body[off:], uint16(len(kv.Key)))
			off += 2
			copy(body[off:], kv.Key)
			off += len(kv.Key)
			binary.BigEndian.PutUint64(body[off:], uint64(kv.Val))
			off += 8
		}
	case TypeFetch:
		binary.BigEndian.PutUint32(body[0:], uint32(p.FetchCopy))
		if p.FetchClear {
			body[4] = 1
		}
	case TypeFetchReply:
		binary.BigEndian.PutUint16(body[0:], p.FetchChunk)
		binary.BigEndian.PutUint16(body[2:], p.FetchChunks)
		off := 4
		for _, e := range p.FetchEntries {
			body[off] = byte(e.AA)
			binary.BigEndian.PutUint32(body[off+1:], uint32(e.Row))
			binary.BigEndian.PutUint64(body[off+5:], e.KPart)
			binary.BigEndian.PutUint64(body[off+13:], uint64(e.Val))
			off += fetchEntryWireBytes
		}
	}
	return buf, nil
}

// Unmarshal decodes a buffer produced by Marshal.
func (c Codec) Unmarshal(buf []byte) (*Packet, error) {
	if len(buf) < HeaderBytes {
		return nil, fmt.Errorf("wire: buffer of %d bytes shorter than header", len(buf))
	}
	h := buf[EthIPBytes:]
	p := &Packet{
		Type:   Type(h[0]),
		Flow:   core.FlowKey{Host: core.HostID(binary.BigEndian.Uint16(h[2:])), Channel: core.ChannelID(h[1])},
		Task:   core.TaskID(binary.BigEndian.Uint32(h[4:])),
		Seq:    binary.BigEndian.Uint32(h[8:]),
		Bitmap: Bitmap(binary.BigEndian.Uint64(h[12:])),
	}
	if p.Type != TypeData && p.Type != TypeReplay {
		if p.Type == TypeAck {
			p.AckFor = Type(h[12])
		}
		p.Epoch = binary.BigEndian.Uint32(h[13:])
		p.Bitmap = 0
		if p.Type == TypeFin {
			p.OrigSeq = uint32(binary.BigEndian.Uint16(h[17:]))
		}
	}
	body := buf[HeaderBytes:]
	switch p.Type {
	case TypeData, TypeReplay:
		off := 0
		if p.Type == TypeReplay {
			if len(body) < 4 {
				return nil, fmt.Errorf("wire: truncated replay payload")
			}
			p.OrigSeq = binary.BigEndian.Uint32(body[0:])
			off = 4
		}
		slotBytes := 2 * c.KPartBytes
		if (len(body)-off)%slotBytes != 0 {
			return nil, fmt.Errorf("wire: data payload of %d bytes not a multiple of slot size %d", len(body)-off, slotBytes)
		}
		n := (len(body) - off) / slotBytes
		p.Slots = make([]Slot, n)
		for i := 0; i < n; i++ {
			p.Slots[i].KPart = getUintN(body[off:], c.KPartBytes) << uint(8*(8-c.KPartBytes))
			off += c.KPartBytes
			p.Slots[i].Val = signExtend(getUintN(body[off:], c.KPartBytes), c.KPartBytes)
			off += c.KPartBytes
		}
	case TypeLongKey:
		off := 0
		for off < len(body) {
			if off+2 > len(body) {
				return nil, fmt.Errorf("wire: truncated long-key length at %d", off)
			}
			kl := int(binary.BigEndian.Uint16(body[off:]))
			off += 2
			if off+kl+8 > len(body) {
				return nil, fmt.Errorf("wire: truncated long-key tuple at %d", off)
			}
			key := string(body[off : off+kl])
			off += kl
			val := int64(binary.BigEndian.Uint64(body[off:]))
			off += 8
			p.Long = append(p.Long, LongKV{Key: key, Val: val})
		}
	case TypeFetch:
		if len(body) < 12 {
			return nil, fmt.Errorf("wire: truncated fetch payload")
		}
		p.FetchCopy = int(binary.BigEndian.Uint32(body[0:]))
		p.FetchClear = body[4] == 1
	case TypeFetchReply:
		if len(body) < 4 || (len(body)-4)%fetchEntryWireBytes != 0 {
			return nil, fmt.Errorf("wire: fetch-reply payload of %d bytes malformed", len(body))
		}
		p.FetchChunk = binary.BigEndian.Uint16(body[0:])
		p.FetchChunks = binary.BigEndian.Uint16(body[2:])
		for off := 4; off < len(body); off += fetchEntryWireBytes {
			p.FetchEntries = append(p.FetchEntries, FetchEntry{
				AA:    int(body[off]),
				Row:   int(binary.BigEndian.Uint32(body[off+1:])),
				KPart: binary.BigEndian.Uint64(body[off+5:]),
				Val:   int64(binary.BigEndian.Uint64(body[off+13:])),
			})
		}
	case TypeAck, TypeFin, TypeSwap, TypeProbe, TypeProbeReply:
		// Header-only.
	default:
		return nil, fmt.Errorf("wire: unknown packet type %d", h[0])
	}
	return p, nil
}

func mask(n int) uint64 {
	if n >= 8 {
		return ^uint64(0)
	}
	return (1 << uint(8*n)) - 1
}

// signExtend interprets the low n bytes of v as a signed two's-complement
// integer.
func signExtend(v uint64, n int) int64 {
	shift := uint(64 - 8*n)
	return int64(v<<shift) >> shift
}

func putUintN(b []byte, v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

func getUintN(b []byte, n int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}
