package wire

import (
	"sync"
	"sync/atomic"
)

// Packet free list.
//
// The delivery fast path used to deep-copy every frame (Packet struct + slot
// array) and let the garbage collector reclaim it after the receiver was
// done — tens of millions of short-lived objects per simulated second. The
// free list recycles both: NewPacket/ClonePooled draw from a sync.Pool, and
// receivers call Release at the point where they provably hold the last
// reference (switchd ingress after consumption, hostd after inline handling
// or processInbound).
//
// Ownership rules (see also netsim.Frame.Owned and DESIGN.md):
//
//   - Release requires exclusive ownership: no other live reference into the
//     packet or its Slots array may exist. Window retransmission buffers and
//     failover history therefore NEVER release — their packets are cloned at
//     link delivery instead.
//   - A pooled packet's Slots array is recycled with it (pooledSlots); slot
//     arrays installed by callers (struct literals, history aliases) are left
//     to the garbage collector, so releasing a packet can never free memory
//     the releaser did not allocate through the pool.
//   - Long, FetchEntries, and Ctrl are not pooled: Release drops the
//     references and the GC reclaims them. LongKey strings handed out of a
//     released packet stay valid (strings are immutable).
//
// Determinism: pooling cannot perturb simulation results. Every object is
// field-wise reset on reuse, so model code observes identical values no
// matter which physical allocation the pool hands out; scheduling order
// never depends on pool state.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// poolPoison, when set, makes Release stamp recognizable sentinel values
// over the packet and its pooled slot array before recycling. A reader
// holding a stale reference then sees PoisonType/PoisonKPart instead of
// plausible data, turning silent use-after-release aliasing into a loud,
// testable signal. Enabled by tests via SetPoolPoison.
var poolPoison atomic.Bool

// SetPoolPoison toggles use-after-release poisoning for the process-wide
// packet free list (debug/test mode; see poolPoison).
func SetPoolPoison(on bool) { poolPoison.Store(on) }

// PoolPoisonEnabled reports whether release poisoning is active.
func PoolPoisonEnabled() bool { return poolPoison.Load() }

// Sentinel values stamped by Release under SetPoolPoison(true).
const (
	PoisonType  Type   = 0xEE
	PoisonSeq   uint32 = 0xDEADDEAD
	PoisonKPart uint64 = 0xDEADBEEFDEADBEEF
	PoisonVal   int64  = -0x6EADBEEF
)

// NewPacket returns a zeroed Packet from the free list. The caller owns it
// exclusively and should hand it back with Release when done (directly, or
// transitively through an owned netsim.Frame whose receiver releases it).
func NewPacket() *Packet {
	p := packetPool.Get().(*Packet)
	scratch := p.scratch
	*p = Packet{}
	p.scratch = scratch
	return p
}

// ClonePooled returns a deep copy of p backed by the free list: the Packet
// struct and its Slots array are recycled storage when available. The link
// layer uses it to clone frames at delivery; the copy is exclusively owned
// by its receiver, which releases it. Long/FetchEntries are deep-copied with
// plain allocations (cold paths), Ctrl is shared (opaque immutable message).
func (p *Packet) ClonePooled() *Packet {
	q := packetPool.Get().(*Packet)
	scratch := q.scratch
	*q = *p
	q.scratch = nil
	q.pooledSlots = false
	if p.Slots != nil {
		n := len(p.Slots)
		if cap(scratch) >= n {
			q.Slots = scratch[:n]
		} else {
			q.Slots = make([]Slot, n)
		}
		copy(q.Slots, p.Slots)
		q.pooledSlots = true
	}
	if p.Long != nil {
		q.Long = append([]LongKV(nil), p.Long...)
	}
	if p.FetchEntries != nil {
		q.FetchEntries = append([]FetchEntry(nil), p.FetchEntries...)
	}
	return q
}

// Release hands p (and, if pool-owned, its Slots array) back to the free
// list. The caller must hold the only live reference; releasing a packet
// that something else still points into is a use-after-release bug —
// SetPoolPoison(true) makes such bugs observable. Release of nil is a no-op.
func (p *Packet) Release() {
	if p == nil {
		return
	}
	poison := poolPoison.Load()
	if poison && p.pooledSlots && p.Slots != nil {
		// Stamp the released array itself (not just whatever gets retained
		// below): a stale reference into it must read sentinels, loudly.
		full := p.Slots[:cap(p.Slots)]
		for i := range full {
			full[i] = Slot{KPart: PoisonKPart, Val: PoisonVal}
		}
	}
	// Retain the larger of the previously stashed scratch array and this
	// packet's own pool-owned slots, so slot capacity survives round trips
	// through slot-less packets (ACKs) drawn from the same pool.
	keep := p.scratch
	if p.pooledSlots && cap(p.Slots) > cap(keep) {
		keep = p.Slots[:0]
	}
	if poison && keep != nil {
		full := keep[:cap(keep)]
		for i := range full {
			full[i] = Slot{KPart: PoisonKPart, Val: PoisonVal}
		}
	}
	*p = Packet{}
	p.scratch = keep
	if poison {
		p.Type = PoisonType
		p.Seq = PoisonSeq
		p.Bitmap = Bitmap(PoisonKPart)
	}
	packetPool.Put(p)
}
