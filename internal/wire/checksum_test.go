package wire

import (
	"errors"
	"math/rand"
	"testing"
)

// samplePackets returns one representative marshallable packet per Type.
func samplePackets() []*Packet {
	return []*Packet{
		{Type: TypeData, Seq: 7, Bitmap: Bitmap(0).Set(0).Set(2), Slots: []Slot{
			{KPart: PackKPart([]byte("ka"), 4), Val: 11}, {}, {KPart: PackKPart([]byte("kb"), 4), Val: -3},
		}},
		{Type: TypeAck, AckFor: TypeData, Seq: 7, Epoch: 2},
		{Type: TypeLongKey, Long: []LongKV{{Key: "a-long-key-beyond-kpart", Val: 9}}},
		{Type: TypeFin, OrigSeq: 1, Epoch: 1},
		{Type: TypeSwap, Seq: 3},
		{Type: TypeFetch, Seq: 4, FetchCopy: 1, FetchClear: true},
		{Type: TypeFetchReply, Seq: 4, FetchChunk: 0, FetchChunks: 1,
			FetchEntries: []FetchEntry{{AA: 1, Row: 2, KPart: 3, Val: 4}}},
		{Type: TypeProbe, Seq: 5},
		{Type: TypeProbeReply, Seq: 5, Epoch: 3},
		{Type: TypeReplay, Seq: 9, OrigSeq: 2, Bitmap: Bitmap(0).Set(1), Slots: []Slot{
			{}, {KPart: PackKPart([]byte("rk"), 4), Val: 21},
		}},
	}
}

// TestEncodeDecodeRoundtrip: Encode appends exactly ChecksumBytes and Decode
// verifies + reverses it for every packet type.
func TestEncodeDecodeRoundtrip(t *testing.T) {
	c := Codec{KPartBytes: 4}
	for _, p := range samplePackets() {
		buf, err := c.Encode(p)
		if err != nil {
			t.Fatalf("%s: Encode: %v", p.Type, err)
		}
		if want := p.BufferBytes(4) + ChecksumBytes; len(buf) != want {
			t.Fatalf("%s: encoded %d bytes, want %d", p.Type, len(buf), want)
		}
		q, err := c.Decode(buf)
		if err != nil {
			t.Fatalf("%s: Decode: %v", p.Type, err)
		}
		if q.Type != p.Type || q.Seq != p.Seq {
			t.Fatalf("%s: roundtrip mismatch: got %v", p.Type, q)
		}
	}
}

// TestDecodeDetectsEveryBitFlip: flipping any single bit of the ASK-owned
// bytes (header + payload + trailer) must yield ErrChecksum. CRC32C has
// Hamming distance >= 4 at these sizes, so single flips are always caught.
func TestDecodeDetectsEveryBitFlip(t *testing.T) {
	c := Codec{KPartBytes: 4}
	for _, p := range samplePackets() {
		buf, err := c.Encode(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := EthIPBytes; i < len(buf); i++ {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), buf...)
				mut[i] ^= 1 << bit
				if _, err := c.Decode(mut); !errors.Is(err, ErrChecksum) {
					t.Fatalf("%s: flip byte %d bit %d: err = %v, want ErrChecksum", p.Type, i, bit, err)
				}
			}
		}
	}
}

// TestDecodeIgnoresEthIPPadding: the opaque Ethernet+IP padding bytes are not
// covered by the end-to-end checksum (they are rewritten per hop; the L1 FCS
// owns them), so flips there must not fail verification.
func TestDecodeIgnoresEthIPPadding(t *testing.T) {
	c := Codec{KPartBytes: 4}
	p := samplePackets()[0]
	buf, err := c.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < EthIPBytes; i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xff
		if _, err := c.Decode(mut); err != nil {
			t.Fatalf("flip of opaque padding byte %d failed decode: %v", i, err)
		}
	}
}

// TestDecodeTruncated: buffers shorter than header+trailer return a typed
// truncation error, never a panic.
func TestDecodeTruncated(t *testing.T) {
	c := Codec{KPartBytes: 4}
	buf, err := c.Encode(samplePackets()[0])
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < HeaderBytes+ChecksumBytes; cut++ {
		if _, err := c.Decode(buf[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut to %d: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestSkipVerifyPassesDamage: with the fault-injection hook set, Decode feeds
// damaged bytes straight to Unmarshal — corruption becomes silently wrong
// data (or a shape error) instead of ErrChecksum. This is the "deployment
// without integrity checking" the soak harness must catch.
func TestSkipVerifyPassesDamage(t *testing.T) {
	honest := Codec{KPartBytes: 4}
	broken := Codec{KPartBytes: 4, SkipVerify: true}
	p := samplePackets()[0]
	buf, err := honest.Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a value byte in the first slot: checksum-verified decode rejects,
	// SkipVerify decode returns a packet with a silently different value.
	mut := append([]byte(nil), buf...)
	mut[HeaderBytes+7] ^= 0x40 // last value byte of slot 0
	if _, err := honest.Decode(mut); !errors.Is(err, ErrChecksum) {
		t.Fatalf("honest decode: err = %v, want ErrChecksum", err)
	}
	q, err := broken.Decode(mut)
	if err != nil {
		t.Fatalf("SkipVerify decode rejected damage: %v", err)
	}
	if q.Slots[0].Val == p.Slots[0].Val {
		t.Fatal("damaged value decoded identically — flip did not land where expected")
	}
}

// TestChecksumBurstDetection: random bursts of <= 3 bit flips are always
// detected (CRC32C HD >= 4 for these lengths).
func TestChecksumBurstDetection(t *testing.T) {
	c := Codec{KPartBytes: 4}
	rng := rand.New(rand.NewSource(11))
	buf, err := c.Encode(&Packet{Type: TypeData, Bitmap: 0xff, Slots: make([]Slot, 8)})
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 2000; trial++ {
		mut := append([]byte(nil), buf...)
		flips := 1 + rng.Intn(3)
		seen := map[int]bool{}
		for f := 0; f < flips; f++ {
			pos := EthIPBytes*8 + rng.Intn((len(mut)-EthIPBytes)*8)
			if seen[pos] {
				continue
			}
			seen[pos] = true
			mut[pos/8] ^= 1 << (pos % 8)
		}
		if len(seen) == 0 {
			continue
		}
		if _, err := c.Decode(mut); !errors.Is(err, ErrChecksum) {
			t.Fatalf("burst of %d flips undetected: %v", len(seen), err)
		}
	}
}
