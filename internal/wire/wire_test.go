package wire

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func TestBitmapOps(t *testing.T) {
	var b Bitmap
	if !b.Empty() {
		t.Fatal("zero bitmap not empty")
	}
	b = b.Set(0).Set(5).Set(63)
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	for _, i := range []int{0, 5, 63} {
		if !b.Test(i) {
			t.Fatalf("bit %d should be set", i)
		}
	}
	if b.Test(4) {
		t.Fatal("bit 4 should be clear")
	}
	b = b.Clear(5)
	if b.Test(5) || b.Count() != 2 {
		t.Fatalf("after Clear(5): %064b", b)
	}
	// Clearing a clear bit is a no-op.
	if b.Clear(7) != b {
		t.Fatal("Clear of clear bit changed bitmap")
	}
}

func TestPackUnpackKPart(t *testing.T) {
	cases := []struct {
		seg string
		n   int
	}{
		{"a", 4}, {"ab", 4}, {"abc", 4}, {"abcd", 4},
		{"x", 8}, {"longkey!", 8}, {"", 4},
	}
	for _, c := range cases {
		v := PackKPart([]byte(c.seg), c.n)
		got := UnpackKPart(v, c.n)
		if string(got) != c.seg {
			t.Errorf("roundtrip(%q, n=%d) = %q", c.seg, c.n, got)
		}
	}
}

func TestPackKPartBlankIsZero(t *testing.T) {
	if PackKPart(nil, 4) != 0 {
		t.Fatal("empty segment should pack to the blank sentinel 0")
	}
}

func TestPackKPartDistinct(t *testing.T) {
	// Keys that differ only in trailing content must pack differently.
	a := PackKPart([]byte("ab"), 4)
	b := PackKPart([]byte("abc"), 4)
	if a == b {
		t.Fatal(`"ab" and "abc" packed identically`)
	}
}

func TestPackKPartTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized segment did not panic")
		}
	}()
	PackKPart([]byte("abcde"), 4)
}

func TestPackKPartQuick(t *testing.T) {
	// Property: roundtrip is exact for NUL-free segments without trailing
	// NULs of length <= n.
	f := func(raw []byte, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		seg := make([]byte, 0, n)
		for _, b := range raw {
			if b != 0 && len(seg) < n {
				seg = append(seg, b)
			}
		}
		v := PackKPart(seg, n)
		return string(UnpackKPart(v, n)) == string(seg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func randomDataPacket(rng *rand.Rand, numSlots, kPartBytes int) *Packet {
	p := &Packet{
		Type: TypeData,
		Task: core.TaskID(rng.Uint32()),
		Flow: core.FlowKey{Host: core.HostID(rng.Intn(64)), Channel: core.ChannelID(rng.Intn(8))},
		Seq:  rng.Uint32(),
	}
	p.Slots = make([]Slot, numSlots)
	for i := range p.Slots {
		if rng.Intn(3) == 0 {
			continue // blank slot
		}
		segLen := 1 + rng.Intn(kPartBytes)
		seg := make([]byte, segLen)
		for j := range seg {
			seg[j] = byte(1 + rng.Intn(255))
		}
		p.Slots[i] = Slot{
			KPart: PackKPart(seg, kPartBytes),
			Val:   int64(rng.Intn(1<<20)) - 1<<19,
		}
		p.Bitmap = p.Bitmap.Set(i)
	}
	return p
}

func TestCodecDataRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Codec{KPartBytes: 4}
	for trial := 0; trial < 200; trial++ {
		p := randomDataPacket(rng, 32, 4)
		buf, err := c.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != p.BufferBytes(4) {
			t.Fatalf("encoded %d bytes, BufferBytes says %d", len(buf), p.BufferBytes(4))
		}
		q, err := c.Unmarshal(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("roundtrip mismatch:\n p=%+v\n q=%+v", p, q)
		}
	}
}

func TestCodecNegativeValues(t *testing.T) {
	c := Codec{KPartBytes: 4}
	p := &Packet{
		Type:   TypeData,
		Bitmap: Bitmap(0).Set(0),
		Slots:  []Slot{{KPart: PackKPart([]byte("k"), 4), Val: -12345}},
	}
	buf, err := c.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Slots[0].Val != -12345 {
		t.Fatalf("negative value corrupted: %d", q.Slots[0].Val)
	}
}

func TestCodecLongKeyRoundtrip(t *testing.T) {
	c := Codec{KPartBytes: 4}
	p := &Packet{
		Type: TypeLongKey,
		Task: 7,
		Flow: core.FlowKey{Host: 3, Channel: 1},
		Seq:  99,
		Long: []LongKV{
			{Key: "internationalization", Val: 42},
			{Key: "a-rather-long-key-indeed", Val: -7},
		},
	}
	buf, err := c.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != p.BufferBytes(4) {
		t.Fatalf("encoded %d bytes, BufferBytes says %d", len(buf), p.BufferBytes(4))
	}
	q, err := c.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("roundtrip mismatch:\n p=%+v\n q=%+v", p, q)
	}
}

func TestCodecFetchReplyRoundtrip(t *testing.T) {
	c := Codec{KPartBytes: 4}
	p := &Packet{
		Type: TypeFetchReply,
		Task: 1,
		FetchEntries: []FetchEntry{
			{AA: 3, Row: 1000, KPart: PackKPart([]byte("ha"), 4), Val: 5},
			{AA: 31, Row: 0, KPart: 0, Val: 0},
		},
	}
	buf, err := c.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("roundtrip mismatch:\n p=%+v\n q=%+v", p, q)
	}
}

func TestCodecHeaderOnlyTypes(t *testing.T) {
	c := Codec{KPartBytes: 4}
	for _, typ := range []Type{TypeAck, TypeFin, TypeSwap} {
		p := &Packet{Type: typ, Task: 5, Flow: core.FlowKey{Host: 2, Channel: 3}, Seq: 17}
		buf, err := c.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != HeaderBytes {
			t.Fatalf("%v encoded to %d bytes, want header-only %d", typ, len(buf), HeaderBytes)
		}
		q, err := c.Unmarshal(buf)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("%v roundtrip mismatch", typ)
		}
	}
}

func TestWireBytesMatchesPaperModel(t *testing.T) {
	// The paper's goodput model: a packet with x 8-byte tuples costs
	// 8x + 78 bytes on the wire.
	for _, x := range []int{1, 16, 32, 64} {
		p := &Packet{Type: TypeData, Slots: make([]Slot, x)}
		if got, want := p.WireBytes(4), 8*x+78; got != want {
			t.Errorf("WireBytes(%d slots) = %d, want %d", x, got, want)
		}
	}
}

func TestCtrlNotMarshallable(t *testing.T) {
	c := Codec{KPartBytes: 4}
	if _, err := c.Marshal(&Packet{Type: TypeCtrl}); err == nil {
		t.Fatal("marshalling TypeCtrl should fail")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	c := Codec{KPartBytes: 4}
	if _, err := c.Unmarshal(make([]byte, 10)); err == nil {
		t.Error("short buffer should fail")
	}
	// Unknown type.
	buf := make([]byte, HeaderBytes)
	buf[EthIPBytes] = 0xEE
	if _, err := c.Unmarshal(buf); err == nil {
		t.Error("unknown type should fail")
	}
	// Data payload not a multiple of slot size.
	good, _ := c.Marshal(&Packet{Type: TypeData, Slots: make([]Slot, 2)})
	if _, err := c.Unmarshal(good[:len(good)-3]); err == nil {
		t.Error("ragged data payload should fail")
	}
}

func TestClone(t *testing.T) {
	p := &Packet{
		Type:   TypeData,
		Bitmap: Bitmap(0).Set(1),
		Slots:  []Slot{{}, {KPart: 1, Val: 2}},
	}
	q := p.Clone()
	q.Slots[1].Val = 99
	q.Bitmap = q.Bitmap.Clear(1)
	if p.Slots[1].Val != 2 || !p.Bitmap.Test(1) {
		t.Fatal("Clone is not deep")
	}
}
