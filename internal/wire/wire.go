// Package wire defines the ASK packet format and its byte-level encoding.
//
// The layout follows §3.2.1 and the overhead accounting of §5.3 footnote 9:
// every packet on the wire costs
//
//	78 bytes = 12 (inter-packet gap) + 7 (preamble) + 1 (SFD)
//	         + 14 (Ethernet) + 20 (IP) + 20 (ASK header) + 4 (CRC)
//
// plus its ASK payload. A data packet's payload is a fixed array of tuple
// slots, one per aggregator array (AA) on the switch; the i-th slot is
// processed by the i-th AA. The header carries an N-bit bitmap whose i-th
// bit indicates that the i-th slot holds a live tuple; the switch clears
// bits as it consumes tuples.
package wire

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/core"
)

// Byte-accounting constants (bytes).
const (
	// L1Overhead is the per-packet link-layer framing cost that never
	// appears in the packet buffer: inter-packet gap, preamble, start frame
	// delimiter, and CRC.
	L1Overhead = 12 + 7 + 1 + 4 // 24
	// EthIPBytes is the Ethernet plus IPv4 header size.
	EthIPBytes = 14 + 20
	// ASKHeaderBytes is the ASK transport header size.
	ASKHeaderBytes = 20
	// HeaderBytes is everything before the ASK payload in the packet buffer.
	HeaderBytes = EthIPBytes + ASKHeaderBytes // 54
	// PerPacketOverhead is the total non-payload cost of one packet on the
	// wire: 78 bytes, matching the paper's goodput model 8x/(8x+78).
	PerPacketOverhead = L1Overhead + HeaderBytes // 78
	// MTU bounds the packet buffer size (headers + payload, excluding L1).
	MTU = 1500
)

// Type discriminates ASK packets.
type Type uint8

const (
	// TypeData carries slotted key-value tuples for switch aggregation.
	TypeData Type = iota + 1
	// TypeAck acknowledges a data, long-key, or FIN packet back to the
	// sender; it carries the acknowledged sequence number.
	TypeAck
	// TypeLongKey carries variable-length keys too long for coalesced
	// placement; the switch forwards it untouched (§3.2.3).
	TypeLongKey
	// TypeFin signals that a sender's stream for a task is complete and
	// fully acknowledged (§3.1 Task Teardown).
	TypeFin
	// TypeSwap asks the switch to flip a task's shadow-copy indicator
	// (§3.4, Algorithm 1 Switch()).
	TypeSwap
	// TypeFetch asks the switch to read out (and optionally clear) a range
	// of aggregators from one copy of a task's region.
	TypeFetch
	// TypeFetchReply returns fetched aggregator contents to the receiver.
	TypeFetchReply
	// TypeCtrl is a control-channel message between host daemons (task
	// notify/ready); the switch forwards it untouched.
	TypeCtrl
	// TypeProbe is a host-to-switch health probe; the switch answers with a
	// TypeProbeReply carrying its current epoch (failover, §failure model).
	TypeProbe
	// TypeProbeReply answers a probe; header-only, epoch in the bitmap bytes.
	TypeProbeReply
	// TypeReplay is a bypass retransmission of a previously sent data packet
	// after a switch failure: it carries the original slots and liveness
	// bitmap plus OrigSeq, the original sequence number, so the receiver can
	// reconcile against tuples already merged before the failure. The switch
	// runs its reliability stages on it but never aggregates.
	TypeReplay
)

func (t Type) String() string {
	switch t {
	case TypeData:
		return "DATA"
	case TypeAck:
		return "ACK"
	case TypeLongKey:
		return "LONGKEY"
	case TypeFin:
		return "FIN"
	case TypeSwap:
		return "SWAP"
	case TypeFetch:
		return "FETCH"
	case TypeFetchReply:
		return "FETCHREPLY"
	case TypeCtrl:
		return "CTRL"
	case TypeProbe:
		return "PROBE"
	case TypeProbeReply:
		return "PROBEREPLY"
	case TypeReplay:
		return "REPLAY"
	default:
		return fmt.Sprintf("TYPE(%d)", uint8(t))
	}
}

// Bitmap is the per-packet tuple-liveness bitmap (up to 64 slots).
type Bitmap uint64

// Set returns the bitmap with bit i set.
func (b Bitmap) Set(i int) Bitmap { return b | 1<<uint(i) }

// Clear returns the bitmap with bit i cleared.
func (b Bitmap) Clear(i int) Bitmap { return b &^ (1 << uint(i)) }

// Test reports whether bit i is set.
func (b Bitmap) Test(i int) bool { return b&(1<<uint(i)) != 0 }

// Count returns the number of set bits (live tuples).
func (b Bitmap) Count() int { return bits.OnesCount64(uint64(b)) }

// Empty reports whether no bits are set.
func (b Bitmap) Empty() bool { return b == 0 }

// Slot is one tuple slot in a data packet payload. KPart holds up to 8 key
// bytes left-aligned (big-endian; shorter keys are zero-padded on the
// right), and Val holds the value. On the wire each occupies KPartBytes.
type Slot struct {
	KPart uint64
	Val   int64
}

// Blank reports whether the slot carries no key material.
func (s Slot) Blank() bool { return s.KPart == 0 }

// PackKPart packs up to n bytes of key material (n = KPartBytes) into a
// left-aligned big-endian uint64, zero-padded on the right.
func PackKPart(seg []byte, n int) uint64 {
	if len(seg) > n || n > 8 {
		panic(fmt.Sprintf("wire: segment of %d bytes does not fit kPart of %d", len(seg), n))
	}
	var v uint64
	for i := 0; i < n; i++ {
		v <<= 8
		if i < len(seg) {
			v |= uint64(seg[i])
		}
	}
	// Left-align within the 64-bit container so representations are
	// independent of n when comparing.
	return v << uint(8*(8-n))
}

// PackKPartString is PackKPart for a string segment. Identical packing,
// but takes the key material as a string slice so hot paths can pack
// directly from key strings without a []byte conversion per call.
func PackKPartString(seg string, n int) uint64 {
	if len(seg) > n || n > 8 {
		panic(fmt.Sprintf("wire: segment of %d bytes does not fit kPart of %d", len(seg), n))
	}
	var v uint64
	for i := 0; i < n; i++ {
		v <<= 8
		if i < len(seg) {
			v |= uint64(seg[i])
		}
	}
	return v << uint(8*(8-n))
}

// UnpackKPart reverses PackKPart, trimming the right zero padding. The
// result is exact for NUL-free keys (keys containing 0x00 take the long-key
// bypass; see internal/keyspace).
func UnpackKPart(v uint64, n int) []byte {
	out := make([]byte, 0, n)
	for i := 0; i < n; i++ {
		b := byte(v >> uint(8*(7-i)))
		out = append(out, b)
	}
	// Trim right zero padding.
	end := len(out)
	for end > 0 && out[end-1] == 0 {
		end--
	}
	return out[:end:end]
}

// LongKV is a variable-length tuple carried by a TypeLongKey packet.
type LongKV struct {
	Key string
	Val int64
}

// FetchEntry is one aggregator read out by a fetch.
type FetchEntry struct {
	AA    int    // aggregator array index
	Row   int    // row within the copy
	KPart uint64 // stored key part (0 = blank)
	Val   int64
}

// Packet is the in-simulation representation of an ASK packet. The network
// model passes packets by pointer and charges WireSize bytes per hop; the
// byte codec in codec.go is the authoritative layout and is exercised by
// tests to keep WireSize honest.
type Packet struct {
	Type Type
	Task core.TaskID
	Flow core.FlowKey // originating sender host + data channel
	Seq  uint32
	// AckFor (TypeAck only) names the packet type being acknowledged, so a
	// host can route data/FIN ACKs to the sender window and swap ACKs to
	// the shadow-copy machinery.
	AckFor Type
	// Epoch is the switch incarnation number stamped on every non-data
	// packet the switch generates or forwards. It rides the otherwise-unused
	// bitmap bytes (h[13:17] — ACKs use h[12] for AckFor), so the 20-byte
	// ASK header and the 78-byte per-packet overhead are unchanged. Hosts
	// detect switch reboots by observing an epoch advance.
	Epoch uint32
	// OrigSeq (TypeReplay) is the sequence number the replayed payload was
	// originally sent under; the receiver uses (Flow, OrigSeq) as the
	// reconciliation identity so no tuple is double-counted across the
	// INA → bypass transition. For TypeFin it carries the FIN generation
	// (the sender's epoch when the FIN was cut, in the spare header bytes
	// h[17:19]) so a receiver can tell a stale pre-reboot FIN from one sent
	// after the sender finished replaying.
	OrigSeq uint32
	// Bitmap is meaningful for TypeData/TypeReplay: live-tuple bits.
	Bitmap Bitmap
	// Slots is the fixed tuple-slot array for TypeData/TypeReplay (len = NumAAs).
	Slots []Slot
	// Long carries tuples for TypeLongKey.
	Long []LongKV
	// Fetch fields. Fetch requests are idempotent reads identified by Seq;
	// replies echo Seq and carry chunk FetchChunk of FetchChunks.
	FetchCopy    int // which shadow copy to read (0/1)
	FetchClear   bool
	FetchChunk   uint16
	FetchChunks  uint16
	FetchEntries []FetchEntry // TypeFetchReply
	// Ctrl carries an opaque control message for TypeCtrl (not byte-encoded;
	// charged CtrlBytes on the wire).
	Ctrl any

	// Free-list bookkeeping (pool.go). pooledSlots marks Slots as owned by
	// the packet free list, so Release recycles the array; slices installed
	// by callers stay GC-owned. scratch stashes retained slot capacity while
	// the packet rests in the pool and is nil on live packets.
	pooledSlots bool
	scratch     []Slot
}

// CtrlBytes is the nominal wire size charged for a control message payload.
const CtrlBytes = 64

// longKVWireBytes is the per-tuple cost inside a TypeLongKey payload:
// 2-byte length, key bytes, 8-byte value.
func longKVWireBytes(kv LongKV) int { return 2 + len(kv.Key) + 8 }

// fetchEntryWireBytes is the per-entry cost inside a TypeFetchReply payload:
// 1-byte AA, 4-byte row, 8-byte kPart, 8-byte value.
const fetchEntryWireBytes = 1 + 4 + 8 + 8

// PayloadBytes returns the ASK payload size in bytes, given the deployment's
// per-slot key-part width.
func (p *Packet) PayloadBytes(kPartBytes int) int {
	switch p.Type {
	case TypeData:
		return len(p.Slots) * 2 * kPartBytes
	case TypeReplay:
		// OrigSeq plus the full original slot array.
		return 4 + len(p.Slots)*2*kPartBytes
	case TypeLongKey:
		n := 0
		for _, kv := range p.Long {
			n += longKVWireBytes(kv)
		}
		return n
	case TypeFetchReply:
		return 4 + len(p.FetchEntries)*fetchEntryWireBytes // chunk, chunks
	case TypeFetch:
		return 12 // copy, clear, row range
	case TypeCtrl:
		return CtrlBytes
	default: // ACK, FIN, SWAP, PROBE, PROBEREPLY: header-only
		return 0
	}
}

// BufferBytes returns the packet buffer size (headers + payload, no L1).
func (p *Packet) BufferBytes(kPartBytes int) int {
	return HeaderBytes + p.PayloadBytes(kPartBytes)
}

// WireBytes returns the total cost of the packet on the wire including the
// 24-byte L1 framing: PerPacketOverhead + payload.
func (p *Packet) WireBytes(kPartBytes int) int {
	return PerPacketOverhead + p.PayloadBytes(kPartBytes)
}

// LiveTuples returns the number of live tuples in a data packet.
func (p *Packet) LiveTuples() int { return p.Bitmap.Count() }

func (p *Packet) String() string {
	switch p.Type {
	case TypeData:
		return fmt.Sprintf("%s task=%d %s seq=%d live=%d", p.Type, p.Task, p.Flow, p.Seq, p.LiveTuples())
	case TypeReplay:
		return fmt.Sprintf("%s task=%d %s seq=%d orig=%d live=%d", p.Type, p.Task, p.Flow, p.Seq, p.OrigSeq, p.LiveTuples())
	default:
		return fmt.Sprintf("%s task=%d %s seq=%d", p.Type, p.Task, p.Flow, p.Seq)
	}
}

// Clone returns a deep copy of the packet with plain GC-owned storage. The
// hot delivery path uses ClonePooled (pool.go) instead; Clone remains for
// callers that keep the copy indefinitely (retransmission buffers, tests).
func (p *Packet) Clone() *Packet {
	q := *p
	q.pooledSlots = false
	q.scratch = nil
	if p.Slots != nil {
		q.Slots = append([]Slot(nil), p.Slots...)
	}
	if p.Long != nil {
		q.Long = append([]LongKV(nil), p.Long...)
	}
	if p.FetchEntries != nil {
		q.FetchEntries = append([]FetchEntry(nil), p.FetchEntries...)
	}
	return &q
}

// headerLayout documents the 20-byte ASK header encoding used by the codec:
//
//	offset 0  : Type (1)
//	offset 1  : Channel (1)
//	offset 2-3: Host (2, big-endian)
//	offset 4-7: Task (4)
//	offset 8-11: Seq (4)
//	offset 12-19: Bitmap (8)
//
// For non-data types the bitmap field is repurposed: offset 12 carries
// AckFor (TypeAck), offsets 13-16 carry the switch Epoch, offsets 17-19 are
// reserved. Data/replay packets carry the liveness bitmap there; replay
// packets put OrigSeq in the first 4 payload bytes instead.
var _ = binary.BigEndian
