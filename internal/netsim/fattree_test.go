package netsim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/wire"
)

// fwdSwitch is a trivial switch program that forwards every frame.
type fwdSwitch struct{ fab SwitchFabric }

func (fs *fwdSwitch) HandleIngress(f *Frame) { fs.fab.SwitchSend(f) }

// sinkSwitch records frames that entered a switch program.
type sinkSwitch struct {
	got []*Frame
	fab SwitchFabric
}

func (ss *sinkSwitch) HandleIngress(f *Frame) { ss.got = append(ss.got, f) }

type sinkHost struct{ got []*Frame }

func (sh *sinkHost) HandleFrame(f *Frame) { sh.got = append(sh.got, f) }

func dataFrame(src, dst core.HostID, task core.TaskID) *Frame {
	return &Frame{
		Src: src, Dst: dst,
		Pkt:       &wire.Packet{Type: wire.TypeData, Task: task},
		WireBytes: 128,
		Owned:     true,
	}
}

func buildFatTree(t *testing.T, spines, leaves, hostsPerLeaf int) (*sim.Simulation, *FatTree, map[core.HostID]*sinkHost) {
	t.Helper()
	s := sim.New(1)
	ft := NewFatTree(s, spines, leaves, DefaultLinkConfig(), DefaultLinkConfig())
	for l := 0; l < leaves; l++ {
		ft.Leaf(l).AttachSwitch(&fwdSwitch{ft.Leaf(l)})
	}
	for sp := 0; sp < spines; sp++ {
		ft.Spine(sp).AttachSwitch(&fwdSwitch{ft.Spine(sp)})
	}
	hosts := make(map[core.HostID]*sinkHost)
	for l := 0; l < leaves; l++ {
		for i := 0; i < hostsPerLeaf; i++ {
			id := core.HostID(l*hostsPerLeaf + i)
			h := &sinkHost{}
			ft.AttachHostLeaf(l, id, h)
			hosts[id] = h
		}
	}
	return s, ft, hosts
}

func TestFatTreeCrossLeafTraversesOneSpine(t *testing.T) {
	s, ft, hosts := buildFatTree(t, 2, 3, 2)
	// Host 0 (leaf 0) → host 5 (leaf 2): must cross the task's spine.
	ft.HostSend(dataFrame(0, 5, 7))
	s.Run(0)
	if len(hosts[5].got) != 1 {
		t.Fatalf("host 5 got %d frames, want 1", len(hosts[5].got))
	}
	want := ft.SpineFor(7)
	for sp := 0; sp < ft.Spines(); sp++ {
		tx := ft.SpineUplink(0, sp).Stats().TxFrames
		if sp == want && tx != 1 {
			t.Fatalf("spine %d carried %d frames, want 1", sp, tx)
		}
		if sp != want && tx != 0 {
			t.Fatalf("spine %d carried %d frames, want 0", sp, tx)
		}
	}
}

func TestFatTreeLocalDeliveryStaysOnLeaf(t *testing.T) {
	s, ft, hosts := buildFatTree(t, 2, 2, 2)
	ft.HostSend(dataFrame(0, 1, 3)) // both on leaf 0
	s.Run(0)
	if len(hosts[1].got) != 1 {
		t.Fatalf("host 1 got %d frames, want 1", len(hosts[1].got))
	}
	for sp := 0; sp < ft.Spines(); sp++ {
		if tx := ft.SpineUplink(0, sp).Stats().TxFrames; tx != 0 {
			t.Fatalf("local delivery crossed spine %d (%d frames)", sp, tx)
		}
	}
}

func TestFatTreeLeafAddressedFrameEntersRemoteLeafProgram(t *testing.T) {
	s := sim.New(1)
	ft := NewFatTree(s, 2, 2, DefaultLinkConfig(), DefaultLinkConfig())
	ft.Leaf(0).AttachSwitch(&fwdSwitch{ft.Leaf(0)})
	sink := &sinkSwitch{}
	ft.Leaf(1).AttachSwitch(sink)
	for sp := 0; sp < 2; sp++ {
		ft.Spine(sp).AttachSwitch(&fwdSwitch{ft.Spine(sp)})
	}
	h := &sinkHost{}
	ft.AttachHostLeaf(0, 0, h)
	// A fetch-style request from host 0 addressed to leaf 1: relayed by
	// leaf 0 over the task's spine, then into leaf 1's program.
	f := dataFrame(0, LeafAddr(1), 9)
	f.Pkt.Type = wire.TypeFetch
	ft.HostSend(f)
	s.Run(0)
	if len(sink.got) != 1 {
		t.Fatalf("leaf 1 program saw %d frames, want 1", len(sink.got))
	}
	if sink.got[0].Dst != LeafAddr(1) {
		t.Fatalf("leaf 1 saw frame for %d", sink.got[0].Dst)
	}
}

func TestFatTreeSpineForIsStablePerTask(t *testing.T) {
	s := sim.New(1)
	ft := NewFatTree(s, 3, 2, DefaultLinkConfig(), DefaultLinkConfig())
	seen := map[int]bool{}
	for task := core.TaskID(0); task < 12; task++ {
		sp := ft.SpineFor(task)
		if sp < 0 || sp >= 3 {
			t.Fatalf("task %d mapped to spine %d", task, sp)
		}
		if sp != ft.SpineFor(task) {
			t.Fatal("SpineFor not stable")
		}
		seen[sp] = true
	}
	if len(seen) != 3 {
		t.Fatalf("12 tasks hit only %d of 3 spines", len(seen))
	}
}

func TestFatTreeAddressHelpers(t *testing.T) {
	if l, ok := LeafIndex(LeafAddr(2), 4); !ok || l != 2 {
		t.Fatalf("LeafIndex(LeafAddr(2)) = %d, %v", l, ok)
	}
	if _, ok := LeafIndex(LeafAddr(4), 4); ok {
		t.Fatal("leaf 4 of 4 must not resolve")
	}
	if sp, ok := SpineIndex(SpineAddr(1), 2); !ok || sp != 1 {
		t.Fatalf("SpineIndex(SpineAddr(1)) = %d, %v", sp, ok)
	}
	if _, ok := SpineIndex(LeafAddr(0), 8); ok {
		t.Fatal("a leaf address must not resolve as a spine")
	}
	if _, ok := LeafIndex(3, 4); ok {
		t.Fatal("a host ID must not resolve as a leaf")
	}
}
