package netsim

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Fabric switch addresses. Leaves and spines are addressable endpoints on a
// fat-tree (fetch/swap requests name the aggregation point they read), so
// they get HostIDs from a reserved high range that real hosts must not use.
const (
	leafAddrBase  core.HostID = 0xF000
	spineAddrBase core.HostID = 0xF800
)

// LeafAddr returns the fabric address of leaf l.
func LeafAddr(l int) core.HostID { return leafAddrBase + core.HostID(l) }

// SpineAddr returns the fabric address of spine s.
func SpineAddr(s int) core.HostID { return spineAddrBase + core.HostID(s) }

// LeafIndex reports whether addr names a leaf among `leaves` and which.
func LeafIndex(addr core.HostID, leaves int) (int, bool) {
	if addr >= leafAddrBase && addr < leafAddrBase+core.HostID(leaves) {
		return int(addr - leafAddrBase), true
	}
	return 0, false
}

// SpineIndex reports whether addr names a spine among `spines` and which.
func SpineIndex(addr core.HostID, spines int) (int, bool) {
	if addr >= spineAddrBase && addr < spineAddrBase+core.HostID(spines) {
		return int(addr - spineAddrBase), true
	}
	return 0, false
}

// FatTree is the spine/leaf fabric: L leaves of hosts, S spines, and a full
// bipartite mesh of leaf↔spine links. Both tiers run ASK programs, which is
// what distinguishes it from TwoTier's forwarding core: a leaf aggregates
// traffic entering from its own hosts, and residue crossing the fabric gets
// a second aggregation chance at the spine before reaching the receiver
// (hierarchical re-aggregation). Traffic arriving at a leaf FROM a spine
// follows §7's state-bounding rule — addressed to the leaf itself it enters
// the leaf's program (fetch/swap of that leaf's regions); addressed to a
// host it bypasses the program and is delivered directly.
//
// Every frame of a task crosses the fabric through one spine, chosen by
// Task ID (SpineFor), so a task's packet order is preserved end to end and
// its spine-side region lives on exactly one spine.
type FatTree struct {
	sim *sim.Simulation
	// SwitchLatency applies per switch traversal (leaf or spine).
	SwitchLatency time.Duration
	leaves        []*leafPort
	spines        []*spinePort
	hostLeaf      map[core.HostID]int
	hostPorts     map[core.HostID]*port
	hostLink      LinkConfig
	fabricLink    LinkConfig
	codec         wire.Codec
	// leafDown / spineDown mirror the switches' crash state into the fabric
	// so routing can re-elect around dead spines and a dead leaf's
	// host-delivery path (which bypasses the switch program, §7) black-holes
	// like the program path does.
	leafDown  []bool
	spineDown []bool
	// group is non-nil for a sharded fabric (NewFatTreeSharded): each leaf
	// block and spine lives on a lane simulation and the leaf↔spine mesh is
	// mailbox cuts. hostLeaf/hostPorts stay read-only after construction;
	// leafDown/spineDown are written only from root context (chaos), which
	// the group serializes.
	group *sim.ShardGroup
	// cutLinks counts directed links rewired into cross-lane mailboxes.
	cutLinks int
}

// leafPort is one leaf switch: the SwitchFabric its ASK program attaches
// to. It is a per-leaf network-state root for the parallel DES; traffic
// leaves it only over the host links and the leaf↔spine mesh, which the
// sharded build rewires into mailbox cuts.
//
//askcheck:shard
type leafPort struct {
	ft      *FatTree
	leaf    int
	handler SwitchHandler
	// ls is the simulation this leaf's state lives on (the fabric-wide one
	// for a serial build, the leaf's shard lane for a sharded build).
	ls *sim.Simulation
	// up[s] is this leaf's link to spine s.
	up []*Link
	// Arg-carrying event adapters, bound once per port so the per-frame
	// switch-latency hops allocate no closures.
	ingressAny   func(any)
	fromSpineAny func(any)
}

// spinePort is one spine switch: a per-spine network-state root for the
// parallel DES (see leafPort).
//
//askcheck:shard
type spinePort struct {
	ft      *FatTree
	spine   int
	handler SwitchHandler
	// ls is the simulation this spine's state lives on (see leafPort.ls).
	ls *sim.Simulation
	// down[l] is this spine's link to leaf l.
	down       []*Link
	ingressAny func(any)
}

// NewFatTree builds the fabric. hostLink configures host↔leaf links,
// fabricLink the leaf↔spine links (typically fatter).
func NewFatTree(s *sim.Simulation, spines, leaves int, hostLink, fabricLink LinkConfig) *FatTree {
	return newFatTree(s, nil, spines, leaves, hostLink, fabricLink)
}

// NewFatTreeSharded builds the fabric partitioned into `shards` lanes
// under root's conservative shard group: leaves form contiguous lane
// blocks, spines are spread round-robin over the lanes, and the whole
// leaf↔spine mesh becomes mailbox cuts with lookahead
// fabricLink.Propagation + SwitchLatency. A request that EffectiveShards
// clamps to serial (shards <= 1, or a single leaf) returns a fabric built
// by the exact serial path and a nil group.
func NewFatTreeSharded(s *sim.Simulation, spines, leaves, shards int, hostLink, fabricLink LinkConfig) (*FatTree, *sim.ShardGroup) {
	eff := EffectiveShards(shards, leaves)
	if eff == 0 {
		return newFatTree(s, nil, spines, leaves, hostLink, fabricLink), nil
	}
	g := sim.NewShardGroup(s, eff, cutDelay(fabricLink, defaultSwitchLatency))
	return newFatTree(s, g, spines, leaves, hostLink, fabricLink), g
}

func newFatTree(s *sim.Simulation, g *sim.ShardGroup, spines, leaves int, hostLink, fabricLink LinkConfig) *FatTree {
	if spines <= 0 || leaves <= 0 {
		panic("netsim: need at least one spine and one leaf")
	}
	if leaves > int(spineAddrBase-leafAddrBase) || spines > int(0x10000-int(spineAddrBase)) {
		panic("netsim: fat-tree exceeds the fabric address space")
	}
	ft := &FatTree{
		sim:           s,
		SwitchLatency: defaultSwitchLatency,
		hostLeaf:      make(map[core.HostID]int),
		hostPorts:     make(map[core.HostID]*port),
		hostLink:      hostLink,
		fabricLink:    fabricLink,
		leafDown:      make([]bool, leaves),
		spineDown:     make([]bool, spines),
		group:         g,
	}
	leafSim, spineSim := shardSims(g, leaves, spines)
	for l := 0; l < leaves; l++ {
		lp := &leafPort{ft: ft, leaf: l, ls: s}
		if leafSim != nil {
			lp.ls = leafSim[l]
		}
		lp.ingressAny = func(a any) { lp.ingress(a.(*Frame)) }
		lp.fromSpineAny = func(a any) { lp.fromSpine(a.(*Frame)) }
		ft.leaves = append(ft.leaves, lp)
	}
	for sp := 0; sp < spines; sp++ {
		spp := &spinePort{ft: ft, spine: sp, ls: s}
		if spineSim != nil {
			spp.ls = spineSim[sp]
		}
		spp.ingressAny = func(a any) { spp.ingress(a.(*Frame)) }
		ft.spines = append(ft.spines, spp)
	}
	// Full bipartite mesh: one directed link per (leaf, spine) per
	// direction. In a sharded build every mesh link is a mailbox cut with
	// the receiving switch's pipeline hop folded into the cut delay; the
	// static per-link target degrades to a plain local schedule when both
	// endpoints share a lane.
	for _, lp := range ft.leaves {
		lp := lp
		lp.up = make([]*Link, spines)
		for sp := 0; sp < spines; sp++ {
			spp := ft.spines[sp]
			if g == nil {
				lp.up[sp] = newLink(s, fabricLink, func(f *Frame) {
					s.AfterCall(ft.SwitchLatency, spp.ingressAny, f)
				})
			} else {
				lp.up[sp] = newLink(lp.ls, fabricLink, func(f *Frame) { spp.ingress(f) })
				lp.up[sp].xroute = func(*Frame) *sim.Simulation { return spp.ls }
				lp.up[sp].xdelay = ft.SwitchLatency
				ft.cutLinks++
			}
		}
	}
	for _, spp := range ft.spines {
		spp := spp
		spp.down = make([]*Link, leaves)
		for l := 0; l < leaves; l++ {
			lp := ft.leaves[l]
			if g == nil {
				spp.down[l] = newLink(s, fabricLink, func(f *Frame) {
					s.AfterCall(ft.SwitchLatency, lp.fromSpineAny, f)
				})
			} else {
				spp.down[l] = newLink(spp.ls, fabricLink, func(f *Frame) { lp.fromSpine(f) })
				spp.down[l].xroute = func(*Frame) *sim.Simulation { return lp.ls }
				spp.down[l].xdelay = ft.SwitchLatency
				ft.cutLinks++
			}
		}
	}
	return ft
}

// Group returns the shard group of a sharded fabric (nil when serial).
func (ft *FatTree) Group() *sim.ShardGroup { return ft.group }

// LeafSim returns the simulation leaf l's state must be constructed on.
func (ft *FatTree) LeafSim(l int) *sim.Simulation { return ft.leaves[l].ls }

// SpineSim returns the simulation spine s's state must be constructed on.
func (ft *FatTree) SpineSim(s int) *sim.Simulation { return ft.spines[s].ls }

// Layout reports the lane assignment (zero value when serial).
func (ft *FatTree) Layout() ShardLayout {
	if ft.group == nil {
		return ShardLayout{}
	}
	lay := ShardLayout{
		Lanes:     ft.group.Lanes(),
		BlockLane: make([]int, len(ft.leaves)),
		SpineLane: make([]int, len(ft.spines)),
		CutLinks:  ft.cutLinks,
		Lookahead: ft.group.Lookahead(),
	}
	for l, lp := range ft.leaves {
		lay.BlockLane[l] = lp.ls.ShardLane()
	}
	for s, spp := range ft.spines {
		lay.SpineLane[s] = spp.ls.ShardLane()
	}
	return lay
}

// SetCodec installs the byte codec used by the corruption fault path on
// every link in the fabric (host↔leaf and leaf↔spine, attached and future).
func (ft *FatTree) SetCodec(c wire.Codec) {
	ft.codec = c
	for _, lp := range ft.leaves {
		for _, l := range lp.up {
			l.codec = c
		}
	}
	for _, spp := range ft.spines {
		for _, l := range spp.down {
			l.codec = c
		}
	}
	// Assigning the same codec to every port commutes; no event is
	// scheduled here, so this iteration's order cannot escape.
	//askcheck:allow(simdeterminism)
	for _, p := range ft.hostPorts {
		p.up.codec, p.down.codec = c, c
	}
}

// Leaves returns the leaf count.
func (ft *FatTree) Leaves() int { return len(ft.leaves) }

// Spines returns the spine count.
func (ft *FatTree) Spines() int { return len(ft.spines) }

// Leaf returns leaf l's switch attachment point (a SwitchFabric).
func (ft *FatTree) Leaf(l int) SwitchFabric { return ft.leaves[l] }

// Spine returns spine s's switch attachment point (a SwitchFabric).
func (ft *FatTree) Spine(s int) SwitchFabric { return ft.spines[s] }

// LeafOf returns the leaf a host is attached to.
func (ft *FatTree) LeafOf(id core.HostID) int { return ft.hostLeaf[id] }

// SpineFor returns the spine that carries (and, for cross-leaf tasks, holds
// the re-aggregation region of) task t: the first LIVE candidate in the
// task-hashed probe order (h, h+1, ...). The choice is a pure function of
// the task ID and the global spine down-set, so every leaf routes a task's
// frames identically and a spine crash re-elects the same alternate
// everywhere at once. With every spine down the hashed candidate is
// returned unchanged — its frames black-hole at the crashed switch until a
// reboot heals the fabric.
func (ft *FatTree) SpineFor(t core.TaskID) int {
	h := int(uint32(t)) % len(ft.spines)
	for i := 0; i < len(ft.spines); i++ {
		if c := (h + i) % len(ft.spines); !ft.spineDown[c] {
			return c
		}
	}
	return h
}

// SetSpineDown marks spine s crashed (or healed) for routing: SpineFor
// re-elects around down spines.
func (ft *FatTree) SetSpineDown(s int, down bool) { ft.spineDown[s] = down }

// SetLeafDown marks leaf l crashed (or healed): frames arriving over its
// spine downlinks are dropped, including host-addressed deliveries that
// bypass the switch program.
func (ft *FatTree) SetLeafDown(l int, down bool) { ft.leafDown[l] = down }

// SpineIsDown reports spine s's routing down-state.
func (ft *FatTree) SpineIsDown(s int) bool { return ft.spineDown[s] }

// LeafIsDown reports leaf l's routing down-state.
func (ft *FatTree) LeafIsDown(l int) bool { return ft.leafDown[l] }

// spineForFrame picks the uplink spine for a fabric-crossing frame.
func (ft *FatTree) spineForFrame(f *Frame) int {
	if f.Pkt == nil {
		return 0 // raw (damaged) frame: any deterministic choice works
	}
	return ft.SpineFor(f.Pkt.Task)
}

// AttachHostLeaf connects a host to leaf l.
func (ft *FatTree) AttachHostLeaf(l int, id core.HostID, h HostHandler) {
	if _, dup := ft.hostPorts[id]; dup {
		panic(fmt.Sprintf("netsim: host %d attached twice", id))
	}
	if l < 0 || l >= len(ft.leaves) {
		panic(fmt.Sprintf("netsim: leaf %d out of range", l))
	}
	if id >= leafAddrBase {
		panic(fmt.Sprintf("netsim: host ID %#x collides with the fabric address range", id))
	}
	lp := ft.leaves[l]
	ls := lp.ls
	p := &port{host: h}
	p.up = newLink(ls, ft.hostLink, func(f *Frame) {
		ls.AfterCall(ft.SwitchLatency, lp.ingressAny, f)
	})
	p.down = newLink(ls, ft.hostLink, func(f *Frame) { p.host.HandleFrame(f) })
	p.up.codec, p.down.codec = ft.codec, ft.codec
	ft.hostPorts[id] = p
	ft.hostLeaf[id] = l
}

// AttachHost implements HostFabric for single-leaf convenience (leaf 0).
func (ft *FatTree) AttachHost(id core.HostID, h HostHandler) { ft.AttachHostLeaf(0, id, h) }

// HostSend transmits a frame from its Src host toward its leaf.
func (ft *FatTree) HostSend(f *Frame) {
	p, ok := ft.hostPorts[f.Src]
	if !ok {
		panic(fmt.Sprintf("netsim: send from unattached host %d", f.Src))
	}
	p.up.Send(f)
}

// Uplink returns a host's uplink (for backpressure and stats).
func (ft *FatTree) Uplink(id core.HostID) *Link { return ft.hostPorts[id].up }

// Downlink returns a host's downlink.
func (ft *FatTree) Downlink(id core.HostID) *Link { return ft.hostPorts[id].down }

// SpineUplink returns leaf l's link to spine s (for stats).
func (ft *FatTree) SpineUplink(l, s int) *Link { return ft.leaves[l].up[s] }

// ingress runs traffic entering from this leaf's own hosts through the
// leaf's switch program.
func (lp *leafPort) ingress(f *Frame) {
	if lp.handler == nil {
		panic(fmt.Sprintf("netsim: leaf %d has no switch attached", lp.leaf))
	}
	lp.handler.HandleIngress(f)
}

// fromSpine handles a frame arriving over a spine downlink: addressed to
// this leaf it enters the program (a fetch/swap of this leaf's regions
// relayed across the fabric); addressed to a host it bypasses the program
// (§7 state bounding) and is delivered directly.
func (lp *leafPort) fromSpine(f *Frame) {
	if lp.ft.leafDown[lp.leaf] {
		// A crashed leaf is a black hole for its whole linecard: the
		// host-delivery path below bypasses the switch program (so the
		// program's own down-check never sees these frames), and hosts behind
		// the leaf are unreachable either way.
		f.Release()
		return
	}
	if f.Dst == LeafAddr(lp.leaf) {
		lp.ingress(f)
		return
	}
	p, ok := lp.ft.hostPorts[f.Dst]
	if !ok || lp.ft.hostLeaf[f.Dst] != lp.leaf {
		panic(fmt.Sprintf("netsim: leaf %d asked to deliver to foreign host %d", lp.leaf, f.Dst))
	}
	p.down.Send(f)
}

// AttachSwitch implements SwitchFabric for the leaf.
func (lp *leafPort) AttachSwitch(h SwitchHandler) { lp.handler = h }

// SwitchSend implements SwitchFabric: the leaf's program emits a frame,
// which goes to a local host directly, to a named fabric switch, or across
// the task's spine toward a remote leaf.
func (lp *leafPort) SwitchSend(f *Frame) {
	ft := lp.ft
	if l, ok := ft.hostLeaf[f.Dst]; ok {
		if l == lp.leaf {
			ft.hostPorts[f.Dst].down.Send(f)
			return
		}
		lp.up[ft.spineForFrame(f)].Send(f)
		return
	}
	if s, ok := SpineIndex(f.Dst, len(ft.spines)); ok {
		lp.up[s].Send(f)
		return
	}
	if _, ok := LeafIndex(f.Dst, len(ft.leaves)); ok {
		// Another leaf: relay over the task's spine, which forwards it down.
		lp.up[ft.spineForFrame(f)].Send(f)
		return
	}
	panic(fmt.Sprintf("netsim: leaf %d sending to unattached destination %d", lp.leaf, f.Dst))
}

// ingress runs a frame through the spine's switch program.
func (sp *spinePort) ingress(f *Frame) {
	if sp.handler == nil {
		panic(fmt.Sprintf("netsim: spine %d has no switch attached", sp.spine))
	}
	sp.handler.HandleIngress(f)
}

// AttachSwitch implements SwitchFabric for the spine.
func (sp *spinePort) AttachSwitch(h SwitchHandler) { sp.handler = h }

// SwitchSend implements SwitchFabric: the spine's program emits a frame
// down toward its destination host's leaf (or a leaf itself, for relayed
// fetch/swap requests).
func (sp *spinePort) SwitchSend(f *Frame) {
	ft := sp.ft
	if l, ok := ft.hostLeaf[f.Dst]; ok {
		sp.down[l].Send(f)
		return
	}
	if l, ok := LeafIndex(f.Dst, len(ft.leaves)); ok {
		sp.down[l].Send(f)
		return
	}
	panic(fmt.Sprintf("netsim: spine %d sending to unattached destination %d", sp.spine, f.Dst))
}
