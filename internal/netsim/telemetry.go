package netsim

import (
	"strconv"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// Telemetry wiring for the fabric. Links are on the per-frame hot path, so
// all metrics are exposed as GaugeFunc callbacks over the counters the links
// already maintain: polling happens only at sample/export time and costs the
// data path nothing. Fault outcomes (drop, duplicate, reorder) additionally
// emit trace events under telemetry.CompNetsim when a tracer is attached.

// Instrument attaches the observability sink to the network. Per-link
// utilization gauges (netsim.link_*) are registered for every host attached
// so far and for every host attached afterwards; call right after New.
func (n *Network) Instrument(sink telemetry.Sink) {
	n.tel = sink
	if sink.Reg != nil {
		sink.Reg.GaugeFunc("netsim.switch_unroutable_frames", func() int64 { return n.unroutable })
	}
	for _, id := range n.Hosts() {
		n.instrumentPort(id, n.ports[id])
	}
}

// instrumentPort registers both directions of one host port.
func (n *Network) instrumentPort(id core.HostID, p *port) {
	if n.tel.Reg == nil && n.tel.Tr == nil {
		return
	}
	host := strconv.Itoa(int(id))
	p.up.instrument(n.tel, host, "up")
	p.down.instrument(n.tel, host, "down")
}

// instrument registers one link direction's gauges and hands it the tracer.
func (l *Link) instrument(sink telemetry.Sink, host, dir string) {
	l.tr = sink.Tr
	l.host = host
	l.dir = dir
	reg := sink.Reg
	if reg == nil {
		return
	}
	labels := []telemetry.Label{telemetry.L("host", host), telemetry.L("dir", dir)}
	reg.GaugeFunc("netsim.link_tx_frames", func() int64 { return l.stats.TxFrames }, labels...)
	reg.GaugeFunc("netsim.link_tx_wire_bytes", func() int64 { return l.stats.TxWireBytes }, labels...)
	reg.GaugeFunc("netsim.link_tx_good_bytes", func() int64 { return l.stats.TxGoodBytes }, labels...)
	reg.GaugeFunc("netsim.link_dropped_frames", func() int64 { return l.stats.Dropped }, labels...)
	reg.GaugeFunc("netsim.link_dup_frames", func() int64 { return l.stats.Duplicated }, labels...)
	reg.GaugeFunc("netsim.link_reordered_frames", func() int64 { return l.stats.Reordered }, labels...)
	reg.GaugeFunc("netsim.link_corrupted_frames", func() int64 { return l.stats.Corrupted }, labels...)
	reg.GaugeFunc("netsim.link_truncated_frames", func() int64 { return l.stats.Truncated }, labels...)
	reg.GaugeFunc("netsim.link_backlog_ns", func() int64 { return int64(l.Backlog()) }, labels...)
}

// traceFault emits one fault-outcome event (drop/dup/reorder/corrupt) for a
// frame. Already-damaged frames carry raw bytes and no decoded packet, so
// the task label falls back to zero.
func (l *Link) traceFault(kind string, f *Frame) {
	if l.tr == nil {
		return
	}
	var task int64
	if f.Pkt != nil {
		task = int64(f.Pkt.Task)
	}
	l.tr.EmitNote(telemetry.CompNetsim, kind, task, l.host+"/"+l.dir)
}
