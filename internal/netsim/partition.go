// Topology partitioner for the conservative parallel DES (DESIGN.md
// "Parallel DES"). A fabric is partitioned at its switch boundaries —
// racks for TwoTier, leaves (plus spines) for FatTree — into contiguous
// lane blocks; every host, switch, and intra-shard link is constructed on
// its lane's simulation, and the inter-shard links (TOR↔core, leaf↔spine)
// become mailbox cuts whose minimum model delay (propagation + switch
// pipeline latency) is the group's lookahead.
package netsim

import (
	"time"

	"repro/internal/sim"
)

// EffectiveShards clamps a requested shard count to what a topology with
// `blocks` partitionable units (racks or leaves) supports. 0 means run
// serial: a request of one lane, or a topology too small to cut.
func EffectiveShards(requested, blocks int) int {
	if requested > blocks {
		requested = blocks
	}
	if requested <= 1 || blocks <= 1 {
		return 0
	}
	return requested
}

// laneOfBlock maps partition unit i of n to one of `shards` contiguous,
// balanced lane blocks (unit i -> lane i*shards/n). Contiguity keeps
// rack/leaf neighbourhoods together, matching how the ask layer numbers
// hosts rack-major.
func laneOfBlock(i, n, shards int) int {
	return i * shards / n
}

// ShardLayout describes the lane assignment of a sharded fabric, for the
// partitioner tests and the -shards diagnostics. A serial fabric reports
// the zero value (Lanes == 0).
type ShardLayout struct {
	// Lanes is the shard count (0 = serial).
	Lanes int
	// BlockLane maps rack (TwoTier) or leaf (FatTree) index to its lane.
	BlockLane []int
	// SpineLane maps spine index to its lane (FatTree only).
	SpineLane []int
	// CutLinks counts directed links rewired into cross-lane mailboxes.
	CutLinks int
	// Lookahead is the minimum cross-lane model delay the cuts guarantee.
	Lookahead time.Duration
}

// cutDelay returns the conservative lookahead of a fabric cut over links
// with the given config: one-way propagation plus the switch pipeline
// latency folded into the cut delivery. Serialization time is additive on
// top and therefore not part of the guarantee.
func cutDelay(link LinkConfig, switchLatency time.Duration) time.Duration {
	return link.Propagation + switchLatency
}

// shardSims resolves the per-block and per-spine lane simulations for a
// group, or (nil, nil) when the fabric is serial.
func shardSims(g *sim.ShardGroup, blocks, spines int) (blockSim []*sim.Simulation, spineSim []*sim.Simulation) {
	if g == nil {
		return nil, nil
	}
	blockSim = make([]*sim.Simulation, blocks)
	for i := range blockSim {
		blockSim[i] = g.Lane(laneOfBlock(i, blocks, g.Lanes()))
	}
	if spines > 0 {
		spineSim = make([]*sim.Simulation, spines)
		for s := range spineSim {
			// Spines are typically fewer than lanes; spread them round-robin
			// so two spines land on different lanes whenever possible.
			spineSim[s] = g.Lane(s % g.Lanes())
		}
	}
	return blockSim, spineSim
}
