// Package netsim models the cluster network: hosts attached to a single
// top-of-rack switch by full-duplex links with finite bandwidth, propagation
// delay, and byte-accurate serialization cost, plus fault injection (loss,
// duplication, reordering) used by the reliability experiments.
//
// Topology matches the paper's testbed (§5.1): every host connects to one
// switch port by a 100 Gbps link. The switch forwards at line rate with a
// fixed pipeline latency; its behaviour is supplied by a SwitchHandler (the
// ASK program from internal/switchd, or a plain forwarder for baselines).
//
// Serialization is charged per frame as WireBytes·8/bandwidth on the sending
// link, which reproduces the paper's goodput model: a data packet with x
// 8-byte tuples costs 8x+78 bytes of wire time (§5.3).
package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Frame is one packet in flight together with its byte accounting.
type Frame struct {
	Src, Dst core.HostID
	Pkt      *wire.Packet
	// WireBytes is the total on-wire cost including L1 framing.
	WireBytes int
	// GoodBytes is the application-payload portion, used for goodput
	// metrics (e.g. 8 bytes per live tuple).
	GoodBytes int
	// Raw, when non-nil, holds the damaged on-wire bytes of a frame that was
	// corrupted or truncated in flight (wire.Codec Encode layout, including
	// the CRC32C trailer). Pkt is nil for such frames: receivers must Decode
	// Raw themselves and quarantine the frame when the checksum fails.
	Raw []byte
	// Owned marks the frame and its packet as exclusively owned by whoever
	// currently holds the frame (clone-elision invariant, DESIGN.md):
	//
	//   - Senders set it when nothing retains the packet after Send — e.g. a
	//     freshly built ACK, or an explicit clone. The link then hands the
	//     frame through by ownership transfer instead of deep-copying it.
	//   - Senders leave it false when they retain the packet (window
	//     retransmission buffers, failover history); the link clones at
	//     delivery exactly as before, and the clone arrives Owned.
	//
	// Every delivered frame is therefore exclusively owned by its receiver,
	// which may mutate the packet freely and should call Release when no
	// reference into it survives.
	Owned bool
}

// Corrupted reports whether the frame was damaged in flight and carries raw
// bytes instead of a decoded packet.
func (f *Frame) Corrupted() bool { return f.Raw != nil }

// Release recycles the frame's packet into the wire free list when the
// caller owns it (see Owned). Receivers call it once they retain no
// reference into the packet; it is a no-op for frames that are not owned or
// already released, so calling it defensively is safe.
func (f *Frame) Release() {
	if f.Owned && f.Pkt != nil {
		f.Pkt.Release()
		f.Pkt = nil
	}
}

// HostHandler receives frames delivered to a host NIC.
type HostHandler interface {
	HandleFrame(f *Frame)
}

// SwitchFabric is the surface a switch program needs from its fabric: where
// it is attached and how it emits frames toward hosts. *Network implements
// it for the single-switch rack; TwoTier's per-TOR ports implement it for
// the multi-rack deployment (§7).
type SwitchFabric interface {
	AttachSwitch(h SwitchHandler)
	SwitchSend(f *Frame)
}

// HostFabric is the surface a host daemon needs from its fabric.
type HostFabric interface {
	AttachHost(id core.HostID, h HostHandler)
	HostSend(f *Frame)
	Uplink(id core.HostID) *Link
}

// SwitchHandler receives every frame entering the switch and drives
// forwarding through the Network's SwitchSend/switch-side API.
type SwitchHandler interface {
	HandleIngress(f *Frame)
}

// Fault configures per-direction fault injection on a link.
type Fault struct {
	// LossProb is the probability a frame is silently dropped.
	LossProb float64
	// DupProb is the probability a frame is delivered twice.
	DupProb float64
	// ReorderProb is the probability a frame is delayed by an extra random
	// amount up to ReorderDelay, letting later frames overtake it.
	ReorderProb  float64
	ReorderDelay time.Duration
	// CorruptProb is the probability a delivered copy of a frame is damaged
	// in flight: the packet is byte-encoded (wire.Codec Encode, CRC32C
	// trailer included), 1–3 random bits of the ASK-owned region are
	// flipped, and the damaged bytes — not the packet — are delivered
	// (Frame.Raw). Requires SetCodec; frames that cannot be byte-encoded
	// (TypeCtrl) are dropped instead, since their checksum would fail at
	// the receiver anyway.
	CorruptProb float64
	// TruncateProb is the probability a delivered copy is cut short at a
	// random byte boundary, modelling a runt frame; like corruption the
	// damaged bytes are delivered via Frame.Raw.
	TruncateProb float64
}

// LinkConfig describes one direction of a host-switch link.
type LinkConfig struct {
	// BandwidthBps is the line rate in bits per second.
	BandwidthBps float64
	// Propagation is the one-way propagation delay.
	Propagation time.Duration
	Fault       Fault
}

// DefaultLinkConfig returns the paper's 100 Gbps host links with a 1 µs
// one-way propagation delay and no faults.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{BandwidthBps: 100e9, Propagation: time.Microsecond}
}

// LinkStats counts traffic on one link direction.
type LinkStats struct {
	TxFrames    int64
	TxWireBytes int64
	TxGoodBytes int64
	Dropped     int64
	Duplicated  int64
	Reordered   int64
	Corrupted   int64
	Truncated   int64
}

// Link is one direction of a point-to-point link.
type Link struct {
	sim       *sim.Simulation
	cfg       LinkConfig
	deliver   func(*Frame)
	busyUntil sim.Time
	// fracNs carries sub-nanosecond serialization debt so the long-run
	// rate is exact despite integer-nanosecond timestamps.
	fracNs float64
	stats  LinkStats
	// override, when non-nil, replaces cfg.Fault at Send time — the chaos
	// orchestrator's runtime fault injection (internal/chaos).
	override *Fault
	// blackhole silently drops every frame after serialization accounting:
	// a severed cable, as opposed to probabilistic loss.
	blackhole bool
	// codec byte-encodes packets for the corruption fault path; zero-valued
	// (KPartBytes == 0) until the fabric's SetCodec is called, in which case
	// corruption degrades to a drop.
	codec wire.Codec
	// scratch is the per-link encode workspace for the corruption/truncation
	// fault path: a Send's packet is byte-encoded into it at most once, and
	// each damaged copy derives from it. Only the exact-size damaged buffer
	// that actually travels is allocated (it must outlive the Send).
	scratch []byte
	// deliverAny adapts deliver to the kernel's arg-carrying event form so
	// the frame-delivery hot path schedules without a per-event closure.
	deliverAny func(any)
	// xroute marks this link as a cross-shard cut (sharded fabrics): it
	// returns the lane simulation that owns the frame's next hop, and the
	// delivery event is injected there xdelay later than the normal arrival
	// time — the switch-latency hop the serial wiring schedules separately
	// on arrival, folded into the cut so the total cross-lane delay is the
	// full propagation + pipeline latency the group's lookahead declares.
	// nil on every link of a serial (ungrouped) fabric, which therefore
	// takes the exact pre-shard delivery path.
	xroute func(*Frame) *sim.Simulation
	xdelay time.Duration
	// Telemetry (telemetry.go): fault-outcome trace events. host/dir label
	// the link in traces; tr is nil unless the network is instrumented.
	tr   *telemetry.Tracer
	host string
	dir  string
}

func newLink(s *sim.Simulation, cfg LinkConfig, deliver func(*Frame)) *Link {
	if cfg.BandwidthBps <= 0 {
		panic("netsim: non-positive bandwidth")
	}
	l := &Link{sim: s, cfg: cfg, deliver: deliver}
	l.deliverAny = func(a any) { l.deliver(a.(*Frame)) }
	return l
}

// Stats returns a copy of the link's counters.
func (l *Link) Stats() LinkStats { return l.stats }

// SetFault replaces the link's fault model at runtime (chaos injection).
// It overrides the configured Fault until ClearFault.
func (l *Link) SetFault(f Fault) { fc := f; l.override = &fc }

// ClearFault restores the link's configured fault model.
func (l *Link) ClearFault() { l.override = nil }

// SetBlackhole turns the link into a black hole (every frame dropped after
// serialization accounting) or restores delivery.
func (l *Link) SetBlackhole(on bool) { l.blackhole = on }

// fault returns the effective fault model for the next Send.
func (l *Link) fault() Fault {
	if l.override != nil {
		return *l.override
	}
	return l.cfg.Fault
}

// NextFree returns the virtual time at which the transmitter finishes the
// currently queued frames; senders can SleepUntil it to model NIC
// backpressure instead of growing the queue without bound.
func (l *Link) NextFree() sim.Time { return l.busyUntil }

// Backlog returns how far ahead of now the transmitter is committed.
func (l *Link) Backlog() time.Duration {
	if l.busyUntil <= l.sim.Now() {
		return 0
	}
	return l.busyUntil.Sub(l.sim.Now())
}

// serialize returns the wire time of n bytes at the link rate, carrying
// sub-nanosecond remainders across calls.
func (l *Link) serialize(n int) time.Duration {
	total := float64(n*8)/l.cfg.BandwidthBps*1e9 + l.fracNs
	d := time.Duration(total)
	l.fracNs = total - float64(d)
	return d
}

// Send enqueues f for transmission. Frames whose sender retains the packet
// (f.Owned == false) are cloned at delivery so receivers may mutate them
// freely without corrupting retransmission buffers; owned frames on the
// common single-copy, undamaged path are handed through by ownership
// transfer with no copy at all (clone elision).
func (l *Link) Send(f *Frame) {
	now := l.sim.Now()
	start := l.busyUntil
	if start < now {
		start = now
	}
	done := start.Add(l.serialize(f.WireBytes))
	l.busyUntil = done
	l.stats.TxFrames++
	l.stats.TxWireBytes += int64(f.WireBytes)
	l.stats.TxGoodBytes += int64(f.GoodBytes)

	if l.blackhole {
		l.stats.Dropped++
		l.traceFault("frame_blackholed", f)
		f.Release() // owned frame dropped: nothing references the packet
		return
	}
	flt := l.fault()
	rng := l.sim.Rand()
	if flt.LossProb > 0 && rng.Float64() < flt.LossProb {
		l.stats.Dropped++
		l.traceFault("frame_dropped", f)
		f.Release()
		return
	}
	copies := 1
	if flt.DupProb > 0 && rng.Float64() < flt.DupProb {
		l.stats.Duplicated++
		l.traceFault("frame_duplicated", f)
		copies = 2
	}
	// handedOff flips when f itself is delivered (sole owned copy): from
	// that point f belongs to the receiver and must not be touched again.
	handedOff := false
	// encoded caches the one-time byte encoding of f for this Send; with a
	// duplicated-and-damaged frame both copies derive from it instead of
	// re-encoding per copy.
	var encoded []byte
	haveEncoded := false
	for i := 0; i < copies; i++ {
		arrive := done.Add(l.cfg.Propagation)
		if flt.ReorderProb > 0 && rng.Float64() < flt.ReorderProb {
			l.stats.Reordered++
			l.traceFault("frame_reordered", f)
			extra := time.Duration(rng.Int63n(int64(flt.ReorderDelay) + 1))
			arrive = arrive.Add(extra)
		}
		// Corruption and truncation are decided per delivered copy, so a
		// duplicate's sibling can arrive intact while this copy is damaged.
		damage := damageNone
		if flt.CorruptProb > 0 && rng.Float64() < flt.CorruptProb {
			l.stats.Corrupted++
			l.traceFault("frame_corrupted", f)
			damage = damageCorrupt
		} else if flt.TruncateProb > 0 && rng.Float64() < flt.TruncateProb {
			l.stats.Truncated++
			l.traceFault("frame_truncated", f)
			damage = damageTruncate
		}
		var g *Frame
		if damage != damageNone {
			if !haveEncoded {
				encoded = l.encodeForDamage(f)
				haveEncoded = true
			}
			g = l.damagedCopy(f, encoded, rng, damage, copies == 1 && !handedOff)
			if g == nil {
				continue // unencodable: damage degrades to a drop
			}
			if g == f {
				handedOff = true
			}
		} else if f.Owned && copies == 1 {
			// Clone elision: the sender relinquished the frame and this is
			// its only delivery — hand it through untouched.
			g = f
			handedOff = true
		} else if f.Raw != nil {
			// An already-damaged frame forwarded without decoding (e.g. by a
			// switch in a mode that doesn't inspect it): the raw bytes travel
			// on, deep-copied so receivers stay independent.
			g = &Frame{Src: f.Src, Dst: f.Dst, WireBytes: f.WireBytes, GoodBytes: f.GoodBytes,
				Raw: append([]byte(nil), f.Raw...), Owned: true}
		} else {
			g = &Frame{Src: f.Src, Dst: f.Dst, WireBytes: f.WireBytes, GoodBytes: f.GoodBytes,
				Pkt: f.Pkt.ClonePooled(), Owned: true}
		}
		if l.xroute != nil {
			l.xroute(g).InjectCall(l.sim, arrive.Add(l.xdelay), l.deliverAny, g)
		} else {
			l.sim.AtCall(arrive, l.deliverAny, g)
		}
	}
	if !handedOff {
		// Every delivered copy was a clone (or dropped); if the sender
		// relinquished f, its packet is now unreferenced.
		f.Release()
	}
}

// damage kinds for one delivered copy.
const (
	damageNone = iota
	damageCorrupt
	damageTruncate
)

// encodeForDamage byte-encodes f once per Send into the link's scratch
// buffer (wire.Codec Encode layout, CRC32C trailer included). It returns nil
// when the frame cannot be encoded — no codec installed, or an opaque
// TypeCtrl payload — in which case damage degrades to a drop. For frames
// already carrying raw bytes the raw buffer itself serves as the source.
func (l *Link) encodeForDamage(f *Frame) []byte {
	if f.Raw != nil {
		return f.Raw
	}
	if l.codec.KPartBytes <= 0 || f.Pkt.Type == wire.TypeCtrl {
		return nil
	}
	buf, err := l.codec.AppendEncode(l.scratch[:0], f.Pkt)
	if err != nil {
		return nil
	}
	l.scratch = buf[:0] // retain capacity for the next damaged Send
	return buf
}

// damagedCopy builds the damaged-bytes frame for one delivered copy: either
// 1–3 random bit flips over the ASK-owned region (header + payload + CRC
// trailer; the opaque Ethernet/IP padding is excluded because flips there
// are semantically inert) or truncation at a random byte boundary. encoded
// is the Send-wide encoding from encodeForDamage (nil = undecodable, the
// damage becomes a drop). When the frame is owned and this is its sole
// delivery, a raw frame is damaged in place with no copy; otherwise the
// damaged bytes get their own exact-size buffer, since they must stay
// stable until the receiver consumes them while the scratch buffer is
// recycled on the next Send.
func (l *Link) damagedCopy(f *Frame, encoded []byte, rng *rand.Rand, kind int, sole bool) *Frame {
	if encoded == nil {
		return nil
	}
	inPlace := sole && f.Owned && f.Raw != nil
	if kind == damageTruncate {
		if len(encoded) == 0 {
			// Nothing left to cut; the (already empty) bytes travel as-is.
			return l.rawCopy(f, encoded, inPlace)
		}
		cut := rng.Intn(len(encoded))
		if inPlace {
			f.Raw = f.Raw[:cut]
			return f
		}
		g := l.rawCopy(f, encoded, false)
		g.Raw = g.Raw[:cut]
		return g
	}
	span := (len(encoded) - wire.EthIPBytes) * 8
	if span <= 0 {
		return l.rawCopy(f, encoded, inPlace) // too short to hold ASK bytes; already undecodable
	}
	g := l.rawCopy(f, encoded, inPlace)
	for flips := 1 + rng.Intn(3); flips > 0; flips-- {
		pos := wire.EthIPBytes*8 + rng.Intn(span)
		g.Raw[pos/8] ^= 1 << (pos % 8)
	}
	return g
}

// rawCopy returns the frame that will carry damaged bytes: f itself when the
// damage may be applied in place, or a fresh frame with its own copy of buf.
func (l *Link) rawCopy(f *Frame, buf []byte, inPlace bool) *Frame {
	if inPlace {
		return f
	}
	return &Frame{Src: f.Src, Dst: f.Dst, WireBytes: f.WireBytes, GoodBytes: f.GoodBytes,
		Raw: append([]byte(nil), buf...), Owned: true}
}

// port is the pair of directed links for one host.
type port struct {
	up   *Link // host -> switch
	down *Link // switch -> host
	host HostHandler
}

// Network is the single-switch fabric.
type Network struct {
	sim *sim.Simulation
	// SwitchLatency is the fixed pipeline traversal latency applied to
	// every frame entering the switch before the handler sees it.
	SwitchLatency time.Duration
	handler       SwitchHandler
	ports         map[core.HostID]*port
	defaultLink   LinkConfig
	codec         wire.Codec
	// unroutable counts switch egress frames whose destination host is not
	// attached. With checksum verification disabled (fault-injection hook) a
	// corrupted header can name a garbage destination; a real switch drops
	// such frames at the routing table rather than crashing.
	unroutable int64
	// ingressAny is the arg-carrying event adapter for the switch-latency
	// hop, bound once so the per-frame schedule allocates no closure.
	ingressAny func(any)
	// tel is the observability sink (telemetry.go); zero unless Instrument
	// was called.
	tel telemetry.Sink
}

// New creates a network on s where every subsequently attached host gets a
// link with the given configuration.
func New(s *sim.Simulation, link LinkConfig) *Network {
	n := &Network{
		sim:           s,
		SwitchLatency: 800 * time.Nanosecond,
		ports:         make(map[core.HostID]*port),
		defaultLink:   link,
	}
	n.ingressAny = func(a any) { n.handler.HandleIngress(a.(*Frame)) }
	return n
}

// Sim returns the simulation the network runs on.
func (n *Network) Sim() *sim.Simulation { return n.sim }

// SetCodec installs the byte codec used by the corruption fault path
// (Fault.CorruptProb/TruncateProb) on every attached and future link. Until
// it is called, corruption degrades to frame loss because links cannot
// byte-encode packets without knowing KPartBytes.
func (n *Network) SetCodec(c wire.Codec) {
	n.codec = c
	// Assigning the same codec to every port commutes; no event is
	// scheduled here, so this iteration's order cannot escape.
	//askcheck:allow(simdeterminism)
	for _, p := range n.ports {
		p.up.codec, p.down.codec = c, c
	}
}

// AttachSwitch installs the switch program. Must be called before traffic.
func (n *Network) AttachSwitch(h SwitchHandler) { n.handler = h }

// AttachHost connects a host with the default link configuration.
func (n *Network) AttachHost(id core.HostID, h HostHandler) {
	n.AttachHostLink(id, h, n.defaultLink)
}

// AttachHostLink connects a host with a specific link configuration.
func (n *Network) AttachHostLink(id core.HostID, h HostHandler, cfg LinkConfig) {
	if _, dup := n.ports[id]; dup {
		panic(fmt.Sprintf("netsim: host %d attached twice", id))
	}
	p := &port{host: h}
	p.up = newLink(n.sim, cfg, func(f *Frame) {
		if n.handler == nil {
			panic("netsim: frame arrived with no switch attached")
		}
		n.sim.AfterCall(n.SwitchLatency, n.ingressAny, f)
	})
	p.down = newLink(n.sim, cfg, func(f *Frame) { p.host.HandleFrame(f) })
	p.up.codec, p.down.codec = n.codec, n.codec
	n.ports[id] = p
	n.instrumentPort(id, p)
}

// HostSend transmits a frame from its Src host toward the switch.
func (n *Network) HostSend(f *Frame) {
	p, ok := n.ports[f.Src]
	if !ok {
		panic(fmt.Sprintf("netsim: send from unattached host %d", f.Src))
	}
	p.up.Send(f)
}

// SwitchSend transmits a frame from the switch to f.Dst. A frame addressed
// to an unattached host is counted and dropped, not a panic: with checksum
// verification disabled, corruption can forge a destination, and a real
// switch routing table drops what it cannot match.
func (n *Network) SwitchSend(f *Frame) {
	p, ok := n.ports[f.Dst]
	if !ok {
		n.unroutable++
		if n.tel.Tr != nil {
			var task int64
			if f.Pkt != nil {
				task = int64(f.Pkt.Task)
			}
			n.tel.Tr.EmitNote(telemetry.CompNetsim, "frame_unroutable", task, fmt.Sprintf("dst=%d", f.Dst))
		}
		f.Release() // dropped at the routing table: the packet is unreferenced
		return
	}
	p.down.Send(f)
}

// Unroutable returns the number of switch egress frames dropped because
// their destination host was not attached.
func (n *Network) Unroutable() int64 { return n.unroutable }

// Uplink returns the host-to-switch link of a host (for stats/backpressure).
func (n *Network) Uplink(id core.HostID) *Link { return n.ports[id].up }

// Downlink returns the switch-to-host link of a host.
func (n *Network) Downlink(id core.HostID) *Link { return n.ports[id].down }

// Hosts returns the IDs of all attached hosts in ascending order (sorted so
// callers that iterate hosts stay deterministic across runs).
func (n *Network) Hosts() []core.HostID {
	ids := make([]core.HostID, 0, len(n.ports))
	for id := range n.ports {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ForwardingSwitch is a trivial SwitchHandler that forwards every frame to
// its destination host — the "NoAggr" fabric used by baselines.
type ForwardingSwitch struct{ Net *Network }

// HandleIngress implements SwitchHandler.
func (fs *ForwardingSwitch) HandleIngress(f *Frame) { fs.Net.SwitchSend(f) }
