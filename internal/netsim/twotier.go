package netsim

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TwoTier is the multi-rack fabric of §7 (Deployment in Multi-rack
// networks): R racks of hosts, each rack with its own top-of-rack switch
// running an ASK program, all TORs connected to a core switch that only
// forwards.
//
// Routing follows the paper's state-bounding rule: a TOR applies its switch
// program only to traffic ENTERING from its own rack's hosts (its leaf
// nodes, whose data-channel state it holds); traffic arriving from the core
// bypasses the program and is delivered straight to the destination host.
// Cross-rack aggregation therefore happens at the receiver host, while
// rack-local traffic enjoys in-network aggregation at its TOR.
type TwoTier struct {
	sim *sim.Simulation
	// SwitchLatency applies per switch traversal (TOR or core).
	SwitchLatency time.Duration
	racks         []*torPort
	hostRack      map[core.HostID]int
	hostPorts     map[core.HostID]*port
	hostLink      LinkConfig
	coreLink      LinkConfig
	codec         wire.Codec
	// coreForwardAny is the arg-carrying event adapter for the core switch
	// hop, bound once (see torPort's adapters).
	coreForwardAny func(any)
	// group is non-nil for a sharded fabric (NewTwoTierSharded): each rack's
	// switch, hosts, and local links live on a lane simulation and the
	// TOR→core uplinks are mailbox cuts. hostRack/hostPorts stay read-only
	// after construction, so lanes may consult them concurrently.
	group *sim.ShardGroup
	// cutLinks counts directed links rewired into cross-lane mailboxes.
	cutLinks int
}

// torPort is one rack's TOR: the SwitchFabric its ASK program attaches to.
// It is the per-rack network-state root for the parallel DES; cross-rack
// traffic leaves it only over the up/down links, whose delivery closures
// are the dynamic boundary a future shard runtime will turn into
// mailboxes.
//
//askcheck:shard
type torPort struct {
	tt      *TwoTier
	rack    int
	handler SwitchHandler
	// ls is the simulation this rack's state lives on: the fabric-wide one
	// for a serial build, the rack's shard lane for a sharded build.
	ls *sim.Simulation
	// up/down are the TOR↔core links.
	up   *Link
	down *Link
	// Arg-carrying event adapters, bound once per port so the per-frame
	// switch-latency hops allocate no closures.
	ingressAny      func(any)
	deliverLocalAny func(any)
}

// NewTwoTier builds a fabric with the given number of racks. hostLink
// configures host↔TOR links, coreLink the TOR↔core links (typically fatter).
func NewTwoTier(s *sim.Simulation, racks int, hostLink, coreLink LinkConfig) *TwoTier {
	return newTwoTier(s, nil, racks, hostLink, coreLink)
}

// NewTwoTierSharded builds the fabric partitioned into `shards` lanes of
// contiguous racks under root's conservative shard group: each rack's TOR
// and host links live on its lane simulation, and the TOR→core uplinks
// become mailbox cuts routed by destination rack with lookahead
// coreLink.Propagation + SwitchLatency. A request that EffectiveShards
// clamps to serial (shards <= 1, or a single rack) returns a fabric built
// by the exact serial path and a nil group.
func NewTwoTierSharded(s *sim.Simulation, racks, shards int, hostLink, coreLink LinkConfig) (*TwoTier, *sim.ShardGroup) {
	eff := EffectiveShards(shards, racks)
	if eff == 0 {
		return newTwoTier(s, nil, racks, hostLink, coreLink), nil
	}
	g := sim.NewShardGroup(s, eff, cutDelay(coreLink, defaultSwitchLatency))
	return newTwoTier(s, g, racks, hostLink, coreLink), g
}

// defaultSwitchLatency is the pipeline traversal latency both fabrics
// start with; the shard lookahead is computed from it at construction, so
// lowering SwitchLatency on a sharded fabric afterwards is rejected by
// the kernel's lookahead check at the first cut delivery.
const defaultSwitchLatency = 800 * time.Nanosecond

func newTwoTier(s *sim.Simulation, g *sim.ShardGroup, racks int, hostLink, coreLink LinkConfig) *TwoTier {
	if racks <= 0 {
		panic("netsim: need at least one rack")
	}
	tt := &TwoTier{
		sim:           s,
		SwitchLatency: defaultSwitchLatency,
		hostRack:      make(map[core.HostID]int),
		hostPorts:     make(map[core.HostID]*port),
		hostLink:      hostLink,
		coreLink:      coreLink,
		group:         g,
	}
	tt.coreForwardAny = func(a any) { tt.coreForward(a.(*Frame)) }
	rackSim, _ := shardSims(g, racks, 0)
	for r := 0; r < racks; r++ {
		tp := &torPort{tt: tt, rack: r, ls: s}
		if rackSim != nil {
			tp.ls = rackSim[r]
		}
		ls := tp.ls
		tp.ingressAny = func(a any) { tp.ingress(a.(*Frame)) }
		tp.deliverLocalAny = func(a any) { tp.deliverLocal(a.(*Frame)) }
		if g == nil {
			tp.up = newLink(s, coreLink, func(f *Frame) {
				s.AfterCall(tt.SwitchLatency, tt.coreForwardAny, f)
			})
		} else {
			// Mailbox cut: delivery is injected into the destination rack's
			// lane, with the core's pipeline hop folded into the cut delay.
			tp.up = newLink(ls, coreLink, func(f *Frame) { tt.coreForward(f) })
			tp.up.xroute = func(f *Frame) *sim.Simulation {
				return tt.racks[tt.hostRack[f.Dst]].ls
			}
			tp.up.xdelay = tt.SwitchLatency
			tt.cutLinks++
		}
		tp.down = newLink(ls, coreLink, func(f *Frame) {
			// From the core into the TOR: bypass the program (§7) and
			// deliver to the local destination host.
			ls.AfterCall(tt.SwitchLatency, tp.deliverLocalAny, f)
		})
		tt.racks = append(tt.racks, tp)
	}
	return tt
}

// Group returns the shard group of a sharded fabric (nil when serial).
func (tt *TwoTier) Group() *sim.ShardGroup { return tt.group }

// RackSim returns the simulation rack r's state must be constructed on:
// its shard lane for a sharded fabric, the fabric-wide simulation
// otherwise. Switch programs and host daemons of rack r must schedule
// only here.
func (tt *TwoTier) RackSim(r int) *sim.Simulation { return tt.racks[r].ls }

// Layout reports the lane assignment (zero value when serial).
func (tt *TwoTier) Layout() ShardLayout {
	if tt.group == nil {
		return ShardLayout{}
	}
	lay := ShardLayout{
		Lanes:     tt.group.Lanes(),
		BlockLane: make([]int, len(tt.racks)),
		CutLinks:  tt.cutLinks,
		Lookahead: tt.group.Lookahead(),
	}
	for r, tp := range tt.racks {
		lay.BlockLane[r] = tp.ls.ShardLane()
	}
	return lay
}

// SetCodec installs the byte codec used by the corruption fault path on
// every link in the fabric (host↔TOR and TOR↔core, attached and future).
func (tt *TwoTier) SetCodec(c wire.Codec) {
	tt.codec = c
	for _, tp := range tt.racks {
		tp.up.codec, tp.down.codec = c, c
	}
	// Assigning the same codec to every port commutes; no event is
	// scheduled here, so this iteration's order cannot escape.
	//askcheck:allow(simdeterminism)
	for _, p := range tt.hostPorts {
		p.up.codec, p.down.codec = c, c
	}
}

// Racks returns the rack count.
func (tt *TwoTier) Racks() int { return len(tt.racks) }

// TOR returns rack r's switch attachment point (a SwitchFabric).
func (tt *TwoTier) TOR(r int) SwitchFabric { return tt.racks[r] }

// RackOf returns the rack a host lives in.
func (tt *TwoTier) RackOf(id core.HostID) int { return tt.hostRack[id] }

// AttachHostRack connects a host to rack r's TOR.
func (tt *TwoTier) AttachHostRack(r int, id core.HostID, h HostHandler) {
	if _, dup := tt.hostPorts[id]; dup {
		panic(fmt.Sprintf("netsim: host %d attached twice", id))
	}
	if r < 0 || r >= len(tt.racks) {
		panic(fmt.Sprintf("netsim: rack %d out of range", r))
	}
	tp := tt.racks[r]
	ls := tp.ls
	p := &port{host: h}
	p.up = newLink(ls, tt.hostLink, func(f *Frame) {
		ls.AfterCall(tt.SwitchLatency, tp.ingressAny, f)
	})
	p.down = newLink(ls, tt.hostLink, func(f *Frame) { p.host.HandleFrame(f) })
	p.up.codec, p.down.codec = tt.codec, tt.codec
	tt.hostPorts[id] = p
	tt.hostRack[id] = r
}

// AttachHost implements HostFabric for single-rack convenience (rack 0).
func (tt *TwoTier) AttachHost(id core.HostID, h HostHandler) { tt.AttachHostRack(0, id, h) }

// HostSend transmits a frame from its Src host toward its rack's TOR.
func (tt *TwoTier) HostSend(f *Frame) {
	p, ok := tt.hostPorts[f.Src]
	if !ok {
		panic(fmt.Sprintf("netsim: send from unattached host %d", f.Src))
	}
	p.up.Send(f)
}

// Uplink returns a host's uplink (for backpressure and stats).
func (tt *TwoTier) Uplink(id core.HostID) *Link { return tt.hostPorts[id].up }

// Downlink returns a host's downlink.
func (tt *TwoTier) Downlink(id core.HostID) *Link { return tt.hostPorts[id].down }

// CoreUplink returns rack r's TOR→core link (for stats).
func (tt *TwoTier) CoreUplink(r int) *Link { return tt.racks[r].up }

// coreForward routes a frame arriving at the core toward its rack.
func (tt *TwoTier) coreForward(f *Frame) {
	r, ok := tt.hostRack[f.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: core routing to unattached host %d", f.Dst))
	}
	tt.racks[r].down.Send(f)
}

// ingress runs rack-local traffic through the TOR's switch program.
func (tp *torPort) ingress(f *Frame) {
	if tp.handler == nil {
		panic(fmt.Sprintf("netsim: rack %d TOR has no switch attached", tp.rack))
	}
	tp.handler.HandleIngress(f)
}

// deliverLocal hands a frame from the core to the destination host in this
// rack.
func (tp *torPort) deliverLocal(f *Frame) {
	p, ok := tp.tt.hostPorts[f.Dst]
	if !ok || tp.tt.hostRack[f.Dst] != tp.rack {
		panic(fmt.Sprintf("netsim: rack %d asked to deliver to foreign host %d", tp.rack, f.Dst))
	}
	p.down.Send(f)
}

// AttachSwitch implements SwitchFabric for the TOR.
func (tp *torPort) AttachSwitch(h SwitchHandler) { tp.handler = h }

// SwitchSend implements SwitchFabric: the TOR's program emits a frame,
// which goes to a local host directly or over the core to a remote rack.
func (tp *torPort) SwitchSend(f *Frame) {
	r, ok := tp.tt.hostRack[f.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: TOR %d sending to unattached host %d", tp.rack, f.Dst))
	}
	if r == tp.rack {
		tp.tt.hostPorts[f.Dst].down.Send(f)
		return
	}
	tp.up.Send(f)
}
