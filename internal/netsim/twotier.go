package netsim

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TwoTier is the multi-rack fabric of §7 (Deployment in Multi-rack
// networks): R racks of hosts, each rack with its own top-of-rack switch
// running an ASK program, all TORs connected to a core switch that only
// forwards.
//
// Routing follows the paper's state-bounding rule: a TOR applies its switch
// program only to traffic ENTERING from its own rack's hosts (its leaf
// nodes, whose data-channel state it holds); traffic arriving from the core
// bypasses the program and is delivered straight to the destination host.
// Cross-rack aggregation therefore happens at the receiver host, while
// rack-local traffic enjoys in-network aggregation at its TOR.
type TwoTier struct {
	sim *sim.Simulation
	// SwitchLatency applies per switch traversal (TOR or core).
	SwitchLatency time.Duration
	racks         []*torPort
	hostRack      map[core.HostID]int
	hostPorts     map[core.HostID]*port
	hostLink      LinkConfig
	coreLink      LinkConfig
	codec         wire.Codec
	// coreForwardAny is the arg-carrying event adapter for the core switch
	// hop, bound once (see torPort's adapters).
	coreForwardAny func(any)
}

// torPort is one rack's TOR: the SwitchFabric its ASK program attaches to.
// It is the per-rack network-state root for the parallel DES; cross-rack
// traffic leaves it only over the up/down links, whose delivery closures
// are the dynamic boundary a future shard runtime will turn into
// mailboxes.
//
//askcheck:shard
type torPort struct {
	tt      *TwoTier
	rack    int
	handler SwitchHandler
	// up/down are the TOR↔core links.
	up   *Link
	down *Link
	// Arg-carrying event adapters, bound once per port so the per-frame
	// switch-latency hops allocate no closures.
	ingressAny      func(any)
	deliverLocalAny func(any)
}

// NewTwoTier builds a fabric with the given number of racks. hostLink
// configures host↔TOR links, coreLink the TOR↔core links (typically fatter).
func NewTwoTier(s *sim.Simulation, racks int, hostLink, coreLink LinkConfig) *TwoTier {
	if racks <= 0 {
		panic("netsim: need at least one rack")
	}
	tt := &TwoTier{
		sim:           s,
		SwitchLatency: 800 * time.Nanosecond,
		hostRack:      make(map[core.HostID]int),
		hostPorts:     make(map[core.HostID]*port),
		hostLink:      hostLink,
		coreLink:      coreLink,
	}
	tt.coreForwardAny = func(a any) { tt.coreForward(a.(*Frame)) }
	for r := 0; r < racks; r++ {
		tp := &torPort{tt: tt, rack: r}
		tp.ingressAny = func(a any) { tp.ingress(a.(*Frame)) }
		tp.deliverLocalAny = func(a any) { tp.deliverLocal(a.(*Frame)) }
		tp.up = newLink(s, coreLink, func(f *Frame) {
			s.AfterCall(tt.SwitchLatency, tt.coreForwardAny, f)
		})
		tp.down = newLink(s, coreLink, func(f *Frame) {
			// From the core into the TOR: bypass the program (§7) and
			// deliver to the local destination host.
			s.AfterCall(tt.SwitchLatency, tp.deliverLocalAny, f)
		})
		tt.racks = append(tt.racks, tp)
	}
	return tt
}

// SetCodec installs the byte codec used by the corruption fault path on
// every link in the fabric (host↔TOR and TOR↔core, attached and future).
func (tt *TwoTier) SetCodec(c wire.Codec) {
	tt.codec = c
	for _, tp := range tt.racks {
		tp.up.codec, tp.down.codec = c, c
	}
	// Assigning the same codec to every port commutes; no event is
	// scheduled here, so this iteration's order cannot escape.
	//askcheck:allow(simdeterminism)
	for _, p := range tt.hostPorts {
		p.up.codec, p.down.codec = c, c
	}
}

// Racks returns the rack count.
func (tt *TwoTier) Racks() int { return len(tt.racks) }

// TOR returns rack r's switch attachment point (a SwitchFabric).
func (tt *TwoTier) TOR(r int) SwitchFabric { return tt.racks[r] }

// RackOf returns the rack a host lives in.
func (tt *TwoTier) RackOf(id core.HostID) int { return tt.hostRack[id] }

// AttachHostRack connects a host to rack r's TOR.
func (tt *TwoTier) AttachHostRack(r int, id core.HostID, h HostHandler) {
	if _, dup := tt.hostPorts[id]; dup {
		panic(fmt.Sprintf("netsim: host %d attached twice", id))
	}
	if r < 0 || r >= len(tt.racks) {
		panic(fmt.Sprintf("netsim: rack %d out of range", r))
	}
	tp := tt.racks[r]
	p := &port{host: h}
	p.up = newLink(tt.sim, tt.hostLink, func(f *Frame) {
		tt.sim.AfterCall(tt.SwitchLatency, tp.ingressAny, f)
	})
	p.down = newLink(tt.sim, tt.hostLink, func(f *Frame) { p.host.HandleFrame(f) })
	p.up.codec, p.down.codec = tt.codec, tt.codec
	tt.hostPorts[id] = p
	tt.hostRack[id] = r
}

// AttachHost implements HostFabric for single-rack convenience (rack 0).
func (tt *TwoTier) AttachHost(id core.HostID, h HostHandler) { tt.AttachHostRack(0, id, h) }

// HostSend transmits a frame from its Src host toward its rack's TOR.
func (tt *TwoTier) HostSend(f *Frame) {
	p, ok := tt.hostPorts[f.Src]
	if !ok {
		panic(fmt.Sprintf("netsim: send from unattached host %d", f.Src))
	}
	p.up.Send(f)
}

// Uplink returns a host's uplink (for backpressure and stats).
func (tt *TwoTier) Uplink(id core.HostID) *Link { return tt.hostPorts[id].up }

// Downlink returns a host's downlink.
func (tt *TwoTier) Downlink(id core.HostID) *Link { return tt.hostPorts[id].down }

// CoreUplink returns rack r's TOR→core link (for stats).
func (tt *TwoTier) CoreUplink(r int) *Link { return tt.racks[r].up }

// coreForward routes a frame arriving at the core toward its rack.
func (tt *TwoTier) coreForward(f *Frame) {
	r, ok := tt.hostRack[f.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: core routing to unattached host %d", f.Dst))
	}
	tt.racks[r].down.Send(f)
}

// ingress runs rack-local traffic through the TOR's switch program.
func (tp *torPort) ingress(f *Frame) {
	if tp.handler == nil {
		panic(fmt.Sprintf("netsim: rack %d TOR has no switch attached", tp.rack))
	}
	tp.handler.HandleIngress(f)
}

// deliverLocal hands a frame from the core to the destination host in this
// rack.
func (tp *torPort) deliverLocal(f *Frame) {
	p, ok := tp.tt.hostPorts[f.Dst]
	if !ok || tp.tt.hostRack[f.Dst] != tp.rack {
		panic(fmt.Sprintf("netsim: rack %d asked to deliver to foreign host %d", tp.rack, f.Dst))
	}
	p.down.Send(f)
}

// AttachSwitch implements SwitchFabric for the TOR.
func (tp *torPort) AttachSwitch(h SwitchHandler) { tp.handler = h }

// SwitchSend implements SwitchFabric: the TOR's program emits a frame,
// which goes to a local host directly or over the core to a remote rack.
func (tp *torPort) SwitchSend(f *Frame) {
	r, ok := tp.tt.hostRack[f.Dst]
	if !ok {
		panic(fmt.Sprintf("netsim: TOR %d sending to unattached host %d", tp.rack, f.Dst))
	}
	if r == tp.rack {
		tp.tt.hostPorts[f.Dst].down.Send(f)
		return
	}
	tp.up.Send(f)
}
