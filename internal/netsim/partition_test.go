package netsim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

type nullHost struct{}

func (nullHost) HandleFrame(f *Frame) {}

// checkLayout verifies the invariants every sharded layout must satisfy:
// lanes cover [0, Lanes), block assignment is contiguous and every lane
// owns at least one block.
func checkLayout(t *testing.T, lay ShardLayout) {
	t.Helper()
	used := make([]bool, lay.Lanes)
	prev := 0
	for i, lane := range lay.BlockLane {
		if lane < 0 || lane >= lay.Lanes {
			t.Fatalf("block %d on lane %d, want [0,%d)", i, lane, lay.Lanes)
		}
		if lane < prev {
			t.Fatalf("block lanes not contiguous: %v", lay.BlockLane)
		}
		prev = lane
		used[lane] = true
	}
	for lane, u := range used {
		if !u {
			t.Fatalf("lane %d owns no blocks: %v", lane, lay.BlockLane)
		}
	}
	for _, lane := range lay.SpineLane {
		if lane < 0 || lane >= lay.Lanes {
			t.Fatalf("spine lane %d out of range [0,%d)", lane, lay.Lanes)
		}
	}
	if lay.Lookahead <= 0 {
		t.Fatalf("non-positive lookahead %v", lay.Lookahead)
	}
}

func TestEffectiveShards(t *testing.T) {
	cases := []struct{ req, blocks, want int }{
		{0, 4, 0}, {1, 4, 0}, {2, 4, 2}, {4, 4, 4},
		{8, 4, 4}, {4, 1, 0}, {2, 1, 0}, {3, 8, 3}, {1, 1, 0},
	}
	for _, c := range cases {
		if got := EffectiveShards(c.req, c.blocks); got != c.want {
			t.Errorf("EffectiveShards(%d, %d) = %d, want %d", c.req, c.blocks, got, c.want)
		}
	}
}

func TestTwoTierPartition(t *testing.T) {
	cases := []struct {
		name         string
		racks, req   int
		wantLanes    int // 0 = serial
	}{
		{"serial-1shard", 4, 1, 0},
		{"serial-1rack", 1, 8, 0},
		{"2of4", 4, 2, 2},
		{"4of4", 4, 4, 4},
		{"clamp8to4", 4, 8, 4},
		{"3of8", 8, 3, 3},
		{"2of5", 5, 2, 2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			root := sim.New(1)
			hostLink := DefaultLinkConfig()
			coreLink := LinkConfig{BandwidthBps: 400e9, Propagation: 2 * time.Microsecond}
			tt, g := NewTwoTierSharded(root, c.racks, c.req, hostLink, coreLink)
			// Two hosts per rack so host-link ownership is exercised.
			for r := 0; r < c.racks; r++ {
				tt.AttachHostRack(r, core.HostID(2*r), nullHost{})
				tt.AttachHostRack(r, core.HostID(2*r+1), nullHost{})
			}
			if c.wantLanes == 0 {
				if g != nil || tt.Group() != nil {
					t.Fatalf("expected serial build, got group %v", g)
				}
				lay := tt.Layout()
				if lay.Lanes != 0 {
					t.Fatalf("serial layout reports %d lanes", lay.Lanes)
				}
				// Serial seam: every link lives on the root simulation with no
				// mailbox rewiring.
				for r := 0; r < c.racks; r++ {
					if tt.RackSim(r) != root {
						t.Fatalf("serial rack %d not on root sim", r)
					}
					tp := tt.racks[r]
					for _, l := range []*Link{tp.up, tp.down} {
						if l.sim != root || l.xroute != nil {
							t.Fatalf("serial rack %d TOR link rewired", r)
						}
					}
				}
				for id, p := range tt.hostPorts {
					if p.up.sim != root || p.down.sim != root || p.up.xroute != nil || p.down.xroute != nil {
						t.Fatalf("serial host %d link rewired", id)
					}
				}
				return
			}
			if g == nil || g.Lanes() != c.wantLanes {
				t.Fatalf("got group %v, want %d lanes", g, c.wantLanes)
			}
			lay := tt.Layout()
			if lay.Lanes != c.wantLanes {
				t.Fatalf("layout lanes = %d, want %d", lay.Lanes, c.wantLanes)
			}
			checkLayout(t, lay)
			if want := coreLink.Propagation + tt.SwitchLatency; lay.Lookahead != want {
				t.Fatalf("lookahead = %v, want %v", lay.Lookahead, want)
			}
			// Exactly one TOR→core cut per rack.
			if lay.CutLinks != c.racks {
				t.Fatalf("cut links = %d, want %d", lay.CutLinks, c.racks)
			}
			for r := 0; r < c.racks; r++ {
				tp := tt.racks[r]
				lane := g.Lane(lay.BlockLane[r])
				if tp.ls != lane || tt.RackSim(r) != lane {
					t.Fatalf("rack %d state not on its lane", r)
				}
				// The uplink is the mailbox cut; the downlink and both host
				// links are lane-local.
				if tp.up.sim != lane || tp.up.xroute == nil || tp.up.xdelay != tt.SwitchLatency {
					t.Fatalf("rack %d uplink not a cut on its lane", r)
				}
				if tp.down.sim != lane || tp.down.xroute != nil {
					t.Fatalf("rack %d downlink not lane-local", r)
				}
			}
			for id, p := range tt.hostPorts {
				lane := g.Lane(lay.BlockLane[tt.hostRack[id]])
				if p.up.sim != lane || p.down.sim != lane || p.up.xroute != nil || p.down.xroute != nil {
					t.Fatalf("host %d links not lane-local", id)
				}
			}
			// The cut routes by destination rack lane.
			src := tt.racks[0]
			for r := 0; r < c.racks; r++ {
				f := &Frame{Dst: core.HostID(2 * r)}
				if got := src.up.xroute(f); got != g.Lane(lay.BlockLane[r]) {
					t.Fatalf("cut route for rack %d landed on lane %d", r, got.ShardLane())
				}
			}
		})
	}
}

func TestFatTreePartition(t *testing.T) {
	cases := []struct {
		name           string
		spines, leaves int
		req, wantLanes int
	}{
		{"serial-1shard", 2, 4, 1, 0},
		{"serial-1leaf", 2, 1, 8, 0},
		{"degenerate-1spine-2leaves", 1, 2, 2, 2},
		{"2of4", 2, 4, 2, 2},
		{"4of4", 2, 4, 4, 4},
		{"clamp8to4", 2, 4, 8, 4},
		{"3of8-3spines", 3, 8, 4, 4},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			root := sim.New(1)
			hostLink := DefaultLinkConfig()
			fabricLink := LinkConfig{BandwidthBps: 400e9, Propagation: 2 * time.Microsecond}
			ft, g := NewFatTreeSharded(root, c.spines, c.leaves, c.req, hostLink, fabricLink)
			for l := 0; l < c.leaves; l++ {
				ft.AttachHostLeaf(l, core.HostID(2*l), nullHost{})
				ft.AttachHostLeaf(l, core.HostID(2*l+1), nullHost{})
			}
			if c.wantLanes == 0 {
				if g != nil || ft.Group() != nil {
					t.Fatalf("expected serial build, got group %v", g)
				}
				for l := 0; l < c.leaves; l++ {
					if ft.LeafSim(l) != root {
						t.Fatalf("serial leaf %d not on root sim", l)
					}
					for _, lk := range ft.leaves[l].up {
						if lk.sim != root || lk.xroute != nil {
							t.Fatalf("serial leaf %d uplink rewired", l)
						}
					}
				}
				for s := 0; s < c.spines; s++ {
					if ft.SpineSim(s) != root {
						t.Fatalf("serial spine %d not on root sim", s)
					}
					for _, lk := range ft.spines[s].down {
						if lk.sim != root || lk.xroute != nil {
							t.Fatalf("serial spine %d downlink rewired", s)
						}
					}
				}
				return
			}
			if g == nil || g.Lanes() != c.wantLanes {
				t.Fatalf("got group %v, want %d lanes", g, c.wantLanes)
			}
			lay := ft.Layout()
			checkLayout(t, lay)
			if want := fabricLink.Propagation + ft.SwitchLatency; lay.Lookahead != want {
				t.Fatalf("lookahead = %v, want %v", lay.Lookahead, want)
			}
			// The whole bipartite mesh is cut: 2 directed links per
			// (leaf, spine) pair.
			if want := 2 * c.spines * c.leaves; lay.CutLinks != want {
				t.Fatalf("cut links = %d, want %d", lay.CutLinks, want)
			}
			for s := 0; s < c.spines; s++ {
				if want := s % c.wantLanes; lay.SpineLane[s] != want {
					t.Fatalf("spine %d on lane %d, want %d", s, lay.SpineLane[s], want)
				}
			}
			for l := 0; l < c.leaves; l++ {
				lp := ft.leaves[l]
				lane := g.Lane(lay.BlockLane[l])
				if lp.ls != lane || ft.LeafSim(l) != lane {
					t.Fatalf("leaf %d state not on its lane", l)
				}
				for s, lk := range lp.up {
					if lk.sim != lane || lk.xroute == nil || lk.xdelay != ft.SwitchLatency {
						t.Fatalf("leaf %d uplink %d not a cut on its lane", l, s)
					}
					if got := lk.xroute(nil); got != ft.spines[s].ls {
						t.Fatalf("leaf %d uplink %d routes to wrong lane", l, s)
					}
				}
			}
			for s := 0; s < c.spines; s++ {
				spp := ft.spines[s]
				lane := g.Lane(lay.SpineLane[s])
				if spp.ls != lane || ft.SpineSim(s) != lane {
					t.Fatalf("spine %d state not on its lane", s)
				}
				for l, lk := range spp.down {
					if lk.sim != lane || lk.xroute == nil {
						t.Fatalf("spine %d downlink %d not a cut on its lane", s, l)
					}
					if got := lk.xroute(nil); got != ft.leaves[l].ls {
						t.Fatalf("spine %d downlink %d routes to wrong lane", s, l)
					}
				}
			}
			for id, p := range ft.hostPorts {
				lane := g.Lane(lay.BlockLane[ft.hostLeaf[id]])
				if p.up.sim != lane || p.down.sim != lane || p.up.xroute != nil || p.down.xroute != nil {
					t.Fatalf("host %d links not lane-local", id)
				}
			}
		})
	}
}

// TestShardedTwoTierTrafficMatchesSerial pushes frames host→TOR→core→
// TOR→host across racks on both builds and requires identical delivery
// traces — the netsim-level determinism check below the full ask stack.
func TestShardedTwoTierTrafficMatchesSerial(t *testing.T) {
	type delivery struct {
		at  sim.Time
		src core.HostID
	}
	run := func(shards int) [8][]delivery {
		root := sim.New(3)
		hostLink := DefaultLinkConfig()
		coreLink := LinkConfig{BandwidthBps: 400e9, Propagation: 2 * time.Microsecond}
		tt, _ := NewTwoTierSharded(root, 4, shards, hostLink, coreLink)
		// Per-host slots in a fixed array: lanes append concurrently during
		// parallel windows, and distinct array elements share no state.
		var got [8][]delivery
		for r := 0; r < 4; r++ {
			for i := 0; i < 2; i++ {
				id := core.HostID(2*r + i)
				ls := tt.RackSim(r)
				slot := &got[id]
				tt.AttachHostRack(r, id, hostFunc(func(f *Frame) {
					*slot = append(*slot, delivery{at: ls.Now(), src: f.Src})
					f.Release()
				}))
			}
			tt.TOR(r).AttachSwitch(forwardAll{tt.TOR(r)})
		}
		// Every host streams 5 frames to the "opposite" host two racks away.
		for r := 0; r < 4; r++ {
			for i := 0; i < 2; i++ {
				src := core.HostID(2*r + i)
				dst := core.HostID((2*r + 4 + i) % 8)
				ls := tt.RackSim(r)
				for k := 0; k < 5; k++ {
					f := &Frame{Src: src, Dst: dst, WireBytes: 128 + 16*k, Owned: true}
					at := sim.Time((k + 1) * int(time.Microsecond))
					func(f *Frame, at sim.Time) {
						ls.At(at, func() { tt.HostSend(f) })
					}(f, at)
				}
			}
		}
		root.Run(0)
		return got
	}
	serial := run(1)
	for _, shards := range []int{2, 4} {
		sharded := run(shards)
		for id, want := range serial {
			gotd := sharded[id]
			if len(gotd) != len(want) {
				t.Fatalf("shards=%d host %d: %d deliveries, want %d", shards, id, len(gotd), len(want))
			}
			for i := range want {
				if gotd[i] != want[i] {
					t.Fatalf("shards=%d host %d delivery %d = %+v, want %+v", shards, id, i, gotd[i], want[i])
				}
			}
		}
	}
}

// hostFunc adapts a func to HostHandler.
type hostFunc func(*Frame)

func (h hostFunc) HandleFrame(f *Frame) { h(f) }

// forwardAll forwards every ingress frame to its destination.
type forwardAll struct{ fab SwitchFabric }

func (fw forwardAll) HandleIngress(f *Frame) { fw.fab.SwitchSend(f) }
