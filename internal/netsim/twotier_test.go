package netsim

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// recordingTOR counts frames its program sees and forwards them.
type recordingTOR struct {
	fab  SwitchFabric
	seen int
}

func (r *recordingTOR) HandleIngress(f *Frame) {
	r.seen++
	r.fab.SwitchSend(f)
}

func buildTwoTier(t *testing.T, seed int64) (*sim.Simulation, *TwoTier, map[core.HostID]*collector, []*recordingTOR) {
	t.Helper()
	s := sim.New(seed)
	core100 := DefaultLinkConfig()
	tt := NewTwoTier(s, 2, DefaultLinkConfig(), core100)
	tors := make([]*recordingTOR, 2)
	for r := 0; r < 2; r++ {
		tor := &recordingTOR{fab: tt.TOR(r)}
		tt.TOR(r).AttachSwitch(tor)
		tors[r] = tor
	}
	// Hosts 0,1 in rack 0; hosts 2,3 in rack 1.
	cs := make(map[core.HostID]*collector)
	for h := core.HostID(0); h < 4; h++ {
		c := &collector{s: s}
		cs[h] = c
		tt.AttachHostRack(int(h)/2, h, c)
	}
	return s, tt, cs, tors
}

func TestTwoTierIntraRack(t *testing.T) {
	s, tt, cs, tors := buildTwoTier(t, 1)
	f := frame(0, 1, 4)
	tt.HostSend(f)
	s.Run(0)
	if len(cs[1].frames) != 1 {
		t.Fatalf("intra-rack frame not delivered")
	}
	if tors[0].seen != 1 || tors[1].seen != 0 {
		t.Fatalf("TOR programs saw %d/%d frames, want 1/0", tors[0].seen, tors[1].seen)
	}
}

func TestTwoTierCrossRackBypassesRemoteTOR(t *testing.T) {
	s, tt, cs, tors := buildTwoTier(t, 1)
	tt.HostSend(frame(0, 3, 4)) // rack 0 → rack 1
	s.Run(0)
	if len(cs[3].frames) != 1 {
		t.Fatal("cross-rack frame not delivered")
	}
	// §7: only the sender's TOR runs the program; the receiver's TOR is
	// bypassed for traffic arriving from the core.
	if tors[0].seen != 1 {
		t.Fatalf("sender TOR saw %d frames, want 1", tors[0].seen)
	}
	if tors[1].seen != 0 {
		t.Fatalf("receiver TOR program saw %d frames, want 0 (bypass)", tors[1].seen)
	}
}

func TestTwoTierCrossRackLatency(t *testing.T) {
	s, tt, cs, _ := buildTwoTier(t, 1)
	tt.HostSend(frame(0, 3, 32)) // 334 B
	s.Run(0)
	// Path: host ser + prop, TOR latency, TOR→core ser + prop, core
	// latency, core→TOR ser + prop, TOR latency, TOR→host ser + prop.
	bw := 100e9
	ser := time.Duration(float64(334*8) / bw * float64(time.Second))
	want := sim.Time(0).Add(4*ser + 4*time.Microsecond + 3*tt.SwitchLatency)
	if got := cs[3].at[0]; got != want {
		t.Fatalf("arrival %v, want %v", got, want)
	}
}

func TestTwoTierHostLookups(t *testing.T) {
	_, tt, _, _ := buildTwoTier(t, 1)
	if tt.Racks() != 2 {
		t.Fatalf("Racks = %d", tt.Racks())
	}
	if tt.RackOf(0) != 0 || tt.RackOf(3) != 1 {
		t.Fatal("RackOf wrong")
	}
	if tt.Uplink(2) == nil || tt.Downlink(2) == nil || tt.CoreUplink(1) == nil {
		t.Fatal("link accessors nil")
	}
}

func TestTwoTierPanicsOnMisuse(t *testing.T) {
	s := sim.New(1)
	tt := NewTwoTier(s, 1, DefaultLinkConfig(), DefaultLinkConfig())
	c := &collector{s: s}
	tt.AttachHostRack(0, 1, c)
	for name, fn := range map[string]func(){
		"double attach":   func() { tt.AttachHostRack(0, 1, c) },
		"bad rack":        func() { tt.AttachHostRack(5, 2, c) },
		"unattached send": func() { tt.HostSend(frame(9, 1, 1)) },
		"zero racks":      func() { NewTwoTier(s, 0, DefaultLinkConfig(), DefaultLinkConfig()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTwoTierCoreBottleneck(t *testing.T) {
	// Cross-rack flows share the TOR→core uplink: its stats must account
	// every cross-rack frame and no intra-rack ones.
	s, tt, _, _ := buildTwoTier(t, 1)
	for i := 0; i < 50; i++ {
		tt.HostSend(frame(0, 3, 32)) // cross
		tt.HostSend(frame(0, 1, 32)) // intra
	}
	s.Run(0)
	if got := tt.CoreUplink(0).Stats().TxFrames; got != 50 {
		t.Fatalf("core uplink carried %d frames, want 50", got)
	}
}
