package netsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/wire"
)

type collector struct {
	frames []*Frame
	at     []sim.Time
	s      *sim.Simulation
}

func (c *collector) HandleFrame(f *Frame) {
	c.frames = append(c.frames, f)
	c.at = append(c.at, c.s.Now())
}

func testNet(seed int64, cfg LinkConfig, hosts ...core.HostID) (*sim.Simulation, *Network, map[core.HostID]*collector) {
	s := sim.New(seed)
	n := New(s, cfg)
	n.AttachSwitch(&ForwardingSwitch{Net: n})
	cs := make(map[core.HostID]*collector)
	for _, h := range hosts {
		c := &collector{s: s}
		cs[h] = c
		n.AttachHost(h, c)
	}
	return s, n, cs
}

func frame(src, dst core.HostID, slots int) *Frame {
	p := &wire.Packet{Type: wire.TypeData, Slots: make([]wire.Slot, slots)}
	return &Frame{Src: src, Dst: dst, Pkt: p, WireBytes: p.WireBytes(4), GoodBytes: slots * 8}
}

func TestDeliveryAndLatency(t *testing.T) {
	cfg := DefaultLinkConfig() // 100Gbps, 1µs propagation
	s, n, cs := testNet(1, cfg, 1, 2)
	f := frame(1, 2, 32) // 334 bytes on the wire
	n.HostSend(f)
	s.Run(0)
	got := cs[2].frames
	if len(got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(got))
	}
	// Expected latency: 2 serializations (uplink+downlink) + 2 propagation
	// + switch latency. 334B at 100Gbps = 26.72ns each.
	bw := 100e9
	ser := time.Duration(float64(334*8) / bw * float64(time.Second))
	want := sim.Time(0).Add(2*ser + 2*time.Microsecond + n.SwitchLatency)
	if cs[2].at[0] != want {
		t.Fatalf("arrival at %v, want %v", cs[2].at[0], want)
	}
}

func TestSerializationThroughput(t *testing.T) {
	// Sending N frames back-to-back must take N × serialization time:
	// the link is the bottleneck and enforces line rate.
	cfg := DefaultLinkConfig()
	s, n, cs := testNet(1, cfg, 1, 2)
	const N = 1000
	for i := 0; i < N; i++ {
		n.HostSend(frame(1, 2, 32))
	}
	serAll := n.Uplink(1).NextFree() // all frames queued at t=0, so the
	// uplink is busy [0, serAll): total serialization time.
	s.Run(0)
	if len(cs[2].frames) != N {
		t.Fatalf("delivered %d, want %d", len(cs[2].frames), N)
	}
	// Implied wire throughput ≈ 100Gbps on the uplink.
	st := n.Uplink(1).Stats()
	gbps := float64(st.TxWireBytes*8) / serAll.Seconds() / 1e9
	if gbps < 99.99 || gbps > 100.01 {
		t.Fatalf("uplink rate %.4f Gbps, want ~100", gbps)
	}
}

func TestFIFOWithoutFaults(t *testing.T) {
	s, n, cs := testNet(1, DefaultLinkConfig(), 1, 2)
	for i := 0; i < 50; i++ {
		f := frame(1, 2, 1)
		f.Pkt.Seq = uint32(i)
		n.HostSend(f)
	}
	s.Run(0)
	for i, f := range cs[2].frames {
		if f.Pkt.Seq != uint32(i) {
			t.Fatalf("frame %d has seq %d: reordered without faults", i, f.Pkt.Seq)
		}
	}
}

func TestLoss(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Fault.LossProb = 0.3
	s, n, cs := testNet(42, cfg, 1, 2)
	const N = 5000
	for i := 0; i < N; i++ {
		n.HostSend(frame(1, 2, 1))
	}
	s.Run(0)
	// Loss applies independently on uplink and downlink: P(delivered) ≈ 0.49.
	got := float64(len(cs[2].frames)) / N
	if got < 0.44 || got > 0.54 {
		t.Fatalf("delivery rate %.3f, want ~0.49", got)
	}
	if n.Uplink(1).Stats().Dropped == 0 {
		t.Fatal("no drops recorded")
	}
}

func TestDuplication(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Fault.DupProb = 0.5
	s, n, cs := testNet(7, cfg, 1, 2)
	const N = 2000
	for i := 0; i < N; i++ {
		n.HostSend(frame(1, 2, 1))
	}
	s.Run(0)
	// Each hop duplicates with p=0.5: E[copies] = 1.5² = 2.25.
	ratio := float64(len(cs[2].frames)) / N
	if ratio < 2.0 || ratio > 2.5 {
		t.Fatalf("dup ratio %.3f, want ~2.25", ratio)
	}
}

func TestReorder(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Fault.ReorderProb = 0.2
	cfg.Fault.ReorderDelay = 50 * time.Microsecond
	s, n, cs := testNet(3, cfg, 1, 2)
	const N = 500
	for i := 0; i < N; i++ {
		f := frame(1, 2, 1)
		f.Pkt.Seq = uint32(i)
		n.HostSend(f)
	}
	s.Run(0)
	if len(cs[2].frames) != N {
		t.Fatalf("delivered %d, want %d (reorder must not lose)", len(cs[2].frames), N)
	}
	inversions := 0
	for i := 1; i < len(cs[2].frames); i++ {
		if cs[2].frames[i].Pkt.Seq < cs[2].frames[i-1].Pkt.Seq {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("no reordering observed")
	}
}

func TestDeliveredFramesAreClones(t *testing.T) {
	s, n, cs := testNet(1, DefaultLinkConfig(), 1, 2)
	f := frame(1, 2, 4)
	f.Pkt.Bitmap = wire.Bitmap(0).Set(0).Set(1)
	n.HostSend(f)
	s.Run(0)
	got := cs[2].frames[0].Pkt
	got.Bitmap = got.Bitmap.Clear(0)
	got.Slots[0].Val = 999
	if !f.Pkt.Bitmap.Test(0) || f.Pkt.Slots[0].Val == 999 {
		t.Fatal("receiver mutation leaked into sender's packet")
	}
}

func TestBackpressureSignals(t *testing.T) {
	s, n, _ := testNet(1, DefaultLinkConfig(), 1, 2)
	l := n.Uplink(1)
	if l.Backlog() != 0 {
		t.Fatal("idle link has backlog")
	}
	for i := 0; i < 100; i++ {
		n.HostSend(frame(1, 2, 32))
	}
	if l.Backlog() == 0 {
		t.Fatal("loaded link reports no backlog")
	}
	if l.NextFree() <= s.Now() {
		t.Fatal("NextFree not in the future")
	}
	s.Run(0)
}

func TestPerHostLinkConfig(t *testing.T) {
	s := sim.New(1)
	n := New(s, DefaultLinkConfig())
	n.AttachSwitch(&ForwardingSwitch{Net: n})
	slow := DefaultLinkConfig()
	slow.BandwidthBps = 10e9
	c1, c2 := &collector{s: s}, &collector{s: s}
	n.AttachHostLink(1, c1, slow)
	n.AttachHost(2, c2)
	n.HostSend(frame(1, 2, 32))
	s.Run(0)
	if len(c2.frames) != 1 {
		t.Fatal("frame not delivered across mixed-speed links")
	}
}

func TestDoubleAttachPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("double attach did not panic")
		}
	}()
	s := sim.New(1)
	n := New(s, DefaultLinkConfig())
	c := &collector{s: s}
	n.AttachHost(1, c)
	n.AttachHost(1, c)
}

func TestSendToUnattachedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("send from unattached host did not panic")
		}
	}()
	s := sim.New(1)
	n := New(s, DefaultLinkConfig())
	n.HostSend(frame(9, 2, 1))
}

// --- End-to-end integrity faults (corruption / truncation) ---

func TestCorruptionDeliversDamagedBytes(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Fault.CorruptProb = 1.0
	s, n, cs := testNet(5, cfg, 1, 2)
	codec := wire.Codec{KPartBytes: 4}
	n.SetCodec(codec)
	const N = 50
	for i := 0; i < N; i++ {
		f := frame(1, 2, 4)
		f.Pkt.Bitmap = wire.Bitmap(0).Set(0).Set(2)
		n.HostSend(f)
	}
	s.Run(0)
	if len(cs[2].frames) != N {
		t.Fatalf("delivered %d frames, want %d (corruption must deliver, not drop)", len(cs[2].frames), N)
	}
	for i, g := range cs[2].frames {
		if !g.Corrupted() || g.Pkt != nil {
			t.Fatalf("frame %d: corrupted frame must carry Raw and nil Pkt", i)
		}
		if _, err := codec.Decode(g.Raw); !errors.Is(err, wire.ErrChecksum) {
			t.Fatalf("frame %d: Decode of damaged bytes = %v, want ErrChecksum", i, err)
		}
	}
	// Every hop corrupts; the first hop's damage is what arrives (the switch
	// here is a plain forwarder that doesn't decode). Both directions count.
	if n.Uplink(1).Stats().Corrupted == 0 || n.Downlink(2).Stats().Corrupted == 0 {
		t.Fatal("corruption not counted on both hops")
	}
}

func TestTruncationDeliversTypedError(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Fault.TruncateProb = 1.0
	s, n, cs := testNet(6, cfg, 1, 2)
	codec := wire.Codec{KPartBytes: 4}
	n.SetCodec(codec)
	const N = 50
	for i := 0; i < N; i++ {
		n.HostSend(frame(1, 2, 4))
	}
	s.Run(0)
	if len(cs[2].frames) != N {
		t.Fatalf("delivered %d frames, want %d", len(cs[2].frames), N)
	}
	for i, g := range cs[2].frames {
		if !g.Corrupted() {
			t.Fatalf("frame %d not marked corrupted", i)
		}
		full := frame(1, 2, 4).Pkt.BufferBytes(4) + wire.ChecksumBytes
		if len(g.Raw) >= full {
			t.Fatalf("frame %d: truncated frame has %d bytes, want < %d", i, len(g.Raw), full)
		}
		_, err := codec.Decode(g.Raw)
		if err == nil {
			t.Fatalf("frame %d: truncated bytes decoded cleanly", i)
		}
		if !errors.Is(err, wire.ErrChecksum) && !errors.Is(err, wire.ErrTruncated) {
			t.Fatalf("frame %d: err %v is not a typed integrity error", i, err)
		}
	}
	if n.Uplink(1).Stats().Truncated == 0 {
		t.Fatal("truncation not counted")
	}
}

func TestCorruptionWithoutCodecDegradesToDrop(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Fault.CorruptProb = 1.0
	s, n, cs := testNet(7, cfg, 1, 2) // no SetCodec
	n.HostSend(frame(1, 2, 4))
	s.Run(0)
	if len(cs[2].frames) != 0 {
		t.Fatal("corruption without a codec must degrade to a drop")
	}
	if n.Uplink(1).Stats().Corrupted != 1 {
		t.Fatalf("Corrupted = %d, want 1", n.Uplink(1).Stats().Corrupted)
	}
}

func TestCorruptionOfCtrlIsDrop(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Fault.CorruptProb = 1.0
	s, n, cs := testNet(8, cfg, 1, 2)
	n.SetCodec(wire.Codec{KPartBytes: 4})
	p := &wire.Packet{Type: wire.TypeCtrl, Ctrl: "opaque"}
	n.HostSend(&Frame{Src: 1, Dst: 2, Pkt: p, WireBytes: p.WireBytes(4)})
	s.Run(0)
	if len(cs[2].frames) != 0 {
		t.Fatal("corrupted TypeCtrl must be dropped (not byte-encodable)")
	}
}

func TestCorruptionDeterministicUnderSeed(t *testing.T) {
	run := func() [][]byte {
		cfg := DefaultLinkConfig()
		cfg.Fault.CorruptProb = 0.5
		cfg.Fault.TruncateProb = 0.25
		s, n, cs := testNet(99, cfg, 1, 2)
		n.SetCodec(wire.Codec{KPartBytes: 4})
		for i := 0; i < 100; i++ {
			f := frame(1, 2, 4)
			f.Pkt.Seq = uint32(i)
			n.HostSend(f)
		}
		s.Run(0)
		var raws [][]byte
		for _, g := range cs[2].frames {
			raws = append(raws, g.Raw)
		}
		return raws
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if string(a[i]) != string(b[i]) {
			t.Fatalf("frame %d raw bytes differ across identically seeded runs", i)
		}
	}
}

func TestSwitchSendUnroutableIsCountedDrop(t *testing.T) {
	s, n, _ := testNet(1, DefaultLinkConfig(), 1, 2)
	n.SwitchSend(frame(1, 77, 1)) // host 77 not attached: must not panic
	s.Run(0)
	if n.Unroutable() != 1 {
		t.Fatalf("Unroutable = %d, want 1", n.Unroutable())
	}
}

// TestDuplicatedSiblingFramesAreIndependent is the regression test for the
// duplicate-frame deep-copy guarantee: a receiver mutating one delivered
// copy's slots or bitmap must corrupt neither the sender's retransmission
// buffer nor any duplicated sibling copy.
func TestDuplicatedSiblingFramesAreIndependent(t *testing.T) {
	cfg := DefaultLinkConfig()
	cfg.Fault.DupProb = 1.0 // every hop duplicates: 1 send -> 4 copies
	s, n, cs := testNet(9, cfg, 1, 2)
	f := frame(1, 2, 4)
	f.Pkt.Bitmap = wire.Bitmap(0).Set(0).Set(1)
	f.Pkt.Slots[0] = wire.Slot{KPart: wire.PackKPart([]byte("k0"), 4), Val: 100}
	f.Pkt.Slots[1] = wire.Slot{KPart: wire.PackKPart([]byte("k1"), 4), Val: 200}
	n.HostSend(f)
	s.Run(0)
	got := cs[2].frames
	if len(got) != 4 {
		t.Fatalf("delivered %d copies, want 4", len(got))
	}
	// Mutate the first delivered copy the way a receiver's aggregation pass
	// would: consume tuples, clear bits, zero slots.
	victim := got[0].Pkt
	victim.Bitmap = 0
	victim.Slots[0] = wire.Slot{}
	victim.Slots[1] = wire.Slot{Val: -1}
	// Sender's retransmission buffer intact.
	if !f.Pkt.Bitmap.Test(0) || f.Pkt.Slots[0].Val != 100 || f.Pkt.Slots[1].Val != 200 {
		t.Fatal("receiver mutation leaked into sender's retransmission buffer")
	}
	// Every sibling copy intact.
	for i, g := range got[1:] {
		if g.Pkt == victim {
			t.Fatalf("sibling %d aliases the mutated copy", i+1)
		}
		if !g.Pkt.Bitmap.Test(0) || g.Pkt.Slots[0].Val != 100 || g.Pkt.Slots[1].Val != 200 {
			t.Fatalf("sibling %d shares slot storage with the mutated copy", i+1)
		}
	}
}
