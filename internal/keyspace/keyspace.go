// Package keyspace implements ASK's sender-assisted addressing (§3.2.2) and
// coalesced placement for variable-length keys (§3.2.3).
//
// The whole key space is first divided by length into short, medium, and
// long keys:
//
//   - short keys fit in one aggregator's kPart (≤ KPartBytes);
//   - medium keys fit in one coalesced group of MediumSegs adjacent AAs
//     (≤ KPartBytes·MediumSegs), padded to the group width;
//   - long keys bypass the switch and are aggregated at the receiver host.
//
// The short subspace is then partitioned into ShortSlots ordered subspaces
// with a uniform hash: a key always falls in the same subspace, is always
// encoded at the same packet slot, and is therefore always processed by the
// same AA — avoiding the single-key-multiple-spot problem. Medium keys are
// likewise partitioned across the MediumGroups coalesced groups, and all
// AAs of a group address the key with a unified row index (a hash of the
// entire key), which avoids the partial-matching aggregation errors of the
// naïve segment-independent design.
//
// Keys containing a NUL byte take the long-key bypass regardless of length:
// kParts are zero-padded on the right, the all-zero kPart is the "blank
// aggregator" sentinel, and NUL-free keys make the padding unambiguous.
package keyspace

import (
	"strings"

	"repro/internal/core"
	"repro/internal/wire"
)

// Class is the length class of a key.
type Class uint8

const (
	// Short keys fit in a single aggregator kPart.
	Short Class = iota
	// Medium keys occupy one coalesced group of adjacent AAs.
	Medium
	// Long keys bypass the switch.
	Long
)

func (c Class) String() string {
	switch c {
	case Short:
		return "short"
	case Medium:
		return "medium"
	case Long:
		return "long"
	default:
		return "invalid"
	}
}

// FNV-1a 64-bit, with distinct offset bases so slot addressing and row
// addressing are independent hash functions.
const (
	fnvPrime       = 1099511628211
	fnvOffsetSlot  = 14695981039346656037
	fnvOffsetRow   = 0x9e3779b97f4a7c15
	fnvOffsetOrder = 0xc2b2ae3d27d4eb4f
)

func fnv64(offset uint64, s string) uint64 {
	h := offset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// HashSlot is the subspace-partition hash 𝔽 of §3.2.2.
func HashSlot(key string) uint64 { return fnv64(fnvOffsetSlot, key) }

// HashRow is the in-AA aggregator addressing hash of §3.2.1.
func HashRow(key string) uint64 { return fnv64(fnvOffsetRow, key) }

// HashOrder is a third independent hash used by workload generators.
func HashOrder(key string) uint64 { return fnv64(fnvOffsetOrder, key) }

// Layout precomputes the slot map for a configuration.
type Layout struct {
	cfg        core.Config
	shortSlots int
}

// NewLayout builds the layout for cfg, validating it first.
func NewLayout(cfg core.Config) (*Layout, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Layout{cfg: cfg, shortSlots: cfg.ShortSlots()}, nil
}

// Config returns the configuration the layout was built from.
func (l *Layout) Config() core.Config { return l.cfg }

// ShortSlots returns the number of packet slots serving short keys.
func (l *Layout) ShortSlots() int { return l.shortSlots }

// MediumGroups returns the number of coalesced medium-key groups.
func (l *Layout) MediumGroups() int { return l.cfg.MediumGroups }

// Classify returns the length class of key.
func (l *Layout) Classify(key string) Class {
	if strings.IndexByte(key, 0) >= 0 || len(key) == 0 {
		return Long
	}
	if len(key) <= l.cfg.KPartBytes {
		if l.shortSlots == 0 {
			return Long
		}
		return Short
	}
	// A medium key must fill every segment of its group with at least one
	// byte: an all-zero segment is indistinguishable from a blank
	// aggregator, which would break the group matching invariant. With the
	// paper's m = 2 this is just (KPartBytes, 2·KPartBytes]; larger m
	// sacrifices the middle lengths to the bypass (see the medium-key
	// ablation).
	if l.cfg.MediumGroups > 0 &&
		len(key) > l.cfg.KPartBytes*(l.cfg.MediumSegs-1) &&
		len(key) <= l.cfg.MaxMediumKeyBytes() {
		return Medium
	}
	return Long
}

// Placement describes where a key's tuple goes in a packet / on the switch.
type Placement struct {
	Class Class
	// FirstSlot is the first packet slot (== first AA index) the key uses;
	// a Short key uses exactly one slot, a Medium key uses Segs consecutive
	// slots. Undefined for Long.
	FirstSlot int
	// Segs is the number of slots/AAs used (1 for short).
	Segs int
	// KParts are the packed key segments, one per used slot.
	KParts []uint64
	// RowHash is the unified aggregator row hash (whole-key hash); the
	// switch reduces it modulo the live region size.
	RowHash uint64
}

// Locate computes where key goes without packing its kParts: the class,
// first packet slot, and slot count. It performs no heap allocation, so hot
// paths that only need routing (which bucket / unit a key belongs to) can
// skip the kPart packing entirely. firstSlot and segs are 0 for Long.
func (l *Layout) Locate(key string) (class Class, firstSlot, segs int) {
	switch l.Classify(key) {
	case Short:
		return Short, int(HashSlot(key) % uint64(l.shortSlots)), 1
	case Medium:
		group := int(HashSlot(key) % uint64(l.cfg.MediumGroups))
		return Medium, l.shortSlots + group*l.cfg.MediumSegs, l.cfg.MediumSegs
	default:
		return Long, 0, 0
	}
}

// Place computes the placement for key. Long keys get Placement{Class: Long}
// with no slots.
func (l *Layout) Place(key string) Placement {
	return l.PlaceInto(key, nil)
}

// PlaceInto is Place with caller-provided kPart storage: the packed
// segments are appended to buf (usually scratch[:0]), so a hot loop that
// consumes each Placement before computing the next can reuse one buffer
// and avoid a heap allocation per tuple. Segments are packed straight from
// the key string — no intermediate []byte conversions.
func (l *Layout) PlaceInto(key string, buf []uint64) Placement {
	class, first, segs := l.Locate(key)
	switch class {
	case Short:
		return Placement{
			Class:     Short,
			FirstSlot: first,
			Segs:      1,
			KParts:    append(buf, wire.PackKPartString(key, l.cfg.KPartBytes)),
			RowHash:   HashRow(key),
		}
	case Medium:
		kparts := buf
		for i := 0; i < segs; i++ {
			lo := i * l.cfg.KPartBytes
			hi := lo + l.cfg.KPartBytes
			var seg string
			if lo < len(key) {
				if hi > len(key) {
					hi = len(key)
				}
				seg = key[lo:hi]
			}
			kparts = append(kparts, wire.PackKPartString(seg, l.cfg.KPartBytes))
		}
		return Placement{
			Class:     Medium,
			FirstSlot: first,
			Segs:      segs,
			KParts:    kparts,
			RowHash:   HashRow(key),
		}
	default:
		return Placement{Class: Long}
	}
}

// GroupOfSlot returns, for a packet slot index, which logical unit it belongs
// to: unit index, the unit's first slot, and the unit's width in slots.
// Short slots are single-slot units; medium slots belong to their group.
func (l *Layout) GroupOfSlot(slot int) (first, segs int) {
	if slot < l.shortSlots {
		return slot, 1
	}
	g := (slot - l.shortSlots) / l.cfg.MediumSegs
	return l.shortSlots + g*l.cfg.MediumSegs, l.cfg.MediumSegs
}

// ReconstructShort recovers a short key string from its packed kPart.
func (l *Layout) ReconstructShort(kpart uint64) string {
	return string(wire.UnpackKPart(kpart, l.cfg.KPartBytes))
}

// ReconstructMedium recovers a medium key string from its group's packed
// kParts (in slot order).
func (l *Layout) ReconstructMedium(kparts []uint64) string {
	var b strings.Builder
	for _, kp := range kparts {
		b.Write(wire.UnpackKPart(kp, l.cfg.KPartBytes))
	}
	return b.String()
}

// LogicalUnits returns the number of logical tuple units a packet can carry:
// ShortSlots short tuples plus MediumGroups medium tuples.
func (l *Layout) LogicalUnits() int { return l.shortSlots + l.cfg.MediumGroups }
