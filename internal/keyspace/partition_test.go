package keyspace

import (
	"fmt"
	"testing"

	"repro/internal/core"
)

// Partitioned Locate edge cases (multi-tenant placement): the whole-keyspace
// tests above never exercise bands narrower than the full slot range.

func TestLocateInZeroPartitionMatchesLocate(t *testing.T) {
	l := defaultLayout(t)
	for _, key := range []string{"a", "the", "word", "abcde", "yourself", "toolongforswitch", ""} {
		c1, f1, s1 := l.Locate(key)
		c2, f2, s2 := l.LocateIn(Partition{}, key)
		if c1 != c2 || f1 != f2 || s1 != s2 {
			t.Errorf("LocateIn(zero, %q) = (%v,%d,%d), Locate = (%v,%d,%d)",
				key, c2, f2, s2, c1, f1, s1)
		}
	}
}

func TestLocateInEdgeCases(t *testing.T) {
	l := defaultLayout(t) // 16 short slots, 8 medium groups, 2 segs
	short := l.ShortSlots()
	cases := []struct {
		name string
		part Partition
		key  string
		// want: class plus the allowed slot band [lo, hi) (ignored for Long)
		wantClass Class
		wantLo    int
		wantHi    int
		wantSegs  int
	}{
		{
			// A partition with no short slots: short keys take the bypass.
			name: "empty short band bypasses short keys",
			part: Partition{ShortLo: -1, GroupLo: 2, GroupWidth: 3},
			key:  "cat", wantClass: Long,
		},
		{
			// A partition with no medium groups: medium keys take the bypass.
			name: "empty group band bypasses medium keys",
			part: Partition{ShortLo: 4, ShortWidth: 5, GroupLo: -1},
			key:  "abcdef", wantClass: Long,
		},
		{
			// Fully empty partition (marker form): everything bypasses.
			name: "fully empty partition",
			part: Partition{ShortLo: -1, GroupLo: -1},
			key:  "cat", wantClass: Long,
		},
		{
			// A one-slot band: every short key lands on exactly that slot.
			name: "1-slot short partition pins the slot",
			part: Partition{ShortLo: 7, ShortWidth: 1, GroupLo: 0, GroupWidth: 8},
			key:  "cat", wantClass: Short, wantLo: 7, wantHi: 8, wantSegs: 1,
		},
		{
			// A one-group band: every medium key lands on that group's slots.
			name: "1-group medium partition pins the group",
			part: Partition{ShortLo: 0, ShortWidth: 16, GroupLo: 5, GroupWidth: 1},
			key:  "abcdef", wantClass: Medium,
			wantLo: short + 5*2, wantHi: short + 5*2 + 1, wantSegs: 2,
		},
		{
			// Band at the top edge of the short range.
			name: "short band at upper boundary",
			part: Partition{ShortLo: 14, ShortWidth: 2, GroupLo: 0, GroupWidth: 8},
			key:  "dog", wantClass: Short, wantLo: 14, wantHi: 16, wantSegs: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			class, first, segs := l.LocateIn(c.part, c.key)
			if class != c.wantClass {
				t.Fatalf("class = %v, want %v", class, c.wantClass)
			}
			if class == Long {
				return
			}
			if first < c.wantLo || first >= c.wantHi {
				t.Errorf("firstSlot = %d, want in [%d,%d)", first, c.wantLo, c.wantHi)
			}
			if segs != c.wantSegs {
				t.Errorf("segs = %d, want %d", segs, c.wantSegs)
			}
		})
	}
}

// TestPartitionBoundaryStraddle checks that adjacent tenants' bands never
// overlap inside one packet: a packet's slot array spans the whole keyspace,
// and at a partition boundary a key must fall strictly inside its own
// tenant's band — never on the neighbour's first slot.
func TestPartitionBoundaryStraddle(t *testing.T) {
	l := defaultLayout(t)
	parts, err := PartitionsFor([]int{1, 1, 2}, l.Config())
	if err != nil {
		t.Fatal(err)
	}
	// Bands must tile the space exactly: contiguous, disjoint, covering.
	wantShort, wantGroup := 0, 0
	for i, p := range parts {
		if p.ShortWidth > 0 && p.ShortLo != wantShort {
			t.Errorf("tenant %d short band starts at %d, want %d", i, p.ShortLo, wantShort)
		}
		if p.GroupWidth > 0 && p.GroupLo != wantGroup {
			t.Errorf("tenant %d group band starts at %d, want %d", i, p.GroupLo, wantGroup)
		}
		wantShort += p.ShortWidth
		wantGroup += p.GroupWidth
	}
	if wantShort != l.ShortSlots() || wantGroup != l.MediumGroups() {
		t.Fatalf("bands cover %d short / %d groups, want %d / %d",
			wantShort, wantGroup, l.ShortSlots(), l.MediumGroups())
	}
	// Hash a spread of short and medium keys into every tenant's band and
	// verify each stays inside its own tenant's slot range.
	for ti, p := range parts {
		for i := 0; i < 500; i++ {
			for _, key := range []string{fmt.Sprintf("k%d", i), fmt.Sprintf("mk%04d", i)} {
				class, first, segs := l.LocateIn(p, key)
				switch class {
				case Short:
					if first < p.ShortLo || first >= p.ShortLo+p.ShortWidth {
						t.Fatalf("tenant %d short key %q slot %d outside band %v", ti, key, first, p)
					}
				case Medium:
					g := (first - l.ShortSlots()) / l.Config().MediumSegs
					if g < p.GroupLo || g >= p.GroupLo+p.GroupWidth {
						t.Fatalf("tenant %d medium key %q group %d outside band %v", ti, key, g, p)
					}
					if first+segs > l.ShortSlots()+(g+1)*l.Config().MediumSegs {
						t.Fatalf("tenant %d medium key %q straddles group boundary", ti, key)
					}
				}
			}
		}
	}
}

func TestPartitionsForEmptyBandIsNotZero(t *testing.T) {
	// 17 tenants over 16 short slots / 8 groups: some tenant's bands are
	// empty; the empty partition must not alias the whole-keyspace zero
	// value (which would silently grant it the full switch).
	weights := make([]int, 17)
	for i := range weights {
		weights[i] = 1
	}
	parts, err := PartitionsFor(weights, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sawEmpty := false
	for i, p := range parts {
		if p.IsZero() {
			t.Fatalf("tenant %d got the zero (full-keyspace) partition", i)
		}
		if p.ShortWidth == 0 && p.GroupWidth == 0 {
			sawEmpty = true
		}
	}
	if !sawEmpty {
		t.Fatal("expected at least one empty band with 17 tenants over 16 slots")
	}
}

func TestPartitionsForRejectsBadWeights(t *testing.T) {
	if _, err := PartitionsFor(nil, core.DefaultConfig()); err == nil {
		t.Fatal("no tenants should error")
	}
	if _, err := PartitionsFor([]int{2, 0}, core.DefaultConfig()); err == nil {
		t.Fatal("zero weight should error")
	}
}
