package keyspace_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/keyspace"
)

// Sender-assisted addressing (§3.2.2–3.2.3): keys classify by length, short
// and medium keys map to stable packet slots, long keys bypass the switch.
func ExampleLayout_Place() {
	layout, err := keyspace.NewLayout(core.DefaultConfig())
	if err != nil {
		panic(err)
	}
	for _, key := range []string{"the", "yours", "internationalization"} {
		p := layout.Place(key)
		switch p.Class {
		case keyspace.Short:
			fmt.Printf("%-22q short  → slot %d (1 aggregator)\n", key, p.FirstSlot)
		case keyspace.Medium:
			fmt.Printf("%-22q medium → slots %d-%d (coalesced group)\n",
				key, p.FirstSlot, p.FirstSlot+p.Segs-1)
		case keyspace.Long:
			fmt.Printf("%-22q long   → host bypass\n", key)
		}
	}
	// The same key always lands in the same place (single-key-single-spot).
	a, b := layout.Place("the"), layout.Place("the")
	fmt.Println("stable:", a.FirstSlot == b.FirstSlot)
	// Output:
	// "the"                  short  → slot 12 (1 aggregator)
	// "yours"                medium → slots 22-23 (coalesced group)
	// "internationalization" long   → host bypass
	// stable: true
}
