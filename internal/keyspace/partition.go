package keyspace

import (
	"fmt"

	"repro/internal/core"
)

// Partition restricts a tenant to a contiguous band of the switch's logical
// key space: a run of short packet slots and a run of medium coalesced
// groups. Partitions are the placement domain of multi-tenant deployments —
// two tenants with disjoint partitions never contend for the same AA column,
// so their in-switch aggregation state cannot interact.
//
// The zero Partition means "the whole key space" and selects code paths that
// are byte-identical to the single-tenant system; every consumer treats it
// as such via IsZero.
type Partition struct {
	// ShortLo is the first short packet slot of the band; ShortWidth is the
	// number of short slots. A zero ShortWidth (in a non-zero partition)
	// sends every short key down the long-key bypass.
	ShortLo, ShortWidth int
	// GroupLo / GroupWidth are the same for medium coalesced groups. A zero
	// GroupWidth sends every medium key down the long-key bypass.
	GroupLo, GroupWidth int
}

// IsZero reports whether p is the whole-keyspace partition.
func (p Partition) IsZero() bool {
	return p.ShortLo == 0 && p.ShortWidth == 0 && p.GroupLo == 0 && p.GroupWidth == 0
}

func (p Partition) String() string {
	if p.IsZero() {
		return "full"
	}
	if p.ShortWidth == 0 && p.GroupWidth == 0 {
		return "empty"
	}
	return fmt.Sprintf("short[%d:%d) groups[%d:%d)",
		p.ShortLo, p.ShortLo+p.ShortWidth, p.GroupLo, p.GroupLo+p.GroupWidth)
}

// ClassifyIn is Classify restricted to partition p: keys whose length class
// has no slots inside p take the long-key bypass (aggregated at the
// receiver) instead of a slot the tenant does not own.
func (l *Layout) ClassifyIn(p Partition, key string) Class {
	c := l.Classify(key)
	if p.IsZero() {
		return c
	}
	switch c {
	case Short:
		if p.ShortWidth == 0 {
			return Long
		}
	case Medium:
		if p.GroupWidth == 0 {
			return Long
		}
	}
	return c
}

// LocateIn is Locate restricted to partition p: short keys hash onto the
// partition's slot band, medium keys onto its group band. The zero partition
// is exactly Locate. Like Locate it performs no heap allocation.
func (l *Layout) LocateIn(p Partition, key string) (class Class, firstSlot, segs int) {
	if p.IsZero() {
		return l.Locate(key)
	}
	switch l.ClassifyIn(p, key) {
	case Short:
		return Short, p.ShortLo + int(HashSlot(key)%uint64(p.ShortWidth)), 1
	case Medium:
		group := p.GroupLo + int(HashSlot(key)%uint64(p.GroupWidth))
		return Medium, l.shortSlots + group*l.cfg.MediumSegs, l.cfg.MediumSegs
	default:
		return Long, 0, 0
	}
}

// PartitionsFor divides the key space of cfg into contiguous per-tenant
// bands proportional to weights, in tenant order. Both the short slots and
// the medium groups are split with the same cumulative rule
//
//	lo_i = floor(total · Σw_{<i} / Σw)
//
// so bands are disjoint, cover the space exactly, and a tenant's band
// depends only on the weights before it — deterministic regardless of map
// iteration anywhere upstream. Tenants with tiny weight shares can receive
// an empty band (their keys of that class then take the host bypass).
func PartitionsFor(weights []int, cfg core.Config) ([]Partition, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("keyspace: no tenants")
	}
	var sum int
	for i, w := range weights {
		if w <= 0 {
			return nil, fmt.Errorf("keyspace: tenant %d has non-positive weight %d", i, w)
		}
		sum += w
	}
	shortSlots, groups := cfg.ShortSlots(), cfg.MediumGroups
	parts := make([]Partition, len(weights))
	cut := func(total, cum int) int { return total * cum / sum }
	cum := 0
	for i, w := range weights {
		sLo, gLo := cut(shortSlots, cum), cut(groups, cum)
		cum += w
		sHi, gHi := cut(shortSlots, cum), cut(groups, cum)
		parts[i] = Partition{
			ShortLo: sLo, ShortWidth: sHi - sLo,
			GroupLo: gLo, GroupWidth: gHi - gLo,
		}
		if parts[i].IsZero() {
			// An empty band at position 0 must not collide with the
			// whole-keyspace zero value. Lo fields are never read when the
			// width is zero, so any non-zero marker keeps it distinct.
			parts[i].ShortLo = -1
			parts[i].GroupLo = -1
		}
	}
	return parts, nil
}
