package keyspace

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func defaultLayout(t *testing.T) *Layout {
	t.Helper()
	l, err := NewLayout(core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestClassify(t *testing.T) {
	l := defaultLayout(t) // KPartBytes=4, m=2 → medium is 5..8 bytes
	cases := []struct {
		key  string
		want Class
	}{
		{"a", Short},
		{"abcd", Short},
		{"abcde", Medium},
		{"yourself", Medium}, // 8 bytes
		{"yourselfs", Long},  // 9 bytes
		{"internationalization", Long},
		{"ab\x00d", Long}, // NUL byte forces bypass
		{"", Long},
	}
	for _, c := range cases {
		if got := l.Classify(c.key); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.key, got, c.want)
		}
	}
}

func TestPlaceShortStability(t *testing.T) {
	l := defaultLayout(t)
	// The same key must always land on the same slot (single-key-single-spot).
	for _, key := range []string{"a", "the", "word", "xy"} {
		p1, p2 := l.Place(key), l.Place(key)
		if p1.FirstSlot != p2.FirstSlot {
			t.Errorf("Place(%q) unstable: %d vs %d", key, p1.FirstSlot, p2.FirstSlot)
		}
		if p1.Segs != 1 {
			t.Errorf("short key %q uses %d segs", key, p1.Segs)
		}
		if p1.FirstSlot < 0 || p1.FirstSlot >= l.ShortSlots() {
			t.Errorf("short key %q slot %d out of short range [0,%d)", key, p1.FirstSlot, l.ShortSlots())
		}
	}
}

func TestPlaceMediumGroup(t *testing.T) {
	l := defaultLayout(t)
	cfg := l.Config()
	p := l.Place("yours") // 5 bytes → medium
	if p.Class != Medium {
		t.Fatalf("class = %v", p.Class)
	}
	if p.Segs != cfg.MediumSegs {
		t.Fatalf("segs = %d, want %d", p.Segs, cfg.MediumSegs)
	}
	if p.FirstSlot < l.ShortSlots() || p.FirstSlot+p.Segs > cfg.NumAAs {
		t.Fatalf("medium slots [%d,%d) outside medium range [%d,%d)",
			p.FirstSlot, p.FirstSlot+p.Segs, l.ShortSlots(), cfg.NumAAs)
	}
	if (p.FirstSlot-l.ShortSlots())%cfg.MediumSegs != 0 {
		t.Fatalf("medium first slot %d not group-aligned", p.FirstSlot)
	}
	if len(p.KParts) != cfg.MediumSegs {
		t.Fatalf("kparts = %d, want %d", len(p.KParts), cfg.MediumSegs)
	}
	// "yours" splits into "your" + "s" (padded).
	if got := l.ReconstructMedium(p.KParts); got != "yours" {
		t.Fatalf("reconstruct = %q, want %q", got, "yours")
	}
}

func TestMediumSharedPrefixDistinctRows(t *testing.T) {
	l := defaultLayout(t)
	// "yours" and "yourself" share the "your" first segment but must use
	// different unified row hashes (§3.2.3: "yourself" reserves a different
	// aggregator than "yours").
	a, b := l.Place("yours"), l.Place("yourself")
	if a.RowHash == b.RowHash {
		t.Fatal("distinct medium keys share a row hash")
	}
	if a.KParts[0] != b.KParts[0] {
		t.Fatal(`"yours" and "yourself" should share the "your" segment packing`)
	}
}

func TestNaiveSegmentAmbiguityAvoided(t *testing.T) {
	l := defaultLayout(t)
	// The naïve design's failure case: X1X2 and Y1Y2 reserved, then X1Y2
	// must NOT be recognized. With unified whole-key hashing, X1Y2's row
	// hash differs from both.
	x, y, xy := l.Place("aaaabbbb"), l.Place("ccccdddd"), l.Place("aaaadddd")
	if xy.RowHash == x.RowHash || xy.RowHash == y.RowHash {
		t.Fatal("composite key collides with component keys' rows")
	}
}

func TestReconstructShortRoundtrip(t *testing.T) {
	l := defaultLayout(t)
	for _, key := range []string{"a", "ab", "abc", "abcd"} {
		p := l.Place(key)
		if got := l.ReconstructShort(p.KParts[0]); got != key {
			t.Errorf("reconstruct(%q) = %q", key, got)
		}
	}
}

func TestGroupOfSlot(t *testing.T) {
	l := defaultLayout(t)
	cfg := l.Config()
	// Short slots are their own unit.
	for s := 0; s < l.ShortSlots(); s++ {
		first, segs := l.GroupOfSlot(s)
		if first != s || segs != 1 {
			t.Fatalf("GroupOfSlot(%d) = (%d,%d), want (%d,1)", s, first, segs, s)
		}
	}
	// Medium slots map to their group start.
	for s := l.ShortSlots(); s < cfg.NumAAs; s++ {
		first, segs := l.GroupOfSlot(s)
		if segs != cfg.MediumSegs {
			t.Fatalf("GroupOfSlot(%d) segs = %d", s, segs)
		}
		if s < first || s >= first+segs {
			t.Fatalf("GroupOfSlot(%d) = (%d,%d) does not contain slot", s, first, segs)
		}
		if (first-l.ShortSlots())%cfg.MediumSegs != 0 {
			t.Fatalf("GroupOfSlot(%d) start %d misaligned", s, first)
		}
	}
}

func TestSlotDistributionUniform(t *testing.T) {
	l := defaultLayout(t)
	counts := make([]int, l.ShortSlots())
	n := 100000
	for i := 0; i < n; i++ {
		p := l.Place(fmt.Sprintf("k%d", i))
		if p.Class != Short {
			continue
		}
		counts[p.FirstSlot]++
	}
	mean := 0
	for _, c := range counts {
		mean += c
	}
	mean /= len(counts)
	for slot, c := range counts {
		if c < mean*8/10 || c > mean*12/10 {
			t.Errorf("slot %d count %d deviates >20%% from mean %d", slot, c, mean)
		}
	}
}

func TestPlaceQuickProperties(t *testing.T) {
	l := defaultLayout(t)
	cfg := l.Config()
	f := func(raw []byte) bool {
		key := strings.ReplaceAll(string(raw), "\x00", "x")
		if key == "" {
			return true
		}
		p := l.Place(key)
		switch p.Class {
		case Short:
			return len(key) <= cfg.KPartBytes &&
				p.FirstSlot < l.ShortSlots() &&
				l.ReconstructShort(p.KParts[0]) == key
		case Medium:
			return len(key) > cfg.KPartBytes && len(key) <= cfg.MaxMediumKeyBytes() &&
				l.ReconstructMedium(p.KParts) == key
		case Long:
			return len(key) > cfg.MaxMediumKeyBytes()
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestNoMediumGroupsConfig(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MediumGroups = 0
	cfg.MediumSegs = 0
	l, err := NewLayout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.Classify("abcde"); got != Long {
		t.Fatalf("with no medium groups, 5-byte key class = %v, want Long", got)
	}
	if l.LogicalUnits() != cfg.NumAAs {
		t.Fatalf("LogicalUnits = %d, want %d", l.LogicalUnits(), cfg.NumAAs)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MediumGroups = 20 // 20×2 = 40 > 32 AAs
	if _, err := NewLayout(cfg); err == nil {
		t.Fatal("oversubscribed medium groups accepted")
	}
}

func TestHashIndependence(t *testing.T) {
	// HashSlot and HashRow must be effectively independent: keys colliding
	// in one should mostly not collide in the other.
	rng := rand.New(rand.NewSource(2))
	same := 0
	n := 20000
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d-%d", i, rng.Int())
		if HashSlot(k)%32 == HashRow(k)%32 {
			same++
		}
	}
	// Expect ~1/32 ≈ 3.1%; fail above 5%.
	if frac := float64(same) / float64(n); frac > 0.05 {
		t.Fatalf("slot/row hash correlation too high: %.3f", frac)
	}
}
