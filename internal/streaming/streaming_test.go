package streaming

// Unit tests against a fake Service; the real end-to-end windowing over a
// cluster is tested in the ask package.

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// fakeService records submissions and aggregates each window inline.
type fakeService struct {
	specs    []core.TaskSpec
	pendings []*fakePending
	failAt   int // task index whose Start fails (-1: never)
	ran      bool
}

type fakePending struct {
	res core.Result
	err error
}

func (fp *fakePending) Result() (core.Result, sim.Time, error) {
	return fp.res, sim.Time(1), fp.err
}

func (fs *fakeService) Start(spec core.TaskSpec, streams map[core.HostID]core.Stream) (Pending, error) {
	if fs.failAt == len(fs.specs) {
		return nil, errors.New("synthetic start failure")
	}
	fs.specs = append(fs.specs, spec)
	res := make(core.Result)
	for _, s := range streams {
		for {
			kv, ok := s()
			if !ok {
				break
			}
			res.MergeKV(kv, spec.Op)
		}
	}
	fp := &fakePending{res: res}
	fs.pendings = append(fs.pendings, fp)
	return fp, nil
}

func (fs *fakeService) Run() { fs.ran = true }

func kvStream(n int, prefix string) core.Stream {
	kvs := make([]core.KV, n)
	for i := range kvs {
		kvs[i] = core.KV{Key: fmt.Sprintf("%s%d", prefix, i%5), Val: 1}
	}
	return core.SliceStream(kvs)
}

func TestRunWindowsPartitionStreams(t *testing.T) {
	fs := &fakeService{failAt: -1}
	results, err := Run(fs, Config{
		Receiver: 0, Sources: []core.HostID{1, 2},
		WindowTuples: 10, Windows: 3, Op: core.OpSum, BaseTask: 50, Rows: 7,
	}, map[core.HostID]core.Stream{1: kvStream(30, "a"), 2: kvStream(30, "b")})
	if err != nil {
		t.Fatal(err)
	}
	if !fs.ran {
		t.Fatal("service never ran")
	}
	if len(results) != 3 || len(fs.specs) != 3 {
		t.Fatalf("windows = %d/%d", len(results), len(fs.specs))
	}
	for w, spec := range fs.specs {
		if spec.ID != core.TaskID(50+w) || spec.Rows != 7 || spec.Receiver != 0 {
			t.Fatalf("window %d spec = %+v", w, spec)
		}
	}
	// Each window holds exactly 10 tuples per source: 4 keys ×2 + ... the
	// totals per window must be 20.
	for w, res := range results {
		var total int64
		for _, v := range res.Result {
			total += v
		}
		if total != 20 {
			t.Fatalf("window %d total = %d, want 20", w, total)
		}
		if res.Index != w {
			t.Fatalf("window %d index = %d", w, res.Index)
		}
	}
}

func TestRunStartFailure(t *testing.T) {
	fs := &fakeService{failAt: 1}
	_, err := Run(fs, Config{
		Receiver: 0, Sources: []core.HostID{1},
		WindowTuples: 5, Windows: 3, BaseTask: 1,
	}, map[core.HostID]core.Stream{1: kvStream(100, "x")})
	if err == nil {
		t.Fatal("start failure not surfaced")
	}
}

// poisoningService fails a window at resolution time (after Run), the way
// a region-allocation error surfaces from a real cluster.
type poisoningService struct {
	fakeService
	poison int
}

func (ps *poisoningService) Run() {
	ps.fakeService.Run()
	ps.pendings[ps.poison].err = errors.New("synthetic window failure")
}

func TestRunPendingFailure(t *testing.T) {
	ps := &poisoningService{fakeService: fakeService{failAt: -1}, poison: 1}
	_, err := Run(ps, Config{
		Receiver: 0, Sources: []core.HostID{1},
		WindowTuples: 5, Windows: 2, BaseTask: 1,
	}, map[core.HostID]core.Stream{1: kvStream(100, "x")})
	if err == nil {
		t.Fatal("window failure not surfaced")
	}
}

func TestRunValidation(t *testing.T) {
	fs := &fakeService{failAt: -1}
	bad := []Config{
		{Sources: []core.HostID{1}, WindowTuples: 0, Windows: 1},
		{Sources: []core.HostID{1}, WindowTuples: 1, Windows: 0},
		{Sources: nil, WindowTuples: 1, Windows: 1},
		{Sources: []core.HostID{1}, WindowTuples: 1, Windows: 1}, // missing stream
	}
	for i, cfg := range bad {
		if _, err := Run(fs, cfg, nil); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestTakeBoundsAndPartition(t *testing.T) {
	s := kvStream(7, "k")
	w1 := core.Collect(take(s, 3))
	w2 := core.Collect(take(s, 3))
	w3 := core.Collect(take(s, 3))
	if len(w1) != 3 || len(w2) != 3 || len(w3) != 1 {
		t.Fatalf("window sizes %d/%d/%d", len(w1), len(w2), len(w3))
	}
}
