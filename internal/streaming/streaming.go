// Package streaming builds windowed stream aggregation on top of the ASK
// service — the real-time processing workloads (Spark Streaming, Flink,
// Kafka consumers) the paper cites as the motivating case for asynchronous
// aggregation (§2.1.1, §2.1.3): keys are unordered and unforeseeable, and
// the stream is unbounded.
//
// A Windower slices each source's unbounded stream into tumbling windows of
// a fixed tuple count and runs one ASK aggregation task per window. Windows
// are pipelined through the persistent data channels; each produces an
// exact per-key aggregate.
package streaming

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Service is the slice of the ASK API the windower needs (both
// ask.Cluster and ask.MultiRackCluster satisfy it via small adapters; see
// the ask package's streaming helpers).
type Service interface {
	// Start submits a task without running the simulation.
	Start(spec core.TaskSpec, streams map[core.HostID]core.Stream) (Pending, error)
	// Run drives the simulation until quiescence.
	Run()
}

// Pending resolves to a window's result after Run.
type Pending interface {
	Result() (core.Result, sim.Time, error)
}

// Config describes a windowed aggregation job.
type Config struct {
	// Receiver hosts the results; Sources are the stream origins.
	Receiver core.HostID
	Sources  []core.HostID
	// WindowTuples is the tumbling window size per source.
	WindowTuples int64
	// Windows is the number of windows to process.
	Windows int
	// Op is the per-window aggregation operator.
	Op core.Op
	// BaseTask is the first window's task ID; window i uses BaseTask+i.
	BaseTask core.TaskID
	// Rows per window task (0 = controller default). All windows of a
	// batch hold switch regions concurrently, so choose
	// Rows ≤ AARows/Windows when Windows × default would oversubscribe
	// the switch.
	Rows int
}

// WindowResult is one completed window.
type WindowResult struct {
	Index  int
	Result core.Result
	// Elapsed is the window task's completion time on virtual time.
	Elapsed sim.Time
}

// Run slices each source stream into cfg.Windows tumbling windows and
// aggregates every window through the service, returning results in window
// order. All windows of a batch are submitted up front and pipeline through
// the persistent channels.
func Run(svc Service, cfg Config, sources map[core.HostID]core.Stream) ([]WindowResult, error) {
	if cfg.WindowTuples <= 0 || cfg.Windows <= 0 {
		return nil, fmt.Errorf("streaming: need positive WindowTuples and Windows")
	}
	if len(cfg.Sources) == 0 {
		return nil, fmt.Errorf("streaming: no sources")
	}
	for _, s := range cfg.Sources {
		if _, ok := sources[s]; !ok {
			return nil, fmt.Errorf("streaming: no stream for source %d", s)
		}
	}
	var pendings []Pending
	for w := 0; w < cfg.Windows; w++ {
		streams := make(map[core.HostID]core.Stream, len(cfg.Sources))
		for _, s := range cfg.Sources {
			streams[s] = take(sources[s], cfg.WindowTuples)
		}
		pt, err := svc.Start(core.TaskSpec{
			ID:       cfg.BaseTask + core.TaskID(w),
			Receiver: cfg.Receiver,
			Senders:  cfg.Sources,
			Op:       cfg.Op,
			Rows:     cfg.Rows,
		}, streams)
		if err != nil {
			return nil, fmt.Errorf("streaming: window %d: %w", w, err)
		}
		pendings = append(pendings, pt)
	}
	svc.Run()
	out := make([]WindowResult, 0, cfg.Windows)
	for w, pt := range pendings {
		res, elapsed, err := pt.Result()
		if err != nil {
			return nil, fmt.Errorf("streaming: window %d: %w", w, err)
		}
		out = append(out, WindowResult{Index: w, Result: res, Elapsed: elapsed})
	}
	return out, nil
}

// take returns a sub-stream yielding at most n tuples of s. Windows taken
// from the same source share the underlying stream, so consecutive takes
// partition it; the caller must consume windows in submission order, which
// Run guarantees by building all windows before the simulation starts.
//
// Sub-streams are materialized lazily per call but bounded by n.
func take(s core.Stream, n int64) core.Stream {
	// Materialize the window eagerly: the underlying stream is shared
	// across windows and data channels consume them concurrently, so the
	// slice boundary must be fixed at submission time.
	kvs := make([]core.KV, 0, min64(n, 1<<16))
	for int64(len(kvs)) < n {
		kv, ok := s()
		if !ok {
			break
		}
		kvs = append(kvs, kv)
	}
	return core.SliceStream(kvs)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
