package cpumodel

import "time"

// Calibration constants. Absolute performance cannot be inherited from the
// paper's testbed, so each per-operation cost below is calibrated against a
// throughput the paper reports; the derivations are spelled out inline and
// cross-checked in EXPERIMENTS.md. Every simulated host-side cost in the
// repository comes from this file.
const (
	// DefaultCores matches the paper's 56-core Xeon Gold 5120T servers.
	DefaultCores = 56

	// PacketIOCost is the per-packet CPU cost of a DPDK data-channel
	// thread (build/parse descriptor, ring doorbell, DMA bookkeeping).
	// Calibration: Fig. 8(a) shows ASK is PPS-bound below 32 tuples/packet
	// and meets the ideal goodput 8x/(8x+78)·100 Gbps at x=32 with the
	// default 4 data channels, implying ≈37.4 Mpps total ≈ 9.35 Mpps per
	// channel thread → ≈107 ns per packet.
	PacketIOCost = 107 * time.Nanosecond

	// TupleMarshalCost is the per-tuple cost of copying a key-value tuple
	// between application memory and packet slots when that copy is NOT
	// amortized into a channel thread's batched packet IO (e.g. one-off
	// result staging). The data-channel fast path charges PacketIOCost
	// only: the paper's Fig. 8(a) shows the per-channel PPS is constant
	// across packet sizes, so marshalling rides inside the 107 ns budget.
	TupleMarshalCost = 2 * time.Nanosecond

	// HostAggregateCost is the per-tuple cost of the host-side aggregation
	// kernel (hash-map upsert or sort-merge step), used by the PreAggr
	// baseline, mapper pre-aggregation, and receiver residue aggregation.
	// Calibration: Fig. 7 PreAggr aggregates 6.4 G tuples in 111.2 s with 8
	// threads → ≈7.2 M tuples/s/thread → ≈139 ns/tuple.
	HostAggregateCost = 139 * time.Nanosecond

	// SparkTupleCost is the per-tuple parallelizable cost of the full Spark
	// path (deserialization, object churn, shuffle bookkeeping), and
	// SparkSharedCost the serialized portion (shuffle coordination, memory
	// bandwidth) that caps scaling. Calibration: Fig. 3(a) — vanilla Spark
	// reaches ≈7.7 M AKV/s at 4 cores (the 155× headline divisor) and
	// saturates near ≈43 M AKV/s at 56 cores (the strawman's 3.4× peak
	// divisor): 1/(500ns/4 + 14ns) ≈ 7.2 M, 1/(500ns/56 + 14ns) ≈ 43.6 M.
	SparkTupleCost  = 500 * time.Nanosecond
	SparkSharedCost = 14 * time.Nanosecond

	// ShmCopyCost is the per-tuple cost of moving a tuple through the
	// shared-memory segment between application and daemon (step ⑥/⑪ of
	// §3.1) — a cache-line copy, far below a syscall.
	ShmCopyCost = 1 * time.Nanosecond

	// ControlRPCLatency is the host↔switch-controller control-plane latency
	// for region allocation/release (gRPC to the switch driver in real
	// deployments).
	ControlRPCLatency = 200 * time.Microsecond
)

// SparkAggregateRate returns the modelled vanilla-Spark aggregation
// throughput (tuples/s) at the given core count: cores contribute the
// parallelizable per-tuple work while the shared serialized portion bounds
// scaling (Fig. 3(a)'s sublinear curve).
func SparkAggregateRate(cores int) float64 {
	perTuple := SparkTupleCost.Seconds()/float64(cores) + SparkSharedCost.Seconds()
	return 1 / perTuple
}
