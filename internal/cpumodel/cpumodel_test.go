package cpumodel

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func TestExecConsumesCPU(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, 2)
	var endA, endB, endC sim.Time
	s.Spawn("a", func(p *sim.Proc) { h.Exec(p, 10*time.Microsecond); endA = p.Now() })
	s.Spawn("b", func(p *sim.Proc) { h.Exec(p, 10*time.Microsecond); endB = p.Now() })
	s.Spawn("c", func(p *sim.Proc) { h.Exec(p, 10*time.Microsecond); endC = p.Now() })
	s.Run(0)
	if endA != sim.Time(10*time.Microsecond) || endB != sim.Time(10*time.Microsecond) {
		t.Fatalf("parallel execs ended at %v/%v", endA, endB)
	}
	if endC != sim.Time(20*time.Microsecond) {
		t.Fatalf("queued exec ended at %v, want 20µs", endC)
	}
	if got := h.BusyTime(); got != 30*time.Microsecond {
		t.Fatalf("BusyTime = %v", got)
	}
}

func TestUtilization(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, 4)
	s.Spawn("w", func(p *sim.Proc) { h.Exec(p, 10*time.Microsecond) })
	s.Run(0)
	// 1 core busy 10µs of 4 cores × 10µs = 25%.
	if u := h.Utilization(); u < 0.249 || u > 0.251 {
		t.Fatalf("Utilization = %v, want 0.25", u)
	}
	if h.NumCores() != 4 {
		t.Fatalf("NumCores = %d", h.NumCores())
	}
}

func TestThreadRun(t *testing.T) {
	s := sim.New(1)
	h := NewHost(s, 1)
	th := h.NewThread()
	var end sim.Time
	s.Spawn("t", func(p *sim.Proc) {
		th.Run(p, 5*time.Microsecond)
		th.Run(p, 5*time.Microsecond)
		end = p.Now()
	})
	s.Run(0)
	if end != sim.Time(10*time.Microsecond) {
		t.Fatalf("end = %v", end)
	}
}

func TestSparkAggregateRateCalibration(t *testing.T) {
	// The calibration targets from Fig. 3(a): ≈7 M AKV/s at 4 cores,
	// saturating near ≈43 M at 56 cores, with clearly sublinear scaling.
	r4, r16, r56 := SparkAggregateRate(4), SparkAggregateRate(16), SparkAggregateRate(56)
	if r4 < 6e6 || r4 > 9e6 {
		t.Fatalf("rate(4) = %.2e, want ~7.2e6", r4)
	}
	if r56 < 40e6 || r56 > 48e6 {
		t.Fatalf("rate(56) = %.2e, want ~43e6", r56)
	}
	if !(r4 < r16 && r16 < r56) {
		t.Fatal("rate not monotonic in cores")
	}
	// Sublinear: 56 cores must be well under 14× the 4-core rate.
	if r56/r4 > 8 {
		t.Fatalf("scaling %f× looks linear; shared cost not applied", r56/r4)
	}
}
