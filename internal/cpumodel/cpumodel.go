// Package cpumodel models host CPU capacity and per-operation costs.
//
// The paper's testbed servers have 56 Xeon Gold 5120T cores (§5.1). Each
// simulated host owns a sim.Resource of that many cores; model code runs
// work as processes that hold a core for the operation's calibrated virtual
// duration. Utilization and busy-time metrics fall out of the resource
// accounting and reproduce the paper's CPU-usage comparisons (Fig. 7).
package cpumodel

import (
	"time"

	"repro/internal/sim"
)

// Host is one server's CPU.
type Host struct {
	sim   *sim.Simulation
	cores *sim.Resource
}

// NewHost returns a host with the given core count.
func NewHost(s *sim.Simulation, cores int) *Host {
	return &Host{sim: s, cores: sim.NewResource(s, cores)}
}

// Cores exposes the underlying resource (for custom acquire patterns such
// as threads pinned for a task's lifetime).
func (h *Host) Cores() *sim.Resource { return h.cores }

// NumCores returns the host's core count.
func (h *Host) NumCores() int { return h.cores.Capacity() }

// Exec runs d of CPU work on one core, blocking p for queueing plus d.
func (h *Host) Exec(p *sim.Proc, d time.Duration) { h.cores.Use(p, d) }

// Utilization returns the average busy fraction of the host's cores.
func (h *Host) Utilization() float64 { return h.cores.Utilization() }

// BusyTime returns aggregate core-busy time.
func (h *Host) BusyTime() time.Duration { return h.cores.BusyTime() }

// Thread is a core held for an extended period (e.g. a DPDK data-channel
// thread pinned for the daemon's lifetime). Work executed on a Thread pays
// no per-operation acquire cost; the core counts as busy only while work
// runs (DPDK threads spin, but the paper reports effective CPU use as
// channels × cores, which per-work accounting reproduces).
type Thread struct {
	host *Host
}

// NewThread returns a thread abstraction on h.
func (h *Host) NewThread() *Thread { return &Thread{host: h} }

// Run executes d of CPU work on the thread (blocking p for exactly d —
// pinned threads do not queue against other threads).
func (t *Thread) Run(p *sim.Proc, d time.Duration) {
	t.host.cores.Acquire(p)
	p.Sleep(d)
	t.host.cores.Release()
}
