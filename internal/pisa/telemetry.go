package pisa

import "repro/internal/telemetry"

// AttachTelemetry exposes the pipeline's resource counters as callback
// gauges on reg: pisa.passes (packet passes begun), pisa.sram_bytes
// (SRAM claimed by register arrays), and one pisa.array_accesses{array=…}
// per register array (data-plane RMWs — together with the per-task
// conflict counters in switchd this attributes where aggregation work
// lands). Callbacks are polled only at sample/export time, so the
// per-packet RMW path is untouched. A nil registry is a no-op.
func (p *Pipeline) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("pisa.passes", func() int64 { return int64(p.passes) })
	reg.GaugeFunc("pisa.sram_bytes", func() int64 { return int64(p.SRAMBytes()) })
	for _, st := range p.stages {
		for _, ra := range st.arrays {
			ra := ra
			reg.GaugeFunc("pisa.array_accesses", func() int64 { return int64(ra.accesses) },
				telemetry.L("array", ra.name))
		}
	}
}
