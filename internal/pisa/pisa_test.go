package pisa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestAddArrayResourceLimits(t *testing.T) {
	p := NewPipeline(Config{Stages: 2, MaxArraysPerStage: 2, SRAMPerStageBytes: 1024})
	if _, err := p.AddArray(0, "a", 64, 64); err != nil { // 512 B
		t.Fatal(err)
	}
	if _, err := p.AddArray(0, "b", 64, 64); err != nil { // 1024 B total
		t.Fatal(err)
	}
	// Third array in stage 0: too many arrays.
	if _, err := p.AddArray(0, "c", 1, 1); err == nil {
		t.Fatal("5th array accepted beyond MaxArraysPerStage")
	}
	// Stage 1 has room, but a huge array blows SRAM.
	if _, err := p.AddArray(1, "big", 1024*1024, 64); err == nil {
		t.Fatal("array exceeding SRAM accepted")
	}
	if _, err := p.AddArray(9, "x", 1, 1); err == nil {
		t.Fatal("out-of-range stage accepted")
	}
	if _, err := p.AddArray(1, "w0", 1, 0); err == nil {
		t.Fatal("zero-width array accepted")
	}
	if _, err := p.AddArray(1, "w65", 1, 65); err == nil {
		t.Fatal("65-bit array accepted")
	}
	if _, err := p.AddArray(1, "e0", 0, 8); err == nil {
		t.Fatal("zero-entry array accepted")
	}
}

func TestSRAMAccounting(t *testing.T) {
	p := NewPipeline(DefaultConfig())
	// An ASK aggregator array: 32768 × 64-bit = 256 KB.
	p.MustAddArray(0, "aa0", 32768, 64)
	if got := p.StageSRAMBytes(0); got != 256<<10 {
		t.Fatalf("stage SRAM = %d, want %d", got, 256<<10)
	}
	// Four fit in one stage within the 1280 KB budget.
	p.MustAddArray(1, "aa1", 32768, 64)
	p.MustAddArray(1, "aa2", 32768, 64)
	p.MustAddArray(1, "aa3", 32768, 64)
	p.MustAddArray(1, "aa4", 32768, 64)
	if got := p.StageSRAMBytes(1); got != 1024<<10 {
		t.Fatalf("stage 1 SRAM = %d, want 1 MB", got)
	}
	if got := p.SRAMBytes(); got != 1280<<10 {
		t.Fatalf("total SRAM = %d", got)
	}
}

func TestSealPreventsLayoutChanges(t *testing.T) {
	p := NewPipeline(DefaultConfig())
	p.MustAddArray(0, "a", 8, 8)
	p.Begin() // auto-seals
	if _, err := p.AddArray(0, "late", 8, 8); err == nil {
		t.Fatal("array added after first pass")
	}
}

func TestRMWOncePerPass(t *testing.T) {
	p := NewPipeline(DefaultConfig())
	ra := p.MustAddArray(0, "a", 8, 32)
	ps := p.Begin()
	ra.RMW(ps, 0, func(cur uint64) (uint64, uint64) { return cur + 1, cur })
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("second RMW in one pass did not panic")
			} else if !strings.Contains(r.(string), "twice") {
				t.Errorf("unexpected panic: %v", r)
			}
		}()
		ra.RMW(ps, 1, func(cur uint64) (uint64, uint64) { return cur, cur })
	}()
	// A new pass may access it again.
	ps2 := p.Begin()
	got := ra.RMW(ps2, 0, func(cur uint64) (uint64, uint64) { return cur, cur })
	if got != 1 {
		t.Fatalf("entry = %d, want 1", got)
	}
}

func TestStageOrderEnforced(t *testing.T) {
	p := NewPipeline(DefaultConfig())
	early := p.MustAddArray(1, "early", 8, 32)
	late := p.MustAddArray(5, "late", 8, 32)
	ps := p.Begin()
	late.RMW(ps, 0, func(cur uint64) (uint64, uint64) { return cur, cur })
	defer func() {
		if recover() == nil {
			t.Fatal("backwards stage access did not panic")
		}
	}()
	early.RMW(ps, 0, func(cur uint64) (uint64, uint64) { return cur, cur })
}

func TestSameStageMultipleArrays(t *testing.T) {
	// Distinct arrays in one stage may each be accessed once in a pass.
	p := NewPipeline(DefaultConfig())
	a := p.MustAddArray(3, "a", 8, 32)
	b := p.MustAddArray(3, "b", 8, 32)
	ps := p.Begin()
	a.RMW(ps, 0, func(cur uint64) (uint64, uint64) { return 1, 0 })
	b.RMW(ps, 0, func(cur uint64) (uint64, uint64) { return 2, 0 })
	if a.ControlRead(0) != 1 || b.ControlRead(0) != 2 {
		t.Fatal("same-stage arrays did not both update")
	}
}

func TestWidthMasking(t *testing.T) {
	p := NewPipeline(DefaultConfig())
	ra := p.MustAddArray(0, "narrow", 4, 8) // 8-bit entries
	ps := p.Begin()
	ra.RMW(ps, 0, func(cur uint64) (uint64, uint64) { return 0x1ff, 0 })
	if got := ra.ControlRead(0); got != 0xff {
		t.Fatalf("8-bit entry holds %#x, want masked 0xff", got)
	}
	// 64-bit entries keep all bits. (New pipeline: the first is sealed.)
	p2 := NewPipeline(DefaultConfig())
	full := p2.MustAddArray(1, "full", 4, 64)
	ps2 := p2.Begin()
	full.RMW(ps2, 0, func(cur uint64) (uint64, uint64) { return ^uint64(0), 0 })
	if got := full.ControlRead(0); got != ^uint64(0) {
		t.Fatalf("64-bit entry holds %#x", got)
	}
}

func TestIndexBounds(t *testing.T) {
	p := NewPipeline(DefaultConfig())
	ra := p.MustAddArray(0, "a", 4, 32)
	ps := p.Begin()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	ra.RMW(ps, 4, func(cur uint64) (uint64, uint64) { return cur, cur })
}

func TestControlPlaneOps(t *testing.T) {
	p := NewPipeline(DefaultConfig())
	ra := p.MustAddArray(0, "a", 16, 16)
	ra.ControlWrite(3, 0x12345)
	if got := ra.ControlRead(3); got != 0x2345 {
		t.Fatalf("ControlRead = %#x, want masked 0x2345", got)
	}
	ra.ControlFill(0, 16, 7)
	for i := 0; i < 16; i++ {
		if ra.ControlRead(i) != 7 {
			t.Fatalf("entry %d = %d after fill", i, ra.ControlRead(i))
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad ControlFill range did not panic")
			}
		}()
		ra.ControlFill(0, 17, 0)
	}()
}

func TestPassCounter(t *testing.T) {
	p := NewPipeline(DefaultConfig())
	p.MustAddArray(0, "a", 4, 32)
	for i := 0; i < 5; i++ {
		p.Begin()
	}
	if p.Passes() != 5 {
		t.Fatalf("Passes = %d, want 5", p.Passes())
	}
}

func TestRMWAtomicSemantics(t *testing.T) {
	// Property: a sequence of RMW increments behaves like a counter — reads
	// always observe all prior writes (stage processes one packet at a time).
	p := NewPipeline(DefaultConfig())
	ra := p.MustAddArray(0, "ctr", 1, 64)
	f := func(n uint8) bool {
		start := ra.ControlRead(0)
		for i := 0; i < int(n); i++ {
			ps := p.Begin()
			ra.RMW(ps, 0, func(cur uint64) (uint64, uint64) { return cur + 1, cur })
		}
		return ra.ControlRead(0) == start+uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBadPipelineConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	NewPipeline(Config{})
}

func TestDescribe(t *testing.T) {
	p := NewPipeline(DefaultConfig())
	p.MustAddArray(0, "max_seq", 512, 32)
	p.MustAddArray(2, "aa0", 32768, 64)
	d := p.Describe()
	for _, want := range []string{"stage  0", "max_seq: 512 x 32b", "aa0: 32768 x 64b", "total SRAM"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
	// Empty stages are omitted.
	if strings.Contains(d, "stage  1") {
		t.Fatalf("empty stage printed:\n%s", d)
	}
}
