// Package pisa models the Protocol Independent Switch Architecture (§2.2.1)
// closely enough to enforce the hardware restrictions that shape ASK's
// design:
//
//   - a pipeline is a fixed sequence of match-action stages;
//   - each stage has isolated, scarce SRAM (1280 KB on Tofino-class
//     hardware) that programs declare as register arrays;
//   - at most four register arrays fit in one stage;
//   - a packet traverses the stages of a pipeline sequentially exactly once
//     per pass, and each register array can be read and written at most once
//     during that pass (a single atomic read-modify-write);
//   - a stage processes one packet at a time, so a register action is atomic
//     with respect to other packets.
//
// Programs that violate these restrictions panic at build or access time —
// the same wall a P4 programmer hits at compile time — which keeps the ASK
// switch program (internal/switchd) honest about its vectorization and
// memory layout.
package pisa

import (
	"fmt"
	"strings"
)

// Config describes the pipeline resources of one switch pipeline.
type Config struct {
	// Stages is the number of match-action stages in the pipeline.
	Stages int
	// MaxArraysPerStage bounds the register arrays declared per stage.
	MaxArraysPerStage int
	// SRAMPerStageBytes is each stage's isolated SRAM budget.
	SRAMPerStageBytes int
}

// DefaultConfig returns Tofino-class resources (§3.2.1: 1280 KB/stage ×
// 16 stages per pipeline, 4 register arrays per stage).
func DefaultConfig() Config {
	return Config{
		Stages:            16,
		MaxArraysPerStage: 4,
		SRAMPerStageBytes: 1280 << 10,
	}
}

// Pipeline is one switch pipeline being programmed and then exercised.
type Pipeline struct {
	cfg    Config
	stages []*stage
	sealed bool
	passes uint64
}

type stage struct {
	index     int
	arrays    []*RegisterArray
	sramBytes int
}

// RegisterArray is stateful per-stage SRAM: a fixed array of entries of a
// fixed bit width, supporting one atomic read-modify-write per packet pass.
type RegisterArray struct {
	name      string
	stage     int
	widthBits int
	mask      uint64
	entries   []uint64
	lastPass  uint64
	accesses  uint64
}

// NewPipeline returns an empty pipeline with the given resources.
func NewPipeline(cfg Config) *Pipeline {
	if cfg.Stages <= 0 || cfg.MaxArraysPerStage <= 0 || cfg.SRAMPerStageBytes <= 0 {
		panic("pisa: invalid pipeline config")
	}
	p := &Pipeline{cfg: cfg}
	for i := 0; i < cfg.Stages; i++ {
		p.stages = append(p.stages, &stage{index: i})
	}
	return p
}

// Config returns the pipeline's resource configuration.
func (p *Pipeline) Config() Config { return p.cfg }

// AddArray declares a register array with entries×widthBits of SRAM in the
// given stage. It returns an error if the program no longer fits: too many
// arrays in the stage, SRAM budget exceeded, or the pipeline is sealed.
func (p *Pipeline) AddArray(stageIdx int, name string, entries, widthBits int) (*RegisterArray, error) {
	if p.sealed {
		return nil, fmt.Errorf("pisa: pipeline sealed, cannot add %q", name)
	}
	if stageIdx < 0 || stageIdx >= len(p.stages) {
		return nil, fmt.Errorf("pisa: stage %d out of range [0,%d)", stageIdx, len(p.stages))
	}
	if entries <= 0 {
		return nil, fmt.Errorf("pisa: array %q must have positive entries", name)
	}
	if widthBits <= 0 || widthBits > 64 {
		return nil, fmt.Errorf("pisa: array %q width %d out of range (1..64)", name, widthBits)
	}
	st := p.stages[stageIdx]
	if len(st.arrays) >= p.cfg.MaxArraysPerStage {
		return nil, fmt.Errorf("pisa: stage %d already has %d register arrays (max %d)",
			stageIdx, len(st.arrays), p.cfg.MaxArraysPerStage)
	}
	bytes := (entries*widthBits + 7) / 8
	if st.sramBytes+bytes > p.cfg.SRAMPerStageBytes {
		return nil, fmt.Errorf("pisa: array %q (%d B) exceeds stage %d SRAM budget (%d of %d B used)",
			name, bytes, stageIdx, st.sramBytes, p.cfg.SRAMPerStageBytes)
	}
	st.sramBytes += bytes
	var mask uint64
	if widthBits == 64 {
		mask = ^uint64(0)
	} else {
		mask = (1 << uint(widthBits)) - 1
	}
	ra := &RegisterArray{
		name:      name,
		stage:     stageIdx,
		widthBits: widthBits,
		mask:      mask,
		entries:   make([]uint64, entries),
	}
	st.arrays = append(st.arrays, ra)
	return ra, nil
}

// MustAddArray is AddArray that panics on error, for static program layout.
func (p *Pipeline) MustAddArray(stageIdx int, name string, entries, widthBits int) *RegisterArray {
	ra, err := p.AddArray(stageIdx, name, entries, widthBits)
	if err != nil {
		panic(err)
	}
	return ra
}

// Seal finalizes the program layout; no further arrays may be added.
func (p *Pipeline) Seal() { p.sealed = true }

// SRAMBytes returns the total SRAM declared across all stages.
func (p *Pipeline) SRAMBytes() int {
	total := 0
	for _, st := range p.stages {
		total += st.sramBytes
	}
	return total
}

// StageSRAMBytes returns the SRAM declared in one stage.
func (p *Pipeline) StageSRAMBytes(stageIdx int) int { return p.stages[stageIdx].sramBytes }

// Passes returns the number of packet passes begun so far.
func (p *Pipeline) Passes() uint64 { return p.passes }

// Pass represents one packet traversing the pipeline. Register accesses
// during the pass are checked for PISA legality: stages must be visited in
// non-decreasing order and each array at most once.
type Pass struct {
	pipe     *Pipeline
	id       uint64
	curStage int
}

// Begin starts a new packet pass.
func (p *Pipeline) Begin() *Pass {
	if !p.sealed {
		// Auto-seal on first traffic: layout is complete once packets flow.
		p.sealed = true
	}
	p.passes++
	return &Pass{pipe: p, id: p.passes, curStage: -1}
}

// Name returns the array's name.
func (ra *RegisterArray) Name() string { return ra.name }

// Len returns the number of entries.
func (ra *RegisterArray) Len() int { return len(ra.entries) }

// WidthBits returns the per-entry width.
func (ra *RegisterArray) WidthBits() int { return ra.widthBits }

// Accesses returns the total number of data-plane accesses so far.
func (ra *RegisterArray) Accesses() uint64 { return ra.accesses }

// RMW performs the array's single allowed access for this pass: an atomic
// read-modify-write of entry idx. action receives the current value and
// returns the value to store and an arbitrary result to surface (e.g. the
// previous value, or a match flag). It panics on PISA violations: a second
// access in the same pass, visiting an earlier stage, or a bad index.
func (ra *RegisterArray) RMW(ps *Pass, idx int, action func(cur uint64) (next, result uint64)) uint64 {
	if ra.lastPass == ps.id {
		panic(fmt.Sprintf("pisa: register array %q accessed twice in one pass", ra.name))
	}
	if ra.stage < ps.curStage {
		panic(fmt.Sprintf("pisa: pass moved backwards to stage %d (array %q) after stage %d",
			ra.stage, ra.name, ps.curStage))
	}
	if idx < 0 || idx >= len(ra.entries) {
		panic(fmt.Sprintf("pisa: array %q index %d out of range [0,%d)", ra.name, idx, len(ra.entries)))
	}
	ps.curStage = ra.stage
	ra.lastPass = ps.id
	ra.accesses++
	next, result := action(ra.entries[idx])
	ra.entries[idx] = next & ra.mask
	return result
}

// ControlRead reads entry idx from the control plane (no pass semantics).
// Control-plane access does not contend with the data plane in this model;
// on real hardware it is orders of magnitude slower, which callers model
// with explicit latency.
func (ra *RegisterArray) ControlRead(idx int) uint64 { return ra.entries[idx] }

// ControlWrite writes entry idx from the control plane.
func (ra *RegisterArray) ControlWrite(idx int, v uint64) { ra.entries[idx] = v & ra.mask }

// ControlFill sets entries [lo,hi) to v from the control plane.
func (ra *RegisterArray) ControlFill(lo, hi int, v uint64) {
	if lo < 0 || hi > len(ra.entries) || lo > hi {
		panic(fmt.Sprintf("pisa: ControlFill range [%d,%d) out of bounds for %q", lo, hi, ra.name))
	}
	v &= ra.mask
	for i := lo; i < hi; i++ {
		ra.entries[i] = v
	}
}

// Describe renders the pipeline layout as a table: per stage, the declared
// register arrays with entry counts, widths, and SRAM use — the P4
// programmer's resource view.
func (p *Pipeline) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PISA pipeline: %d stages, %d KB SRAM/stage, max %d register arrays/stage\n",
		p.cfg.Stages, p.cfg.SRAMPerStageBytes>>10, p.cfg.MaxArraysPerStage)
	for i, st := range p.stages {
		if len(st.arrays) == 0 {
			continue
		}
		fmt.Fprintf(&b, "stage %2d: %4d KB", i, st.sramBytes>>10)
		for _, ra := range st.arrays {
			fmt.Fprintf(&b, "  [%s: %d x %db]", ra.name, len(ra.entries), ra.widthBits)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "total SRAM: %.2f MB\n", float64(p.SRAMBytes())/(1<<20))
	return b.String()
}
