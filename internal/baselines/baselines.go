// Package baselines implements the host-only comparison systems of §5.1:
//
//   - PreAggr: every sender thread sorts its shard by key and merges
//     neighbours (pre-aggregation), ships the small intermediate result,
//     and the receiver merges partials — the strongest host-only
//     aggregation strategy (Fig. 7).
//   - NoAggr: pure reliable network transmission with 1500-byte MTU
//     packets and no aggregation — the transport-efficiency yardstick
//     (Fig. 13).
//
// Both run on the same simulated substrate (virtual time, byte-accurate
// links, calibrated CPU costs) as ASK, so completion times and goodput are
// directly comparable.
package baselines

import (
	"time"

	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/window"
	"repro/internal/wire"
)

// mtuPayload is the usable payload of a 1500-byte MTU packet after headers.
const mtuPayload = wire.MTU - wire.HeaderBytes

// PreAggrConfig parameterizes a PreAggr run.
type PreAggrConfig struct {
	Op      core.Op
	Threads int // mapper threads on the sender = reducer threads on the receiver
	Cores   int // cores per host (0: paper default 56)
	Link    netsim.LinkConfig
	Seed    int64
}

// PreAggrReport is the outcome of a PreAggr run.
type PreAggrReport struct {
	Result core.Result
	// JCT is the job completion time on virtual time.
	JCT time.Duration
	// SenderBusy/ReceiverBusy are aggregate core-busy times.
	SenderBusy   time.Duration
	ReceiverBusy time.Duration
	// IntermediateBytes is the shipped pre-aggregated volume.
	IntermediateBytes int64
}

// RunPreAggr executes the PreAggr baseline: one sending host with
// cfg.Threads mapper threads, one receiving host merging partials.
func RunPreAggr(cfg PreAggrConfig, stream core.Stream) PreAggrReport {
	if cfg.Cores == 0 {
		cfg.Cores = cpumodel.DefaultCores
	}
	if cfg.Link.BandwidthBps == 0 {
		cfg.Link = netsim.DefaultLinkConfig()
	}
	s := sim.New(cfg.Seed)
	n := netsim.New(s, cfg.Link)
	n.AttachSwitch(&netsim.ForwardingSwitch{Net: n})

	senderCPU := cpumodel.NewHost(s, cfg.Cores)
	recvCPU := cpumodel.NewHost(s, cfg.Cores)

	rx := &preAggrReceiver{
		s:      s,
		cpu:    recvCPU,
		op:     cfg.Op,
		result: make(core.Result),
		wg:     sim.NewWaitGroup(s),
	}
	rx.wg.Add(cfg.Threads)
	n.AttachHost(0, rx)
	tx := &senderHost{}
	n.AttachHost(1, tx)

	shards := aggregate.Shard(stream, cfg.Threads)
	report := PreAggrReport{}
	for i := 0; i < cfg.Threads; i++ {
		shard := shards[i]
		s.Spawn("mapper", func(p *sim.Proc) {
			// Sort-merge pre-aggregation: calibrated per-tuple cost.
			senderCPU.Exec(p, time.Duration(len(shard))*cpumodel.HostAggregateCost)
			partial := aggregate.SortMerge(cfg.Op, shard)
			// Ship the intermediate result in MTU packets.
			bytes := aggregate.ResultBytes(partial)
			report.IntermediateBytes += int64(bytes)
			thread := senderCPU.NewThread()
			for sent := 0; sent < bytes || bytes == 0; sent += mtuPayload {
				last := sent+mtuPayload >= bytes
				thread.Run(p, cpumodel.PacketIOCost)
				pay := mtuPayload
				if bytes-sent < pay {
					pay = bytes - sent
				}
				pkt := &wire.Packet{Type: wire.TypeCtrl}
				if last {
					pkt.Ctrl = partial
				}
				n.HostSend(&netsim.Frame{
					Src: 1, Dst: 0, Pkt: pkt,
					WireBytes: pay + wire.PerPacketOverhead,
					GoodBytes: pay,
				})
				if bytes == 0 {
					break
				}
			}
		})
	}
	var done sim.Time
	s.Spawn("join", func(p *sim.Proc) {
		rx.wg.Wait(p)
		done = p.Now()
	})
	s.Run(0)
	report.Result = rx.result
	report.JCT = time.Duration(done)
	report.SenderBusy = senderCPU.BusyTime()
	report.ReceiverBusy = recvCPU.BusyTime()
	return report
}

// preAggrReceiver merges arriving partial results.
type preAggrReceiver struct {
	s      *sim.Simulation
	cpu    *cpumodel.Host
	op     core.Op
	result core.Result
	wg     *sim.WaitGroup
}

func (r *preAggrReceiver) HandleFrame(f *netsim.Frame) {
	partial, ok := f.Pkt.Ctrl.(core.Result)
	if !ok {
		return // non-final chunk: bytes already accounted on the wire
	}
	r.s.Spawn("reducer", func(p *sim.Proc) {
		r.cpu.Exec(p, time.Duration(len(partial))*cpumodel.HostAggregateCost)
		r.result.Merge(partial, r.op)
		r.wg.Done()
	})
}

// senderHost absorbs stray frames at a sending-only host.
type senderHost struct{}

func (senderHost) HandleFrame(*netsim.Frame) {}

// NoAggrConfig parameterizes a NoAggr transfer.
type NoAggrConfig struct {
	// Senders is the number of sending hosts (all toward one receiver).
	Senders int
	// ChannelsPerSender is the number of parallel sending threads/flows.
	ChannelsPerSender int
	// BytesPerSender is each sender's application payload volume.
	BytesPerSender int64
	Cores          int
	Link           netsim.LinkConfig
	Window         int
	Seed           int64
}

// NoAggrReport is the outcome of a NoAggr transfer.
type NoAggrReport struct {
	Elapsed time.Duration
	// RxWireBytes/RxGoodBytes are measured at the receiver's downlink.
	RxWireBytes int64
	RxGoodBytes int64
	// SenderBusy is total sending-side core-busy time.
	SenderBusy time.Duration
	// PerSenderGoodbps is the average application goodput per sender.
	PerSenderGoodbps float64
	// GoodputGbps / WireGbps are receiver-side rates.
	GoodputGbps float64
	WireGbps    float64
}

// noAggrReceiver acknowledges every data frame.
type noAggrReceiver struct {
	net *netsim.Network
}

func (r *noAggrReceiver) HandleFrame(f *netsim.Frame) {
	if f.Pkt.Type != wire.TypeData {
		return
	}
	ack := &wire.Packet{Type: wire.TypeAck, AckFor: wire.TypeData, Flow: f.Pkt.Flow, Seq: f.Pkt.Seq}
	r.net.HostSend(&netsim.Frame{Src: f.Dst, Dst: f.Pkt.Flow.Host, Pkt: ack, WireBytes: wire.PerPacketOverhead})
}

// noAggrSender routes ACKs back to its channel windows.
type noAggrSender struct {
	wins []*window.Sender
}

func (h *noAggrSender) HandleFrame(f *netsim.Frame) {
	if f.Pkt.Type == wire.TypeAck {
		h.wins[int(f.Pkt.Flow.Channel)].Ack(f.Pkt.Seq)
	}
}

// RunNoAggr executes a NoAggr bulk transfer and reports throughput.
func RunNoAggr(cfg NoAggrConfig) NoAggrReport {
	if cfg.Cores == 0 {
		cfg.Cores = cpumodel.DefaultCores
	}
	if cfg.Link.BandwidthBps == 0 {
		cfg.Link = netsim.DefaultLinkConfig()
	}
	if cfg.Window == 0 {
		cfg.Window = 256
	}
	// Bulk MTU transfers queue far more wire time than ASK's small
	// packets, so the retransmission timeout must cover NIC queueing.
	const bulkTimeout = 2 * time.Millisecond
	s := sim.New(cfg.Seed)
	n := netsim.New(s, cfg.Link)
	n.AttachSwitch(&netsim.ForwardingSwitch{Net: n})
	n.AttachHost(0, &noAggrReceiver{net: n})

	var senderCPUs []*cpumodel.Host
	for i := 1; i <= cfg.Senders; i++ {
		host := core.HostID(i)
		cpu := cpumodel.NewHost(s, cfg.Cores)
		senderCPUs = append(senderCPUs, cpu)
		h := &noAggrSender{}
		n.AttachHost(host, h)
		share := cfg.BytesPerSender / int64(cfg.ChannelsPerSender)
		for c := 0; c < cfg.ChannelsPerSender; c++ {
			flow := core.FlowKey{Host: host, Channel: core.ChannelID(c)}
			win := window.NewSender(s, cfg.Window, bulkTimeout, func(pkt *wire.Packet) {
				n.HostSend(&netsim.Frame{
					Src: host, Dst: 0, Pkt: pkt,
					WireBytes: mtuPayload + wire.PerPacketOverhead,
					GoodBytes: mtuPayload,
				})
			})
			h.wins = append(h.wins, win)
			thread := cpu.NewThread()
			up := n.Uplink(host)
			s.Spawn("noaggr-tx", func(p *sim.Proc) {
				for sent := int64(0); sent < share; sent += mtuPayload {
					thread.Run(p, cpumodel.PacketIOCost)
					// Bounded TX ring: do not queue more wire time than
					// the ring holds (models DPDK descriptor backpressure).
					if up.Backlog() > 50*time.Microsecond {
						p.SleepUntil(up.NextFree().Add(-25 * time.Microsecond))
					}
					win.SendBlocking(p, &wire.Packet{Type: wire.TypeData, Flow: flow})
				}
				win.WaitIdle(p)
			})
		}
	}
	end := s.Run(0)
	down := n.Downlink(0).Stats()
	rep := NoAggrReport{
		Elapsed:     time.Duration(end),
		RxWireBytes: down.TxWireBytes,
		RxGoodBytes: down.TxGoodBytes,
	}
	for _, cpu := range senderCPUs {
		rep.SenderBusy += cpu.BusyTime()
	}
	secs := rep.Elapsed.Seconds()
	if secs > 0 {
		rep.GoodputGbps = float64(rep.RxGoodBytes) * 8 / secs / 1e9
		rep.WireGbps = float64(rep.RxWireBytes) * 8 / secs / 1e9
		rep.PerSenderGoodbps = rep.GoodputGbps / float64(cfg.Senders)
	}
	return rep
}
