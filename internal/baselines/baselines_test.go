package baselines

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/workload"
)

func TestPreAggrExact(t *testing.T) {
	spec := workload.Uniform(500, 50000, 1)
	rep := RunPreAggr(PreAggrConfig{Op: core.OpSum, Threads: 8, Seed: 1}, spec.Stream())
	want := spec.Reference(core.OpSum)
	if !rep.Result.Equal(want) {
		t.Fatalf("PreAggr incorrect: %s", rep.Result.Diff(want, 5))
	}
	if rep.JCT <= 0 || rep.SenderBusy <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.IntermediateBytes <= 0 {
		t.Fatal("no intermediate volume")
	}
}

func TestPreAggrThreadScaling(t *testing.T) {
	// More threads → shorter JCT (near-linear below the core count),
	// matching the Fig. 7 PreAggr curve.
	spec := workload.Uniform(1000, 200000, 2)
	j8 := RunPreAggr(PreAggrConfig{Op: core.OpSum, Threads: 8, Seed: 1}, spec.Stream()).JCT
	j32 := RunPreAggr(PreAggrConfig{Op: core.OpSum, Threads: 32, Seed: 1}, spec.Stream()).JCT
	ratio := float64(j8) / float64(j32)
	if ratio < 2.5 || ratio > 4.5 {
		t.Fatalf("8→32 thread speedup %.2f×, want near 4×", ratio)
	}
}

func TestPreAggrReducesTraffic(t *testing.T) {
	// 200k tuples over 500 keys: intermediate must be ≪ raw 8 B/tuple.
	spec := workload.Uniform(500, 200000, 3)
	rep := RunPreAggr(PreAggrConfig{Op: core.OpSum, Threads: 4, Seed: 1}, spec.Stream())
	raw := int64(200000 * 8)
	if rep.IntermediateBytes > raw/20 {
		t.Fatalf("intermediate %d bytes vs raw %d: pre-aggregation ineffective", rep.IntermediateBytes, raw)
	}
}

func TestNoAggrSaturatesLink(t *testing.T) {
	rep := RunNoAggr(NoAggrConfig{
		Senders: 1, ChannelsPerSender: 4, BytesPerSender: 50 << 20, Seed: 1,
	})
	// 1446/1524 ≈ 94.9% goodput efficiency at 100 Gbps line rate.
	if rep.GoodputGbps < 85 || rep.GoodputGbps > 96 {
		t.Fatalf("NoAggr goodput %.2f Gbps, want ~90-95", rep.GoodputGbps)
	}
	if rep.WireGbps < 95 || rep.WireGbps > 100.5 {
		t.Fatalf("NoAggr wire rate %.2f Gbps, want ~100", rep.WireGbps)
	}
	if rep.RxGoodBytes != 50<<20 && rep.RxGoodBytes < 50<<20 {
		t.Fatalf("received %d good bytes, want >= %d", rep.RxGoodBytes, 50<<20)
	}
}

func TestNoAggrReceiverBottleneck(t *testing.T) {
	// Fig. 13(b): per-sender throughput is inversely proportional to the
	// sender count because the receiver's link saturates.
	one := RunNoAggr(NoAggrConfig{Senders: 1, ChannelsPerSender: 4, BytesPerSender: 20 << 20, Seed: 1})
	four := RunNoAggr(NoAggrConfig{Senders: 4, ChannelsPerSender: 4, BytesPerSender: 20 << 20, Seed: 1})
	ratio := one.PerSenderGoodbps / four.PerSenderGoodbps
	if ratio < 3.3 || ratio > 4.7 {
		t.Fatalf("1→4 senders per-sender ratio %.2f, want ~4", ratio)
	}
}

func TestNoAggrCPUBound(t *testing.T) {
	// With a single channel the sender thread's PPS limits throughput
	// below line rate at tiny MTU... emulate by slowing the link instead:
	// verify CPU busy accounting is sane.
	rep := RunNoAggr(NoAggrConfig{Senders: 1, ChannelsPerSender: 1, BytesPerSender: 10 << 20, Seed: 1})
	if rep.SenderBusy <= 0 || rep.SenderBusy > rep.Elapsed*2 {
		t.Fatalf("SenderBusy = %v over %v", rep.SenderBusy, rep.Elapsed)
	}
}

func TestNoAggrUnderLossStillCompletes(t *testing.T) {
	link := netsim.DefaultLinkConfig()
	link.Fault.LossProb = 0.02
	rep := RunNoAggr(NoAggrConfig{
		Senders: 1, ChannelsPerSender: 2, BytesPerSender: 4 << 20, Link: link, Seed: 2,
	})
	if rep.RxGoodBytes < 4<<20 {
		t.Fatalf("transfer incomplete under loss: %d bytes", rep.RxGoodBytes)
	}
	if rep.Elapsed <= 0 || rep.Elapsed > 10*time.Second {
		t.Fatalf("elapsed %v", rep.Elapsed)
	}
}
