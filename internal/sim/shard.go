// Conservative parallel sharded execution (ROADMAP item 1).
//
// A ShardGroup partitions one simulated system into K shard lanes plus a
// root lane. Each lane is a full Simulation — its own clock, event store,
// heap, and rng — owning a disjoint slice of the model state (one rack or
// leaf block of the fabric, certified by the shardsafety analyzer). The
// group executes the union of the lanes under a conservative barrier
// protocol:
//
//   - Lookahead. Every cross-lane interaction travels over a declared cut
//     edge (a netsim link whose delivery is a mailbox) with a minimum
//     model delay L = propagation + switch latency. An event executing at
//     time t can therefore affect another lane no earlier than t+L.
//
//   - Windows. The group repeatedly computes T = the earliest pending
//     event across all lanes and executes the window [T, T+L): every lane
//     processes its own events inside the window on its own goroutine, in
//     exactly the per-lane order the serial kernel would use. By the
//     lookahead argument no event executed in the window can schedule
//     into another lane inside the window, so lanes are independent and
//     the merge of their executions is equivalent to a legal serial
//     schedule.
//
//   - Mailboxes. Cross-lane schedules produced during a window (cut-link
//     frame deliveries, wakes of the root driver) are buffered in the
//     target lane's inbox and drained at the barrier, sorted by
//     (time, source lane, source sequence) — a total order independent of
//     goroutine interleaving, which is what makes parallel runs
//     bit-reproducible.
//
//   - Serial windows. The root lane hosts drivers and orchestrators
//     (task submission, chaos injection, result collection) whose calls
//     reach into many shards synchronously with zero lookahead. Any
//     window containing a root event is executed serially on one
//     goroutine — a K-way merge over the lanes in (time, lane, seq)
//     order with all lane clocks slaved to the merge — which reproduces
//     the serial kernel's semantics exactly for control-plane phases.
//     Steady-state streaming has an empty root lane and runs parallel.
//
//   - Wake fences. When a shard event wakes a root-lane process (a task
//     completing fires the driver's signal), the firing lane stops its
//     window at that point. The driver then runs in the next (serial)
//     window and observes the firing shard exactly as the serial kernel
//     would have: nothing past the wake has executed there.
//
//   - Control rendezvous. Synchronous cross-shard control RPCs issued
//     from shard context (a fat-tree daemon registering flows at every
//     spine during failover recovery) call EnterControlFrom: the calling
//     lane suspends its window, the barrier completes, and the RPC runs
//     exclusively — deterministically ordered by lane — before the next
//     window starts.
//
// Barrier versus null messages: with K ≤ NumCPU lanes inside one address
// space, a central min-reduction costs microseconds per window while a
// null-message protocol is O(K²) channel traffic per lookahead interval
// and — more important here — has no natural point at which the
// zero-lookahead root lane can interleave. The barrier's global windows
// double as the serial fallback seam, which is what keeps parallel runs
// byte-identical to the serial golden. See DESIGN.md "Parallel DES".
package sim

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// laneRoot is the lane index of the root simulation.
const laneRoot = -1

// inject is one buffered cross-lane schedule. The key (at, srcLane,
// srcSeq) totally orders a window's injects independently of goroutine
// interleaving.
type inject struct {
	at      Time
	srcLane int32
	srcSeq  uint64
	fn      func()
	afn     func(any)
	arg     any
}

// ShardGroupStats counts scheduler activity, for experiment tables and
// the -shards diagnostic output.
type ShardGroupStats struct {
	Windows         int64 // total conservative windows executed
	ParallelWindows int64 // windows fanned out to lane workers
	InlineWindows   int64 // single-busy-lane windows run on the caller
	SerialWindows   int64 // windows containing root-lane events (K-way merge)
	Injects         int64 // cross-lane mailbox deliveries drained
	ControlRendezvs int64 // EnterControlFrom rendezvous served
	WakeFences      int64 // windows cut short by a cross-lane wake
}

// ShardGroup couples one root Simulation with K shard lanes under the
// conservative barrier protocol above. Construct with NewShardGroup,
// attach model state to the lanes, then drive the whole group through the
// root's Run exactly as in the serial case.
type ShardGroup struct {
	root  *Simulation
	lanes []*Simulation
	look  Time

	// parallel is true while lane workers may be executing a window. It is
	// written by the coordinating goroutine strictly before worker release
	// and after worker join (the channel handshakes order the accesses).
	parallel bool

	// done receives a lane index whenever a lane's window completes or
	// suspends for a control rendezvous.
	done chan int

	// ctrlReqs holds lanes suspended in EnterControlFrom, granted in lane
	// order after the window joins. ctrlMu guards concurrent registration
	// from several suspending lanes in one window.
	ctrlMu   sync.Mutex
	ctrlReqs []*ctrlReq

	// busyScratch is reused across windows to list busy lanes without
	// allocating.
	busyScratch []*Simulation

	stats ShardGroupStats
}

// ctrlReq is one suspended control rendezvous.
type ctrlReq struct {
	lane  *Simulation
	grant chan struct{}
}

// NewShardGroup wraps root with shards shard lanes. lookahead is the
// minimum cross-lane model delay (the topology partitioner computes it
// from the cut links); it may be zero here and set later with
// SetLookahead, but must be positive before the group runs. Lane rngs are
// derived deterministically from the root seed, so a sharded run is fully
// reproducible for a given (seed, shards).
func NewShardGroup(root *Simulation, shards int, lookahead time.Duration) *ShardGroup {
	if root.group != nil {
		panic("sim: simulation already belongs to a shard group")
	}
	if shards < 1 {
		panic("sim: shard group needs at least one lane")
	}
	g := &ShardGroup{root: root, look: Time(lookahead)}
	root.group = g
	root.lane = laneRoot
	for i := 0; i < shards; i++ {
		// Golden-ratio seed spreading: distinct streams per lane, stable
		// across runs. Fault-free runs never draw from lane rngs on the
		// hot path, so shard count cannot perturb fault-free results.
		l := New(root.seed + int64(i+1)*-0x61c8864680b583eb)
		l.group = g
		l.lane = i
		g.lanes = append(g.lanes, l)
	}
	return g
}

// SetLookahead installs the conservative window width: the minimum model
// delay of any cross-lane cut edge. Calling it with a smaller value than
// a previous call keeps the smaller (several topologies may share a
// group).
func (g *ShardGroup) SetLookahead(d time.Duration) {
	if d <= 0 {
		panic("sim: non-positive shard lookahead")
	}
	if g.look == 0 || Time(d) < g.look {
		g.look = Time(d)
	}
}

// Lookahead returns the conservative window width.
func (g *ShardGroup) Lookahead() time.Duration { return time.Duration(g.look) }

// Root returns the root simulation (drivers, orchestrators, Run).
func (g *ShardGroup) Root() *Simulation { return g.root }

// Lane returns shard lane i's simulation; model state for shard i must be
// constructed against it.
func (g *ShardGroup) Lane(i int) *Simulation { return g.lanes[i] }

// Lanes returns the shard count.
func (g *ShardGroup) Lanes() int { return len(g.lanes) }

// Stats returns a copy of the scheduler counters.
func (g *ShardGroup) Stats() ShardGroupStats { return g.stats }

// laneKey orders simulations inside a serial window: shard lanes by
// index, the root last. A root event at time t must run after shard
// events at t that were pending when the root was woken (the wake fence
// stopped the firing lane exactly there), which the root-last rule
// reproduces.
func (g *ShardGroup) laneKey(s *Simulation) int {
	if s.lane == laneRoot {
		return len(g.lanes)
	}
	return s.lane
}

// sims enumerates lanes then root (allocation-free iteration helper).
func (g *ShardGroup) each(f func(*Simulation)) {
	for _, l := range g.lanes {
		f(l)
	}
	f(g.root)
}

// drainInjects moves every inbox into its lane's heap, in the
// deterministic (time, source lane, source seq) order.
func (g *ShardGroup) drainInjects() {
	g.each(func(s *Simulation) {
		s.inboxMu.Lock()
		q := s.inbox
		s.inbox = nil
		s.inboxMu.Unlock()
		if len(q) == 0 {
			return
		}
		sort.Slice(q, func(i, j int) bool {
			if q[i].at != q[j].at {
				return q[i].at < q[j].at
			}
			if q[i].srcLane != q[j].srcLane {
				return q[i].srcLane < q[j].srcLane
			}
			return q[i].srcSeq < q[j].srcSeq
		})
		for _, in := range q {
			if in.at < s.now {
				panic(fmt.Sprintf("sim: inject at %v into lane %d already at %v", in.at, s.lane, s.now))
			}
			if in.fn != nil {
				s.At(in.at, in.fn)
			} else {
				s.AtCall(in.at, in.afn, in.arg)
			}
		}
		g.stats.Injects += int64(len(q))
	})
}

// minNext returns the earliest pending event time across all lanes.
func (g *ShardGroup) minNext() (Time, bool) {
	var best Time
	found := false
	g.each(func(s *Simulation) {
		if t, ok := s.peekNext(); ok && (!found || t < best) {
			best, found = t, true
		}
	})
	return best, found
}

// maxNow returns the latest lane clock.
func (g *ShardGroup) maxNow() Time {
	m := g.root.now
	for _, l := range g.lanes {
		if l.now > m {
			m = l.now
		}
	}
	return m
}

// syncNowAll advances every lane clock to at least t (never backward).
func (g *ShardGroup) syncNowAll(t Time) {
	g.each(func(s *Simulation) {
		if s.now < t {
			s.now = t
		}
	})
}

// stoppedAny reports whether Stop was called anywhere in the group.
func (g *ShardGroup) stoppedAny() bool {
	if g.root.stopped {
		return true
	}
	for _, l := range g.lanes {
		if l.stopped {
			return true
		}
	}
	return false
}

// run is the group scheduler; Simulation.Run on the root delegates here.
// Semantics match the serial Run: execute until quiescent, Stop, or the
// clock would pass limit (limit <= 0: no limit).
//
// The mailbox marker declares the Run→coordinator hand-off to the
// shardsafety analyzer: the barrier scheduler below this point owns every
// lane by design (it is what serializes cross-shard access), so the
// caller's shard context must not propagate into it — exactly like a
// mailbox delivery, the coordinator is the other side of the fence.
//
//askcheck:mailbox
func (g *ShardGroup) run(limit Time) Time {
	r := g.root
	if r.running {
		panic("sim: Run called re-entrantly")
	}
	if g.look <= 0 {
		panic("sim: shard group Run before SetLookahead")
	}
	r.running = true
	defer func() { r.running = false }()
	g.each(func(s *Simulation) { s.stopped = false })
	g.startWorkers()
	defer g.stopWorkers()
	for {
		g.drainInjects()
		t, ok := g.minNext()
		if !ok {
			break
		}
		if limit > 0 && t > limit {
			g.syncNowAll(limit)
			return limit
		}
		safe := t + g.look
		if limit > 0 && safe > limit {
			// Events at exactly limit still run (serial Run stops only when
			// the head is strictly past limit).
			safe = limit + 1
		}
		g.stats.Windows++
		if g.rootBusy(safe) {
			g.runSerialWindow(safe)
		} else {
			g.runParallelWindow(safe)
		}
		g.grantControl()
		if g.stoppedAny() {
			break
		}
	}
	g.syncNowAll(g.maxNow())
	return r.now
}

// rootBusy reports whether the root lane has an event inside the window.
func (g *ShardGroup) rootBusy(safe Time) bool {
	t, ok := g.root.peekNext()
	return ok && t < safe
}

// runSerialWindow executes every lane's events below safe on the calling
// goroutine, merged in (time, lane, seq) order with all clocks slaved to
// the merge point — the exact-semantics fallback for windows where the
// zero-lookahead root lane is active.
func (g *ShardGroup) runSerialWindow(safe Time) {
	g.stats.SerialWindows++
	for {
		var pick *Simulation
		var at Time
		g.each(func(s *Simulation) {
			t, ok := s.peekNext()
			if !ok || t >= safe {
				return
			}
			if pick == nil || t < at || (t == at && g.laneKey(s) < g.laneKey(pick)) {
				pick, at = s, t
			}
		})
		if pick == nil {
			return
		}
		// Slave every clock to the merge so synchronous cross-shard calls
		// (driver touching a daemon, chaos touching a link) observe and
		// schedule at the merge time on any lane.
		g.syncNowAll(at)
		pick.execOne()
		if g.stoppedAny() {
			return
		}
	}
}

// runParallelWindow executes the window on the lane workers (or inline
// when at most one lane has events inside it).
func (g *ShardGroup) runParallelWindow(safe Time) {
	busy := g.busyLanes(safe)
	switch len(busy) {
	case 0:
		return
	case 1:
		// One busy lane: run its window inline — no handshake, and since
		// no other lane executes, cross-lane schedules may land directly
		// (they are ordered exactly as a drain of this lane's inbox).
		g.stats.InlineWindows++
		l := busy[0]
		l.windowBound = safe
		l.windowStop = false
		l.window()
		if l.windowStop {
			g.stats.WakeFences++
		}
		return
	}
	g.stats.ParallelWindows++
	g.parallel = true
	for _, l := range busy {
		l.windowBound = safe
		l.windowStop = false
		l.start <- struct{}{}
	}
	for n := len(busy); n > 0; n-- {
		<-g.done
	}
	g.parallel = false
	for _, l := range busy {
		if l.windowStop && !l.suspended {
			g.stats.WakeFences++
		}
	}
}

// busyLanes returns the shard lanes with events inside the window.
func (g *ShardGroup) busyLanes(safe Time) []*Simulation {
	busy := g.busyScratch[:0]
	for _, l := range g.lanes {
		if t, ok := l.peekNext(); ok && t < safe {
			busy = append(busy, l)
		}
	}
	g.busyScratch = busy
	return busy
}

// grantControl serves the control rendezvous queue: each suspended lane
// resumes exclusively, in lane order, with the group in serial phase.
func (g *ShardGroup) grantControl() {
	if len(g.ctrlReqs) == 0 {
		return
	}
	reqs := g.ctrlReqs
	g.ctrlReqs = nil
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].lane.lane < reqs[j].lane.lane })
	for _, req := range reqs {
		g.stats.ControlRendezvs++
		close(req.grant)
		// The lane finishes the suspended event (and its stopped window)
		// before signalling done.
		<-g.done
		req.lane.suspended = false
	}
}

// startWorkers launches one goroutine per lane for the duration of a run.
func (g *ShardGroup) startWorkers() {
	g.done = make(chan int, len(g.lanes))
	for i, l := range g.lanes {
		l.start = make(chan struct{})
		// The channel is passed by value: a worker from a previous run that
		// has not yet observed its close must not read the field being
		// reassigned here.
		go g.worker(i, l, l.start, g.done)
	}
}

// stopWorkers terminates the per-run worker goroutines.
func (g *ShardGroup) stopWorkers() {
	for _, l := range g.lanes {
		close(l.start)
	}
}

// worker executes lane windows on demand until its start channel closes.
func (g *ShardGroup) worker(i int, l *Simulation, start <-chan struct{}, done chan<- int) {
	for range start {
		l.window()
		done <- i
	}
}

// EnterControlFrom suspends lane s's window for an exclusive cross-shard
// control section and returns the release function. Call it (on the
// calling shard's simulation) around synchronous control-plane RPCs that
// must touch foreign shard state — e.g. a fat-tree daemon registering a
// flow at every spine. Outside a parallel window it is a no-op: the
// group is already single-threaded and every lane is quiescent.
//
// The calling goroutine blocks until every other lane has finished the
// current window; rendezvous are granted in deterministic lane order, so
// results do not depend on goroutine interleaving.
//
//askcheck:mailbox
func (g *ShardGroup) EnterControlFrom(s *Simulation) func() {
	if g == nil || !g.parallel || s.lane == laneRoot {
		return func() {}
	}
	// Stop this lane's window after the current event: the rest of it
	// must not run before the exclusive section completes.
	s.windowStop = true
	s.suspended = true
	req := &ctrlReq{lane: s, grant: make(chan struct{})}
	g.ctrlMu.Lock()
	g.ctrlReqs = append(g.ctrlReqs, req)
	g.ctrlMu.Unlock()
	// Count this lane's window as complete so the barrier can close, then
	// wait for the exclusive grant.
	g.done <- s.lane
	<-req.grant
	return func() {}
}

// --- Simulation-side shard hooks ----------------------------------------
//
// Everything below is only reachable when the simulation belongs to a
// ShardGroup (group != nil); standalone simulations never touch it, which
// is the serial-seam guarantee the goldens pin.

// Group returns the shard group this simulation belongs to (nil for a
// standalone serial simulation).
func (s *Simulation) Group() *ShardGroup { return s.group }

// ShardLane returns the lane index of this simulation within its group,
// or -1 for the root (and for standalone simulations).
func (s *Simulation) ShardLane() int { return s.lane }

// peekNext returns the time of the earliest live event, reaping cancelled
// heads. Called only from barrier context (no worker executing this lane).
func (s *Simulation) peekNext() (Time, bool) {
	for len(s.heap) > 0 {
		top := s.heap[0]
		if s.store[top.idx].dead {
			s.heapPop()
			s.recycle(top.idx)
			continue
		}
		return top.at, true
	}
	return 0, false
}

// execOne pops and executes the head event, which the caller has verified
// to be live. Body is identical to the serial Run loop's execute step.
func (s *Simulation) execOne() {
	top := s.heap[0]
	e := &s.store[top.idx]
	s.heapPop()
	s.now = top.at
	// Copy the callback out and recycle the slot BEFORE running it (same
	// rationale as in Run).
	fn, afn, arg := e.fn, e.afn, e.arg
	s.recycle(top.idx)
	s.pending--
	if afn != nil {
		afn(arg)
	} else {
		fn()
	}
}

// window executes this lane's events strictly below windowBound, in the
// exact per-lane (time, seq) order the serial kernel uses. It returns
// early on a wake fence (windowStop) or Stop.
func (s *Simulation) window() {
	for len(s.heap) > 0 && !s.windowStop && !s.stopped {
		top := s.heap[0]
		if s.store[top.idx].dead {
			s.heapPop()
			s.recycle(top.idx)
			continue
		}
		if top.at >= s.windowBound {
			return
		}
		s.execOne()
	}
}

// enqueueInject buffers one cross-lane schedule in this lane's inbox.
func (s *Simulation) enqueueInject(in inject) {
	s.inboxMu.Lock()
	s.inbox = append(s.inbox, in)
	s.inboxMu.Unlock()
}

// InjectCall schedules fn(arg) at time t on this simulation on behalf of
// code executing in src's event context. It is the cross-lane counterpart
// of AtCall — the delivery primitive for cut links (netsim mailbox
// rewiring). Same-lane or ungrouped calls degrade to plain AtCall, so
// callers need no mode check. During a parallel window the schedule is
// buffered and drained at the barrier in deterministic (time, source
// lane, source seq) order; t must respect the group lookahead (t at or
// beyond the window bound), which the cut-link delay guarantees by
// construction.
//
//askcheck:mailbox
func (s *Simulation) InjectCall(src *Simulation, t Time, fn func(any), arg any) {
	if s == src || src.group == nil || src.group != s.group {
		s.AtCall(t, fn, arg)
		return
	}
	g := src.group
	if g.parallel {
		if t < src.windowBound {
			panic(fmt.Sprintf("sim: inject at %v violates lookahead (window bound %v)", t, src.windowBound))
		}
		s.enqueueInject(inject{at: t, srcLane: int32(src.lane), srcSeq: src.injSeq, afn: fn, arg: arg})
		src.injSeq++
		return
	}
	// Serial phase (construction, serial window, inline window, control
	// rendezvous): schedule directly. The lookahead argument still bounds t
	// at or above the target's clock; a violation here means the declared
	// cut delay is wrong, so fail loudly rather than reorder the past.
	if t < s.now {
		panic(fmt.Sprintf("sim: inject at %v into lane %d already at %v", t, s.lane, s.now))
	}
	s.AtCall(t, fn, arg)
}

// wakeTo schedules fn at the current time on the waiter's home
// simulation. It is the cross-lane-aware form of At(now, fn) used by
// Signal.Fire and Resource.Release: same-home wakes take the exact legacy
// path; a cross-lane wake fences the firing lane's window (so the woken
// root driver observes this shard exactly at the fire point) and routes
// through the target's mailbox during parallel windows.
//
// Fire/Release must be invoked from s's own event context — true for all
// model code, where signals and resources are owned by the lane that
// fires them, with the root driver as the only cross-lane waiter.
//
//askcheck:mailbox
func (s *Simulation) wakeTo(home *Simulation, fn func()) {
	if home == s || s.group == nil || home.group != s.group {
		s.At(s.now, fn)
		return
	}
	g := s.group
	if s.lane != laneRoot {
		// Conservative fence: nothing past the wake may run on this lane
		// until the waiter has been dispatched (next window).
		s.windowStop = true
		if g.parallel {
			if home != g.root {
				panic("sim: cross-shard wake of a non-root process during a parallel window")
			}
			home.enqueueInject(inject{at: s.now, srcLane: int32(s.lane), srcSeq: s.injSeq, fn: fn})
			s.injSeq++
			return
		}
	}
	// Serial phase: direct scheduling. Clocks are slaved together inside
	// serial windows; during a control rendezvous the target may sit
	// slightly ahead (it finished the window), so clamp to its clock —
	// the wake cannot land in its past.
	at := s.now
	if home.now > at {
		at = home.now
	}
	home.At(at, fn)
}
