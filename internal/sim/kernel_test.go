package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// TestAtCallOrdering verifies that closure events (At) and arg-carrying
// events (AtCall) interleave in exact scheduling order: the kernel's total
// order is (time, seq) regardless of which entry point scheduled the event.
func TestAtCallOrdering(t *testing.T) {
	s := New(1)
	var got []int
	push := func(a any) { got = append(got, *a.(*int)) }
	vals := make([]int, 6)
	for i := range vals {
		vals[i] = i
	}
	// Interleave styles at the same and different instants.
	s.AtCall(10, push, &vals[0])
	s.At(10, func() { got = append(got, vals[1]) })
	s.AtCall(10, push, &vals[2])
	s.At(5, func() { got = append(got, vals[3]) })
	s.AtCall(5, push, &vals[4])
	s.AtCall(20, push, &vals[5])
	s.Run(0)
	want := []int{3, 4, 0, 1, 2, 5}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("execution order %v, want %v", got, want)
	}
}

// TestAfterCall verifies relative scheduling of arg-carrying events and the
// negative-delay panic.
func TestAfterCall(t *testing.T) {
	s := New(1)
	fired := Time(-1)
	x := 7
	s.After(3*time.Microsecond, func() {
		s.AfterCall(2*time.Microsecond, func(a any) {
			if *a.(*int) != 7 {
				t.Errorf("arg = %d, want 7", *a.(*int))
			}
			fired = s.Now()
		}, &x)
	})
	s.Run(0)
	if fired != Time(5*time.Microsecond) {
		t.Fatalf("fired at %v, want 5µs", fired)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative AfterCall did not panic")
		}
	}()
	s.AfterCall(-1, func(any) {}, nil)
}

// TestTimerGenerations exercises slot recycling: a Timer held across its
// event firing must become inert even after its slot is reused by a new
// event, and stopping the stale Timer must not cancel the new occupant.
func TestTimerGenerations(t *testing.T) {
	s := New(1)
	var ranA, ranB bool
	ta := s.At(1, func() { ranA = true })
	s.Run(0)
	if !ranA {
		t.Fatal("first event did not run")
	}
	// The slot freed by ta's event is now the sole free slot; this new event
	// reuses it with a bumped generation.
	s.At(2, func() { ranB = true })
	if ta.Stop() {
		t.Fatal("stale Timer.Stop reported true after slot reuse")
	}
	if ta.Pending() {
		t.Fatal("stale Timer.Pending reported true after slot reuse")
	}
	s.Run(0)
	if !ranB {
		t.Fatal("recycled-slot event was cancelled by a stale Timer")
	}
}

// TestStopSemantics verifies cancel-before-fire, double-stop, and the
// Pending counter across the cancel path.
func TestStopSemantics(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.After(time.Microsecond, func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer not pending after schedule")
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
	if !tm.Stop() {
		t.Fatal("first Stop returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d after stop, want 0", s.Pending())
	}
	s.Run(0)
	if ran {
		t.Fatal("stopped event ran")
	}
	var zero Timer
	if zero.Stop() || zero.Pending() {
		t.Fatal("zero Timer is not inert")
	}
}

// TestSlotReuseChurn drives many schedule/fire/cancel cycles through a small
// number of slots and checks the total order and liveness accounting stay
// exact. This is the free-list stress: with interleaved cancels the store
// should stay small while generations climb.
func TestSlotReuseChurn(t *testing.T) {
	s := New(42)
	rng := rand.New(rand.NewSource(7))
	var fired, cancelled, expectFired int
	var last Time
	var timers []Timer
	for round := 0; round < 200; round++ {
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			d := time.Duration(rng.Intn(50)) * time.Nanosecond
			tm := s.After(d, func() {
				if s.Now() < last {
					t.Errorf("time went backwards: %v < %v", s.Now(), last)
				}
				last = s.Now()
				fired++
			})
			timers = append(timers, tm)
		}
		// Cancel a random prior timer (may already have fired: no-op).
		if len(timers) > 0 && rng.Intn(2) == 0 {
			if timers[rng.Intn(len(timers))].Stop() {
				cancelled++
			}
		}
		s.RunFor(time.Duration(rng.Intn(30)) * time.Nanosecond)
	}
	s.Run(0)
	expectFired = len(timers) - cancelled
	if fired != expectFired {
		t.Fatalf("fired %d events, want %d (scheduled %d, cancelled %d)",
			fired, expectFired, len(timers), cancelled)
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending() = %d at drain, want 0", s.Pending())
	}
	// The store must have recycled slots rather than growing per event.
	if len(s.store) > 64 {
		t.Fatalf("event store grew to %d slots for ~%d concurrent events", len(s.store), 8*5)
	}
}

// TestSchedulingAllocs verifies the steady-state claim: after warm-up,
// scheduling and firing an arg-carrying event allocates nothing.
func TestSchedulingAllocs(t *testing.T) {
	s := New(1)
	sink := 0
	fn := func(a any) { sink += *a.(*int) }
	arg := new(int)
	*arg = 1
	// Warm up the store and heap.
	for i := 0; i < 64; i++ {
		s.AfterCall(time.Nanosecond, fn, arg)
	}
	s.Run(0)
	avg := testing.AllocsPerRun(1000, func() {
		s.AfterCall(time.Nanosecond, fn, arg)
		s.Run(0)
	})
	if avg != 0 {
		t.Fatalf("steady-state AfterCall+Run allocates %.2f objects/op, want 0", avg)
	}
}
