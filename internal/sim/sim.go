// Package sim provides a deterministic discrete-event simulation kernel.
//
// Everything in this repository — the network fabric, the PISA switch model,
// host daemons, and the application baselines — runs on virtual time managed
// by a Simulation. Events are executed in strictly non-decreasing time order,
// with FIFO ordering among events scheduled for the same instant, so a run is
// fully reproducible given the same seed.
//
// Two programming styles are supported:
//
//   - Callback style: schedule closures with At/After and build state
//     machines (used by the network and switch models).
//   - Process style: Spawn a goroutine-backed Proc that can Sleep, wait on
//     Signals, and acquire Resources, which reads like straight-line code
//     (used by host threads, mappers, reducers, and trainers).
//
// Only one goroutine executes simulation logic at any moment; the kernel
// hands control back and forth between the event loop and at most one parked
// process, so no locking is required in model code.
//
// # Event kernel
//
// The scheduler is engineered for the frame-delivery hot path: a simulated
// 100 Gbps rack pushes tens of millions of events per wall-second through
// it, so per-event heap pointers and closure captures dominate profiles if
// left unchecked (cf. the DPDK/Tofino substrate the paper runs on, which
// engineers exactly these overheads away).
//
//   - Events live by value in an index-addressed store with a free list;
//     steady-state scheduling allocates nothing and recycles event slots.
//   - The priority queue is a hand-rolled binary heap of small {time, seq,
//     index} entries — the ordering key is carried inline, so sift
//     comparisons never chase a pointer, and no container/heap interface
//     boxing occurs.
//   - AtCall/AfterCall schedule a pre-bound func(any) with an argument,
//     letting hot callers (netsim frame delivery) avoid allocating a fresh
//     closure per event. Converting a pointer to `any` does not allocate.
//   - Timers address events as (slot index, generation); recycling a slot
//     bumps its generation, so a stale Timer held across reuse is an inert
//     no-op exactly like the old popped-event semantics.
//
// Ordering is bit-for-bit identical to the previous container/heap kernel:
// events execute in strictly increasing (time, sequence) order and the
// sequence counter is unique per event, so the execution order is a total
// order independent of heap internals.
package sim

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations re-exported for convenience when scheduling.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the time as a duration since the start of the run.
func (t Time) String() string { return time.Duration(t).String() }

// event is the payload of one scheduled entry. Events are stored by value in
// Simulation.store and addressed by slot index; gen disambiguates successive
// occupants of the same slot (see Timer).
type event struct {
	// fn is the closure-style callback (At/After).
	fn func()
	// afn+arg are the argument-carrying form (AtCall/AfterCall), used by hot
	// paths to avoid a per-event closure allocation. Exactly one of fn/afn is
	// non-nil while the slot is live.
	afn func(any)
	arg any
	// gen counts occupants of this slot; a Timer whose gen does not match is
	// stale and inert.
	gen uint32
	// live marks the slot as scheduled (between alloc and recycle).
	live bool
	// dead marks a cancelled event awaiting lazy removal at pop time.
	dead bool
}

// heapEntry is one priority-queue node. The ordering key (at, seq) is
// carried inline so heap sifts compare without touching the event store.
type heapEntry struct {
	at  Time
	seq uint64
	idx int32
}

func heapLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Simulation is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; call New.
//
// In the sharded parallel DES (ROADMAP item 1) each rack shard owns one
// Simulation instance; shardsafety certifies that no state escapes it.
//
//askcheck:shard
type Simulation struct {
	now     Time
	heap    []heapEntry
	store   []event
	free    []int32
	seq     uint64
	pending int // scheduled, non-cancelled events
	rng     *rand.Rand
	seed    int64
	running bool
	stopped bool

	// current non-nil while the loop is inside an event callback; used to
	// catch illegal blocking calls from plain callbacks.
	inProc *Proc

	// Sharded parallel execution (see shard.go). group and lane are fixed at
	// construction: nil/laneRoot for a standalone serial simulation, which
	// therefore takes the exact pre-shard code path everywhere. The window
	// fields are owned by whichever goroutine executes this lane's window;
	// inbox is the cross-lane mailbox, drained at window barriers.
	group       *ShardGroup
	lane        int
	injSeq      uint64
	windowBound Time
	windowStop  bool
	suspended   bool
	start       chan struct{}
	inboxMu     sync.Mutex
	inbox       []inject
}

// New returns a Simulation whose random source is seeded with seed.
func New(seed int64) *Simulation {
	return &Simulation{rng: rand.New(rand.NewSource(seed)), seed: seed, lane: laneRoot}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. Model code must
// use this source (never the global one) so runs stay reproducible.
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// Timer identifies a scheduled event so it can be cancelled. It names the
// event by (store slot, generation): once the event fires or is reaped, the
// slot's generation advances and the Timer becomes inert.
type Timer struct {
	s   *Simulation
	idx int32
	gen uint32
}

// Stop cancels the timer. It reports whether the callback was still pending.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t Timer) Stop() bool {
	if t.s == nil {
		return false
	}
	e := &t.s.store[t.idx]
	if e.gen != t.gen || !e.live || e.dead {
		return false
	}
	e.dead = true
	t.s.pending--
	return true
}

// Pending reports whether the timer's callback has not yet run or been stopped.
func (t Timer) Pending() bool {
	if t.s == nil {
		return false
	}
	e := &t.s.store[t.idx]
	return e.gen == t.gen && e.live && !e.dead
}

// alloc takes a free event slot (or grows the store) and returns its index.
func (s *Simulation) alloc() int32 {
	if n := len(s.free); n > 0 {
		idx := s.free[n-1]
		s.free = s.free[:n-1]
		return idx
	}
	s.store = append(s.store, event{})
	return int32(len(s.store) - 1)
}

// recycle returns a popped event slot to the free list. Bumping gen
// invalidates every Timer pointing at the old occupant; clearing the
// callback fields drops references so pooled frames and closures do not
// outlive their event.
func (s *Simulation) recycle(idx int32) {
	e := &s.store[idx]
	e.gen++
	e.live = false
	e.dead = false
	e.fn, e.afn, e.arg = nil, nil, nil
	s.free = append(s.free, idx)
}

// schedule is the common body of At and AtCall.
func (s *Simulation) schedule(t Time, fn func(), afn func(any), arg any) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	idx := s.alloc()
	e := &s.store[idx]
	e.fn, e.afn, e.arg = fn, afn, arg
	e.live = true
	s.pending++
	s.heapPush(heapEntry{at: t, seq: s.seq, idx: idx})
	s.seq++
	return Timer{s: s, idx: idx, gen: e.gen}
}

// At schedules fn to run at time t. Scheduling in the past is an error;
// scheduling at the current time runs fn after all previously scheduled
// events for this instant.
func (s *Simulation) At(t Time, fn func()) Timer {
	return s.schedule(t, fn, nil, nil)
}

// After schedules fn to run d from now.
func (s *Simulation) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// AtCall schedules fn(arg) to run at time t. It is the allocation-free
// alternative to At for hot paths: fn is typically a long-lived pre-bound
// function (e.g. a link's delivery adapter) and arg a pointer, so no closure
// is materialized per event.
func (s *Simulation) AtCall(t Time, fn func(any), arg any) Timer {
	return s.schedule(t, nil, fn, arg)
}

// AfterCall schedules fn(arg) to run d from now (see AtCall).
func (s *Simulation) AfterCall(d time.Duration, fn func(any), arg any) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.AtCall(s.now.Add(d), fn, arg)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulation) Stop() { s.stopped = true }

// Run executes events until the queue is empty, Stop is called, or the
// virtual clock would pass limit (limit <= 0 means no limit). It returns the
// virtual time at which the run ended.
func (s *Simulation) Run(limit Time) Time {
	if s.group != nil {
		if s.lane != laneRoot {
			panic("sim: Run on a shard lane; drive the group's root simulation")
		}
		return s.group.run(limit)
	}
	if s.running {
		panic("sim: Run called re-entrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for len(s.heap) > 0 && !s.stopped {
		top := s.heap[0]
		e := &s.store[top.idx]
		if e.dead {
			s.heapPop()
			s.recycle(top.idx)
			continue
		}
		if limit > 0 && top.at > limit {
			s.now = limit
			return s.now
		}
		s.heapPop()
		s.now = top.at
		// Copy the callback out and recycle the slot BEFORE running it: the
		// callback may schedule new events, and the freed slot is then
		// immediately reusable (its generation already advanced).
		fn, afn, arg := e.fn, e.afn, e.arg
		s.recycle(top.idx)
		s.pending--
		if afn != nil {
			afn(arg)
		} else {
			fn()
		}
	}
	return s.now
}

// RunFor runs the simulation for at most d of virtual time from now.
func (s *Simulation) RunFor(d time.Duration) Time { return s.Run(s.now.Add(d)) }

// Pending returns the number of scheduled (non-cancelled) events.
func (s *Simulation) Pending() int { return s.pending }

// heapPush inserts an entry and sifts it up.
func (s *Simulation) heapPush(e heapEntry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !heapLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

// heapPop removes the minimum entry and sifts the displaced tail down.
func (s *Simulation) heapPop() {
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	if n == 0 {
		return
	}
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		least := l
		if r := l + 1; r < n && heapLess(s.heap[r], s.heap[l]) {
			least = r
		}
		if !heapLess(s.heap[least], s.heap[i]) {
			break
		}
		s.heap[i], s.heap[least] = s.heap[least], s.heap[i]
		i = least
	}
}
