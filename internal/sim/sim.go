// Package sim provides a deterministic discrete-event simulation kernel.
//
// Everything in this repository — the network fabric, the PISA switch model,
// host daemons, and the application baselines — runs on virtual time managed
// by a Simulation. Events are executed in strictly non-decreasing time order,
// with FIFO ordering among events scheduled for the same instant, so a run is
// fully reproducible given the same seed.
//
// Two programming styles are supported:
//
//   - Callback style: schedule closures with At/After and build state
//     machines (used by the network and switch models).
//   - Process style: Spawn a goroutine-backed Proc that can Sleep, wait on
//     Signals, and acquire Resources, which reads like straight-line code
//     (used by host threads, mappers, reducers, and trainers).
//
// Only one goroutine executes simulation logic at any moment; the kernel
// hands control back and forth between the event loop and at most one parked
// process, so no locking is required in model code.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp in nanoseconds since the start of the run.
type Time int64

// Common durations re-exported for convenience when scheduling.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// String formats the time as a duration since the start of the run.
func (t Time) String() string { return time.Duration(t).String() }

// event is a single scheduled callback.
type event struct {
	at   Time
	seq  uint64 // tie-break: FIFO among same-time events
	fn   func()
	idx  int // heap index, -1 when popped or cancelled
	dead bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Simulation is a discrete-event scheduler with a virtual clock.
// The zero value is not usable; call New.
type Simulation struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	running bool
	stopped bool

	// current non-nil while the loop is inside an event callback; used to
	// catch illegal blocking calls from plain callbacks.
	inProc *Proc
}

// New returns a Simulation whose random source is seeded with seed.
func New(seed int64) *Simulation {
	return &Simulation{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source. Model code must
// use this source (never the global one) so runs stay reproducible.
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// Timer identifies a scheduled event so it can be cancelled.
type Timer struct{ e *event }

// Stop cancels the timer. It reports whether the callback was still pending.
// Stopping an already-fired or already-stopped timer is a no-op.
func (t Timer) Stop() bool {
	if t.e == nil || t.e.dead || t.e.idx < 0 {
		return false
	}
	t.e.dead = true
	return true
}

// Pending reports whether the timer's callback has not yet run or been stopped.
func (t Timer) Pending() bool { return t.e != nil && !t.e.dead && t.e.idx >= 0 }

// At schedules fn to run at time t. Scheduling in the past is an error;
// scheduling at the current time runs fn after all previously scheduled
// events for this instant.
func (s *Simulation) At(t Time, fn func()) Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.events, e)
	return Timer{e}
}

// After schedules fn to run d from now.
func (s *Simulation) After(d time.Duration, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return s.At(s.now.Add(d), fn)
}

// Stop makes Run return after the currently executing event completes.
func (s *Simulation) Stop() { s.stopped = true }

// Run executes events until the queue is empty, Stop is called, or the
// virtual clock would pass limit (limit <= 0 means no limit). It returns the
// virtual time at which the run ended.
func (s *Simulation) Run(limit Time) Time {
	if s.running {
		panic("sim: Run called re-entrantly")
	}
	s.running = true
	defer func() { s.running = false }()
	s.stopped = false
	for len(s.events) > 0 && !s.stopped {
		e := s.events[0]
		if e.dead {
			heap.Pop(&s.events)
			continue
		}
		if limit > 0 && e.at > limit {
			s.now = limit
			return s.now
		}
		heap.Pop(&s.events)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// RunFor runs the simulation for at most d of virtual time from now.
func (s *Simulation) RunFor(d time.Duration) Time { return s.Run(s.now.Add(d)) }

// Pending returns the number of scheduled (non-cancelled) events.
func (s *Simulation) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.dead {
			n++
		}
	}
	return n
}
