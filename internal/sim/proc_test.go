package sim

import (
	"testing"
	"time"
)

func TestProcSleep(t *testing.T) {
	s := New(1)
	var at []Time
	s.Spawn("sleeper", func(p *Proc) {
		at = append(at, p.Now())
		p.Sleep(5 * Microsecond)
		at = append(at, p.Now())
		p.Sleep(5 * Microsecond)
		at = append(at, p.Now())
	})
	s.Run(0)
	want := []Time{0, Time(5 * Microsecond), Time(10 * Microsecond)}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("at = %v, want %v", at, want)
		}
	}
}

func TestProcInterleaving(t *testing.T) {
	s := New(1)
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a0")
		p.Sleep(2 * Microsecond)
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b0")
		p.Sleep(1 * Microsecond)
		order = append(order, "b1")
	})
	s.Run(0)
	want := []string{"a0", "b0", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestProcSleepUntil(t *testing.T) {
	s := New(1)
	s.Spawn("p", func(p *Proc) {
		p.SleepUntil(Time(7 * Microsecond))
		if p.Now() != Time(7*Microsecond) {
			t.Errorf("now = %v, want 7µs", p.Now())
		}
		// In the past: no-op.
		p.SleepUntil(Time(3 * Microsecond))
		if p.Now() != Time(7*Microsecond) {
			t.Errorf("SleepUntil past moved time to %v", p.Now())
		}
	})
	s.Run(0)
}

func TestSignalBroadcast(t *testing.T) {
	s := New(1)
	sg := NewSignal(s)
	woke := 0
	for i := 0; i < 3; i++ {
		s.Spawn("w", func(p *Proc) {
			p.Wait(sg)
			woke++
		})
	}
	s.After(10*Microsecond, sg.Fire)
	s.Run(0)
	if woke != 3 {
		t.Fatalf("woke = %d, want 3", woke)
	}
}

func TestResourceContention(t *testing.T) {
	s := New(1)
	r := NewResource(s, 2)
	var ends []Time
	for i := 0; i < 4; i++ {
		s.Spawn("worker", func(p *Proc) {
			r.Use(p, 10*Microsecond)
			ends = append(ends, p.Now())
		})
	}
	s.Run(0)
	// Two run [0,10µs], two queue and run [10µs,20µs].
	want := []Time{Time(10 * Microsecond), Time(10 * Microsecond), Time(20 * Microsecond), Time(20 * Microsecond)}
	if len(ends) != len(want) {
		t.Fatalf("ends = %v", ends)
	}
	for i := range want {
		if ends[i] != want[i] {
			t.Fatalf("ends = %v, want %v", ends, want)
		}
	}
	if got := r.BusyTime(); got != 40*Microsecond {
		t.Fatalf("BusyTime = %v, want 40µs", got)
	}
	// 40µs of busy over 20µs × 2 capacity = fully utilized.
	if u := r.Utilization(); u < 0.999 || u > 1.001 {
		t.Fatalf("Utilization = %v, want 1.0", u)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	s := New(1)
	r := NewResource(s, 1)
	if !r.TryAcquire() {
		t.Fatal("TryAcquire on idle resource failed")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire on full resource succeeded")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestResourceFIFO(t *testing.T) {
	s := New(1)
	r := NewResource(s, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Spawn("w", func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(time.Microsecond)
			r.Release()
		})
	}
	s.Run(0)
	for i := 0; i < 5; i++ {
		if order[i] != i {
			t.Fatalf("acquire order = %v, want FIFO", order)
		}
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release of idle resource did not panic")
		}
	}()
	s := New(1)
	NewResource(s, 1).Release()
}

func TestWaitGroup(t *testing.T) {
	s := New(1)
	wg := NewWaitGroup(s)
	wg.Add(3)
	var doneAt Time
	for i := 1; i <= 3; i++ {
		d := time.Duration(i) * Microsecond
		s.Spawn("w", func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	s.Spawn("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = p.Now()
	})
	s.Run(0)
	if doneAt != Time(3*Microsecond) {
		t.Fatalf("doneAt = %v, want 3µs", doneAt)
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	s := New(1)
	wg := NewWaitGroup(s)
	ran := false
	s.Spawn("waiter", func(p *Proc) {
		wg.Wait(p) // must not block
		ran = true
	})
	s.Run(0)
	if !ran {
		t.Fatal("Wait on zero WaitGroup blocked")
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() Time {
		s := New(7)
		r := NewResource(s, 3)
		for i := 0; i < 50; i++ {
			s.Spawn("w", func(p *Proc) {
				for j := 0; j < 5; j++ {
					r.Use(p, time.Duration(1+p.Sim().Rand().Intn(10))*Microsecond)
				}
			})
		}
		return s.Run(0)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic end times: %v vs %v", a, b)
	}
}

func TestWaitTimeoutSignalFirst(t *testing.T) {
	s := New(1)
	sg := NewSignal(s)
	var fired bool
	var at Time
	s.Spawn("w", func(p *Proc) {
		fired = p.WaitTimeout(sg, 100*Microsecond)
		at = p.Now()
	})
	s.After(10*Microsecond, sg.Fire)
	s.Run(0)
	if !fired {
		t.Fatal("signal did not win the race")
	}
	if at != Time(10*Microsecond) {
		t.Fatalf("woke at %v, want 10µs", at)
	}
	// The loser (timer) must not fire later: run on and ensure no panic
	// from double-dispatch and no pending events.
	if s.Pending() != 0 {
		t.Fatalf("pending events after race: %d", s.Pending())
	}
}

func TestWaitTimeoutTimeoutFirst(t *testing.T) {
	s := New(1)
	sg := NewSignal(s)
	var fired bool
	var at Time
	s.Spawn("w", func(p *Proc) {
		fired = p.WaitTimeout(sg, 5*Microsecond)
		at = p.Now()
	})
	// Signal fires AFTER the timeout: must be a no-op for this waiter.
	s.After(50*Microsecond, sg.Fire)
	s.Run(0)
	if fired {
		t.Fatal("timeout should have won")
	}
	if at != Time(5*Microsecond) {
		t.Fatalf("woke at %v, want 5µs", at)
	}
}

func TestWaitTimeoutRepeated(t *testing.T) {
	// The retransmit-until-ack pattern: loop WaitTimeout until a condition.
	s := New(1)
	sg := NewSignal(s)
	done := false
	s.After(95*Microsecond, func() { done = true; sg.Fire() })
	attempts := 0
	var end Time
	s.Spawn("rpc", func(p *Proc) {
		for !done {
			attempts++
			p.WaitTimeout(sg, 30*Microsecond)
		}
		end = p.Now()
	})
	s.Run(0)
	if attempts != 4 { // 30, 60, 90, then signal at 95
		t.Fatalf("attempts = %d, want 4", attempts)
	}
	if end != Time(95*Microsecond) {
		t.Fatalf("end = %v", end)
	}
}
