package sim

import (
	"fmt"
	"reflect"
	"testing"
	"time"
)

// shardNode is a minimal model actor for kernel tests: it records every
// value it receives (with the receive time) into lane-local state, and
// optionally replies to a peer lane after the cut delay.
type shardNode struct {
	sim   *Simulation
	trace []string
}

func (n *shardNode) record(v int) {
	n.trace = append(n.trace, fmt.Sprintf("%v:%d", n.sim.Now(), v))
}

// TestShardPingPongMatchesSerial runs the same two-node full-duplex
// exchange on a standalone simulation and on a two-lane shard group and
// requires identical per-node traces: the conservative windows must not
// change what any node observes.
func TestShardPingPongMatchesSerial(t *testing.T) {
	const delay = time.Microsecond // cut delay == lookahead
	const rounds = 50

	type world struct {
		root *Simulation
		a, b *shardNode
	}
	build := func(shards bool) *world {
		w := &world{}
		if shards {
			root := New(7)
			g := NewShardGroup(root, 2, delay)
			w.root = root
			w.a = &shardNode{sim: g.Lane(0)}
			w.b = &shardNode{sim: g.Lane(1)}
		} else {
			root := New(7)
			w.root = root
			w.a = &shardNode{sim: root}
			w.b = &shardNode{sim: root}
		}
		var deliverA, deliverB func(any)
		deliverA = func(arg any) {
			v := arg.(int)
			w.a.record(v)
			if v < rounds {
				w.b.sim.InjectCall(w.a.sim, w.a.sim.Now().Add(delay), deliverB, v+1)
			}
		}
		deliverB = func(arg any) {
			v := arg.(int)
			w.b.record(v)
			if v < rounds {
				w.a.sim.InjectCall(w.b.sim, w.b.sim.Now().Add(delay), deliverA, v+1)
			}
		}
		// Full duplex: both nodes start a stream at the same instant, so in
		// the sharded build both lanes are busy in every window (worker
		// path), not just the inline single-lane path.
		w.a.sim.InjectCall(w.a.sim, Time(delay), deliverA, 0)
		w.b.sim.InjectCall(w.b.sim, Time(delay), deliverB, 0)
		return w
	}

	serial := build(false)
	serial.root.Run(0)
	sharded := build(true)
	sharded.root.Run(0)

	if !reflect.DeepEqual(serial.a.trace, sharded.a.trace) {
		t.Fatalf("node A diverged:\nserial  %v\nsharded %v", serial.a.trace, sharded.a.trace)
	}
	if !reflect.DeepEqual(serial.b.trace, sharded.b.trace) {
		t.Fatalf("node B diverged:\nserial  %v\nsharded %v", serial.b.trace, sharded.b.trace)
	}
	if serial.root.Now() != sharded.root.Now() {
		t.Fatalf("final clocks differ: serial %v sharded %v", serial.root.Now(), sharded.root.Now())
	}
	g := sharded.root.Group()
	if g.Stats().ParallelWindows == 0 {
		t.Fatalf("full-duplex exchange never took the parallel window path: %+v", g.Stats())
	}
}

// TestShardWakeFence pins the conservative fence on cross-lane wakes: a
// root process woken by a shard event must observe the shard exactly as
// of the fire point, even though the lane had more work inside the same
// lookahead window.
func TestShardWakeFence(t *testing.T) {
	root := New(1)
	g := NewShardGroup(root, 2, time.Microsecond)
	lane := g.Lane(0)

	counter := 0
	sg := NewSignal(lane)
	// Lane timeline: work at 1µs..., fire at 3µs, more work 10ns later —
	// inside the same window as the fire.
	lane.At(Time(1*Microsecond), func() { counter = 1 })
	lane.At(Time(3*Microsecond), func() {
		counter = 2
		sg.Fire()
	})
	lane.At(Time(3*Microsecond+10), func() { counter = 3 })

	observed := -1
	var observedAt Time
	root.Spawn("driver", func(p *Proc) {
		p.Wait(sg)
		observed = counter
		observedAt = p.Now()
	})
	root.Run(0)

	if observed != 2 {
		t.Fatalf("driver observed counter %d at wake, want 2 (fence must stop the lane at the fire point)", observed)
	}
	if observedAt != Time(3*Microsecond) {
		t.Fatalf("driver woke at %v, want 3µs", observedAt)
	}
	if counter != 3 {
		t.Fatalf("lane leftover event never ran: counter = %d, want 3", counter)
	}
}

// TestShardRunLimit checks serial Run limit semantics survive sharding:
// events at exactly the limit run, later ones do not, and every lane's
// clock ends at the limit.
func TestShardRunLimit(t *testing.T) {
	root := New(1)
	g := NewShardGroup(root, 2, time.Microsecond)
	var ran []int
	g.Lane(0).At(Time(1*Microsecond), func() { ran = append(ran, 1) })
	g.Lane(1).At(Time(2*Microsecond), func() { ran = append(ran, 2) })
	g.Lane(0).At(Time(5*Microsecond), func() { ran = append(ran, 5) })
	end := root.Run(Time(2 * Microsecond))
	if end != Time(2*Microsecond) {
		t.Fatalf("Run returned %v, want 2µs", end)
	}
	if !reflect.DeepEqual(ran, []int{1, 2}) {
		t.Fatalf("ran = %v, want [1 2]", ran)
	}
	if root.Now() != Time(2*Microsecond) || g.Lane(0).Now() != Time(2*Microsecond) {
		t.Fatalf("clocks not at limit: root %v lane0 %v", root.Now(), g.Lane(0).Now())
	}
	// Resume picks up the leftover event.
	root.Run(0)
	if !reflect.DeepEqual(ran, []int{1, 2, 5}) {
		t.Fatalf("after resume ran = %v, want [1 2 5]", ran)
	}
}

// TestShardStop verifies Stop from a lane event ends the group run after
// the current event.
func TestShardStop(t *testing.T) {
	root := New(1)
	g := NewShardGroup(root, 2, time.Microsecond)
	hits := 0
	g.Lane(0).At(Time(1*Microsecond), func() {
		hits++
		g.Lane(0).Stop()
	})
	g.Lane(1).At(Time(30*Microsecond), func() { hits++ })
	root.Run(0)
	if hits != 1 {
		t.Fatalf("hits = %d after Stop, want 1", hits)
	}
}

// TestShardEnterControlOrder pins the control rendezvous: when several
// lanes suspend for an exclusive section in one window, grants are served
// in lane order regardless of goroutine interleaving.
func TestShardEnterControlOrder(t *testing.T) {
	for round := 0; round < 20; round++ {
		root := New(int64(round))
		g := NewShardGroup(root, 3, time.Microsecond)
		var order []int
		for i := 0; i < 3; i++ {
			i := i
			lane := g.Lane(i)
			lane.At(Time(1*Microsecond), func() {
				release := g.EnterControlFrom(lane)
				order = append(order, i) // exclusive: no lock needed
				release()
			})
		}
		root.Run(0)
		if !reflect.DeepEqual(order, []int{0, 1, 2}) {
			t.Fatalf("round %d: control sections ran in order %v, want [0 1 2]", round, order)
		}
		if g.Stats().ControlRendezvs != 3 {
			t.Fatalf("round %d: rendezvous count = %d, want 3", round, g.Stats().ControlRendezvs)
		}
	}
}

// TestShardInjectOrderDeterministic floods one target lane from three
// source lanes at identical timestamps and requires the drain order to be
// reproducible (sorted by source lane, then source seq).
func TestShardInjectOrderDeterministic(t *testing.T) {
	run := func() []string {
		root := New(9)
		g := NewShardGroup(root, 4, time.Microsecond)
		target := &shardNode{sim: g.Lane(3)}
		recv := func(arg any) { target.record(arg.(int)) }
		for lane := 0; lane < 3; lane++ {
			lane := lane
			src := g.Lane(lane)
			// Each source lane sends two same-timestamp values per step.
			for step := 0; step < 5; step++ {
				at := Time((step + 1) * int(Microsecond))
				src.At(at, func() {
					target.sim.InjectCall(src, src.Now().Add(time.Microsecond), recv, lane*100)
					target.sim.InjectCall(src, src.Now().Add(time.Microsecond), recv, lane*100+1)
				})
			}
		}
		root.Run(0)
		return target.trace
	}
	first := run()
	if len(first) != 30 {
		t.Fatalf("expected 30 deliveries, got %d", len(first))
	}
	for i := 0; i < 10; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("inject order not deterministic:\nfirst %v\n got  %v", first, got)
		}
	}
}

// TestShardLookaheadViolationPanics: a cross-lane inject below the window
// bound must fail loudly during a parallel window — silent reordering
// would corrupt causality.
func TestShardLookaheadViolationPanics(t *testing.T) {
	root := New(1)
	g := NewShardGroup(root, 2, time.Microsecond)
	l0, l1 := g.Lane(0), g.Lane(1)
	defer func() {
		if recover() == nil {
			t.Fatalf("under-lookahead inject did not panic")
		}
	}()
	// Serial phase (construction): inject into a lane "in the past" of the
	// target after the target has advanced.
	l1.At(Time(5*Microsecond), func() {})
	root.Run(0) // l1 advances to 5µs
	l1.InjectCall(l0, Time(1*Microsecond), func(any) {}, nil)
}

// TestShardResourceCrossLaneWaiter: a process can wait on a resource
// owned by another lane during serial phases; the wake must dispatch it
// on its own lane at the release time.
func TestShardResourceCrossLaneWaiter(t *testing.T) {
	root := New(1)
	_ = NewShardGroup(root, 2, time.Microsecond)
	res := NewResource(root, 1) // root-owned capacity (e.g. a global token)

	var tookAt, wokeAt Time
	root.Spawn("holder", func(p *Proc) {
		res.Acquire(p)
		p.Sleep(3 * time.Microsecond)
		res.Release()
	})
	root.Spawn("waiter", func(p *Proc) {
		p.Sleep(time.Microsecond)
		res.Acquire(p) // queues behind holder
		tookAt = p.Now()
		res.Release()
		wokeAt = p.Now()
	})
	root.Run(0)
	if tookAt != Time(3*Microsecond) || wokeAt != Time(3*Microsecond) {
		t.Fatalf("waiter acquired at %v released at %v, want 3µs both", tookAt, wokeAt)
	}
}

// TestShardSerialSeamUngrouped: a simulation never placed in a group must
// not touch any shard machinery — Group() is nil and Run uses the serial
// loop (guarded here by the absence of group-only panics plus identical
// semantics pinned across the rest of the suite).
func TestShardSerialSeamUngrouped(t *testing.T) {
	s := New(1)
	if s.Group() != nil {
		t.Fatalf("standalone simulation reports a shard group")
	}
	if s.ShardLane() != laneRoot {
		t.Fatalf("standalone simulation lane = %d, want root", s.ShardLane())
	}
	hits := 0
	s.After(time.Microsecond, func() { hits++ })
	s.Run(0)
	if hits != 1 {
		t.Fatalf("serial run broken: hits = %d", hits)
	}
}
