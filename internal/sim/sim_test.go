package sim

import (
	"testing"
	"time"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.After(3*Microsecond, func() { order = append(order, 3) })
	s.After(1*Microsecond, func() { order = append(order, 1) })
	s.After(2*Microsecond, func() { order = append(order, 2) })
	s.Run(0)
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got := s.Now(); got != Time(3*Microsecond) {
		t.Fatalf("Now() = %v, want 3µs", got)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(5*Microsecond, func() { order = append(order, i) })
	}
	s.Run(0)
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	hits := 0
	s.After(time.Microsecond, func() {
		hits++
		s.After(time.Microsecond, func() {
			hits++
			s.After(time.Microsecond, func() { hits++ })
		})
	})
	s.Run(0)
	if hits != 3 {
		t.Fatalf("hits = %d, want 3", hits)
	}
	if s.Now() != Time(3*Microsecond) {
		t.Fatalf("Now() = %v, want 3µs", s.Now())
	}
}

func TestRunLimit(t *testing.T) {
	s := New(1)
	ran := false
	s.After(10*Millisecond, func() { ran = true })
	end := s.Run(Time(time.Millisecond))
	if ran {
		t.Fatal("event past limit ran")
	}
	if end != Time(time.Millisecond) {
		t.Fatalf("end = %v, want 1ms", end)
	}
	// Resume: event should still run.
	s.Run(0)
	if !ran {
		t.Fatal("event did not run after resume")
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	ran := false
	tm := s.After(time.Microsecond, func() { ran = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending")
	}
	if !tm.Stop() {
		t.Fatal("Stop should report true for a pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Run(0)
	if ran {
		t.Fatal("stopped timer fired")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.After(time.Microsecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(0, func() {})
	})
	s.Run(0)
}

func TestStop(t *testing.T) {
	s := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n == 5 {
			s.Stop()
		}
		s.After(time.Microsecond, tick)
	}
	s.After(time.Microsecond, tick)
	s.Run(0)
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		s := New(42)
		var out []int64
		var step func()
		step = func() {
			out = append(out, int64(s.Now()), s.Rand().Int63n(1000))
			if len(out) < 40 {
				s.After(time.Duration(1+s.Rand().Intn(100))*Microsecond, step)
			}
		}
		s.After(time.Microsecond, step)
		s.Run(0)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestPendingCount(t *testing.T) {
	s := New(1)
	t1 := s.After(time.Microsecond, func() {})
	s.After(2*time.Microsecond, func() {})
	if got := s.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	t1.Stop()
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending after stop = %d, want 1", got)
	}
}
