package sim

import (
	"fmt"
	"time"
)

// Proc is a goroutine-backed simulation process. A Proc's body runs
// interleaved with the event loop: whenever it blocks (Sleep, Wait, Acquire)
// it schedules its own wake-up and parks, returning control to the scheduler.
// At most one Proc or event callback runs at any moment.
type Proc struct {
	sim  *Simulation
	name string

	wake  chan struct{} // scheduler -> proc: you may run
	yield chan struct{} // proc -> scheduler: I parked or finished
	done  bool

	// dispatchFn is the method value p.dispatch, bound once at Spawn. Every
	// blocking call (Sleep, Wait, Acquire) schedules the proc's own wake-up;
	// caching the bound method avoids materializing a fresh method value —
	// one heap allocation — per block.
	dispatchFn func()
}

// Spawn starts fn as a new process at the current virtual time. The process
// begins executing when the event loop reaches the spawn event. name is used
// in diagnostics only.
func (s *Simulation) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		sim:   s,
		name:  name,
		wake:  make(chan struct{}),
		yield: make(chan struct{}),
	}
	p.dispatchFn = p.dispatch
	go func() {
		<-p.wake
		fn(p)
		p.done = true
		p.yield <- struct{}{}
	}()
	s.At(s.now, p.dispatchFn)
	return p
}

// dispatch transfers control to the process and waits until it parks or
// finishes. It runs in event-callback context.
func (p *Proc) dispatch() {
	if p.done {
		return
	}
	prev := p.sim.inProc
	p.sim.inProc = p
	p.wake <- struct{}{}
	<-p.yield
	p.sim.inProc = prev
}

// park returns control to the scheduler and blocks until re-dispatched. The
// caller must already have scheduled something that will call p.dispatch.
func (p *Proc) park() {
	p.yield <- struct{}{}
	<-p.wake
}

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Simulation { return p.sim }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: proc %s sleeping for negative duration %v", p.name, d))
	}
	if d == 0 {
		return
	}
	p.sim.After(d, p.dispatchFn)
	p.park()
}

// SleepUntil suspends the process until virtual time t (no-op if t <= now).
func (p *Proc) SleepUntil(t Time) {
	if t <= p.sim.now {
		return
	}
	p.sim.At(t, p.dispatchFn)
	p.park()
}

// Wait suspends the process until the signal fires.
func (p *Proc) Wait(sg *Signal) {
	sg.subscribeFrom(p.sim, p.dispatchFn)
	p.park()
}

// WaitTimeout suspends the process until the signal fires or d elapses,
// reporting whether the signal fired first. Exactly one waker dispatches
// the process; the loser becomes a no-op.
func (p *Proc) WaitTimeout(sg *Signal, d time.Duration) (fired bool) {
	done := false
	var tm Timer
	sg.subscribeFrom(p.sim, func() {
		if done {
			return
		}
		done = true
		fired = true
		tm.Stop()
		p.dispatch()
	})
	tm = p.sim.After(d, func() {
		if done {
			return
		}
		done = true
		p.dispatch()
	})
	p.park()
	return fired
}

// waiter is one pending wake-up: the callback plus the simulation whose
// event loop must run it. In a sharded group a process can wait on a
// signal or resource owned by another lane; routing the wake to the
// waiter's home lane (rather than the owner's) keeps every process on the
// lane it was spawned on.
type waiter struct {
	fn   func()
	home *Simulation
}

// Signal is a broadcast condition: Fire schedules every pending subscriber
// at the current time and clears the list. Subscribing after Fire waits for
// the next Fire. Fire must be called from the event context of the
// simulation the signal is bound to.
type Signal struct {
	sim     *Simulation
	waiters []waiter
}

// NewSignal returns a Signal bound to s.
func NewSignal(s *Simulation) *Signal { return &Signal{sim: s} }

// Subscribe registers fn to be scheduled on the next Fire. The callback's
// home is the signal's own simulation; process waits use subscribeFrom so
// cross-lane waiters wake on their own lane.
func (sg *Signal) Subscribe(fn func()) { sg.waiters = append(sg.waiters, waiter{fn: fn, home: sg.sim}) }

// subscribeFrom registers fn with an explicit home simulation.
func (sg *Signal) subscribeFrom(home *Simulation, fn func()) {
	sg.waiters = append(sg.waiters, waiter{fn: fn, home: home})
}

// Fire schedules all pending subscribers to run at the current virtual time.
func (sg *Signal) Fire() {
	ws := sg.waiters
	sg.waiters = nil
	for _, w := range ws {
		sg.sim.wakeTo(w.home, w.fn)
	}
}

// Waiting returns the number of pending subscribers.
func (sg *Signal) Waiting() int { return len(sg.waiters) }

// Resource is a counting semaphore with a FIFO wait queue, used to model
// contended capacity such as CPU cores. Acquire blocks the calling process
// until a unit is available.
type Resource struct {
	sim      *Simulation
	capacity int
	inUse    int
	queue    []waiter
	// busy accounting for utilization metrics
	busyNs     int64
	lastChange Time
}

// NewResource returns a Resource with the given capacity.
func NewResource(s *Simulation, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{sim: s, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of currently held units.
func (r *Resource) InUse() int { return r.inUse }

func (r *Resource) account() {
	now := r.sim.now
	r.busyNs += int64(r.inUse) * int64(now-r.lastChange)
	r.lastChange = now
}

// BusyTime returns the aggregate unit-busy time accumulated so far
// (e.g. 2 units held for 3s contributes 6s).
func (r *Resource) BusyTime() time.Duration {
	r.account()
	return time.Duration(r.busyNs)
}

// Utilization returns average busy fraction over [0, now].
func (r *Resource) Utilization() float64 {
	if r.sim.now == 0 {
		return 0
	}
	return float64(r.BusyTime()) / (float64(r.sim.now) * float64(r.capacity))
}

// Acquire blocks p until one unit is available, then holds it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.capacity {
		r.account()
		r.inUse++
		return
	}
	r.queue = append(r.queue, waiter{fn: p.dispatchFn, home: p.sim})
	p.park()
	// Ownership was transferred to us by Release before dispatch.
}

// TryAcquire takes a unit without blocking, reporting success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity {
		r.account()
		r.inUse++
		return true
	}
	return false
}

// Release returns one unit, waking the oldest waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource")
	}
	if len(r.queue) > 0 {
		// Hand the unit directly to the next waiter: inUse stays constant.
		next := r.queue[0]
		r.queue = r.queue[1:]
		r.sim.wakeTo(next.home, next.fn)
		return
	}
	r.account()
	r.inUse--
}

// Use runs the critical section modelled as holding one unit for d of
// virtual time: acquire, sleep d, release.
func (r *Resource) Use(p *Proc, d time.Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int { return len(r.queue) }

// WaitGroup counts down outstanding work; Wait blocks until the count is 0.
type WaitGroup struct {
	sim   *Simulation
	count int
	sg    *Signal
}

// NewWaitGroup returns a WaitGroup bound to s.
func NewWaitGroup(s *Simulation) *WaitGroup {
	return &WaitGroup{sim: s, sg: NewSignal(s)}
}

// Add increments the counter by n.
func (wg *WaitGroup) Add(n int) { wg.count += n }

// Done decrements the counter; at zero it releases all waiters.
func (wg *WaitGroup) Done() {
	wg.count--
	if wg.count < 0 {
		panic("sim: WaitGroup count below zero")
	}
	if wg.count == 0 {
		wg.sg.Fire()
	}
}

// Wait blocks p until the counter reaches zero.
func (wg *WaitGroup) Wait(p *Proc) {
	if wg.count == 0 {
		return
	}
	p.Wait(wg.sg)
}
