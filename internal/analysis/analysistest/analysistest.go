// Package analysistest runs framework analyzers over testdata packages and
// checks their diagnostics against `// want` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Expectations are written on the line the diagnostic is reported on:
//
//	_ = time.Now() // want `simdeterminism: time\.Now`
//
// Each back-quoted (or double-quoted) string is a regular expression that
// must match the message of exactly one diagnostic on that line, prefixed
// with its analyzer name as "name: message". Diagnostics without a
// matching want, and wants without a matching diagnostic, fail the test.
//
// Because the harness runs analyzers through framework.RunAnalyzers, the
// //askcheck:allow(<name>) escape hatch is honoured: a violating line that
// carries an allow annotation and no want comment asserts the suppression
// path.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/analysis/framework"
)

var wantRE = regexp.MustCompile("// want((?: +(?:`[^`]*`|\"[^\"]*\"))+)")
var wantArgRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads each package directory under testdata/src and applies the
// analyzers, comparing diagnostics to // want comments.
func Run(t *testing.T, testdata string, pkgs []string, analyzers ...*framework.Analyzer) {
	t.Helper()
	loader, err := framework.NewLoader(testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	for _, name := range pkgs {
		dir := filepath.Join(testdata, "src", name)
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Errorf("analysistest: loading %s: %v", dir, err)
			continue
		}
		diags, err := framework.RunAnalyzers(pkg, analyzers...)
		if err != nil {
			t.Errorf("analysistest: %v", err)
			continue
		}
		checkPackage(t, pkg, diags)
	}
}

func checkPackage(t *testing.T, pkg *framework.Package, diags []framework.Diagnostic) {
	t.Helper()
	expects := collectWants(t, pkg)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		full := fmt.Sprintf("%s: %s", d.Analyzer, d.Message)
		if !claim(expects, pos, full) {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, full)
		}
	}
	for _, e := range expects {
		if !e.hit {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.re)
		}
	}
}

func claim(expects []*expectation, pos token.Position, msg string) bool {
	for _, e := range expects {
		if !e.hit && e.file == pos.Filename && e.line == pos.Line && e.re.MatchString(msg) {
			e.hit = true
			return true
		}
	}
	return false
}

func collectWants(t *testing.T, pkg *framework.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					src := arg[1]
					if src == "" {
						src = arg[2]
					}
					re, err := regexp.Compile(src)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, src, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}
