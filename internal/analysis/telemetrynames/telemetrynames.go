// Package telemetrynames defines an analyzer enforcing the repository's
// metric-name hygiene, replacing the standalone cmd/telemetrylint binary:
//
//  1. every metric registered via telemetry.Registry.Counter / Gauge /
//     Histogram / GaugeFunc with a literal name matches the canonical
//     component.snake_case shape (two or more dot-separated lowercase
//     segments), and
//  2. every registered metric is documented in DESIGN.md's metric
//     inventory (a `name` code span inside the "## Observability"
//     section).
//
// Unlike the old binary, registrar calls are resolved through the type
// checker — only methods on repro/internal/telemetry.Registry count, so an
// unrelated Counter method elsewhere can't confuse the check. DESIGN.md is
// located by walking up from the package directory, which lets testdata
// packages carry their own inventory. Dynamically-built names (label
// values appended at runtime) remain covered because the metric *name*
// argument stays a string literal at the registration site.
package telemetrynames

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the telemetrynames analyzer.
var Analyzer = &framework.Analyzer{
	Name: "telemetrynames",
	Doc:  "enforce component.snake_case metric names documented in DESIGN.md's Observability section",
	Run:  run,
}

const telemetryPath = "repro/internal/telemetry"

var (
	nameRE      = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$`)
	registrars  = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true, "GaugeFunc": true}
	docMetricRE = regexp.MustCompile("`([a-z][a-z0-9_]*(?:\\.[a-z][a-z0-9_]*)+)`")
)

func run(pass *framework.Pass) (any, error) {
	if pass.Pkg.Path() == telemetryPath {
		return nil, nil // the registrar definitions register nothing
	}
	type site struct {
		pos  token.Pos
		name string
	}
	var sites []site
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registrars[sel.Sel.Name] {
				return true
			}
			if !isRegistry(pass, sel.X) {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			sites = append(sites, site{pos: lit.Pos(), name: name})
			return true
		})
	}
	if len(sites) == 0 {
		return nil, nil
	}
	docs, docErr := documented(pass.Dir)
	for _, s := range sites {
		switch {
		case !nameRE.MatchString(s.name):
			pass.Reportf(s.pos, "metric %q is not component.snake_case (want at least two dot-separated lowercase segments)", s.name)
		case docErr != nil:
			pass.Reportf(s.pos, "metric %q cannot be checked against the inventory: %v", s.name, docErr)
		case !docs[s.name]:
			pass.Reportf(s.pos, "metric %q is not documented in DESIGN.md's Observability section", s.name)
		}
	}
	return nil, nil
}

// isRegistry reports whether expr has type *telemetry.Registry (or
// telemetry.Registry) from repro/internal/telemetry.
func isRegistry(pass *framework.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == telemetryPath && n.Obj().Name() == "Registry"
}

// documented returns the metric names listed in the Observability section
// of the nearest DESIGN.md at or above dir.
func documented(dir string) (map[string]bool, error) {
	path, err := findDesign(dir)
	if err != nil {
		return nil, err
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := string(b)
	i := strings.Index(text, "## Observability")
	if i < 0 {
		return nil, fmt.Errorf("%s has no \"## Observability\" section", path)
	}
	text = text[i:]
	if j := strings.Index(text[1:], "\n## "); j >= 0 {
		text = text[:j+1]
	}
	docs := make(map[string]bool)
	for _, m := range docMetricRE.FindAllStringSubmatch(text, -1) {
		docs[m[1]] = true
	}
	return docs, nil
}

func findDesign(dir string) (string, error) {
	for d := dir; ; d = filepath.Dir(d) {
		p := filepath.Join(d, "DESIGN.md")
		if _, err := os.Stat(p); err == nil {
			return p, nil
		}
		if filepath.Dir(d) == d {
			return "", fmt.Errorf("no DESIGN.md at or above %s", dir)
		}
	}
}
