// Package metrics exercises the telemetrynames analyzer against the
// DESIGN.md inventory that sits next to it.
package metrics

import "repro/internal/telemetry"

func register(reg *telemetry.Registry) {
	reg.Counter("demo.frames_total")       // documented: fine
	reg.Gauge("demo.queue_depth")          // documented: fine
	reg.Histogram("demo.latency_ns")       // documented: fine
	reg.Counter("BadName")                 // want `telemetrynames: metric "BadName" is not component\.snake_case`
	reg.Counter("demo.not_in_design")      // want `telemetrynames: metric "demo\.not_in_design" is not documented in DESIGN\.md`
	reg.Counter("demo.after_section")      // want `telemetrynames: metric "demo\.after_section" is not documented in DESIGN\.md`
	reg.GaugeFunc("demo.Mixed_Case", nil)  // want `telemetrynames: metric "demo\.Mixed_Case" is not component\.snake_case`
	//askcheck:allow(telemetrynames)
	reg.Counter("demo.suppressed_metric") // suppressed by the escape hatch

	name := "demo.dynamic"
	reg.Counter(name) // non-literal names are out of scope by design
}

type fake struct{}

func (fake) Counter(string) {}

func notARegistry(f fake) {
	f.Counter("Whatever.Shape") // not telemetry.Registry: ignored
}
