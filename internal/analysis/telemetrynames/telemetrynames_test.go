package telemetrynames_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/telemetrynames"
)

func TestTelemetryNames(t *testing.T) {
	analysistest.Run(t, "testdata", []string{"metrics"}, telemetrynames.Analyzer)
}
