// Package poolrelease defines an analyzer that flags packet-pool
// acquisitions that can never be released.
//
// The hot-path packages (netsim, switchd, hostd, tenancy) draw wire.Packet
// objects from a process-wide free list — wire.NewPacket and
// Packet.ClonePooled — under an explicit ownership discipline (see
// wire/pool.go): every acquisition must end in exactly one Packet.Release,
// either directly or by handing the packet to something that releases it
// (an owned netsim.Frame, Daemon.sendOwned, a return to the caller). A
// packet that is acquired and then simply dropped is not a correctness bug
// — the GC still reclaims it — but it silently re-introduces the
// per-packet allocation churn the pool exists to eliminate, which is
// exactly the kind of regression that survives every functional test.
//
// Since v2 the analyzer is INTERPROCEDURAL: it composes the framework's
// escape lattice along the static call graph into per-function release
// facts ("this callee releases or retains its i-th parameter"), exported
// through the pass fact store and imported at call sites anywhere in the
// module. A tracked packet therefore satisfies its obligation only by:
//
//   - a Release call on the packet (or on a local alias of it);
//   - an escape the caller can no longer see past: a return, a channel
//     send, a store into a field/map/global/composite literal, capture by
//     a closure, or an argument to a call the engine cannot resolve
//     (interface dispatch, function values, external code);
//   - being passed — as argument or receiver — to a statically-resolved
//     callee whose release fact says the corresponding value is released
//     or retained there (transitively, to a fixed point).
//
// Version 1 stopped at "passed to any call satisfies", so a helper that
// merely read the packet and dropped it hid the leak from the analyzer;
// that blind spot is gone (see the v1-pin regression test). Diagnostics
// still fire only on DEFINITE leaks; the rare intentional one can carry
// //askcheck:allow(poolrelease).
package poolrelease

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// releaseFact is the per-function fact: whether each incoming value
// (receiver, parameters) is released or retained by the function,
// directly or through its callees.
type releaseFact struct {
	Recv   bool
	Params []bool
}

// AFact marks releaseFact as a framework fact.
func (*releaseFact) AFact() {}

func (f *releaseFact) at(i int) bool {
	if i == -1 {
		return f.Recv
	}
	if i < 0 || i >= len(f.Params) {
		return true // out-of-range (variadic edge cases): stay conservative
	}
	return f.Params[i]
}

// Analyzer is the poolrelease analyzer.
var Analyzer = &framework.Analyzer{
	Name:      "poolrelease",
	Doc:       "flag wire packet-pool acquisitions that are provably never released or handed off",
	Run:       run,
	FactTypes: []framework.Fact{(*releaseFact)(nil)},
}

// interprocedural gates the v2 call-composition. Tests flip it to false to
// pin the exact blind spot version 1 had (any call argument satisfied the
// obligation, even when the callee dropped the packet).
var interprocedural = true

// pooledPkgs are the last path elements of the packages on the pooled
// fast path, where a leaked acquisition defeats the free list.
var pooledPkgs = map[string]bool{
	"netsim": true, "switchd": true, "hostd": true, "tenancy": true,
}

func run(pass *framework.Pass) (any, error) {
	if !pooledPkgs[lastElem(pass.Pkg.Path())] {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// isAcquisition reports whether call draws a packet from the pool:
// wire.NewPacket(...) or (*wire.Packet).ClonePooled(...).
func isAcquisition(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name != "NewPacket" && name != "ClonePooled" {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "/wire") || obj.Pkg().Path() == "wire"
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	type acquisition struct {
		at ast.Node
		ve *framework.ValueEscape
	}
	seeds := make(map[types.Object]*framework.ValueEscape)
	var acquired []acquisition

	// Pass 1: find acquisitions; discarded results leak unconditionally.
	// Nested function literals are skipped: the escape walk treats them as
	// capture boundaries, so obligations arising inside one cannot be
	// tracked from the enclosing declaration.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isAcquisition(pass, call) {
				pass.Reportf(call.Pos(), "packet-pool acquisition result is discarded (never released)")
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isAcquisition(pass, call) {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "packet-pool acquisition assigned to _ (never released)")
				return true
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				// Re-assignment (pkt = x.ClonePooled()): a fresh obligation
				// on the same variable.
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				ve := seeds[obj]
				if ve == nil {
					ve = framework.NewValueEscape()
					seeds[obj] = ve
				}
				acquired = append(acquired, acquisition{at: call, ve: ve})
			}
		}
		return true
	})
	if len(acquired) == 0 {
		return
	}

	// Pass 2: flow the acquisitions through the escape lattice, then judge
	// each obligation, composing callee release facts at resolved calls.
	node := pass.CallGraph().Node(funcObj(pass, fd))
	if node == nil {
		return // unresolvable declaration (should not happen for own pkg)
	}
	framework.EscapeValues(node, seeds)
	for _, acq := range acquired {
		ok, _ := satisfied(pass, acq.ve, make(map[*types.Func]bool))
		if !ok {
			pass.Reportf(acq.at.Pos(), "packet acquired from the pool is neither released nor handed off")
		}
	}
}

// satisfied reports whether a value summary discharges the ownership
// obligation: an intraprocedural escape, a Release call, or a resolved
// callee that releases/retains the corresponding value. The second result
// marks a verdict that leaned on the optimistic cycle assumption — only a
// FALSE verdict can be tainted (optimism never invents a consumption), so
// tainted verdicts must not be cached as facts.
func satisfied(pass *framework.Pass, ve *framework.ValueEscape, visiting map[*types.Func]bool) (ok, tainted bool) {
	if ve.Flow != 0 {
		return true, false
	}
	if ve.Methods["Release"] {
		return true, false
	}
	for _, edge := range ve.Calls {
		if !interprocedural {
			// v1 semantics: any call the packet reaches satisfies.
			if edge.Param >= 0 {
				return true, false
			}
			continue
		}
		c, t := consumes(pass, edge.Callee, edge.Param, visiting)
		if c {
			return true, false
		}
		tainted = tainted || t
	}
	return false, tainted
}

// consumes reports whether fn releases or retains its idx-th value
// (receiver for idx == -1), computing and caching the release fact on
// first use. Functions without a body in the load universe are assumed to
// consume (conservative: no false leak reports through external code).
func consumes(pass *framework.Pass, fn *types.Func, idx int, visiting map[*types.Func]bool) (bool, bool) {
	fact := new(releaseFact)
	if pass.ImportObjectFact(fn, fact) {
		return fact.at(idx), false
	}
	node := pass.CallGraph().Node(fn)
	if node == nil {
		return true, false
	}
	if visiting[fn] {
		// Optimistically assume the cycle does not consume; anything it
		// truly consumes is visible on another edge.
		return false, true
	}
	visiting[fn] = true
	defer delete(visiting, fn)

	fe := pass.EscapeOf(node)
	fact = &releaseFact{Params: make([]bool, len(fe.Params))}
	cacheable := true
	judge := func(ve *framework.ValueEscape) bool {
		ok, t := satisfied(pass, ve, visiting)
		if t && !ok {
			cacheable = false
		}
		return ok
	}
	if fe.Recv != nil {
		fact.Recv = judge(fe.Recv)
	}
	for i, ve := range fe.Params {
		fact.Params[i] = judge(ve)
	}
	if cacheable {
		pass.ExportObjectFact(fn, fact)
	}
	taintedIdx := !cacheable && !fact.at(idx)
	return fact.at(idx), taintedIdx
}

func funcObj(pass *framework.Pass, fd *ast.FuncDecl) *types.Func {
	fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return fn
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
