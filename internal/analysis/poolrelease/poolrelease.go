// Package poolrelease defines an analyzer that flags packet-pool
// acquisitions that can never be released.
//
// The hot-path packages (netsim, switchd, hostd) draw wire.Packet objects
// from a process-wide free list — wire.NewPacket and Packet.ClonePooled —
// under an explicit ownership discipline (see wire/pool.go): every
// acquisition must end in exactly one Packet.Release, either directly or
// by handing the packet to something that releases it (an owned
// netsim.Frame, Daemon.sendOwned, a return to the caller). A packet that
// is acquired and then simply dropped is not a correctness bug — the GC
// still reclaims it — but it silently re-introduces the per-packet
// allocation churn the pool exists to eliminate, which is exactly the kind
// of regression that survives every functional test.
//
// The analyzer is intra-procedural and deliberately conservative: it
// reports only DEFINITE leaks, where the acquired packet provably cannot
// reach a Release:
//
//   - an acquisition whose result is discarded (expression statement or
//     assignment to the blank identifier);
//   - an acquisition bound to a local variable that is never subsequently
//     released, passed to any call, returned, sent on a channel, assigned
//     anywhere, or embedded in a composite literal. Field writes
//     (pkt.Type = …) and read-only method calls (pkt.WireBytes(k)) do not
//     count as hand-offs.
//
// Any escape — a call argument, a frame literal, a return — silences the
// analyzer, so code that transfers ownership through helpers needs no
// annotation. The rare intentional leak can carry
// //askcheck:allow(poolrelease).
package poolrelease

import (
	"go/ast"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the poolrelease analyzer.
var Analyzer = &framework.Analyzer{
	Name: "poolrelease",
	Doc:  "flag wire packet-pool acquisitions that are provably never released or handed off",
	Run:  run,
}

// pooledPkgs are the last path elements of the packages on the pooled
// fast path, where a leaked acquisition defeats the free list.
var pooledPkgs = map[string]bool{
	"netsim": true, "switchd": true, "hostd": true, "tenancy": true,
}

func run(pass *framework.Pass) (any, error) {
	if !pooledPkgs[lastElem(pass.Pkg.Path())] {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil, nil
}

// isAcquisition reports whether call draws a packet from the pool:
// wire.NewPacket(...) or (*wire.Packet).ClonePooled(...).
func isAcquisition(pass *framework.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name != "NewPacket" && name != "ClonePooled" {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), "/wire") || obj.Pkg().Path() == "wire"
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	// tracked maps a local variable's declaring identifier object to the
	// acquisition position; satisfied records a release or hand-off.
	type track struct {
		pos       ast.Node
		satisfied bool
	}
	tracked := map[any]*track{}

	// Pass 1: find acquisitions.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isAcquisition(pass, call) {
				pass.Reportf(call.Pos(), "packet-pool acquisition result is discarded (never released)")
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isAcquisition(pass, call) {
				return true
			}
			id, ok := n.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(), "packet-pool acquisition assigned to _ (never released)")
				return true
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				tracked[obj] = &track{pos: call}
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				// Re-assignment (pkt = x.ClonePooled()): treat like a fresh
				// acquisition of the same variable.
				tracked[obj] = &track{pos: call}
			}
		}
		return true
	})
	if len(tracked) == 0 {
		return
	}

	// escMark walks an expression in VALUE position and marks every tracked
	// variable whose value escapes through it. Selector reads (pkt.Seq) and
	// method-call receivers (pkt.WireBytes(k)) are NOT value escapes — only
	// the bare identifier, its address, call arguments, composite-literal
	// elements, and type conversions hand the pointer onward.
	var escMark func(e ast.Expr)
	escMark = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[e]; obj != nil {
				if t, ok := tracked[obj]; ok {
					t.satisfied = true
				}
			}
		case *ast.ParenExpr:
			escMark(e.X)
		case *ast.UnaryExpr:
			escMark(e.X)
		case *ast.StarExpr:
			escMark(e.X)
		case *ast.CallExpr:
			for _, a := range e.Args {
				escMark(a)
			}
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				escMark(el)
			}
		case *ast.KeyValueExpr:
			escMark(e.Value)
		case *ast.IndexExpr:
			escMark(e.Index) // m[pkt] keys the packet into a map
		}
	}

	// Pass 2: find satisfying uses — Release calls and escapes.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// pkt.Release() satisfies; any other method on pkt does not.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok {
					if obj := pass.TypesInfo.Uses[id]; obj != nil {
						if t, ok := tracked[obj]; ok && sel.Sel.Name == "Release" {
							t.satisfied = true
						}
					}
				}
			}
			// A tracked packet handed to any call argument is a hand-off
			// (sendOwned, frame literals, helper calls).
			for _, arg := range n.Args {
				escMark(arg)
			}
		case *ast.ReturnStmt:
			for _, e := range n.Results {
				escMark(e)
			}
		case *ast.SendStmt:
			escMark(n.Value)
		case *ast.AssignStmt:
			// A tracked packet on the right-hand side escapes into another
			// binding (frame field, map entry, alias); left-hand selector
			// writes (pkt.Seq = n) are plain field initialization.
			for i, e := range n.Rhs {
				if call, ok := e.(*ast.CallExpr); ok && isAcquisition(pass, call) && i < len(n.Lhs) {
					continue // the defining acquisition itself
				}
				escMark(e)
			}
			for _, e := range n.Lhs {
				// frames[pkt] = x keys the packet into someone else's
				// storage: conservatively an escape.
				if ix, ok := e.(*ast.IndexExpr); ok {
					escMark(ix.Index)
				}
			}
		}
		return true
	})

	for _, t := range tracked {
		if !t.satisfied {
			pass.Reportf(t.pos.Pos(), "packet acquired from the pool is neither released nor handed off")
		}
	}
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
