package poolrelease

// SetInterprocedural flips the v2 call-composition gate for tests and
// returns a restore function. Disabling it reproduces the exact v1
// semantics ("passed to any call satisfies the obligation") so the
// regression test can pin the blind spot v2 closes.
func SetInterprocedural(v bool) (restore func()) {
	old := interprocedural
	interprocedural = v
	return func() { interprocedural = old }
}
