package poolrelease_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolrelease"
)

func TestPoolRelease(t *testing.T) {
	analysistest.Run(t, "testdata", []string{"hostd", "other"}, poolrelease.Analyzer)
}
