package poolrelease_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/poolrelease"
)

func TestPoolRelease(t *testing.T) {
	analysistest.Run(t, "testdata", []string{"hostd", "other", "switchd"}, poolrelease.Analyzer)
}

// TestV1BlindSpotPinned proves the interprocedural upgrade closes a real
// hole: under v1 semantics (any call argument counts as a hand-off) the
// callee-dropped packet in testdata/src/switchd goes unreported, while v2
// composes the callee's release fact and flags the acquisition.
func TestV1BlindSpotPinned(t *testing.T) {
	dir := filepath.Join("testdata", "src", "switchd")
	loader, err := framework.NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}

	restore := poolrelease.SetInterprocedural(false)
	v1, err := framework.RunAnalyzers(pkg, poolrelease.Analyzer)
	restore()
	if err != nil {
		t.Fatalf("v1 run: %v", err)
	}
	if len(v1) != 0 {
		t.Errorf("v1 semantics reported %d diagnostics, want 0 (the blind spot): %v", len(v1), v1)
	}

	v2, err := framework.RunAnalyzers(pkg, poolrelease.Analyzer)
	if err != nil {
		t.Fatalf("v2 run: %v", err)
	}
	if len(v2) != 1 {
		t.Fatalf("v2 semantics reported %d diagnostics, want exactly 1: %v", len(v2), v2)
	}
	if !strings.Contains(v2[0].Message, "neither released nor handed off") {
		t.Errorf("v2 diagnostic = %q, want the leak message", v2[0].Message)
	}
}
