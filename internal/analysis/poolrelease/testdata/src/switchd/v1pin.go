// Package v1pin is the corpus for the regression test pinning the v1
// blind spot: a packet handed to a callee that provably drops it. Version
// 1 accepted any call argument as a hand-off; version 2 composes the
// callee's release fact and reports the leak. The want comment asserts
// the v2 behaviour; TestV1BlindSpotPinned re-runs the analyzer with
// interprocedural composition disabled and asserts the leak vanishes.
package v1pin

import "repro/internal/wire"

// forget reads a field and drops the packet: not a release, not a
// retention.
func forget(p *wire.Packet) { _ = p.Seq }

func leakThroughForget() {
	pkt := wire.NewPacket() // want `poolrelease: packet acquired from the pool is neither released nor handed off`
	forget(pkt)
}
