// Package pool exercises the poolrelease analyzer inside a pooled-path
// package (the directory name "hostd" puts it in scope). Since v2 the
// helpers must genuinely release or retain a packet for a hand-off to
// count: the analyzer composes escape summaries through the call graph.
package pool

import "repro/internal/wire"

type frame struct {
	Pkt   *wire.Packet
	Owned bool
}

var sink *wire.Packet

func send(f *frame)                                {}
func sendOwned(p *wire.Packet)                     { sink = p } // retains: global store
func stash(m map[int]*wire.Packet, p *wire.Packet) { m[0] = p }

// drop reads the packet and forgets it: NOT a hand-off (the v1 blind spot).
func drop(p *wire.Packet) { _ = p.Seq }

// dropDeep launders the drop through one more call level.
func dropDeep(p *wire.Packet) { drop(p) }

// releaseIndirect discharges the obligation in a callee.
func releaseIndirect(p *wire.Packet) { p.Release() }

// relay discharges it two levels down.
func relay(p *wire.Packet) { releaseIndirect(p) }

type notifier interface{ Notify(*wire.Packet) }

// dynamic hands the packet to an interface method: unresolvable, so the
// analyzer must stay conservative and accept it.
func dynamic(n notifier, p *wire.Packet) { n.Notify(p) }

func leakDiscarded() {
	wire.NewPacket() // want `poolrelease: packet-pool acquisition result is discarded`
}

func leakBlank(src *wire.Packet) {
	_ = src.ClonePooled() // want `poolrelease: packet-pool acquisition assigned to _`
}

func leakLocal() {
	pkt := wire.NewPacket() // want `poolrelease: packet acquired from the pool is neither released nor handed off`
	pkt.Type = wire.TypeAck
	pkt.Seq = 7
	_ = pkt.WireBytes(4) // read-only method call is not a hand-off
}

func leakClone(src *wire.Packet) {
	q := src.ClonePooled() // want `poolrelease: packet acquired from the pool is neither released nor handed off`
	q.Seq = 1
}

// leakViaCallee pins the v1 blind spot: the packet IS passed to a call,
// but the callee provably drops it, so v2 reports the acquisition.
func leakViaCallee() {
	pkt := wire.NewPacket() // want `poolrelease: packet acquired from the pool is neither released nor handed off`
	pkt.Type = wire.TypeAck
	drop(pkt)
}

// leakViaDeepCallee: the drop hides one more call level down.
func leakViaDeepCallee() {
	pkt := wire.NewPacket() // want `poolrelease: packet acquired from the pool is neither released nor handed off`
	dropDeep(pkt)
}

func okReleased() {
	pkt := wire.NewPacket()
	pkt.Type = wire.TypeAck
	pkt.Release()
}

func okReleasedViaAlias() {
	pkt := wire.NewPacket()
	q := pkt
	q.Release()
}

func okHandedToCall() {
	pkt := wire.NewPacket()
	sendOwned(pkt)
}

func okReleasedByCallee() {
	pkt := wire.NewPacket()
	releaseIndirect(pkt)
}

func okReleasedByRelay() {
	pkt := wire.NewPacket()
	relay(pkt)
}

func okDynamicHandoff(n notifier) {
	pkt := wire.NewPacket()
	dynamic(n, pkt)
}

func okFrameLiteral(src *wire.Packet) {
	q := src.ClonePooled()
	send(&frame{Pkt: q, Owned: true})
}

func okReturned() *wire.Packet {
	pkt := wire.NewPacket()
	pkt.Seq = 2
	return pkt
}

func okStored(m map[int]*wire.Packet) {
	pkt := wire.NewPacket()
	stash(m, pkt)
}

func okAssigned(dst *frame) {
	pkt := wire.NewPacket()
	dst.Pkt = pkt
}

func okNestedAcquisition(src *wire.Packet) {
	// Acquisitions nested in a hand-off context need no binding at all.
	send(&frame{Pkt: src.ClonePooled(), Owned: true})
}

func okClosureRelease() {
	pkt := wire.NewPacket()
	defer func() { pkt.Release() }()
	pkt.Seq = 9
}

func okAllowed() {
	//askcheck:allow(poolrelease)
	pkt := wire.NewPacket()
	pkt.Seq = 3
}
