// Package pool exercises the poolrelease analyzer inside a pooled-path
// package (the directory name "hostd" puts it in scope).
package pool

import "repro/internal/wire"

type frame struct {
	Pkt   *wire.Packet
	Owned bool
}

func send(f *frame)             {}
func sendOwned(p *wire.Packet)  {}
func stash(m map[int]*wire.Packet, p *wire.Packet) { m[0] = p }

func leakDiscarded() {
	wire.NewPacket() // want `poolrelease: packet-pool acquisition result is discarded`
}

func leakBlank(src *wire.Packet) {
	_ = src.ClonePooled() // want `poolrelease: packet-pool acquisition assigned to _`
}

func leakLocal() {
	pkt := wire.NewPacket() // want `poolrelease: packet acquired from the pool is neither released nor handed off`
	pkt.Type = wire.TypeAck
	pkt.Seq = 7
	_ = pkt.WireBytes(4) // read-only method call is not a hand-off
}

func leakClone(src *wire.Packet) {
	q := src.ClonePooled() // want `poolrelease: packet acquired from the pool is neither released nor handed off`
	q.Seq = 1
}

func okReleased() {
	pkt := wire.NewPacket()
	pkt.Type = wire.TypeAck
	pkt.Release()
}

func okHandedToCall() {
	pkt := wire.NewPacket()
	sendOwned(pkt)
}

func okFrameLiteral(src *wire.Packet) {
	q := src.ClonePooled()
	send(&frame{Pkt: q, Owned: true})
}

func okReturned() *wire.Packet {
	pkt := wire.NewPacket()
	pkt.Seq = 2
	return pkt
}

func okStored(m map[int]*wire.Packet) {
	pkt := wire.NewPacket()
	stash(m, pkt)
}

func okAssigned(dst *frame) {
	pkt := wire.NewPacket()
	dst.Pkt = pkt
}

func okNestedAcquisition(src *wire.Packet) {
	// Acquisitions nested in a hand-off context need no binding at all.
	send(&frame{Pkt: src.ClonePooled(), Owned: true})
}

func okAllowed() {
	//askcheck:allow(poolrelease)
	pkt := wire.NewPacket()
	pkt.Seq = 3
}
