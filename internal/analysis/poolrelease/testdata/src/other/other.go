// Package other is outside the pooled-path packages: identical leaks are
// NOT reported here (clients of the library own their packets and may
// legitimately let the GC reclaim them).
package other

import "repro/internal/wire"

func leakOutsideScope() {
	pkt := wire.NewPacket() // no diagnostic: package not on the pooled path
	pkt.Seq = 9
}
