package framework

import (
	"encoding/json"
	"go/token"
	"io"
	"path/filepath"
	"strings"
)

// JSONDiagnostic is the machine-readable record `askcheck -json` emits,
// one JSON object per line (NDJSON) so CI can stream-parse diagnostics
// into annotations without buffering the whole run.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// JSONRecord converts one diagnostic to its JSON record. File paths are
// made relative to base when possible (base "" keeps them absolute), with
// forward slashes for portability.
func JSONRecord(fset *token.FileSet, base string, d Diagnostic) JSONDiagnostic {
	pos := fset.Position(d.Pos)
	name := pos.Filename
	if base != "" {
		if rel, err := filepath.Rel(base, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
	}
	return JSONDiagnostic{
		File:     filepath.ToSlash(name),
		Line:     pos.Line,
		Col:      pos.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
}

// WriteJSON encodes diagnostics as NDJSON to w.
func WriteJSON(w io.Writer, fset *token.FileSet, base string, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		if err := enc.Encode(JSONRecord(fset, base, d)); err != nil {
			return err
		}
	}
	return nil
}
