// Call graph construction for the interprocedural engine.
//
// The graph covers every function with a body in the loader's universe —
// all module-internal packages type-checked so far — and records only
// STATIC edges: direct calls of package-level functions and method calls
// whose receiver has a concrete (non-interface) type. Interface dispatch,
// method values, and function-typed variables produce no edge; analyzers
// built on the graph must treat a call they cannot resolve as reaching
// unknown code and stay conservative there. That asymmetry is deliberate:
// the analyzers certify properties along the statically-known structure
// (the same property that makes Flare-style in-network collectives
// schedulable), and anything dynamic is a declared boundary.
package framework

import (
	"go/ast"
	"go/types"
	"sort"
)

// CallSite is one resolved static call inside a function body.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *CallNode
}

// CallNode is one function (or method) with source in the universe.
type CallNode struct {
	// Fn is the canonical type-checker object for the function.
	Fn *types.Func
	// Decl is the declaration carrying the body, nil only for synthetic
	// nodes (none are currently created).
	Decl *ast.FuncDecl
	// Pkg is the package the body was loaded from.
	Pkg *Package
	// Calls are the static call sites in the body, in source order. Calls
	// inside function literals nested in the body are attributed to this
	// node: the literal runs with the enclosing function's context as far
	// as every analyzer here is concerned.
	Calls []CallSite

	callers []*CallNode
}

// Callers returns the nodes with a static call site targeting n.
func (n *CallNode) Callers() []*CallNode { return n.callers }

// CallGraph is the static call graph over one load universe.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
	// Nodes in deterministic (position) order, for analyzers that iterate.
	ordered []*CallNode
}

// Node returns the graph node for fn, or nil when fn has no body in the
// universe (stdlib, interface methods, functions of unloaded packages).
func (g *CallGraph) Node(fn *types.Func) *CallNode {
	if fn == nil {
		return nil
	}
	return g.nodes[fn]
}

// Nodes returns every node in deterministic source order.
func (g *CallGraph) Nodes() []*CallNode { return g.ordered }

// FuncOf resolves the *types.Func a call expression statically targets, or
// nil for dynamic calls (interface methods, function values, built-ins,
// type conversions).
func FuncOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			// Method call: resolve only through a concrete receiver; an
			// interface receiver dispatches dynamically.
			if fn, ok := sel.Obj().(*types.Func); ok {
				if !types.IsInterface(sel.Recv()) {
					return fn
				}
			}
			return nil
		}
		// Qualified call pkg.F.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// buildCallGraph constructs the graph over the given packages. Packages
// must already be fully type-checked; the slice order does not matter
// (nodes are ordered by file position).
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{nodes: make(map[*types.Func]*CallNode)}
	// First pass: create a node per declared function with a body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[fn] = &CallNode{Fn: fn, Decl: fd, Pkg: pkg}
			}
		}
	}
	// Second pass: resolve call sites.
	for _, node := range g.nodes {
		n := node
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := FuncOf(n.Pkg.Info, call)
			if fn == nil {
				return true
			}
			callee := g.nodes[fn]
			if callee == nil {
				return true // no body in the universe
			}
			n.Calls = append(n.Calls, CallSite{Call: call, Callee: callee})
			callee.callers = append(callee.callers, n)
			return true
		})
	}
	g.ordered = make([]*CallNode, 0, len(g.nodes))
	for _, n := range g.nodes {
		g.ordered = append(g.ordered, n)
	}
	sort.Slice(g.ordered, func(i, j int) bool {
		return g.ordered[i].Decl.Pos() < g.ordered[j].Decl.Pos()
	})
	for _, n := range g.ordered {
		sort.Slice(n.Calls, func(i, j int) bool {
			return n.Calls[i].Call.Pos() < n.Calls[j].Call.Pos()
		})
		sort.Slice(n.callers, func(i, j int) bool {
			return n.callers[i].Decl.Pos() < n.callers[j].Decl.Pos()
		})
	}
	return g
}

// ReachableFrom computes the set of nodes statically reachable from the
// given roots, following call edges but never descending into a node for
// which stop returns true (the roots themselves are always included).
func (g *CallGraph) ReachableFrom(roots []*CallNode, stop func(*CallNode) bool) map[*CallNode]bool {
	seen := make(map[*CallNode]bool)
	var stack []*CallNode
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if stop != nil && stop(n) {
			continue
		}
		for _, cs := range n.Calls {
			if !seen[cs.Callee] {
				seen[cs.Callee] = true
				stack = append(stack, cs.Callee)
			}
		}
	}
	return seen
}
