package framework

import (
	"go/types"
	"path/filepath"
	"testing"
)

// engineModule is a two-package sandbox exercising every escape-lattice
// destination and a cross-package call edge.
var engineModule = map[string]string{
	"go.mod": sandboxMod,
	"b/b.go": `package b

type Box struct{ N int }

var Global *Box

func (x *Box) Reset() { x.N = 0 }

func G(x *Box) { Global = x }

func Ret(x *Box) *Box { return x }

func Send(ch chan *Box, x *Box) { ch <- x }

func Capture(x *Box) func() int { return func() int { return x.N } }

func Store(holder *struct{ P *Box }, x *Box) { holder.P = x }

type I interface{ M(*Box) }

func Dyn(i I, x *Box) { i.M(x) }

func Call(x *Box) { x.Reset() }

func Read(x *Box) int { return x.N }

func Alias(x *Box) { y := x; y.Reset() }

func C1() { C2() }
func C2() { C3() }
func C3() {}
`,
	"a/a.go": `package a

import "sandbox/b"

func F(x *b.Box) { b.G(x) }
`,
}

func loadEngineModule(t *testing.T) (*Loader, *Package, *Package) {
	t.Helper()
	dir := writeModule(t, engineModule)
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgA, err := l.LoadDir(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	pkgB, err := l.LoadDir(filepath.Join(dir, "b"))
	if err != nil {
		t.Fatal(err)
	}
	return l, pkgA, pkgB
}

func passFor(pkg *Package, name string) *Pass {
	var diags []Diagnostic
	return &Pass{
		Analyzer:  &Analyzer{Name: name},
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Dir:       pkg.Dir,
		pkg:       pkg,
		diags:     &diags,
	}
}

func funcNamed(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("function %s not found in %s", name, pkg.Path)
	}
	return fn
}

func TestCallGraphCrossPackageEdge(t *testing.T) {
	_, pkgA, pkgB := loadEngineModule(t)
	pass := passFor(pkgA, "test")
	g := pass.CallGraph()
	if g == nil {
		t.Fatal("CallGraph returned nil for a loader-backed pass")
	}
	f := g.Node(funcNamed(t, pkgA, "F"))
	if f == nil {
		t.Fatal("no node for a.F")
	}
	gee := g.Node(funcNamed(t, pkgB, "G"))
	if gee == nil {
		t.Fatal("no node for b.G")
	}
	if len(f.Calls) != 1 || f.Calls[0].Callee != gee {
		t.Errorf("a.F call sites = %v, want one edge to b.G", f.Calls)
	}
	var seen bool
	for _, c := range gee.Callers() {
		if c == f {
			seen = true
		}
	}
	if !seen {
		t.Error("b.G callers do not include a.F")
	}
}

func TestCallGraphReachableFromStopsAtBoundary(t *testing.T) {
	_, _, pkgB := loadEngineModule(t)
	pass := passFor(pkgB, "test")
	g := pass.CallGraph()
	c1 := g.Node(funcNamed(t, pkgB, "C1"))
	c2 := g.Node(funcNamed(t, pkgB, "C2"))
	c3 := g.Node(funcNamed(t, pkgB, "C3"))
	reach := g.ReachableFrom([]*CallNode{c1}, func(n *CallNode) bool { return n == c2 })
	if !reach[c1] || !reach[c2] {
		t.Error("reachability must include the root and the boundary node itself")
	}
	if reach[c3] {
		t.Error("reachability descended through the stop boundary into C3")
	}
}

func TestEscapeLattice(t *testing.T) {
	_, _, pkgB := loadEngineModule(t)
	pass := passFor(pkgB, "test")
	g := pass.CallGraph()

	cases := []struct {
		fn    string
		param int
		want  Flow
	}{
		{"G", 0, FlowGlobal},
		{"Ret", 0, FlowReturn},
		{"Send", 1, FlowChannel},
		{"Capture", 0, FlowCaptured},
		{"Store", 1, FlowHeap},
		{"Dyn", 1, FlowUnknownCall},
		{"Read", 0, 0}, // field read is not a flow of the value
	}
	for _, c := range cases {
		fe := pass.EscapeOf(g.Node(funcNamed(t, pkgB, c.fn)))
		ve := fe.Value(c.param)
		if ve == nil {
			t.Fatalf("%s: no summary for param %d", c.fn, c.param)
		}
		if ve.Flow != c.want {
			t.Errorf("%s param %d: Flow = %b, want %b", c.fn, c.param, ve.Flow, c.want)
		}
		if c.want != 0 && ve.Sites[c.want] == nil {
			t.Errorf("%s param %d: no diagnostic site recorded for flow %b", c.fn, c.param, c.want)
		}
	}
}

func TestEscapeMethodAndAlias(t *testing.T) {
	_, _, pkgB := loadEngineModule(t)
	pass := passFor(pkgB, "test")
	g := pass.CallGraph()

	call := pass.EscapeOf(g.Node(funcNamed(t, pkgB, "Call"))).Value(0)
	if !call.Methods["Reset"] {
		t.Error("Call: Reset not recorded in Methods")
	}
	var edge bool
	for _, af := range call.Calls {
		if af.Param == -1 && af.Callee.Name() == "Reset" {
			edge = true
		}
	}
	if !edge {
		t.Error("Call: no receiver ArgFlow edge to Reset")
	}

	alias := pass.EscapeOf(g.Node(funcNamed(t, pkgB, "Alias"))).Value(0)
	if !alias.Methods["Reset"] {
		t.Error("Alias: method call through a local alias was not attributed to the original value")
	}
}

type testFact struct{ V int }

func (*testFact) AFact() {}

func TestFactsCrossPackageAndNamespaced(t *testing.T) {
	_, pkgA, pkgB := loadEngineModule(t)
	target := funcNamed(t, pkgB, "G")

	// Exported while analyzing package a...
	passA := passFor(pkgA, "alpha")
	passA.ExportObjectFact(target, &testFact{V: 42})

	// ...visible from a pass over package b under the same analyzer,
	// because type-checker objects are canonical across the load universe.
	passB := passFor(pkgB, "alpha")
	var got testFact
	if !passB.ImportObjectFact(target, &got) {
		t.Fatal("fact exported from package a's pass not importable from package b's pass")
	}
	if got.V != 42 {
		t.Errorf("imported fact = %+v, want V=42", got)
	}

	// Another analyzer must not observe it.
	passC := passFor(pkgB, "beta")
	if passC.ImportObjectFact(target, new(testFact)) {
		t.Error("fact leaked across analyzer namespaces")
	}
}

func TestEngineRebuildsOnNewPackages(t *testing.T) {
	dir := writeModule(t, engineModule)
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkgB, err := l.LoadDir(filepath.Join(dir, "b"))
	if err != nil {
		t.Fatal(err)
	}
	pass := passFor(pkgB, "test")
	g1 := pass.CallGraph()
	if g1.Node(funcNamed(t, pkgB, "G")) == nil {
		t.Fatal("b.G missing from first graph")
	}

	pkgA, err := l.LoadDir(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatal(err)
	}
	g2 := pass.CallGraph()
	if g2 == g1 {
		t.Fatal("call graph not rebuilt after a new package loaded")
	}
	if g2.Node(funcNamed(t, pkgA, "F")) == nil {
		t.Error("a.F missing from rebuilt graph")
	}
	// Stable when nothing new loads.
	if g3 := pass.CallGraph(); g3 != g2 {
		t.Error("call graph rebuilt without new packages")
	}
}
