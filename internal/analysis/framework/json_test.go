package framework

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// jsonFixture registers two fake files in a FileSet and returns positions on
// known lines.
func jsonFixture(t *testing.T) (*token.FileSet, string, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	base := filepath.Join(string(filepath.Separator), "repo")
	src := "line one\nline two\nline three\n"

	inside := fset.AddFile(filepath.Join(base, "pkg", "a.go"), -1, len(src))
	inside.SetLinesForContent([]byte(src))
	outside := fset.AddFile(filepath.Join(string(filepath.Separator), "elsewhere", "b.go"), -1, len(src))
	outside.SetLinesForContent([]byte(src))

	diags := []Diagnostic{
		{Pos: inside.Pos(9), Analyzer: "alpha", Message: `needs "quoting" & escapes`},
		{Pos: outside.Pos(0), Analyzer: "beta", Message: "outside the base dir"},
	}
	return fset, base, diags
}

func TestJSONRecordRelativizesAndSlashes(t *testing.T) {
	fset, base, diags := jsonFixture(t)

	rec := JSONRecord(fset, base, diags[0])
	if rec.File != "pkg/a.go" {
		t.Errorf("File = %q, want %q (relative, forward slashes)", rec.File, "pkg/a.go")
	}
	if rec.Line != 2 || rec.Col != 1 {
		t.Errorf("position = %d:%d, want 2:1", rec.Line, rec.Col)
	}
	if rec.Analyzer != "alpha" {
		t.Errorf("Analyzer = %q", rec.Analyzer)
	}

	// A file outside base must stay absolute rather than sprouting "..".
	out := JSONRecord(fset, base, diags[1])
	if strings.HasPrefix(out.File, "..") {
		t.Errorf("outside-base File = %q, must not be ..-relative", out.File)
	}
	if !strings.HasSuffix(out.File, "elsewhere/b.go") {
		t.Errorf("outside-base File = %q, want absolute path to b.go", out.File)
	}

	// base "" keeps paths absolute.
	abs := JSONRecord(fset, "", diags[0])
	if !strings.HasSuffix(abs.File, "pkg/a.go") || abs.File == "pkg/a.go" {
		t.Errorf("base-less File = %q, want absolute", abs.File)
	}
}

func TestWriteJSONIsNDJSON(t *testing.T) {
	fset, base, diags := jsonFixture(t)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, fset, base, diags); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("NDJSON output must end with a newline")
	}
	lines := strings.Split(strings.TrimSuffix(out, "\n"), "\n")
	if len(lines) != len(diags) {
		t.Fatalf("got %d lines for %d diagnostics", len(lines), len(diags))
	}
	for i, line := range lines {
		var rec JSONDiagnostic
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not a standalone JSON object: %v\n%s", i, err, line)
		}
		if rec.Analyzer != diags[i].Analyzer {
			t.Errorf("line %d analyzer = %q, want %q", i, rec.Analyzer, diags[i].Analyzer)
		}
	}
	// Round-trip must preserve messages with quotes exactly.
	var first JSONDiagnostic
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Message != diags[0].Message {
		t.Errorf("message round-trip: %q != %q", first.Message, diags[0].Message)
	}
}
