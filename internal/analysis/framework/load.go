package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	Dir   string // absolute directory the sources were read from
	Path  string // import path ("repro/internal/switchd", "main" pkgs too)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// loader links back to the Loader that produced the package, giving
	// analyzers access to the interprocedural engine (call graph, escape
	// summaries, fact store) over the whole load universe.
	loader *Loader
}

// Loader parses and type-checks packages of one module without external
// tooling. Imports inside the module resolve by rewriting the import path
// under the module root; every other import (the standard library) is
// delegated to go/importer's source importer, so the loader works in a
// hermetic build with no module cache or proxy.
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // directory containing go.mod
	ModPath string // module path declared in go.mod

	std  types.ImporterFrom
	pkgs map[string]*loadEntry

	// mu guards gen and eng; loads themselves stay single-threaded (the
	// recursive type-checker is not), but analyzers read the engine from
	// concurrent passes.
	mu  sync.Mutex
	gen int
	eng *engine
}

type loadEntry struct {
	pkg     *Package
	loading bool
	err     error
}

// NewLoader returns a Loader rooted at the module containing dir (dir or
// one of its parents must hold go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("framework: source importer does not implement ImporterFrom")
	}
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     std,
		pkgs:    make(map[string]*loadEntry),
	}, nil
}

// findModule walks up from dir looking for go.mod and returns the module
// root and module path.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; d = filepath.Dir(d) {
		b, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(b), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("framework: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("framework: no go.mod at or above %s", dir)
		}
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// through the Loader, everything else through the stdlib source importer.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if dir, ok := l.moduleDir(path); ok {
		pkg, err := l.load(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// moduleDir maps a module-internal import path to its directory.
func (l *Loader) moduleDir(path string) (string, bool) {
	if path == l.ModPath {
		return l.ModRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// PathForDir returns the import path the loader assigns to a directory
// inside the module.
func (l *Loader) PathForDir(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("framework: %s is outside module %s", dir, l.ModRoot)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the package in dir (non-test files only).
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.PathForDir(abs)
	if err != nil {
		return nil, err
	}
	return l.load(abs, path)
}

func (l *Loader) load(dir, path string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return nil, fmt.Errorf("framework: import cycle through %s", path)
		}
		return e.pkg, e.err
	}
	e := &loadEntry{loading: true}
	l.pkgs[path] = e
	pkg, err := l.loadUncached(dir, path)
	e.pkg, e.err, e.loading = pkg, err, false
	if pkg != nil {
		pkg.loader = l
	}
	l.mu.Lock()
	l.gen++
	l.mu.Unlock()
	return pkg, err
}

// generation counts completed loads; the engine uses it to notice a stale
// call graph.
func (l *Loader) generation() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.gen
}

// loadedPackages returns every successfully loaded package, sorted by
// import path for deterministic engine construction.
func (l *Loader) loadedPackages() []*Package {
	var out []*Package
	for _, e := range l.pkgs {
		if e.pkg != nil && !e.loading {
			out = append(out, e.pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Engine returns the loader's interprocedural engine, creating it on first
// use.
func (l *Loader) engine() *engine {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.eng == nil {
		l.eng = &engine{facts: make(map[factKey]Fact)}
	}
	return l.eng
}

func (l *Loader) loadUncached(dir, path string) (*Package, error) {
	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("framework: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErr error
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if typeErr == nil {
				typeErr = err
			}
		},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if typeErr != nil {
		return nil, fmt.Errorf("framework: type-checking %s: %w", path, typeErr)
	}
	if err != nil {
		return nil, fmt.Errorf("framework: type-checking %s: %w", path, err)
	}
	return &Package{
		Dir:   dir,
		Path:  path,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// parseDir parses the non-test Go files of one directory.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ExpandPatterns resolves go-tool-style package patterns relative to base:
// "./..." walks every package directory under base (skipping testdata,
// vendor, hidden and .git directories); any other pattern names a single
// directory. Returned directories are absolute and sorted.
func ExpandPatterns(base string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." || strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		root := pat
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, root)
		}
		abs, err := filepath.Abs(root)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(abs)
			continue
		}
		err = filepath.WalkDir(abs, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				n := d.Name()
				if p != abs && (n == "testdata" || n == "vendor" || n == ".git" || strings.HasPrefix(n, ".")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
				add(filepath.Dir(p))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
