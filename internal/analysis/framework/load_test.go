package framework

import (
	"go/ast"
	"path/filepath"
	"testing"
)

// repoRoot returns the module root (two levels up from this package).
func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestLoadTypeChecksModulePackage(t *testing.T) {
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(filepath.Join(root, "internal", "pisa"))
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Path != "repro/internal/pisa" {
		t.Errorf("path = %q, want repro/internal/pisa", pkg.Path)
	}
	if pkg.Types.Name() != "pisa" {
		t.Errorf("package name = %q", pkg.Types.Name())
	}
	// Type information must be populated: find the RMW method.
	obj := pkg.Types.Scope().Lookup("RegisterArray")
	if obj == nil {
		t.Fatal("RegisterArray not found in package scope")
	}
}

func TestLoadResolvesIntraModuleImports(t *testing.T) {
	root := repoRoot(t)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	// switchd imports pisa, netsim, telemetry, window, wire, core, ... —
	// loading it exercises recursive module-internal resolution plus the
	// stdlib source importer.
	pkg, err := l.LoadDir(filepath.Join(root, "internal", "switchd"))
	if err != nil {
		t.Fatal(err)
	}
	var sawIngress bool
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Name.Name == "HandleIngress" {
				sawIngress = true
			}
			return true
		})
	}
	if !sawIngress {
		t.Error("HandleIngress not found in loaded switchd sources")
	}
}

func TestExpandPatterns(t *testing.T) {
	root := repoRoot(t)
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		filepath.Join(root, "internal", "pisa"):    false,
		filepath.Join(root, "internal", "switchd"): false,
		filepath.Join(root, "cmd", "askcheck"):     false,
	}
	for _, d := range dirs {
		if _, ok := want[d]; ok {
			want[d] = true
		}
		if filepath.Base(d) == "testdata" {
			t.Errorf("testdata directory leaked into pattern expansion: %s", d)
		}
	}
	for d, ok := range want {
		if !ok {
			t.Errorf("pattern ./... missed %s", d)
		}
	}
}
