// Fact store for the interprocedural engine, mirroring go/analysis Facts.
//
// A Fact is a typed, analyzer-private datum attached to a types.Object —
// typically a *types.Func summary ("this callee releases its parameter")
// exported while analyzing one function and imported at call sites
// anywhere in the module. Because the loader type-checks the whole module
// through one FileSet and one package cache, type-checker objects are
// canonical across packages, so the store is a plain map on the engine: a
// fact exported while analyzing package A is immediately visible when the
// same analyzer later (or concurrently) analyzes package B. Facts are
// namespaced per analyzer; one analyzer can never observe another's.
package framework

import (
	"fmt"
	"go/types"
	"reflect"
	"sync"
)

// A Fact is analyzer-private information attached to a types.Object. The
// AFact marker method mirrors go/analysis; implementations must be
// pointers so ImportObjectFact can copy into them.
type Fact interface {
	AFact()
}

type factKey struct {
	analyzer string
	obj      types.Object
	typ      reflect.Type
}

// ExportObjectFact records fact for obj under the running analyzer's
// namespace, replacing any existing fact of the same concrete type.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || fact == nil {
		panic("framework: ExportObjectFact with nil object or fact")
	}
	e := p.engine()
	if e == nil {
		panic("framework: pass has no engine (package not loaded through a Loader)")
	}
	t := reflect.TypeOf(fact)
	if t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("framework: fact %T must be a pointer", fact))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.facts[factKey{p.Analyzer.Name, obj, t}] = fact
}

// ImportObjectFact copies the fact of fact's concrete type previously
// exported for obj by this analyzer into fact, reporting whether one was
// found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || fact == nil {
		return false
	}
	e := p.engine()
	if e == nil {
		return false
	}
	t := reflect.TypeOf(fact)
	e.mu.Lock()
	stored, ok := e.facts[factKey{p.Analyzer.Name, obj, t}]
	e.mu.Unlock()
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

// engine is the interprocedural state shared by every package loaded
// through one Loader: the static call graph over the load universe, the
// memoized escape summaries, and the cross-package fact store.
type engine struct {
	mu      sync.Mutex
	gen     int // loader generation the graph was built at
	graph   *CallGraph
	escapes map[*CallNode]*FuncEscape
	facts   map[factKey]Fact
}

// CallGraph returns the static call graph over every package the loader
// has type-checked so far (rebuilt lazily when new packages have loaded
// since the last call). Nil only for passes with no loader.
func (p *Pass) CallGraph() *CallGraph {
	e := p.engine()
	if e == nil {
		return nil
	}
	return e.callGraph(p.loader())
}

// EscapeOf returns the (memoized) escape summary for a call-graph node.
func (p *Pass) EscapeOf(n *CallNode) *FuncEscape {
	if n == nil {
		return nil
	}
	e := p.engine()
	if e == nil {
		return escapeFunc(n)
	}
	e.mu.Lock()
	fe, ok := e.escapes[n]
	e.mu.Unlock()
	if ok {
		return fe
	}
	fe = escapeFunc(n) // outside the lock: summaries are deterministic
	e.mu.Lock()
	if prev, ok := e.escapes[n]; ok {
		fe = prev
	} else {
		e.escapes[n] = fe
	}
	e.mu.Unlock()
	return fe
}

func (e *engine) callGraph(l *Loader) *CallGraph {
	e.mu.Lock()
	defer e.mu.Unlock()
	gen := l.generation()
	if e.graph == nil || e.gen != gen {
		e.graph = buildCallGraph(l.loadedPackages())
		e.gen = gen
		e.escapes = make(map[*CallNode]*FuncEscape)
	}
	return e.graph
}
