// Reaching-values / escape lattice for the interprocedural engine.
//
// For every function with a body the engine can summarize, per incoming
// value (receiver and parameters), where that value can flow: to a
// package-level variable, out through a return, onto a channel, into a
// closure that outlives the call, into heap storage (a field, map, slice,
// or composite literal), or into a call the engine cannot resolve. The
// lattice is a bitmask ordered by set inclusion; summaries are
// intraprocedural, and the per-callee flow (ArgFlow edges) lets analyzers
// compose them to a fixed point along the static call graph — poolrelease
// composes them into release facts, shardsafety into shard-publication
// checks.
//
// The analysis is value-insensitive about aliasing in the
// over-approximating direction: `q := pkt` makes q an alias of pkt for the
// rest of the body, and a value "flows" wherever an identifier naming it
// appears in a flow position, even if that store is dead. Field READS
// (pkt.Seq on the right-hand side) are not flows of the value itself,
// matching the ownership discipline the clients check.
package framework

import (
	"go/ast"
	"go/types"
)

// Flow is the escape lattice: a bitmask of the destinations an incoming
// value can reach inside one function body.
type Flow uint16

const (
	// FlowGlobal: stored into (or through) a package-level variable.
	FlowGlobal Flow = 1 << iota
	// FlowReturn: returned to the caller.
	FlowReturn
	// FlowChannel: sent on a channel.
	FlowChannel
	// FlowCaptured: referenced inside a nested function literal.
	FlowCaptured
	// FlowHeap: stored into a field, map, slice element, or composite
	// literal (reachable after the function returns if the container is).
	FlowHeap
	// FlowUnknownCall: passed to a call the engine cannot resolve
	// statically (interface method, function value, external function).
	FlowUnknownCall
)

// FlowAny covers every escape destination.
const FlowAny = FlowGlobal | FlowReturn | FlowChannel | FlowCaptured | FlowHeap | FlowUnknownCall

// Has reports whether f includes every bit of mask.
func (f Flow) Has(mask Flow) bool { return f&mask == mask }

// ArgFlow records one value flowing into a resolved static call.
type ArgFlow struct {
	// Callee is the statically-resolved target.
	Callee *types.Func
	// Param is the callee's parameter index receiving the value; -1 when
	// the value is the call's receiver (method calls).
	Param int
	// Call is the call site.
	Call *ast.CallExpr
}

// ValueEscape summarizes one incoming value (receiver or parameter).
type ValueEscape struct {
	// Flow is the intraprocedural escape lattice for the value.
	Flow Flow
	// Sites holds one representative AST node per set Flow bit, for
	// diagnostics (keyed by the bit).
	Sites map[Flow]ast.Node
	// Calls lists the resolved static calls the value is passed to; the
	// composed (interprocedural) flow of the value is the join of Flow and
	// the callee-side flow of each edge.
	Calls []ArgFlow
	// Methods is the set of method names invoked with the value as
	// receiver (pkt.Release() records "Release"). Client analyzers assign
	// meaning to specific names.
	Methods map[string]bool
}

// FuncEscape is the per-function summary.
type FuncEscape struct {
	// Recv is the receiver summary (methods only, else nil).
	Recv *ValueEscape
	// Params holds one summary per declared parameter, in order.
	Params []*ValueEscape
}

// Value returns the summary for parameter index i, or the receiver for
// i == -1; nil when out of range.
func (fe *FuncEscape) Value(i int) *ValueEscape {
	if fe == nil {
		return nil
	}
	if i == -1 {
		return fe.Recv
	}
	if i < 0 || i >= len(fe.Params) {
		return nil
	}
	return fe.Params[i]
}

// NewValueEscape returns an empty summary, ready to seed EscapeValues.
func NewValueEscape() *ValueEscape {
	return &ValueEscape{Sites: make(map[Flow]ast.Node), Methods: make(map[string]bool)}
}

// escapeFunc computes the summary for one call-graph node.
func escapeFunc(n *CallNode) *FuncEscape {
	fe := &FuncEscape{}
	info := n.Pkg.Info

	// values maps every object currently known to name a tracked value
	// (parameters, receiver, and local aliases of them) to its summary.
	values := make(map[types.Object]*ValueEscape)
	addValue := func(id *ast.Ident) *ValueEscape {
		ve := NewValueEscape()
		if id != nil && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				values[obj] = ve
			}
		}
		return ve
	}
	fd := n.Decl
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		var id *ast.Ident
		if names := fd.Recv.List[0].Names; len(names) == 1 {
			id = names[0]
		}
		fe.Recv = addValue(id)
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			if len(field.Names) == 0 {
				fe.Params = append(fe.Params, addValue(nil))
				continue
			}
			for _, name := range field.Names {
				fe.Params = append(fe.Params, addValue(name))
			}
		}
	}
	if len(values) > 0 {
		EscapeValues(n, values)
	}
	return fe
}

// EscapeValues fills in the flow summaries for a set of seed values — any
// objects scoped to n's body (parameters, receiver, locals such as pool
// acquisitions) mapped to fresh NewValueEscape summaries. Local aliases of
// a seed discovered while walking share its summary. Analyzers use this
// directly when the values of interest are not parameters; the engine's
// FuncEscape summaries are built on the same walk.
func EscapeValues(n *CallNode, values map[types.Object]*ValueEscape) {
	info := n.Pkg.Info
	fd := n.Decl

	// valueOf resolves an expression to a tracked value when the
	// expression IS the value (possibly parenthesized, dereferenced, or
	// address-taken). Field selections (v.f) are not the value itself.
	var valueOf func(e ast.Expr) *ValueEscape
	valueOf = func(e ast.Expr) *ValueEscape {
		switch e := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[e]; obj != nil {
				return values[obj]
			}
		case *ast.ParenExpr:
			return valueOf(e.X)
		case *ast.UnaryExpr:
			return valueOf(e.X)
		case *ast.StarExpr:
			return valueOf(e.X)
		}
		return nil
	}
	mark := func(ve *ValueEscape, bit Flow, site ast.Node) {
		if ve != nil && ve.Flow&bit == 0 {
			ve.Flow |= bit
			ve.Sites[bit] = site
		}
	}
	// escMark walks an expression in VALUE position and marks every
	// tracked value whose identity flows through it: the bare identifier,
	// its address/deref, composite-literal elements, type-conversion-like
	// call arguments, and map-index keys. Selector reads (v.f) do NOT flow
	// the value.
	var escMark func(e ast.Expr, bit Flow, site ast.Node)
	escMark = func(e ast.Expr, bit Flow, site ast.Node) {
		switch e := e.(type) {
		case *ast.Ident:
			mark(valueOf(e), bit, site)
		case *ast.ParenExpr:
			escMark(e.X, bit, site)
		case *ast.UnaryExpr:
			escMark(e.X, bit, site)
		case *ast.StarExpr:
			escMark(e.X, bit, site)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				escMark(el, bit, site)
			}
		case *ast.KeyValueExpr:
			escMark(e.Key, bit, site)
			escMark(e.Value, bit, site)
		case *ast.IndexExpr:
			escMark(e.Index, bit, site) // m[v] keys the value into a map
		}
	}

	isGlobalTarget := func(e ast.Expr) bool {
		for {
			switch t := ast.Unparen(e).(type) {
			case *ast.Ident:
				v, ok := info.Uses[t].(*types.Var)
				return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
			case *ast.SelectorExpr:
				if id, ok := t.X.(*ast.Ident); ok {
					if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
						v, ok := info.Uses[t.Sel].(*types.Var)
						return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
					}
				}
				e = t.X
			case *ast.IndexExpr:
				e = t.X
			case *ast.StarExpr:
				e = t.X
			default:
				return false
			}
		}
	}

	ast.Inspect(fd.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// Everything referenced inside a nested literal is captured.
			ast.Inspect(x.Body, func(y ast.Node) bool {
				if id, ok := y.(*ast.Ident); ok {
					mark(valueOf(id), FlowCaptured, id)
				}
				return true
			})
			return false
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				escMark(r, FlowReturn, x)
			}
		case *ast.SendStmt:
			escMark(x.Value, FlowChannel, x)
		case *ast.GoStmt:
			for _, a := range x.Call.Args {
				escMark(a, FlowCaptured, x)
			}
		case *ast.DeferStmt:
			// Deferred calls run on exit; treat like a normal call, which
			// the CallExpr case below already visits.
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if len(x.Lhs) == len(x.Rhs) {
					if id, ok := ast.Unparen(x.Lhs[i]).(*ast.Ident); ok && !isGlobalTarget(id) {
						// Binding to a local. A bare tracked value on the
						// RHS makes the local an alias; anything else
						// (composite literal, call) is a heap-shaped
						// hand-off of whatever tracked values it embeds.
						if ve := valueOf(rhs); ve != nil {
							if obj := info.Defs[id]; obj != nil {
								values[obj] = ve
							} else if obj := info.Uses[id]; obj != nil {
								if _, tracked := values[obj]; !tracked {
									values[obj] = ve
								}
							}
						} else {
							escMark(rhs, FlowHeap, x)
						}
						continue
					}
					bit := FlowHeap
					if isGlobalTarget(x.Lhs[i]) {
						bit = FlowGlobal
					}
					escMark(rhs, bit, x)
					continue
				}
				escMark(rhs, FlowHeap, x)
			}
			// Keying a map owned elsewhere: m[v] = ... escapes v too.
			for _, lhs := range x.Lhs {
				if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
					bit := FlowHeap
					if isGlobalTarget(ix) {
						bit = FlowGlobal
					}
					escMark(ix.Index, bit, x)
				}
			}
		case *ast.CallExpr:
			handleCall(n, x, valueOf, escMark)
		}
		return true
	})
}

// handleCall classifies one call's effect on tracked values: a method
// invoked on the value, a resolved static edge, or an unknown call.
func handleCall(n *CallNode, call *ast.CallExpr,
	valueOf func(ast.Expr) *ValueEscape,
	escMark func(ast.Expr, Flow, ast.Node)) {
	info := n.Pkg.Info
	callee := FuncOf(info, call)

	// Receiver position: v.M(...) records method M on v.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if ve := valueOf(sel.X); ve != nil {
			ve.Methods[sel.Sel.Name] = true
			if callee != nil {
				ve.Calls = append(ve.Calls, ArgFlow{Callee: callee, Param: -1, Call: call})
			}
		}
	}

	sig, _ := info.Types[call.Fun].Type.(*types.Signature)
	for i, arg := range call.Args {
		ve := valueOf(arg)
		if ve == nil {
			// A value embedded deeper in the argument (composite literal,
			// conversion) escapes to the heap: the callee may retain the
			// container.
			escMark(arg, FlowHeap, call)
			continue
		}
		if callee == nil || sig == nil {
			if ve.Flow&FlowUnknownCall == 0 {
				ve.Flow |= FlowUnknownCall
				ve.Sites[FlowUnknownCall] = call
			}
			continue
		}
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		ve.Calls = append(ve.Calls, ArgFlow{Callee: callee, Param: pi, Call: call})
	}
}
