package framework

import (
	"go/ast"
	"go/token"
	"sort"
	"testing"
)

// intReporter builds an analyzer that flags every integer literal >= 100.
// Two instances with different names exercise per-analyzer suppression.
func intReporter(name string) *Analyzer {
	return &Analyzer{
		Name: name,
		Doc:  "flags three-digit integer literals (test helper)",
		Run: func(pass *Pass) (any, error) {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					lit, ok := n.(*ast.BasicLit)
					if ok && lit.Kind == token.INT && len(lit.Value) >= 3 {
						pass.Reportf(lit.Pos(), "%s", lit.Value)
					}
					return true
				})
			}
			return nil, nil
		},
	}
}

const allowFixture = `package s

func use(xs ...int) int { return len(xs) }

var sink int

func f() {
	//askcheck:allow(alpha,beta)
	use(101)

	use(102) //askcheck:allow(alpha)

	//askcheck:allow(alpha)
	sink = use(
		103,
		104,
	)

	//askcheck:allow(alpha)
	if use(105) > 0 {
		use(106)
	}

	use(107)
}
`

func TestAllowSuppression(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": sandboxMod,
		"s/s.go": allowFixture,
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadDir(dir + "/s")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, intReporter("alpha"), intReporter("beta"))
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][]string{}
	for _, d := range diags {
		got[d.Analyzer] = append(got[d.Analyzer], d.Message)
	}
	for _, vs := range got {
		sort.Strings(vs)
	}

	want := map[string][]string{
		// 101: multi-analyzer allow(alpha,beta) kills both.
		// 102: same-line allow(alpha) kills alpha only.
		// 103/104: allow above a multi-line assignment covers every
		// continuation line — for alpha only.
		// 105: allow above `if` covers the header...
		// 106: ...but never the body.
		"alpha": {"106", "107"},
		"beta":  {"102", "103", "104", "105", "106", "107"},
	}
	for name, w := range want {
		g := got[name]
		if len(g) != len(w) {
			t.Errorf("%s survivors = %v, want %v", name, g, w)
			continue
		}
		for i := range w {
			if g[i] != w[i] {
				t.Errorf("%s survivors = %v, want %v", name, g, w)
				break
			}
		}
	}
}
