// Package framework is a self-contained, stdlib-only re-implementation of
// the golang.org/x/tools/go/analysis surface this repository needs.
//
// The real go/analysis package is the obvious foundation for a checker
// suite, but this repository builds in a hermetic container with no module
// proxy, so x/tools cannot be pinned. The subset we need — an Analyzer
// value with a Run function over a type-checked package, a Pass carrying
// *types.Info, positional Diagnostics, and an analysistest-style harness
// driven by `// want` comments — is small and stable, so it is
// reimplemented here on top of go/ast, go/parser, go/types and
// go/importer alone. The API shapes mirror go/analysis deliberately: if
// x/tools ever becomes available, the analyzers port by changing imports.
//
// Suppression: a diagnostic is suppressed when the line it is reported on,
// or the line immediately above it, carries a comment of the form
//
//	//askcheck:allow(<analyzer-name>)
//
// The escape hatch is deliberately narrow (one analyzer per annotation,
// adjacent lines only) so that a suppression is visible right next to the
// code it excuses.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //askcheck:allow(name) suppressions. It must be a valid identifier.
	Name string
	// Doc is the analyzer's documentation (first sentence is the summary).
	Doc string
	// Run applies the analyzer to one package and reports diagnostics via
	// pass.Report. The return value is reserved for inter-analyzer facts
	// and is currently unused.
	Run func(pass *Pass) (any, error)
}

// Pass carries one type-checked package through an Analyzer's Run,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the directory the package was loaded from (used by analyzers
	// that consult repository-level context such as DESIGN.md).
	Dir string

	diags *[]Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records one diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

var allowRE = regexp.MustCompile(`//askcheck:allow\(([a-zA-Z0-9_,\s]+)\)`)

// allowLines returns, per filename, the set of lines whose diagnostics a
// given analyzer suppresses: the annotation's own line and the line below.
func allowLines(fset *token.FileSet, files []*ast.File, analyzer string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if !allowNames(m[1])[analyzer] {
					continue
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]bool)
				}
				out[pos.Filename][pos.Line] = true
				out[pos.Filename][pos.Line+1] = true
			}
		}
	}
	return out
}

var splitRE = regexp.MustCompile(`[,\s]+`)

func allowNames(list string) map[string]bool {
	names := make(map[string]bool)
	for _, n := range splitRE.Split(list, -1) {
		if n != "" {
			names[n] = true
		}
	}
	return names
}

// RunAnalyzers applies each analyzer to the loaded package and returns the
// surviving (non-suppressed) diagnostics in positional order.
func RunAnalyzers(pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Dir:       pkg.Dir,
			diags:     &raw,
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		allowed := allowLines(pkg.Fset, pkg.Files, a.Name)
		for _, d := range raw {
			pos := pkg.Fset.Position(d.Pos)
			if allowed[pos.Filename][pos.Line] {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
