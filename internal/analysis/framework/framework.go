// Package framework is a self-contained, stdlib-only re-implementation of
// the golang.org/x/tools/go/analysis surface this repository needs.
//
// The real go/analysis package is the obvious foundation for a checker
// suite, but this repository builds in a hermetic container with no module
// proxy, so x/tools cannot be pinned. The subset we need — an Analyzer
// value with a Run function over a type-checked package, a Pass carrying
// *types.Info, positional Diagnostics, and an analysistest-style harness
// driven by `// want` comments — is small and stable, so it is
// reimplemented here on top of go/ast, go/parser, go/types and
// go/importer alone. The API shapes mirror go/analysis deliberately: if
// x/tools ever becomes available, the analyzers port by changing imports.
//
// Suppression: a diagnostic is suppressed when the line it is reported on,
// or the line immediately above it, carries a comment of the form
//
//	//askcheck:allow(<name>)        // one analyzer
//	//askcheck:allow(<a>,<b>)       // several analyzers at once
//
// An annotation on the line above a multi-line statement also covers the
// statement's continuation lines (but never the body of a control
// statement — an allow above an `if` excuses its header only). The escape
// hatch stays deliberately narrow so that a suppression is visible right
// next to the code it excuses.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //askcheck:allow(name) suppressions. It must be a valid identifier.
	Name string
	// Doc is the analyzer's documentation (first sentence is the summary).
	Doc string
	// Run applies the analyzer to one package and reports diagnostics via
	// pass.Report. The return value is reserved for inter-analyzer facts
	// and is currently unused.
	Run func(pass *Pass) (any, error)
	// FactTypes declares the Fact types the analyzer exports (one zero
	// value per type), mirroring analysis.Analyzer.FactTypes. Purely
	// declarative here — the in-memory store needs no gob registration —
	// but kept so the analyzers port to go/analysis unchanged.
	FactTypes []Fact
}

// Pass carries one type-checked package through an Analyzer's Run,
// mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dir is the directory the package was loaded from (used by analyzers
	// that consult repository-level context such as DESIGN.md).
	Dir string

	pkg   *Package
	diags *[]Diagnostic
}

// loader returns the Loader behind the pass's package, nil for packages
// not produced by a Loader.
func (p *Pass) loader() *Loader {
	if p.pkg == nil {
		return nil
	}
	return p.pkg.loader
}

// engine returns the interprocedural engine shared across the load
// universe, nil when the pass has no loader.
func (p *Pass) engine() *engine {
	l := p.loader()
	if l == nil {
		return nil
	}
	return l.engine()
}

// Universe returns every package the pass's loader has type-checked so
// far, in import-path order — the scope the interprocedural engine (call
// graph, facts) covers. Nil for passes without a loader. Drivers that want
// whole-program context (e.g. shardsafety's annotation scan) must load all
// packages before running analyzers.
func (p *Pass) Universe() []*Package {
	l := p.loader()
	if l == nil {
		return nil
	}
	return l.loadedPackages()
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records one diagnostic.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	*p.diags = append(*p.diags, d)
}

var allowRE = regexp.MustCompile(`//askcheck:allow\(([a-zA-Z0-9_,\s]+)\)`)

// allowLines returns, per filename, the set of lines whose diagnostics a
// given analyzer suppresses: the annotation's own line, the line below,
// and — when the annotated line (or the line below it) starts a multi-line
// statement — every continuation line of that statement. Control
// statements (if/for/range/switch/select) extend suppression only through
// their header, never into their body: an allow above an `if` excuses the
// condition, not everything inside the braces.
func allowLines(fset *token.FileSet, files []*ast.File, analyzer string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range files {
		var spans map[int]int // statement start line -> last covered line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if !allowNames(m[1])[analyzer] {
					continue
				}
				if spans == nil {
					spans = stmtSpans(fset, f)
				}
				pos := fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]bool)
				}
				lines := out[pos.Filename]
				for _, start := range []int{pos.Line, pos.Line + 1} {
					end := start
					if e, ok := spans[start]; ok && e > end {
						end = e
					}
					for ln := start; ln <= end; ln++ {
						lines[ln] = true
					}
				}
			}
		}
	}
	return out
}

// stmtSpans maps, for one file, each line starting a statement (or
// declaration) to the last line that statement's suppressible extent
// reaches: its End for plain statements, the opening-brace line for
// statements with a block body.
func stmtSpans(fset *token.FileSet, f *ast.File) map[int]int {
	spans := make(map[int]int)
	record := func(from token.Pos, to token.Pos) {
		start := fset.Position(from).Line
		end := fset.Position(to).Line
		if end > spans[start] {
			spans[start] = end
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			record(n.Pos(), n.Body.Lbrace)
		case *ast.ForStmt:
			record(n.Pos(), n.Body.Lbrace)
		case *ast.RangeStmt:
			record(n.Pos(), n.Body.Lbrace)
		case *ast.SwitchStmt:
			record(n.Pos(), n.Body.Lbrace)
		case *ast.TypeSwitchStmt:
			record(n.Pos(), n.Body.Lbrace)
		case *ast.SelectStmt:
			record(n.Pos(), n.Body.Lbrace)
		case *ast.BlockStmt, *ast.LabeledStmt, *ast.CaseClause, *ast.CommClause:
			// Structure, not a suppressible unit of its own.
		case ast.Stmt:
			record(n.Pos(), n.End())
		case *ast.GenDecl:
			record(n.Pos(), n.End())
		}
		return true
	})
	return spans
}

var splitRE = regexp.MustCompile(`[,\s]+`)

func allowNames(list string) map[string]bool {
	names := make(map[string]bool)
	for _, n := range splitRE.Split(list, -1) {
		if n != "" {
			names[n] = true
		}
	}
	return names
}

// RunAnalyzers applies each analyzer to the loaded package and returns the
// surviving (non-suppressed) diagnostics in positional order.
func RunAnalyzers(pkg *Package, analyzers ...*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		var raw []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Dir:       pkg.Dir,
			pkg:       pkg,
			diags:     &raw,
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		allowed := allowLines(pkg.Fset, pkg.Files, a.Name)
		for _, d := range raw {
			pos := pkg.Fset.Position(d.Pos)
			if allowed[pos.Filename][pos.Line] {
				continue
			}
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := pkg.Fset.Position(diags[i].Pos), pkg.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
