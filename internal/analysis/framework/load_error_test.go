package framework

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module in a temp dir. Keys are
// slash-relative paths, values file contents.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		p := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const sandboxMod = "module sandbox\n\ngo 1.22\n"

// lineNumbered matches a file:line position inside an error string.
var lineNumbered = regexp.MustCompile(`\.go:\d+`)

func TestLoadTypeErrorIsLineNumbered(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": sandboxMod,
		"p/p.go": "package p\n\nfunc F() int {\n\treturn \"not an int\"\n}\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadDir(filepath.Join(dir, "p"))
	if err == nil {
		t.Fatal("loading a package with a type error succeeded")
	}
	if !lineNumbered.MatchString(err.Error()) {
		t.Errorf("type error is not line-numbered: %v", err)
	}
	if !strings.Contains(err.Error(), "type-checking") {
		t.Errorf("error does not identify the failing phase: %v", err)
	}
}

func TestLoadMissingImportIsReported(t *testing.T) {
	// A module-internal import path with no directory behind it — the shape
	// of a vendored dependency the hermetic loader cannot resolve.
	dir := writeModule(t, map[string]string{
		"go.mod": sandboxMod,
		"p/p.go": "package p\n\nimport \"sandbox/vendor/gone\"\n\nvar _ = gone.X\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadDir(filepath.Join(dir, "p"))
	if err == nil {
		t.Fatal("loading a package with an unresolvable import succeeded")
	}
	if !strings.Contains(err.Error(), "sandbox/vendor/gone") && !lineNumbered.MatchString(err.Error()) {
		t.Errorf("error names neither the import nor a position: %v", err)
	}
}

func TestLoadExternalImportIsReported(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": sandboxMod,
		"p/p.go": "package p\n\nimport \"github.com/no/such/dep\"\n\nvar _ = dep.X\n",
	})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadDir(filepath.Join(dir, "p"))
	if err == nil {
		t.Fatal("loading a package with an external dependency succeeded in the hermetic loader")
	}
}

func TestLoadEmptyDirErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": sandboxMod})
	if err := os.MkdirAll(filepath.Join(dir, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = l.LoadDir(filepath.Join(dir, "empty"))
	if err == nil {
		t.Fatal("loading an empty directory succeeded")
	}
	if !strings.Contains(err.Error(), "no buildable Go files") {
		t.Errorf("unexpected error for empty dir: %v", err)
	}
}

func TestLoadMissingDirErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": sandboxMod})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(filepath.Join(dir, "nowhere")); err == nil {
		t.Fatal("loading a nonexistent directory succeeded")
	}
}

func TestLoadOutsideModuleErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{"go.mod": sandboxMod})
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.LoadDir(os.TempDir()); err == nil {
		t.Fatal("loading a directory outside the module succeeded")
	}
}
