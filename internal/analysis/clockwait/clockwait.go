// Package clockwait defines an analyzer that flags holding a sync.Mutex or
// sync.RWMutex across a sim-clock wait or a channel operation.
//
// The simulation kernel (repro/internal/sim) interleaves exactly one
// goroutine of model code at a time, but telemetry accessors run on real
// OS threads and take real locks (e.g. switchd.tasksMu). A model goroutine
// that parks on the virtual clock — Proc.Sleep, Signal waits, Resource
// acquisition — while holding such a lock wedges every concurrent reader
// until the process is re-dispatched, and in the worst case deadlocks the
// run: the exact shape PR 1's failover work had to debug in switchd/hostd.
//
// The analyzer walks each function linearly, tracking the set of mutexes
// locked via x.Lock()/x.RLock() and released via x.Unlock()/x.RUnlock()
// (a deferred unlock keeps the lock held for the rest of the function).
// While at least one lock is held it reports:
//
//   - calls to parking methods of repro/internal/sim types — Proc.Sleep,
//     Proc.SleepUntil, Proc.Wait, Proc.WaitTimeout, Resource.Acquire,
//     Resource.Use, WaitGroup.Wait, Simulation.Run, Simulation.RunFor;
//   - calls passing a *sim.Proc argument to any function — handing the
//     process to a callee means the callee may park it (cpumodel.Exec,
//     window.SendBlocking, ... all follow this convention);
//   - channel sends and receives, which can block the scheduler thread.
//
// The walk is intra-procedural and branch-local: locks taken or released
// inside an if/for branch are tracked within that branch only. Use
// //askcheck:allow(clockwait) for the rare site that is provably safe.
package clockwait

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the clockwait analyzer.
var Analyzer = &framework.Analyzer{
	Name: "clockwait",
	Doc:  "flag sync.Mutex/RWMutex held across sim-clock waits or channel operations",
	Run:  run,
}

var parkingMethods = map[string]bool{
	"Sleep": true, "SleepUntil": true, "Wait": true, "WaitTimeout": true,
	"Acquire": true, "Use": true, "Run": true, "RunFor": true,
}

func run(pass *framework.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			w := &walker{pass: pass, held: map[string]bool{}}
			w.stmts(fd.Body.List)
		}
	}
	return nil, nil
}

type walker struct {
	pass *framework.Pass
	held map[string]bool // mutex expr string -> held
}

func (w *walker) clone() *walker {
	c := &walker{pass: w.pass, held: make(map[string]bool, len(w.held))}
	for k, v := range w.held {
		c.held[k] = v
	}
	return c
}

func (w *walker) anyHeld() (string, bool) {
	for k, v := range w.held {
		if v {
			return k, true
		}
	}
	return "", false
}

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if w.lockTransition(s.X) {
			return
		}
		w.checkExpr(s.X)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held until the function returns;
		// the deferred call itself runs after the body, so it is neither a
		// release nor a wait at this point in the walk.
		if w.mutexCall(s.Call) == "" {
			w.checkExpr(s.Call)
		}
	case *ast.SendStmt:
		w.report(s.Pos(), "channel send")
		w.checkExpr(s.Value)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.checkExpr(s.Cond)
		w.clone().stmts(s.Body.List)
		if s.Else != nil {
			w.clone().stmt(s.Else)
		}
	case *ast.ForStmt:
		c := w.clone()
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond)
		}
		c.stmts(s.Body.List)
		if s.Post != nil {
			c.stmt(s.Post)
		}
	case *ast.RangeStmt:
		c := w.clone()
		c.checkExpr(s.X)
		c.stmts(s.Body.List)
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag)
		}
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				w.clone().stmts(c.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				w.clone().stmts(c.Body)
			}
		}
	case *ast.SelectStmt:
		if _, held := w.anyHeld(); held {
			w.report(s.Pos(), "select over channels")
		}
	case *ast.GoStmt:
		// The goroutine body runs with its own (empty) lock context.
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sub := &walker{pass: w.pass, held: map[string]bool{}}
			sub.stmts(fl.Body.List)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.LabeledStmt:
		if ls, ok := s.(*ast.LabeledStmt); ok {
			w.stmt(ls.Stmt)
		}
	}
}

// lockTransition handles mu.Lock/Unlock statements; reports true when the
// expression was one.
func (w *walker) lockTransition(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch w.mutexCall(call) {
	case "lock":
		w.held[recvString(call)] = true
		return true
	case "unlock":
		w.held[recvString(call)] = false
		return true
	}
	return false
}

// mutexCall classifies a call as a mutex "lock", "unlock", or "".
func (w *walker) mutexCall(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	var kind string
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	default:
		return ""
	}
	tv, ok := w.pass.TypesInfo.Types[sel.X]
	if !ok {
		return ""
	}
	if isSyncMutex(tv.Type) {
		return kind
	}
	return ""
}

func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// checkExpr scans an expression tree for waits performed while locked.
func (w *walker) checkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				w.report(n.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			w.checkCall(n)
		case *ast.FuncLit:
			// A function literal's body executes later (or in another
			// context); analyze it with an empty lock set.
			sub := &walker{pass: w.pass, held: map[string]bool{}}
			sub.stmts(n.Body.List)
			return false
		}
		return true
	})
}

func (w *walker) checkCall(call *ast.CallExpr) {
	if _, held := w.anyHeld(); !held {
		return
	}
	// Parking method on a sim type?
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && parkingMethods[sel.Sel.Name] {
		if tv, ok := w.pass.TypesInfo.Types[sel.X]; ok && isSimType(tv.Type) {
			w.report(call.Pos(), "sim-clock wait "+exprName(sel))
			return
		}
	}
	// Passing a *sim.Proc hands the process to a callee that may park it.
	for _, arg := range call.Args {
		if tv, ok := w.pass.TypesInfo.Types[arg]; ok && isSimProc(tv.Type) {
			w.report(call.Pos(), "call that may park the sim process")
			return
		}
	}
}

func isSimType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "repro/internal/sim"
}

func isSimProc(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == "repro/internal/sim" && n.Obj().Name() == "Proc"
}

func (w *walker) report(pos token.Pos, what string) {
	mu, held := w.anyHeld()
	if !held {
		return
	}
	w.pass.Reportf(pos, "%s while holding mutex %s can wedge concurrent readers or deadlock the sim; release the lock first", what, mu)
}

func exprName(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	if s, ok := sel.X.(*ast.SelectorExpr); ok {
		return exprName(s) + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}

func recvString(call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "?"
	}
	switch x := sel.X.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprName(x)
	default:
		return "?"
	}
}
