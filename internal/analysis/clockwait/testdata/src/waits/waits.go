// Package waits exercises the clockwait analyzer: sim-clock waits and
// channel operations performed while holding a sync lock.
package waits

import (
	"sync"
	"time"

	"repro/internal/sim"
)

type daemon struct {
	mu  sync.Mutex
	rw  sync.RWMutex
	res *sim.Resource
	sig *sim.Signal
	ch  chan int
}

func (d *daemon) sleepUnderLock(p *sim.Proc) {
	d.mu.Lock()
	p.Sleep(time.Millisecond) // want `clockwait: sim-clock wait p\.Sleep while holding mutex d\.mu`
	d.mu.Unlock()
}

func (d *daemon) waitUnderDeferredUnlock(p *sim.Proc) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p.Wait(d.sig) // want `clockwait: sim-clock wait p\.Wait while holding mutex d\.mu`
}

func (d *daemon) acquireUnderRLock(p *sim.Proc) {
	d.rw.RLock()
	d.res.Acquire(p) // want `clockwait: sim-clock wait d\.res\.Acquire while holding mutex d\.rw`
	d.rw.RUnlock()
}

func (d *daemon) sendUnderLock() {
	d.mu.Lock()
	d.ch <- 1 // want `clockwait: channel send while holding mutex d\.mu`
	d.mu.Unlock()
}

func (d *daemon) recvUnderLock() int {
	d.mu.Lock()
	v := <-d.ch // want `clockwait: channel receive while holding mutex d\.mu`
	d.mu.Unlock()
	return v
}

func runOnCPU(p *sim.Proc, d time.Duration) { p.Sleep(d) }

func (d *daemon) handoffUnderLock(p *sim.Proc) {
	d.mu.Lock()
	runOnCPU(p, time.Millisecond) // want `clockwait: call that may park the sim process while holding mutex d\.mu`
	d.mu.Unlock()
}

func (d *daemon) unlockBeforeWait(p *sim.Proc) {
	d.mu.Lock()
	d.mu.Unlock()
	p.Sleep(time.Millisecond) // legal: lock released first
}

func (d *daemon) unlockInBranch(p *sim.Proc, cond bool) {
	d.mu.Lock()
	if cond {
		d.mu.Unlock()
		p.Sleep(time.Millisecond) // legal: this branch released the lock
		return
	}
	d.mu.Unlock()
}

func (d *daemon) shortCriticalSection() {
	d.mu.Lock()
	d.ch = make(chan int) // no wait: fine
	d.mu.Unlock()
}

func (d *daemon) suppressed(p *sim.Proc) {
	d.mu.Lock()
	//askcheck:allow(clockwait)
	p.Sleep(time.Millisecond)
	d.mu.Unlock()
}

func (d *daemon) goroutineHasOwnContext() {
	d.mu.Lock()
	go func() {
		<-d.ch // runs on another goroutine; not under this lock
	}()
	d.mu.Unlock()
}
