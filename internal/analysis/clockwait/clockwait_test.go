package clockwait_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/clockwait"
)

func TestClockWait(t *testing.T) {
	analysistest.Run(t, "testdata", []string{"waits"}, clockwait.Analyzer)
}
