// Package simdeterminism defines an analyzer that enforces the repository's
// determinism contract: every run of the discrete-event simulation with the
// same seed must be byte-identical. The chaos (PR 1) and telemetry (PR 2)
// subsystems both depend on this — golden-output tests, trace rings and
// failover reconciliation all compare seeded runs.
//
// Inside the deterministic packages (sim, netsim, switchd, hostd, window,
// chaos, experiments) the analyzer reports:
//
//   - calls to wall-clock time sources (time.Now, time.Since, time.Until)
//     and host-clock blocking (time.Sleep, time.After, time.Tick,
//     time.NewTimer, time.NewTicker, time.AfterFunc) — model code must use
//     the sim.Simulation virtual clock;
//   - calls to the global math/rand (and math/rand/v2) source (rand.Intn,
//     rand.Shuffle, ...) — model code must draw from the seeded
//     sim.Simulation.Rand() stream; constructing seeded sources via
//     rand.New/rand.NewSource remains legal;
//   - `range` over a map whose iteration order can escape: Go randomizes
//     map order per run, so any map-range that emits packets, appends to
//     unsorted output, or mutates non-local state in an order-dependent way
//     breaks reproducibility.
//
// A map-range is accepted without annotation when its body is provably
// order-insensitive under a conservative syntactic rule: every statement is
// a delete from a map, a commutative accumulation (x++, x += e, x |= e,
// x ^= e, x &= e, x *= e), an assignment to a variable declared inside the
// loop body, an append to a slice that is subsequently passed to a sort
// call in the same function (the collect-then-sort idiom), an assignment to
// a map indexed directly by the range key variable, or control flow
// (if/for/block/break/continue) over those. Everything else needs either a
// sort or an explicit //askcheck:allow(simdeterminism) annotation with a
// justification.
package simdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the simdeterminism analyzer.
var Analyzer = &framework.Analyzer{
	Name: "simdeterminism",
	Doc:  "forbid wall-clock, global rand, and order-leaking map iteration in deterministic packages",
	Run:  run,
}

// deterministicPkgs are the last path elements of packages that run on the
// simulation's virtual clock and must be reproducible.
var deterministicPkgs = map[string]bool{
	"sim": true, "netsim": true, "switchd": true, "hostd": true,
	"window": true, "chaos": true, "experiments": true, "tenancy": true,
	// The workload generators: traces regenerate byte-identically from a
	// seed, so wall-clock and global-rand reads are just as forbidden as in
	// the simulation packages.
	"workload": true, "scenario": true,
}

var bannedTime = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// bannedRand are math/rand package-level functions that draw from the
// global (unseeded or shared) source. Methods on *rand.Rand and the
// constructors rand.New/rand.NewSource are fine.
var bannedRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

func run(pass *framework.Pass) (any, error) {
	if !deterministicPkgs[lastElem(pass.Pkg.Path())] {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, n.Body)
				}
			}
			return true
		})
	}
	return nil, nil
}

func lastElem(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// checkCall flags wall-clock and global-rand calls.
func checkCall(pass *framework.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if bannedTime[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"time.%s reads the host clock; deterministic packages must use the sim virtual clock (sim.Simulation.Now/After)",
				sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if bannedRand[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the global source; deterministic packages must use the seeded sim.Simulation.Rand() stream",
				sel.Sel.Name)
		}
	}
}

// checkMapRanges walks one function body and flags order-leaking map
// iteration. It needs the whole body to look ahead for the
// collect-then-sort idiom.
func checkMapRanges(pass *framework.Pass, body *ast.BlockStmt) {
	sorted := sortedSlices(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if orderInsensitive(pass, rs, sorted) {
			return true
		}
		pass.Reportf(rs.Pos(),
			"iteration over map %s has nondeterministic order that can escape this loop; collect and sort the keys, or annotate //askcheck:allow(simdeterminism) with a justification",
			exprString(rs.X))
		return true
	})
}

// sortedSlices returns the set of objects passed as the first argument to a
// sort call anywhere in the function body.
func sortedSlices(pass *framework.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		p := pn.Imported().Path()
		if p != "sort" && p != "slices" {
			return true
		}
		if !strings.HasPrefix(sel.Sel.Name, "Sort") && !strings.HasPrefix(sel.Sel.Name, "Stable") &&
			sel.Sel.Name != "Slice" && sel.Sel.Name != "SliceStable" &&
			sel.Sel.Name != "Strings" && sel.Sel.Name != "Ints" && sel.Sel.Name != "Float64s" {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[arg]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// orderInsensitive reports whether the loop body satisfies the conservative
// order-insensitivity rule described in the package doc.
func orderInsensitive(pass *framework.Pass, rs *ast.RangeStmt, sorted map[types.Object]bool) bool {
	keyObj := rangeVarObj(pass, rs.Key)
	locals := make(map[types.Object]bool)
	if keyObj != nil {
		locals[keyObj] = true
	}
	if vo := rangeVarObj(pass, rs.Value); vo != nil {
		locals[vo] = true
	}
	return stmtsOK(pass, rs.Body.List, keyObj, locals, sorted)
}

func rangeVarObj(pass *framework.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func stmtsOK(pass *framework.Pass, stmts []ast.Stmt, keyObj types.Object,
	locals map[types.Object]bool, sorted map[types.Object]bool) bool {
	for _, s := range stmts {
		if !stmtOK(pass, s, keyObj, locals, sorted) {
			return false
		}
	}
	return true
}

func stmtOK(pass *framework.Pass, s ast.Stmt, keyObj types.Object,
	locals map[types.Object]bool, sorted map[types.Object]bool) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		// Only delete(m, k) is an acceptable statement-position call.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		return assignOK(pass, s, keyObj, locals, sorted)
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR && gd.Tok != token.CONST {
			return false
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, name := range vs.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						locals[obj] = true
					}
				}
			}
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil && !stmtOK(pass, s.Init, keyObj, locals, sorted) {
			return false
		}
		if !stmtsOK(pass, s.Body.List, keyObj, locals, sorted) {
			return false
		}
		if s.Else != nil {
			return stmtOK(pass, s.Else, keyObj, locals, sorted)
		}
		return true
	case *ast.BlockStmt:
		return stmtsOK(pass, s.List, keyObj, locals, sorted)
	case *ast.ForStmt:
		if s.Init != nil && !stmtOK(pass, s.Init, keyObj, locals, sorted) {
			return false
		}
		if s.Post != nil && !stmtOK(pass, s.Post, keyObj, locals, sorted) {
			return false
		}
		return stmtsOK(pass, s.Body.List, keyObj, locals, sorted)
	case *ast.RangeStmt:
		// A nested range over another map is checked on its own.
		if vo := rangeVarObj(pass, s.Key); vo != nil {
			locals[vo] = true
		}
		if vo := rangeVarObj(pass, s.Value); vo != nil {
			locals[vo] = true
		}
		return stmtsOK(pass, s.Body.List, keyObj, locals, sorted)
	case *ast.BranchStmt:
		return true
	case *ast.EmptyStmt:
		return true
	default:
		return false
	}
}

// assignOK accepts accumulating, local, collect-then-sort, and
// keyed-by-range-key assignments.
func assignOK(pass *framework.Pass, s *ast.AssignStmt, keyObj types.Object,
	locals map[types.Object]bool, sorted map[types.Object]bool) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN,
		token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	case token.DEFINE:
		for _, lhs := range s.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					locals[obj] = true
				}
			}
		}
		return true
	case token.ASSIGN:
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return false
		}
		switch lhs := s.Lhs[0].(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[lhs]
			if obj != nil && locals[obj] {
				return true
			}
			// x = append(x, ...) with x sorted later in the function.
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						if obj != nil && sorted[obj] {
							return true
						}
					}
				}
			}
			return false
		case *ast.IndexExpr:
			// m2[k] = v where k is the range key: each key is written once,
			// so the final map contents do not depend on iteration order.
			if id, ok := lhs.Index.(*ast.Ident); ok && keyObj != nil {
				if pass.TypesInfo.Uses[id] == keyObj {
					return true
				}
			}
			return false
		default:
			return false
		}
	default:
		return false
	}
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	default:
		return "expr"
	}
}
