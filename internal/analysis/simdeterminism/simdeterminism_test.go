package simdeterminism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/simdeterminism"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", []string{"switchd", "other"}, simdeterminism.Analyzer)
}
