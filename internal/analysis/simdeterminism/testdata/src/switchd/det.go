// Package det exercises the simdeterminism analyzer inside a
// deterministic-named package (the directory name "switchd" puts it in
// scope).
package det

import (
	"math/rand"
	"sort"
	"time"
)

var sink []int

func wallClock() {
	_ = time.Now()             // want `simdeterminism: time\.Now reads the host clock`
	time.Sleep(time.Second)    // want `simdeterminism: time\.Sleep reads the host clock`
	_ = time.Since(time.Time{}) // want `simdeterminism: time\.Since reads the host clock`
	_ = time.Duration(3)       // types and constants are fine
}

func globalRand() {
	_ = rand.Intn(7) // want `simdeterminism: rand\.Intn draws from the global source`
	rand.Shuffle(3, func(i, j int) {}) // want `simdeterminism: rand\.Shuffle draws from the global source`
}

func seededRand() {
	r := rand.New(rand.NewSource(42)) // constructing a seeded source is legal
	_ = r.Intn(7)                     // methods on *rand.Rand are legal
}

func emit(int) {}

func mapOrderEscapes(m map[int]int) {
	for k := range m { // want `simdeterminism: iteration over map m has nondeterministic order`
		emit(k)
	}
}

func mapAppendUnsorted(m map[int]int) {
	for k := range m { // want `simdeterminism: iteration over map m has nondeterministic order`
		sink = append(sink, k)
	}
}

func collectThenSort(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func deleteOnly(m map[int]int, floor int) {
	for k := range m {
		if k < floor {
			delete(m, k)
		}
	}
}

func accumulate(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func keyedCopy(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

func suppressed(m map[int]int) {
	// Provably order-insensitive for reasons the analyzer can't see.
	//askcheck:allow(simdeterminism)
	for k := range m {
		emit(k)
	}
}
