// Package other is outside the deterministic package set; the analyzer
// must stay silent here even for wall-clock reads and map iteration.
package other

import "time"

func wallClockAllowed() int64 {
	return time.Now().UnixNano()
}

func mapOrderAllowed(m map[int]int, emit func(int)) {
	for k := range m {
		emit(k)
	}
}
