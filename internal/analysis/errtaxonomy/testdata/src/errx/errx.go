// Package errx exercises the errtaxonomy matching rules: sentinel
// comparisons, concrete-type comparisons, assertions, and type switches.
package errx

import (
	"errors"
	"fmt"
	"io"
)

// OverloadError mimics the tenancy layer's structured rejection.
type OverloadError struct{ Need int }

func (e *OverloadError) Error() string { return fmt.Sprintf("overload: need %d", e.Need) }

// ErrClosed is a local sentinel.
var ErrClosed = errors.New("errx: closed")

func badSentinelEq(err error) bool {
	return err == io.EOF // want `errtaxonomy: comparison with sentinel error EOF breaks under wrapping; use errors.Is`
}

func badSentinelNeq(err error) bool {
	return err != ErrClosed // want `errtaxonomy: comparison with sentinel error ErrClosed breaks under wrapping; use errors.Is`
}

func badSentinelReversed(err error) bool {
	return io.EOF == err // want `errtaxonomy: comparison with sentinel error EOF breaks under wrapping; use errors.Is`
}

func badConcreteIdentity(err error, oe *OverloadError) bool {
	return err == oe // want `errtaxonomy: comparing error against concrete \*errx.OverloadError by identity`
}

func badAssert(err error) int {
	if oe, ok := err.(*OverloadError); ok { // want `errtaxonomy: type assertion from error to concrete \*errx.OverloadError; use errors.As`
		return oe.Need
	}
	return 0
}

func badTypeSwitch(err error) int {
	switch e := err.(type) {
	case *OverloadError: // want `errtaxonomy: type switch on error with concrete case \*errx.OverloadError; use errors.As`
		return e.Need
	case nil:
		return -1
	default:
		return 0
	}
}

func badBareTypeSwitch(err error) bool {
	switch err.(type) {
	case *OverloadError: // want `errtaxonomy: type switch on error with concrete case \*errx.OverloadError; use errors.As`
		return true
	}
	return false
}

func okIs(err error) bool { return errors.Is(err, io.EOF) || errors.Is(err, ErrClosed) }

func okAs(err error) int {
	var oe *OverloadError
	if errors.As(err, &oe) {
		return oe.Need
	}
	return 0
}

func okNilCheck(err error) bool { return err == nil || nil != err }

// okInterfaceAssert: asserting to an interface is capability probing, not
// taxonomy matching.
func okInterfaceAssert(err error) bool {
	if t, ok := err.(interface{ Timeout() bool }); ok {
		return t.Timeout()
	}
	return false
}

// okNonErrorSwitch: type switches on non-error interfaces are out of
// scope.
func okNonErrorSwitch(v any) int {
	switch v := v.(type) {
	case *OverloadError:
		return v.Need
	case int:
		return v
	}
	return 0
}

func okAllowed(err error) bool {
	//askcheck:allow(errtaxonomy)
	return err == io.EOF
}
