// Package ask mimics the repository's public entry package: the directory
// name puts the exported-API error-documentation rule in scope.
package ask

import "errors"

// ErrBusy is returned while a previous task is still draining.
var ErrBusy = errors.New("ask: busy")

// Documented starts a task. It returns ErrBusy while a previous task is
// still running.
func Documented() error { return nil }

// Undocumented starts a task quietly.
func Undocumented() error { return nil } // want `errtaxonomy: exported error-returning API Undocumented does not mention its error behaviour`

func NoDoc() error { return nil } // want `errtaxonomy: exported error-returning API NoDoc has no doc comment`

// helper is unexported: exempt.
func helper() error { return nil }

// Pure returns no error: exempt.
func Pure() int { return 0 }

// Thing is an exported handle.
type Thing struct{}

// Close shuts the thing down.
func (t *Thing) Close() error { return nil } // want `errtaxonomy: exported error-returning API Close does not mention its error behaviour`

// Open readies the thing; it reports ErrBusy when already open.
func (t *Thing) Open() error { return nil }

// thing is unexported, so its exported methods are not public API.
type thing struct{}

// Close shuts the thing down.
func (t *thing) Close() error { return nil }
