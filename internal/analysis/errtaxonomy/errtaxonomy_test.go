package errtaxonomy_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/errtaxonomy"
)

func TestErrTaxonomy(t *testing.T) {
	analysistest.Run(t, "testdata", []string{"errx", "ask"}, errtaxonomy.Analyzer)
}
