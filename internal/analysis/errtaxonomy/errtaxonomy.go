// Package errtaxonomy defines the analyzer enforcing the typed-error
// discipline the tenancy layer introduced.
//
// The repository's error taxonomy has two kinds of typed errors: sentinel
// values (wire.ErrChecksum, wire.ErrTruncated, stdlib io.EOF) and
// structured types carrying context (*tenancy.OverloadError). Both survive
// wrapping with %w only when matched through the errors package, so the
// analyzer flags the patterns that break under wrapping:
//
//   - `err == ErrSentinel` / `err != ErrSentinel` — a direct comparison
//     with a package-level error value; use errors.Is.
//   - `err == e` where e has a concrete type implementing error — pointer
//     identity is not error identity; use errors.Is or errors.As.
//   - `err.(*SomeError)` — a type assertion from error to a concrete
//     error type; use errors.As.
//   - `switch err.(type)` cases naming concrete error types — same defect
//     in switch form; use errors.As per type.
//
// Comparisons with nil, assertions to interface types, and errors.Is/As
// themselves are all fine.
//
// Additionally, in the public entry package ask/ every EXPORTED
// error-returning function or method (on an exported receiver) must
// document its error behaviour: the doc comment must mention the word
// "error" or name a typed error (an Err-prefixed identifier or *...Error
// type). The operational check is lexical by design — it cannot prove the
// doc is accurate, only that the API author stated an error contract at
// all, which is the review hook the taxonomy needs.
package errtaxonomy

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the errtaxonomy analyzer.
var Analyzer = &framework.Analyzer{
	Name: "errtaxonomy",
	Doc:  "enforce errors.Is/errors.As matching for typed errors and error docs on the public API",
	Run:  run,
}

var errorType = types.Universe.Lookup("error").Type()
var errorIface = errorType.Underlying().(*types.Interface)

// docRE is the lexical error-contract check for ask/ doc comments.
var docRE = regexp.MustCompile(`(?i:\berrors?\b)|\bErr[A-Z]`)

func run(pass *framework.Pass) (any, error) {
	checkDocs := lastElem(pass.Pkg.Path()) == "ask"
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if checkDocs {
				checkDoc(pass, fd)
			}
			if fd.Body != nil {
				checkBody(pass, fd)
			}
		}
	}
	return nil, nil
}

func checkBody(pass *framework.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return true
			}
			checkComparison(pass, n)
		case *ast.TypeAssertExpr:
			if n.Type == nil { // the guard of a type switch, handled below
				return true
			}
			if !isErrorExpr(info, n.X) {
				return true
			}
			if t := concreteErrorType(info.TypeOf(n.Type)); t != "" {
				pass.Reportf(n.Pos(),
					"type assertion from error to concrete %s; use errors.As so wrapped errors still match", t)
			}
		case *ast.TypeSwitchStmt:
			checkTypeSwitch(pass, n)
		}
		return true
	})
}

func checkComparison(pass *framework.Pass, n *ast.BinaryExpr) {
	info := pass.TypesInfo
	l, r := n.X, n.Y
	if isNil(info, l) || isNil(info, r) {
		return
	}
	if (sentinelOf(info, l) != nil && isErrorExpr(info, r)) ||
		(sentinelOf(info, r) != nil && isErrorExpr(info, l)) {
		s := sentinelOf(info, l)
		if s == nil {
			s = sentinelOf(info, r)
		}
		pass.Reportf(n.Pos(),
			"comparison with sentinel error %s breaks under wrapping; use errors.Is", s.Name())
		return
	}
	if isErrorExpr(info, l) {
		if t := concreteErrorType(info.TypeOf(r)); t != "" {
			pass.Reportf(n.Pos(),
				"comparing error against concrete %s by identity; use errors.Is or errors.As", t)
		}
		return
	}
	if isErrorExpr(info, r) {
		if t := concreteErrorType(info.TypeOf(l)); t != "" {
			pass.Reportf(n.Pos(),
				"comparing error against concrete %s by identity; use errors.Is or errors.As", t)
		}
	}
}

func checkTypeSwitch(pass *framework.Pass, n *ast.TypeSwitchStmt) {
	var x ast.Expr
	switch assign := n.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := assign.X.(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	case *ast.AssignStmt:
		if len(assign.Rhs) == 1 {
			if ta, ok := assign.Rhs[0].(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	}
	if x == nil || !isErrorExpr(pass.TypesInfo, x) {
		return
	}
	for _, stmt := range n.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, te := range cc.List {
			if t := concreteErrorType(pass.TypesInfo.TypeOf(te)); t != "" {
				pass.Reportf(te.Pos(),
					"type switch on error with concrete case %s; use errors.As so wrapped errors still match", t)
			}
		}
	}
}

func checkDoc(pass *framework.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || !returnsError(pass.TypesInfo, fd) {
		return
	}
	if fd.Recv != nil && !exportedReceiver(fd) {
		return
	}
	if fd.Doc != nil && docRE.MatchString(fd.Doc.Text()) {
		return
	}
	what := "has no doc comment"
	if fd.Doc != nil {
		what = "does not mention its error behaviour"
	}
	pass.Reportf(fd.Pos(),
		"exported error-returning API %s %s; document the typed errors it can return (errors.Is/errors.As targets)",
		fd.Name.Name, what)
}

// isErrorExpr reports whether e's static type is exactly the error
// interface.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && types.Identical(t, errorType)
}

// sentinelOf returns the package-level error-typed variable e refers to
// (io.EOF, wire.ErrChecksum, ...), or nil.
func sentinelOf(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !types.Identical(v.Type(), errorType) {
		return nil
	}
	return v
}

// concreteErrorType returns the display name of t when t is a concrete
// (non-interface) type implementing error, else "".
func concreteErrorType(t types.Type) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if types.IsInterface(t) {
		return ""
	}
	if !types.Implements(t, errorIface) {
		return ""
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func returnsError(info *types.Info, fd *ast.FuncDecl) bool {
	fn, ok := info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if types.Identical(res.At(i).Type(), errorType) {
			return true
		}
	}
	return false
}

func exportedReceiver(fd *ast.FuncDecl) bool {
	if len(fd.Recv.List) != 1 {
		return false
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
