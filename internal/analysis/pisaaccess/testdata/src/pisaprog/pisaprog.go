// Package pisaprog exercises the pisaaccess analyzer: PISA single-access
// and stage-order violations plus the patterns the analyzer must accept.
package pisaprog

import "repro/internal/pisa"

type prog struct {
	pipe *pisa.Pipeline
	a    *pisa.RegisterArray // stage-0 state (askcheck:stage=0)
	b    *pisa.RegisterArray // stage-1 state (askcheck:stage=1)
	c    *pisa.RegisterArray // stage-1 sibling (askcheck:stage=1)
	aas  []*pisa.RegisterArray // vectorized arrays from stage 2 (askcheck:stage=2+)
	free *pisa.RegisterArray   // no stage annotation
}

func keep(cur uint64) (uint64, uint64) { return cur, cur }

// doubleStraightLine: second RMW of the same array in one pass.
func (p *prog) doubleStraightLine() {
	ps := p.pipe.Begin()
	p.a.RMW(ps, 0, keep)
	p.a.RMW(ps, 1, keep) // want `pisaaccess: register array p\.a may be RMW'd twice in one pass`
}

// doubleAcrossBranch: an access under a condition followed by an
// unconditional access may double-access at runtime.
func (p *prog) doubleAcrossBranch(cond bool) {
	ps := p.pipe.Begin()
	if cond {
		p.b.RMW(ps, 0, keep)
	}
	p.b.RMW(ps, 0, keep) // want `pisaaccess: register array p\.b may be RMW'd twice in one pass`
}

// branchThenReturn: the conditional access returns, so the later access is
// on a disjoint path — legal.
func (p *prog) branchThenReturn(cond bool) {
	ps := p.pipe.Begin()
	if cond {
		p.b.RMW(ps, 0, keep)
		return
	}
	p.b.RMW(ps, 0, keep)
}

// eitherBranch: if/else both access the array once — legal (one per path).
func (p *prog) eitherBranch(cond bool) {
	ps := p.pipe.Begin()
	if cond {
		p.b.RMW(ps, 0, keep)
	} else {
		p.b.RMW(ps, 1, keep)
	}
}

// loopInvariant: the pass begins outside the loop, so the second iteration
// re-accesses the same array in the same pass.
func (p *prog) loopInvariant() {
	ps := p.pipe.Begin()
	for i := 0; i < 4; i++ {
		p.a.RMW(ps, i, keep) // want `pisaaccess: register array p\.a is RMW'd inside a loop but its pass began outside`
	}
}

// loopFreshPass: a new pass per iteration is the legal way to loop.
func (p *prog) loopFreshPass() {
	for i := 0; i < 4; i++ {
		ps := p.pipe.Begin()
		p.a.RMW(ps, i, keep)
	}
}

// loopVariedArray: the array expression varies with the loop variable
// (vectorized access), so each iteration touches a different array.
func (p *prog) loopVariedArray() {
	ps := p.pipe.Begin()
	for i := 0; i < len(p.aas); i++ {
		p.aas[i].RMW(ps, 0, keep)
	}
}

// stageBackwards: visiting stage 0 after stage 1 reverses the pipeline.
func (p *prog) stageBackwards() {
	ps := p.pipe.Begin()
	p.b.RMW(ps, 0, keep)
	p.a.RMW(ps, 0, keep) // want `pisaaccess: RMW on p\.a visits stage 0 after an access in stage 1`
}

// stageForward: non-decreasing stages, including two arrays sharing stage
// 1 and an open-layout array afterwards — all legal.
func (p *prog) stageForward(i int) {
	ps := p.pipe.Begin()
	p.a.RMW(ps, 0, keep)
	p.b.RMW(ps, 0, keep)
	p.c.RMW(ps, 0, keep)
	p.aas[i].RMW(ps, 0, keep)
}

// stageAfterOpen: an exact-stage access below an open layout's lower bound
// is flagged.
func (p *prog) stageAfterOpen(i int) {
	ps := p.pipe.Begin()
	p.aas[i].RMW(ps, 0, keep)
	p.b.RMW(ps, 0, keep) // want `pisaaccess: RMW on p\.b visits stage 1 after an access in stage 2`
}

// helperPass: a helper receiving the pass is analyzed with an
// unconstrained pass; its single access is legal.
func (p *prog) helperPass(ps *pisa.Pass, ra *pisa.RegisterArray) uint64 {
	return ra.RMW(ps, 0, keep)
}

// suppressed: the escape hatch silences a diagnostic on the next line.
func (p *prog) suppressed() {
	ps := p.pipe.Begin()
	p.a.RMW(ps, 0, keep)
	//askcheck:allow(pisaaccess)
	p.a.RMW(ps, 1, keep)
}

// twoPasses: distinct passes may access the same array.
func (p *prog) twoPasses() {
	ps := p.pipe.Begin()
	p.a.RMW(ps, 0, keep)
	ps2 := p.pipe.Begin()
	p.a.RMW(ps2, 0, keep)
}
