// Package agreement holds deliberately-violating PISA programs used by
// the agreement test: the same construct must be rejected statically by
// the pisaaccess analyzer (the `// want` comments below) and dynamically
// by internal/pisa's runtime panics (agreement_test.go executes these
// functions and expects them to panic).
package agreement

import "repro/internal/pisa"

type program struct {
	pipe *pisa.Pipeline
	low  *pisa.RegisterArray // early-stage state (askcheck:stage=0)
	high *pisa.RegisterArray // later-stage state (askcheck:stage=1)
}

func build() *program {
	pipe := pisa.NewPipeline(pisa.Config{Stages: 2, MaxArraysPerStage: 4, SRAMPerStageBytes: 1 << 20})
	return &program{
		pipe: pipe,
		low:  pipe.MustAddArray(0, "low", 8, 32),
		high: pipe.MustAddArray(1, "high", 8, 32),
	}
}

func keep(cur uint64) (uint64, uint64) { return cur, cur }

// DoubleAccess reads-modifies-writes the same register array twice in one
// packet pass: the canonical §2.2.1/§3.2 single-access violation.
func DoubleAccess() {
	p := build()
	ps := p.pipe.Begin()
	p.low.RMW(ps, 0, keep)
	p.low.RMW(ps, 1, keep) // want `pisaaccess: register array p\.low may be RMW'd twice in one pass`
}

// StageBackwards visits stage 0 after stage 1 in the same pass: the
// stage-ordering violation.
func StageBackwards() {
	p := build()
	ps := p.pipe.Begin()
	p.high.RMW(ps, 0, keep)
	p.low.RMW(ps, 0, keep) // want `pisaaccess: RMW on p\.low visits stage 0 after an access in stage 1`
}
