// Package pisaaccess defines an analyzer that turns internal/pisa's
// runtime panics into compile-time diagnostics.
//
// The PISA model (§2.2.1, §3.2 of the paper) restricts a packet pass to
// one atomic read-modify-write per register array and to visiting pipeline
// stages in non-decreasing order. internal/pisa enforces both with panics
// in RegisterArray.RMW — the wall a P4 programmer hits at compile time —
// but a vectorization bug in the switch program only trips that panic when
// a packet trace happens to exercise the offending path. This analyzer
// finds the same violations statically.
//
// For every function in a package that uses pisa, the analyzer tracks each
// *pisa.Pass value (function parameters and `ps := pipe.Begin()` results)
// through a branch-merging linear walk of the body and reports:
//
//   - a second RMW of the same register array expression in the same pass
//     (if/else branches are unioned, so an access on one branch followed
//     by an unconditional access is reported as "may be accessed twice";
//     branches that return or panic are excluded from the merge);
//   - an RMW inside a loop on a loop-invariant array expression when the
//     pass was begun outside the loop — the second iteration is a second
//     access;
//   - an RMW that visits an earlier stage than a previous access in the
//     same pass. Stages are declared by annotating register-array struct
//     fields with a comment containing `askcheck:stage=N` (exact stage)
//     or `askcheck:stage=N+` (a slice of arrays laid out from stage N
//     upward, e.g. the vectorized aggregator arrays).
//
// The walk is intra-procedural: a helper that receives a *pisa.Pass is
// analyzed on its own with an unconstrained pass. Array identity is
// syntactic (the receiver expression's text), which is exact for the
// field-per-array style used by internal/switchd. Escape hatch:
// //askcheck:allow(pisaaccess).
package pisaaccess

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"

	"repro/internal/analysis/framework"
)

// Analyzer is the pisaaccess analyzer.
var Analyzer = &framework.Analyzer{
	Name: "pisaaccess",
	Doc:  "flag PISA register-array accesses that would panic at runtime: double RMW in one pass or out-of-order stages",
	Run:  run,
}

const pisaPath = "repro/internal/pisa"

var stageRE = regexp.MustCompile(`askcheck:stage=(\d+)(\+?)`)

type stageInfo struct {
	n    int
	open bool // stage >= n (array slice laid out from n upward)
}

func run(pass *framework.Pass) (any, error) {
	if pass.Pkg.Path() == pisaPath {
		return nil, nil
	}
	stages := collectStageAnnotations(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a := &analysis{pass: pass, stages: stages}
			st := newFnState()
			a.seedParams(fd, st)
			a.walk(fd.Body.List, st)
		}
	}
	return nil, nil
}

// collectStageAnnotations maps register-array struct fields to the stage
// declared in their `askcheck:stage=` comment.
func collectStageAnnotations(pass *framework.Pass) map[types.Object]stageInfo {
	out := make(map[types.Object]stageInfo)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stct, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range stct.Fields.List {
				info, ok := fieldStage(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = info
					}
				}
			}
			return true
		})
	}
	return out
}

func fieldStage(field *ast.Field) (stageInfo, bool) {
	var text string
	if field.Doc != nil {
		text += field.Doc.Text()
	}
	if field.Comment != nil {
		text += field.Comment.Text()
	}
	m := stageRE.FindStringSubmatch(text)
	if m == nil {
		return stageInfo{}, false
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		return stageInfo{}, false
	}
	return stageInfo{n: n, open: m[2] == "+"}, true
}

// passState tracks one *pisa.Pass value along the current path.
type passState struct {
	accessed  map[string]token.Pos // array expr -> first RMW position
	cur       int                  // highest exact stage visited (-1: none)
	loopDepth int                  // loop nesting where the pass began
}

func newPassState(loopDepth int) *passState {
	return &passState{accessed: make(map[string]token.Pos), cur: -1, loopDepth: loopDepth}
}

func (p *passState) clone() *passState {
	c := &passState{accessed: make(map[string]token.Pos, len(p.accessed)), cur: p.cur, loopDepth: p.loopDepth}
	for k, v := range p.accessed {
		c.accessed[k] = v
	}
	return c
}

type fnState struct {
	passes map[types.Object]*passState
}

func newFnState() *fnState { return &fnState{passes: make(map[types.Object]*passState)} }

func (s *fnState) clone() *fnState {
	c := newFnState()
	for k, v := range s.passes {
		c.passes[k] = v.clone()
	}
	return c
}

// merge unions the branch states back into s (branch may have created
// passes or recorded accesses).
func (s *fnState) merge(branches ...*fnState) {
	for _, b := range branches {
		for obj, bp := range b.passes {
			sp, ok := s.passes[obj]
			if !ok {
				s.passes[obj] = bp
				continue
			}
			for k, pos := range bp.accessed {
				if _, dup := sp.accessed[k]; !dup {
					sp.accessed[k] = pos
				}
			}
			if bp.cur > sp.cur {
				sp.cur = bp.cur
			}
		}
	}
}

type analysis struct {
	pass      *framework.Pass
	stages    map[types.Object]stageInfo
	loopVars  []map[types.Object]bool
	loopDepth int
}

// seedParams registers parameters of type *pisa.Pass.
func (a *analysis) seedParams(fd *ast.FuncDecl, st *fnState) {
	if fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := a.pass.TypesInfo.Defs[name]
			if obj != nil && isPisaPass(obj.Type()) {
				st.passes[obj] = newPassState(0)
			}
		}
	}
}

func isPisaPass(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == pisaPath && n.Obj().Name() == "Pass"
}

// walk processes statements in order, reporting violations; it returns
// true when the statement list definitely terminates (return/panic).
func (a *analysis) walk(stmts []ast.Stmt, st *fnState) bool {
	for _, s := range stmts {
		if a.stmt(s, st) {
			return true
		}
	}
	return false
}

func (a *analysis) stmt(s ast.Stmt, st *fnState) (terminated bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		// ps := pipe.Begin() starts a fresh pass for the assigned variable.
		for i, rhs := range s.Rhs {
			a.scanExpr(rhs, st)
			if isBeginCall(a.pass, rhs) && i < len(s.Lhs) {
				if id, ok := s.Lhs[i].(*ast.Ident); ok {
					obj := a.pass.TypesInfo.Defs[id]
					if obj == nil {
						obj = a.pass.TypesInfo.Uses[id]
					}
					if obj != nil {
						st.passes[obj] = newPassState(a.loopDepth)
					}
				}
			}
		}
		return false
	case *ast.ExprStmt:
		a.scanExpr(s.X, st)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				if _, b := a.pass.TypesInfo.Uses[id].(*types.Builtin); b {
					return true
				}
			}
		}
		return false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			a.scanExpr(e, st)
		}
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto end this path locally
	case *ast.IfStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		a.scanExpr(s.Cond, st)
		thenSt := st.clone()
		tTerm := a.walk(s.Body.List, thenSt)
		var branches []*fnState
		if !tTerm {
			branches = append(branches, thenSt)
		}
		eTerm := false
		if s.Else != nil {
			elseSt := st.clone()
			eTerm = a.stmt(s.Else, elseSt)
			if !eTerm {
				branches = append(branches, elseSt)
			}
		}
		st.merge(branches...)
		return s.Else != nil && tTerm && eTerm
	case *ast.BlockStmt:
		return a.walk(s.List, st)
	case *ast.ForStmt:
		a.pushLoop(loopVarsOf(a.pass, s.Init))
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		if s.Cond != nil {
			a.scanExpr(s.Cond, st)
		}
		body := st.clone()
		a.walk(s.Body.List, body)
		if s.Post != nil {
			a.stmt(s.Post, body)
		}
		a.popLoop()
		st.merge(body)
		return false
	case *ast.RangeStmt:
		vars := make(map[types.Object]bool)
		for _, e := range []ast.Expr{s.Key, s.Value} {
			if id, ok := e.(*ast.Ident); ok {
				if obj := a.pass.TypesInfo.Defs[id]; obj != nil {
					vars[obj] = true
				} else if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
					vars[obj] = true
				}
			}
		}
		a.scanExpr(s.X, st)
		a.pushLoop(vars)
		body := st.clone()
		a.walk(s.Body.List, body)
		a.popLoop()
		st.merge(body)
		return false
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.stmt(s.Init, st)
		}
		if s.Tag != nil {
			a.scanExpr(s.Tag, st)
		}
		var branches []*fnState
		for _, cc := range s.Body.List {
			c, ok := cc.(*ast.CaseClause)
			if !ok {
				continue
			}
			caseSt := st.clone()
			if !a.walk(c.Body, caseSt) {
				branches = append(branches, caseSt)
			}
		}
		st.merge(branches...)
		return false
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if c, ok := cc.(*ast.CaseClause); ok {
				caseSt := st.clone()
				a.walk(c.Body, caseSt)
				st.merge(caseSt)
			}
		}
		return false
	case *ast.DeferStmt:
		a.scanExpr(s.Call, st)
		return false
	case *ast.GoStmt:
		a.scanExpr(s.Call, st)
		return false
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.EmptyStmt:
		if inc, ok := s.(*ast.IncDecStmt); ok {
			a.scanExpr(inc.X, st)
		}
		return false
	case *ast.LabeledStmt:
		return a.stmt(s.Stmt, st)
	case *ast.SendStmt:
		a.scanExpr(s.Chan, st)
		a.scanExpr(s.Value, st)
		return false
	default:
		return false
	}
}

func (a *analysis) pushLoop(vars map[types.Object]bool) {
	a.loopVars = append(a.loopVars, vars)
	a.loopDepth++
}

func (a *analysis) popLoop() {
	a.loopVars = a.loopVars[:len(a.loopVars)-1]
	a.loopDepth--
}

func loopVarsOf(pass *framework.Pass, init ast.Stmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	as, ok := init.(*ast.AssignStmt)
	if !ok {
		return vars
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// scanExpr finds RMW calls inside an expression tree (conditions, RHS
// values, nested calls) and applies the PISA checks.
func (a *analysis) scanExpr(e ast.Expr, st *fnState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		a.checkRMW(call, st)
		return true
	})
}

// checkRMW applies the single-access and stage-order rules to one
// ra.RMW(ps, ...) call.
func (a *analysis) checkRMW(call *ast.CallExpr, st *fnState) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "RMW" || len(call.Args) < 2 {
		return
	}
	tv, ok := a.pass.TypesInfo.Types[sel.X]
	if !ok || !isPisaArray(tv.Type) {
		return
	}
	// Resolve the pass argument.
	var ps *passState
	if id, ok := call.Args[0].(*ast.Ident); ok {
		if obj := a.pass.TypesInfo.Uses[id]; obj != nil {
			ps = st.passes[obj]
			if ps == nil {
				ps = newPassState(a.loopDepth)
				st.passes[obj] = ps
			}
		}
	}
	if ps == nil {
		return // pass expression too dynamic to track
	}
	key := exprString(sel.X)
	varies := a.referencesLoopVar(sel.X)

	// Single access per pass.
	if !varies {
		if first, dup := ps.accessed[key]; dup {
			fp := a.pass.Fset.Position(first)
			a.pass.Reportf(call.Pos(),
				"register array %s may be RMW'd twice in one pass (first access at %s:%d); pisa.RegisterArray.RMW panics on the second access",
				key, shortName(fp.Filename), fp.Line)
		} else if ps.loopDepth < a.loopDepth {
			a.pass.Reportf(call.Pos(),
				"register array %s is RMW'd inside a loop but its pass began outside the loop; the second iteration is a second access in the same pass",
				key)
			ps.accessed[key] = call.Pos()
		} else {
			ps.accessed[key] = call.Pos()
		}
	}

	// Stage ordering.
	if info, ok := a.stageOf(sel.X); ok {
		if !info.open {
			if ps.cur >= 0 && info.n < ps.cur {
				a.pass.Reportf(call.Pos(),
					"RMW on %s visits stage %d after an access in stage %d; a PISA pass must traverse stages in non-decreasing order",
					key, info.n, ps.cur)
			}
			if info.n > ps.cur {
				ps.cur = info.n
			}
		} else if info.n > ps.cur {
			// Open layout: the array lives at stage >= n; only the lower
			// bound is known statically.
			ps.cur = info.n
		}
	}
}

// stageOf resolves the receiver expression to an annotated struct field.
func (a *analysis) stageOf(recv ast.Expr) (stageInfo, bool) {
	switch r := recv.(type) {
	case *ast.SelectorExpr:
		if s, ok := a.pass.TypesInfo.Selections[r]; ok {
			if info, ok := a.stages[s.Obj()]; ok {
				return info, true
			}
		}
		if obj := a.pass.TypesInfo.Uses[r.Sel]; obj != nil {
			if info, ok := a.stages[obj]; ok {
				return info, true
			}
		}
	case *ast.IndexExpr:
		return a.stageOf(r.X)
	case *ast.ParenExpr:
		return a.stageOf(r.X)
	}
	return stageInfo{}, false
}

func isPisaArray(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	n, ok := p.Elem().(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	return pkg != nil && pkg.Path() == pisaPath && n.Obj().Name() == "RegisterArray"
}

func isBeginCall(pass *framework.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Begin" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call]
	return ok && isPisaPass(tv.Type)
}

// referencesLoopVar reports whether the expression mentions any variable
// bound by an enclosing loop (so its identity varies per iteration).
func (a *analysis) referencesLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		for _, vars := range a.loopVars {
			if vars[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.BasicLit:
		return e.Value
	case *ast.BinaryExpr:
		return exprString(e.X) + e.Op.String() + exprString(e.Y)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	default:
		return "expr"
	}
}

func shortName(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}
