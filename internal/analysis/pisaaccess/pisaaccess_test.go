package pisaaccess_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pisaaccess"
)

func TestPisaAccess(t *testing.T) {
	analysistest.Run(t, "testdata", []string{"pisaprog"}, pisaaccess.Analyzer)
}
