package pisaaccess_test

// The agreement test (ISSUE 3 satellite): the pisaaccess analyzer and the
// internal/pisa runtime must reject the *same construct* — one statically,
// one with a panic. The construct lives in testdata/src/agreement; this
// file imports it and executes it (the go tool skips testdata directories
// only during pattern expansion, explicit imports resolve normally), while
// TestAgreementAnalyzer runs the analyzer over the very same source.

import (
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pisaaccess"
	agreement "repro/internal/analysis/pisaaccess/testdata/src/agreement"
)

// TestAgreementRuntimePanic: executing the construct trips pisa's
// single-access panic.
func TestAgreementRuntimePanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("DoubleAccess did not panic; the pisa runtime no longer enforces single access per pass")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "accessed twice in one pass") {
			t.Fatalf("unexpected panic %v; want the pisa double-access panic", r)
		}
	}()
	agreement.DoubleAccess()
}

// TestAgreementStageRuntimePanic: the out-of-order construct trips pisa's
// stage-order panic.
func TestAgreementStageRuntimePanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("StageBackwards did not panic; the pisa runtime no longer enforces stage ordering")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "moved backwards") {
			t.Fatalf("unexpected panic %v; want the pisa stage-order panic", r)
		}
	}()
	agreement.StageBackwards()
}

// TestAgreementAnalyzer: the analyzer flags the same source file at the
// same constructs (the `// want` comments sit on the offending lines).
func TestAgreementAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", []string{"agreement"}, pisaaccess.Analyzer)
}
