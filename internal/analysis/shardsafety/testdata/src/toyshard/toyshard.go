// Package toyshard exercises the shardsafety analyzer: a miniature
// sharded event loop with one annotated state root, a shared grid, a
// declared mailbox, and handlers that reach across the partition in every
// way the analyzer must catch.
package toyshard

// Shard is one rack's state root.
//
//askcheck:shard
type Shard struct {
	ID    int
	Count int
	peers []*Shard
	inbox chan int
}

// grid is the coordinator's shard table.
var grid []*Shard

// totalEvents is rack-global mutable state no shard handler may touch.
var totalEvents int

// topo is immutable after setup, so shard handlers may read it.
//
//askcheck:shared
var topo = struct{ Racks int }{Racks: 2}

// Post is the declared cross-shard hand-off point: its body may index the
// grid, and the shard context stops here.
//
//askcheck:mailbox
func Post(rack, v int) {
	grid[rack%topo.Racks].inbox <- v
}

// HandleEvent is the shard's event handler.
func (s *Shard) HandleEvent(v int) {
	s.Count += v   // own state: fine
	_ = topo.Racks // //askcheck:shared var: fine
	totalEvents++  // want `shardsafety: shard context of Shard touches package-level var totalEvents`
	Post(s.ID+1, v)
}

// Steal reaches into a neighbour's state through the shared grid.
func (s *Shard) Steal(v int) {
	peers := grid                       // want `shardsafety: shard context of Shard touches package-level var grid`
	other := peers[(s.ID+1)%topo.Racks] // want `shardsafety: shard context of Shard obtains Shard shard state by indexing a shared container`
	other.Count += v
}

// StealLocal shows the container need not be global: holding peer roots
// inside the shard is flagged at the point they are fished out.
func (s *Shard) StealLocal(v int) {
	s.peers[0].Count += v // want `shardsafety: shard context of Shard obtains Shard shard state by indexing a shared container`
}

// Adopt receives a foreign root over a channel.
func (s *Shard) Adopt(ch chan *Shard) {
	n := <-ch // want `shardsafety: shard context of Shard receives Shard shard state over a channel`
	n.Count++
}

// Sweep enumerates every shard from inside one shard's context.
func (s *Shard) Sweep() {
	for _, p := range s.peers { // want `shardsafety: shard context of Shard ranges over a container of Shard shard roots`
		p.Count = 0
	}
}

// HandleTick launders the access through a helper: bump is not a mailbox,
// so it is inside the shard context and its accesses are still flagged.
func (s *Shard) HandleTick() {
	bump(s.ID + 1)
}

func bump(r int) {
	grid[r%topo.Racks].Count++ // want `shardsafety: shard context of Shard touches package-level var grid` `shardsafety: shard context of Shard obtains Shard shard state by indexing a shared container`
}

// Reset is coordinator code: it is not reachable from any shard method,
// so enumerating the grid is fine here.
func Reset() {
	totalEvents = 0
	for _, s := range grid {
		s.Count = 0
	}
}

// Quiet demonstrates the suppression escape hatch on an intentional read.
func (s *Shard) Quiet() int {
	//askcheck:allow(shardsafety)
	return totalEvents
}
