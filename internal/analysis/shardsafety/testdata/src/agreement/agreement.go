// Package agreement is the shardsafety agreement corpus (ISSUE 8, in the
// style of pisaaccess's ISSUE-3 agreement test): the SAME construct — an
// event handler mutating its neighbour shard through the shared grid —
// must be flagged statically by the analyzer (the want comment below) and
// dynamically by the race detector when two shards' handlers run
// concurrently (TestAgreementRace runs Race under `go run -race`).
package agreement

import "sync"

// Shard is the toy per-rack state root.
//
//askcheck:shard
type Shard struct {
	id    int
	Count int
}

// shards is the shared grid both handlers reach into.
var shards [2]*Shard

func init() {
	shards[0], shards[1] = &Shard{id: 0}, &Shard{id: 1}
}

// HandleEvent bumps the shard's own counter and — the defect under
// certification — its neighbour's, straight through the shared array.
func (s *Shard) HandleEvent() {
	s.Count++
	shards[1-s.id].Count++ // want `shardsafety: shard context of Shard touches package-level var shards` `shardsafety: shard context of Shard obtains Shard shard state by indexing a shared container`
}

// Race drives both shards' handlers on their own goroutines — the
// schedule the parallel DES would use. The cross-shard increment above
// then races: both goroutines write both counters with no ordering.
func Race() {
	var wg sync.WaitGroup
	for i := range shards {
		s := shards[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				s.HandleEvent()
			}
		}()
	}
	wg.Wait()
}

// Serial runs the same handlers one shard at a time — the serial DES
// schedule, under which the very same cross-shard access is benign.
func Serial() int {
	shards[0].Count, shards[1].Count = 0, 0
	for _, s := range shards {
		for n := 0; n < 1000; n++ {
			s.HandleEvent()
		}
	}
	return shards[0].Count + shards[1].Count
}

// --- The repaired version: the same cross-shard mutation through the
// declared mailbox boundary (ISSUE 10). Deliver buffers the neighbour
// increment instead of applying it, and the coordinator drains the inbox
// at the window barrier — the schedule the real kernel's InjectCall uses.
// The analyzer must NOT flag HandleEventMailboxed (no want comment), and
// the race detector must stay quiet on the parallel mailboxed schedule:
// together they pin that the certification covers the mailbox boundary,
// not just the absence of cross-shard code.

// inboxes holds each shard's pending neighbour increments. Guarded by
// inboxMu; only Deliver and the barrier drain touch it.
//
//askcheck:shared
var inboxes [2][]int

//askcheck:shared
var inboxMu sync.Mutex

// Deliver is the declared cross-shard hand-off: it buffers one increment
// for the target shard without touching the target's state root.
//
//askcheck:mailbox
func Deliver(target int) {
	inboxMu.Lock()
	inboxes[target] = append(inboxes[target], 1)
	inboxMu.Unlock()
}

// HandleEventMailboxed is the repaired handler: own state directly, the
// neighbour only through the mailbox. The analyzer accepts it as-is.
func (s *Shard) HandleEventMailboxed() {
	s.Count++
	Deliver(1 - s.id)
}

// ParallelMailboxed drives both shards' repaired handlers on their own
// goroutines, then drains the inboxes at the barrier — single-threaded,
// like the group coordinator between windows. Race-free under -race.
func ParallelMailboxed() int {
	shards[0].Count, shards[1].Count = 0, 0
	inboxes[0], inboxes[1] = nil, nil
	var wg sync.WaitGroup
	for i := range shards {
		s := shards[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				s.HandleEventMailboxed()
			}
		}()
	}
	wg.Wait()
	for i, inbox := range inboxes {
		for _, d := range inbox {
			shards[i].Count += d
		}
	}
	return shards[0].Count + shards[1].Count
}
