// Command cmd runs the agreement corpus's racy schedule; the agreement
// test executes it under `go run -race` and asserts the detector fires.
package main

import agreement "repro/internal/analysis/shardsafety/testdata/src/agreement"

func main() {
	agreement.Race()
}
