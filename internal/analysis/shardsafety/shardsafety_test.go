package shardsafety_test

import (
	"os"
	"os/exec"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/shardsafety"
	agreement "repro/internal/analysis/shardsafety/testdata/src/agreement"
)

func TestShardSafety(t *testing.T) {
	analysistest.Run(t, "testdata", []string{"toyshard"}, shardsafety.Analyzer)
}

// TestAgreementAnalyzer: the analyzer flags the cross-shard mutation in
// the agreement corpus (the want comments sit on the offending line).
func TestAgreementAnalyzer(t *testing.T) {
	analysistest.Run(t, "testdata", []string{"agreement"}, shardsafety.Analyzer)
}

// TestAgreementSerialSchedule: under the serial DES schedule the flagged
// construct is benign — this in-process execution stays race-free even
// under `go test -race`, pinning that the defect is specifically a
// PARALLEL-schedule hazard.
func TestAgreementSerialSchedule(t *testing.T) {
	if got := agreement.Serial(); got != 4000 {
		t.Fatalf("Serial() = %d, want 4000", got)
	}
}

// TestAgreementMailboxed: the repaired handler — the same cross-shard
// increment routed through the //askcheck:mailbox hand-off and drained at
// the barrier — is both analyzer-clean (no want comment on it in the
// corpus, so TestAgreementAnalyzer would fail on any diagnostic) and
// race-free: this parallel in-process execution must stay quiet under
// `go test -race`. Together with TestAgreementRace it pins that the
// certification covers the mailbox boundary itself, not merely the
// absence of cross-shard code.
func TestAgreementMailboxed(t *testing.T) {
	if got := agreement.ParallelMailboxed(); got != 4000 {
		t.Fatalf("ParallelMailboxed() = %d, want 4000", got)
	}
}

// TestAgreementRace: the same construct under the parallel schedule trips
// the race detector. The racy execution runs in a `go run -race`
// subprocess so the detector's process-level failure cannot take this
// test binary down with it.
func TestAgreementRace(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go run -race subprocess in -short mode")
	}
	cmd := exec.Command("go", "run", "-race", "./testdata/src/agreement/cmd")
	cmd.Env = append(os.Environ(), "GORACE=halt_on_error=1")
	out, err := cmd.CombinedOutput()
	if !strings.Contains(string(out), "WARNING: DATA RACE") {
		t.Fatalf("go run -race did not report the cross-shard race (err=%v):\n%s", err, out)
	}
	if err == nil {
		t.Fatalf("go run -race exited 0 despite the race:\n%s", out)
	}
}
