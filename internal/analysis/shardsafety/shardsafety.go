// Package shardsafety defines the analyzer certifying the shard partition
// the parallel DES (ROADMAP item 1) depends on.
//
// The simulator's state is being partitioned into per-rack shards so event
// handling can run on one goroutine per rack. That is only sound if no
// handler running on shard A can reach shard B's mutable state except
// through a declared hand-off point. This analyzer machine-checks exactly
// that, driven by three source annotations:
//
//	//askcheck:shard     on a type declaration: the type is a shard state
//	                     root (per-rack Simulation kernel, TOR port,
//	                     switch daemon, host daemon).
//	//askcheck:mailbox   on a function declaration: a declared cross-shard
//	                     hand-off point. Its body is exempt, and the shard
//	                     context does not propagate through it.
//	//askcheck:shared    on a package-level var declaration: deliberately
//	                     shared (immutable after setup, or internally
//	                     synchronized); references from shard contexts are
//	                     exempt.
//
// The SHARD CONTEXT of a root type R is the set of functions consisting of
// R's methods plus everything statically reachable from them through the
// framework call graph, stopping at //askcheck:mailbox functions. Dynamic
// calls (interface dispatch, function values, closures) produce no edge —
// they are exactly the boundaries the serial simulator already crosses
// dynamically, and the parallel refactor must turn each into an explicit
// mailbox before the analyzer can vouch for it.
//
// Inside a shard context the analyzer reports:
//
//   - any reference to a package-level variable declared in a package that
//     declares a shard root, unless the var is //askcheck:shared — shard
//     handlers must not touch rack-global state;
//   - obtaining a value of a shard-root type by indexing a container, by
//     receiving it from a channel, or by ranging over a container of roots
//     — holding a foreign shard's root is how cross-shard mutation starts,
//     so roots must not be fished out of shared structure outside a
//     mailbox.
//
// Constructors and coordinator code are unaffected: they are not reachable
// from any root's methods, so they may enumerate shards freely. The
// agreement test locks the analyzer to the runtime: the construct it flags
// in testdata/src/agreement is the same one `go run -race` reports when
// two shards' handlers run concurrently.
package shardsafety

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the shardsafety analyzer.
var Analyzer = &framework.Analyzer{
	Name: "shardsafety",
	Doc:  "flag shard-root state reachable from another shard's event handlers outside the declared mailbox API",
	Run:  run,
}

const (
	shardMarker   = "//askcheck:shard"
	mailboxMarker = "//askcheck:mailbox"
	sharedMarker  = "//askcheck:shared"
)

func hasMarker(groups []*ast.CommentGroup, marker string) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if strings.HasPrefix(c.Text, marker) {
				return true
			}
		}
	}
	return false
}

// annotations is the universe-wide annotation index.
type annotations struct {
	roots     map[*types.TypeName]bool
	mailboxes map[*types.Func]bool
	shared    map[*types.Var]bool
	shardPkgs map[*types.Package]bool
}

func collect(universe []*framework.Package) *annotations {
	an := &annotations{
		roots:     make(map[*types.TypeName]bool),
		mailboxes: make(map[*types.Func]bool),
		shared:    make(map[*types.Var]bool),
		shardPkgs: make(map[*types.Package]bool),
	}
	for _, pkg := range universe {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch decl := decl.(type) {
				case *ast.FuncDecl:
					if hasMarker([]*ast.CommentGroup{decl.Doc}, mailboxMarker) {
						if fn, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
							an.mailboxes[fn] = true
						}
					}
				case *ast.GenDecl:
					for _, spec := range decl.Specs {
						switch spec := spec.(type) {
						case *ast.TypeSpec:
							if hasMarker([]*ast.CommentGroup{decl.Doc, spec.Doc, spec.Comment}, shardMarker) {
								if tn, ok := pkg.Info.Defs[spec.Name].(*types.TypeName); ok {
									an.roots[tn] = true
									an.shardPkgs[tn.Pkg()] = true
								}
							}
						case *ast.ValueSpec:
							if decl.Tok == token.VAR &&
								hasMarker([]*ast.CommentGroup{decl.Doc, spec.Doc, spec.Comment}, sharedMarker) {
								for _, name := range spec.Names {
									if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
										an.shared[v] = true
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return an
}

// rootOf returns the annotated root TypeName behind t (through pointers
// and aliases), or nil.
func (an *annotations) rootOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if named, ok := t.(*types.Named); ok && an.roots[named.Obj()] {
		return named.Obj()
	}
	return nil
}

// rootElemOf returns the root TypeName of t's element type when t is a
// container (slice, array, map, channel) of shard roots.
func (an *annotations) rootElemOf(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	switch t := types.Unalias(t).Underlying().(type) {
	case *types.Slice:
		return an.rootOf(t.Elem())
	case *types.Array:
		return an.rootOf(t.Elem())
	case *types.Map:
		return an.rootOf(t.Elem())
	case *types.Chan:
		return an.rootOf(t.Elem())
	case *types.Pointer:
		return an.rootElemOf(t.Elem()) // e.g. range over *[N]*Shard
	}
	return nil
}

// receiverRoot returns the root TypeName fn is a method of, or nil.
func (an *annotations) receiverRoot(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return an.rootOf(sig.Recv().Type())
}

func run(pass *framework.Pass) (any, error) {
	universe := pass.Universe()
	if universe == nil {
		return nil, nil // hand-constructed pass: no engine to build on
	}
	an := collect(universe)
	if len(an.roots) == 0 {
		return nil, nil
	}
	g := pass.CallGraph()

	// Shard context: node -> sorted root names whose contexts include it.
	// Mailbox functions are boundaries: context neither checks them nor
	// propagates through them.
	type rootEntry struct {
		tn      *types.TypeName
		methods []*framework.CallNode
	}
	byName := make(map[string]*rootEntry)
	var names []string
	for _, n := range g.Nodes() {
		tn := an.receiverRoot(n.Fn)
		if tn == nil {
			continue
		}
		key := tn.Pkg().Path() + "." + tn.Name()
		e := byName[key]
		if e == nil {
			e = &rootEntry{tn: tn}
			byName[key] = e
			names = append(names, key)
		}
		e.methods = append(e.methods, n)
	}
	sort.Strings(names)
	stop := func(n *framework.CallNode) bool { return an.mailboxes[n.Fn] }
	context := make(map[*framework.CallNode][]string)
	for _, key := range names {
		e := byName[key]
		for n := range g.ReachableFrom(e.methods, stop) {
			if an.mailboxes[n.Fn] {
				continue
			}
			context[n] = append(context[n], e.tn.Name())
		}
	}
	for _, labels := range context {
		sort.Strings(labels)
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			node := g.Node(fn)
			if node == nil {
				continue
			}
			if labels := context[node]; len(labels) > 0 {
				checkBody(pass, an, fd, strings.Join(labels, "+"))
			}
		}
	}
	return nil, nil
}

// checkBody reports the shard-safety violations inside one shard-context
// function body.
func checkBody(pass *framework.Pass, an *annotations, fd *ast.FuncDecl, label string) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			v, ok := info.Uses[n].(*types.Var)
			if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() &&
				an.shardPkgs[v.Pkg()] && !an.shared[v] {
				pass.Reportf(n.Pos(),
					"shard context of %s touches package-level var %s; shard handlers own only their root (annotate the var //askcheck:shared or cross via //askcheck:mailbox)",
					label, v.Name())
			}
		case *ast.IndexExpr:
			if tn := an.rootOf(info.TypeOf(n)); tn != nil {
				pass.Reportf(n.Pos(),
					"shard context of %s obtains %s shard state by indexing a shared container; cross-shard access must go through an //askcheck:mailbox function",
					label, tn.Name())
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if tn := an.rootOf(info.TypeOf(n)); tn != nil {
					pass.Reportf(n.Pos(),
						"shard context of %s receives %s shard state over a channel; shards exchange messages, not state roots",
						label, tn.Name())
				}
			}
		case *ast.RangeStmt:
			if tn := an.rootElemOf(info.TypeOf(n.X)); tn != nil {
				pass.Reportf(n.X.Pos(),
					"shard context of %s ranges over a container of %s shard roots; cross-shard sweeps belong to the coordinator or an //askcheck:mailbox function",
					label, tn.Name())
			}
		}
		return true
	})
}
