package experiments

import (
	"fmt"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/pisa"
	"repro/internal/stats"
	"repro/internal/switchd"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Fig8aConfig parameterizes the multi-key goodput sweep (Fig. 8(a)):
// goodput between two servers as a function of tuples per packet, against
// the ideal 8x/(8x+78)·100 Gbps curve.
type Fig8aConfig struct {
	// TuplesPerPacket is the x-axis (1..64; above 32 emulates chained
	// pipelines, §5.7.2, by extending the PISA stage budget).
	TuplesPerPacket []int
	// Tuples per measurement point.
	Tuples   int64
	Distinct int
	Seed     int64
}

// DefaultFig8a is the benchmark-scale preset.
func DefaultFig8a() Fig8aConfig {
	return Fig8aConfig{
		TuplesPerPacket: []int{1, 2, 4, 8, 16, 24, 32, 48, 64},
		Tuples:          4_000_000,
		Distinct:        8192,
		Seed:            1,
	}
}

// QuickFig8a is the test-scale preset.
func QuickFig8a() Fig8aConfig {
	return Fig8aConfig{TuplesPerPacket: []int{1, 8, 32}, Tuples: 4_000_000, Distinct: 2048, Seed: 1}
}

// Fig8a measures actual sender goodput per packet geometry and compares it
// with the theoretical ideal.
func Fig8a(cfg Fig8aConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig. 8(a): goodput vs key-value tuples per packet (4 data channels)",
		Note:   "ideal = 8x/(8x+78) × 100 Gbps; below 32 tuples the host PPS bounds goodput",
		Header: []string{"tuples/pkt", "measured Gbps", "ideal Gbps", "measured/ideal"},
	}
	for _, x := range cfg.TuplesPerPacket {
		c := core.DefaultConfig()
		c.NumAAs = x
		c.MediumGroups = 0
		c.MediumSegs = 0
		c.ShadowCopy = false
		c.SwapThreshold = 0
		ch := c.DataChannels
		// Ample rows per task: conflicts would shift work to the receiver
		// and pollute the pure-goodput measurement.
		rows := (c.AARows / ch) &^ 1
		opts := ask.Options{Hosts: 2, Config: c, Seed: cfg.Seed}
		if x > 32 {
			// Chained pipelines: more stages available (§5.7.2).
			pc := pisa.DefaultConfig()
			pc.Stages = 3 + (x+3)/4 + 1
			opts.Switch = switchd.DefaultOptions()
			opts.Switch.Pipeline = pc
		}
		// One task per data channel (see runParallelTasks).
		run, err := runParallelTasks(opts, ch, rows, []core.HostID{1}, 0,
			func(task int, _ core.HostID) workload.Spec {
				return balancedUniformRows(shortLayout(x), cfg.Distinct, cfg.Tuples/int64(ch), cfg.Seed+int64(task), rows)
			})
		if err != nil {
			return nil, fmt.Errorf("x=%d: %w", x, err)
		}
		up := run.Cluster.Net.Uplink(1).Stats()
		measured := stats.Gbps(up.TxGoodBytes, run.Elapsed)
		ideal := float64(8*x) / float64(8*x+wire.PerPacketOverhead) * 100
		t.AddRow(x, measured, ideal, measured/ideal)
	}
	return t, nil
}

// Fig8bConfig parameterizes the packet-fill CDF per dataset (Fig. 8(b)).
type Fig8bConfig struct {
	Tuples int64
	Seed   int64
}

// DefaultFig8b is the benchmark-scale preset.
func DefaultFig8b() Fig8bConfig { return Fig8bConfig{Tuples: 1_500_000, Seed: 1} }

// QuickFig8b is the test-scale preset.
func QuickFig8b() Fig8bConfig { return Fig8bConfig{Tuples: 100_000, Seed: 1} }

// Fig8b measures the distribution of non-blank tuple slots per data packet
// for each corpus stand-in plus the uniform reference.
func Fig8b(cfg Fig8bConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig. 8(b): non-blank tuple slots per packet (of 32)",
		Note:   "key-space partition leaves slots blank under key skew (§3.2.2)",
		Header: []string{"dataset", "mean", "P10", "P50", "P90"},
	}
	specs := []workload.Spec{uniformMixedKeys(cfg)}
	for _, name := range workload.DatasetNames() {
		specs = append(specs, workload.Dataset(name, cfg.Tuples, cfg.Seed))
	}
	for _, spec := range specs {
		task, streams := singleSenderTask(spec, 0, false)
		res, cl, err := runAggregation(ask.Options{Hosts: 2, Seed: cfg.Seed}, task, streams)
		if err != nil {
			return nil, err
		}
		if err := checkExact(res, spec); err != nil {
			return nil, fmt.Errorf("%s: %w", spec.Name, err)
		}
		hist := cl.Daemon(1).Stats().SlotFill
		var cdf stats.CDF
		for fill, n := range hist {
			cdf.AddN(float64(fill), n)
		}
		t.AddRow(spec.Name, cdf.Mean(), cdf.Quantile(0.10), cdf.Quantile(0.50), cdf.Quantile(0.90))
	}
	return t, nil
}

// uniformMixedKeys is Fig. 8(b)'s "Uniform" line: evenly frequent keys
// whose length mix feeds the packet's units in proportion — 16 short slots
// want 2/3 of the tuple mass, 8 two-slot medium groups the remaining 1/3 —
// so packets pack nearly full (the paper's "no blank tuple in almost every
// packet").
func uniformMixedKeys(cfg Fig8bConfig) workload.Spec {
	return workload.Spec{
		Name:     "Uniform",
		Distinct: 12_000, // small enough that 4-byte names exist for all ranks
		Tuples:   cfg.Tuples,
		KeyLens: func(rank int) int {
			if rank%3 == 2 {
				return 8 // medium
			}
			return 4 // short
		},
		Seed: cfg.Seed,
	}
}
