package experiments

import (
	"fmt"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// CorruptionConfig parameterizes the link-corruption sweep: the same
// aggregation task runs at increasing per-link corruption probabilities, and
// the table reports what the end-to-end integrity machinery costs — every
// damaged frame is quarantined by the CRC32C check at its receiver and looks
// like a loss to the sliding window, so corruption shows up as retransmission
// traffic and elapsed-time inflation, never as a wrong result.
type CorruptionConfig struct {
	// Senders is the number of sending hosts (receiver is host 0).
	Senders int
	// Distinct is the per-sender distinct-key count.
	Distinct int
	// Tuples is the per-sender stream length.
	Tuples int64
	Seed   int64
	// Probs is the per-link corruption-probability sweep; the first entry
	// should be 0 (the clean baseline every other row is normalized to).
	Probs []float64
}

// DefaultCorruption is the benchmark-scale preset.
func DefaultCorruption() CorruptionConfig {
	return CorruptionConfig{
		Senders: 3, Distinct: 2048, Tuples: 300_000, Seed: 1,
		Probs: []float64{0, 1e-5, 1e-3},
	}
}

// QuickCorruption is the test-scale preset.
func QuickCorruption() CorruptionConfig {
	return CorruptionConfig{
		Senders: 2, Distinct: 512, Tuples: 40_000, Seed: 1,
		Probs: []float64{0, 1e-5, 1e-3},
	}
}

// Corruption runs the sweep. Every row must reproduce the clean row's result
// exactly: the integrity path converts byte damage into retransmissions, so
// correctness is flat while goodput and latency degrade.
func Corruption(cfg CorruptionConfig) (*stats.Table, error) {
	if len(cfg.Probs) == 0 || cfg.Probs[0] != 0 {
		return nil, fmt.Errorf("corruption: Probs must start with the clean baseline 0")
	}
	spec := core.TaskSpec{ID: 1, Receiver: 0, Op: core.OpSum}
	want := make(core.Result)
	for i := 0; i < cfg.Senders; i++ {
		h := core.HostID(i + 1)
		spec.Senders = append(spec.Senders, h)
		w := workload.Uniform(cfg.Distinct, cfg.Tuples, cfg.Seed+int64(h))
		want.Merge(w.Reference(core.OpSum), core.OpSum)
	}
	total := int64(cfg.Senders) * cfg.Tuples

	t := &stats.Table{
		Title: "Corruption: per-link byte damage vs goodput and retransmissions",
		Note: fmt.Sprintf("%d senders x %d tuples; CRC32C quarantines every damaged frame, so results stay exact while retransmissions absorb the damage",
			cfg.Senders, cfg.Tuples),
		Header: []string{"corrupt-prob", "elapsed", "x clean", "Mtuple/s", "goodput-Gbps", "corrupted", "sw-drop", "host-drop", "retransmits", "exact"},
	}

	var cleanElapsed time.Duration
	for _, prob := range cfg.Probs {
		link := netsim.DefaultLinkConfig()
		link.Fault.CorruptProb = prob
		cl, err := ask.NewCluster(ask.Options{
			Hosts: cfg.Senders + 1, Link: link, Seed: cfg.Seed,
			Telemetry: telemetry.Config{Enabled: true},
		})
		if err != nil {
			return nil, err
		}
		streams := make(map[core.HostID]core.Stream, cfg.Senders)
		for i := 0; i < cfg.Senders; i++ {
			h := core.HostID(i + 1)
			streams[h] = workload.Uniform(cfg.Distinct, cfg.Tuples, cfg.Seed+int64(h)).Stream()
		}
		res, err := cl.Aggregate(spec, streams)
		if err != nil {
			return nil, fmt.Errorf("corruption: prob %g: %w", prob, err)
		}
		exact := res.Result.Equal(want)
		if !exact {
			return nil, fmt.Errorf("corruption: prob %g diverged: %s", prob, res.Result.Diff(want, 5))
		}
		elapsed := time.Duration(res.Elapsed)
		if prob == 0 {
			cleanElapsed = elapsed
		}
		var goodBytes, corrupted int64
		for i := 0; i < cfg.Senders; i++ {
			goodBytes += cl.Net.Uplink(core.HostID(i + 1)).Stats().TxGoodBytes
		}
		// Frame damage is counted at the links (uplinks and downlinks both
		// carry checksummed traffic; returning ACKs get damaged too).
		for h := 0; h <= cfg.Senders; h++ {
			corrupted += cl.Net.Uplink(core.HostID(h)).Stats().Corrupted
			corrupted += cl.Net.Downlink(core.HostID(h)).Stats().Corrupted
		}
		reg := cl.Tel.Registry
		t.AddRow(fmt.Sprintf("%g", prob),
			elapsed,
			float64(elapsed)/float64(cleanElapsed),
			float64(total)/elapsed.Seconds()/1e6,
			stats.Gbps(goodBytes, elapsed),
			corrupted,
			reg.Total("switchd.corrupt_dropped"),
			reg.Total("hostd.corrupt_dropped"),
			reg.Total("window.retransmits"),
			exact)
	}
	return t, nil
}
