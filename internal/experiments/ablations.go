package experiments

import (
	"fmt"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/stats"
	"repro/internal/switchd"
	"repro/internal/workload"
)

// AblationSwapConfig sweeps the shadow-copy swap threshold (§3.4 calls it
// "tunable") on the adversarial cold-first ordering, where cold keys seize
// every aggregator before any hot key arrives: too small a threshold wastes
// fetch bandwidth and churns the copies, too large converges to no
// prioritization. (On shuffled arrivals FCFS already favors hot keys — they
// appear early by weight — so prioritization is about the orderings FCFS
// gets wrong.)
type AblationSwapConfig struct {
	Distinct   int
	Tuples     int64
	Ratio      float64 // aggregators per distinct key
	Thresholds []int   // 0 disables the shadow copy
	Skew       float64
	Seed       int64
}

// DefaultAblationSwap is the benchmark-scale preset.
func DefaultAblationSwap() AblationSwapConfig {
	return AblationSwapConfig{
		Distinct:   8192,
		Tuples:     1_000_000,
		Ratio:      1.0 / 16,
		Thresholds: []int{0, 32, 128, 512, 2048},
		Skew:       1.05,
		Seed:       1,
	}
}

// QuickAblationSwap is the test-scale preset.
func QuickAblationSwap() AblationSwapConfig {
	return AblationSwapConfig{
		Distinct: 2048, Tuples: 120_000, Ratio: 1.0 / 16,
		Thresholds: []int{0, 256, 1024}, Skew: 1.05, Seed: 1,
	}
}

// AblationSwap measures switch absorption across swap thresholds.
func AblationSwap(cfg AblationSwapConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Ablation: shadow-copy swap threshold (cold-first Zipf, ratio 1/16)",
		Note:   "threshold 0 disables prioritization entirely",
		Header: []string{"threshold", "aggregated %", "swaps"},
	}
	rows := int(cfg.Ratio*float64(cfg.Distinct)) / fig9AAs
	if rows < 2 {
		rows = 2
	}
	rows &^= 1
	for _, th := range cfg.Thresholds {
		c := core.DefaultConfig()
		c.NumAAs = fig9AAs
		c.MediumGroups = 0
		c.MediumSegs = 0
		c.ShadowCopy = th > 0
		c.SwapThreshold = th
		spec := workload.Zipf(cfg.Distinct, cfg.Tuples, cfg.Skew, workload.ColdFirst, cfg.Seed)
		task, streams := singleSenderTask(spec, rows, false)
		res, _, err := runAggregation(ask.Options{Hosts: 2, Config: c, Seed: cfg.Seed}, task, streams)
		if err != nil {
			return nil, err
		}
		if err := checkExact(res, spec); err != nil {
			return nil, fmt.Errorf("threshold %d: %w", th, err)
		}
		t.AddRow(th, 100*res.Switch.AggregatedTupleRatio(), res.Recv.Swaps)
	}
	return t, nil
}

// AblationWindowConfig sweeps the sliding-window size W under loss: the
// window bounds in-flight data (and the switch's per-flow SRAM, §3.3).
type AblationWindowConfig struct {
	Windows  []int
	Tuples   int64
	Distinct int
	LossProb float64
	Seed     int64
}

// DefaultAblationWindow is the benchmark-scale preset.
func DefaultAblationWindow() AblationWindowConfig {
	return AblationWindowConfig{
		Windows: []int{32, 64, 256, 1024}, Tuples: 800_000, Distinct: 4096,
		LossProb: 0.01, Seed: 1,
	}
}

// QuickAblationWindow is the test-scale preset.
func QuickAblationWindow() AblationWindowConfig {
	return AblationWindowConfig{
		Windows: []int{32, 256}, Tuples: 80_000, Distinct: 1024,
		LossProb: 0.01, Seed: 1,
	}
}

// AblationWindow measures completion time and switch SRAM cost per window
// size.
func AblationWindow(cfg AblationWindowConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Ablation: sliding-window size W under loss",
		Note:   fmt.Sprintf("%.1f%% loss each direction; per-flow switch state = W + W×32 bits", 100*cfg.LossProb),
		Header: []string{"W", "elapsed", "per-flow state (B)", "throughput Gbps"},
	}
	for _, w := range cfg.Windows {
		c := core.DefaultConfig()
		c.Window = w
		c.MediumGroups = 0
		c.MediumSegs = 0
		c.ShadowCopy = false
		c.SwapThreshold = 0
		link := netsim.DefaultLinkConfig()
		link.Fault.LossProb = cfg.LossProb
		// Large windows need a smaller flow table so W×NumAAs bits of
		// pkt_state fit one PISA stage (the budget the paper's W=256
		// respects with 512 flows; W=1024 trades flows for window).
		swOpts := switchd.DefaultOptions()
		swOpts.MaxFlows = 64
		spec := workload.Uniform(cfg.Distinct, cfg.Tuples, cfg.Seed)
		task, streams := singleSenderTask(spec, 0, false)
		cl, err := ask.NewCluster(ask.Options{Hosts: 2, Config: c, Link: link, Seed: cfg.Seed, Switch: swOpts})
		if err != nil {
			return nil, err
		}
		res, err := cl.Aggregate(task, streams)
		if err != nil {
			return nil, err
		}
		if err := checkExact(res, spec); err != nil {
			return nil, fmt.Errorf("W=%d: %w", w, err)
		}
		stateBytes := (w + w*c.NumAAs) / 8
		up := cl.Net.Uplink(1).Stats()
		t.AddRow(w, time.Duration(res.Elapsed), stateBytes,
			stats.Gbps(up.TxGoodBytes, time.Duration(res.Elapsed)))
	}
	return t, nil
}

// AblationMediumConfig sweeps the coalesced-group width m (§3.2.3): small m
// pushes more keys to the long bypass; large m wastes slots on padding.
type AblationMediumConfig struct {
	Tuples int64
	Seed   int64
}

// DefaultAblationMedium is the benchmark-scale preset.
func DefaultAblationMedium() AblationMediumConfig {
	return AblationMediumConfig{Tuples: 1_000_000, Seed: 1}
}

// QuickAblationMedium is the test-scale preset.
func QuickAblationMedium() AblationMediumConfig {
	return AblationMediumConfig{Tuples: 80_000, Seed: 1}
}

// AblationMedium compares m = 2 (the paper's choice) with m = 4 and no
// medium groups at all on a long-tailed natural-language workload.
func AblationMedium(cfg AblationMediumConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Ablation: coalesced medium-key group width m (§3.2.3)",
		Note:   "natural-language keys with a heavy long tail",
		Header: []string{"m", "k groups", "max key B", "long bypass %", "aggregated %", "mean slots/pkt"},
	}
	variants := []struct{ m, k int }{{0, 0}, {2, 8}, {4, 4}}
	for _, v := range variants {
		c := core.DefaultConfig()
		c.MediumSegs = v.m
		c.MediumGroups = v.k
		spec := workload.Spec{
			Name:     "longtail",
			Distinct: 60_000,
			Tuples:   cfg.Tuples,
			Skew:     1.1,
			KeyLens:  workload.NaturalLanguage(2),
			Seed:     cfg.Seed,
		}
		task, streams := singleSenderTask(spec, 0, false)
		res, cl, err := runAggregation(ask.Options{Hosts: 2, Config: c, Seed: cfg.Seed}, task, streams)
		if err != nil {
			return nil, err
		}
		if err := checkExact(res, spec); err != nil {
			return nil, fmt.Errorf("m=%d: %w", v.m, err)
		}
		ds := cl.Daemon(1).Stats()
		var cdf stats.CDF
		for fill, n := range ds.SlotFill {
			cdf.AddN(float64(fill), n)
		}
		t.AddRow(v.m, v.k, c.MaxMediumKeyBytes(),
			100*float64(ds.LongTuplesSent)/float64(cfg.Tuples),
			100*res.Switch.AggregatedTupleRatio(),
			cdf.Mean())
	}
	return t, nil
}

// AblationCongestionConfig exercises the §7 congestion-control discussion:
// N transport-only senders incast one receiver whose downlink queueing
// exceeds the 100 µs retransmission timeout.
type AblationCongestionConfig struct {
	Senders         int
	TuplesPerSender int64
	Window          int
	Seed            int64
}

// DefaultAblationCongestion is the benchmark-scale preset.
func DefaultAblationCongestion() AblationCongestionConfig {
	return AblationCongestionConfig{Senders: 8, TuplesPerSender: 150_000, Window: 1024, Seed: 3}
}

// QuickAblationCongestion is the test-scale preset.
func QuickAblationCongestion() AblationCongestionConfig {
	return AblationCongestionConfig{Senders: 8, TuplesPerSender: 60_000, Window: 1024, Seed: 3}
}

// AblationCongestion compares the fixed reliability window against the AIMD
// congestion window under incast.
func AblationCongestion(cfg AblationCongestionConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Ablation: loss-based congestion control under incast (§7)",
		Note: fmt.Sprintf("%d transport-only senders → 1 receiver, W=%d, timeout 100µs",
			cfg.Senders, cfg.Window),
		Header: []string{"congestion control", "retransmit ratio", "elapsed", "app Gbps"},
	}
	for _, cc := range []bool{false, true} {
		c := core.DefaultConfig()
		c.Window = cfg.Window
		c.CongestionControl = cc
		c.MediumGroups = 0
		c.MediumSegs = 0
		c.ShadowCopy = false
		c.SwapThreshold = 0
		swOpts := switchd.DefaultOptions()
		swOpts.MaxFlows = 8 * (cfg.Senders + 2) // fit W=1024 pkt_state in a stage
		cl, err := ask.NewCluster(ask.Options{Hosts: cfg.Senders + 1, Config: c, Seed: cfg.Seed, Switch: swOpts})
		if err != nil {
			return nil, err
		}
		spec := core.TaskSpec{ID: 1, Receiver: 0, Op: core.OpSum, Rows: -1}
		streams := make(map[core.HostID]core.Stream)
		want := make(core.Result)
		for i := 1; i <= cfg.Senders; i++ {
			h := core.HostID(i)
			spec.Senders = append(spec.Senders, h)
			w := workload.Uniform(2048, cfg.TuplesPerSender, cfg.Seed+int64(i))
			streams[h] = w.Stream()
			want.Merge(w.Reference(core.OpSum), core.OpSum)
		}
		res, err := cl.Aggregate(spec, streams)
		if err != nil {
			return nil, err
		}
		if !res.Result.Equal(want) {
			return nil, fmt.Errorf("congestion cc=%v: wrong result: %s", cc, res.Result.Diff(want, 5))
		}
		var retrans, sent int64
		for i := 1; i <= cfg.Senders; i++ {
			for _, s := range cl.Daemon(core.HostID(i)).ChannelStats() {
				retrans += s.Retransmits
				sent += s.Sent
			}
		}
		label := "off (fixed W)"
		if cc {
			label = "on (AIMD ≤ W)"
		}
		// Application throughput: unique tuple bytes over completion time
		// (receiver-side byte counters would double-count the duplicates
		// the storm produces).
		appBytes := 8 * cfg.TuplesPerSender * int64(cfg.Senders)
		t.AddRow(label, float64(retrans)/float64(sent), time.Duration(res.Elapsed),
			stats.Gbps(appBytes, time.Duration(res.Elapsed)))
	}
	return t, nil
}
