package experiments

import (
	"fmt"

	"repro/ask"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Table1Config parameterizes the traffic-reduction measurement on the
// production-corpus stand-ins (Table 1).
type Table1Config struct {
	// Tuples per dataset (scaled from the paper's full corpus replays).
	Tuples int64
	Seed   int64
}

// DefaultTable1 is the benchmark-scale preset.
func DefaultTable1() Table1Config { return Table1Config{Tuples: 1_500_000, Seed: 1} }

// QuickTable1 is the test-scale preset.
func QuickTable1() Table1Config { return Table1Config{Tuples: 120_000, Seed: 1} }

// Table1 replays each corpus stand-in through the full ASK stack and
// reports how much the switch absorbs: the fraction of switch-eligible
// tuples aggregated in-network, and the fraction of data packets fully
// absorbed (switch-ACKed). Long keys bypass the switch by design (§3.2.3)
// and are reported separately.
func Table1(cfg Table1Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Table 1: traffic reduction on production-corpus stand-ins",
		Note:   fmt.Sprintf("%d tuples per dataset; ratios over switch-eligible traffic", cfg.Tuples),
		Header: []string{"dataset", "aggregated tuples %", "switch-ACKed packets %", "long-key bypass %"},
	}
	for _, name := range workload.DatasetNames() {
		spec := workload.Dataset(name, cfg.Tuples, cfg.Seed)
		task, streams := singleSenderTask(spec, 0, false)
		opts := ask.Options{Hosts: 2, Seed: cfg.Seed}
		res, cl, err := runAggregation(opts, task, streams)
		if err != nil {
			return nil, err
		}
		if err := checkExact(res, spec); err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		sw := res.Switch
		long := float64(cl.Daemon(1).Stats().LongTuplesSent) / float64(cfg.Tuples)
		t.AddRow(name,
			100*sw.AggregatedTupleRatio(),
			100*sw.AckedPacketRatio(),
			100*long)
	}
	return t, nil
}
