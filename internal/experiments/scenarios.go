package experiments

import (
	"fmt"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
	"repro/internal/workload/scenario"
)

// ScenariosConfig parameterizes the scenario-corpus sweep: every named
// workload shape in the committed corpus replayed through the full stack on
// the sim clock (timed streams), one cluster per scenario.
type ScenariosConfig struct {
	// Senders splits each scenario's stream round-robin across this many
	// sending hosts.
	Senders int
	// Tuples, when positive, overrides each scenario's stream length (the
	// quick preset scales the corpus down without redefining it).
	Tuples int64
	// Swap is the shadow-copy swap threshold (packets between promotion
	// rounds). The corpus streams are much shorter than the paper's full
	// replays, so the sweep lowers it below DefaultConfig's to keep the
	// promotion machinery exercised at this scale.
	Swap int
	// Rows caps the switch region rows (even, for the shadow copies). The
	// default layout holds every corpus vocabulary outright; capping rows
	// keeps aggregators scarce so hit rate and promotions respond to the
	// shapes' churn.
	Rows int
	// Names restricts the sweep to these scenarios (empty = whole corpus).
	Names []string
}

// DefaultScenarios is the benchmark-scale preset: the corpus as committed.
func DefaultScenarios() ScenariosConfig {
	return ScenariosConfig{Senders: 3, Swap: 256, Rows: 64}
}

// QuickScenarios is the test-scale preset.
func QuickScenarios() ScenariosConfig {
	return ScenariosConfig{Senders: 2, Tuples: 6_000, Swap: 64, Rows: 32}
}

// Scenarios sweeps the committed scenario corpus: each shape is generated
// from its seed, split across the senders, and replayed with arrival
// timestamps on the sim clock, so the cluster experiences the shape's
// temporal structure (bursts, lulls, diurnal cycles) rather than
// back-to-back pressure. Per shape it reports what the paper's steady-state
// figures cannot show: how the switch-AA hit rate, shadow-copy promotion
// churn, and goodput fraction respond to arrival dynamics and key churn.
func Scenarios(cfg ScenariosConfig) (*stats.Table, error) {
	corpus := scenario.All()
	if len(cfg.Names) > 0 {
		picked := make([]scenario.Scenario, 0, len(cfg.Names))
		for _, name := range cfg.Names {
			s, err := scenario.ByName(name)
			if err != nil {
				return nil, err
			}
			picked = append(picked, s)
		}
		corpus = picked
	}
	t := &stats.Table{
		Title:  "Scenario corpus: AA hit rate, promotions, goodput per workload shape",
		Note:   fmt.Sprintf("%d senders, timed replay on the sim clock; GF = goodput/wire bytes on sender uplinks", cfg.Senders),
		Header: []string{"scenario", "tuples", "AA hit %", "swaps", "GF %", "elapsed ms"},
	}
	for _, s := range corpus {
		if cfg.Tuples > 0 {
			s = s.WithTuples(cfg.Tuples)
		}
		tkvs := core.CollectTimed(s.TimedStream())
		parts := workload.SplitTimedRoundRobin(tkvs, cfg.Senders)

		spec := core.TaskSpec{ID: 1, Receiver: 0, Op: core.OpSum, Rows: cfg.Rows}
		streams := make(map[core.HostID]core.TimedStream, cfg.Senders)
		want := make(core.Result)
		for i, part := range parts {
			h := core.HostID(i + 1)
			spec.Senders = append(spec.Senders, h)
			streams[h] = core.SliceTimedStream(part)
			for _, tkv := range part {
				want.MergeKV(tkv.KV, core.OpSum)
			}
		}

		conf := core.DefaultConfig()
		if cfg.Swap > 0 {
			conf.SwapThreshold = cfg.Swap
		}
		cl, err := newCluster(ask.Options{Hosts: cfg.Senders + 1, Config: conf, Seed: s.Seed})
		if err != nil {
			return nil, err
		}
		res, err := cl.AggregateTimed(spec, streams)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name, err)
		}
		if !res.Result.Equal(want) {
			return nil, fmt.Errorf("%s: wrong aggregation result: %s", s.Name, res.Result.Diff(want, 5))
		}

		var wire, good int64
		for i := range parts {
			up := cl.Net.Uplink(core.HostID(i + 1)).Stats()
			wire += up.TxWireBytes
			good += up.TxGoodBytes
		}
		gf := 0.0
		if wire > 0 {
			gf = 100 * float64(good) / float64(wire)
		}
		t.AddRow(s.Name,
			int64(len(tkvs)),
			100*res.Switch.AggregatedTupleRatio(),
			cl.Switch.Stats().Swaps,
			gf,
			float64(time.Duration(res.Elapsed))/float64(time.Millisecond))
	}
	return t, nil
}
