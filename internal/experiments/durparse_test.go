package experiments

import "time"

// parseGoDuration parses the duration strings stats.Table renders.
func parseGoDuration(s string) (float64, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return d.Seconds(), nil
}
