package experiments

import (
	"fmt"

	"repro/internal/mapreduce"
	"repro/internal/stats"
)

// Fig10Config parameterizes the WordCount job-completion-time comparison
// (Fig. 10) and the task-completion-time breakdown (Fig. 11).
type Fig10Config struct {
	Machines           int
	MappersPerMachine  int
	ReducersPerMachine int
	// Volumes is the x-axis: tuples per mapper (paper: 5/10/15/20 ×10⁷;
	// scaled).
	Volumes []int64
	// DistinctKeys per mapper (paper: 2¹⁸; scaled with volume).
	DistinctKeys int
	Seed         int64
}

// DefaultFig10 is the benchmark-scale preset (1/500 of the paper's volume,
// 8 mappers/reducers per machine instead of 32).
func DefaultFig10() Fig10Config {
	return Fig10Config{
		Machines:           3,
		MappersPerMachine:  8,
		ReducersPerMachine: 8,
		Volumes:            []int64{60_000, 120_000, 180_000},
		DistinctKeys:       16_384,
		Seed:               1,
	}
}

// QuickFig10 is the test-scale preset.
func QuickFig10() Fig10Config {
	return Fig10Config{
		Machines:           3,
		MappersPerMachine:  2,
		ReducersPerMachine: 2,
		Volumes:            []int64{60_000},
		DistinctKeys:       4_096,
		Seed:               1,
	}
}

var fig10Transports = []mapreduce.Transport{
	mapreduce.Vanilla, mapreduce.SHM, mapreduce.RDMA, mapreduce.ASK,
}

// Fig10 runs WordCount under each shuffle strategy at each volume and
// reports job completion times.
func Fig10(cfg Fig10Config) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Fig. 10: WordCount job completion time",
		Note: fmt.Sprintf("%d machines × %d mappers, %d reducers/machine",
			cfg.Machines, cfg.MappersPerMachine, cfg.ReducersPerMachine),
		Header: []string{"tuples/mapper", "Spark", "SparkSHM", "SparkRDMA", "ASK", "ASK gain"},
	}
	for _, vol := range cfg.Volumes {
		cells := []any{vol}
		var sparkJCT, askJCT float64
		for _, tr := range fig10Transports {
			rep, err := fig10Run(cfg, vol, tr)
			if err != nil {
				return nil, err
			}
			cells = append(cells, rep.JCT)
			switch tr {
			case mapreduce.Vanilla:
				sparkJCT = rep.JCT.Seconds()
			case mapreduce.ASK:
				askJCT = rep.JCT.Seconds()
			}
		}
		reduction := 0.0
		if sparkJCT > 0 {
			reduction = 100 * (1 - askJCT/sparkJCT)
		}
		cells = append(cells, fmt.Sprintf("-%.1f%%", reduction))
		t.AddRow(cells...)
	}
	return t, nil
}

// Fig11 reports the mapper/reducer task-completion-time breakdown at one
// volume (the paper's 10×10⁷ point, scaled).
func Fig11(cfg Fig10Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig. 11: mean task completion time breakdown",
		Note:   "ASK mappers skip pre-aggregation; its reducers merge switch state",
		Header: []string{"system", "mapper TCT", "reducer TCT", "JCT"},
	}
	vol := cfg.Volumes[len(cfg.Volumes)/2]
	for _, tr := range fig10Transports {
		rep, err := fig10Run(cfg, vol, tr)
		if err != nil {
			return nil, err
		}
		t.AddRow(tr.String(), rep.MeanMapperTCT(), rep.MeanReducerTCT(), rep.JCT)
	}
	return t, nil
}

func fig10Run(cfg Fig10Config, vol int64, tr mapreduce.Transport) (mapreduce.Report, error) {
	rep, err := mapreduce.Run(mapreduce.Config{
		Machines:           cfg.Machines,
		MappersPerMachine:  cfg.MappersPerMachine,
		ReducersPerMachine: cfg.ReducersPerMachine,
		TuplesPerMapper:    vol,
		DistinctKeys:       cfg.DistinctKeys,
		Transport:          tr,
		Seed:               cfg.Seed,
	})
	if err != nil {
		return rep, fmt.Errorf("fig10 %v vol=%d: %w", tr, vol, err)
	}
	return rep, nil
}
