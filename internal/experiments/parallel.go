package experiments

import (
	"encoding/json"
	"sync"

	"repro/internal/stats"
)

// Parallel experiment runner (cmd/askbench -parallel N).
//
// Experiment points are embarrassingly parallel: each builds its own
// cluster, its own simulation, its own RNGs — the simdeterminism analyzer
// statically guarantees the model packages share no mutable globals and
// never read wall clocks, so running K experiments on K OS threads cannot
// perturb any of them. Each simulation stays single-goroutine; parallelism
// exists only BETWEEN experiments.
//
// Determinism contract: RunParallel's result depends only on the runner
// list, never on worker count or scheduling order. Outcomes are stored by
// input position, so askbench -parallel 8 and -parallel 1 print (and
// OutcomesJSON serializes) byte-identical output. The golden test in
// parallel_test.go enforces this.

// Outcome is one experiment's result: the rendered tables, or the error
// text. Err is a string (not error) so Outcome marshals deterministically.
type Outcome struct {
	Name   string         `json:"name"`
	Tables []*stats.Table `json:"tables,omitempty"`
	Err    string         `json:"error,omitempty"`
}

// RunParallel runs the given experiments on a pool of `workers` goroutines
// (workers <= 1 degenerates to strictly serial, in order) and returns their
// outcomes in input order. quick selects the test-scale presets.
func RunParallel(runners []Runner, quick bool, workers int) []Outcome {
	out := make([]Outcome, len(runners))
	runOne := func(i int) {
		r := runners[i]
		f := r.Full
		if quick {
			f = r.Quick
		}
		tables, err := f()
		out[i] = Outcome{Name: r.Name, Tables: tables}
		if err != nil {
			out[i].Err = err.Error()
		}
	}
	if workers <= 1 || len(runners) <= 1 {
		for i := range runners {
			runOne(i)
		}
		return out
	}
	if workers > len(runners) {
		workers = len(runners)
	}
	// Work-stealing by index: the next counter hands each worker the lowest
	// unclaimed experiment. Completion order varies; out[] position does not.
	var (
		mu   sync.Mutex
		next int
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(runners) {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// OutcomesJSON serializes outcomes deterministically (stable field order,
// two-space indent, trailing newline). This is askbench's -json output and
// the byte-identity artifact of the serial-vs-parallel golden test.
func OutcomesJSON(outcomes []Outcome) ([]byte, error) {
	b, err := json.MarshalIndent(outcomes, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
