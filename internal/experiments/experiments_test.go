package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a numeric table cell.
func cell(t *testing.T, tb interface{ String() string }, rows [][]string, r, c int) float64 {
	t.Helper()
	s := strings.TrimSuffix(rows[r][c], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric:\n%s", r, c, rows[r][c], tb.String())
	}
	return v
}

func TestFig3Shape(t *testing.T) {
	tb, err := Fig3(QuickFig3())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: cores, Spark, Strawman, ASK, ASK/Spark.
	for r := range tb.Rows {
		spark := cell(t, tb, tb.Rows, r, 1)
		straw := cell(t, tb, tb.Rows, r, 2)
		full := cell(t, tb, tb.Rows, r, 3)
		if !(spark < straw && straw < full) {
			t.Fatalf("row %d: want Spark < Strawman < ASK:\n%s", r, tb.String())
		}
	}
	// The multi-key gain at equal cores is dramatic (paper: up to 155×;
	// even at quick scale it must exceed 20×).
	last := len(tb.Rows) - 1
	if gain := cell(t, tb, tb.Rows, last, 4); gain < 20 {
		t.Fatalf("ASK/Spark gain %.1f too small:\n%s", gain, tb.String())
	}
}

func TestFig7Shape(t *testing.T) {
	tb, err := Fig7(QuickFig7())
	if err != nil {
		t.Fatal(err)
	}
	// Rows: ASK 1dCh, ASK 4dCh, PreAggr 8thr, PreAggr 32thr.
	// ASK with 4 channels beats every PreAggr row while using less CPU.
	ask4 := tb.Rows[1]
	for r := 2; r < len(tb.Rows); r++ {
		if !durLess(t, ask4[1], tb.Rows[r][1]) {
			t.Fatalf("ASK 4dCh JCT %s not below %s (%s):\n%s", ask4[1], tb.Rows[r][1], tb.Rows[r][0], tb.String())
		}
	}
	if cpu := cell(t, tb, tb.Rows, 1, 2); cpu > 10 {
		t.Fatalf("ASK 4dCh CPU%% = %.1f, want ~7.1:\n%s", cpu, tb.String())
	}
}

func durLess(t *testing.T, a, b string) bool {
	t.Helper()
	da, err1 := parseDur(a)
	db, err2 := parseDur(b)
	if err1 != nil || err2 != nil {
		t.Fatalf("bad durations %q %q", a, b)
	}
	return da < db
}

func parseDur(s string) (float64, error) {
	// crude: strip unit suffix via time.ParseDuration
	d, err := parseGoDuration(s)
	return d, err
}

func TestTable1Shape(t *testing.T) {
	tb, err := Table1(QuickTable1())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for r := range tb.Rows {
		aggr := cell(t, tb, tb.Rows, r, 1)
		acked := cell(t, tb, tb.Rows, r, 2)
		// Paper regime: the switch absorbs the vast majority of eligible
		// tuples, and most packets are fully absorbed.
		if aggr < 70 {
			t.Fatalf("%s aggregates only %.1f%%:\n%s", tb.Rows[r][0], aggr, tb.String())
		}
		if acked < 50 || acked > 100 {
			t.Fatalf("%s ACKed %.1f%%:\n%s", tb.Rows[r][0], acked, tb.String())
		}
	}
}

func TestFig8aShape(t *testing.T) {
	tb, err := Fig8a(QuickFig8a())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for r := range tb.Rows {
		meas := cell(t, tb, tb.Rows, r, 1)
		ideal := cell(t, tb, tb.Rows, r, 2)
		if meas > ideal*1.02 {
			t.Fatalf("measured %.2f above ideal %.2f:\n%s", meas, ideal, tb.String())
		}
		if meas < prev {
			t.Fatalf("goodput not monotone in tuples/packet:\n%s", tb.String())
		}
		prev = meas
	}
	// At 32 tuples/packet the measured goodput approaches the ideal. At
	// quick scale, task setup/teardown overhead (~0.5 ms of control-plane
	// RPCs and fetches) still costs a few points; the Default preset gets
	// closer.
	last := len(tb.Rows) - 1
	if ratio := cell(t, tb, tb.Rows, last, 3); ratio < 0.75 {
		t.Fatalf("32-tuple packets reach only %.2f of ideal:\n%s", ratio, tb.String())
	}
}

func TestFig8bShape(t *testing.T) {
	tb, err := Fig8b(QuickFig8b())
	if err != nil {
		t.Fatal(err)
	}
	// Uniform (row 0) packs nearly full packets; skewed corpora pack fewer.
	uni := cell(t, tb, tb.Rows, 0, 1)
	if uni < 24 {
		t.Fatalf("uniform mean fill %.1f of 32:\n%s", uni, tb.String())
	}
	worst := uni
	for r := 1; r < len(tb.Rows); r++ {
		if m := cell(t, tb, tb.Rows, r, 1); m < worst {
			worst = m
		}
	}
	if worst >= uni {
		t.Fatalf("no corpus packs worse than uniform:\n%s", tb.String())
	}
}

func TestFig9Shape(t *testing.T) {
	tb, err := Fig9(QuickFig9())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: ratio, Zipf, ZipfRev, Uniform, then +prio variants.
	scarce := tb.Rows[0] // smallest aggregator budget
	zipf := cell(t, tb, tb.Rows, 0, 1)
	zipfRev := cell(t, tb, tb.Rows, 0, 2)
	zipfPrio := cell(t, tb, tb.Rows, 0, 4)
	zipfRevPrio := cell(t, tb, tb.Rows, 0, 5)
	_ = scarce
	// Hot-first beats cold-first without prioritization (Fig. 9(a)).
	if zipf <= zipfRev {
		t.Fatalf("Zipf %.1f%% not above Zipf(rev) %.1f%% without prio:\n%s", zipf, zipfRev, tb.String())
	}
	// Prioritization rescues the reverse ordering dramatically (Fig. 9(b)).
	if zipfRevPrio < zipfRev+15 {
		t.Fatalf("prio lifts Zipf(rev) only %.1f%%→%.1f%%:\n%s", zipfRev, zipfRevPrio, tb.String())
	}
	if zipfPrio < zipf {
		t.Fatalf("prio hurts hot-first ordering (%.1f%%→%.1f%%):\n%s", zipf, zipfPrio, tb.String())
	}
	// With aggregators == keys, prioritization absorbs nearly everything
	// (without it, hash collisions cap occupancy near 1-1/e ≈ 63%% of bins,
	// which is exactly what the Uniform column shows).
	lastRow := len(tb.Rows) - 1
	if full := cell(t, tb, tb.Rows, lastRow, 4); full < 95 {
		t.Fatalf("ratio 1 with prioritization absorbs only %.1f%%:\n%s", full, tb.String())
	}
}

func TestFig10And11Shape(t *testing.T) {
	cfg := QuickFig10()
	tb, err := Fig10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Columns: volume, Spark, SHM, RDMA, ASK, gain. ASK's JCT is smallest.
	for r := range tb.Rows {
		for c := 1; c <= 3; c++ {
			if !durLess(t, tb.Rows[r][4], tb.Rows[r][c]) {
				t.Fatalf("ASK JCT not lowest in row %d:\n%s", r, tb.String())
			}
		}
	}
	tb11, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// ASK (row 3) mappers finish far earlier than Spark's (row 0).
	if !durLess(t, tb11.Rows[3][1], tb11.Rows[0][1]) {
		t.Fatalf("ASK mapper TCT not below Spark:\n%s", tb11.String())
	}
}

func TestFig12Shape(t *testing.T) {
	tb, err := Fig12(QuickFig12())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("models = %d", len(tb.Rows))
	}
	for r := range tb.Rows {
		askT := cell(t, tb, tb.Rows, r, 1)
		atp := cell(t, tb, tb.Rows, r, 2)
		swm := cell(t, tb, tb.Rows, r, 3)
		host := cell(t, tb, tb.Rows, r, 4)
		if host >= swm || host >= askT {
			t.Fatalf("%s: HostPS not the slowest:\n%s", tb.Rows[r][0], tb.String())
		}
		if r := askT / atp; r < 0.7 || r > 1.4 {
			t.Fatalf("ASK/ATP ratio %.2f not similar:\n%s", r, tb.String())
		}
		_ = swm
	}
}

func TestFig13Shape(t *testing.T) {
	tba, err := Fig13a(QuickFig13a())
	if err != nil {
		t.Fatal(err)
	}
	// NoAggr goodput ceiling (94.9%) exceeds ASK's (76.6%) once saturated.
	last := len(tba.Rows) - 1
	askGood := cell(t, tba, tba.Rows, last, 1)
	naGood := cell(t, tba, tba.Rows, last, 3)
	if askGood >= naGood {
		t.Fatalf("ASK goodput %.1f not below NoAggr %.1f at saturation:\n%s", askGood, naGood, tba.String())
	}
	if askGood < 50 {
		t.Fatalf("ASK goodput %.1f too low at 4 channels:\n%s", askGood, tba.String())
	}

	tbb, err := Fig13b(QuickFig13b())
	if err != nil {
		t.Fatal(err)
	}
	// ASK per-sender throughput stays ~flat; NoAggr decays ~1/N.
	ask1 := cell(t, tbb, tbb.Rows, 0, 1)
	askN := cell(t, tbb, tbb.Rows, len(tbb.Rows)-1, 1)
	na1 := cell(t, tbb, tbb.Rows, 0, 2)
	naN := cell(t, tbb, tbb.Rows, len(tbb.Rows)-1, 2)
	if askN < ask1*0.7 {
		t.Fatalf("ASK per-sender rate fell %.1f→%.1f:\n%s", ask1, askN, tbb.String())
	}
	if naN > na1*0.5 {
		t.Fatalf("NoAggr per-sender rate did not decay (%.1f→%.1f):\n%s", na1, naN, tbb.String())
	}
}

func TestAblations(t *testing.T) {
	swp, err := AblationSwap(QuickAblationSwap())
	if err != nil {
		t.Fatal(err)
	}
	// The ablation's story: some threshold beats no prioritization (too
	// aggressive thrashes, too lazy converges to off — a sweet spot exists).
	off := cell(t, swp, swp.Rows, 0, 1)
	best := off
	for r := 1; r < len(swp.Rows); r++ {
		if v := cell(t, swp, swp.Rows, r, 1); v > best {
			best = v
		}
	}
	if best <= off {
		t.Fatalf("no swap threshold beats prioritization-off (%.1f vs %.1f):\n%s", best, off, swp.String())
	}

	win, err := AblationWindow(QuickAblationWindow())
	if err != nil {
		t.Fatal(err)
	}
	// Larger windows sustain higher throughput under loss.
	small := cell(t, win, win.Rows, 0, 3)
	large := cell(t, win, win.Rows, len(win.Rows)-1, 3)
	if large < small {
		t.Fatalf("throughput fell with larger window:\n%s", win.String())
	}

	med, err := AblationMedium(QuickAblationMedium())
	if err != nil {
		t.Fatal(err)
	}
	// m=0 (no medium groups) bypasses far more than m=2.
	none := cell(t, med, med.Rows, 0, 3)
	m2 := cell(t, med, med.Rows, 1, 3)
	if m2 >= none {
		t.Fatalf("medium groups do not reduce bypass (%.1f vs %.1f):\n%s", m2, none, med.String())
	}

	ccTab, err := AblationCongestion(QuickAblationCongestion())
	if err != nil {
		t.Fatal(err)
	}
	offRatio := cell(t, ccTab, ccTab.Rows, 0, 1)
	onRatio := cell(t, ccTab, ccTab.Rows, 1, 1)
	if onRatio > offRatio/2 {
		t.Fatalf("congestion control did not tame incast (%.2f vs %.2f):\n%s", onRatio, offRatio, ccTab.String())
	}
}

func TestRegistry(t *testing.T) {
	if len(All()) != 22 {
		t.Fatalf("registry has %d experiments", len(All()))
	}
	if _, err := ByName("fig9"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("tenancy"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("scenarios"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("chaos"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("fabric-chaos"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("corruption"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("scaling"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	for _, r := range All() {
		if r.Name == "" || r.Desc == "" || r.Quick == nil || r.Full == nil {
			t.Fatalf("incomplete runner %+v", r)
		}
	}
}

func TestMultiRackShape(t *testing.T) {
	tb, err := MultiRack(QuickMultiRack())
	if err != nil {
		t.Fatal(err)
	}
	// Absorption falls monotonically as senders move off-rack; residue
	// rises to take up the slack.
	first := cell(t, tb, tb.Rows, 0, 1)
	last := cell(t, tb, tb.Rows, len(tb.Rows)-1, 1)
	if first < 90 {
		t.Fatalf("all-local absorption %.1f%% too low:\n%s", first, tb.String())
	}
	if last > 5 {
		t.Fatalf("all-remote absorption %.1f%% should be ~0:\n%s", last, tb.String())
	}
	for r := 0; r < len(tb.Rows); r++ {
		agg := cell(t, tb, tb.Rows, r, 1)
		res := cell(t, tb, tb.Rows, r, 2)
		if agg+res < 95 || agg+res > 105 {
			t.Fatalf("row %d: absorption %.1f + residue %.1f ≉ 100:\n%s", r, agg, res, tb.String())
		}
	}
}

// TestScalingShape runs the quick shard sweep with no wall clock
// installed: serial equivalence is enforced inside Scaling (any
// divergence errors out), the wall columns degrade to "-", and the
// structural counters prove the sharded rows actually ran the parallel
// scheduler.
func TestScalingShape(t *testing.T) {
	cfg := QuickScaling()
	tb, err := Scaling(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * len(cfg.Shards)
	if len(tb.Rows) != want {
		t.Fatalf("scaling table has %d rows, want %d:\n%s", len(tb.Rows), want, tb.String())
	}
	for r, row := range tb.Rows {
		if row[3] != "-" || row[4] != "-" {
			t.Fatalf("row %d: wall columns %q/%q without an installed clock:\n%s", r, row[3], row[4], tb.String())
		}
		shards := cell(t, tb, tb.Rows, r, 1)
		injects := cell(t, tb, tb.Rows, r, 8)
		if shards > 1 && injects == 0 {
			t.Fatalf("row %d: sharded run drained no mailbox injects:\n%s", r, tb.String())
		}
		if shards == 1 && injects != 0 {
			t.Fatalf("row %d: serial baseline reports injects:\n%s", r, tb.String())
		}
		// Virtual elapsed must be byte-identical down each topology block
		// (Scaling itself enforces the underlying values; this pins the
		// printed column too).
		block := (r / len(cfg.Shards)) * len(cfg.Shards)
		if row[9] != tb.Rows[block][9] {
			t.Fatalf("row %d: virtual elapsed %q differs from its serial baseline %q", r, row[9], tb.Rows[block][9])
		}
	}
}

func TestCorruptionShape(t *testing.T) {
	tb, err := Corruption(QuickCorruption())
	if err != nil {
		t.Fatal(err)
	}
	// Columns: corrupt-prob, elapsed, x clean, Mtuple/s, goodput-Gbps,
	// corrupted, sw-drop, host-drop, retransmits, exact.
	if len(tb.Rows) != 3 {
		t.Fatalf("expected 3 sweep rows:\n%s", tb.String())
	}
	if c := cell(t, tb, tb.Rows, 0, 5); c != 0 {
		t.Fatalf("clean run corrupted %v frames:\n%s", c, tb.String())
	}
	// Damage must grow with the probability, and the heaviest row must show
	// the whole pipeline: corrupted frames, quarantine drops at switch or
	// host, and the retransmissions that repaired them.
	prev := -1.0
	for r := range tb.Rows {
		c := cell(t, tb, tb.Rows, r, 5)
		if c < prev {
			t.Fatalf("corrupted frames not monotone in probability:\n%s", tb.String())
		}
		prev = c
	}
	last := len(tb.Rows) - 1
	if cell(t, tb, tb.Rows, last, 5) == 0 {
		t.Fatalf("1e-3 sweep corrupted nothing:\n%s", tb.String())
	}
	if cell(t, tb, tb.Rows, last, 6)+cell(t, tb, tb.Rows, last, 7) == 0 {
		t.Fatalf("1e-3 sweep quarantined nothing:\n%s", tb.String())
	}
	if cell(t, tb, tb.Rows, last, 8) == 0 {
		t.Fatalf("1e-3 sweep retransmitted nothing:\n%s", tb.String())
	}
	if slow := cell(t, tb, tb.Rows, last, 2); slow < 1.0 {
		t.Fatalf("heavy corruption ran faster than clean (%v):\n%s", slow, tb.String())
	}
}
