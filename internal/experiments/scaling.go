package experiments

// Shard-scaling study for the conservative parallel DES (DESIGN.md
// "Parallel DES"): the same fixed workload run at every requested shard
// count on both partitionable fabrics, verifying the determinism contract
// as it measures — a sharded run whose results differ from the serial
// golden by a byte fails the experiment rather than reporting a number for
// a broken scheduler.
//
// The table's structural columns (virtual elapsed, window and mailbox
// counters) are fully deterministic. Wall-clock columns (run seconds,
// speedup, parallel efficiency) need a real clock, which this package is
// forbidden to read (simdeterminism); the harness that owns wall time —
// cmd/askbench, the root-package benchmarks — injects one via SetWallClock,
// and without it those columns report "-". Speedup is serial wall time over
// sharded wall time; efficiency divides that by the shard count. On a
// single-CPU host (GOMAXPROCS=1) the honest expectation is speedup ≈ 1× or
// slightly below: the lanes only interleave, and the windows add barrier
// overhead. The scheduler-structure columns still prove the partition
// exists and carries the traffic.

import (
	"fmt"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// wallClock, when installed, returns monotonically increasing wall time.
// It lives behind a setter so the deterministic experiment code never
// touches time.Now itself; only wall-clock-owning harnesses install it.
var wallClock func() time.Duration

// SetWallClock installs the wall-time source used for the scaling study's
// speedup columns (e.g. a time.Since closure). Pass nil to uninstall.
// Callers in deterministic packages must not install one — wall readings
// make the scaling table's bytes machine-dependent, which is exactly what
// this package's other experiments promise never to be.
func SetWallClock(f func() time.Duration) { wallClock = f }

// ScalingConfig parameterizes the shard-scaling sweep.
type ScalingConfig struct {
	// Shards lists the shard counts to sweep; 1 runs the exact serial code
	// path and is the baseline wall measurement.
	Shards []int
	// Racks/HostsPerRack size the two-tier fabric; one sender per non-receiver
	// rack keeps every TOR→core cut busy.
	Racks        int
	HostsPerRack int
	// Spines/Leaves/HostsPerLeaf size the fat-tree; one sender per
	// non-receiver leaf keeps the leaf↔spine mesh busy.
	Spines       int
	Leaves       int
	HostsPerLeaf int
	TuplesPerSender int64
	Distinct        int
	Seed            int64
}

// DefaultScaling is the benchmark-scale preset.
func DefaultScaling() ScalingConfig {
	return ScalingConfig{
		Shards: []int{1, 2, 4, 8},
		Racks:  8, HostsPerRack: 2,
		Spines: 2, Leaves: 8, HostsPerLeaf: 2,
		TuplesPerSender: 200_000, Distinct: 4096, Seed: 1,
	}
}

// QuickScaling is the test-scale preset.
func QuickScaling() ScalingConfig {
	return ScalingConfig{
		Shards: []int{1, 2, 4},
		Racks:  4, HostsPerRack: 2,
		Spines: 2, Leaves: 4, HostsPerLeaf: 2,
		TuplesPerSender: 10_000, Distinct: 512, Seed: 1,
	}
}

// scalingRun is one measured point: the workload's outcome plus the shard
// scheduler's structural counters.
type scalingRun struct {
	res     *ask.TaskResult
	virtual sim.Time
	stats   sim.ShardGroupStats
	lanes   int
	wall    time.Duration // zero when no wall clock is installed
}

// timeRun wraps f with the injected wall clock (zero duration without one).
func timeRun(f func() (*ask.TaskResult, sim.Time, sim.ShardGroupStats, int, error)) (scalingRun, error) {
	var start time.Duration
	if wallClock != nil {
		start = wallClock()
	}
	res, virtual, st, lanes, err := f()
	var run scalingRun
	if err != nil {
		return run, err
	}
	run = scalingRun{res: res, virtual: virtual, stats: st, lanes: lanes}
	if wallClock != nil {
		run.wall = wallClock() - start
	}
	return run, nil
}

// scalingMultiRack runs the two-tier workload at the given shard count.
func scalingMultiRack(cfg ScalingConfig, shards int) (*ask.TaskResult, sim.Time, sim.ShardGroupStats, int, error) {
	opts := ask.MultiRackOptions{
		Racks: cfg.Racks, HostsPerRack: cfg.HostsPerRack, Seed: cfg.Seed, Shards: shards,
	}
	mc, err := ask.NewMultiRackCluster(opts)
	if err != nil {
		return nil, 0, sim.ShardGroupStats{}, 0, err
	}
	receiver := opts.HostAt(0, 0)
	var senders []core.HostID
	streams := make(map[core.HostID]core.Stream)
	for r := 1; r < cfg.Racks; r++ {
		h := opts.HostAt(r, 0)
		senders = append(senders, h)
		streams[h] = workload.Uniform(cfg.Distinct, cfg.TuplesPerSender, cfg.Seed+int64(r)).Stream()
	}
	res, err := mc.Aggregate(core.TaskSpec{ID: 1, Receiver: receiver, Senders: senders, Op: core.OpSum}, streams)
	if err != nil {
		return nil, 0, sim.ShardGroupStats{}, 0, err
	}
	var st sim.ShardGroupStats
	lanes := 0
	if g := mc.Net.Group(); g != nil {
		st, lanes = g.Stats(), g.Lanes()
	}
	return res, mc.Sim.Now(), st, lanes, nil
}

// scalingFatTree runs the spine/leaf workload at the given shard count.
func scalingFatTree(cfg ScalingConfig, shards int) (*ask.TaskResult, sim.Time, sim.ShardGroupStats, int, error) {
	opts := ask.FatTreeOptions{
		Spines: cfg.Spines, Leaves: cfg.Leaves, HostsPerLeaf: cfg.HostsPerLeaf,
		Seed: cfg.Seed, Shards: shards,
	}
	fc, err := ask.NewFatTreeCluster(opts)
	if err != nil {
		return nil, 0, sim.ShardGroupStats{}, 0, err
	}
	receiver := opts.HostAt(0, 0)
	var senders []core.HostID
	streams := make(map[core.HostID]core.Stream)
	for l := 1; l < cfg.Leaves; l++ {
		h := opts.HostAt(l, 0)
		senders = append(senders, h)
		streams[h] = workload.Uniform(cfg.Distinct, cfg.TuplesPerSender, cfg.Seed+int64(l)).Stream()
	}
	res, err := fc.Aggregate(core.TaskSpec{ID: 1, Receiver: receiver, Senders: senders, Op: core.OpSum}, streams)
	if err != nil {
		return nil, 0, sim.ShardGroupStats{}, 0, err
	}
	var st sim.ShardGroupStats
	lanes := 0
	if g := fc.Net.Group(); g != nil {
		st, lanes = g.Stats(), g.Lanes()
	}
	return res, fc.Sim.Now(), st, lanes, nil
}

// ScalingPoint runs one topology's scaling workload at one shard count and
// discards the outcome — the per-shard-count benchmark hook (BENCH_*.json's
// MultiRackShards/FatTreeShards entries time it from the root package).
func ScalingPoint(topology string, cfg ScalingConfig, shards int) error {
	var err error
	switch topology {
	case "multirack":
		_, _, _, _, err = scalingMultiRack(cfg, shards)
	case "fattree":
		_, _, _, _, err = scalingFatTree(cfg, shards)
	default:
		err = fmt.Errorf("experiments: unknown scaling topology %q", topology)
	}
	return err
}

// Scaling sweeps shard counts over both partitionable topologies. Every
// sharded run is checked byte-for-byte against its serial baseline (result
// map, receiver/switch counters, virtual elapsed, final clock) before its
// measurement is reported.
func Scaling(cfg ScalingConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Parallel DES: shard-scaling sweep (serial-equivalence enforced per row)",
		Note: fmt.Sprintf("multirack %d racks, fattree %d×%d, %d tuples/sender; wall columns need a harness clock (askbench, make bench)",
			cfg.Racks, cfg.Spines, cfg.Leaves, cfg.TuplesPerSender),
		Header: []string{"topology", "shards", "lanes", "wall s", "speedup", "efficiency %",
			"parallel windows", "inline windows", "injects", "virtual elapsed"},
	}
	for _, topo := range []struct {
		name string
		run  func(int) (*ask.TaskResult, sim.Time, sim.ShardGroupStats, int, error)
	}{
		{"multirack", func(n int) (*ask.TaskResult, sim.Time, sim.ShardGroupStats, int, error) {
			return scalingMultiRack(cfg, n)
		}},
		{"fattree", func(n int) (*ask.TaskResult, sim.Time, sim.ShardGroupStats, int, error) {
			return scalingFatTree(cfg, n)
		}},
	} {
		var base scalingRun
		for i, shards := range cfg.Shards {
			run, err := timeRun(func() (*ask.TaskResult, sim.Time, sim.ShardGroupStats, int, error) {
				return topo.run(shards)
			})
			if err != nil {
				return nil, fmt.Errorf("scaling %s shards=%d: %w", topo.name, shards, err)
			}
			if i == 0 {
				if shards > 1 {
					return nil, fmt.Errorf("scaling %s: Shards[0] must be the serial baseline (<= 1), got %d", topo.name, shards)
				}
				base = run
			} else {
				if !run.res.Result.Equal(base.res.Result) {
					return nil, fmt.Errorf("scaling %s shards=%d: result diverged from serial: %s",
						topo.name, shards, run.res.Result.Diff(base.res.Result, 5))
				}
				if run.res.Elapsed != base.res.Elapsed || run.virtual != base.virtual {
					return nil, fmt.Errorf("scaling %s shards=%d: virtual time diverged from serial (%v vs %v)",
						topo.name, shards, run.res.Elapsed, base.res.Elapsed)
				}
				if run.res.Recv != base.res.Recv || run.res.Switch != base.res.Switch {
					return nil, fmt.Errorf("scaling %s shards=%d: counters diverged from serial", topo.name, shards)
				}
			}
			wall, speedup, eff := "-", "-", "-"
			if wallClock != nil && run.wall > 0 {
				wall = fmt.Sprintf("%.3f", run.wall.Seconds())
				if i > 0 && base.wall > 0 {
					s := base.wall.Seconds() / run.wall.Seconds()
					speedup = fmt.Sprintf("%.2fx", s)
					eff = fmt.Sprintf("%.0f", 100*s/float64(run.lanes))
				}
			}
			t.AddRow(topo.name, shards, run.lanes, wall, speedup, eff,
				run.stats.ParallelWindows, run.stats.InlineWindows, run.stats.Injects,
				run.res.Elapsed.Sub(0))
		}
	}
	return t, nil
}
