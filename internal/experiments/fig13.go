package experiments

import (
	"fmt"

	"repro/ask"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig13aConfig parameterizes the bandwidth-overhead study (Fig. 13(a)):
// goodput and wire overhead of ASK vs. pure NoAggr transmission between one
// sender and one receiver, sweeping data channels.
type Fig13aConfig struct {
	Channels []int
	Tuples   int64
	Distinct int
	Seed     int64
}

// DefaultFig13a is the benchmark-scale preset.
func DefaultFig13a() Fig13aConfig {
	return Fig13aConfig{Channels: []int{1, 2, 4, 8}, Tuples: 8_000_000, Distinct: 8192, Seed: 1}
}

// QuickFig13a is the test-scale preset.
func QuickFig13a() Fig13aConfig {
	return Fig13aConfig{Channels: []int{1, 4}, Tuples: 4_000_000, Distinct: 2048, Seed: 1}
}

// Fig13a reports goodput (filled bar) and total wire rate (bar outline) per
// channel count for both systems.
func Fig13a(cfg Fig13aConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig. 13(a): aggregation throughput and bandwidth overhead, 1 sender",
		Note:   "ASK: 32-slot 334 B packets (76.6% goodput ceiling); NoAggr: 1500 B MTU (94.9%)",
		Header: []string{"channels", "ASK good Gbps", "ASK wire Gbps", "NoAggr good Gbps", "NoAggr wire Gbps"},
	}
	for _, ch := range cfg.Channels {
		askGood, askWire, err := fig13ASKRun(cfg.Tuples, cfg.Distinct, ch, cfg.Seed)
		if err != nil {
			return nil, err
		}
		// NoAggr ships the same application volume (8 B per tuple).
		na := baselines.RunNoAggr(baselines.NoAggrConfig{
			Senders:           1,
			ChannelsPerSender: ch,
			BytesPerSender:    cfg.Tuples * 8,
			Seed:              cfg.Seed,
		})
		t.AddRow(ch, askGood, askWire, na.GoodputGbps, na.WireGbps)
	}
	return t, nil
}

// fig13ASKRun measures ASK sender-side goodput/wire rate for one channel
// count, striping the workload across one task per channel.
func fig13ASKRun(tuples int64, distinct, channels int, seed int64) (good, wire float64, err error) {
	c := core.DefaultConfig()
	c.DataChannels = channels
	c.MediumGroups = 0
	c.MediumSegs = 0
	c.ShadowCopy = false
	c.SwapThreshold = 0
	rows := (c.AARows / channels) &^ 1
	run, err := runParallelTasks(
		ask.Options{Hosts: 2, Config: c, Seed: seed},
		channels, rows,
		[]core.HostID{1}, 0,
		func(task int, _ core.HostID) workload.Spec {
			return balancedUniformRows(shortLayout(c.NumAAs), distinct, tuples/int64(channels), seed+int64(task), rows)
		})
	if err != nil {
		return 0, 0, fmt.Errorf("fig13a ch=%d: %w", channels, err)
	}
	up := run.Cluster.Net.Uplink(1).Stats()
	return stats.Gbps(up.TxGoodBytes, run.Elapsed), stats.Gbps(up.TxWireBytes, run.Elapsed), nil
}

// Fig13bConfig parameterizes the scalability study (Fig. 13(b)): average
// per-sender throughput as the sender count grows.
type Fig13bConfig struct {
	Senders         []int
	TuplesPerSender int64
	Distinct        int
	Seed            int64
}

// DefaultFig13b is the benchmark-scale preset.
func DefaultFig13b() Fig13bConfig {
	return Fig13bConfig{Senders: []int{1, 2, 4, 8}, TuplesPerSender: 2_000_000, Distinct: 4096, Seed: 1}
}

// QuickFig13b is the test-scale preset.
func QuickFig13b() Fig13bConfig {
	return Fig13bConfig{Senders: []int{1, 4}, TuplesPerSender: 400_000, Distinct: 1024, Seed: 1}
}

// Fig13b reports per-sender goodput: ASK stays flat (the switch absorbs the
// fan-in) while NoAggr decays as 1/N (the receiver link is the bottleneck).
func Fig13b(cfg Fig13bConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig. 13(b): average per-sender throughput vs sender count",
		Header: []string{"senders", "ASK Gbps/sender", "NoAggr Gbps/sender"},
	}
	for _, n := range cfg.Senders {
		askRate, err := fig13bASKRun(cfg, n)
		if err != nil {
			return nil, err
		}
		na := baselines.RunNoAggr(baselines.NoAggrConfig{
			Senders:           n,
			ChannelsPerSender: 4,
			BytesPerSender:    cfg.TuplesPerSender * 8,
			Seed:              cfg.Seed,
		})
		t.AddRow(n, askRate, na.PerSenderGoodbps)
	}
	return t, nil
}

func fig13bASKRun(cfg Fig13bConfig, senders int) (float64, error) {
	c := core.DefaultConfig()
	c.MediumGroups = 0
	c.MediumSegs = 0
	c.ShadowCopy = false
	c.SwapThreshold = 0
	hosts := make([]core.HostID, senders)
	for i := range hosts {
		hosts[i] = core.HostID(i + 1)
	}
	// Four tasks stripe every sender's stream across its four channels.
	const k = 4
	rows := (c.AARows / k) &^ 1
	run, err := runParallelTasks(
		ask.Options{Hosts: senders + 1, Config: c, Seed: cfg.Seed},
		k, rows, hosts, 0,
		func(task int, h core.HostID) workload.Spec {
			spec := balancedUniformRows(shortLayout(c.NumAAs), cfg.Distinct, cfg.TuplesPerSender/k, cfg.Seed+int64(task)*100+int64(h), rows)
			return spec
		})
	if err != nil {
		return 0, fmt.Errorf("fig13b n=%d: %w", senders, err)
	}
	var goodBytes int64
	for _, h := range hosts {
		goodBytes += run.Cluster.Net.Uplink(h).Stats().TxGoodBytes
	}
	return stats.Gbps(goodBytes, run.Elapsed) / float64(senders), nil
}
