package experiments

import "testing"

func TestTenancyFairnessShape(t *testing.T) {
	tb, err := TenancyFairness(QuickTenancy())
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance: per-tenant goodput within 5% of weight share whenever all
	// tenants are backlogged (last column is the max relative deviation).
	for r := range tb.Rows {
		if dev := cell(t, tb, tb.Rows, r, 5); dev > 5 {
			t.Fatalf("row %d (%s): goodput deviates %.2f%% from weight share, above 5%%:\n%s",
				r, tb.Rows[r][0], dev, tb.String())
		}
	}
}

func TestTenancyUtilizationShape(t *testing.T) {
	tb, err := TenancyUtilization(QuickTenancy())
	if err != nil {
		t.Fatal(err)
	}
	// Acceptance: with disjoint hot sets, the shared pool performs strictly
	// more aggregation per second than the single-tenant baseline (row 0),
	// without pinning more rows.
	base := cell(t, tb, tb.Rows, 0, 2)
	baseRows := cell(t, tb, tb.Rows, 0, 1)
	for r := 1; r < len(tb.Rows); r++ {
		if agg := cell(t, tb, tb.Rows, r, 2); agg <= base {
			t.Fatalf("row %d: aggregate absorbed %.2f Mt/s not above single-tenant baseline %.2f:\n%s",
				r, agg, base, tb.String())
		}
		if rows := cell(t, tb, tb.Rows, r, 1); rows > baseRows {
			t.Fatalf("row %d: pinned rows %.0f exceed the baseline %.0f:\n%s",
				r, rows, baseRows, tb.String())
		}
	}
}
