package experiments

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/training"
)

// Fig12Config parameterizes the distributed-training comparison (Fig. 12).
type Fig12Config struct {
	Workers int
	// GradScale divides the simulated gradient volume (see training.Options).
	GradScale int64
	Seed      int64
}

// DefaultFig12 is the benchmark-scale preset.
func DefaultFig12() Fig12Config { return Fig12Config{Workers: 8, GradScale: 64, Seed: 1} }

// QuickFig12 is the test-scale preset.
func QuickFig12() Fig12Config { return Fig12Config{Workers: 4, GradScale: 1024, Seed: 1} }

// Fig12 measures training throughput (images/s) of every zoo model under
// ASK's value-stream mode, ATP-like and SwitchML-like synchronous INA, and
// the host-only parameter server.
func Fig12(cfg Fig12Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig. 12: single-job training throughput (images/s)",
		Note:   fmt.Sprintf("%d workers, batch 32, PS architecture", cfg.Workers),
		Header: []string{"model", "ASK", "ATP", "SwitchML", "HostPS"},
	}
	systems := []training.System{training.SysASK, training.SysATP, training.SysSwitchML, training.SysHostPS}
	for _, m := range training.Models() {
		cells := []any{m.Name}
		for _, sys := range systems {
			rep, err := training.Train(m, sys, training.Options{
				Workers:   cfg.Workers,
				GradScale: cfg.GradScale,
				Seed:      cfg.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("fig12 %s/%v: %w", m.Name, sys, err)
			}
			cells = append(cells, rep.ImagesPerSec)
		}
		t.AddRow(cells...)
	}
	return t, nil
}
