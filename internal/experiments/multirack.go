package experiments

import (
	"fmt"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// MultiRackConfig parameterizes the §7 multi-rack study: how in-network
// absorption and completion time change as the task's senders move from the
// receiver's rack to remote racks (whose traffic bypasses the receiver's
// TOR and is aggregated at the host).
type MultiRackConfig struct {
	Racks           int
	HostsPerRack    int
	Senders         int
	TuplesPerSender int64
	Distinct        int
	Seed            int64
}

// DefaultMultiRack is the benchmark-scale preset.
func DefaultMultiRack() MultiRackConfig {
	return MultiRackConfig{Racks: 4, HostsPerRack: 4, Senders: 6, TuplesPerSender: 400_000, Distinct: 4096, Seed: 1}
}

// QuickMultiRack is the test-scale preset.
func QuickMultiRack() MultiRackConfig {
	return MultiRackConfig{Racks: 4, HostsPerRack: 4, Senders: 6, TuplesPerSender: 30_000, Distinct: 1024, Seed: 1}
}

// MultiRack sweeps the number of remote senders from 0 (all rack-local,
// full INA) to all-remote (pure host aggregation).
func MultiRack(cfg MultiRackConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Extension (§7): multi-rack deployment — remote senders bypass the receiver TOR",
		Note: fmt.Sprintf("%d racks × %d hosts, %d senders, %d tuples each",
			cfg.Racks, cfg.HostsPerRack, cfg.Senders, cfg.TuplesPerSender),
		Header: []string{"remote senders", "switch-aggregated %", "host residue %", "elapsed"},
	}
	for remote := 0; remote <= cfg.Senders; remote += 2 {
		opts := ask.MultiRackOptions{
			Racks:        cfg.Racks,
			HostsPerRack: cfg.HostsPerRack,
			Seed:         cfg.Seed,
		}
		mc, err := ask.NewMultiRackCluster(opts)
		if err != nil {
			return nil, err
		}
		receiver := opts.HostAt(0, 0)
		var senders []core.HostID
		for i := 0; i < cfg.Senders; i++ {
			if i < cfg.Senders-remote {
				// Rack-local sender (skipping the receiver's slot).
				senders = append(senders, opts.HostAt(0, 1+i%(cfg.HostsPerRack-1)))
			} else {
				senders = append(senders, opts.HostAt(1+i%(cfg.Racks-1), i%cfg.HostsPerRack))
			}
		}
		senders = dedupHosts(senders)
		streams := make(map[core.HostID]core.Stream)
		want := make(core.Result)
		for i, s := range senders {
			w := workload.Uniform(cfg.Distinct, cfg.TuplesPerSender, cfg.Seed+int64(i))
			streams[s] = w.Stream()
			want.Merge(w.Reference(core.OpSum), core.OpSum)
		}
		res, err := mc.Aggregate(core.TaskSpec{ID: 1, Receiver: receiver, Senders: senders, Op: core.OpSum}, streams)
		if err != nil {
			return nil, err
		}
		if !res.Result.Equal(want) {
			return nil, fmt.Errorf("multirack remote=%d: wrong result: %s", remote, res.Result.Diff(want, 5))
		}
		total := cfg.TuplesPerSender * int64(len(senders))
		t.AddRow(remote,
			100*float64(res.Switch.TuplesAggregated)/float64(total),
			100*float64(res.Recv.ResidueTuples)/float64(total),
			res.Elapsed.Sub(0))
	}
	return t, nil
}

// dedupHosts removes duplicate sender assignments (small sweeps can fold
// two slots onto one host).
func dedupHosts(in []core.HostID) []core.HostID {
	seen := make(map[core.HostID]bool)
	var out []core.HostID
	for _, h := range in {
		if !seen[h] {
			seen[h] = true
			out = append(out, h)
		}
	}
	return out
}
