package experiments

import (
	"fmt"
	"time"

	"repro/ask"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// ChaosConfig parameterizes the fault-injection study: every scenario of the
// standard chaos library runs against the same multi-sender aggregation task
// and must produce a result bit-identical to the fault-free golden run at the
// same seed, while the table reports what the fault cost (elapsed inflation,
// degraded-mode time, replay traffic, in-network work retained).
type ChaosConfig struct {
	// Senders is the number of sending hosts (receiver is host 0).
	Senders int
	// Distinct is the per-sender distinct-key count.
	Distinct int
	// Tuples is the per-sender stream length.
	Tuples int64
	Seed   int64
}

// DefaultChaos is the benchmark-scale preset: streams long enough that a
// switch outage spans several probe intervals, so silence detection (probe
// timeouts) engages as well as epoch detection.
func DefaultChaos() ChaosConfig {
	return ChaosConfig{Senders: 3, Distinct: 2048, Tuples: 300_000, Seed: 1}
}

// QuickChaos is the test-scale preset.
func QuickChaos() ChaosConfig {
	return ChaosConfig{Senders: 2, Distinct: 512, Tuples: 40_000, Seed: 1}
}

// chaosOptions is the cluster configuration every chaos run uses: the
// failover machinery on (which requires the shadow-copy prioritization off)
// and unbounded retries so faults stretch tasks instead of aborting them.
func chaosOptions(cfg ChaosConfig) ask.Options {
	c := core.DefaultConfig()
	c.ShadowCopy = false
	c.Failover = true
	// The chaos table reads its fault-cost columns (degraded time, replay
	// traffic) from the cluster telemetry registry, so every run carries one.
	return ask.Options{
		Hosts: cfg.Senders + 1, Config: c, Seed: cfg.Seed,
		Telemetry: telemetry.Config{Enabled: true},
	}
}

// chaosTask builds the task spec and per-sender streams (plus the reference
// aggregation) shared by the golden and every fault run.
func chaosTask(cfg ChaosConfig) (core.TaskSpec, map[core.HostID]core.Stream, core.Result) {
	spec := core.TaskSpec{ID: 1, Receiver: 0, Op: core.OpSum}
	streams := make(map[core.HostID]core.Stream, cfg.Senders)
	want := make(core.Result)
	for i := 0; i < cfg.Senders; i++ {
		h := core.HostID(i + 1)
		spec.Senders = append(spec.Senders, h)
		w := workload.Uniform(cfg.Distinct, cfg.Tuples, cfg.Seed+int64(h))
		streams[h] = w.Stream()
		want.Merge(w.Reference(core.OpSum), core.OpSum)
	}
	return spec, streams, want
}

// Chaos runs the fault-injection sweep. The first row is the golden
// (fault-free) run; each subsequent row is one scenario of the standard
// library, checked bit-identical against the golden result.
func Chaos(cfg ChaosConfig) (*stats.Table, error) {
	spec, streams, want := chaosTask(cfg)

	// Golden run: failover machinery armed, no faults injected. Its elapsed
	// time is the timing scale the scenarios use to land faults mid-task.
	golden, goldenCl, err := runAggregation(chaosOptions(cfg), spec, streams)
	if err != nil {
		return nil, err
	}
	if !golden.Result.Equal(want) {
		return nil, fmt.Errorf("chaos: golden run wrong: %s", golden.Result.Diff(want, 5))
	}
	scale := time.Duration(golden.Elapsed)

	t := &stats.Table{
		Title: "Chaos: fault injection vs fault-free golden run",
		Note: fmt.Sprintf("%d senders x %d tuples; every scenario must reproduce the golden result exactly; degraded = host-only time",
			cfg.Senders, cfg.Tuples),
		Header: []string{"scenario", "elapsed", "x golden", "exact", "degraded", "replays", "replay-merged", "sw-aggr", "events"},
	}
	goldenAgg := golden.Switch.TuplesAggregated
	t.AddRow("golden", time.Duration(golden.Elapsed), 1.0, true, time.Duration(0), int64(0), int64(0), goldenAgg, 0)
	_ = goldenCl

	for _, sc := range chaos.Scenarios(spec.ID, spec.Receiver, spec.Senders[0]) {
		cl, err := ask.NewCluster(chaosOptions(cfg))
		if err != nil {
			return nil, err
		}
		orch := chaos.New(cl)
		sc.Inject(orch, scale)
		// Streams are deterministic generators; rebuild them per run.
		_, runStreams, _ := chaosTask(cfg)
		res, err := cl.Aggregate(spec, runStreams)
		if err != nil {
			return nil, fmt.Errorf("chaos: scenario %s: %w", sc.Name, err)
		}
		exact := res.Result.Equal(want)
		if !exact {
			return nil, fmt.Errorf("chaos: scenario %s diverged from golden: %s",
				sc.Name, res.Result.Diff(want, 5))
		}
		// Fault-cost columns come straight off the cluster registry: the
		// per-host hostd.* counters are summed across the label dimension
		// rather than hand-carried through the daemons' Stats accessors.
		reg := cl.Tel.Registry
		replays := reg.Total("hostd.replays_sent")
		replayMerged := reg.Total("hostd.replay_tuples_merged")
		// Degraded-time: the longest closed per-daemon interval on the
		// registry; a task-only (revocation) degradation is tracked by the
		// receiver task itself, so take whichever is larger.
		degraded := time.Duration(reg.Max("hostd.degraded_time_ns"))
		if res.Degraded > degraded {
			degraded = res.Degraded
		}
		t.AddRow(sc.Name,
			time.Duration(res.Elapsed),
			float64(res.Elapsed)/float64(golden.Elapsed),
			exact,
			degraded,
			replays,
			replayMerged,
			res.Switch.TuplesAggregated,
			len(orch.Log()))
	}
	return t, nil
}
