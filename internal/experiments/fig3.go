package experiments

import (
	"repro/ask"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig3Config parameterizes the single-machine AKV/s comparison (Fig. 3):
// vanilla Spark vs. the strawman single-tuple INA vs. full multi-key ASK.
type Fig3Config struct {
	// Tuples is the stream length (paper: enough to saturate; scaled).
	Tuples int64
	// Distinct keys; the strawman assumes all fit in switch memory (§2.2.2
	// assumption 3), so the region is sized to hold them.
	Distinct int
	// Cores is the x-axis: CPU cores devoted to aggregation. For the INA
	// systems, cores map to data channels (one DPDK thread per channel).
	Cores []int
	Seed  int64
}

// DefaultFig3 is the benchmark-scale preset.
func DefaultFig3() Fig3Config {
	return Fig3Config{Tuples: 2_000_000, Distinct: 2048, Cores: []int{1, 2, 4, 8, 16}, Seed: 1}
}

// QuickFig3 is the test-scale preset.
func QuickFig3() Fig3Config {
	return Fig3Config{Tuples: 150_000, Distinct: 2048, Cores: []int{1, 4}, Seed: 1}
}

// Fig3 measures aggregated key-value tuples per second on a single machine
// for the three systems of Fig. 3. Spark's curve is the calibrated
// analytical model (cpumodel.SparkAggregateRate); the strawman and ASK
// curves are measured on the simulated data path.
func Fig3(cfg Fig3Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig. 3: single-machine aggregation throughput (AKV/s)",
		Note:   "strawman = 1 tuple/packet INA (§2.2.2); ASK = 32-slot multi-key packets",
		Header: []string{"cores", "Spark AKV/s", "Strawman AKV/s", "ASK AKV/s", "ASK/Spark"},
	}
	for _, cores := range cfg.Cores {
		spark := cpumodel.SparkAggregateRate(cores)

		straw, err := fig3Run(cfg, cores, true)
		if err != nil {
			return nil, err
		}
		full, err := fig3Run(cfg, cores, false)
		if err != nil {
			return nil, err
		}
		t.AddRow(cores, spark, straw, full, full/spark)
	}
	return t, nil
}

// fig3Run measures one INA configuration at a core count. The strawman's
// single-tuple packets make a run 32× more packet-events than ASK's, so it
// measures a proportionally shorter stream (AKV/s is a rate; both systems
// run long past pipeline fill).
func fig3Run(cfg Fig3Config, cores int, strawman bool) (float64, error) {
	c := core.DefaultConfig()
	c.DataChannels = cores
	c.ShadowCopy = false
	c.SwapThreshold = 0
	if strawman {
		// One tuple slot per packet, no medium groups, every key resident.
		c.NumAAs = 1
		c.MediumGroups = 0
		c.MediumSegs = 0
	} else {
		// All-short-key layout to match the 4-byte-key microbenchmark.
		c.MediumGroups = 0
		c.MediumSegs = 0
	}
	// Maximal per-task regions: the paper's microbenchmark assumes every
	// key fits an aggregator (§2.2.2), so rows are sized to keep row-hash
	// collisions negligible.
	rows := (c.AARows / cores) &^ 1
	tuples := cfg.Tuples
	if strawman {
		tuples /= 8
	}
	// One task per data channel: cores channels aggregate in parallel.
	run, err := runParallelTasks(
		ask.Options{Hosts: 1, Config: c, Seed: cfg.Seed},
		cores, rows,
		[]core.HostID{0}, 0,
		func(task int, _ core.HostID) workload.Spec {
			spec := balancedUniformRows(shortLayout(c.NumAAs), cfg.Distinct, tuples/int64(cores), cfg.Seed+int64(task), rows)
			spec.Seed = cfg.Seed + int64(task)
			return spec
		})
	if err != nil {
		return 0, err
	}
	return akvPerSec(tuples/int64(cores)*int64(cores), run.Elapsed), nil
}

func nextPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}
