package experiments

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/tenancy"
	"repro/internal/workload"
)

// TenancyConfig parameterizes the multi-tenant fabric study: concurrent
// backlogged tenants share one spine/leaf fabric's AA pool under weighted
// allocation, and we measure how fairly the in-network aggregation capacity
// tracks the weights, and how much more work the pool does than under the
// paper's one-job-owns-the-switch model.
//
// Fairness is measured the way the allocator actually shares the pool:
// admission control over fixed-size tasks. Every task is identical
// (RowsPerTask rows, one sender, the same hot-set shape), so per-task
// goodput is statistically equal and a tenant's aggregate goodput is set by
// how many tasks its quota admits — which is what the weights apportion.
// Tenants submit one task beyond their quota to exercise the typed OVERLOAD
// rejection.
type TenancyConfig struct {
	Spines int
	// Leaves includes the receiver leaf: all receivers sit on leaf 0 and
	// tasks' senders round-robin over leaves 1..Leaves-1 (needs ≥ 2).
	Leaves int
	// TuplesPerSender is each sender's stream length.
	TuplesPerSender int64
	// TaskKeys is each fairness task's hot-set size, small enough to fit the
	// narrowest tenant's partition band so every admitted task aggregates at
	// full absorption and goodput is set purely by admitted capacity.
	TaskKeys int
	// Pace is the inter-arrival gap of each fairness sender's timed stream.
	// Senders are paced below the wire capacity of the narrowest partition
	// band (a narrow band fills fewer packet slots, §3.2.3, so a backlogged
	// narrow sender is wire-limited): the stream's rate, not its band width,
	// then sets per-task goodput, and a tenant's aggregate goodput is purely
	// its admitted capacity.
	Pace time.Duration
	// KeysPerRow sets each utilization tenant's hot set to KeysPerRow × its
	// region rows: more keys than rows, so absorption is limited by the AA
	// rows rather than the offered load.
	KeysPerRow int
	// RowsPerTask is the fixed region size of every fairness task; tenant
	// quotas are divided into tasks of this size.
	RowsPerTask int
	// RowFrac sets each tenant's region to quota/RowFrac rows in the
	// utilization sweep, keeping total pinned rows constant across tenant
	// counts.
	RowFrac int
	Seed    int64
}

// DefaultTenancy is the benchmark-scale preset.
func DefaultTenancy() TenancyConfig {
	return TenancyConfig{Spines: 2, Leaves: 3, TuplesPerSender: 100_000, TaskKeys: 256, Pace: 250 * time.Nanosecond, KeysPerRow: 4, RowsPerTask: 2048, RowFrac: 8, Seed: 1}
}

// QuickTenancy is the test-scale preset.
func QuickTenancy() TenancyConfig {
	return TenancyConfig{Spines: 2, Leaves: 3, TuplesPerSender: 20_000, TaskKeys: 256, Pace: 250 * time.Nanosecond, KeysPerRow: 4, RowsPerTask: 2048, RowFrac: 8, Seed: 1}
}

// tenantRun is one tenant's outcome in a concurrent multi-tenant run.
type tenantRun struct {
	weight   int
	rows     int
	absorbed int64 // tuples the fabric aggregated for this tenant
	offered  int64
	elapsed  time.Duration
}

// goodput is the rate at which the fabric aggregated on the tenant's behalf
// — the share of the contended AA capacity the tenant actually received.
func (r tenantRun) goodput() float64 {
	return float64(r.absorbed) / r.elapsed.Seconds()
}

// runTenants drives one concurrent run: len(weights) tenants, each with a
// receiver on leaf 0 and weight-many senders on every other leaf, all
// interleaved on the sim clock. Every result is verified exact before the
// stats are trusted.
func runTenants(cfg TenancyConfig, weights []int) ([]tenantRun, error) {
	k := len(weights)
	wsum := 0
	for _, w := range weights {
		wsum += w
	}
	hostsPerLeaf := k
	if wsum > hostsPerLeaf {
		hostsPerLeaf = wsum
	}
	opts := ask.FatTreeOptions{
		Spines: cfg.Spines, Leaves: cfg.Leaves, HostsPerLeaf: hostsPerLeaf,
		Seed: cfg.Seed,
	}
	for i, w := range weights {
		opts.Tenants = append(opts.Tenants, tenancy.TenantSpec{ID: core.TenantID(i + 1), Weight: w})
	}
	fc, err := ask.NewFatTreeCluster(opts)
	if err != nil {
		return nil, err
	}
	type job struct {
		spec core.TaskSpec
		want core.Result
		pt   *ask.FatTreePendingTask
	}
	jobs := make([]job, k)
	slot := 0 // next sender slot on each sender leaf (layout identical per leaf)
	for i, w := range weights {
		tn := core.TenantID(i + 1)
		rows := fc.Tenancy.Quota(tn) / cfg.RowFrac
		rows &^= 1
		spec := core.TaskSpec{
			ID: core.MakeTaskID(tn, uint32(i+1)), Receiver: opts.HostAt(0, i),
			Op: core.OpSum, Rows: rows,
		}
		streams := make(map[core.HostID]core.Stream)
		want := make(core.Result)
		distinct := cfg.KeysPerRow * rows
		for l := 1; l < cfg.Leaves; l++ {
			for s := 0; s < w; s++ {
				h := opts.HostAt(l, slot+s)
				spec.Senders = append(spec.Senders, h)
				wl := workload.Uniform(distinct, cfg.TuplesPerSender, cfg.Seed+int64(i*cfg.Leaves*wsum+l*wsum+s))
				streams[h] = wl.Stream()
				want.Merge(wl.Reference(core.OpSum), core.OpSum)
			}
		}
		slot += w
		pt, err := fc.StartTask(spec, streams)
		if err != nil {
			return nil, fmt.Errorf("tenancy: tenant %d (weight %d): %w", tn, w, err)
		}
		jobs[i] = job{spec: spec, want: want, pt: pt}
	}
	fc.Sim.Run(0)

	runs := make([]tenantRun, k)
	for i, j := range jobs {
		res, err := j.pt.Get()
		if err != nil {
			return nil, fmt.Errorf("tenancy: tenant %d: %w", i+1, err)
		}
		if !res.Result.Equal(j.want) {
			return nil, fmt.Errorf("tenancy: tenant %d: wrong result: %s", i+1, res.Result.Diff(j.want, 5))
		}
		st := fc.TaskSwitchStats(j.spec.ID)
		runs[i] = tenantRun{
			weight:   weights[i],
			rows:     j.spec.Rows,
			absorbed: st.TuplesAggregated,
			offered:  cfg.TuplesPerSender * int64(len(j.spec.Senders)),
			elapsed:  time.Duration(res.Elapsed),
		}
	}
	return runs, nil
}

// tenantFairRun aggregates one tenant's admitted tasks in the fairness run.
type tenantFairRun struct {
	weight   int
	admitted int
	rejected int
	goodputV float64 // summed per-task absorbed tuple rate
}

func (r tenantFairRun) goodput() float64 { return r.goodputV }

// runTenantTasks fills every tenant's quota with identical fixed-size tasks
// (admission decides how many fit), submits one more to confirm the typed
// OVERLOAD rejection, and runs all admitted tasks concurrently.
func runTenantTasks(cfg TenancyConfig, weights []int) ([]tenantFairRun, error) {
	k := len(weights)
	type taskPlan struct {
		tenant int // index into weights
		spec   core.TaskSpec
		want   core.Result
		pt     *ask.FatTreePendingTask
	}

	// First pass sizes the cluster: admitted counts follow from the quotas,
	// which depend only on weights and the config.
	probe, err := tenancy.NewManager(tenantSpecs(weights), core.DefaultConfig())
	if err != nil {
		return nil, err
	}
	total := 0
	admitted := make([]int, k)
	for i := range weights {
		admitted[i] = probe.Quota(core.TenantID(i+1)) / cfg.RowsPerTask
		total += admitted[i]
	}
	senderLeaves := cfg.Leaves - 1
	if senderLeaves < 1 {
		return nil, fmt.Errorf("tenancy: fairness needs Leaves >= 2, got %d", cfg.Leaves)
	}
	perLeaf := (total + senderLeaves - 1) / senderLeaves
	hostsPerLeaf := total // receiver slots on leaf 0
	if perLeaf > hostsPerLeaf {
		hostsPerLeaf = perLeaf
	}

	opts := ask.FatTreeOptions{
		Spines: cfg.Spines, Leaves: cfg.Leaves, HostsPerLeaf: hostsPerLeaf,
		Seed: cfg.Seed, Tenants: tenantSpecs(weights),
	}
	fc, err := ask.NewFatTreeCluster(opts)
	if err != nil {
		return nil, err
	}

	var plans []*taskPlan
	over := make([]*ask.FatTreePendingTask, k)
	runs := make([]tenantFairRun, k)
	t := 0
	leafSlot := make([]int, cfg.Leaves)
	for i, w := range weights {
		runs[i] = tenantFairRun{weight: w, admitted: admitted[i]}
		for n := 0; n < admitted[i]; n++ {
			leaf := 1 + t%senderLeaves
			sender := opts.HostAt(leaf, leafSlot[leaf])
			leafSlot[leaf]++
			spec := core.TaskSpec{
				ID: core.MakeTaskID(core.TenantID(i+1), uint32(n+1)), Receiver: opts.HostAt(0, t),
				Op: core.OpSum, Rows: cfg.RowsPerTask, Senders: []core.HostID{sender},
			}
			wl := workload.Uniform(cfg.TaskKeys, cfg.TuplesPerSender, cfg.Seed+int64(t))
			pt, err := fc.StartTaskTimed(spec, map[core.HostID]core.TimedStream{sender: paced(wl.Stream(), cfg.Pace)})
			if err != nil {
				return nil, fmt.Errorf("tenancy: tenant %d task %d: %w", i+1, n+1, err)
			}
			plans = append(plans, &taskPlan{tenant: i, spec: spec, want: wl.Reference(core.OpSum), pt: pt})
			t++
		}
		// One task past the quota: its admission runs on the sim clock after
		// the tenant's real tasks have filled the quota (driver processes run
		// in submission order), so it must be rejected with the typed
		// overload error, observable at Get below.
		spec := core.TaskSpec{
			ID: core.MakeTaskID(core.TenantID(i+1), uint32(admitted[i]+1)), Receiver: opts.HostAt(0, 0),
			Op: core.OpSum, Rows: cfg.RowsPerTask, Senders: []core.HostID{opts.HostAt(1, 0)},
		}
		pt, err := fc.StartTaskTimed(spec, map[core.HostID]core.TimedStream{opts.HostAt(1, 0): core.SliceStream(nil).Timed()})
		if err != nil {
			return nil, fmt.Errorf("tenancy: tenant %d over-quota probe: %w", i+1, err)
		}
		over[i] = pt
	}
	fc.Sim.Run(0)

	for i, pt := range over {
		if _, err := pt.Get(); err == nil {
			return nil, fmt.Errorf("tenancy: tenant %d admitted past its quota", i+1)
		} else {
			var oe *tenancy.OverloadError
			if !errors.As(err, &oe) {
				return nil, fmt.Errorf("tenancy: tenant %d over-quota rejection is not typed: %w", i+1, err)
			}
			runs[i].rejected++
		}
	}

	for _, p := range plans {
		res, err := p.pt.Get()
		if err != nil {
			return nil, fmt.Errorf("tenancy: task %d: %w", p.spec.ID, err)
		}
		if !res.Result.Equal(p.want) {
			return nil, fmt.Errorf("tenancy: task %d: wrong result: %s", p.spec.ID, res.Result.Diff(p.want, 5))
		}
		st := fc.TaskSwitchStats(p.spec.ID)
		runs[p.tenant].goodputV += float64(st.TuplesAggregated) / time.Duration(res.Elapsed).Seconds()
	}
	return runs, nil
}

// paced lifts a stream into a timed one with fixed inter-arrival gaps.
func paced(s core.Stream, gap time.Duration) core.TimedStream {
	var i int64
	return func() (core.TimedKV, bool) {
		kv, ok := s()
		if !ok {
			return core.TimedKV{}, false
		}
		tkv := core.TimedKV{KV: kv, At: time.Duration(i) * gap}
		i++
		return tkv, true
	}
}

func tenantSpecs(weights []int) []tenancy.TenantSpec {
	specs := make([]tenancy.TenantSpec, len(weights))
	for i, w := range weights {
		specs[i] = tenancy.TenantSpec{ID: core.TenantID(i + 1), Weight: w}
	}
	return specs
}

// FairnessDev returns the largest relative deviation of any tenant's
// goodput share from its weight share (0.05 = 5%).
func FairnessDev(runs []tenantFairRun) float64 {
	var wsum int
	var gsum float64
	for _, r := range runs {
		wsum += r.weight
		gsum += r.goodput()
	}
	var dev float64
	for _, r := range runs {
		want := float64(r.weight) / float64(wsum)
		got := r.goodput() / gsum
		if d := abs(got-want) / want; d > dev {
			dev = d
		}
	}
	return dev
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TenancyFairness sweeps weight vectors over backlogged tenants and checks
// weighted max-min fairness: each tenant's share of the fabric's aggregation
// goodput should track its weight share, with over-quota submissions
// rejected by typed admission control.
func TenancyFairness(cfg TenancyConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Tenancy: weighted fairness of in-network aggregation goodput",
		Note: fmt.Sprintf("%d spines × %d leaves; quotas filled with identical %d-row, %d-key tasks (%d tuples/sender), +1 over-quota submission each",
			cfg.Spines, cfg.Leaves, cfg.RowsPerTask, cfg.TaskKeys, cfg.TuplesPerSender),
		Header: []string{"weights", "admitted (rejected)", "per-tenant goodput (Mtuples/s)", "goodput shares", "weight shares", "max dev %"},
	}
	for _, weights := range [][]int{{1, 1}, {1, 1, 1, 1}, {1, 3}, {1, 1, 2, 4}} {
		runs, err := runTenantTasks(cfg, weights)
		if err != nil {
			return nil, err
		}
		var gsum float64
		wsum := 0
		for _, r := range runs {
			wsum += r.weight
			gsum += r.goodput()
		}
		var ad, gp, gs, ws []string
		for _, r := range runs {
			ad = append(ad, fmt.Sprintf("%d(%d)", r.admitted, r.rejected))
			gp = append(gp, fmt.Sprintf("%.2f", r.goodput()/1e6))
			gs = append(gs, fmt.Sprintf("%.1f%%", 100*r.goodput()/gsum))
			ws = append(ws, fmt.Sprintf("%.1f%%", 100*float64(r.weight)/float64(wsum)))
		}
		t.AddRow(joinInts(weights), strings.Join(ad, " "), strings.Join(gp, " "), strings.Join(gs, " "),
			strings.Join(ws, " "), 100*FairnessDev(runs))
	}
	return t, nil
}

// TenancyUtilization contrasts the paper's one-job-owns-the-switch model
// with a shared pool: tenants' hot sets are disjoint by construction (the
// keyspace is partitioned), so concurrent tenants multiply the useful work
// the same AA pool performs while pinning no more rows than the single job.
func TenancyUtilization(cfg TenancyConfig) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Tenancy: AA pool utilization vs concurrent tenants (disjoint hot sets)",
		Note: fmt.Sprintf("%d spines × %d leaves; equal weights; regions = quota/%d so total pinned rows stay constant",
			cfg.Spines, cfg.Leaves, cfg.RowFrac),
		Header: []string{"tenants", "pinned rows", "aggregate absorbed (Mtuples/s)", "absorbed % of offered"},
	}
	for _, k := range []int{1, 2, 4} {
		weights := make([]int, k)
		for i := range weights {
			weights[i] = 1
		}
		runs, err := runTenants(cfg, weights)
		if err != nil {
			return nil, err
		}
		var rows int
		var absorbed, offered int64
		var last time.Duration
		for _, r := range runs {
			rows += r.rows
			absorbed += r.absorbed
			offered += r.offered
			if r.elapsed > last {
				last = r.elapsed
			}
		}
		t.AddRow(k, rows, float64(absorbed)/last.Seconds()/1e6, 100*float64(absorbed)/float64(offered))
	}
	return t, nil
}

// Tenancy runs both halves of the sweep (registry entry "tenancy").
func Tenancy(cfg TenancyConfig) ([]*stats.Table, error) {
	fair, err := TenancyFairness(cfg)
	if err != nil {
		return nil, err
	}
	util, err := TenancyUtilization(cfg)
	if err != nil {
		return nil, err
	}
	return []*stats.Table{fair, util}, nil
}

func joinInts(ws []int) string {
	parts := make([]string, len(ws))
	for i, w := range ws {
		parts[i] = fmt.Sprint(w)
	}
	return strings.Join(parts, ":")
}
