// Package experiments reproduces every table and figure of the paper's
// evaluation (§5). Each experiment has a config struct with two presets —
// Default (benchmark scale) and Quick (test scale) — and returns printable
// stats.Tables whose rows/series mirror what the paper reports.
//
// Workload volumes are scaled down from the paper's testbed sizes (the
// virtual-time simulation makes time measurements volume-proportional once
// pipelines fill; EXPERIMENTS.md records the scaling per experiment).
package experiments

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/switchd"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// defaultTelemetry, when enabled, is applied to every cluster the shared
// helpers build for experiments that did not configure their own telemetry;
// cmd/askbench's -telemetry flag sets it. lastTelemetry retains the most
// recently built instrumented cluster's observability set so the CLI can
// report it after an experiment finishes.
//
// telemetryMu guards both: with RunParallel, experiments build clusters from
// several worker goroutines concurrently. Each simulation itself remains
// single-goroutine deterministic — the mutex only protects this CLI-level
// reporting state.
var (
	telemetryMu      sync.Mutex
	defaultTelemetry telemetry.Config
	lastTelemetry    *telemetry.Set
)

// SetDefaultTelemetry configures the telemetry applied to experiment
// clusters built through the shared helpers.
func SetDefaultTelemetry(cfg telemetry.Config) {
	telemetryMu.Lock()
	defaultTelemetry = cfg
	telemetryMu.Unlock()
}

// LastTelemetry returns the observability set of the most recent
// instrumented experiment cluster (nil if telemetry was never enabled).
func LastTelemetry() *telemetry.Set {
	telemetryMu.Lock()
	defer telemetryMu.Unlock()
	return lastTelemetry
}

// newCluster is the shared-helper cluster constructor: it folds in the
// CLI-level default telemetry and records the instrumented set.
func newCluster(opts ask.Options) (*ask.Cluster, error) {
	if !opts.Telemetry.Enabled {
		telemetryMu.Lock()
		opts.Telemetry = defaultTelemetry
		telemetryMu.Unlock()
	}
	cl, err := ask.NewCluster(opts)
	if err == nil && cl.Tel != nil {
		telemetryMu.Lock()
		lastTelemetry = cl.Tel
		telemetryMu.Unlock()
	}
	return cl, err
}

// runAggregation spins up a fresh cluster and runs one task to completion,
// returning the outcome plus the cluster (for link/daemon statistics).
func runAggregation(opts ask.Options, spec core.TaskSpec, streams map[core.HostID]core.Stream) (*ask.TaskResult, *ask.Cluster, error) {
	cl, err := newCluster(opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := cl.Aggregate(spec, streams)
	if err != nil {
		return nil, nil, err
	}
	return res, cl, nil
}

// singleSenderTask builds the 1-sender → 1-receiver task used by the
// microbenchmarks. colocated puts sender and receiver on the same host
// (Fig. 3's single-machine setup).
func singleSenderTask(spec workload.Spec, rows int, colocated bool) (core.TaskSpec, map[core.HostID]core.Stream) {
	sender := core.HostID(1)
	if colocated {
		sender = 0
	}
	task := core.TaskSpec{
		ID:       1,
		Receiver: 0,
		Senders:  []core.HostID{sender},
		Op:       core.OpSum,
		Rows:     rows,
	}
	return task, map[core.HostID]core.Stream{sender: spec.Stream()}
}

// peakAKV tracks the highest simulated aggregation rate (tuples/s of
// virtual time) computed by any experiment since the last reset. The
// benchmark harness reports it next to wall-clock numbers so BENCH_*.json
// records simulated throughput per experiment. Atomic because RunParallel
// may compute rates from several worker goroutines; rates are non-negative,
// so the IEEE-754 bit pattern is monotone and a CAS-max is exact.
var peakAKV atomic.Uint64

// ResetPeakAKV clears the peak simulated-rate tracker.
func ResetPeakAKV() { peakAKV.Store(0) }

// PeakAKV returns the highest tuples/s (virtual time) computed since the
// last ResetPeakAKV, 0 if none.
func PeakAKV() float64 { return math.Float64frombits(peakAKV.Load()) }

// akvPerSec computes aggregated key-value tuples per second.
func akvPerSec(tuples int64, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	rate := float64(tuples) / elapsed.Seconds()
	for {
		cur := peakAKV.Load()
		if math.Float64frombits(cur) >= rate || peakAKV.CompareAndSwap(cur, math.Float64bits(rate)) {
			break
		}
	}
	return rate
}

// checkExact verifies an experiment's functional output against the
// workload's reference aggregation; experiments fail loudly rather than
// report timings for wrong answers.
func checkExact(res *ask.TaskResult, spec workload.Spec) error {
	want := spec.Reference(core.OpSum)
	if !res.Result.Equal(want) {
		return fmt.Errorf("experiments: wrong aggregation result: %s", res.Result.Diff(want, 5))
	}
	return nil
}

// parallelRun is the outcome of a striped multi-task run.
type parallelRun struct {
	Elapsed time.Duration
	Cluster *ask.Cluster
	Results []*ask.TaskResult
	Merged  core.Result
}

// runParallelTasks runs K concurrent aggregation tasks on one cluster, one
// per data channel: a daemon binds each task to hash(ID) of its channels
// (§3.1), so a single task uses a single channel thread — the "N data
// channels" microbenchmarks therefore stripe the workload across N tasks,
// exactly as N applications multiplexing the service would. makeSpec gives
// task i's per-sender workload; every task runs senders → receiver.
func runParallelTasks(opts ask.Options, k, rowsPerTask int, senders []core.HostID,
	receiver core.HostID, makeSpec func(task int, sender core.HostID) workload.Spec) (*parallelRun, error) {
	cl, err := newCluster(opts)
	if err != nil {
		return nil, err
	}
	want := make(core.Result)
	var pts []*ask.PendingTask
	for i := 0; i < k; i++ {
		streams := make(map[core.HostID]core.Stream, len(senders))
		for _, h := range senders {
			spec := makeSpec(i, h)
			streams[h] = spec.Stream()
			want.Merge(spec.Reference(core.OpSum), core.OpSum)
		}
		pt, err := cl.StartTask(core.TaskSpec{
			ID:       core.TaskID(i + 1),
			Receiver: receiver,
			Senders:  senders,
			Op:       core.OpSum,
			Rows:     rowsPerTask,
		}, streams)
		if err != nil {
			return nil, err
		}
		pts = append(pts, pt)
	}
	end := cl.Sim.Run(0)
	run := &parallelRun{Elapsed: time.Duration(end), Cluster: cl, Merged: make(core.Result)}
	for _, pt := range pts {
		res, err := pt.Get()
		if err != nil {
			return nil, err
		}
		run.Results = append(run.Results, res)
		run.Merged.Merge(res.Result, core.OpSum)
	}
	if !run.Merged.Equal(want) {
		return nil, fmt.Errorf("experiments: striped run result wrong: %s", run.Merged.Diff(want, 5))
	}
	return run, nil
}

// balancedUniform builds a uniform workload whose vocabulary is balanced
// across the packet's tuple slots: every subspace 𝕂ᵢ holds exactly
// distinct/slots keys, so a uniform stream keeps every slot busy and
// packets pack full. The paper's goodput microbenchmarks (Fig. 3, 7, 8(a),
// 13) are in this regime; naturally hashed vocabularies carry a permanent
// ±√(keys/slot) imbalance that shows up in Fig. 8(b) instead.
func balancedUniform(layout *keyspace.Layout, distinct int, tuples, seed int64) workload.Spec {
	return balancedUniformRows(layout, distinct, tuples, seed, 0)
}

// balancedUniformRows additionally makes the pool collision-free in the
// switch's row addressing for a region of rowsPerCopy rows: every key of a
// subspace owns a distinct aggregator, the §2.2.2 "all keys fit in switch
// memory" regime the goodput microbenchmarks assume. rowsPerCopy == 0 skips
// the filter.
func balancedUniformRows(layout *keyspace.Layout, distinct int, tuples, seed int64, rowsPerCopy int) workload.Spec {
	slots := layout.ShortSlots()
	// The 4-byte word encoding yields at most ~15.6k distinct keys; leave
	// headroom for hash imbalance when filling per-slot quotas.
	const maxPool = 12_000
	if distinct > maxPool {
		distinct = maxPool
	}
	perSlot := distinct / slots
	if perSlot == 0 {
		perSlot = 1
	}
	quota := make([]int, slots)
	rowUsed := make([]map[int]bool, slots)
	for i := range rowUsed {
		rowUsed[i] = make(map[int]bool)
	}
	keys := make([]string, 0, perSlot*slots)
	for rank := 0; len(keys) < perSlot*slots && rank < 15_624; rank++ {
		w := workload.Word(rank, workload.ShortKeys(4))
		p := layout.Place(w)
		if p.Class != keyspace.Short || quota[p.FirstSlot] >= perSlot {
			continue
		}
		if rowsPerCopy > 0 {
			row := switchd.RowIndex(p.KParts, rowsPerCopy)
			if rowUsed[p.FirstSlot][row] {
				continue // would collide with an earlier key's aggregator
			}
			rowUsed[p.FirstSlot][row] = true
		}
		quota[p.FirstSlot]++
		keys = append(keys, w)
	}
	return workload.Spec{
		Name:     "balanced-uniform",
		Distinct: len(keys),
		Tuples:   tuples,
		Keys:     keys,
		Seed:     seed,
	}
}

// shortLayout builds the all-short-slot layout used by the 4-byte-key
// microbenchmarks.
func shortLayout(numAAs int) *keyspace.Layout {
	c := core.DefaultConfig()
	c.NumAAs = numAAs
	c.MediumGroups = 0
	c.MediumSegs = 0
	layout, err := keyspace.NewLayout(c)
	if err != nil {
		panic(err)
	}
	return layout
}
