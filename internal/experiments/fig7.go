package experiments

import (
	"fmt"
	"repro/ask"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig7Config parameterizes the computation-offload comparison (Fig. 7):
// ASK with 1/2/4 data channels vs. the host-only PreAggr baseline with
// 8..56 threads, one sender and one receiver host.
type Fig7Config struct {
	// Tuples is the stream length (paper: 6.4 G tuples = 51.2 GB; scaled).
	Tuples int64
	// Distinct keys: the paper's pre-aggregation shrinks 51.2 GB to 256 MB,
	// a 200× reduction, so Distinct ≈ Tuples/200.
	Distinct int
	Channels []int
	Threads  []int
	Cores    int
	Seed     int64
}

// DefaultFig7 is the benchmark-scale preset (1/1000 of the paper's volume).
func DefaultFig7() Fig7Config {
	return Fig7Config{
		Tuples:   3_200_000,
		Distinct: 16_000,
		Channels: []int{1, 2, 4},
		Threads:  []int{8, 16, 32, 56},
		Cores:    cpumodel.DefaultCores,
		Seed:     1,
	}
}

// QuickFig7 is the test-scale preset.
func QuickFig7() Fig7Config {
	return Fig7Config{
		Tuples:   1_000_000,
		Distinct: 5_000,
		Channels: []int{1, 4},
		Threads:  []int{8, 32},
		Cores:    cpumodel.DefaultCores,
		Seed:     1,
	}
}

// Fig7 compares job completion time and CPU cost of ASK against PreAggr.
// CPU% follows the paper's accounting: an ASK data channel pins one DPDK
// core (channels/cores); PreAggr's utilization is measured busy time over
// the job.
func Fig7(cfg Fig7Config) (*stats.Table, error) {
	t := &stats.Table{
		Title:  "Fig. 7: JCT and CPU usage — ASK data channels vs PreAggr threads",
		Note:   fmt.Sprintf("%d tuples, %d distinct keys, 1 sender + 1 receiver", cfg.Tuples, cfg.Distinct),
		Header: []string{"system", "JCT", "CPU%", "CPU busy"},
	}
	spec := workload.Uniform(cfg.Distinct, cfg.Tuples, cfg.Seed)

	for _, ch := range cfg.Channels {
		c := core.DefaultConfig()
		c.DataChannels = ch
		c.MediumGroups = 0
		c.MediumSegs = 0
		c.ShadowCopy = false
		c.SwapThreshold = 0
		rows := (c.AARows / ch) &^ 1
		run, err := runParallelTasks(
			ask.Options{Hosts: 2, Config: c, Cores: cfg.Cores, Seed: cfg.Seed},
			ch, rows,
			[]core.HostID{1}, 0,
			func(task int, _ core.HostID) workload.Spec {
				spec := balancedUniformRows(shortLayout(c.NumAAs), cfg.Distinct, cfg.Tuples/int64(ch), cfg.Seed+int64(task), rows)
				return spec
			})
		if err != nil {
			return nil, fmt.Errorf("ASK %d dCh: %w", ch, err)
		}
		busy := run.Cluster.CPU(1).BusyTime() // sender-side work
		t.AddRow(fmt.Sprintf("ASK %d dCh", ch),
			run.Elapsed,
			100*float64(ch)/float64(cfg.Cores),
			busy)
	}

	for _, th := range cfg.Threads {
		rep := baselines.RunPreAggr(baselines.PreAggrConfig{
			Op: core.OpSum, Threads: th, Cores: cfg.Cores, Seed: cfg.Seed,
		}, spec.Stream())
		want := spec.Reference(core.OpSum)
		if !rep.Result.Equal(want) {
			return nil, fmt.Errorf("PreAggr %d threads: wrong result: %s", th, rep.Result.Diff(want, 5))
		}
		util := 0.0
		if rep.JCT > 0 {
			util = 100 * rep.SenderBusy.Seconds() / (rep.JCT.Seconds() * float64(cfg.Cores))
		}
		t.AddRow(fmt.Sprintf("PreAggr %d thr", th), rep.JCT, util, rep.SenderBusy)
	}
	return t, nil
}
