package experiments

import (
	"bytes"
	"fmt"
	"testing"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// seedRunner builds a self-contained experiment point: one cluster, one
// aggregation over a seed-determined workload, one table of
// simulation-derived numbers (virtual elapsed, absorbed tuples, result
// checksum). Everything in the table comes from virtual time, so the bytes
// depend only on the seed — the property the golden test locks down.
func seedRunner(seed int64) Runner {
	run := func() ([]*stats.Table, error) {
		spec := workload.Spec{
			Name:     fmt.Sprintf("golden-%d", seed),
			Distinct: 300,
			Tuples:   6000,
			Seed:     seed,
		}
		task := core.TaskSpec{ID: 1, Receiver: 0, Senders: []core.HostID{1, 2}, Op: core.OpSum}
		streams := map[core.HostID]core.Stream{1: spec.Stream(), 2: spec.Stream()}
		res, _, err := runAggregation(ask.Options{Hosts: 3, Seed: seed}, task, streams)
		if err != nil {
			return nil, err
		}
		var keys, sum int64
		for _, v := range res.Result {
			keys++
			sum += v
		}
		t := &stats.Table{
			Title:  fmt.Sprintf("golden seed %d", seed),
			Header: []string{"elapsed", "switch tuples", "keys", "sum"},
		}
		t.AddRow(res.Elapsed, res.Switch.TuplesAggregated, keys, sum)
		return []*stats.Table{t}, nil
	}
	return Runner{
		Name:  fmt.Sprintf("golden-%d", seed),
		Desc:  "serial-vs-parallel determinism fixture",
		Quick: run,
		Full:  run,
	}
}

// TestParallelMatchesSerialGolden is the golden determinism test: for three
// seeds, running the experiment set on 8 workers must produce JSON
// byte-identical to the 1-worker (strictly serial) run. Under `go test
// -race` this doubles as the data-race exercise of the parallel runner.
func TestParallelMatchesSerialGolden(t *testing.T) {
	var runners []Runner
	for _, seed := range []int64{1, 2, 3} {
		runners = append(runners, seedRunner(seed))
	}
	serialOut := RunParallel(runners, true, 1)
	parallelOut := RunParallel(runners, true, 8)

	serialJSON, err := OutcomesJSON(serialOut)
	if err != nil {
		t.Fatal(err)
	}
	parallelJSON, err := OutcomesJSON(parallelOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Fatalf("parallel run diverged from serial run:\nserial:\n%s\nparallel:\n%s",
			serialJSON, parallelJSON)
	}
	for _, o := range serialOut {
		if o.Err != "" {
			t.Fatalf("%s failed: %s", o.Name, o.Err)
		}
		if len(o.Tables) == 0 {
			t.Fatalf("%s produced no tables", o.Name)
		}
	}
	// Repetition determinism: a second serial run over fresh clusters must
	// reproduce the same bytes (guards against pooling or global state
	// leaking between runs).
	again, err := OutcomesJSON(RunParallel(runners, true, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON, again) {
		t.Fatal("repeat serial run diverged — state leaked between experiments")
	}
}

// TestParallelRealExperiments runs a slice of the actual registry through
// the pool and asserts order preservation and serial/parallel byte
// identity on the real table output.
func TestParallelRealExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several quick experiments twice")
	}
	var runners []Runner
	for _, name := range []string{"fig3", "table1", "fig12"} {
		r, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		runners = append(runners, r)
	}
	serialJSON, err := OutcomesJSON(RunParallel(runners, true, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallelJSON, err := OutcomesJSON(RunParallel(runners, true, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON, parallelJSON) {
		t.Fatalf("parallel registry run diverged from serial:\nserial:\n%s\nparallel:\n%s",
			serialJSON, parallelJSON)
	}
	out := RunParallel(runners, true, 3)
	for i, o := range out {
		if o.Name != runners[i].Name {
			t.Fatalf("outcome %d out of order: got %s want %s", i, o.Name, runners[i].Name)
		}
	}
}
