package experiments

import (
	"fmt"
	"time"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// FabricChaosConfig parameterizes the hierarchical fault-injection study:
// one cross-leaf task on the spine/leaf fabric, replayed under each switch
// outage scenario and checked bit-identical against the fault-free golden
// run, while the table reports the fault cost (elapsed inflation, degraded
// time, replay traffic) and the resulting fabric epoch.
type FabricChaosConfig struct {
	Spines       int
	Leaves       int
	HostsPerLeaf int
	// Distinct is the per-sender distinct-key count.
	Distinct int
	// Tuples is the per-sender stream length.
	Tuples int64
	Seed   int64
}

// DefaultFabricChaos is the benchmark-scale preset: streams long enough that
// an outage window spans several probe intervals on every affected host.
func DefaultFabricChaos() FabricChaosConfig {
	return FabricChaosConfig{Spines: 2, Leaves: 3, HostsPerLeaf: 2, Distinct: 2048, Tuples: 200_000, Seed: 1}
}

// QuickFabricChaos is the test-scale preset.
func QuickFabricChaos() FabricChaosConfig {
	return FabricChaosConfig{Spines: 2, Leaves: 3, HostsPerLeaf: 2, Distinct: 512, Tuples: 20_000, Seed: 1}
}

func fabricChaosOptions(cfg FabricChaosConfig) ask.FatTreeOptions {
	c := core.DefaultConfig()
	c.ShadowCopy = false // fat-tree failover precondition
	c.Failover = true
	c.MaxRetries = 0 // outage windows must be bridged, not aborted
	return ask.FatTreeOptions{
		Spines: cfg.Spines, Leaves: cfg.Leaves, HostsPerLeaf: cfg.HostsPerLeaf,
		Config: c, Seed: cfg.Seed,
	}
}

// fabricChaosTask builds the cross-leaf task — receiver on leaf 0, one
// sender on every other leaf — plus the host-computed reference.
func fabricChaosTask(cfg FabricChaosConfig) (core.TaskSpec, map[core.HostID]core.Stream, core.Result) {
	opts := fabricChaosOptions(cfg)
	spec := core.TaskSpec{ID: 1, Receiver: opts.HostAt(0, 0), Op: core.OpSum}
	streams := make(map[core.HostID]core.Stream)
	want := make(core.Result)
	for l := 1; l < cfg.Leaves; l++ {
		h := opts.HostAt(l, 0)
		spec.Senders = append(spec.Senders, h)
		w := workload.Uniform(cfg.Distinct, cfg.Tuples, cfg.Seed+int64(h))
		streams[h] = w.Stream()
		want.Merge(w.Reference(core.OpSum), core.OpSum)
	}
	return spec, streams, want
}

// fabricOutageRow runs the task with one crash/reboot window against addr
// and returns the completed result plus the replay traffic across the
// task's hosts. Outages land at 40–60% of the golden elapsed: task setup
// costs two control RPCs, so the stream occupies roughly the middle of the
// interval and earlier windows would miss it.
func fabricOutageRow(cfg FabricChaosConfig, addr core.HostID, scale time.Duration) (*ask.TaskResult, uint32, int64, int64, error) {
	fc, err := ask.NewFatTreeCluster(fabricChaosOptions(cfg))
	if err != nil {
		return nil, 0, 0, 0, err
	}
	spec, streams, _ := fabricChaosTask(cfg)
	fc.Sim.At(sim.Time(0).Add(scale*2/5), func() {
		if err := fc.CrashSwitch(addr); err != nil {
			panic(fmt.Sprintf("fabric-chaos: CrashSwitch(%#x): %v", uint16(addr), err))
		}
	})
	fc.Sim.At(sim.Time(0).Add(scale*3/5), func() {
		if err := fc.RebootSwitch(addr); err != nil {
			panic(fmt.Sprintf("fabric-chaos: RebootSwitch(%#x): %v", uint16(addr), err))
		}
	})
	pt, err := fc.StartTask(spec, streams)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	fc.Sim.Run(0)
	res, err := pt.Get()
	if err != nil {
		return nil, 0, 0, 0, err
	}
	var replays, merged int64
	for _, h := range append([]core.HostID{spec.Receiver}, spec.Senders...) {
		fs := fc.Daemon(h).FailoverStats()
		replays += fs.ReplaysSent
		merged += fs.ReplayTuplesMerged
	}
	return res, fc.FabricEpoch(), replays, merged, nil
}

// FabricChaos runs the hierarchical fault-injection sweep. The first row is
// the golden (fault-free) run; each subsequent row crashes and heals one
// switch of the fabric mid-stream — the task's elected spine (forcing
// re-election onto the alternate), the standby spine, and a sender's leaf —
// and must reproduce the golden result exactly.
func FabricChaos(cfg FabricChaosConfig) (*stats.Table, error) {
	spec, streams, want := fabricChaosTask(cfg)

	fc, err := ask.NewFatTreeCluster(fabricChaosOptions(cfg))
	if err != nil {
		return nil, err
	}
	golden, err := fc.Aggregate(spec, streams)
	if err != nil {
		return nil, err
	}
	if !golden.Result.Equal(want) {
		return nil, fmt.Errorf("fabric-chaos: golden run wrong: %s", golden.Result.Diff(want, 5))
	}
	scale := time.Duration(golden.Elapsed)

	t := &stats.Table{
		Title: "Fabric chaos: spine/leaf outages vs fault-free golden run",
		Note: fmt.Sprintf("%d spines x %d leaves, %d senders x %d tuples; one crash+reboot window at 40-60%% of golden; every scenario must reproduce the golden result exactly",
			cfg.Spines, cfg.Leaves, len(spec.Senders), cfg.Tuples),
		Header: []string{"scenario", "elapsed", "x golden", "exact", "degraded", "replays", "replay-merged", "epoch"},
	}
	t.AddRow("golden", time.Duration(golden.Elapsed), 1.0, true, time.Duration(0), int64(0), int64(0), uint32(1))

	elected := netsim.SpineAddr(int(uint32(spec.ID)) % cfg.Spines)
	standby := netsim.SpineAddr((int(uint32(spec.ID)) + 1) % cfg.Spines)
	scenarios := []struct {
		name string
		addr core.HostID
	}{
		{"spine-outage", elected},
		{"standby-spine-outage", standby},
		{"leaf-outage", netsim.LeafAddr(1)},
	}
	for _, sc := range scenarios {
		res, epoch, replays, merged, err := fabricOutageRow(cfg, sc.addr, scale)
		if err != nil {
			return nil, fmt.Errorf("fabric-chaos: scenario %s: %w", sc.name, err)
		}
		exact := res.Result.Equal(want)
		if !exact {
			return nil, fmt.Errorf("fabric-chaos: scenario %s diverged from golden: %s",
				sc.name, res.Result.Diff(want, 5))
		}
		t.AddRow(sc.name,
			time.Duration(res.Elapsed),
			float64(res.Elapsed)/float64(golden.Elapsed),
			exact,
			res.Degraded,
			replays,
			merged,
			epoch)
	}
	return t, nil
}
