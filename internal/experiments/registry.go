package experiments

import (
	"fmt"
	"sort"

	"repro/internal/stats"
	"repro/internal/workload/scenario"
)

// Runner names one reproducible experiment with its two scale presets.
type Runner struct {
	Name string
	Desc string
	// Quick runs the test-scale preset; Full runs the benchmark-scale one.
	Quick func() ([]*stats.Table, error)
	Full  func() ([]*stats.Table, error)
}

func one(f func() (*stats.Table, error)) func() ([]*stats.Table, error) {
	return func() ([]*stats.Table, error) {
		t, err := f()
		if err != nil {
			return nil, err
		}
		return []*stats.Table{t}, nil
	}
}

// All lists every experiment, in the paper's order.
func All() []Runner {
	return []Runner{
		{
			Name:  "fig3",
			Desc:  "single-machine AKV/s: Spark vs strawman INA vs ASK",
			Quick: one(func() (*stats.Table, error) { return Fig3(QuickFig3()) }),
			Full:  one(func() (*stats.Table, error) { return Fig3(DefaultFig3()) }),
		},
		{
			Name:  "fig7",
			Desc:  "computation offload: ASK data channels vs PreAggr threads",
			Quick: one(func() (*stats.Table, error) { return Fig7(QuickFig7()) }),
			Full:  one(func() (*stats.Table, error) { return Fig7(DefaultFig7()) }),
		},
		{
			Name:  "table1",
			Desc:  "traffic reduction on production-corpus stand-ins",
			Quick: one(func() (*stats.Table, error) { return Table1(QuickTable1()) }),
			Full:  one(func() (*stats.Table, error) { return Table1(DefaultTable1()) }),
		},
		{
			Name:  "fig8a",
			Desc:  "goodput vs tuples per packet",
			Quick: one(func() (*stats.Table, error) { return Fig8a(QuickFig8a()) }),
			Full:  one(func() (*stats.Table, error) { return Fig8a(DefaultFig8a()) }),
		},
		{
			Name:  "fig8b",
			Desc:  "non-blank tuple slots per packet per dataset",
			Quick: one(func() (*stats.Table, error) { return Fig8b(QuickFig8b()) }),
			Full:  one(func() (*stats.Table, error) { return Fig8b(DefaultFig8b()) }),
		},
		{
			Name:  "fig9",
			Desc:  "hot-key prioritization vs aggregator:key ratio",
			Quick: one(func() (*stats.Table, error) { return Fig9(QuickFig9()) }),
			Full:  one(func() (*stats.Table, error) { return Fig9(DefaultFig9()) }),
		},
		{
			Name:  "fig10",
			Desc:  "WordCount JCT: Spark/SHM/RDMA/ASK",
			Quick: one(func() (*stats.Table, error) { return Fig10(QuickFig10()) }),
			Full:  one(func() (*stats.Table, error) { return Fig10(DefaultFig10()) }),
		},
		{
			Name:  "fig11",
			Desc:  "mapper/reducer task completion times",
			Quick: one(func() (*stats.Table, error) { return Fig11(QuickFig10()) }),
			Full:  one(func() (*stats.Table, error) { return Fig11(DefaultFig10()) }),
		},
		{
			Name:  "fig12",
			Desc:  "distributed training throughput: ASK/ATP/SwitchML/HostPS",
			Quick: one(func() (*stats.Table, error) { return Fig12(QuickFig12()) }),
			Full:  one(func() (*stats.Table, error) { return Fig12(DefaultFig12()) }),
		},
		{
			Name:  "fig13a",
			Desc:  "throughput and bandwidth overhead vs data channels",
			Quick: one(func() (*stats.Table, error) { return Fig13a(QuickFig13a()) }),
			Full:  one(func() (*stats.Table, error) { return Fig13a(DefaultFig13a()) }),
		},
		{
			Name:  "fig13b",
			Desc:  "per-sender throughput vs sender count",
			Quick: one(func() (*stats.Table, error) { return Fig13b(QuickFig13b()) }),
			Full:  one(func() (*stats.Table, error) { return Fig13b(DefaultFig13b()) }),
		},
		{
			Name:  "ablation-swap",
			Desc:  "shadow-copy swap threshold sweep",
			Quick: one(func() (*stats.Table, error) { return AblationSwap(QuickAblationSwap()) }),
			Full:  one(func() (*stats.Table, error) { return AblationSwap(DefaultAblationSwap()) }),
		},
		{
			Name:  "ablation-window",
			Desc:  "sliding-window size under loss",
			Quick: one(func() (*stats.Table, error) { return AblationWindow(QuickAblationWindow()) }),
			Full:  one(func() (*stats.Table, error) { return AblationWindow(DefaultAblationWindow()) }),
		},
		{
			Name:  "ablation-congestion",
			Desc:  "AIMD congestion window vs fixed window under incast",
			Quick: one(func() (*stats.Table, error) { return AblationCongestion(QuickAblationCongestion()) }),
			Full:  one(func() (*stats.Table, error) { return AblationCongestion(DefaultAblationCongestion()) }),
		},
		{
			Name:  "multirack",
			Desc:  "§7 multi-rack: absorption vs remote-sender fraction",
			Quick: one(func() (*stats.Table, error) { return MultiRack(QuickMultiRack()) }),
			Full:  one(func() (*stats.Table, error) { return MultiRack(DefaultMultiRack()) }),
		},
		{
			Name:  "ablation-medium",
			Desc:  "coalesced medium-key group width",
			Quick: one(func() (*stats.Table, error) { return AblationMedium(QuickAblationMedium()) }),
			Full:  one(func() (*stats.Table, error) { return AblationMedium(DefaultAblationMedium()) }),
		},
		{
			Name:  "scenarios",
			Desc:  "scenario corpus: AA hit rate / promotions / goodput per shape",
			Quick: one(func() (*stats.Table, error) { return Scenarios(QuickScenarios()) }),
			Full:  one(func() (*stats.Table, error) { return Scenarios(DefaultScenarios()) }),
		},
		{
			Name:  "chaos",
			Desc:  "fault injection: switch failover + degradation vs golden run",
			Quick: one(func() (*stats.Table, error) { return Chaos(QuickChaos()) }),
			Full:  one(func() (*stats.Table, error) { return Chaos(DefaultChaos()) }),
		},
		{
			Name:  "fabric-chaos",
			Desc:  "fat-tree fault injection: spine re-election + leaf recovery vs golden run",
			Quick: one(func() (*stats.Table, error) { return FabricChaos(QuickFabricChaos()) }),
			Full:  one(func() (*stats.Table, error) { return FabricChaos(DefaultFabricChaos()) }),
		},
		{
			Name:  "tenancy",
			Desc:  "multi-tenant fabric: weighted goodput fairness + AA pool utilization",
			Quick: func() ([]*stats.Table, error) { return Tenancy(QuickTenancy()) },
			Full:  func() ([]*stats.Table, error) { return Tenancy(DefaultTenancy()) },
		},
		{
			Name:  "scaling",
			Desc:  "parallel DES: shard-count sweep, serial-equivalence + speedup/efficiency per topology",
			Quick: one(func() (*stats.Table, error) { return Scaling(QuickScaling()) }),
			Full:  one(func() (*stats.Table, error) { return Scaling(DefaultScaling()) }),
		},
		{
			Name:  "corruption",
			Desc:  "link corruption sweep: CRC32C quarantine cost vs goodput",
			Quick: one(func() (*stats.Table, error) { return Corruption(QuickCorruption()) }),
			Full:  one(func() (*stats.Table, error) { return Corruption(DefaultCorruption()) }),
		},
	}
}

// ScenarioRunner builds a Runner sweeping a single named corpus scenario
// (cmd/askbench -scenario). The name is validated here so the CLI fails
// fast instead of mid-sweep.
func ScenarioRunner(name string) (Runner, error) {
	if _, err := scenario.ByName(name); err != nil {
		return Runner{}, err
	}
	pick := func(cfg ScenariosConfig) ([]*stats.Table, error) {
		cfg.Names = []string{name}
		t, err := Scenarios(cfg)
		if err != nil {
			return nil, err
		}
		return []*stats.Table{t}, nil
	}
	return Runner{
		Name:  "scenario:" + name,
		Desc:  "scenario corpus sweep restricted to " + name,
		Quick: func() ([]*stats.Table, error) { return pick(QuickScenarios()) },
		Full:  func() ([]*stats.Table, error) { return pick(DefaultScenarios()) },
	}, nil
}

// ByName finds an experiment runner.
func ByName(name string) (Runner, error) {
	for _, r := range All() {
		if r.Name == name {
			return r, nil
		}
	}
	var names []string
	for _, r := range All() {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, names)
}
