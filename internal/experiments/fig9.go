package experiments

import (
	"fmt"

	"repro/ask"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Fig9Config parameterizes the hot-key prioritization study (Fig. 9): the
// fraction of tuples the switch aggregates as a function of the
// aggregator-to-distinct-key ratio, with and without the shadow-copy
// mechanism, on Zipf (hot-first), Zipf (reverse), and Uniform streams.
type Fig9Config struct {
	// Distinct is the distinct-key count (paper: 2¹⁶; scaled so keys stay
	// 4-byte short keys for the all-short layout).
	Distinct int
	// Tuples is the stream length (paper: ~10⁸; scaled).
	Tuples int64
	// Ratios sweeps total aggregators / distinct keys.
	Ratios []float64
	// SwapThreshold is the receiver packet count that triggers a swap.
	SwapThreshold int
	// Skew is the Zipf exponent.
	Skew float64
	Seed int64
}

// DefaultFig9 is the benchmark-scale preset.
func DefaultFig9() Fig9Config {
	return Fig9Config{
		Distinct:      8192,
		Tuples:        700_000,
		Ratios:        []float64{1.0 / 256, 1.0 / 64, 1.0 / 16, 1.0 / 4, 1},
		SwapThreshold: 128,
		Skew:          1.05,
		Seed:          1,
	}
}

// QuickFig9 is the test-scale preset.
func QuickFig9() Fig9Config {
	return Fig9Config{
		Distinct:      2048,
		Tuples:        150_000,
		Ratios:        []float64{1.0 / 16, 1},
		SwapThreshold: 64,
		Skew:          1.05,
		Seed:          1,
	}
}

// fig9AAs is the AA count for this experiment: an all-short-key layout so
// "total aggregators" maps cleanly to AAs × rows.
const fig9AAs = 8

// Fig9 runs the sweep. Each cell is the percentage of switch-eligible
// tuples aggregated in-network.
func Fig9(cfg Fig9Config) (*stats.Table, error) {
	t := &stats.Table{
		Title: "Fig. 9: switch-aggregated tuples vs aggregator:distinct-key ratio",
		Note: fmt.Sprintf("%d distinct keys, %d tuples, swap threshold %d packets",
			cfg.Distinct, cfg.Tuples, cfg.SwapThreshold),
		Header: []string{"agg/keys", "Zipf%", "Zipf(rev)%", "Uniform%",
			"Zipf%+prio", "Zipf(rev)%+prio", "Uniform%+prio"},
	}
	orders := []workload.Spec{
		workload.Zipf(cfg.Distinct, cfg.Tuples, cfg.Skew, workload.HotFirst, cfg.Seed),
		workload.Zipf(cfg.Distinct, cfg.Tuples, cfg.Skew, workload.ColdFirst, cfg.Seed),
		workload.Uniform(cfg.Distinct, cfg.Tuples, cfg.Seed),
	}
	for _, ratio := range cfg.Ratios {
		aggs := int(ratio * float64(cfg.Distinct))
		rows := aggs / fig9AAs
		if rows < 2 {
			rows = 2
		}
		rows &^= 1 // even for the two shadow copies
		cells := []any{fmt.Sprintf("1/%d", int(1/ratio+0.5))}
		if ratio >= 1 {
			cells[0] = "1"
		}
		for _, prio := range []bool{false, true} {
			for _, spec := range orders {
				pct, err := fig9Run(cfg, spec, rows, prio)
				if err != nil {
					return nil, fmt.Errorf("ratio %v %s prio=%v: %w", ratio, spec.Name, prio, err)
				}
				cells = append(cells, pct)
			}
		}
		t.AddRow(cells...)
	}
	return t, nil
}

func fig9Run(cfg Fig9Config, spec workload.Spec, rows int, prio bool) (float64, error) {
	c := core.DefaultConfig()
	c.NumAAs = fig9AAs
	c.MediumGroups = 0
	c.MediumSegs = 0
	c.ShadowCopy = prio
	c.SwapThreshold = 0
	if prio {
		c.SwapThreshold = cfg.SwapThreshold
	}
	task, streams := singleSenderTask(spec, rows, false)
	res, _, err := runAggregation(ask.Options{Hosts: 2, Config: c, Seed: cfg.Seed}, task, streams)
	if err != nil {
		return 0, err
	}
	if err := checkExact(res, spec); err != nil {
		return 0, err
	}
	return 100 * res.Switch.AggregatedTupleRatio(), nil
}
