// Package mapreduce is a miniature Spark-like engine used to reproduce the
// big-data experiments (§5.5): jobs with per-machine map tasks and reduce
// tasks, a hash-partitioned shuffle, and four interchangeable shuffle
// strategies —
//
//   - Vanilla: mappers pre-aggregate (sort-merge), spill the intermediate
//     result through disk, and ship it over TCP-like transport;
//   - SHM: like Vanilla but the intermediate data stays in shared memory
//     (no disk I/O) and moves via the ASK transport (SparkSHM, §5.1);
//   - RDMA: like Vanilla but network I/O costs no per-packet CPU
//     (SparkRDMA);
//   - ASK: mappers do not pre-aggregate at all — raw tuples stream through
//     the ASK daemons and the switch aggregates in-network.
//
// Each reduce task owns a disjoint key partition: partition(key) = reducer,
// so per-reducer results concatenate into the job result.
package mapreduce

import (
	"fmt"
	"time"

	"repro/ask"
	"repro/internal/aggregate"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/keyspace"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/switchd"
	"repro/internal/wire"
	"repro/internal/workload"
)

// Transport selects the shuffle strategy.
type Transport uint8

const (
	Vanilla Transport = iota
	SHM
	RDMA
	ASK
)

func (t Transport) String() string {
	switch t {
	case Vanilla:
		return "Spark"
	case SHM:
		return "SparkSHM"
	case RDMA:
		return "SparkRDMA"
	case ASK:
		return "ASK"
	default:
		return "invalid"
	}
}

// MapTupleCost is the per-tuple cost of the map function itself (input
// scan, tokenization, emit) — paid by every variant. Calibration: Fig. 11
// reports ASK mappers (map-only, no pre-aggregation) at a mean TCT of
// 1.67 s for 10⁸ tuples → ≈16.7 ns/tuple.
const MapTupleCost = 17 * time.Nanosecond

// DiskBandwidth models the shuffle spill path of vanilla Spark (write +
// read of the intermediate data on a spinning-disk array).
const DiskBandwidth = 500e6 // bytes/s

// Config describes one job.
type Config struct {
	Machines           int
	MappersPerMachine  int
	ReducersPerMachine int
	// TuplesPerMapper is each map task's input size.
	TuplesPerMapper int64
	// DistinctKeys is the vocabulary size shared by all mappers (Fig. 10:
	// 2¹⁸ distinct keys per mapper).
	DistinctKeys int
	Transport    Transport
	Cores        int
	Seed         int64
	// Workload overrides the default uniform WordCount input; it must be a
	// fresh spec per (machine, mapper).
	Workload func(machine, mapper int) workload.Spec
	// RowsPerTask overrides the per-reduce-task switch region size (ASK).
	RowsPerTask int
}

// Report is the outcome of a job.
type Report struct {
	JCT time.Duration
	// MapperTCT / ReducerTCT are per-task completion times.
	MapperTCT  []time.Duration
	ReducerTCT []time.Duration
	// Result is the full job output (all partitions merged).
	Result core.Result
	// CPUBusy is total core-busy time across machines.
	CPUBusy time.Duration
}

// MeanMapperTCT returns the average map-task completion time.
func (r Report) MeanMapperTCT() time.Duration { return meanDur(r.MapperTCT) }

// MeanReducerTCT returns the average reduce-task completion time.
func (r Report) MeanReducerTCT() time.Duration { return meanDur(r.ReducerTCT) }

func meanDur(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var s time.Duration
	for _, d := range ds {
		s += d
	}
	return s / time.Duration(len(ds))
}

func (c *Config) defaults() {
	if c.Cores == 0 {
		c.Cores = cpumodel.DefaultCores
	}
	if c.Workload == nil {
		c.Workload = func(machine, mapper int) workload.Spec {
			return workload.Uniform(c.DistinctKeys, c.TuplesPerMapper,
				c.Seed+int64(machine*1000+mapper))
		}
	}
}

// reducers returns the total reduce-task count.
func (c *Config) reducers() int { return c.Machines * c.ReducersPerMachine }

// partition assigns a key to a reduce task.
func partition(key string, reducers int) int {
	return int(keyspace.HashOrder(key) % uint64(reducers))
}

// filtered returns a stream of spec's tuples belonging to one reducer.
func filtered(spec workload.Spec, reducer, reducers int) core.Stream {
	s := spec.Stream()
	return func() (core.KV, bool) {
		for {
			kv, ok := s()
			if !ok {
				return core.KV{}, false
			}
			if partition(kv.Key, reducers) == reducer {
				return kv, true
			}
		}
	}
}

// concat chains streams sequentially.
func concat(streams ...core.Stream) core.Stream {
	i := 0
	return func() (core.KV, bool) {
		for i < len(streams) {
			kv, ok := streams[i]()
			if ok {
				return kv, true
			}
			i++
		}
		return core.KV{}, false
	}
}

// Run executes the job under the configured transport.
func Run(cfg Config) (Report, error) {
	cfg.defaults()
	if cfg.Machines <= 0 || cfg.MappersPerMachine <= 0 || cfg.ReducersPerMachine <= 0 {
		return Report{}, fmt.Errorf("mapreduce: invalid shape %+v", cfg)
	}
	if cfg.Transport == ASK {
		return runASK(cfg)
	}
	return runHostShuffle(cfg)
}

// runASK streams raw map output through the ASK service: one aggregation
// task per reduce task, senders are the machines, no mapper pre-aggregation.
func runASK(cfg Config) (Report, error) {
	swOpts := switchd.DefaultOptions()
	if need := cfg.reducers() + 8; swOpts.MaxRegions < need {
		swOpts.MaxRegions = need
	}
	askCfg := core.DefaultConfig()
	cl, err := ask.NewCluster(ask.Options{
		Hosts:  cfg.Machines,
		Cores:  cfg.Cores,
		Seed:   cfg.Seed,
		Config: askCfg,
		Switch: swOpts,
	})
	if err != nil {
		return Report{}, err
	}
	R := cfg.reducers()
	rows := cfg.RowsPerTask
	if rows == 0 {
		rows = askCfg.AARows / R
		rows &^= 1
		if rows == 0 {
			rows = 2
		}
	}

	var rep Report
	hosts := make([]core.HostID, cfg.Machines)
	for m := range hosts {
		hosts[m] = core.HostID(m)
	}

	// Map tasks: pure map CPU (the daemon's channel threads carry the IO).
	mapDone := make([]sim.Time, cfg.Machines*cfg.MappersPerMachine)
	for m := 0; m < cfg.Machines; m++ {
		for t := 0; t < cfg.MappersPerMachine; t++ {
			idx := m*cfg.MappersPerMachine + t
			cpu := cl.CPU(core.HostID(m))
			cl.Sim.Spawn(fmt.Sprintf("map-%d-%d", m, t), func(p *sim.Proc) {
				cpu.Exec(p, time.Duration(cfg.TuplesPerMapper)*(MapTupleCost+cpumodel.ShmCopyCost))
				mapDone[idx] = p.Now()
			})
		}
	}

	// Reduce tasks: one ASK aggregation task per reducer.
	pending := make([]*ask.PendingTask, R)
	for r := 0; r < R; r++ {
		streams := make(map[core.HostID]core.Stream, cfg.Machines)
		for m := 0; m < cfg.Machines; m++ {
			parts := make([]core.Stream, cfg.MappersPerMachine)
			for t := 0; t < cfg.MappersPerMachine; t++ {
				parts[t] = filtered(cfg.Workload(m, t), r, R)
			}
			streams[core.HostID(m)] = concat(parts...)
		}
		spec := core.TaskSpec{
			ID:       core.TaskID(r + 1),
			Receiver: core.HostID(r / cfg.ReducersPerMachine),
			Senders:  hosts,
			Op:       core.OpSum,
			Rows:     rows,
		}
		pt, err := cl.StartTask(spec, streams)
		if err != nil {
			return Report{}, err
		}
		pending[r] = pt
	}

	end := cl.Sim.Run(0)
	rep.JCT = time.Duration(end)
	rep.Result = make(core.Result)
	for _, pt := range pending {
		res, err := pt.Get()
		if err != nil {
			return Report{}, err
		}
		rep.ReducerTCT = append(rep.ReducerTCT, time.Duration(res.Elapsed))
		rep.Result.Merge(res.Result, core.OpSum)
	}
	for _, at := range mapDone {
		rep.MapperTCT = append(rep.MapperTCT, time.Duration(at))
	}
	for m := 0; m < cfg.Machines; m++ {
		rep.CPUBusy += cl.CPU(core.HostID(m)).BusyTime()
	}
	return rep, nil
}

// runHostShuffle executes the Vanilla/SHM/RDMA variants: mappers
// pre-aggregate, spill (Vanilla/RDMA), and ship per-reducer partials.
func runHostShuffle(cfg Config) (Report, error) {
	s := sim.New(cfg.Seed)
	n := netsim.New(s, netsim.DefaultLinkConfig())
	n.AttachSwitch(&netsim.ForwardingSwitch{Net: n})

	R := cfg.reducers()
	cpus := make([]*cpumodel.Host, cfg.Machines)
	disks := make([]*sim.Resource, cfg.Machines)
	recvs := make([]*shuffleReceiver, cfg.Machines)
	for m := 0; m < cfg.Machines; m++ {
		cpus[m] = cpumodel.NewHost(s, cfg.Cores)
		disks[m] = sim.NewResource(s, 1)
		recvs[m] = newShuffleReceiver(s, cpus[m], cfg.ReducersPerMachine, cfg.Machines*cfg.MappersPerMachine)
		n.AttachHost(core.HostID(m), recvs[m])
	}

	mapDone := make([]sim.Time, cfg.Machines*cfg.MappersPerMachine)
	for m := 0; m < cfg.Machines; m++ {
		for t := 0; t < cfg.MappersPerMachine; t++ {
			m, t := m, t
			idx := m*cfg.MappersPerMachine + t
			spec := cfg.Workload(m, t)
			s.Spawn(fmt.Sprintf("map-%d-%d", m, t), func(p *sim.Proc) {
				// Map + pre-aggregation (sort-merge) on one core.
				cpus[m].Exec(p, time.Duration(cfg.TuplesPerMapper)*(MapTupleCost+cpumodel.HostAggregateCost))
				partial := aggregate.Map(core.OpSum, spec.Stream())
				// Partition the partial by reducer.
				parts := make([]core.Result, R)
				for k, v := range partial {
					r := partition(k, R)
					if parts[r] == nil {
						parts[r] = make(core.Result)
					}
					parts[r][k] = v
				}
				bytes := aggregate.ResultBytes(partial)
				// Vanilla and RDMA spill the intermediate data to disk
				// (write + read); SHM keeps it in shared memory.
				if cfg.Transport == Vanilla || cfg.Transport == RDMA {
					disks[m].Use(p, time.Duration(float64(2*bytes)/DiskBandwidth*float64(time.Second)))
				}
				mapDone[idx] = p.Now()
				// Ship each reducer's slice.
				thread := cpus[m].NewThread()
				for r := 0; r < R; r++ {
					pr := parts[r]
					prBytes := aggregate.ResultBytes(pr)
					dst := core.HostID(r / cfg.ReducersPerMachine)
					sent := 0
					for {
						pay := prBytes - sent
						if pay > mtuPayload {
							pay = mtuPayload
						}
						// RDMA: zero-copy, no per-packet CPU.
						if cfg.Transport != RDMA {
							thread.Run(p, cpumodel.PacketIOCost)
						}
						last := sent+pay >= prBytes
						pkt := &wire.Packet{Type: wire.TypeCtrl}
						if last {
							pkt.Ctrl = shufflePartial{reducer: r % cfg.ReducersPerMachine, data: pr}
						}
						n.HostSend(&netsim.Frame{
							Src: core.HostID(m), Dst: dst, Pkt: pkt,
							WireBytes: pay + wire.PerPacketOverhead,
							GoodBytes: pay,
						})
						sent += pay
						if last {
							break
						}
					}
				}
			})
		}
	}

	end := s.Run(0)
	rep := Report{JCT: time.Duration(end), Result: make(core.Result)}
	for _, at := range mapDone {
		rep.MapperTCT = append(rep.MapperTCT, time.Duration(at))
	}
	for _, rx := range recvs {
		for r := 0; r < cfg.ReducersPerMachine; r++ {
			rep.Result.Merge(rx.results[r], core.OpSum)
			rep.ReducerTCT = append(rep.ReducerTCT, time.Duration(rx.doneAt[r]))
		}
	}
	for _, c := range cpus {
		rep.CPUBusy += c.BusyTime()
	}
	return rep, nil
}

const mtuPayload = wire.MTU - wire.HeaderBytes

// shufflePartial is a mapper's slice of one reducer's partition.
type shufflePartial struct {
	reducer int
	data    core.Result
}

// shuffleReceiver hosts a machine's reduce tasks for the host-shuffle
// variants: it merges arriving partials per reducer.
type shuffleReceiver struct {
	s        *sim.Simulation
	cpu      *cpumodel.Host
	results  []core.Result
	doneAt   []sim.Time
	expected int // partials per reducer = total mappers
	got      []int
}

func newShuffleReceiver(s *sim.Simulation, cpu *cpumodel.Host, reducers, mappers int) *shuffleReceiver {
	rx := &shuffleReceiver{s: s, cpu: cpu, expected: mappers}
	for i := 0; i < reducers; i++ {
		rx.results = append(rx.results, make(core.Result))
		rx.doneAt = append(rx.doneAt, 0)
		rx.got = append(rx.got, 0)
	}
	return rx
}

func (rx *shuffleReceiver) HandleFrame(f *netsim.Frame) {
	sp, ok := f.Pkt.Ctrl.(shufflePartial)
	if !ok {
		return
	}
	rx.s.Spawn("reduce-merge", func(p *sim.Proc) {
		rx.cpu.Exec(p, time.Duration(len(sp.data))*cpumodel.HostAggregateCost)
		rx.results[sp.reducer].Merge(sp.data, core.OpSum)
		rx.got[sp.reducer]++
		if rx.got[sp.reducer] == rx.expected {
			rx.doneAt[sp.reducer] = rx.s.Now()
		}
	})
}
