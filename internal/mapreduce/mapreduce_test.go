package mapreduce

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func smallJob(tr Transport) Config {
	return Config{
		Machines:           3,
		MappersPerMachine:  4,
		ReducersPerMachine: 2,
		TuplesPerMapper:    3000,
		DistinctKeys:       500,
		Transport:          tr,
		Seed:               1,
	}
}

// jobReference recomputes the expected WordCount output.
func jobReference(cfg Config) core.Result {
	cfg.defaults()
	want := make(core.Result)
	for m := 0; m < cfg.Machines; m++ {
		for t := 0; t < cfg.MappersPerMachine; t++ {
			want.Merge(cfg.Workload(m, t).Reference(core.OpSum), core.OpSum)
		}
	}
	return want
}

func TestAllTransportsExact(t *testing.T) {
	for _, tr := range []Transport{Vanilla, SHM, RDMA, ASK} {
		tr := tr
		t.Run(tr.String(), func(t *testing.T) {
			cfg := smallJob(tr)
			rep, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := jobReference(cfg)
			if !rep.Result.Equal(want) {
				t.Fatalf("%v job result wrong: %s", tr, rep.Result.Diff(want, 8))
			}
			if rep.JCT <= 0 {
				t.Fatal("no JCT")
			}
			if len(rep.MapperTCT) != cfg.Machines*cfg.MappersPerMachine {
				t.Fatalf("mapper TCTs = %d", len(rep.MapperTCT))
			}
			if len(rep.ReducerTCT) != cfg.reducers() {
				t.Fatalf("reducer TCTs = %d", len(rep.ReducerTCT))
			}
		})
	}
}

func TestASKMappersMuchFaster(t *testing.T) {
	// Fig. 11: ASK mappers skip pre-aggregation, so their TCT is a small
	// fraction of Spark's.
	cfg := smallJob(Vanilla)
	cfg.TuplesPerMapper = 50000
	vr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = ASK
	ar, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(vr.MeanMapperTCT()) / float64(ar.MeanMapperTCT())
	if ratio < 3 {
		t.Fatalf("Spark/ASK mapper TCT ratio %.2f, want > 3 (map 17ns vs map+preagg 156ns)", ratio)
	}
}

func TestASKBeatsVanillaJCT(t *testing.T) {
	// Fig. 10: ASK's JCT is well below Spark's at WordCount scale.
	cfg := smallJob(Vanilla)
	cfg.TuplesPerMapper = 50000
	cfg.DistinctKeys = 2000
	vr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Transport = ASK
	ar, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ar.JCT >= vr.JCT {
		t.Fatalf("ASK JCT %v not below Spark %v", ar.JCT, vr.JCT)
	}
}

func TestSHMAndRDMACloseToVanilla(t *testing.T) {
	// §5.5 observation: faster shuffle transports barely change JCT because
	// pre-aggregation dominates.
	base := smallJob(Vanilla)
	base.TuplesPerMapper = 30000
	vr, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []Transport{SHM, RDMA} {
		cfg := base
		cfg.Transport = tr
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(vr.JCT) / float64(r.JCT)
		if ratio < 0.8 || ratio > 1.6 {
			t.Fatalf("%v JCT %v vs Spark %v: ratio %.2f outside the 'no big win' band",
				tr, r.JCT, vr.JCT, ratio)
		}
	}
}

func TestCustomWorkload(t *testing.T) {
	cfg := smallJob(ASK)
	cfg.Workload = func(machine, mapper int) workload.Spec {
		return workload.Zipf(300, 2000, 1.2, workload.Shuffled, int64(machine*10+mapper))
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := jobReference(cfg)
	if !rep.Result.Equal(want) {
		t.Fatalf("zipf job wrong: %s", rep.Result.Diff(want, 5))
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestTransportStrings(t *testing.T) {
	for _, tr := range []Transport{Vanilla, SHM, RDMA, ASK, Transport(99)} {
		if tr.String() == "" {
			t.Fatal("empty transport name")
		}
	}
}
