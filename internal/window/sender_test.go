package window

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

func mkPkt() *wire.Packet { return &wire.Packet{Type: wire.TypeData} }

func TestSenderAssignsSequences(t *testing.T) {
	s := sim.New(1)
	var sent []uint32
	w := NewSender(s, 8, 100*time.Microsecond, func(p *wire.Packet) { sent = append(sent, p.Seq) })
	for i := 0; i < 5; i++ {
		w.Send(mkPkt())
	}
	for i, seq := range sent {
		if seq != uint32(i) {
			t.Fatalf("sent = %v, want 0..4", sent)
		}
	}
	if w.InFlight() != 5 {
		t.Fatalf("InFlight = %d", w.InFlight())
	}
}

func TestSenderWindowLimit(t *testing.T) {
	s := sim.New(1)
	w := NewSender(s, 4, 100*time.Microsecond, func(p *wire.Packet) {})
	for i := 0; i < 4; i++ {
		if !w.CanSend() {
			t.Fatalf("window closed early at %d", i)
		}
		w.Send(mkPkt())
	}
	if w.CanSend() {
		t.Fatal("window open beyond W")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Send past window did not panic")
		}
	}()
	w.Send(mkPkt())
}

func TestSenderAckAdvancesWindow(t *testing.T) {
	s := sim.New(1)
	w := NewSender(s, 4, 100*time.Microsecond, func(p *wire.Packet) {})
	for i := 0; i < 4; i++ {
		w.Send(mkPkt())
	}
	// Out-of-order ACK does not open the window (span unchanged).
	w.Ack(2)
	if w.CanSend() {
		t.Fatal("window opened on out-of-order ACK")
	}
	// ACK of base slides over the acked prefix (0, then 1, 2 already gone).
	w.Ack(0)
	w.Ack(1)
	if !w.CanSend() {
		t.Fatal("window did not open after prefix acked")
	}
	st := w.Stats()
	if st.Acked != 3 || st.Sent != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSenderRetransmitOnTimeout(t *testing.T) {
	s := sim.New(1)
	tx := 0
	w := NewSender(s, 4, 100*time.Microsecond, func(p *wire.Packet) { tx++ })
	w.Send(mkPkt())
	s.Run(sim.Time(250 * time.Microsecond))
	// t=0 initial, retransmits at 100µs and 200µs.
	if tx != 3 {
		t.Fatalf("transmissions = %d, want 3", tx)
	}
	if w.Stats().Retransmits != 2 {
		t.Fatalf("retransmits = %d", w.Stats().Retransmits)
	}
	// ACK stops the timer.
	w.Ack(0)
	s.Run(sim.Time(time.Second))
	if tx != 3 {
		t.Fatalf("retransmitted after ACK: %d", tx)
	}
	if !w.Idle() {
		t.Fatal("not idle after full ACK")
	}
}

func TestSenderDuplicateAck(t *testing.T) {
	s := sim.New(1)
	w := NewSender(s, 4, 100*time.Microsecond, func(p *wire.Packet) {})
	w.Send(mkPkt())
	w.Ack(0)
	w.Ack(0)
	w.Ack(9) // never sent
	st := w.Stats()
	if st.DupAcks != 2 {
		t.Fatalf("DupAcks = %d, want 2", st.DupAcks)
	}
}

func TestSenderBlockingAndIdle(t *testing.T) {
	s := sim.New(1)
	const total = 20
	var w *Sender
	delivered := 0
	// Echo "network": ack every packet after 10µs.
	w = NewSender(s, 4, 100*time.Microsecond, func(p *wire.Packet) {
		seq := p.Seq
		s.After(10*time.Microsecond, func() {
			delivered++
			w.Ack(seq)
		})
	})
	var idleAt sim.Time
	s.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			w.SendBlocking(p, mkPkt())
		}
		w.WaitIdle(p)
		idleAt = p.Now()
	})
	s.Run(0)
	if delivered != total {
		t.Fatalf("delivered = %d, want %d", delivered, total)
	}
	if st := w.Stats(); st.Retransmits != 0 {
		t.Fatalf("unexpected retransmits: %d", st.Retransmits)
	}
	// 20 packets, window 4, 10µs RTT → 5 window-batches × 10µs.
	if idleAt != sim.Time(50*time.Microsecond) {
		t.Fatalf("idleAt = %v, want 50µs", idleAt)
	}
}

func TestSenderLossRecovery(t *testing.T) {
	// Drop every third transmission; everything must still be delivered
	// exactly once to a Dedup-guarded receiver, in bounded time.
	s := sim.New(3)
	const total = 200
	var w *Sender
	d := NewDedup(8)
	received := 0
	n := 0
	w = NewSender(s, 8, 100*time.Microsecond, func(p *wire.Packet) {
		n++
		if n%3 == 0 {
			return // dropped
		}
		seq := p.Seq
		s.After(5*time.Microsecond, func() {
			if d.Observe(seq) == Fresh {
				received++
			}
			// ACK (possibly duplicate) always returns.
			s.After(5*time.Microsecond, func() { w.Ack(seq) })
		})
	})
	s.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			w.SendBlocking(p, mkPkt())
		}
		w.WaitIdle(p)
	})
	s.Run(0)
	if received != total {
		t.Fatalf("received %d distinct packets, want %d", received, total)
	}
	if w.Stats().Retransmits == 0 {
		t.Fatal("expected retransmissions under loss")
	}
}

func TestSenderConstructorValidation(t *testing.T) {
	s := sim.New(1)
	bad := []func(){
		func() { NewSender(s, 0, time.Microsecond, func(*wire.Packet) {}) },
		func() { NewSender(s, 3, time.Microsecond, func(*wire.Packet) {}) },
		func() { NewSender(s, 8, 0, func(*wire.Packet) {}) },
		func() { NewSender(s, 8, time.Microsecond, nil) },
	}
	for i, f := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("constructor %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
