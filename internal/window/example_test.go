package window_test

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/window"
	"repro/internal/wire"
)

// The compact W-bit seen replaces the naïve 2W-bit design (§3.3): same
// verdicts, half the switch SRAM.
func ExampleCompactSeen() {
	compact := window.NewCompactSeen(8)
	naive := window.NewNaiveSeen(8)
	arrivals := []uint32{0, 1, 1, 2, 0, 3} // 1 and 0 retransmitted
	for _, seq := range arrivals {
		c, n := compact.Observe(seq), naive.Observe(seq)
		fmt.Printf("seq %d: dup=%v (agree=%v)\n", seq, c, c == n)
	}
	fmt.Printf("state: %d vs %d bits\n", compact.Bits(), naive.Bits())
	// Output:
	// seq 0: dup=false (agree=true)
	// seq 1: dup=false (agree=true)
	// seq 1: dup=true (agree=true)
	// seq 2: dup=false (agree=true)
	// seq 0: dup=true (agree=true)
	// seq 3: dup=false (agree=true)
	// state: 8 vs 16 bits
}

// A sender window retransmits unacknowledged packets on a fine-grained
// timeout and never exceeds W packets in flight.
func ExampleSender() {
	s := sim.New(1)
	transmissions := 0
	var w *window.Sender
	w = window.NewSender(s, 4, 100*time.Microsecond, func(pkt *wire.Packet) {
		transmissions++
		if pkt.Seq != 1 { // pretend packet 1's first copy is lost
			seq := pkt.Seq
			s.After(10*time.Microsecond, func() { w.Ack(seq) })
		} else if transmissions > 2 {
			seq := pkt.Seq
			s.After(10*time.Microsecond, func() { w.Ack(seq) })
		}
	})
	s.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			w.SendBlocking(p, &wire.Packet{Type: wire.TypeData})
		}
		w.WaitIdle(p)
	})
	s.Run(0)
	st := w.Stats()
	fmt.Printf("sent=%d retransmits=%d acked=%d\n", st.Sent, st.Retransmits, st.Acked)
	// Output:
	// sent=3 retransmits=1 acked=3
}
