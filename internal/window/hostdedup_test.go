package window

import (
	"math/rand"
	"testing"
)

func TestHostDedupBasics(t *testing.T) {
	h := NewHostDedup(8)
	if v := h.Observe(100); v != Fresh {
		t.Fatalf("first = %v", v)
	}
	if v := h.Observe(100); v != Duplicate {
		t.Fatalf("repeat = %v", v)
	}
	if v := h.Observe(120); v != Fresh {
		t.Fatalf("jump = %v", v)
	}
	if v := h.Observe(100); v != Stale {
		t.Fatalf("old = %v", v)
	}
}

func TestHostDedupSubsetFlows(t *testing.T) {
	// A receiver that sees only a sparse subset of the flow's sequence
	// space (channels multiplex tasks across receivers) must still classify
	// correctly — this is where the compact seen cannot be used host-side.
	h := NewHostDedup(16)
	seqs := []uint32{5, 21, 37, 1000, 1003, 1001} // huge gaps, odd parities
	for _, s := range seqs[:3] {
		if v := h.Observe(s); s == 5 && v != Fresh {
			t.Fatalf("seq %d = %v", s, v)
		}
	}
	for _, s := range seqs[3:] {
		if v := h.Observe(s); v != Fresh {
			t.Fatalf("seq %d = %v, want fresh", s, v)
		}
	}
	if v := h.Observe(1003); v != Duplicate {
		t.Fatalf("1003 repeat = %v", v)
	}
}

func TestHostDedupMemoryBounded(t *testing.T) {
	h := NewHostDedup(64)
	for i := uint32(0); i < 100000; i++ {
		h.Observe(i)
	}
	if h.Len() > 64+1 {
		t.Fatalf("dedup holds %d entries, window is 64", h.Len())
	}
}

func TestHostDedupMemoryBoundedWithGaps(t *testing.T) {
	h := NewHostDedup(64)
	rng := rand.New(rand.NewSource(5))
	seq := uint32(0)
	for i := 0; i < 5000; i++ {
		seq += uint32(1 + rng.Intn(100000)) // large jumps
		h.Observe(seq)
	}
	if h.Len() > 65 {
		t.Fatalf("dedup holds %d entries after gappy flow", h.Len())
	}
}

func TestHostDedupMatchesCompactOnFullFlows(t *testing.T) {
	// When the receiver does see every sequence (single-receiver flow), the
	// host dedup and the switch's compact dedup agree everywhere.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		w := 1 << (3 + rng.Intn(3))
		start := rng.Uint32()
		arrivals := windowedArrivalSeq(rng, w, 500, start)
		hd := NewHostDedup(w)
		cd := NewDedupAt(w, start)
		for i, seq := range arrivals {
			hv, cv := hd.Observe(seq), cd.Observe(seq)
			if hv != cv {
				t.Fatalf("trial %d arrival %d seq %d: host=%v compact=%v", trial, i, seq, hv, cv)
			}
		}
	}
}

func TestHostDedupWraparound(t *testing.T) {
	h := NewHostDedup(16)
	if v := h.Observe(0xfffffffa); v != Fresh {
		t.Fatalf("pre-wrap = %v", v)
	}
	if v := h.Observe(3); v != Fresh {
		t.Fatalf("post-wrap = %v", v)
	}
	if v := h.Observe(0xfffffffa); v != Duplicate {
		t.Fatalf("pre-wrap repeat = %v (still in window)", v)
	}
	if v := h.Observe(0xffffffe0); v != Stale {
		t.Fatalf("ancient = %v", v)
	}
}

func TestHostDedupValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHostDedup(0) did not panic")
		}
	}()
	NewHostDedup(0)
}
