// Package window implements ASK's reliability machinery for asynchronous
// aggregation (§3.3): the host sender's sliding window with fine-grained
// timeout retransmission, and the receive-window deduplication state used by
// both the switch (via register arrays in internal/switchd) and the host
// receiver — the naïve 2W-bit seen array and the memory-compact W-bit seen
// built on atomic set_bit/clr_bitc, plus the max_seq stale-packet guard and
// the PktState store for partially-aggregated packet replay.
//
// Sequence numbers are 32-bit and compared with serial arithmetic, so
// persistent data channels may wrap; the window size W must be a power of
// two so the compact design's even/odd segment parity survives wraparound.
package window

// SeqLess reports whether a precedes b in serial (wraparound) order.
func SeqLess(a, b uint32) bool { return int32(a-b) < 0 }

// SeenUpdate is the per-bit compact receive-window update of Eq. 8: a single
// atomic instruction that records a packet's appearance, returns whether it
// was already observed, and simultaneously re-initializes the bit for the
// segment one window away.
//
// For a packet with sequence s, the caller derives r = s mod W (the bit
// index) and odd = (s/W) mod 2 (the segment parity) and applies the update
// to the r-th bit:
//
//   - even segment: set_bit — observed iff the bit was already 1, bit := 1
//     (cases 1 and 2);
//   - odd segment: clr_bitc — observed iff the bit was already 0, bit := 0
//     (cases 3 and 4).
//
// Setting on even segments leaves the bit prepared (1) for the following odd
// segment, whose "unobserved" sentinel is 1; clearing on odd segments leaves
// it prepared (0) for the next even segment.
func SeenUpdate(cur uint64, odd bool) (next uint64, observed bool) {
	if odd {
		return 0, cur == 0
	}
	return 1, cur == 1
}

// CompactSeen is the host-side realization of the W-bit compact receive
// window. The switch realizes the identical logic in a register array (one
// 1-bit entry per window slot); this struct exists so the host receiver can
// share the algorithm and so tests can check equivalence with NaiveSeen.
type CompactSeen struct {
	w    int
	bits []uint64
}

// NewCompactSeen returns a compact seen of window size w (a power of two)
// for a flow whose first sequence number is 0.
func NewCompactSeen(w int) *CompactSeen { return NewCompactSeenAt(w, 0) }

// NewCompactSeenAt returns a compact seen for a flow whose lowest sequence
// number is start. Each bit must begin "prepared" for the parity of the
// first segment that will touch it: bits at offsets >= start%W are first
// touched by start's segment, earlier offsets by the following segment.
// (ASK data channels start at 0, where this degenerates to all-zeros.)
func NewCompactSeenAt(w int, start uint32) *CompactSeen {
	if w <= 0 || w&(w-1) != 0 {
		panic("window: size must be a positive power of two")
	}
	c := &CompactSeen{w: w, bits: make([]uint64, w)}
	r0 := int(start) & (w - 1)
	odd0 := (start/uint32(w))&1 == 1
	prepared := func(odd bool) uint64 {
		// "Unobserved" sentinel: 0 for an even segment, 1 for an odd one.
		if odd {
			return 1
		}
		return 0
	}
	for r := range c.bits {
		if r >= r0 {
			c.bits[r] = prepared(odd0)
		} else {
			c.bits[r] = prepared(!odd0)
		}
	}
	return c
}

// Observe records seq and reports whether it had been observed before.
func (c *CompactSeen) Observe(seq uint32) (observed bool) {
	r := int(seq) & (c.w - 1)
	odd := (seq/uint32(c.w))&1 == 1
	c.bits[r], observed = SeenUpdate(c.bits[r], odd)
	return observed
}

// Bits returns the backing storage size in bits.
func (c *CompactSeen) Bits() int { return c.w }

// seenTagValid marks a TagSeen slot as written; it keeps sequence 0
// distinguishable from a never-touched slot.
const seenTagValid = uint64(1) << 32

// SeenTagUpdate is the per-slot update of the gap-tolerant seen used by
// non-first-hop switch tiers (hierarchical re-aggregation). The compact
// parity seen of Eq. 8 assumes the switch observes every sequence number of
// a flow, so segment parities alternate slot by slot; a spine fed only by
// the leaves' conflict residuals sees arbitrary gaps, and a slot whose next
// touch lands an even number of windows later would alias as a duplicate.
// TagSeen instead stores the full sequence number (plus a valid bit) in the
// slot: observed iff the stored tag equals this packet's. The stale guard
// makes the tag unambiguous — a packet that reaches the seen stage satisfies
// maxSeq − seq < W, so at most one live sequence maps to each slot.
//
// The cost is 33 bits per slot instead of 1: the memory-compactness of §3.3
// is a first-hop optimization that the re-aggregation tier gives back.
func SeenTagUpdate(cur uint64, seq uint32) (next uint64, observed bool) {
	tag := uint64(seq) | seenTagValid
	return tag, cur == tag
}

// TagSeen is the host-side reference realization of the gap-tolerant seen
// (the switch realizes the identical logic in a 33-bit register array).
type TagSeen struct {
	w    int
	tags []uint64
}

// NewTagSeen returns a gap-tolerant seen of window size w (a power of two).
func NewTagSeen(w int) *TagSeen {
	if w <= 0 || w&(w-1) != 0 {
		panic("window: size must be a positive power of two")
	}
	return &TagSeen{w: w, tags: make([]uint64, w)}
}

// Observe records seq and reports whether it had been observed before.
func (t *TagSeen) Observe(seq uint32) (observed bool) {
	r := int(seq) & (t.w - 1)
	t.tags[r], observed = SeenTagUpdate(t.tags[r], seq)
	return observed
}

// Bits returns the backing storage size in bits.
func (t *TagSeen) Bits() int { return 33 * t.w }

// NaiveSeen is the straightforward 2W-bit receive window of Eq. 5–7: a
// circularly used bit array where each packet records its own appearance and
// clears the bit one window ahead for a future packet. It costs twice the
// memory of CompactSeen and exists as the reference implementation for the
// equivalence tests and the memory-ablation benchmark.
type NaiveSeen struct {
	w    int
	bits []bool
}

// NewNaiveSeen returns a naïve seen of window size w.
func NewNaiveSeen(w int) *NaiveSeen {
	if w <= 0 {
		panic("window: size must be positive")
	}
	return &NaiveSeen{w: w, bits: make([]bool, 2*w)}
}

// Observe records seq and reports whether it had been observed before.
func (n *NaiveSeen) Observe(seq uint32) (observed bool) {
	idx := int(seq % uint32(2*n.w)) // Eq. 5
	observed = n.bits[idx]
	n.bits[idx] = true                // Eq. 6
	n.bits[(idx+n.w)%(2*n.w)] = false // Eq. 7
	return observed
}

// Bits returns the backing storage size in bits.
func (n *NaiveSeen) Bits() int { return 2 * n.w }

// StaleGuard tracks max_seq and rejects packets older than the live window,
// the corner case of §3.3 where a very stale packet would falsely overwrite
// seen state: the live window is (max_seq − W, max_seq], and anything at or
// below max_seq − W is dropped before touching seen.
type StaleGuard struct {
	w       uint32
	started bool
	maxSeq  uint32
}

// NewStaleGuard returns a guard for window size w.
func NewStaleGuard(w int) *StaleGuard { return &StaleGuard{w: uint32(w)} }

// Check advances max_seq with seq and reports whether seq is stale. A stale
// packet must be dropped without updating seen.
func (g *StaleGuard) Check(seq uint32) (stale bool) {
	if !g.started {
		g.started = true
		g.maxSeq = seq
		return false
	}
	if SeqLess(g.maxSeq, seq) {
		g.maxSeq = seq
		return false
	}
	// stale iff seq <= maxSeq - W, i.e. maxSeq - seq >= W in serial space.
	return g.maxSeq-seq >= g.w
}

// MaxSeq returns the largest sequence observed (serial order).
func (g *StaleGuard) MaxSeq() uint32 { return g.maxSeq }

// Dedup combines the stale guard with the compact seen: the complete
// receive-window logic of a flow endpoint. Both the host receiver and the
// reference model of the switch's per-flow state use it.
type Dedup struct {
	guard *StaleGuard
	seen  *CompactSeen
}

// NewDedup returns receive-window dedup state for window size w, for a flow
// whose first sequence number is 0.
func NewDedup(w int) *Dedup { return NewDedupAt(w, 0) }

// NewDedupAt returns dedup state for a flow whose lowest sequence is start.
func NewDedupAt(w int, start uint32) *Dedup {
	return &Dedup{guard: NewStaleGuard(w), seen: NewCompactSeenAt(w, start)}
}

// Verdict classifies an arriving packet.
type Verdict uint8

const (
	// Fresh means first appearance: process the packet.
	Fresh Verdict = iota
	// Duplicate means the packet was seen before: skip processing but
	// still acknowledge it (the original ACK may have been lost).
	Duplicate
	// Stale means the packet predates the live window: drop silently.
	Stale
)

func (v Verdict) String() string {
	switch v {
	case Fresh:
		return "fresh"
	case Duplicate:
		return "duplicate"
	case Stale:
		return "stale"
	default:
		return "invalid"
	}
}

// Observe classifies seq and updates the state.
func (d *Dedup) Observe(seq uint32) Verdict {
	if d.guard.Check(seq) {
		return Stale
	}
	if d.seen.Observe(seq) {
		return Duplicate
	}
	return Fresh
}

// PktState is the circular per-window store of packet aggregation bitmaps
// (Eq. 9–10): on a packet's first appearance the switch records the
// post-aggregation bitmap; on a retransmission it rewrites the packet's
// bitmap from the store so already-aggregated tuples are not re-aggregated
// downstream. The switch realizes this as a register array; this struct is
// the shared algorithm and host-side reference.
type PktState struct {
	w      uint32
	states []uint64
}

// NewPktState returns a store for window size w.
func NewPktState(w int) *PktState {
	if w <= 0 {
		panic("window: size must be positive")
	}
	return &PktState{w: uint32(w), states: make([]uint64, w)}
}

// Record stores the bitmap for a first-appearance packet (Eq. 9).
func (ps *PktState) Record(seq uint32, bitmap uint64) { ps.states[seq%ps.w] = bitmap }

// Lookup returns the stored bitmap for a retransmitted packet (Eq. 10).
func (ps *PktState) Lookup(seq uint32) uint64 { return ps.states[seq%ps.w] }
