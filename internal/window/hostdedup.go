package window

// HostDedup is the host receiver's receive window. Unlike the switch, a
// host receiver does not necessarily observe every sequence number of a flow:
// a persistent data channel serves many tasks, and consecutive tasks may have
// different receivers, so each receiver sees only a subset of the flow's
// sequence space. The compact seen's parity alternation requires observing
// every sequence, so hosts — which have plentiful memory — instead keep an
// exact set of the sequences seen inside the live window (at most W entries),
// guarded by the same max_seq staleness rule.
//
// Safety of the stale verdict: the sender never has more than W packets in
// flight, so any packet that still needs processing satisfies
// seq > maxSeqGlobal − W ≥ maxSeqLocal − W and is never classified stale.
type HostDedup struct {
	w      uint32
	guard  *StaleGuard
	inWin  map[uint32]struct{}
	pruned uint32 // all seqs <= pruned (serially) are evicted
	primed bool
}

// NewHostDedup returns host-side dedup state for window size w.
func NewHostDedup(w int) *HostDedup {
	if w <= 0 {
		panic("window: size must be positive")
	}
	return &HostDedup{w: uint32(w), guard: NewStaleGuard(w), inWin: make(map[uint32]struct{})}
}

// Observe classifies seq and updates the state.
func (h *HostDedup) Observe(seq uint32) Verdict {
	if h.guard.Check(seq) {
		return Stale
	}
	if _, dup := h.inWin[seq]; dup {
		return Duplicate
	}
	h.inWin[seq] = struct{}{}
	h.prune()
	return Fresh
}

// prune evicts sequences that fell out of the live window, bounding memory
// at W entries. Eviction walks forward from the last pruned point so the
// total work is O(1) amortized per observation.
func (h *HostDedup) prune() {
	max := h.guard.MaxSeq()
	floor := max - h.w // everything <= floor is stale now
	if !h.primed {
		h.primed = true
		h.pruned = floor
		return
	}
	if floor-h.pruned > 2*h.w {
		// The flow jumped far ahead (this receiver saw only a subset of the
		// sequence space); sweep the ≤W-entry map instead of walking the gap.
		for s := range h.inWin {
			if !SeqLess(floor, s) { // s <= floor
				delete(h.inWin, s)
			}
		}
		h.pruned = floor
		return
	}
	for SeqLess(h.pruned, floor) {
		h.pruned++
		delete(h.inWin, h.pruned)
	}
}

// Len returns the number of tracked in-window sequences (for tests).
func (h *HostDedup) Len() int { return len(h.inWin) }
