package window

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

// SenderStats counts sender-window activity.
type SenderStats struct {
	Sent        int64 // first transmissions
	Retransmits int64
	Acked       int64
	DupAcks     int64 // ACKs for packets no longer in flight
}

// Congestion is the optional loss-based congestion control of §7
// (Discussion): an AIMD congestion window whose ceiling is the reliability
// window W — "the congestion window should not exceed the maximum window
// defined in the reliability mechanism, protecting the switch receive
// window from malfunctioning". Slow start doubles per window of ACKs up to
// ssthresh, then congestion avoidance adds one packet per window; a timeout
// halves ssthresh and restarts from a small window.
type congestion struct {
	cwnd     float64
	ssthresh float64
	max      float64
}

func newCongestion(w int) *congestion {
	return &congestion{cwnd: 2, ssthresh: float64(w) / 2, max: float64(w)}
}

func (c *congestion) allow() int { return int(c.cwnd) }

func (c *congestion) onAck() {
	if c.cwnd < c.ssthresh {
		c.cwnd++ // slow start
	} else {
		c.cwnd += 1 / c.cwnd // congestion avoidance
	}
	if c.cwnd > c.max {
		c.cwnd = c.max
	}
}

func (c *congestion) onTimeout() {
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 2 {
		c.ssthresh = 2
	}
	c.cwnd = 2
}

// Sender is the host-side sliding window of §3.3: at most W packets in
// flight, per-packet retransmission on a fine-grained timeout (100 µs in the
// paper), and no reaction to out-of-order ACKs — the switch and the host
// receiver both emit ACKs, so ordering carries no loss signal.
//
// Sequence numbers are assigned by the window so the in-flight span never
// exceeds W, which the switch's receive window requires.
type Sender struct {
	sim      *sim.Simulation
	w        uint32
	timeout  time.Duration
	transmit func(*wire.Packet)

	nextSeq  uint32
	base     uint32 // lowest unacked sequence
	inflight map[uint32]*flight

	spaceSig *sim.Signal // fired when window space opens
	idleSig  *sim.Signal // fired when nothing is in flight

	cc    *congestion // nil unless EnableCongestionControl
	stats SenderStats
}

type flight struct {
	pkt   *wire.Packet
	timer sim.Timer
}

// NewSender returns a sender window. transmit is invoked for every
// transmission and retransmission; it must not retain the packet.
func NewSender(s *sim.Simulation, w int, timeout time.Duration, transmit func(*wire.Packet)) *Sender {
	if w <= 0 || w&(w-1) != 0 {
		panic("window: sender window must be a positive power of two")
	}
	if timeout <= 0 {
		panic("window: non-positive retransmission timeout")
	}
	if transmit == nil {
		panic("window: nil transmit")
	}
	return &Sender{
		sim:      s,
		w:        uint32(w),
		timeout:  timeout,
		transmit: transmit,
		inflight: make(map[uint32]*flight),
		spaceSig: sim.NewSignal(s),
		idleSig:  sim.NewSignal(s),
	}
}

// Stats returns a copy of the counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// InFlight returns the number of unacknowledged packets.
func (s *Sender) InFlight() int { return len(s.inflight) }

// Idle reports whether every sent packet has been acknowledged.
func (s *Sender) Idle() bool { return len(s.inflight) == 0 }

// EnableCongestionControl turns on the AIMD congestion window (§7). Call
// before the first Send.
func (s *Sender) EnableCongestionControl() { s.cc = newCongestion(int(s.w)) }

// Cwnd returns the current congestion window in packets (W when congestion
// control is off).
func (s *Sender) Cwnd() int {
	if s.cc == nil {
		return int(s.w)
	}
	return s.cc.allow()
}

// CanSend reports whether the window has room for another packet.
func (s *Sender) CanSend() bool {
	limit := s.w
	if s.cc != nil {
		if cl := uint32(s.cc.allow()); cl < limit {
			limit = cl
		}
	}
	return s.nextSeq-s.base < limit
}

// Send assigns the next sequence number to pkt, transmits it, and arms its
// retransmission timer. The caller must ensure CanSend; blocking callers use
// SendBlocking.
func (s *Sender) Send(pkt *wire.Packet) {
	if !s.CanSend() {
		panic(fmt.Sprintf("window: Send with full window (base=%d next=%d)", s.base, s.nextSeq))
	}
	pkt.Seq = s.nextSeq
	s.nextSeq++
	f := &flight{pkt: pkt}
	s.inflight[pkt.Seq] = f
	s.stats.Sent++
	s.transmit(pkt)
	s.arm(f)
}

// SendBlocking is Send for process-style callers: it blocks p until window
// space is available.
func (s *Sender) SendBlocking(p *sim.Proc, pkt *wire.Packet) {
	for !s.CanSend() {
		p.Wait(s.spaceSig)
	}
	s.Send(pkt)
}

// WaitIdle blocks p until all sent packets are acknowledged.
func (s *Sender) WaitIdle(p *sim.Proc) {
	for !s.Idle() {
		p.Wait(s.idleSig)
	}
}

func (s *Sender) arm(f *flight) {
	f.timer = s.sim.After(s.timeout, func() {
		// Still unacked: retransmit and re-arm.
		s.stats.Retransmits++
		if s.cc != nil {
			s.cc.onTimeout()
		}
		s.transmit(f.pkt)
		s.arm(f)
	})
}

// Ack processes an acknowledgment for seq. Duplicate or unknown ACKs are
// counted and ignored.
func (s *Sender) Ack(seq uint32) {
	f, ok := s.inflight[seq]
	if !ok {
		s.stats.DupAcks++
		return
	}
	f.timer.Stop()
	delete(s.inflight, seq)
	s.stats.Acked++
	ccGrew := false
	if s.cc != nil {
		before := s.cc.allow()
		s.cc.onAck()
		ccGrew = s.cc.allow() > before
	}
	// Advance the base over the acknowledged prefix.
	advanced := false
	for s.base != s.nextSeq {
		if _, live := s.inflight[s.base]; live {
			break
		}
		s.base++
		advanced = true
	}
	if advanced || ccGrew {
		s.spaceSig.Fire()
	}
	if len(s.inflight) == 0 {
		s.idleSig.Fire()
	}
}
