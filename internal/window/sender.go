package window

import (
	"fmt"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// SenderStats counts sender-window activity. It is a point-in-time view
// over the sender's telemetry counters (see Instrument).
type SenderStats struct {
	Sent        int64 // first transmissions
	Retransmits int64
	Acked       int64
	DupAcks     int64 // ACKs for packets no longer in flight
	Aborts      int64 // flights that exhausted MaxRetries
	Resets      int64 // failover window resets
}

// senderMetrics are the sender's instruments. A bare NewSender gets
// standalone counters (so Stats always works) and nil histograms;
// Instrument re-points everything at a shared registry.
type senderMetrics struct {
	sent        *telemetry.Counter
	retransmits *telemetry.Counter
	acked       *telemetry.Counter
	dupAcks     *telemetry.Counter
	aborts      *telemetry.Counter
	resets      *telemetry.Counter
	rtt         *telemetry.Histogram // first-transmission RTT, ns (Karn's rule)
	tries       *telemetry.Histogram // retransmissions per acked flight
}

// Congestion is the optional loss-based congestion control of §7
// (Discussion): an AIMD congestion window whose ceiling is the reliability
// window W — "the congestion window should not exceed the maximum window
// defined in the reliability mechanism, protecting the switch receive
// window from malfunctioning". Slow start doubles per window of ACKs up to
// ssthresh, then congestion avoidance adds one packet per window; a timeout
// halves ssthresh and restarts from a small window.
type congestion struct {
	cwnd     float64
	ssthresh float64
	max      float64
}

func newCongestion(w int) *congestion {
	return &congestion{cwnd: 2, ssthresh: float64(w) / 2, max: float64(w)}
}

func (c *congestion) allow() int { return int(c.cwnd) }

func (c *congestion) onAck() {
	if c.cwnd < c.ssthresh {
		c.cwnd++ // slow start
	} else {
		c.cwnd += 1 / c.cwnd // congestion avoidance
	}
	if c.cwnd > c.max {
		c.cwnd = c.max
	}
}

func (c *congestion) onTimeout() {
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 2 {
		c.ssthresh = 2
	}
	c.cwnd = 2
}

// Sender is the host-side sliding window of §3.3: at most W packets in
// flight, per-packet retransmission on a fine-grained timeout (100 µs in the
// paper), and no reaction to out-of-order ACKs — the switch and the host
// receiver both emit ACKs, so ordering carries no loss signal.
//
// Sequence numbers are assigned by the window so the in-flight span never
// exceeds W, which the switch's receive window requires.
type Sender struct {
	sim      *sim.Simulation
	w        uint32
	timeout  time.Duration
	transmit func(*wire.Packet)

	nextSeq  uint32
	base     uint32 // lowest unacked sequence
	inflight map[uint32]*flight

	spaceSig *sim.Signal // fired when window space opens
	idleSig  *sim.Signal // fired when nothing is in flight

	// maxRetries bounds per-packet retransmissions (0 = unlimited, the
	// paper's behavior). When a flight exhausts it the window fails: all
	// timers stop and blocked senders observe Err() instead of retrying
	// into a dead peer forever.
	maxRetries int
	backoff    bool // exponential per-flight retransmission backoff
	err        error

	cc   *congestion // nil unless EnableCongestionControl
	met  senderMetrics
	tr   *telemetry.Tracer
	flow string // label for trace events; set by Instrument
}

type flight struct {
	pkt    *wire.Packet
	timer  sim.Timer
	tries  int      // retransmissions so far
	sentAt sim.Time // first transmission time (RTT sampling)
}

// NewSender returns a sender window. transmit is invoked for every
// transmission and retransmission; it must not retain the packet.
func NewSender(s *sim.Simulation, w int, timeout time.Duration, transmit func(*wire.Packet)) *Sender {
	if w <= 0 || w&(w-1) != 0 {
		panic("window: sender window must be a positive power of two")
	}
	if timeout <= 0 {
		panic("window: non-positive retransmission timeout")
	}
	if transmit == nil {
		panic("window: nil transmit")
	}
	return &Sender{
		sim:      s,
		w:        uint32(w),
		timeout:  timeout,
		transmit: transmit,
		inflight: make(map[uint32]*flight),
		spaceSig: sim.NewSignal(s),
		idleSig:  sim.NewSignal(s),
		met: senderMetrics{
			sent:        &telemetry.Counter{},
			retransmits: &telemetry.Counter{},
			acked:       &telemetry.Counter{},
			dupAcks:     &telemetry.Counter{},
			aborts:      &telemetry.Counter{},
			resets:      &telemetry.Counter{},
		},
	}
}

// Instrument moves the window's counters onto a shared registry under
// window.*{flow=...} names, adds RTT and flight-retry histograms plus an
// in-flight occupancy gauge, and enables stall/resume trace events. Call
// right after NewSender, before any traffic (counts recorded before the
// call stay on the private instruments). A zero sink is a no-op.
func (s *Sender) Instrument(sink telemetry.Sink, flow string) {
	if sink.Reg == nil {
		return
	}
	l := telemetry.L("flow", flow)
	s.met = senderMetrics{
		sent:        sink.Reg.Counter("window.sent_pkts", l),
		retransmits: sink.Reg.Counter("window.retransmits", l),
		acked:       sink.Reg.Counter("window.acked_pkts", l),
		dupAcks:     sink.Reg.Counter("window.dup_acks", l),
		aborts:      sink.Reg.Counter("window.aborts", l),
		resets:      sink.Reg.Counter("window.resets", l),
		rtt:         sink.Reg.Histogram("window.rtt_ns", l),
		tries:       sink.Reg.Histogram("window.flight_tries", l),
	}
	sink.Reg.GaugeFunc("window.in_flight", func() int64 { return int64(len(s.inflight)) }, l)
	s.tr = sink.Tr
	s.flow = flow
}

// Stats returns a snapshot of the counters.
func (s *Sender) Stats() SenderStats {
	return SenderStats{
		Sent:        s.met.sent.Value(),
		Retransmits: s.met.retransmits.Value(),
		Acked:       s.met.acked.Value(),
		DupAcks:     s.met.dupAcks.Value(),
		Aborts:      s.met.aborts.Value(),
		Resets:      s.met.resets.Value(),
	}
}

// InFlight returns the number of unacknowledged packets.
func (s *Sender) InFlight() int { return len(s.inflight) }

// Idle reports whether every sent packet has been acknowledged.
func (s *Sender) Idle() bool { return len(s.inflight) == 0 }

// EnableCongestionControl turns on the AIMD congestion window (§7). Call
// before the first Send.
func (s *Sender) EnableCongestionControl() { s.cc = newCongestion(int(s.w)) }

// SetMaxRetries bounds per-packet retransmissions; after n unanswered
// retransmissions of any one packet the window fails (Err() != nil) and all
// blocked senders are released. n = 0 restores unlimited retries.
func (s *Sender) SetMaxRetries(n int) { s.maxRetries = n }

// EnableBackoff switches retransmission to exponential backoff: the k-th
// retransmission of a packet waits timeout·2^min(k,6). Off by default so
// the paper's fixed fine-grained timeout is preserved.
func (s *Sender) EnableBackoff() { s.backoff = true }

// Failed reports whether the window has aborted.
func (s *Sender) Failed() bool { return s.err != nil }

// Err returns the abort error, or nil.
func (s *Sender) Err() error { return s.err }

// NextSeq returns the sequence number the next Send will use.
func (s *Sender) NextSeq() uint32 { return s.nextSeq }

// fail aborts the window: all retransmission timers stop and every blocked
// SendBlocking/WaitIdle caller wakes up observing Err().
func (s *Sender) fail(err error) {
	if s.err != nil {
		return
	}
	s.err = err
	s.met.aborts.Inc()
	s.tr.EmitNote(telemetry.CompWindow, "window_abort", 0, s.flow)
	// Timer.Stop only marks the event dead; stops of distinct timers
	// commute, so this iteration's order cannot escape.
	//askcheck:allow(simdeterminism)
	for _, f := range s.inflight {
		f.timer.Stop()
	}
	s.spaceSig.Fire()
	s.idleSig.Fire()
}

// Reset abandons all in-flight packets and clears a previous failure: timers
// stop, the base jumps to nextSeq, and blocked callers wake. The failover
// machinery calls it when the switch's receive-window state has been lost
// anyway (reboot) and the flow is about to be replayed out of band; sequence
// numbers are NOT reused, so receiver-side dedup state stays valid.
func (s *Sender) Reset() {
	// Timer stops commute (see fail); iteration order cannot escape.
	//askcheck:allow(simdeterminism)
	for _, f := range s.inflight {
		f.timer.Stop()
	}
	s.inflight = make(map[uint32]*flight)
	s.base = s.nextSeq
	s.err = nil
	s.met.resets.Inc()
	s.tr.EmitNote(telemetry.CompWindow, "window_reset", 0, s.flow)
	s.spaceSig.Fire()
	s.idleSig.Fire()
}

// Cwnd returns the current congestion window in packets (W when congestion
// control is off).
func (s *Sender) Cwnd() int {
	if s.cc == nil {
		return int(s.w)
	}
	return s.cc.allow()
}

// CanSend reports whether the window has room for another packet.
func (s *Sender) CanSend() bool {
	limit := s.w
	if s.cc != nil {
		if cl := uint32(s.cc.allow()); cl < limit {
			limit = cl
		}
	}
	return s.nextSeq-s.base < limit
}

// Send assigns the next sequence number to pkt, transmits it, and arms its
// retransmission timer. The caller must ensure CanSend; blocking callers use
// SendBlocking.
func (s *Sender) Send(pkt *wire.Packet) {
	if !s.CanSend() {
		panic(fmt.Sprintf("window: Send with full window (base=%d next=%d)", s.base, s.nextSeq))
	}
	pkt.Seq = s.nextSeq
	s.nextSeq++
	f := &flight{pkt: pkt, sentAt: s.sim.Now()}
	s.inflight[pkt.Seq] = f
	s.met.sent.Inc()
	s.transmit(pkt)
	s.arm(f)
}

// SendBlocking is Send for process-style callers: it blocks p until window
// space is available. It returns the window's abort error if the window
// fails while blocked (or already has).
func (s *Sender) SendBlocking(p *sim.Proc, pkt *wire.Packet) error {
	stalled := false
	for !s.CanSend() {
		if s.err != nil {
			return s.err
		}
		if !stalled {
			stalled = true
			s.tr.Emit(telemetry.CompWindow, "window_stall", int64(pkt.Task), int64(s.nextSeq-s.base), 0)
		}
		p.Wait(s.spaceSig)
	}
	if stalled {
		s.tr.Emit(telemetry.CompWindow, "window_resume", int64(pkt.Task), int64(s.nextSeq-s.base), 0)
	}
	if s.err != nil {
		return s.err
	}
	s.Send(pkt)
	return nil
}

// WaitIdle blocks p until all sent packets are acknowledged, or returns the
// abort error if the window fails first.
func (s *Sender) WaitIdle(p *sim.Proc) error {
	for !s.Idle() {
		if s.err != nil {
			return s.err
		}
		p.Wait(s.idleSig)
	}
	return s.err
}

func (s *Sender) arm(f *flight) {
	to := s.timeout
	if s.backoff && f.tries > 0 {
		shift := f.tries
		if shift > 6 {
			shift = 6
		}
		to = s.timeout << uint(shift)
	}
	f.timer = s.sim.After(to, func() {
		// Still unacked: retransmit and re-arm, unless the retry budget is
		// exhausted — then the peer is presumed dead and the window aborts.
		if s.maxRetries > 0 && f.tries >= s.maxRetries {
			s.fail(fmt.Errorf("window: packet seq=%d unacknowledged after %d retransmissions", f.pkt.Seq, f.tries))
			return
		}
		f.tries++
		s.met.retransmits.Inc()
		if s.cc != nil {
			s.cc.onTimeout()
		}
		s.transmit(f.pkt)
		s.arm(f)
	})
}

// Ack processes an acknowledgment for seq. Duplicate or unknown ACKs are
// counted and ignored.
func (s *Sender) Ack(seq uint32) {
	f, ok := s.inflight[seq]
	if !ok {
		s.met.dupAcks.Inc()
		return
	}
	f.timer.Stop()
	delete(s.inflight, seq)
	s.met.acked.Inc()
	// RTT histogram under Karn's rule: retransmitted flights are ambiguous
	// (the ACK may answer any copy), so only clean flights are sampled.
	if f.tries == 0 {
		s.met.rtt.Record(int64(s.sim.Now() - f.sentAt))
	}
	s.met.tries.Record(int64(f.tries))
	ccGrew := false
	if s.cc != nil {
		before := s.cc.allow()
		s.cc.onAck()
		ccGrew = s.cc.allow() > before
	}
	// Advance the base over the acknowledged prefix.
	advanced := false
	for s.base != s.nextSeq {
		if _, live := s.inflight[s.base]; live {
			break
		}
		s.base++
		advanced = true
	}
	if advanced || ccGrew {
		s.spaceSig.Fire()
	}
	if len(s.inflight) == 0 {
		s.idleSig.Fire()
	}
}
