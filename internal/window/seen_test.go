package window

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSeenUpdateFourCases(t *testing.T) {
	// The four cases of §3.3.
	cases := []struct {
		odd          bool
		cur          uint64
		wantObserved bool
		wantNext     uint64
	}{
		{false, 0, false, 1}, // case 1: even, bit 0 → unobserved, set
		{false, 1, true, 1},  // case 2: even, bit 1 → observed, set
		{true, 1, false, 0},  // case 3: odd, bit 1 → unobserved, unset
		{true, 0, true, 0},   // case 4: odd, bit 0 → observed, unset
	}
	for i, c := range cases {
		next, obs := SeenUpdate(c.cur, c.odd)
		if obs != c.wantObserved || next != c.wantNext {
			t.Errorf("case %d: SeenUpdate(%d, odd=%v) = (%d,%v), want (%d,%v)",
				i+1, c.cur, c.odd, next, obs, c.wantNext, c.wantObserved)
		}
	}
}

func TestCompactHalvesMemory(t *testing.T) {
	w := 256
	if NewCompactSeen(w).Bits() != w || NewNaiveSeen(w).Bits() != 2*w {
		t.Fatal("memory accounting wrong: compact must be W bits, naive 2W")
	}
}

func TestSeqLess(t *testing.T) {
	cases := []struct {
		a, b uint32
		want bool
	}{
		{0, 1, true},
		{1, 0, false},
		{5, 5, false},
		{0xffffffff, 0, true}, // wraparound
		{0, 0xffffffff, false},
	}
	for _, c := range cases {
		if got := SeqLess(c.a, c.b); got != c.want {
			t.Errorf("SeqLess(%d,%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// windowedArrivalSeq generates an arrival sequence that respects the sender
// invariant: packet seq values only appear while within W of the highest
// sequence "opened" so far, and any packet may be retransmitted while in
// window. It returns the arrival order (with duplicates).
func windowedArrivalSeq(rng *rand.Rand, w, n int, start uint32) []uint32 {
	var arrivals []uint32
	next := start // next sequence to open
	live := []uint32{}
	for len(arrivals) < n {
		switch {
		case len(live) == 0 || (rng.Intn(2) == 0 && int(next-start) < n && len(live) < w):
			live = append(live, next)
			arrivals = append(arrivals, next)
			next++
		default:
			// Retransmit or retire a live packet.
			i := rng.Intn(len(live))
			if rng.Intn(2) == 0 {
				arrivals = append(arrivals, live[i])
			} else {
				live = append(live[:i], live[i+1:]...)
				// Keep span bounded: retire the oldest occasionally.
			}
		}
		// Enforce span <= w by retiring the oldest when needed.
		for len(live) > 0 && next-live[0] >= uint32(w) {
			live = live[1:]
		}
	}
	return arrivals
}

func TestCompactEquivalentToNaive(t *testing.T) {
	// Property (§3.3 "A Compact seen"): under any windowed arrival pattern,
	// the W-bit compact seen and the 2W-bit naïve seen classify every packet
	// identically.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		w := 1 << (2 + rng.Intn(5)) // 4..64
		start := rng.Uint32()       // arbitrary, including near wraparound
		if trial%5 == 0 {
			start = 0xffffff00 // force wraparound coverage
		}
		arrivals := windowedArrivalSeq(rng, w, 500, start)
		compact, naive := NewCompactSeenAt(w, start), NewNaiveSeen(w)
		for i, seq := range arrivals {
			co, no := compact.Observe(seq), naive.Observe(seq)
			if co != no {
				t.Fatalf("trial %d (w=%d): arrival %d seq=%d: compact=%v naive=%v",
					trial, w, i, seq, co, no)
			}
		}
	}
}

func TestCompactEquivalentToOracle(t *testing.T) {
	// Stronger property: both equal a set-based oracle (each sequence
	// observed exactly once on first arrival) under windowed arrivals.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		w := 1 << (3 + rng.Intn(4))
		start := rng.Uint32()
		arrivals := windowedArrivalSeq(rng, w, 800, start)
		compact := NewCompactSeenAt(w, start)
		seenSet := make(map[uint32]bool)
		for i, seq := range arrivals {
			want := seenSet[seq]
			seenSet[seq] = true
			if got := compact.Observe(seq); got != want {
				t.Fatalf("trial %d: arrival %d seq=%d: compact=%v oracle=%v", trial, i, seq, got, want)
			}
		}
	}
}

func TestCompactSeenWindowSizeValidation(t *testing.T) {
	for _, w := range []int{0, -1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCompactSeen(%d) did not panic", w)
				}
			}()
			NewCompactSeen(w)
		}()
	}
}

func TestStaleGuard(t *testing.T) {
	g := NewStaleGuard(8)
	if g.Check(100) {
		t.Fatal("first packet stale")
	}
	if g.Check(105) {
		t.Fatal("in-window packet stale")
	}
	if g.MaxSeq() != 105 {
		t.Fatalf("MaxSeq = %d", g.MaxSeq())
	}
	// Window is (105-8, 105] = (97,105]: 98 is live, 97 is stale.
	if g.Check(98) {
		t.Fatal("seq 98 should be live")
	}
	if !g.Check(97) {
		t.Fatal("seq 97 should be stale")
	}
	// Stale check must not regress max_seq.
	if g.MaxSeq() != 105 {
		t.Fatalf("MaxSeq moved to %d", g.MaxSeq())
	}
}

func TestStaleGuardWraparound(t *testing.T) {
	g := NewStaleGuard(16)
	if g.Check(0xfffffff8) {
		t.Fatal("first packet stale")
	}
	if g.Check(4) { // wrapped forward
		t.Fatal("wrapped packet stale")
	}
	if g.MaxSeq() != 4 {
		t.Fatalf("MaxSeq = %d, want 4", g.MaxSeq())
	}
	// Live window is (4-16, 4] = (0xfffffff4, 4]: 0xfffffff5 is live,
	// 0xfffffff4 is stale.
	if g.Check(0xfffffff5) {
		t.Fatal("in-window pre-wrap packet rejected")
	}
	if !g.Check(0xfffffff4) {
		t.Fatal("stale pre-wrap packet accepted")
	}
}

func TestDedupVerdicts(t *testing.T) {
	d := NewDedupAt(8, 10)
	if v := d.Observe(10); v != Fresh {
		t.Fatalf("first = %v", v)
	}
	if v := d.Observe(10); v != Duplicate {
		t.Fatalf("repeat = %v", v)
	}
	if v := d.Observe(11); v != Fresh {
		t.Fatalf("next = %v", v)
	}
	if v := d.Observe(30); v != Fresh {
		t.Fatalf("jump = %v", v)
	}
	if v := d.Observe(10); v != Stale {
		t.Fatalf("old = %v", v)
	}
	for _, v := range []Verdict{Fresh, Duplicate, Stale, Verdict(9)} {
		if v.String() == "" {
			t.Fatal("empty verdict string")
		}
	}
}

func TestDedupQuick(t *testing.T) {
	// Property: a Fresh verdict is given at most once per sequence number,
	// regardless of arrival pattern (even ones violating the window
	// invariant — staleness may misclassify, but fresh-twice would break
	// exactly-once aggregation; within the windowed pattern it cannot
	// happen).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := 1 << (3 + rng.Intn(3))
		start := rng.Uint32()
		d := NewDedupAt(w, start)
		fresh := make(map[uint32]int)
		for _, seq := range windowedArrivalSeq(rng, w, 600, start) {
			if d.Observe(seq) == Fresh {
				fresh[seq]++
				if fresh[seq] > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDedupEveryLivePacketFreshOnce(t *testing.T) {
	// Every distinct sequence that arrives while live must be classified
	// Fresh exactly once (never zero times): no packet is wrongly dropped.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		w := 1 << (3 + rng.Intn(3))
		start := rng.Uint32()
		arrivals := windowedArrivalSeq(rng, w, 600, start)
		d := NewDedupAt(w, start)
		fresh := make(map[uint32]int)
		distinct := make(map[uint32]bool)
		for _, seq := range arrivals {
			distinct[seq] = true
			if d.Observe(seq) == Fresh {
				fresh[seq]++
			}
		}
		for seq := range distinct {
			if fresh[seq] != 1 {
				t.Fatalf("trial %d: seq %d fresh %d times", trial, seq, fresh[seq])
			}
		}
	}
}

func TestPktState(t *testing.T) {
	ps := NewPktState(8)
	ps.Record(5, 0b1010)
	if got := ps.Lookup(5); got != 0b1010 {
		t.Fatalf("Lookup = %b", got)
	}
	// Same slot one window later overwrites (circular reuse).
	ps.Record(13, 0b0001)
	if got := ps.Lookup(5); got != 0b0001 {
		t.Fatalf("circular reuse broken: %b", got)
	}
}

func TestPktStateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPktState(0) did not panic")
		}
	}()
	NewPktState(0)
}

func TestCompactSeenAliasesOnGappedStreams(t *testing.T) {
	// The compact seen's known limitation (and why re-aggregation tiers use
	// TagSeen): when a slot's next touch lands an even number of windows
	// later, the parity trick misreads a fresh packet as a duplicate.
	w := 8
	compact, tagged := NewCompactSeen(w), NewTagSeen(w)
	if compact.Observe(2) || tagged.Observe(2) {
		t.Fatal("first appearance of seq 2 misread")
	}
	// seq w+2 never arrives (fully absorbed upstream); seq 2w+2 is fresh.
	if !compact.Observe(uint32(2*w + 2)) {
		t.Fatal("expected the compact seen to alias seq 2w+2 (documents the limitation)")
	}
	if tagged.Observe(uint32(2*w + 2)) {
		t.Fatal("TagSeen misread fresh seq 2w+2 as duplicate")
	}
}

func TestTagSeenEquivalentToOracleOnGappedStreams(t *testing.T) {
	// TagSeen must classify correctly under windowed arrivals with arbitrary
	// gaps: keep only a random subset of sequence numbers, as a spine that
	// sees only the residual packets of its leaves would.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		w := 1 << (3 + rng.Intn(4))
		start := rng.Uint32()
		if trial%5 == 0 {
			start = 0xffffff00 // wraparound coverage
		}
		keep := make(map[uint32]bool)
		arrivals := windowedArrivalSeq(rng, w, 800, start)
		for _, seq := range arrivals {
			if _, decided := keep[seq]; !decided {
				keep[seq] = rng.Intn(4) != 0
			}
		}
		tagged := NewTagSeen(w)
		seenSet := make(map[uint32]bool)
		for i, seq := range arrivals {
			if !keep[seq] {
				continue
			}
			want := seenSet[seq]
			seenSet[seq] = true
			if got := tagged.Observe(seq); got != want {
				t.Fatalf("trial %d (w=%d): arrival %d seq=%d: tagged=%v oracle=%v",
					trial, w, i, seq, got, want)
			}
		}
	}
}

func TestTagSeenValidation(t *testing.T) {
	for _, w := range []int{0, -1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTagSeen(%d) did not panic", w)
				}
			}()
			NewTagSeen(w)
		}()
	}
}
