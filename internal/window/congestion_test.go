package window

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

func TestCongestionWindowGrowth(t *testing.T) {
	s := sim.New(1)
	w := NewSender(s, 256, 100*time.Microsecond, func(*wire.Packet) {})
	w.EnableCongestionControl()
	if got := w.Cwnd(); got != 2 {
		t.Fatalf("initial cwnd = %d, want 2", got)
	}
	// Slow start: +1 per ACK until ssthresh (128).
	seq := uint32(0)
	sendAck := func() {
		w.Send(mkPkt())
		w.Ack(seq)
		seq++
	}
	for i := 0; i < 126; i++ {
		sendAck()
	}
	if got := w.Cwnd(); got != 128 {
		t.Fatalf("cwnd after slow start = %d, want 128", got)
	}
	// Congestion avoidance: sub-linear growth.
	for i := 0; i < 128; i++ {
		sendAck()
	}
	if got := w.Cwnd(); got < 128 || got > 130 {
		t.Fatalf("cwnd in avoidance = %d, want ~129", got)
	}
}

func TestCongestionCappedAtW(t *testing.T) {
	s := sim.New(1)
	w := NewSender(s, 32, 100*time.Microsecond, func(*wire.Packet) {})
	w.EnableCongestionControl()
	seq := uint32(0)
	for i := 0; i < 500; i++ {
		w.Send(mkPkt())
		w.Ack(seq)
		seq++
	}
	// §7: the congestion window must never exceed the reliability window.
	if got := w.Cwnd(); got != 32 {
		t.Fatalf("cwnd = %d, want capped at W=32", got)
	}
}

func TestCongestionTimeoutBackoff(t *testing.T) {
	s := sim.New(1)
	tx := 0
	w := NewSender(s, 256, 100*time.Microsecond, func(*wire.Packet) { tx++ })
	w.EnableCongestionControl()
	seq := uint32(0)
	for i := 0; i < 62; i++ { // grow cwnd to 64
		w.Send(mkPkt())
		w.Ack(seq)
		seq++
	}
	if w.Cwnd() != 64 {
		t.Fatalf("setup cwnd = %d", w.Cwnd())
	}
	// Leave one packet unacked past its timeout.
	w.Send(mkPkt())
	s.Run(sim.Time(150 * time.Microsecond))
	if got := w.Cwnd(); got != 2 {
		t.Fatalf("cwnd after timeout = %d, want 2", got)
	}
	// Recovery is slow-start up to half the old cwnd (ssthresh 32).
	w.Ack(seq)
	seq++
	for i := 0; i < 29; i++ {
		w.Send(mkPkt())
		w.Ack(seq)
		seq++
	}
	if got := w.Cwnd(); got != 32 {
		t.Fatalf("cwnd at recovered ssthresh = %d, want 32", got)
	}
	// Beyond ssthresh, growth is additive: ~+1 per window of ACKs, far
	// from slow start's doubling.
	for i := 0; i < 40; i++ {
		w.Send(mkPkt())
		w.Ack(seq)
		seq++
	}
	if got := w.Cwnd(); got != 33 {
		t.Fatalf("avoidance cwnd = %d, want 33", got)
	}
}

func TestCongestionLimitsInflight(t *testing.T) {
	s := sim.New(1)
	w := NewSender(s, 256, time.Second, func(*wire.Packet) {})
	w.EnableCongestionControl()
	n := 0
	for w.CanSend() {
		w.Send(mkPkt())
		n++
	}
	if n != 2 {
		t.Fatalf("initial in-flight allowance = %d, want cwnd 2", n)
	}
}

func TestCongestionOffUnlimitedToW(t *testing.T) {
	s := sim.New(1)
	w := NewSender(s, 64, time.Second, func(*wire.Packet) {})
	if w.Cwnd() != 64 {
		t.Fatalf("Cwnd without CC = %d, want W", w.Cwnd())
	}
	n := 0
	for w.CanSend() {
		w.Send(mkPkt())
		n++
	}
	if n != 64 {
		t.Fatalf("in-flight = %d, want full W", n)
	}
}
