package window

// Failure-model tests for the reliability layer: bounded retransmission
// (max-retry abort + Reset recovery), retransmission backoff, and the compact
// seen's behaviour across W-bit segment parity flips and 32-bit sequence
// wraparound — including the NewCompactSeenAt prepared-parity initialization
// that RegisterFlowAt relies on after a switch reboot.

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/wire"
)

func TestSenderMaxRetriesAborts(t *testing.T) {
	s := sim.New(1)
	tx := 0
	w := NewSender(s, 4, 100*time.Microsecond, func(p *wire.Packet) { tx++ })
	w.SetMaxRetries(3)
	w.Send(mkPkt())
	s.Run(0)
	// Initial transmission + 3 retries, then the window gives up.
	if tx != 4 {
		t.Fatalf("transmissions = %d, want 4 (1 initial + 3 retries)", tx)
	}
	if !w.Failed() || w.Err() == nil {
		t.Fatal("window did not fail after exhausting retries")
	}
	if w.Stats().Aborts != 1 {
		t.Fatalf("Aborts = %d, want 1", w.Stats().Aborts)
	}
}

func TestSenderFailWakesBlockedSender(t *testing.T) {
	// A process blocked in SendBlocking (window full) or WaitIdle must be
	// released with an error when retries run out, not sleep forever.
	s := sim.New(1)
	w := NewSender(s, 1, 100*time.Microsecond, func(p *wire.Packet) {})
	w.SetMaxRetries(2)
	var sendErr, idleErr error
	done := false
	s.Spawn("sender", func(p *sim.Proc) {
		if err := w.SendBlocking(p, mkPkt()); err != nil {
			sendErr = err
		} else if sendErr = w.SendBlocking(p, mkPkt()); sendErr == nil {
			t.Error("second SendBlocking succeeded with a dead window")
		}
		idleErr = w.WaitIdle(p)
		done = true
	})
	s.Run(0)
	if !done {
		t.Fatal("sender still blocked after abort")
	}
	if sendErr == nil || idleErr == nil {
		t.Fatalf("errors not propagated: send=%v idle=%v", sendErr, idleErr)
	}
}

func TestSenderResetRestoresService(t *testing.T) {
	s := sim.New(1)
	delivered := 0
	drop := true
	var w *Sender
	w = NewSender(s, 4, 100*time.Microsecond, func(p *wire.Packet) {
		if !drop {
			delivered++
			seq := p.Seq
			s.After(time.Microsecond, func() { w.Ack(seq) })
		}
	})
	w.SetMaxRetries(2)
	w.Send(mkPkt())
	s.Run(0)
	if !w.Failed() {
		t.Fatal("window should have failed")
	}
	next := w.NextSeq()
	w.Reset()
	if w.Failed() || w.InFlight() != 0 {
		t.Fatal("Reset did not clear the failure")
	}
	if w.NextSeq() != next {
		t.Fatal("Reset must not reuse sequence numbers (receiver dedup state)")
	}
	// The link heals; subsequent sends complete.
	drop = false
	w.Send(mkPkt())
	s.Run(0)
	if delivered == 0 || !w.Idle() {
		t.Fatalf("window not serving after Reset: delivered=%d idle=%v", delivered, w.Idle())
	}
	if w.Stats().Resets != 1 {
		t.Fatalf("Resets = %d, want 1", w.Stats().Resets)
	}
}

func TestSenderBackoffSpacing(t *testing.T) {
	// With backoff enabled, retransmissions space out exponentially
	// (timeout << tries), so a dead switch is probed gently instead of at
	// full line rate.
	s := sim.New(1)
	var times []sim.Time
	w := NewSender(s, 4, 100*time.Microsecond, func(p *wire.Packet) { times = append(times, s.Now()) })
	w.EnableBackoff()
	w.SetMaxRetries(4)
	w.Send(mkPkt())
	s.Run(0)
	if len(times) != 5 {
		t.Fatalf("transmissions = %d, want 5", len(times))
	}
	// Gaps: 100µs, 200µs, 400µs, 800µs.
	want := []time.Duration{100, 200, 400, 800}
	for i := 1; i < len(times); i++ {
		gap := times[i].Sub(times[i-1])
		if gap != want[i-1]*time.Microsecond {
			t.Fatalf("gap %d = %v, want %vµs", i, gap, want[i-1])
		}
	}
}

func TestCompactSeenSegmentWraparound(t *testing.T) {
	// Table-driven walk of one bit (r = 0) across four consecutive W-sized
	// segments: the same Eq. 8 four cases, but exercised through the
	// alternating parity a long-lived flow sees as it wraps its W-bit state.
	const w = 8
	c := NewCompactSeen(w)
	steps := []struct {
		seq          uint32
		wantObserved bool
	}{
		{0, false},     // segment 0 (even): first appearance
		{0, true},      // retransmission inside the segment
		{w, false},     // segment 1 (odd): bit was left 1 = prepared
		{w, true},      // retransmission
		{2 * w, false}, // segment 2 (even): bit was left 0 = prepared
		{2 * w, true},
		{3 * w, false}, // segment 3 (odd)
		{3 * w, true},
	}
	for i, st := range steps {
		if got := c.Observe(st.seq); got != st.wantObserved {
			t.Fatalf("step %d: Observe(%d) = %v, want %v", i, st.seq, got, st.wantObserved)
		}
	}
}

func TestCompactSeenAtPreparedParity(t *testing.T) {
	// NewCompactSeenAt must initialize every bit to the "unobserved" sentinel
	// of the first segment that will touch it — the invariant RegisterFlowAt
	// reproduces in switch registers when a flow re-attaches mid-stream after
	// a reboot. Starts straddle segment boundaries, odd segments, and the
	// 32-bit sequence wraparound.
	const w = 16
	for _, start := range []uint32{0, 1, w - 1, w, w + 3, 2 * w, 3*w + 5, 0xFFFFFFF0, 0xFFFFFFFF} {
		c := NewCompactSeenAt(w, start)
		// The first W sequences from start must each be fresh exactly once.
		for i := uint32(0); i < w; i++ {
			seq := start + i // serial arithmetic wraps naturally
			if c.Observe(seq) {
				t.Fatalf("start %#x: seq %#x observed on first appearance", start, seq)
			}
			if !c.Observe(seq) {
				t.Fatalf("start %#x: seq %#x not observed on retransmit", start, seq)
			}
		}
		// And the following segment must again classify correctly.
		for i := uint32(0); i < w; i++ {
			seq := start + w + i
			if c.Observe(seq) {
				t.Fatalf("start %#x: next-segment seq %#x observed on first appearance", start, seq)
			}
		}
	}
}

func TestDedupAtAcrossSerialWraparound(t *testing.T) {
	// Full receive-window dedup re-attached near the top of the sequence
	// space: every live packet across the 2³²→0 wrap is fresh exactly once,
	// duplicates are flagged, and pre-re-attach stale packets are dropped.
	const w = 16
	start := uint32(0xFFFFFFF8) // 8 sequences before the wrap
	d := NewDedupAt(w, start)
	for i := uint32(0); i < 4*w; i++ {
		seq := start + i
		if v := d.Observe(seq); v != Fresh {
			t.Fatalf("seq %#x first appearance = %v, want fresh", seq, v)
		}
		if v := d.Observe(seq); v != Duplicate {
			t.Fatalf("seq %#x retransmit = %v, want duplicate", seq, v)
		}
	}
	// A packet from before the re-attach point is outside the live window.
	if v := d.Observe(start - 2*w); v != Stale {
		t.Fatalf("ancient packet = %v, want stale", v)
	}
}
