package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOpApply(t *testing.T) {
	cases := []struct {
		op      Op
		agg, v  int64
		want    int64
		wantStr string
	}{
		{OpSum, 3, 4, 7, "sum"},
		{OpMax, 3, 4, 4, "max"},
		{OpMax, 5, 4, 5, "max"},
		{OpMin, 3, 4, 3, "min"},
		{OpMin, 5, 4, 4, "min"},
		{OpCount, 3, 99, 4, "count"},
	}
	for _, c := range cases {
		if got := c.op.Apply(c.agg, c.v); got != c.want {
			t.Errorf("%v.Apply(%d,%d) = %d, want %d", c.op, c.agg, c.v, got, c.want)
		}
		if c.op.String() != c.wantStr {
			t.Errorf("String = %q, want %q", c.op.String(), c.wantStr)
		}
	}
}

func TestOpIdentity(t *testing.T) {
	for _, op := range []Op{OpSum, OpMax, OpMin, OpCount} {
		f := func(v int16) bool {
			// Folding a value into the identity yields what a fresh
			// aggregator should hold.
			got := op.Apply(op.Identity(), int64(v))
			switch op {
			case OpSum, OpMax, OpMin:
				return got == int64(v)
			case OpCount:
				return got == 1
			}
			return false
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("op %v: %v", op, err)
		}
	}
}

func TestResultMergeKVAndEqual(t *testing.T) {
	r := make(Result)
	r.MergeKV(KV{"a", 1}, OpSum)
	r.MergeKV(KV{"a", 2}, OpSum)
	r.MergeKV(KV{"b", 5}, OpSum)
	want := Result{"a": 3, "b": 5}
	if !r.Equal(want) {
		t.Fatalf("r = %v, want %v (%s)", r, want, r.Diff(want, 5))
	}
	if r.Equal(Result{"a": 3}) {
		t.Fatal("Equal ignored missing key")
	}
	if r.Equal(Result{"a": 3, "b": 6}) {
		t.Fatal("Equal ignored value mismatch")
	}
}

func TestResultMergePartials(t *testing.T) {
	// Merging two partial results must equal aggregating the union stream,
	// for every operator — this is the property the switch/host merge step
	// (§3.1 step ⑨) relies on.
	for _, op := range []Op{OpSum, OpMax, OpMin, OpCount} {
		rng := rand.New(rand.NewSource(7))
		var s1, s2 []KV
		for i := 0; i < 500; i++ {
			kv := KV{fmt.Sprintf("k%d", rng.Intn(50)), int64(rng.Intn(100) - 50)}
			if rng.Intn(2) == 0 {
				s1 = append(s1, kv)
			} else {
				s2 = append(s2, kv)
			}
		}
		merged := Reference(op, s1)
		merged.Merge(Reference(op, s2), op)
		want := Reference(op, s1, s2)
		if !merged.Equal(want) {
			t.Errorf("op %v: merge of partials != union aggregate: %s", op, merged.Diff(want, 5))
		}
	}
}

func TestReferenceMatchesManualSum(t *testing.T) {
	got := Reference(OpSum,
		[]KV{{"x", 1}, {"y", 2}, {"x", 3}},
		[]KV{{"y", 4}, {"z", 5}},
	)
	want := Result{"x": 4, "y": 6, "z": 5}
	if !got.Equal(want) {
		t.Fatalf("Reference = %v, want %v", got, want)
	}
}

func TestDiffOutput(t *testing.T) {
	a := Result{"a": 1, "b": 2}
	b := Result{"a": 1, "b": 3, "c": 4}
	d := a.Diff(b, 10)
	if d == "<equal>" {
		t.Fatal("Diff reported equal for different results")
	}
	if a.Diff(a, 10) != "<equal>" {
		t.Fatal("Diff of identical results not <equal>")
	}
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if got := cfg.ShortSlots(); got != 16 {
		t.Fatalf("ShortSlots = %d, want 16 (32 AAs - 8 groups × 2 segs)", got)
	}
	if got := cfg.MaxMediumKeyBytes(); got != 8 {
		t.Fatalf("MaxMediumKeyBytes = %d, want 8", got)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.NumAAs = 0 },
		func(c *Config) { c.NumAAs = 65 },
		func(c *Config) { c.AARows = 0 },
		func(c *Config) { c.KPartBytes = 0 },
		func(c *Config) { c.KPartBytes = 5 },
		func(c *Config) { c.MediumGroups = 17 }, // 17×2 > 32
		func(c *Config) { c.MediumGroups = 1; c.MediumSegs = 1 },
		func(c *Config) { c.Window = 0 },
		func(c *Config) { c.DataChannels = 0 },
		func(c *Config) { c.AARows = 3; c.ShadowCopy = true },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted: %+v", i, cfg)
		}
	}
}

func TestTaskAndFlowStrings(t *testing.T) {
	f := FlowKey{Host: 3, Channel: 1}
	if f.String() != "h3/ch1" {
		t.Fatalf("FlowKey.String = %q", f.String())
	}
	if Op(200).String() == "" {
		t.Fatal("unknown op String empty")
	}
}
