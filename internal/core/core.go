// Package core defines the shared vocabulary of the ASK reproduction: keys
// and values, aggregation results, task descriptors, identifiers, and the
// service configuration shared by the host daemon (internal/hostd) and the
// switch program (internal/switchd).
//
// ASK aggregates key-value streams: each of M senders emits a sequence of
// (key, value) tuples, and the receiver obtains, for every distinct key, the
// aggregate of all values carried by that key across all streams (§2.1.1 of
// the paper). Aggregation is asynchronous — keys are unordered,
// unforeseeable, and senders are not synchronized.
package core

import (
	"fmt"
	"sort"
	"time"
)

// KV is a single key-value tuple of a stream. Keys are arbitrary byte
// strings; values are 64-bit integers on the host side (the switch stores
// only the low AggregatorBits/2 bits of intermediate sums; see Config).
type KV struct {
	Key string
	Val int64
}

// HostID identifies a server attached to the switch.
type HostID uint16

// TaskID identifies an aggregation task. Multi-tenant deployments encode the
// tenant in the high bits (§7, Multi-Tenancy).
type TaskID uint32

// TenantID identifies one tenant of a shared fabric. Tenant 0 is the
// "untenanted" legacy namespace: single-job deployments never set it, and
// every zero-tenant code path is byte-identical to the pre-tenancy system.
type TenantID uint8

// MakeTaskID packs a tenant and a per-tenant task sequence number into one
// TaskID (tenant in the high byte, per the §7 convention already used by the
// flow tables).
func MakeTaskID(tenant TenantID, seq uint32) TaskID {
	return TaskID(uint32(tenant)<<24 | seq&0x00ffffff)
}

// Tenant extracts the owning tenant from a task ID.
func (t TaskID) Tenant() TenantID { return TenantID(t >> 24) }

// ChannelID identifies a data channel of a host daemon. The pair
// (HostID, ChannelID) names a persistent flow whose reliability state
// (seen/PktState) lives on the switch for the lifetime of the service.
type ChannelID uint8

// FlowKey names one persistent data-channel flow from a sender host.
type FlowKey struct {
	Host    HostID
	Channel ChannelID
}

func (f FlowKey) String() string { return fmt.Sprintf("h%d/ch%d", f.Host, f.Channel) }

// Op is the aggregation operator. The paper's workloads use Sum
// (reduce/allreduce); the switch model also supports the other commutative,
// idempotent-free operators expressible in one register action.
type Op uint8

const (
	OpSum Op = iota
	OpMax
	OpMin
	OpCount
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	case OpCount:
		return "count"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Apply combines an existing aggregate with a new value.
func (o Op) Apply(agg, v int64) int64 {
	switch o {
	case OpSum:
		return agg + v
	case OpMax:
		if v > agg {
			return v
		}
		return agg
	case OpMin:
		if v < agg {
			return v
		}
		return agg
	case OpCount:
		return agg + 1
	default:
		panic(fmt.Sprintf("core: unknown op %d", o))
	}
}

// Identity returns the operator's identity element (the value an aggregator
// holds when first reserved, before applying the reserving tuple).
func (o Op) Identity() int64 {
	switch o {
	case OpSum, OpCount:
		return 0
	case OpMax:
		return -1 << 62
	case OpMin:
		return 1 << 62
	default:
		panic(fmt.Sprintf("core: unknown op %d", o))
	}
}

// Result is a completed aggregation: final value per distinct key.
type Result map[string]int64

// MergeKV folds a single tuple into the result under op.
func (r Result) MergeKV(kv KV, op Op) {
	if cur, ok := r[kv.Key]; ok {
		r[kv.Key] = op.Apply(cur, kv.Val)
	} else {
		r[kv.Key] = op.Apply(op.Identity(), kv.Val)
	}
}

// Merge folds another result into r under op.
func (r Result) Merge(other Result, op Op) {
	for k, v := range other {
		if cur, ok := r[k]; ok {
			r[k] = combinePartial(op, cur, v)
		} else {
			r[k] = v
		}
	}
}

// combinePartial combines two partial aggregates (as opposed to folding in a
// raw value). For Count the partials are themselves counts, so they add.
func combinePartial(op Op, a, b int64) int64 {
	if op == OpCount {
		return a + b
	}
	return op.Apply(a, b)
}

// Equal reports whether two results are identical.
func (r Result) Equal(other Result) bool {
	if len(r) != len(other) {
		return false
	}
	for k, v := range r {
		if ov, ok := other[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// Diff returns a short human-readable description of up to max differences
// between r and other, for test failure messages.
func (r Result) Diff(other Result, max int) string {
	var diffs []string
	for k, v := range r {
		ov, ok := other[k]
		if !ok {
			diffs = append(diffs, fmt.Sprintf("%q: %d vs <missing>", k, v))
		} else if ov != v {
			diffs = append(diffs, fmt.Sprintf("%q: %d vs %d", k, v, ov))
		}
	}
	for k, v := range other {
		if _, ok := r[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("%q: <missing> vs %d", k, v))
		}
	}
	sort.Strings(diffs)
	if len(diffs) > max {
		diffs = append(diffs[:max], fmt.Sprintf("... and %d more", len(diffs)-max))
	}
	if len(diffs) == 0 {
		return "<equal>"
	}
	return fmt.Sprintf("%d diffs: %v", len(diffs), diffs)
}

// Reference computes the ground-truth aggregation of the given streams with
// a plain hash map. Tests use it as the correctness oracle (Eq. 2).
func Reference(op Op, streams ...[]KV) Result {
	r := make(Result)
	for _, s := range streams {
		for _, kv := range s {
			r.MergeKV(kv, op)
		}
	}
	return r
}

// Stream lazily yields the key-value tuples of one sender's stream; it
// returns ok == false when exhausted. Streams are single-use; workload
// generators hand out fresh ones so large streams never materialize.
type Stream func() (kv KV, ok bool)

// SliceStream returns a Stream over kvs.
func SliceStream(kvs []KV) Stream {
	i := 0
	return func() (KV, bool) {
		if i >= len(kvs) {
			return KV{}, false
		}
		kv := kvs[i]
		i++
		return kv, true
	}
}

// Collect drains a stream into a slice (test-sized streams only).
func Collect(s Stream) []KV {
	var out []KV
	for {
		kv, ok := s()
		if !ok {
			return out
		}
		out = append(out, kv)
	}
}

// ReferenceStreams aggregates streams with a plain map: the ground truth for
// arbitrary-size streams.
func ReferenceStreams(op Op, streams ...Stream) Result {
	r := make(Result)
	for _, s := range streams {
		for {
			kv, ok := s()
			if !ok {
				break
			}
			r.MergeKV(kv, op)
		}
	}
	return r
}

// TimedKV is one tuple of a timed stream: the tuple plus its arrival offset
// from the start of the stream. Timed streams model temporal workloads —
// bursts, diurnal cycles, trace replays — where tuples become available to
// the sending daemon at their arrival times rather than back-to-back.
type TimedKV struct {
	KV
	// At is the arrival offset from stream start; offsets within one stream
	// are non-decreasing.
	At time.Duration
}

// TimedStream lazily yields timestamped tuples in non-decreasing At order;
// it returns ok == false when exhausted. Like Stream, timed streams are
// single-use.
type TimedStream func() (tkv TimedKV, ok bool)

// SliceTimedStream returns a TimedStream over tkvs.
func SliceTimedStream(tkvs []TimedKV) TimedStream {
	i := 0
	return func() (TimedKV, bool) {
		if i >= len(tkvs) {
			return TimedKV{}, false
		}
		tkv := tkvs[i]
		i++
		return tkv, true
	}
}

// CollectTimed drains a timed stream into a slice (test-sized streams only).
func CollectTimed(ts TimedStream) []TimedKV {
	var out []TimedKV
	for {
		tkv, ok := ts()
		if !ok {
			return out
		}
		out = append(out, tkv)
	}
}

// Untimed projects a timed stream onto its tuples, discarding arrival times.
func (ts TimedStream) Untimed() Stream {
	return func() (KV, bool) {
		tkv, ok := ts()
		return tkv.KV, ok
	}
}

// Timed lifts a plain stream into a timed one with every arrival at offset
// zero (immediately available — the back-to-back regime).
func (s Stream) Timed() TimedStream {
	return func() (TimedKV, bool) {
		kv, ok := s()
		return TimedKV{KV: kv}, ok
	}
}

// TaskSpec describes one aggregation task submitted to the service: a set of
// sender hosts streaming tuples toward a single receiver host (§3.1).
type TaskSpec struct {
	ID       TaskID
	Receiver HostID
	Senders  []HostID
	Op       Op
	// Rows is the total number of aggregator rows (per AA, both shadow
	// copies together) requested from the switch controller. Zero requests
	// the largest free block; a negative value runs the task transport-only
	// (no switch region, all aggregation at the receiver host — the
	// SparkSHM baseline of §5.1).
	Rows int
}

// Config collects the tunables of an ASK deployment. The defaults mirror the
// paper's prototype (§4): 32 AAs per pipeline, 32768 aggregators per AA,
// 64-bit aggregators (n = 32-bit kPart + 32-bit vPart), medium-key groups
// with m = 2 AAs in k = 8 groups, and a sliding window of W = 256 packets.
type Config struct {
	// NumAAs is the number of aggregator arrays, which equals the number of
	// tuple slots in a packet payload (§3.2.1).
	NumAAs int
	// AARows is the number of aggregators in each AA (both copies together;
	// the shadow-copy mechanism splits it in half at runtime, §3.4).
	AARows int
	// KPartBytes is n/8: bytes of key a single aggregator stores (§3.2.1).
	KPartBytes int
	// MediumGroups (k) and MediumSegs (m) configure coalesced placement for
	// variable-length keys: k groups of m physically adjacent AAs handle
	// keys of length (KPartBytes, KPartBytes*m] (§3.2.3).
	MediumGroups int
	MediumSegs   int
	// Window is the sender sliding-window size W in packets (§3.3).
	Window int
	// RetransmitTimeout is the sender's fine-grained per-packet timeout
	// (100µs in the paper vs. Linux's default 200ms).
	RetransmitTimeout time.Duration
	// DataChannels is the number of data channels per host daemon
	// (default 4, §5.1).
	DataChannels int
	// SwapThreshold is the number of received packets after which the host
	// receiver triggers a shadow-copy swap (§3.4). Zero disables swapping.
	SwapThreshold int
	// ShadowCopy enables the hot-key agnostic prioritization mechanism.
	ShadowCopy bool
	// CongestionControl enables the loss-based AIMD congestion window of
	// §7 on every data channel, bounded by Window as the paper requires.
	CongestionControl bool
	// Failover enables the switch-failure failover protocol: host daemons
	// probe the switch for liveness, detect reboots via the epoch stamped in
	// ACKs and probe replies, degrade to host-only aggregation while the
	// switch is unavailable, and re-attach (replaying absorbed history) when
	// it recovers. Requires ShadowCopy off: mid-task swap fetches cannot be
	// attributed to individual packets, which the exactly-once replay
	// reconciliation needs.
	Failover bool
	// ProbeInterval is the idle spacing between health probes when Failover
	// is on (zero selects the 200µs default).
	ProbeInterval time.Duration
	// ProbeMisses is the number of consecutive unanswered probes after which
	// a daemon declares the switch down and enters degraded mode (zero
	// selects the default of 3).
	ProbeMisses int
	// MaxRetries bounds per-packet retransmissions on the data channels
	// before the sender aborts the window (the degradation ladder's last
	// rung). Zero means retry forever — the right setting under Failover,
	// where recovery is handled by the replay protocol instead.
	MaxRetries int
	// DisableChecksumVerify turns off end-to-end CRC32C verification on
	// switch and host ingress (wire.Codec.SkipVerify). It exists solely as a
	// fault-injection hook: the chaos soak harness flips it to prove it
	// detects a deployment whose integrity checking is broken. Never set it
	// in production configurations.
	DisableChecksumVerify bool
}

// DefaultConfig returns the paper's prototype configuration.
func DefaultConfig() Config {
	return Config{
		NumAAs:            32,
		AARows:            32768,
		KPartBytes:        4,
		MediumGroups:      8,
		MediumSegs:        2,
		Window:            256,
		RetransmitTimeout: 100 * time.Microsecond,
		DataChannels:      4,
		SwapThreshold:     4096,
		ShadowCopy:        true,
	}
}

// Validate checks internal consistency of the configuration.
func (c Config) Validate() error {
	if c.NumAAs <= 0 || c.NumAAs > 64 {
		return fmt.Errorf("core: NumAAs %d out of range (1..64, bitmap is 64-bit)", c.NumAAs)
	}
	if c.AARows <= 0 {
		return fmt.Errorf("core: AARows must be positive")
	}
	// An aggregator is one 2n-bit register entry (16/32/64-bit, §3.2.1), so
	// the kPart n is at most 32 bits.
	if c.KPartBytes <= 0 || c.KPartBytes > 4 {
		return fmt.Errorf("core: KPartBytes %d out of range (1..4)", c.KPartBytes)
	}
	if c.MediumSegs < 0 || c.MediumGroups < 0 {
		return fmt.Errorf("core: negative medium-key parameters")
	}
	if c.MediumGroups*c.MediumSegs > c.NumAAs {
		return fmt.Errorf("core: medium groups need %d AAs, only %d available",
			c.MediumGroups*c.MediumSegs, c.NumAAs)
	}
	if c.MediumGroups > 0 && c.MediumSegs < 2 {
		return fmt.Errorf("core: MediumSegs must be >= 2 when MediumGroups > 0")
	}
	// The window must be a power of two so the compact seen's even/odd
	// segment parity stays consistent across 32-bit sequence wraparound.
	if c.Window <= 0 || c.Window&(c.Window-1) != 0 {
		return fmt.Errorf("core: Window %d must be a positive power of two", c.Window)
	}
	if c.DataChannels <= 0 {
		return fmt.Errorf("core: DataChannels must be positive")
	}
	if c.ShadowCopy && c.AARows%2 != 0 {
		return fmt.Errorf("core: AARows must be even when ShadowCopy is on")
	}
	if c.Failover && c.ShadowCopy {
		return fmt.Errorf("core: Failover requires ShadowCopy off (replay reconciliation cannot attribute swap fetches to packets)")
	}
	if c.ProbeInterval < 0 {
		return fmt.Errorf("core: ProbeInterval must be non-negative")
	}
	if c.ProbeMisses < 0 || c.MaxRetries < 0 {
		return fmt.Errorf("core: ProbeMisses and MaxRetries must be non-negative")
	}
	return nil
}

// DefaultProbeInterval and DefaultProbeMisses are the failover prober's
// defaults when the corresponding Config fields are zero.
const (
	DefaultProbeInterval = 200 * time.Microsecond
	DefaultProbeMisses   = 3
)

// ShortSlots returns the number of packet slots (and AAs) serving short keys,
// i.e. those not dedicated to medium-key groups.
func (c Config) ShortSlots() int { return c.NumAAs - c.MediumGroups*c.MediumSegs }

// MaxMediumKeyBytes returns the longest key (in bytes) a medium group can
// hold; longer keys bypass the switch entirely.
func (c Config) MaxMediumKeyBytes() int { return c.KPartBytes * c.MediumSegs }
