package core

import "fmt"

// DegradedError is the typed degradation signal of the failure model
// (ROADMAP item 3's DEGRADED rung): a control-plane operation could not be
// served in-network because the switches it needs are down, and the caller
// must fall back to host-only aggregation until the fabric heals. It is a
// transient condition — the next fabric epoch (a reboot) re-opens the
// in-network path — which distinguishes it from permanent rejections such as
// quota overloads (tenancy.OverloadError). Match with errors.As.
type DegradedError struct {
	// Op names the failed control-plane operation ("register-flow",
	// "alloc-region", ...).
	Op string
	// Addr is the fabric address of the unavailable switch, or 0 when the
	// whole candidate set was down rather than one specific switch.
	Addr HostID
	// Attempts counts the aggregation points that were tried (or skipped as
	// down) before the operation gave up.
	Attempts int
}

func (e *DegradedError) Error() string {
	if e.Addr != 0 {
		return fmt.Sprintf("core: %s degraded: switch %#x is down (%d attempts)", e.Op, uint16(e.Addr), e.Attempts)
	}
	return fmt.Sprintf("core: %s degraded: no live aggregation point (%d attempts)", e.Op, e.Attempts)
}
