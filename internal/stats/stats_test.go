package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestGbpsAndRate(t *testing.T) {
	// 125 MB in 10 ms = 100 Gbps.
	if got := Gbps(125_000_000, 10*time.Millisecond); math.Abs(got-100) > 1e-9 {
		t.Fatalf("Gbps = %v", got)
	}
	if got := Rate(500, time.Second/2); got != 1000 {
		t.Fatalf("Rate = %v", got)
	}
	if Gbps(1, 0) != 0 || Rate(1, 0) != 0 {
		t.Fatal("zero-duration rates should be 0")
	}
}

func TestCDFQuantiles(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.Quantile(0.5); got != 50 {
		t.Fatalf("median = %v", got)
	}
	if got := c.Quantile(0.99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := c.Quantile(1); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := c.Mean(); got != 50.5 {
		t.Fatalf("mean = %v", got)
	}
	if got := c.At(50); got != 0.5 {
		t.Fatalf("At(50) = %v", got)
	}
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(200); got != 1 {
		t.Fatalf("At(200) = %v", got)
	}
}

func TestCDFAddN(t *testing.T) {
	var c CDF
	c.AddN(3, 5)
	c.AddN(7, 5)
	if c.N() != 10 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.Mean(); got != 5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestEmptyCDF(t *testing.T) {
	var c CDF
	if !math.IsNaN(c.Quantile(0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	if c.Mean() != 0 || c.At(1) != 0 {
		t.Fatal("empty mean/At should be 0")
	}
}

func TestTableFormatting(t *testing.T) {
	tb := Table{
		Title:  "Fig. X",
		Note:   "a note",
		Header: []string{"name", "value", "time"},
	}
	tb.AddRow("alpha", 3.14159, 1500*time.Millisecond)
	tb.AddRow("beta-long-name", 12345.6, time.Millisecond/2)
	tb.AddRow("tiny", 0.0001, time.Second)
	s := tb.String()
	for _, want := range []string{"Fig. X", "a note", "alpha", "3.14", "12346", "1.5s", "beta-long-name", "1.00e-04"} {
		if !strings.Contains(s, want) {
			t.Fatalf("table output missing %q:\n%s", want, s)
		}
	}
	// Columns aligned: header and separator lines have equal length.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", s)
	}
}
