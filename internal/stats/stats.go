// Package stats provides the small numeric and formatting utilities the
// benchmark harness uses to print the paper's tables and series: rate
// conversions, CDFs, and fixed-width tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Gbps converts a byte count over a duration to gigabits per second.
func Gbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e9
}

// Rate converts a count over a duration to events per second.
func Rate(count int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(count) / d.Seconds()
}

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

// AddN appends a sample with multiplicity n (histogram ingestion).
func (c *CDF) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		c.samples = append(c.samples, x)
	}
	c.sorted = false
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// Mean returns the sample mean (0 for no samples).
func (c *CDF) Mean() float64 {
	if len(c.samples) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range c.samples {
		s += x
	}
	return s / float64(len(c.samples))
}

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	idx := int(math.Ceil(q*float64(len(c.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.samples) {
		idx = len(c.samples) - 1
	}
	return c.samples[idx]
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Table is a printable result table: one per reproduced figure/table.
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row; values are stringified with %v, floats
// with three significant decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmtFloat(v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func fmtFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v != 0 && math.Abs(v) < 0.01:
		return fmt.Sprintf("%.2e", v)
	case math.Abs(v) >= 1000:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
