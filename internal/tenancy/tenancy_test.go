package tenancy

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/telemetry"
)

func mgr(t *testing.T, specs ...TenantSpec) *Manager {
	t.Helper()
	m, err := NewManager(specs, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestQuotasCoverPoolProportionally(t *testing.T) {
	cfg := core.DefaultConfig()
	m := mgr(t, TenantSpec{ID: 1, Weight: 1}, TenantSpec{ID: 2, Weight: 3})
	total := m.Quota(1) + m.Quota(2)
	if total != cfg.AARows {
		t.Fatalf("quotas sum to %d, want pool %d", total, cfg.AARows)
	}
	if m.Quota(2) != 3*m.Quota(1) {
		t.Fatalf("quota ratio %d:%d, want 1:3", m.Quota(1), m.Quota(2))
	}
}

func TestPartitionsMatchPartitionsFor(t *testing.T) {
	cfg := core.DefaultConfig()
	m := mgr(t, TenantSpec{ID: 7, Weight: 2}, TenantSpec{ID: 3, Weight: 1})
	want, err := keyspace.PartitionsFor([]int{2, 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []core.TenantID{7, 3} {
		got, err := m.Partition(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("tenant %d partition %v, want %v", id, got, want[i])
		}
	}
	if _, err := m.Partition(9); err == nil {
		t.Fatal("unknown tenant must error")
	}
}

func TestNewManagerValidates(t *testing.T) {
	cfg := core.DefaultConfig()
	cases := []struct {
		name  string
		specs []TenantSpec
	}{
		{"empty", nil},
		{"zero id", []TenantSpec{{ID: 0, Weight: 1}}},
		{"dup id", []TenantSpec{{ID: 1, Weight: 1}, {ID: 1, Weight: 2}}},
		{"bad weight", []TenantSpec{{ID: 1, Weight: 0}}},
	}
	for _, tc := range cases {
		if _, err := NewManager(tc.specs, cfg); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestAdmitWithinQuota(t *testing.T) {
	m := mgr(t, TenantSpec{ID: 1, Weight: 1}, TenantSpec{ID: 2, Weight: 1})
	q := m.Quota(1)
	if err := m.Admit(1, q); err != nil {
		t.Fatalf("full-quota admit failed: %v", err)
	}
	if m.InUse(1) != q {
		t.Fatalf("InUse %d, want %d", m.InUse(1), q)
	}
	m.Release(1, q)
	if m.InUse(1) != 0 {
		t.Fatalf("after release InUse %d, want 0", m.InUse(1))
	}
}

func TestAdmitOverQuotaRejectsTyped(t *testing.T) {
	m := mgr(t, TenantSpec{ID: 1, Weight: 1}, TenantSpec{ID: 2, Weight: 1})
	q := m.Quota(1)
	err := m.Admit(1, q+1)
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("want *OverloadError, got %v", err)
	}
	if ov.Tenant != 1 || ov.Need != q+1 || ov.Quota != q || ov.InUse != 0 {
		t.Fatalf("bad overload fields: %+v", ov)
	}
	if ov.Idle != m.Quota(1)+m.Quota(2) {
		t.Fatalf("Idle %d, want whole pool %d", ov.Idle, m.Quota(1)+m.Quota(2))
	}
	if m.InUse(1) != 0 {
		t.Fatal("rejected admit must not charge rows")
	}
}

func TestHotTenantBorrowsIdleRows(t *testing.T) {
	m := mgr(t, TenantSpec{ID: 1, Weight: 1}, TenantSpec{ID: 2, Weight: 1})
	q := m.Quota(1)

	// Not hot: over-quota rejected even with the whole pool idle.
	m.SetHotness(func(core.TenantID) float64 { return 0.1 })
	if err := m.Admit(1, q+10); err == nil {
		t.Fatal("cold tenant must not borrow")
	}

	// Hot: the same request rides on tenant 2's idle rows.
	m.SetHotness(func(core.TenantID) float64 { return 0.9 })
	if err := m.Admit(1, q+10); err != nil {
		t.Fatalf("hot borrow failed: %v", err)
	}
	if got := m.Borrowed(1); got != 10 {
		t.Fatalf("Borrowed %d, want 10", got)
	}

	// Release returns borrowed rows first.
	m.Release(1, 10)
	if got := m.Borrowed(1); got != 0 {
		t.Fatalf("Borrowed after release %d, want 0", got)
	}
}

func TestBorrowBoundedByOwnQuota(t *testing.T) {
	m := mgr(t, TenantSpec{ID: 1, Weight: 1}, TenantSpec{ID: 2, Weight: 3})
	m.SetHotness(func(core.TenantID) float64 { return 1.0 })
	q := m.Quota(1)
	// 2q total = q own + q borrowed: allowed (pool is idle).
	if err := m.Admit(1, 2*q); err != nil {
		t.Fatalf("borrow up to own quota failed: %v", err)
	}
	// One more row would exceed the borrow cap even though idle rows remain.
	err := m.Admit(1, 1)
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("want *OverloadError past borrow cap, got %v", err)
	}
	if ov.Idle == 0 {
		t.Fatal("rejection should report idle rows (policy, not exhaustion)")
	}
}

func TestBorrowNeedsIdleRows(t *testing.T) {
	m := mgr(t, TenantSpec{ID: 1, Weight: 1}, TenantSpec{ID: 2, Weight: 1})
	m.SetHotness(func(core.TenantID) float64 { return 1.0 })
	if err := m.Admit(2, m.Quota(2)); err != nil {
		t.Fatal(err)
	}
	// Tenant 2 holds all its rows; tenant 1 over-quota has nothing to borrow.
	err := m.Admit(1, m.Quota(1)+1)
	var ov *OverloadError
	if !errors.As(err, &ov) {
		t.Fatalf("want *OverloadError, got %v", err)
	}
	if ov.Idle != m.Quota(1) {
		t.Fatalf("Idle %d, want %d (only tenant 1's own unused rows)", ov.Idle, m.Quota(1))
	}
}

func TestSnapshotOrderedByID(t *testing.T) {
	m := mgr(t, TenantSpec{ID: 5, Weight: 1}, TenantSpec{ID: 2, Weight: 2})
	if err := m.Admit(5, 3); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if len(snap) != 2 || snap[0].Tenant != 2 || snap[1].Tenant != 5 {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if snap[1].InUse != 3 || snap[1].Borrowed != 0 {
		t.Fatalf("snapshot usage wrong: %+v", snap[1])
	}
}

func TestInstrumentPerTenantGauges(t *testing.T) {
	m := mgr(t, TenantSpec{ID: 1, Weight: 1}, TenantSpec{ID: 2, Weight: 3})
	reg := telemetry.NewRegistry()
	m.Instrument(reg)
	if err := m.Admit(2, 5); err != nil {
		t.Fatal(err)
	}
	var ov *OverloadError
	if err := m.Admit(1, 2*m.Quota(1)+1); !errors.As(err, &ov) {
		t.Fatalf("want *OverloadError, got %v", err)
	}
	g := reg.GaugeValues()
	for k, want := range map[string]int64{
		`tenancy.quota_rows{tenant="1"}`:    int64(m.Quota(1)),
		`tenancy.quota_rows{tenant="2"}`:    int64(m.Quota(2)),
		`tenancy.rows_in_use{tenant="2"}`:   5,
		`tenancy.rows_borrowed{tenant="2"}`: 0,
		`tenancy.admissions{tenant="2"}`:    1,
		`tenancy.admissions{tenant="1"}`:    0,
		`tenancy.rejections{tenant="1"}`:    1,
		`tenancy.rejections{tenant="2"}`:    0,
	} {
		got, ok := g[k]
		if !ok {
			t.Fatalf("gauge %s not registered (have %v)", k, g)
		}
		if got != want {
			t.Errorf("%s = %d, want %d", k, got, want)
		}
	}
	// A nil registry must be a no-op, not a panic.
	m.Instrument(nil)
}
