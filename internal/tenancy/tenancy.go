// Package tenancy arbitrates a shared switch AA pool between tenants.
//
// Each tenant gets (a) a contiguous keyspace partition proportional to its
// weight — so tenants never contend for the same AA columns — and (b) a row
// quota proportional to its weight over the switch's AA row pool, enforced
// at admission. A task whose region would push its tenant past the quota is
// rejected with a typed *OverloadError unless the borrowing policy lets the
// tenant take idle rows from underloaded peers.
//
// Borrowing extends the hot-key shadow mechanism (§3.4) across tenants: a
// tenant whose shadow telemetry shows a hot working set (conflict ratio at
// or above BorrowThreshold) may run past its quota using rows its peers are
// not occupying, bounded by its own quota (so a weight-1 tenant can at most
// double, never squeeze a weight-8 peer). The manager is pure bookkeeping —
// deterministic, no clocks, no goroutines — so simulations that consult it
// stay byte-identical across runs.
package tenancy

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/telemetry"
)

// TenantSpec declares one tenant sharing the fabric.
type TenantSpec struct {
	ID core.TenantID
	// Weight sets the tenant's share of both the keyspace and the AA row
	// pool relative to its peers. Must be positive.
	Weight int
}

// OverloadError is the typed admission rejection: the tenant's region
// request does not fit its quota (plus whatever borrowing allows). Callers
// surface it to the application as the OVERLOAD condition; it is a signal
// to shed load or retry later, not a fault.
type OverloadError struct {
	Tenant core.TenantID
	// Need is the row count the rejected request asked for.
	Need int
	// InUse and Quota describe the tenant's occupancy at rejection time.
	InUse, Quota int
	// Idle is how many pool rows were unoccupied; non-zero Idle means the
	// request was refused by policy (not hot enough, or borrow cap), not by
	// physical exhaustion.
	Idle int
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("tenancy: OVERLOAD tenant %d: need %d rows, %d/%d in use, %d idle in pool",
		e.Tenant, e.Need, e.InUse, e.Quota, e.Idle)
}

// HotnessFunc reports a tenant's shadow conflict ratio in [0,1] — the
// fraction of its traffic hitting hot-key shadows — typically wired to
// telemetry counters. The manager consults it only at admission time for
// requests that overflow the quota.
type HotnessFunc func(core.TenantID) float64

// BorrowThreshold is the conflict ratio at or above which an over-quota
// tenant may borrow idle rows.
const BorrowThreshold = 0.5

type tenantState struct {
	spec  TenantSpec
	part  keyspace.Partition
	quota int
	inUse int
	// Admission outcomes, exposed per tenant through Instrument.
	admitted int64
	rejected int64
}

// Manager tracks per-tenant keyspace partitions and AA row occupancy for
// one switch pool. It is not safe for concurrent use; the deterministic
// simulation drives it from a single goroutine.
type Manager struct {
	tenants []tenantState // in declaration order (partition order)
	index   map[core.TenantID]int
	pool    int // total rows (cfg.AARows)
	hotness HotnessFunc
}

// NewManager partitions the keyspace and row pool of cfg between tenants
// proportionally to weight. Tenant IDs must be unique and non-zero (zero is
// the legacy single-tenant ID and never appears on the fabric).
func NewManager(tenants []TenantSpec, cfg core.Config) (*Manager, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("tenancy: no tenants")
	}
	weights := make([]int, len(tenants))
	index := make(map[core.TenantID]int, len(tenants))
	for i, t := range tenants {
		if t.ID == 0 {
			return nil, fmt.Errorf("tenancy: tenant ID 0 is reserved for single-tenant mode")
		}
		if _, dup := index[t.ID]; dup {
			return nil, fmt.Errorf("tenancy: duplicate tenant ID %d", t.ID)
		}
		if t.Weight <= 0 {
			return nil, fmt.Errorf("tenancy: tenant %d has non-positive weight %d", t.ID, t.Weight)
		}
		index[t.ID] = i
		weights[i] = t.Weight
	}
	parts, err := keyspace.PartitionsFor(weights, cfg)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		tenants: make([]tenantState, len(tenants)),
		index:   index,
		pool:    cfg.AARows,
	}
	// Row quotas use the same cumulative cut as the keyspace bands: exact
	// cover, no rounding loss, deterministic.
	sum := 0
	for _, w := range weights {
		sum += w
	}
	cum := 0
	for i, t := range tenants {
		lo := m.pool * cum / sum
		cum += t.Weight
		hi := m.pool * cum / sum
		m.tenants[i] = tenantState{spec: t, part: parts[i], quota: hi - lo}
	}
	return m, nil
}

// SetHotness installs the telemetry callback consulted by the borrowing
// policy. Without one, over-quota requests are always rejected.
func (m *Manager) SetHotness(f HotnessFunc) { m.hotness = f }

// Partition returns the keyspace band owned by tenant t.
func (m *Manager) Partition(t core.TenantID) (keyspace.Partition, error) {
	i, ok := m.index[t]
	if !ok {
		return keyspace.Partition{}, fmt.Errorf("tenancy: unknown tenant %d", t)
	}
	return m.tenants[i].part, nil
}

// Quota returns tenant t's row quota (0 for unknown tenants).
func (m *Manager) Quota(t core.TenantID) int {
	if i, ok := m.index[t]; ok {
		return m.tenants[i].quota
	}
	return 0
}

// InUse returns the rows tenant t currently occupies.
func (m *Manager) InUse(t core.TenantID) int {
	if i, ok := m.index[t]; ok {
		return m.tenants[i].inUse
	}
	return 0
}

// Borrowed returns how many rows of t's occupancy exceed its quota.
func (m *Manager) Borrowed(t core.TenantID) int {
	if i, ok := m.index[t]; ok {
		if b := m.tenants[i].inUse - m.tenants[i].quota; b > 0 {
			return b
		}
	}
	return 0
}

// idle returns pool rows not occupied by any tenant.
func (m *Manager) idle() int {
	used := 0
	for i := range m.tenants {
		used += m.tenants[i].inUse
	}
	return m.pool - used
}

// Admit charges rows to tenant t, or rejects with *OverloadError. Requests
// within quota always succeed (quotas cover the pool exactly, so in-quota
// rows are physically available). Over-quota requests succeed only when the
// tenant is hot (conflict ratio ≥ BorrowThreshold), enough idle rows exist,
// and total borrowing stays within the tenant's own quota.
func (m *Manager) Admit(t core.TenantID, rows int) error {
	i, ok := m.index[t]
	if !ok {
		return fmt.Errorf("tenancy: unknown tenant %d", t)
	}
	if rows <= 0 {
		return fmt.Errorf("tenancy: tenant %d requested %d rows", t, rows)
	}
	st := &m.tenants[i]
	if st.inUse+rows <= st.quota {
		st.inUse += rows
		st.admitted++
		return nil
	}
	overload := &OverloadError{Tenant: t, Need: rows, InUse: st.inUse, Quota: st.quota, Idle: m.idle()}
	borrowedAfter := st.inUse + rows - st.quota
	if borrowedAfter > st.quota {
		st.rejected++
		return overload // borrow cap: never exceed own quota in borrowed rows
	}
	if m.hotness == nil || m.hotness(t) < BorrowThreshold {
		st.rejected++
		return overload
	}
	if rows > overload.Idle {
		st.rejected++
		return overload // peers are using their rows; nothing idle to lend
	}
	st.inUse += rows
	st.admitted++
	return nil
}

// Instrument registers the manager's per-tenant allocation state on reg as
// callback gauges labeled `tenant` — polled at sample/export time only, so
// the admission path itself stays instrument-free. Safe to call once per
// registry; a nil registry is a no-op.
func (m *Manager) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	for i := range m.tenants {
		st := &m.tenants[i]
		lbl := telemetry.L("tenant", strconv.FormatUint(uint64(st.spec.ID), 10))
		reg.GaugeFunc("tenancy.quota_rows", func() int64 { return int64(st.quota) }, lbl)
		reg.GaugeFunc("tenancy.rows_in_use", func() int64 { return int64(st.inUse) }, lbl)
		reg.GaugeFunc("tenancy.rows_borrowed", func() int64 {
			if b := st.inUse - st.quota; b > 0 {
				return int64(b)
			}
			return 0
		}, lbl)
		reg.GaugeFunc("tenancy.admissions", func() int64 { return st.admitted }, lbl)
		reg.GaugeFunc("tenancy.rejections", func() int64 { return st.rejected }, lbl)
	}
}

// Release returns rows charged by a successful Admit. Borrowed rows are
// implicitly returned first: occupancy simply drops, and once it falls to
// the quota the tenant is no longer a borrower.
func (m *Manager) Release(t core.TenantID, rows int) {
	if i, ok := m.index[t]; ok {
		m.tenants[i].inUse -= rows
		if m.tenants[i].inUse < 0 {
			m.tenants[i].inUse = 0
		}
	}
}

// Usage is a point-in-time view of one tenant's allocation state.
type Usage struct {
	Tenant   core.TenantID
	Weight   int
	Quota    int
	InUse    int
	Borrowed int
}

// Snapshot reports every tenant's occupancy, ordered by tenant ID for
// stable output.
func (m *Manager) Snapshot() []Usage {
	out := make([]Usage, 0, len(m.tenants))
	for i := range m.tenants {
		st := &m.tenants[i]
		u := Usage{Tenant: st.spec.ID, Weight: st.spec.Weight, Quota: st.quota, InUse: st.inUse}
		if b := st.inUse - st.quota; b > 0 {
			u.Borrowed = b
		}
		out = append(out, u)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Tenant < out[b].Tenant })
	return out
}
