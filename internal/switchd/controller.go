package switchd

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/keyspace"
)

// The switch controller: the control-plane interface host daemons use for
// region allocation (§3.1 steps ③ and ⑫) and persistent flow registration.
// Hosts call these methods directly; the control-plane RPC latency is
// charged by the caller (cpumodel.ControlRPCLatency).

// RegisterFlow assigns (or returns) the reliability-state index of a
// persistent data-channel flow. Daemons register every channel at boot.
func (sw *Switch) RegisterFlow(fk core.FlowKey) (int, error) {
	if idx, ok := sw.flows[fk]; ok {
		return idx, nil
	}
	if sw.nextFlow >= sw.opts.MaxFlows {
		return 0, fmt.Errorf("switchd: flow table full (%d flows)", sw.opts.MaxFlows)
	}
	idx := sw.nextFlow
	sw.nextFlow++
	sw.flows[fk] = idx
	return idx, nil
}

// AllocRegion reserves totalRows aggregator rows on every AA for a task.
// totalRows == 0 requests the largest free contiguous block. With the
// shadow-copy mechanism enabled the region is split into two copies.
func (sw *Switch) AllocRegion(task core.TaskID, receiver core.HostID, op core.Op, totalRows int) (*Region, error) {
	return sw.AllocRegionPartition(task, receiver, op, totalRows, keyspace.Partition{})
}

// AllocRegionPartition is AllocRegion restricted to a tenant's keyspace
// band: the region aggregates only slots inside part (multi-tenant
// fabrics). The zero partition is exactly AllocRegion.
func (sw *Switch) AllocRegionPartition(task core.TaskID, receiver core.HostID, op core.Op, totalRows int, part keyspace.Partition) (*Region, error) {
	if r, dup := sw.regions[task]; dup {
		// Idempotent re-allocation: a receiver recovering from a switch
		// reboot can race its own pre-reboot RPC (the original allocation
		// lands on the new incarnation just before the retry). If the live
		// region already belongs to this task with the same shape, it IS the
		// requested region — hand it back instead of failing the recovery.
		if r.Receiver == receiver && r.Op == op && r.Partition == part && !r.Revoked {
			return r, nil
		}
		return nil, fmt.Errorf("switchd: task %d already has a region", task)
	}
	if len(sw.regionFree) == 0 {
		return nil, fmt.Errorf("switchd: region table full (%d regions)", sw.opts.MaxRegions)
	}
	if totalRows == 0 {
		// Default sizing: a quarter of the AA depth, so several tenants fit
		// without explicit coordination, bounded by what is actually free.
		totalRows = sw.cfg.AARows / 4
		if free := sw.rows.largestFree(); totalRows > free {
			totalRows = free
		}
		if sw.cfg.ShadowCopy {
			totalRows &^= 1
		}
	}
	if totalRows <= 0 {
		return nil, fmt.Errorf("switchd: no aggregator rows available")
	}
	copies := 1
	copyRows := totalRows
	if sw.cfg.ShadowCopy {
		if totalRows%2 != 0 {
			return nil, fmt.Errorf("switchd: totalRows %d must be even with shadow copies", totalRows)
		}
		copies = 2
		copyRows = totalRows / 2
	}
	lo, err := sw.rows.alloc(totalRows)
	if err != nil {
		return nil, err
	}
	idx := sw.regionFree[len(sw.regionFree)-1]
	sw.regionFree = sw.regionFree[:len(sw.regionFree)-1]
	r := &Region{
		Task:      task,
		Receiver:  receiver,
		Op:        op,
		Lo:        lo,
		TotalRows: totalRows,
		CopyRows:  copyRows,
		Copies:    copies,
		Partition: part,
		idx:       idx,
	}
	// Reset the region's data-plane state from the control plane.
	sw.raSwapSeq.ControlWrite(idx, 0)
	sw.raClearSeq.ControlWrite(idx, 0)
	sw.raCopyInd.ControlWrite(idx, 0)
	sw.clearAARange(lo, lo+totalRows)
	sw.regions[task] = r
	// A fresh allocation restarts the task's stats view; the underlying
	// registry counters stay monotonic (metrics.go).
	sw.resetTaskStats(task)
	return r, nil
}

// FreeRegion releases a task's region for reuse (§3.1 step ⑫). The region's
// aggregators are cleared so the next tenant starts blank.
func (sw *Switch) FreeRegion(task core.TaskID) error {
	r, ok := sw.regions[task]
	if !ok {
		return fmt.Errorf("switchd: task %d has no region", task)
	}
	sw.clearAARange(r.Lo, r.Lo+r.TotalRows)
	sw.rows.release(r.Lo, r.TotalRows)
	sw.regionFree = append(sw.regionFree, r.idx)
	delete(sw.regions, task)
	return nil
}

// RegionOf returns a task's live region, or nil.
func (sw *Switch) RegionOf(task core.TaskID) *Region { return sw.regions[task] }

// rowAllocator hands out contiguous row ranges first-fit and coalesces on
// free.
type rowAllocator struct {
	free []span // sorted by lo, non-overlapping, non-adjacent
}

type span struct{ lo, hi int }

func newRowAllocator(rows int) *rowAllocator {
	return &rowAllocator{free: []span{{0, rows}}}
}

func (a *rowAllocator) alloc(n int) (int, error) {
	for i, s := range a.free {
		if s.hi-s.lo >= n {
			lo := s.lo
			if s.hi-s.lo == n {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i].lo += n
			}
			return lo, nil
		}
	}
	return 0, fmt.Errorf("switchd: no contiguous block of %d rows (largest free %d)", n, a.largestFree())
}

func (a *rowAllocator) release(lo, n int) {
	s := span{lo, lo + n}
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].lo >= s.lo })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = s
	// Coalesce with neighbours.
	merged := a.free[:0]
	for _, f := range a.free {
		if n := len(merged); n > 0 && merged[n-1].hi >= f.lo {
			if f.hi > merged[n-1].hi {
				merged[n-1].hi = f.hi
			}
			continue
		}
		merged = append(merged, f)
	}
	a.free = merged
}

func (a *rowAllocator) largestFree() int {
	best := 0
	for _, s := range a.free {
		if s.hi-s.lo > best {
			best = s.hi - s.lo
		}
	}
	return best
}

func (a *rowAllocator) totalFree() int {
	t := 0
	for _, s := range a.free {
		t += s.hi - s.lo
	}
	return t
}
