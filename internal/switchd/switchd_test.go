package switchd

import (
	"testing"

	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

// testRig wires a switch between a sender host (1) and receiver host (2).
type testRig struct {
	t      *testing.T
	sim    *sim.Simulation
	net    *netsim.Network
	sw     *Switch
	layout *keyspace.Layout
	// Frames delivered to each host.
	at1, at2 []*netsim.Frame
	nextSeq  uint32
}

type frameSink struct{ frames *[]*netsim.Frame }

func (fs frameSink) HandleFrame(f *netsim.Frame) { *fs.frames = append(*fs.frames, f) }

func newRig(t *testing.T, cfg core.Config) *testRig {
	t.Helper()
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLinkConfig())
	sw, err := New(s, n, cfg, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	layout, err := keyspace.NewLayout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := &testRig{t: t, sim: s, net: n, sw: sw, layout: layout}
	n.AttachHost(1, frameSink{&r.at1})
	n.AttachHost(2, frameSink{&r.at2})
	if _, err := sw.RegisterFlow(core.FlowKey{Host: 1, Channel: 0}); err != nil {
		t.Fatal(err)
	}
	return r
}

// packetize builds one data packet from tuples using the sender-assisted
// placement; it fails the test if two tuples contend for one slot group.
func (r *testRig) packetize(task core.TaskID, kvs []core.KV) *wire.Packet {
	r.t.Helper()
	pkt := &wire.Packet{
		Type:  wire.TypeData,
		Task:  task,
		Flow:  core.FlowKey{Host: 1, Channel: 0},
		Slots: make([]wire.Slot, r.layout.Config().NumAAs),
	}
	for _, kv := range kvs {
		p := r.layout.Place(kv.Key)
		if p.Class == keyspace.Long {
			r.t.Fatalf("key %q is long; use a long-key packet", kv.Key)
		}
		if pkt.Bitmap.Test(p.FirstSlot) {
			r.t.Fatalf("slot %d already used; split %q into another packet", p.FirstSlot, kv.Key)
		}
		for j, kp := range p.KParts {
			slot := wire.Slot{KPart: kp}
			if j == len(p.KParts)-1 {
				slot.Val = kv.Val
			}
			pkt.Slots[p.FirstSlot+j] = slot
			pkt.Bitmap = pkt.Bitmap.Set(p.FirstSlot + j)
		}
	}
	return pkt
}

// send injects a packet from host 1 toward host 2 and runs the simulation.
func (r *testRig) send(pkt *wire.Packet) {
	if pkt.Seq == 0 && pkt.Type == wire.TypeData {
		pkt.Seq = r.nextSeq
		r.nextSeq++
	}
	r.net.HostSend(&netsim.Frame{
		Src: 1, Dst: 2, Pkt: pkt,
		WireBytes: pkt.WireBytes(r.sw.cfg.KPartBytes),
	})
	r.sim.Run(0)
}

// resend re-injects the same packet (retransmission), with its original seq.
func (r *testRig) resend(pkt *wire.Packet) {
	r.net.HostSend(&netsim.Frame{
		Src: 1, Dst: 2, Pkt: pkt,
		WireBytes: pkt.WireBytes(r.sw.cfg.KPartBytes),
	})
	r.sim.Run(0)
}

func smallConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.AARows = 64
	cfg.SwapThreshold = 0
	return cfg
}

func (r *testRig) mustAlloc(task core.TaskID, rows int) *Region {
	r.t.Helper()
	reg, err := r.sw.AllocRegion(task, 2, core.OpSum, rows)
	if err != nil {
		r.t.Fatal(err)
	}
	return reg
}

// fetchAll snapshots both copies of a task's region via control reads,
// returning the aggregated result (test-side shortcut around the fetch
// protocol, which hostd exercises end to end).
func (r *testRig) fetchAll(task core.TaskID) core.Result {
	r.t.Helper()
	reg := r.sw.RegionOf(task)
	res := make(core.Result)
	n := uint(8 * r.sw.cfg.KPartBytes)
	collect := func(lo, hi int) {
		shortSlots := r.layout.ShortSlots()
		for ai := 0; ai < shortSlots; ai++ {
			for row := lo; row < hi; row++ {
				cur := r.sw.raAAs[ai].ControlRead(row)
				if kp := cur >> n; kp != 0 {
					key := r.layout.ReconstructShort(kp << (64 - n))
					res.Merge(core.Result{key: r.sw.decodeVal(cur & r.sw.nMask())}, reg.Op)
				}
			}
		}
		m := r.sw.cfg.MediumSegs
		for g := 0; g < r.sw.cfg.MediumGroups; g++ {
			first := shortSlots + g*m
			for row := lo; row < hi; row++ {
				kparts := make([]uint64, m)
				blank := false
				for j := 0; j < m; j++ {
					cur := r.sw.raAAs[first+j].ControlRead(row)
					kp := cur >> n
					if kp == 0 {
						blank = true
						break
					}
					kparts[j] = kp << (64 - n)
				}
				if blank {
					continue
				}
				key := r.layout.ReconstructMedium(kparts)
				last := r.sw.raAAs[first+m-1].ControlRead(row)
				res.Merge(core.Result{key: r.sw.decodeVal(last & r.sw.nMask())}, reg.Op)
			}
		}
	}
	for c := 0; c < reg.Copies; c++ {
		lo := reg.Lo + c*reg.CopyRows
		collect(lo, lo+reg.CopyRows)
	}
	return res
}

func TestPipelineFitsTofinoBudget(t *testing.T) {
	cfg := core.DefaultConfig() // 32 AAs × 32768 × 64-bit
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLinkConfig())
	sw, err := New(s, n, cfg, DefaultOptions())
	if err != nil {
		t.Fatalf("paper configuration does not fit the PISA model: %v", err)
	}
	pipe := sw.Pipeline()
	// AAs dominate: 32 × 256 KB = 8 MB, within the ~15 MB paper budget.
	if got := pipe.SRAMBytes(); got < 8<<20 || got > 10<<20 {
		t.Fatalf("total SRAM = %d bytes", got)
	}
	// §3.3: seen + PktState for one channel is 256 + 256×32 bits = 1056 B.
	perFlowBits := cfg.Window*1 + cfg.Window*cfg.NumAAs
	if perFlowBits != 8448 { // 1056 bytes
		t.Fatalf("per-flow reliability state = %d bits, want 8448 (1056 B)", perFlowBits)
	}
}

func TestPipelineRejectsOversizedConfig(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.AARows = 1 << 20 // 8 MB per AA: 4 per stage cannot fit
	s := sim.New(1)
	n := netsim.New(s, netsim.DefaultLinkConfig())
	if _, err := New(s, n, cfg, DefaultOptions()); err == nil {
		t.Fatal("oversized AAs accepted")
	}
}

func TestFullAggregationAcksSender(t *testing.T) {
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 32)
	pkt := r.packetize(7, []core.KV{{Key: "a", Val: 1}, {Key: "b", Val: 2}})
	r.send(pkt)
	if len(r.at2) != 0 {
		t.Fatalf("receiver got %d frames, want 0 (fully aggregated)", len(r.at2))
	}
	if len(r.at1) != 1 || r.at1[0].Pkt.Type != wire.TypeAck {
		t.Fatalf("sender frames: %+v", r.at1)
	}
	if r.at1[0].Pkt.Seq != pkt.Seq {
		t.Fatal("ACK sequence mismatch")
	}
	got := r.fetchAll(7)
	want := core.Result{"a": 1, "b": 2}
	if !got.Equal(want) {
		t.Fatalf("switch state = %v, want %v (%s)", got, want, got.Diff(want, 5))
	}
	ts := r.sw.TaskStatsOf(7)
	if ts.TuplesAggregated != 2 || ts.AckedPackets != 1 {
		t.Fatalf("stats = %+v", ts)
	}
}

func TestRepeatedKeyAccumulates(t *testing.T) {
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 32)
	for i := 0; i < 5; i++ {
		r.send(r.packetize(7, []core.KV{{Key: "hot", Val: 3}}))
	}
	got := r.fetchAll(7)
	if got["hot"] != 15 {
		t.Fatalf(`switch sum for "hot" = %d, want 15`, got["hot"])
	}
}

func TestConflictForwardsResidue(t *testing.T) {
	cfg := smallConfig()
	cfg.ShadowCopy = false
	r := newRig(t, cfg)
	r.mustAlloc(7, 1) // one row per AA: same-slot distinct keys must collide
	// Find two short keys in the same slot.
	var k1, k2 string
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for _, a := range keys {
		for _, b := range keys {
			if a != b && r.layout.Place(a).FirstSlot == r.layout.Place(b).FirstSlot {
				k1, k2 = a, b
			}
		}
	}
	if k1 == "" {
		t.Skip("no same-slot key pair found")
	}
	r.send(r.packetize(7, []core.KV{{Key: k1, Val: 1}}))
	r.at1, r.at2 = nil, nil
	pkt := r.packetize(7, []core.KV{{Key: k2, Val: 9}})
	r.send(pkt)
	if len(r.at2) != 1 {
		t.Fatalf("receiver frames = %d, want 1 (conflict forwarded)", len(r.at2))
	}
	fwd := r.at2[0].Pkt
	if fwd.LiveTuples() != 1 {
		t.Fatalf("forwarded live tuples = %d", fwd.LiveTuples())
	}
	slot := r.layout.Place(k2).FirstSlot
	if !fwd.Bitmap.Test(slot) || fwd.Slots[slot].Val != 9 {
		t.Fatal("residue tuple corrupted")
	}
	if len(r.at1) != 0 {
		t.Fatal("sender got an ACK for a partial packet")
	}
	if got := r.fetchAll(7); got[k2] != 0 {
		t.Fatalf("conflicting key leaked into switch: %v", got)
	}
}

func TestRetransmitFullyAggregatedIsDropped(t *testing.T) {
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 32)
	pkt := r.packetize(7, []core.KV{{Key: "x", Val: 5}})
	r.send(pkt)
	r.resend(pkt.Clone()) // lost-ACK retransmission
	if got := r.fetchAll(7); got["x"] != 5 {
		t.Fatalf("duplicate aggregation: %v", got)
	}
	// Both appearances must have been ACKed (the first ACK may be lost).
	acks := 0
	for _, f := range r.at1 {
		if f.Pkt.Type == wire.TypeAck {
			acks++
		}
	}
	if acks != 2 {
		t.Fatalf("acks = %d, want 2", acks)
	}
	if r.sw.Stats().DupPackets != 1 {
		t.Fatalf("DupPackets = %d", r.sw.Stats().DupPackets)
	}
}

func TestRetransmitPartialRestoresBitmap(t *testing.T) {
	// The §3.3 motivating example: [(a,1),(b,1)] with (a,1) aggregated and
	// (b,1) conflicted; the retransmission must carry only (b,1).
	cfg := smallConfig()
	cfg.ShadowCopy = false
	r := newRig(t, cfg)
	r.mustAlloc(7, 1)
	var k1, k2, other string
	keys := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l", "m", "n"}
	for _, a := range keys {
		for _, b := range keys {
			if a != b && r.layout.Place(a).FirstSlot == r.layout.Place(b).FirstSlot {
				k1, k2 = a, b
			}
		}
	}
	for _, c := range keys {
		if c != k1 && c != k2 && r.layout.Place(c).FirstSlot != r.layout.Place(k1).FirstSlot {
			other = c
			break
		}
	}
	if k1 == "" || other == "" {
		t.Skip("needed key pattern not found")
	}
	r.send(r.packetize(7, []core.KV{{Key: k1, Val: 1}}))
	// Packet with one aggregatable tuple (other) and one conflicting (k2).
	pkt := r.packetize(7, []core.KV{{Key: other, Val: 7}, {Key: k2, Val: 9}})
	orig := pkt.Clone()
	r.at2 = nil
	r.send(pkt)
	if len(r.at2) != 1 || r.at2[0].Pkt.LiveTuples() != 1 {
		t.Fatalf("first pass: receiver frames %+v", r.at2)
	}
	// Retransmit the ORIGINAL (both bits set): switch must restore the
	// post-aggregation bitmap, not re-aggregate.
	r.at2 = nil
	r.resend(orig)
	if len(r.at2) != 1 {
		t.Fatalf("retransmission not forwarded")
	}
	fwd := r.at2[0].Pkt
	slotK2 := r.layout.Place(k2).FirstSlot
	slotOther := r.layout.Place(other).FirstSlot
	if !fwd.Bitmap.Test(slotK2) || fwd.Bitmap.Test(slotOther) {
		t.Fatalf("restored bitmap wrong: %b", fwd.Bitmap)
	}
	if got := r.fetchAll(7); got[other] != 7 {
		t.Fatalf("tuple %q aggregated %d times", other, got[other]/7)
	}
}

func TestMediumKeyAggregation(t *testing.T) {
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 32)
	r.send(r.packetize(7, []core.KV{{Key: "yours", Val: 2}}))
	r.send(r.packetize(7, []core.KV{{Key: "yours", Val: 3}}))
	got := r.fetchAll(7)
	if got["yours"] != 5 {
		t.Fatalf(`medium key sum = %d, want 5 (state %v)`, got["yours"], got)
	}
}

func TestMediumKeySharedPrefixNoFalseMatch(t *testing.T) {
	// "yourself" must not be absorbed by "yoursabc"'s aggregators even
	// though both share the first segment "your" (§3.2.3).
	cfg := smallConfig()
	cfg.ShadowCopy = false
	r := newRig(t, cfg)
	r.mustAlloc(7, 1) // force same row for everything
	a, b := "yoursabc", "yourself"
	if r.layout.Place(a).FirstSlot != r.layout.Place(b).FirstSlot {
		// Find another pair in the same group.
		t.Skipf("keys map to different groups; adjust test keys")
	}
	r.send(r.packetize(7, []core.KV{{Key: a, Val: 1}}))
	r.at2 = nil
	r.send(r.packetize(7, []core.KV{{Key: b, Val: 100}}))
	got := r.fetchAll(7)
	if got[a] != 1 {
		t.Fatalf("key %q corrupted: %v", a, got)
	}
	if got[b] != 0 {
		t.Fatalf("key %q falsely matched: %v", b, got)
	}
	if len(r.at2) != 1 || r.at2[0].Pkt.LiveTuples() == 0 {
		t.Fatal("conflicting medium tuple not forwarded")
	}
}

func TestStalePacketDroppedSilently(t *testing.T) {
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 32)
	// Advance max_seq far beyond the window.
	pkt := r.packetize(7, []core.KV{{Key: "a", Val: 1}})
	pkt.Seq = 10000
	r.resend(pkt)
	r.at1, r.at2 = nil, nil
	stale := r.packetize(7, []core.KV{{Key: "b", Val: 1}})
	stale.Seq = 10000 - uint32(r.sw.cfg.Window)
	r.resend(stale)
	if len(r.at1) != 0 || len(r.at2) != 0 {
		t.Fatal("stale packet produced traffic")
	}
	if r.sw.Stats().StaleDropped != 1 {
		t.Fatalf("StaleDropped = %d", r.sw.Stats().StaleDropped)
	}
	if got := r.fetchAll(7); got["b"] != 0 {
		t.Fatal("stale packet aggregated")
	}
}

func TestUnknownTaskForwardedUntouched(t *testing.T) {
	r := newRig(t, smallConfig())
	pkt := r.packetize(99, []core.KV{{Key: "a", Val: 1}})
	r.send(pkt)
	if len(r.at2) != 1 || r.at2[0].Pkt.LiveTuples() != 1 {
		t.Fatal("packet for region-less task not forwarded intact")
	}
	if len(r.at1) != 0 {
		t.Fatal("switch ACKed a region-less packet")
	}
}

func TestUnregisteredFlowForwarded(t *testing.T) {
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 32)
	pkt := r.packetize(7, []core.KV{{Key: "a", Val: 1}})
	pkt.Flow = core.FlowKey{Host: 1, Channel: 5} // never registered
	r.send(pkt)
	if len(r.at2) != 1 {
		t.Fatal("unregistered flow's packet not forwarded")
	}
	if r.sw.Stats().UnregisteredFwd != 1 {
		t.Fatalf("UnregisteredFwd = %d", r.sw.Stats().UnregisteredFwd)
	}
}

func TestFinAndLongKeyForwardedWithDedup(t *testing.T) {
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 32)
	fin := &wire.Packet{Type: wire.TypeFin, Task: 7, Flow: core.FlowKey{Host: 1, Channel: 0}, Seq: 0}
	r.resend(fin)
	lk := &wire.Packet{Type: wire.TypeLongKey, Task: 7, Flow: core.FlowKey{Host: 1, Channel: 0}, Seq: 1,
		Long: []wire.LongKV{{Key: "internationalization", Val: 4}}}
	r.resend(lk)
	if len(r.at2) != 2 {
		t.Fatalf("receiver frames = %d, want 2", len(r.at2))
	}
	// Retransmissions still forwarded (receiver dedups and re-acks).
	r.at2 = nil
	r.resend(fin.Clone())
	if len(r.at2) != 1 {
		t.Fatal("retransmitted FIN not forwarded")
	}
	if r.sw.Stats().DupPackets != 1 {
		t.Fatalf("DupPackets = %d", r.sw.Stats().DupPackets)
	}
}

func mustLayout(t *testing.T, cfg core.Config) *keyspace.Layout {
	t.Helper()
	l, err := keyspace.NewLayout(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}
