package switchd

import (
	"repro/internal/netsim"
	"repro/internal/window"
	"repro/internal/wire"
)

// maxFetchEntriesPerReply keeps each fetch-reply packet within the MTU.
const maxFetchEntriesPerReply = (wire.MTU - wire.HeaderBytes - 4) / (1 + 4 + 8 + 8)

// processFetch serves the receiver's read of one shadow copy of a task's
// region (§3.4 Read(), and task teardown §3.1 step ⑨).
//
// The protocol is two-phase so retransmissions stay safe on the unreliable
// network: a Fetch with FetchClear=false is an idempotent snapshot read —
// the switch streams the copy's non-blank aggregators back in chunked
// FetchReply packets echoing the request id (Seq). Once the receiver has
// every chunk it issues a Fetch with FetchClear=true, which zeroes the copy
// and is acknowledged; clearing is idempotent because by protocol the copy
// is quiescent (after a swap, data packets write only the other copy; at
// teardown, all senders have FINished).
func (sw *Switch) processFetch(f *netsim.Frame) {
	pkt := f.Pkt
	region := sw.regions[pkt.Task]
	if region == nil {
		// Unknown task (e.g. already freed): acknowledge clears so the
		// receiver does not retry forever; reads return an empty snapshot.
		if pkt.FetchClear {
			sw.ackFetch(f, pkt)
		} else {
			sw.sendFetchReplies(f, pkt, nil)
		}
		f.Release()
		return
	}
	copyIdx := pkt.FetchCopy
	if copyIdx < 0 || copyIdx >= region.Copies {
		copyIdx = 0
	}
	lo := region.Lo + copyIdx*region.CopyRows
	hi := lo + region.CopyRows

	if pkt.FetchClear {
		// Exactly-once clearing: a duplicated or long-delayed clear packet
		// must not wipe a copy that has since been swapped back into
		// service. Request ids are strictly increasing per daemon, so a
		// clear applies only when its id is fresher than the last applied
		// one (mirrors the swap_seq mechanism of §3.4).
		ps := sw.pipe.Begin()
		fresh := sw.raClearSeq.RMW(ps, region.idx, func(cur uint64) (uint64, uint64) {
			if cur == 0 || window.SeqLess(uint32(cur), pkt.Seq) {
				return uint64(pkt.Seq), 1
			}
			return cur, 0
		}) == 1
		if fresh {
			sw.met.clears.Inc()
			sw.clearAARange(lo, hi)
		}
		sw.ackFetch(f, pkt)
		f.Release() // fetch is switch-terminated
		return
	}

	sw.met.fetches.Inc()
	n := uint(8 * sw.cfg.KPartBytes)
	var entries []wire.FetchEntry
	for ai, aa := range sw.raAAs {
		for row := lo; row < hi; row++ {
			cur := aa.ControlRead(row)
			kp := cur >> n
			if kp == 0 {
				continue
			}
			entries = append(entries, wire.FetchEntry{
				AA:    ai,
				Row:   row - lo, // copy-relative, stable across copies
				KPart: kp << (64 - n),
				Val:   sw.decodeVal(cur & sw.nMask()),
			})
		}
	}
	sw.sendFetchReplies(f, pkt, entries)
	f.Release() // fetch is switch-terminated
}

// sendFetchReplies streams the snapshot back in MTU-sized chunks. An empty
// snapshot still produces one (empty) reply so the receiver can finish.
func (sw *Switch) sendFetchReplies(f *netsim.Frame, req *wire.Packet, entries []wire.FetchEntry) {
	chunks := (len(entries) + maxFetchEntriesPerReply - 1) / maxFetchEntriesPerReply
	if chunks == 0 {
		chunks = 1
	}
	for c := 0; c < chunks; c++ {
		lo := c * maxFetchEntriesPerReply
		hi := lo + maxFetchEntriesPerReply
		if hi > len(entries) {
			hi = len(entries)
		}
		reply := &wire.Packet{
			Type:         wire.TypeFetchReply,
			Task:         req.Task,
			Flow:         req.Flow,
			Seq:          req.Seq, // echo the request id
			FetchCopy:    req.FetchCopy,
			FetchChunk:   uint16(c),
			FetchChunks:  uint16(chunks),
			FetchEntries: append([]wire.FetchEntry(nil), entries[lo:hi]...),
		}
		sw.stamp(reply)
		// Owned: nothing here retains the reply. The receiving host keeps
		// the FetchEntries (addChunk) and therefore does NOT release it.
		sw.net.SwitchSend(&netsim.Frame{
			Src:       f.Dst,
			Dst:       f.Src,
			Pkt:       reply,
			WireBytes: reply.WireBytes(sw.cfg.KPartBytes),
			Owned:     true,
		})
	}
}

// ackFetch acknowledges a clear request.
func (sw *Switch) ackFetch(f *netsim.Frame, req *wire.Packet) {
	ack := wire.NewPacket()
	ack.Type = wire.TypeAck
	ack.AckFor = wire.TypeFetch
	ack.Task = req.Task
	ack.Flow = req.Flow
	ack.Seq = req.Seq
	sw.stamp(ack)
	sw.net.SwitchSend(&netsim.Frame{
		Src:       f.Dst,
		Dst:       f.Src,
		Pkt:       ack,
		WireBytes: ack.WireBytes(sw.cfg.KPartBytes),
		Owned:     true,
	})
}
