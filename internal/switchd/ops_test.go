package switchd

// Operator and width coverage for the switch aggregators: the register
// action must implement every core.Op over sign-extended n-bit vParts, and
// the layout must work at narrower kPart widths.

import (
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/wire"
)

func opRig(t *testing.T, op core.Op) *testRig {
	t.Helper()
	r := newRig(t, smallConfig())
	if _, err := r.sw.AllocRegion(7, 2, op, 32); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestSwitchOpMax(t *testing.T) {
	r := opRig(t, core.OpMax)
	for _, v := range []int64{3, -10, 42, 7} {
		r.send(r.packetize(7, []core.KV{{Key: "m", Val: v}}))
	}
	if got := r.fetchAll(7); got["m"] != 42 {
		t.Fatalf("max = %d, want 42 (%v)", got["m"], got)
	}
}

func TestSwitchOpMin(t *testing.T) {
	r := opRig(t, core.OpMin)
	for _, v := range []int64{3, -10, 42, -2} {
		r.send(r.packetize(7, []core.KV{{Key: "m", Val: v}}))
	}
	if got := r.fetchAll(7); got["m"] != -10 {
		t.Fatalf("min = %d, want -10 (%v)", got["m"], got)
	}
}

func TestSwitchOpCount(t *testing.T) {
	r := opRig(t, core.OpCount)
	for i := 0; i < 5; i++ {
		r.send(r.packetize(7, []core.KV{{Key: "c", Val: int64(100 * i)}}))
	}
	if got := r.fetchAll(7); got["c"] != 5 {
		t.Fatalf("count = %d, want 5 (%v)", got["c"], got)
	}
}

func TestSwitchNegativeSums(t *testing.T) {
	r := opRig(t, core.OpSum)
	for _, v := range []int64{-5, -7, 20, -9} {
		r.send(r.packetize(7, []core.KV{{Key: "s", Val: v}}))
	}
	if got := r.fetchAll(7); got["s"] != -1 {
		t.Fatalf("sum = %d, want -1", got["s"])
	}
}

func TestNarrowKPartConfig(t *testing.T) {
	// 2-byte kParts (32-bit aggregators): keys of 1–2 bytes are short,
	// 3–4 bytes are medium, longer keys bypass.
	cfg := core.DefaultConfig()
	cfg.KPartBytes = 2
	cfg.AARows = 64
	cfg.ShadowCopy = false
	cfg.SwapThreshold = 0
	r := newRig(t, cfg)
	r.mustAlloc(7, 32)
	r.send(r.packetize(7, []core.KV{{Key: "ab", Val: 3}}))
	r.send(r.packetize(7, []core.KV{{Key: "ab", Val: 4}, {Key: "wxyz", Val: 9}}))
	got := r.fetchAll(7)
	if got["ab"] != 7 || got["wxyz"] != 9 {
		t.Fatalf("narrow-kPart state = %v", got)
	}
}

func TestVPartValueRange(t *testing.T) {
	// Values near the 32-bit vPart limits survive the encode/decode.
	r := opRig(t, core.OpSum)
	big := int64(1)<<31 - 1
	r.send(r.packetize(7, []core.KV{{Key: "b", Val: big}}))
	neg := -(int64(1) << 31)
	r.send(r.packetize(7, []core.KV{{Key: "n", Val: neg}}))
	got := r.fetchAll(7)
	if got["b"] != big || got["n"] != neg {
		t.Fatalf("extreme values corrupted: %v", got)
	}
}

func TestAckCarriesOriginalType(t *testing.T) {
	// Switch ACKs echo the acknowledged packet's type so hosts can route
	// them (AckFor).
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 32)
	pkt := r.packetize(7, []core.KV{{Key: "a", Val: 1}})
	r.send(pkt)
	if len(r.at1) != 1 {
		t.Fatalf("frames at sender: %d", len(r.at1))
	}
	ack := r.at1[0].Pkt
	if ack.Type != wire.TypeAck || ack.AckFor != wire.TypeData || ack.Task != 7 {
		t.Fatalf("ack = %+v", ack)
	}
}

func TestPipelinePassCounting(t *testing.T) {
	// Every flow packet costs exactly one pipeline pass; forwarded control
	// frames cost none.
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 32)
	before := r.sw.Pipeline().Passes()
	r.send(r.packetize(7, []core.KV{{Key: "a", Val: 1}}))
	r.send(r.packetize(7, []core.KV{{Key: "b", Val: 1}}))
	ctrl := &wire.Packet{Type: wire.TypeCtrl, Flow: core.FlowKey{Host: 1, Channel: 0}}
	r.net.HostSend(&netsim.Frame{Src: 1, Dst: 2, Pkt: ctrl, WireBytes: ctrl.WireBytes(4)})
	r.sim.Run(0)
	if got := r.sw.Pipeline().Passes() - before; got != 2 {
		t.Fatalf("passes = %d, want 2", got)
	}
}

func TestSwitchdWithTwoTierFabric(t *testing.T) {
	// The switch program runs unchanged on a TwoTier TOR port.
	s := sim.New(1)
	tt := netsim.NewTwoTier(s, 1, netsim.DefaultLinkConfig(), netsim.DefaultLinkConfig())
	sw, err := New(s, tt.TOR(0), smallConfig(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	sink1, sink2 := &frameSink{new([]*netsim.Frame)}, &frameSink{new([]*netsim.Frame)}
	tt.AttachHostRack(0, 1, sink1)
	tt.AttachHostRack(0, 2, sink2)
	if _, err := sw.RegisterFlow(core.FlowKey{Host: 1, Channel: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := sw.AllocRegion(7, 2, core.OpSum, 32); err != nil {
		t.Fatal(err)
	}
	layout := mustLayout(t, smallConfig())
	p := layout.Place("kk")
	pkt := &wire.Packet{Type: wire.TypeData, Task: 7, Flow: core.FlowKey{Host: 1, Channel: 0},
		Slots: make([]wire.Slot, smallConfig().NumAAs)}
	pkt.Slots[p.FirstSlot] = wire.Slot{KPart: p.KParts[0], Val: 5}
	pkt.Bitmap = pkt.Bitmap.Set(p.FirstSlot)
	tt.HostSend(&netsim.Frame{Src: 1, Dst: 2, Pkt: pkt, WireBytes: pkt.WireBytes(4)})
	s.Run(0)
	if len(*sink1.frames) != 1 || (*sink1.frames)[0].Pkt.Type != wire.TypeAck {
		t.Fatalf("sender frames: %v", *sink1.frames)
	}
	if sw.TaskStatsOf(7).TuplesAggregated != 1 {
		t.Fatal("tuple not aggregated on TOR fabric")
	}
}
