package switchd

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/wire"
)

func (r *testRig) sendSwap(task core.TaskID, seq uint32) {
	swp := &wire.Packet{Type: wire.TypeSwap, Task: task, Flow: core.FlowKey{Host: 2, Channel: 0}, Seq: seq}
	r.net.HostSend(&netsim.Frame{Src: 2, Dst: 2, Pkt: swp, WireBytes: swp.WireBytes(r.sw.cfg.KPartBytes)})
	r.sim.Run(0)
}

func TestSwapFlipsCopyExactlyOnce(t *testing.T) {
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 32)
	if got := r.sw.ActiveCopy(7); got != 0 {
		t.Fatalf("initial copy = %d", got)
	}
	r.sendSwap(7, 1)
	if got := r.sw.ActiveCopy(7); got != 1 {
		t.Fatalf("copy after swap = %d", got)
	}
	// Duplicate (retransmitted) swap must not flip again.
	r.sendSwap(7, 1)
	if got := r.sw.ActiveCopy(7); got != 1 {
		t.Fatal("duplicate swap flipped the copy")
	}
	// Next swap seq flips back.
	r.sendSwap(7, 2)
	if got := r.sw.ActiveCopy(7); got != 0 {
		t.Fatal("second swap did not flip")
	}
	if r.sw.Stats().Swaps != 2 {
		t.Fatalf("Swaps = %d", r.sw.Stats().Swaps)
	}
	// Every swap (including the duplicate) is acknowledged to host 2.
	acks := 0
	for _, f := range r.at2 {
		if f.Pkt.Type == wire.TypeAck && f.Pkt.AckFor == wire.TypeSwap {
			acks++
		}
	}
	if acks != 3 {
		t.Fatalf("swap acks = %d, want 3", acks)
	}
}

func TestWritesGoToActiveCopy(t *testing.T) {
	r := newRig(t, smallConfig())
	reg := r.mustAlloc(7, 32) // 16 rows per copy
	r.send(r.packetize(7, []core.KV{{Key: "k1", Val: 1}}))
	r.sendSwap(7, 1)
	r.send(r.packetize(7, []core.KV{{Key: "k1", Val: 10}}))

	// Copy 0 holds the pre-swap value, copy 1 the post-swap value.
	p := r.layout.Place("k1")
	aa := r.sw.raAAs[p.FirstSlot]
	n := uint(8 * r.sw.cfg.KPartBytes)
	sum := func(lo, hi int) (s int64) {
		for row := lo; row < hi; row++ {
			cur := aa.ControlRead(row)
			if cur>>n != 0 {
				s += r.sw.decodeVal(cur & r.sw.nMask())
			}
		}
		return
	}
	if got := sum(reg.Lo, reg.Lo+reg.CopyRows); got != 1 {
		t.Fatalf("copy 0 sum = %d, want 1", got)
	}
	if got := sum(reg.Lo+reg.CopyRows, reg.Lo+2*reg.CopyRows); got != 10 {
		t.Fatalf("copy 1 sum = %d, want 10", got)
	}
	// Total across copies is exact regardless of swap timing.
	if got := r.fetchAll(7); got["k1"] != 11 {
		t.Fatalf("total = %d, want 11", got["k1"])
	}
}

func TestSwapGivesHotKeysSecondChance(t *testing.T) {
	// Cold keys seize the (tiny) region first; after a swap + clear of the
	// old copy, a hot key reserves an aggregator again.
	cfg := smallConfig()
	r := newRig(t, cfg)
	reg := r.mustAlloc(7, 2) // 1 row per copy: 1 aggregator per AA per copy
	hot := "hot"
	var cold string
	for i := 0; ; i++ {
		c := fmt.Sprintf("c%d", i)
		if r.layout.Place(c).Class == r.layout.Place(hot).Class &&
			r.layout.Place(c).FirstSlot == r.layout.Place(hot).FirstSlot && c != hot {
			cold = c
			break
		}
	}
	// Cold key occupies the single active aggregator.
	r.send(r.packetize(7, []core.KV{{Key: cold, Val: 1}}))
	// Hot key conflicts: forwarded to the receiver.
	r.at2 = nil
	r.send(r.packetize(7, []core.KV{{Key: hot, Val: 1}}))
	if len(r.at2) != 1 {
		t.Fatal("hot key should conflict before the swap")
	}
	// Swap: receiver fetches + clears old copy out of band (control reads
	// here; the protocol path is exercised in hostd tests).
	r.sendSwap(7, 1)
	for _, aa := range r.sw.raAAs {
		aa.ControlFill(reg.Lo, reg.Lo+reg.CopyRows, 0)
	}
	// The hot key now reserves the fresh copy.
	r.at2 = nil
	r.send(r.packetize(7, []core.KV{{Key: hot, Val: 5}}))
	if len(r.at2) != 0 {
		t.Fatal("hot key still conflicting after swap")
	}
	if got := r.fetchAll(7); got[hot] != 5 {
		t.Fatalf("hot key state = %v", got)
	}
}

func TestFetchProtocol(t *testing.T) {
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 32)
	r.send(r.packetize(7, []core.KV{{Key: "a", Val: 3}, {Key: "yours", Val: 4}}))

	fetch := &wire.Packet{Type: wire.TypeFetch, Task: 7, Flow: core.FlowKey{Host: 2, Channel: 0}, Seq: 42, FetchCopy: 0}
	r.at2 = nil
	r.net.HostSend(&netsim.Frame{Src: 2, Dst: 2, Pkt: fetch, WireBytes: fetch.WireBytes(4)})
	r.sim.Run(0)
	if len(r.at2) != 1 {
		t.Fatalf("fetch replies = %d", len(r.at2))
	}
	reply := r.at2[0].Pkt
	if reply.Type != wire.TypeFetchReply || reply.Seq != 42 || reply.FetchChunks != 1 {
		t.Fatalf("reply = %+v", reply)
	}
	// "a" is one entry; "yours" occupies MediumSegs entries.
	if want := 1 + r.sw.cfg.MediumSegs; len(reply.FetchEntries) != want {
		t.Fatalf("entries = %d, want %d", len(reply.FetchEntries), want)
	}
	// Idempotent: retransmitted fetch returns the same snapshot.
	r.at2 = nil
	r.net.HostSend(&netsim.Frame{Src: 2, Dst: 2, Pkt: fetch.Clone(), WireBytes: fetch.WireBytes(4)})
	r.sim.Run(0)
	if len(r.at2) != 1 || len(r.at2[0].Pkt.FetchEntries) != len(reply.FetchEntries) {
		t.Fatal("retransmitted fetch not idempotent")
	}

	// Clear: idempotent, acknowledged.
	clear := &wire.Packet{Type: wire.TypeFetch, Task: 7, Flow: core.FlowKey{Host: 2, Channel: 0}, Seq: 43, FetchCopy: 0, FetchClear: true}
	for i := 0; i < 2; i++ {
		r.at2 = nil
		r.net.HostSend(&netsim.Frame{Src: 2, Dst: 2, Pkt: clear.Clone(), WireBytes: clear.WireBytes(4)})
		r.sim.Run(0)
		if len(r.at2) != 1 || r.at2[0].Pkt.Type != wire.TypeAck || r.at2[0].Pkt.AckFor != wire.TypeFetch {
			t.Fatalf("clear attempt %d: frames %+v", i, r.at2)
		}
	}
	// Snapshot after clear is empty.
	r.at2 = nil
	fetch2 := fetch.Clone()
	fetch2.Seq = 44
	r.net.HostSend(&netsim.Frame{Src: 2, Dst: 2, Pkt: fetch2, WireBytes: fetch2.WireBytes(4)})
	r.sim.Run(0)
	if len(r.at2) != 1 || len(r.at2[0].Pkt.FetchEntries) != 0 {
		t.Fatal("clear did not empty the copy")
	}
}

func TestFetchUnknownTask(t *testing.T) {
	r := newRig(t, smallConfig())
	fetch := &wire.Packet{Type: wire.TypeFetch, Task: 99, Flow: core.FlowKey{Host: 2, Channel: 0}, Seq: 1}
	r.net.HostSend(&netsim.Frame{Src: 2, Dst: 2, Pkt: fetch, WireBytes: fetch.WireBytes(4)})
	clear := &wire.Packet{Type: wire.TypeFetch, Task: 99, Flow: core.FlowKey{Host: 2, Channel: 0}, Seq: 2, FetchClear: true}
	r.net.HostSend(&netsim.Frame{Src: 2, Dst: 2, Pkt: clear, WireBytes: clear.WireBytes(4)})
	r.sim.Run(0)
	if len(r.at2) != 2 {
		t.Fatalf("frames = %d, want empty reply + clear ack", len(r.at2))
	}
}

func TestRegionAllocation(t *testing.T) {
	r := newRig(t, smallConfig()) // 64 rows
	r1 := r.mustAlloc(1, 32)
	r2 := r.mustAlloc(2, 32)
	if r1.Lo == r2.Lo {
		t.Fatal("regions overlap")
	}
	if _, err := r.sw.AllocRegion(3, 2, core.OpSum, 2); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if err := r.sw.FreeRegion(1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.sw.AllocRegion(3, 2, core.OpSum, 32); err != nil {
		t.Fatalf("re-allocation after free failed: %v", err)
	}
	if err := r.sw.FreeRegion(99); err == nil {
		t.Fatal("freeing unknown task succeeded")
	}
	// Re-requesting a live region with the same shape is idempotent (a
	// receiver recovering from a reboot may retry its own RPC) ...
	again, err := r.sw.AllocRegion(2, 2, core.OpSum, 2)
	if err != nil {
		t.Fatalf("idempotent re-allocation failed: %v", err)
	}
	if again != r2 {
		t.Fatal("idempotent re-allocation returned a different region")
	}
	// ... but a conflicting shape for a live task is still rejected.
	if _, err := r.sw.AllocRegion(2, 3, core.OpSum, 2); err == nil {
		t.Fatal("conflicting duplicate region accepted")
	}
	if _, err := r.sw.AllocRegion(2, 2, core.OpMax, 2); err == nil {
		t.Fatal("conflicting-op duplicate region accepted")
	}
}

func TestRegionDefaultSize(t *testing.T) {
	r := newRig(t, smallConfig())
	reg := r.mustAlloc(1, 0) // default: a quarter of the AA depth
	if reg.TotalRows != 16 {
		t.Fatalf("default region rows = %d, want 16 (AARows/4)", reg.TotalRows)
	}
	// When less is free, the default shrinks to fit.
	r.mustAlloc(2, 44)
	reg3 := r.mustAlloc(3, 0)
	if reg3.TotalRows != 4 {
		t.Fatalf("constrained default = %d, want 4", reg3.TotalRows)
	}
}

func TestFreedRegionIsCleared(t *testing.T) {
	r := newRig(t, smallConfig())
	r.mustAlloc(1, 64)
	r.send(r.packetize(1, []core.KV{{Key: "a", Val: 5}}))
	if err := r.sw.FreeRegion(1); err != nil {
		t.Fatal(err)
	}
	// The next tenant over the same rows must see blank aggregators.
	r.mustAlloc(2, 64)
	if got := r.fetchAll(2); len(got) != 0 {
		t.Fatalf("new tenant sees stale state: %v", got)
	}
}

func TestRowAllocatorCoalescing(t *testing.T) {
	a := newRowAllocator(100)
	lo1, _ := a.alloc(30)
	lo2, _ := a.alloc(30)
	lo3, _ := a.alloc(40)
	if a.totalFree() != 0 {
		t.Fatalf("free = %d", a.totalFree())
	}
	a.release(lo2, 30)
	a.release(lo1, 30)
	a.release(lo3, 40)
	if a.totalFree() != 100 || a.largestFree() != 100 {
		t.Fatalf("after frees: total=%d largest=%d (fragmented: %v)", a.totalFree(), a.largestFree(), a.free)
	}
	if lo, err := a.alloc(100); err != nil || lo != 0 {
		t.Fatalf("full realloc failed: %v", err)
	}
}

func TestMultiTenantIsolation(t *testing.T) {
	r := newRig(t, smallConfig())
	r.mustAlloc(1, 32)
	r.mustAlloc(2, 32)
	p1 := r.packetize(1, []core.KV{{Key: "shared", Val: 1}})
	p2 := r.packetize(2, []core.KV{{Key: "shared", Val: 100}})
	r.send(p1)
	r.send(p2)
	g1, g2 := r.fetchAll(1), r.fetchAll(2)
	if g1["shared"] != 1 || g2["shared"] != 100 {
		t.Fatalf("tenant state mixed: task1=%v task2=%v", g1, g2)
	}
}

func TestDuplicatedClearCannotWipeLiveCopy(t *testing.T) {
	// Regression: a clear packet duplicated (or delayed) by the network
	// must not wipe a copy that was swapped back into service. Found by
	// the randomized end-to-end property test (seed 2355223179251328692).
	r := newRig(t, smallConfig())
	r.mustAlloc(7, 32)

	// Swap to copy 1; the receiver fetches+clears copy 0 with request 10.
	r.sendSwap(7, 1)
	clear := &wire.Packet{Type: wire.TypeFetch, Task: 7, Flow: core.FlowKey{Host: 2, Channel: 0},
		Seq: 10, FetchCopy: 0, FetchClear: true}
	r.net.HostSend(&netsim.Frame{Src: 2, Dst: 2, Pkt: clear.Clone(), WireBytes: clear.WireBytes(4)})
	r.sim.Run(0)

	// Swap back to copy 0 and aggregate new data into it.
	r.sendSwap(7, 2)
	r.send(r.packetize(7, []core.KV{{Key: "live", Val: 9}}))
	if got := r.fetchAll(7); got["live"] != 9 {
		t.Fatalf("setup failed: %v", got)
	}

	// The network now delivers a stale duplicate of the old clear.
	r.net.HostSend(&netsim.Frame{Src: 2, Dst: 2, Pkt: clear.Clone(), WireBytes: clear.WireBytes(4)})
	r.sim.Run(0)
	if got := r.fetchAll(7); got["live"] != 9 {
		t.Fatalf("stale duplicate clear wiped live aggregations: %v", got)
	}

	// A genuinely fresh clear (new request id) still works.
	fresh := clear.Clone()
	fresh.Seq = 11
	r.net.HostSend(&netsim.Frame{Src: 2, Dst: 2, Pkt: fresh, WireBytes: fresh.WireBytes(4)})
	r.sim.Run(0)
	if got := r.fetchAll(7); got["live"] != 0 {
		t.Fatalf("fresh clear did not apply: %v", got)
	}
}
