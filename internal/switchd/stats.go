package switchd

import "repro/internal/core"

// Stats are switch-global counters, a point-in-time view over the
// telemetry registry (metrics.go) so the accessor and the exporters can
// never diverge.
type Stats struct {
	Forwarded       int64 // frames forwarded toward a host
	UnregisteredFwd int64 // flow packets forwarded without reliability state
	StaleDropped    int64 // packets outside the live window, dropped silently
	DupPackets      int64 // retransmissions identified by seen
	SwitchAcks      int64 // ACKs generated for fully aggregated packets
	Swaps           int64 // shadow-copy flips applied
	Fetches         int64 // fetch requests served
	Clears          int64 // clear requests served

	// Failure-model counters (failover.go).
	Crashes     int64 // Crash() calls
	Reboots     int64 // Reboot() calls (epoch advances)
	DroppedDown int64 // frames black-holed while crashed
	Probes      int64 // health probes answered
	Revocations int64 // regions revoked

	// CorruptDropped counts ingress frames quarantined by the end-to-end
	// checksum check (integrity, ingress.go).
	CorruptDropped int64
}

// TaskStats are per-task aggregation counters, the source of Table 1 and
// Fig. 9.
type TaskStats struct {
	// TuplesIn counts live tuples in fresh data packets entering the AAs.
	TuplesIn int64
	// TuplesAggregated counts tuples consumed by switch aggregators.
	TuplesAggregated int64
	// TuplesConflicted counts tuples forwarded after an aggregator conflict.
	TuplesConflicted int64
	// DataPackets counts fresh data packets of the task.
	DataPackets int64
	// AckedPackets counts data packets fully absorbed (switch-ACKed).
	AckedPackets int64
	// ForwardedPackets counts data packets forwarded to the receiver.
	ForwardedPackets int64
}

// AggregatedTupleRatio is Table 1's first row: aggregated/incoming tuples.
func (t *TaskStats) AggregatedTupleRatio() float64 {
	if t.TuplesIn == 0 {
		return 0
	}
	return float64(t.TuplesAggregated) / float64(t.TuplesIn)
}

// AckedPacketRatio is Table 1's second row: switch-ACKed/total data packets.
func (t *TaskStats) AckedPacketRatio() float64 {
	if t.DataPackets == 0 {
		return 0
	}
	return float64(t.AckedPackets) / float64(t.DataPackets)
}

// Stats returns a snapshot of the switch-global counters (atomic reads of
// the registry instruments; safe to call from any goroutine).
func (sw *Switch) Stats() Stats {
	m := &sw.met
	return Stats{
		Forwarded:       m.forwarded.Value(),
		UnregisteredFwd: m.unregisteredFwd.Value(),
		StaleDropped:    m.staleDropped.Value(),
		DupPackets:      m.dupPackets.Value(),
		SwitchAcks:      m.switchAcks.Value(),
		Swaps:           m.swaps.Value(),
		Fetches:         m.fetches.Value(),
		Clears:          m.clears.Value(),
		Crashes:         m.crashes.Value(),
		Reboots:         m.reboots.Value(),
		DroppedDown:     m.droppedDown.Value(),
		Probes:          m.probes.Value(),
		Revocations:     m.revocations.Value(),
		CorruptDropped:  m.corruptDropped.Value(),
	}
}

// TaskStatsOf returns a snapshot of the per-task counters since the
// task's last region allocation. The snapshot is freshly allocated from
// atomic reads, so — unlike the historical live-pointer accessor — it is
// safe to call concurrently with ingress traffic. Unknown tasks return an
// empty stats object.
func (sw *Switch) TaskStatsOf(task core.TaskID) *TaskStats {
	te := sw.taskEntryOf(task)
	sw.tasksMu.RLock()
	base := te.base
	sw.tasksMu.RUnlock()
	s := sub(te.cumulative(), base)
	return &s
}
