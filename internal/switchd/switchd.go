// Package switchd implements the ASK switch program (§3) on the PISA model
// of internal/pisa:
//
//   - a two-dimensional pool of aggregator arrays (AAs), four per stage,
//     where the i-th packet slot is processed by the i-th AA (§3.2.1);
//   - coalesced medium-key groups that address all member AAs with a
//     unified whole-key row index (§3.2.3);
//   - per-flow reliability state — max_seq stale guard, the compact W-bit
//     seen bitmap, and the PktState bitmap store — giving exactly-once
//     aggregation under loss, duplication, and reordering (§3.3);
//   - the shadow-copy mechanism with a per-region copy indicator flipped by
//     exactly-once swap packets (§3.4, Algorithm 1);
//   - a switch controller that allocates AA row regions to tasks and
//     registers persistent data-channel flows (multi-tenancy, §7).
//
// The pipeline layout (all within Tofino-class budgets, checked by
// internal/pisa at construction):
//
//	stage 0:     max_seq (per flow), swap_seq and clear_seq (per region)
//	stage 1:     copy_indicator (per region), seen (per flow × W, 1 bit)
//	stages 2..9: 32 AAs, 4 per stage, AARows × 2n-bit entries each
//	stage 10:    PktState (per flow × W, NumAAs-bit bitmaps)
package switchd

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/keyspace"
	"repro/internal/netsim"
	"repro/internal/pisa"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Aliases to keep pipeline-program signatures compact.
type (
	pisaPass  = pisa.Pass
	pisaArray = pisa.RegisterArray
)

// Options sizes the switch's per-flow and per-region state.
type Options struct {
	// MaxFlows bounds registered data-channel flows (hosts × channels).
	MaxFlows int
	// MaxRegions bounds concurrently allocated task regions.
	MaxRegions int
	// Pipeline overrides the PISA resource model (zero value = default).
	Pipeline pisa.Config
	// Telemetry is the cluster observability sink. The zero value gives
	// the switch a private registry so Stats views still work, with
	// tracing disabled.
	Telemetry telemetry.Sink
	// Addr is the switch's own fabric address for multi-switch topologies
	// (leaf/spine roles). Zero keeps the single-switch behaviour: the
	// switch terminates every Fetch/Swap it sees, whatever the frame's
	// destination. Non-zero, it terminates only requests addressed to it
	// and forwards the rest toward their destination — which is what lets
	// a receiver read a spine's region through its leaf.
	Addr core.HostID
	// SeqTaggedSeen switches the receive window from the 1-bit compact
	// parity seen (§3.3, Eq. 8) to a 33-bit sequence-tagged seen. The
	// compact design assumes the switch observes every sequence number of
	// a flow; a re-aggregation tier (a fat-tree spine) sees only the
	// leaves' conflict residuals, where sequence gaps alias the parity
	// trick into false duplicates. First-hop switches leave this off.
	SeqTaggedSeen bool
}

// DefaultOptions supports the paper's deployment scale: a 64-server rack
// with up to 8 channels each, and 64 concurrent tasks.
func DefaultOptions() Options {
	return Options{MaxFlows: 512, MaxRegions: 64, Pipeline: pisa.DefaultConfig()}
}

// Switch is the ASK switch: a netsim.SwitchHandler running the ASK pipeline
// program plus its control plane. One Switch is one rack's TOR program
// state — a shard root for the parallel DES (everything it reaches beyond
// its own fields goes through the fabric interface).
//
//askcheck:shard
type Switch struct {
	sim    *sim.Simulation
	net    netsim.SwitchFabric
	cfg    core.Config
	layout *keyspace.Layout
	opts   Options
	pipe   *pisa.Pipeline

	// Register arrays (data-plane state).
	// The askcheck:stage annotations mirror layoutPipeline and feed the
	// pisaaccess analyzer's static stage-order check; keep both in sync.
	raMaxSeq   *pisa.RegisterArray   // per flow: 32-bit max_seq (askcheck:stage=0)
	raSwapSeq  *pisa.RegisterArray   // per region: 32-bit swap sequence (askcheck:stage=0)
	raClearSeq *pisa.RegisterArray   // per region: 32-bit clear sequence (askcheck:stage=0)
	raCopyInd  *pisa.RegisterArray   // per region: 1-bit copy indicator (askcheck:stage=1)
	raSeen     *pisa.RegisterArray   // per flow × W: compact or seq-tagged seen (askcheck:stage=1)
	raPktState *pisa.RegisterArray   // per flow × W: NumAAs-bit bitmap (askcheck:stage=2+)
	raAAs      []*pisa.RegisterArray // four per stage from stage 2 (askcheck:stage=2+)

	// Control-plane state (match-action table contents, not SRAM registers).
	flows      map[core.FlowKey]int
	nextFlow   int
	regions    map[core.TaskID]*Region
	regionFree []int
	rows       *rowAllocator

	// codec decodes frames that arrive as damaged raw bytes (netsim
	// corruption faults); SkipVerify mirrors Config.DisableChecksumVerify,
	// the soak harness's deliberately-broken-build hook.
	codec wire.Codec

	// Failure model (failover.go): incarnation epoch stamped on non-data
	// egress packets, and the crashed flag that black-holes all traffic.
	epoch uint32
	down  bool

	// Telemetry (metrics.go): instruments live on reg; met caches the
	// hot-path pointers; tasks maps task → per-task counters. tasksMu also
	// guards each entry's base snapshot.
	reg     *telemetry.Registry
	tr      *telemetry.Tracer
	met     switchMetrics
	tasksMu sync.RWMutex
	tasks   map[core.TaskID]*taskEntry
}

// Region is a task's allocation of switch memory: the same row range on
// every AA (§3.1 step ③).
type Region struct {
	Task     core.TaskID
	Receiver core.HostID
	Op       core.Op
	// Lo is the first row; the region spans [Lo, Lo+TotalRows) on every AA.
	Lo        int
	TotalRows int
	// CopyRows is the size of one shadow copy: TotalRows/2 with the shadow
	// copy mechanism enabled, TotalRows without.
	CopyRows int
	Copies   int
	// Revoked marks a region whose aggregation has been disabled by the
	// controller (failover.go RevokeRegion); its memory stays readable
	// until the receiver drains and frees it.
	Revoked bool
	// Partition restricts aggregation to a tenant's keyspace band
	// (multi-tenant fabrics). The zero value is the whole keyspace and
	// selects the exact single-tenant loops. Regions are always
	// row-disjoint (one global row allocator), so fetches and clears over
	// [Lo, Lo+TotalRows) stay safe whatever the column band: columns
	// outside the partition are simply never written in those rows.
	Partition keyspace.Partition
	idx       int // index into copy_indicator/swap_seq
}

// New builds the ASK switch program for cfg and attaches it to the network.
func New(s *sim.Simulation, net netsim.SwitchFabric, cfg core.Config, opts Options) (*Switch, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layout, err := keyspace.NewLayout(cfg)
	if err != nil {
		return nil, err
	}
	if opts.MaxFlows <= 0 || opts.MaxRegions <= 0 {
		return nil, fmt.Errorf("switchd: MaxFlows and MaxRegions must be positive")
	}
	pc := opts.Pipeline
	if pc.Stages == 0 {
		pc = pisa.DefaultConfig()
	}
	sw := &Switch{
		sim:     s,
		net:     net,
		cfg:     cfg,
		layout:  layout,
		opts:    opts,
		pipe:    pisa.NewPipeline(pc),
		flows:   make(map[core.FlowKey]int),
		regions: make(map[core.TaskID]*Region),
		rows:    newRowAllocator(cfg.AARows),
		tasks:   make(map[core.TaskID]*taskEntry),
		codec:   wire.NewCodec(cfg.KPartBytes).WithSkipVerify(cfg.DisableChecksumVerify),
		epoch:   1,
	}
	sw.initMetrics(opts.Telemetry)
	for i := opts.MaxRegions - 1; i >= 0; i-- {
		sw.regionFree = append(sw.regionFree, i)
	}
	if err := sw.layoutPipeline(pc); err != nil {
		return nil, err
	}
	sw.pipe.AttachTelemetry(sw.reg)
	net.AttachSwitch(sw)
	return sw, nil
}

// layoutPipeline declares every register array, which validates the program
// against the PISA resource model.
func (sw *Switch) layoutPipeline(pc pisa.Config) error {
	w := sw.cfg.Window
	var err error
	add := func(stage int, name string, entries, width int) *pisa.RegisterArray {
		if err != nil {
			return nil
		}
		var ra *pisa.RegisterArray
		ra, err = sw.pipe.AddArray(stage, name, entries, width)
		return ra
	}
	sw.raMaxSeq = add(0, "max_seq", sw.opts.MaxFlows, 32)
	sw.raSwapSeq = add(0, "swap_seq", sw.opts.MaxRegions, 32)
	sw.raClearSeq = add(0, "clear_seq", sw.opts.MaxRegions, 32)
	sw.raCopyInd = add(1, "copy_indicator", sw.opts.MaxRegions, 1)
	seenWidth := 1
	if sw.opts.SeqTaggedSeen {
		// Gap-tolerant seen for re-aggregation tiers: 32-bit tag + valid.
		seenWidth = 33
	}
	sw.raSeen = add(1, "seen", sw.opts.MaxFlows*w, seenWidth)
	// AAs: four per stage starting at stage 2.
	aaStage0 := 2
	for i := 0; i < sw.cfg.NumAAs; i++ {
		ra := add(aaStage0+i/4, fmt.Sprintf("aa%d", i), sw.cfg.AARows, 2*8*sw.cfg.KPartBytes)
		sw.raAAs = append(sw.raAAs, ra)
	}
	pktStage := aaStage0 + (sw.cfg.NumAAs+3)/4
	sw.raPktState = add(pktStage, "pkt_state", sw.opts.MaxFlows*w, sw.cfg.NumAAs)
	if err != nil {
		return fmt.Errorf("switchd: pipeline layout does not fit: %w", err)
	}
	sw.pipe.Seal()
	return nil
}

// Pipeline exposes the underlying PISA pipeline (for resource assertions in
// tests and the SRAM accounting in EXPERIMENTS.md).
func (sw *Switch) Pipeline() *pisa.Pipeline { return sw.pipe }

// Config returns the deployment configuration.
func (sw *Switch) Config() core.Config { return sw.cfg }

// kPartN extracts the n-bit key part from a packed 64-bit kPart.
func (sw *Switch) kPartN(kp uint64) uint64 {
	return kp >> uint(64-8*sw.cfg.KPartBytes)
}

// nMask returns the n-bit value mask.
func (sw *Switch) nMask() uint64 {
	n := uint(8 * sw.cfg.KPartBytes)
	if n == 64 {
		return ^uint64(0)
	}
	return (1 << n) - 1
}

// decodeVal sign-extends an n-bit vPart to int64.
func (sw *Switch) decodeVal(v uint64) int64 {
	shift := uint(64 - 8*sw.cfg.KPartBytes)
	return int64(v<<shift) >> shift
}

// encodeVal truncates an int64 to the n-bit vPart representation.
func (sw *Switch) encodeVal(v int64) uint64 { return uint64(v) & sw.nMask() }

// splitmix64 is the switch-internal row-addressing hash. Row addressing
// never leaves the switch (hosts aggregate residues by key string), so a
// cheap integer mixer over the packed key material suffices.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RowIndex returns the aggregator row a tuple with the given packed key
// segments maps to within a copy of `rows` rows. Exported for experiment
// harnesses that construct collision-free key pools (the paper's
// "all keys fit in switch memory" microbenchmark regime, §2.2.2).
func RowIndex(kparts []uint64, rows int) int {
	return int(rowHash(kparts...) % uint64(rows))
}

// rowHash mixes the packed key segments of one logical tuple into a row
// index hash; medium groups pass all member kParts (the unified index of
// §3.2.3).
func rowHash(kparts ...uint64) uint64 {
	h := uint64(0x243f6a8885a308d3)
	for _, kp := range kparts {
		h = splitmix64(h ^ kp)
	}
	return h
}

// FreeRows returns the number of unallocated aggregator rows (for leak
// checks and capacity planning).
func (sw *Switch) FreeRows() int { return sw.rows.totalFree() }
